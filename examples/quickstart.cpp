// Quickstart: build a learned spatial index with ELSI and query it.
//
// This walks the core API end to end:
//   1. generate (or load) a point data set,
//   2. assemble an ELSI build processor (method pool + selector),
//   3. build a base index (ZM here) through it,
//   4. run point, window, and kNN queries.

#include <cstdio>

#include "common/timer.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "data/workload.h"

int main() {
  using namespace elsi;

  // 1. A clustered data set in the unit square (OpenStreetMap-like).
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 100000, /*seed=*/1);
  std::printf("data: %zu points\n", data.size());

  // 2. ELSI: the representative-set (RS) build method with default model
  //    settings. Swap FixedSelector for a trained ScorerSelector to let
  //    ELSI choose the method per model (see examples/selector_tour.cpp).
  BuildProcessorConfig config;
  config.model.hidden = {16};
  config.model.epochs = 150;
  config.rs.beta = 1000;  // Quadtree cells of <= 1000 points.
  auto processor = MakeElsiProcessor(
      BaseIndexKind::kZM, config,
      std::make_shared<FixedSelector>(BuildMethodId::kRS));

  // 3. Build the ZM index through ELSI.
  auto index = MakeBaseIndex(BaseIndexKind::kZM, processor);
  Timer build_timer;
  index->Build(data);
  std::printf("built %s through ELSI in %.2f s (%zu model(s) trained)\n",
              index->Name().c_str(), build_timer.ElapsedSeconds(),
              processor->records().size());
  for (const BuildCallRecord& r : processor->records()) {
    std::printf("  model over %zu points: method=%s |Ds|=%zu train=%.0f ms\n",
                r.n, BuildMethodName(r.method).c_str(), r.training_size,
                r.train_seconds * 1e3);
  }

  // 4a. Point query: find a stored point by its coordinates.
  Point hit;
  if (index->PointQuery(data[12345], &hit)) {
    std::printf("point query hit: id=%llu at (%.4f, %.4f)\n",
                static_cast<unsigned long long>(hit.id), hit.x, hit.y);
  }

  // 4b. Window query: everything in a small rectangle.
  const Rect window = Rect::Of(0.40, 0.40, 0.42, 0.42);
  const auto in_window = index->WindowQuery(window);
  std::printf("window query [0.40,0.42]^2: %zu points\n", in_window.size());

  // 4c. kNN: the 5 nearest neighbours of the data set's first point.
  const auto knn = index->KnnQuery(data[0], 5);
  std::printf("5 nearest neighbours of point 0:\n");
  for (const Point& p : knn) {
    std::printf("  id=%llu dist=%.5f\n",
                static_cast<unsigned long long>(p.id), Distance(p, data[0]));
  }
  return 0;
}
