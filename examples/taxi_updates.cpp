// A taxi-style update workload: build a LISA index on NYC-like pickups,
// stream in skewed insertions (an event in one neighbourhood), and let
// ELSI's update processor decide when to rebuild. Mirrors the Fig. 15/16
// experiments at example scale.

#include <cstdio>

#include "common/timer.h"
#include "common/random.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "data/workload.h"

int main() {
  using namespace elsi;

  const size_t base_n = 40000;
  const Dataset base = GenerateDataset(DatasetKind::kNyc, base_n, /*seed=*/3);

  // LISA admits SP/MR/RS/OG (its grid depends on D, so CL/RL are out).
  BuildProcessorConfig config;
  config.model.epochs = 120;
  auto processor = MakeElsiProcessor(
      BaseIndexKind::kLISA, config,
      std::make_shared<FixedSelector>(BuildMethodId::kSP));
  auto index = MakeBaseIndex(BaseIndexKind::kLISA, processor);

  // Train a rebuild predictor on simulated aging workloads (one-off; the
  // benches cache this, see bench/bench_util.cc).
  std::printf("training the rebuild predictor on simulated workloads...\n");
  RebuildTrainerConfig trainer_cfg;
  trainer_cfg.base_n = 8000;
  trainer_cfg.datasets = 3;
  trainer_cfg.checkpoints = 7;
  trainer_cfg.queries = 200;
  RebuildPredictor predictor;
  predictor.Train(GenerateRebuildTrainingData(trainer_cfg));

  UpdateProcessorConfig ucfg;
  ucfg.f_u = 2048;  // Consult the predictor every 2048 updates.
  UpdateProcessor updates(index.get(), &predictor, ucfg);
  updates.Build(base);
  std::printf("built %s on %zu pickups, %zu shards\n\n",
              index->Name().c_str(), index->size(),
              static_cast<LisaIndex*>(index.get())->shard_count());

  // Stream skewed insertions: a surge concentrated in one corner.
  Rng rng(11);
  size_t next_id = base_n;
  for (int burst = 1; burst <= 8; ++burst) {
    Timer timer;
    for (int i = 0; i < 10000; ++i) {
      updates.Insert(Point{0.10 + 0.05 * rng.NextDouble(),
                           0.70 + 0.05 * rng.NextDouble(), next_id++});
    }
    const auto queries = SamplePointQueries(index->CollectAll(), 2000,
                                            1000 + burst);
    Timer query_timer;
    for (const Point& q : queries) index->PointQuery(q);
    std::printf(
        "burst %d: +10000 pickups in %.0f ms | sim(D',D)=%.3f | "
        "point query %.2f us | rebuilds so far: %zu\n",
        burst, timer.ElapsedSeconds() * 1e3, updates.CurrentSimilarity(),
        query_timer.ElapsedMicros() / queries.size(),
        updates.rebuild_count());
  }

  std::printf("\nfinal index: %zu points, %zu rebuild(s) triggered\n",
              index->size(), updates.rebuild_count());
  return 0;
}
