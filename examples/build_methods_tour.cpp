// A tour of ELSI's training-set construction methods (Sec. V of the paper):
// for an OSM-like data set, build the same ZM index once per method and
// report |Ds|, the KS distance between Ds and D, build time, and model
// error bounds. This is the intuition behind Fig. 7's Pareto fronts.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/timer.h"
#include "common/cdf.h"
#include "core/elsi.h"
#include "curve/zorder.h"
#include "data/synthetic.h"

int main() {
  using namespace elsi;

  const size_t n = 80000;
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, n, /*seed=*/7);

  // The mapped key space (Z-order) of this data, sorted — the CDF every
  // method tries to preserve with far fewer points.
  const GridQuantizer quantizer(BoundingRect(data));
  const auto key_fn = [&quantizer](const Point& p) {
    return static_cast<double>(MortonEncode(quantizer.QuantizeX(p.x) >> 6,
                                            quantizer.QuantizeY(p.y) >> 6));
  };
  std::vector<double> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = key_fn(data[i]);
  std::sort(keys.begin(), keys.end());
  std::printf("data: %zu points, dist(Du, D) of the Z-keys = %.3f\n\n", n,
              UniformDissimilarity(keys));

  BuildProcessorConfig config;
  config.model.hidden = {16};
  config.model.epochs = 120;
  config.sp.rho = 0.005;
  config.cl.clusters = 200;
  config.rs.beta = 800;
  config.rl.max_steps = 300;

  std::printf("%-6s %8s %10s %12s %14s\n", "method", "|Ds|", "build",
              "dist(Ds,D)", "err_l+err_u");
  for (BuildMethodId method : kSelectorPool) {
    BuildProcessorConfig cfg = config;
    cfg.enabled = {method};
    auto processor = std::make_shared<BuildProcessor>(
        cfg, std::make_shared<FixedSelector>(method));
    auto index = MakeBaseIndex(BaseIndexKind::kZM, processor);
    Timer timer;
    index->Build(data);
    const double seconds = timer.ElapsedSeconds();

    size_t ds = 0;
    double err = 0.0;
    for (const BuildCallRecord& r : processor->records()) {
      ds += r.training_size;
      err += r.error_magnitude;
    }
    // KS distance of the actual training sets is method-internal; show the
    // effect through the error magnitude instead, plus a direct measurement
    // for the subset-producing methods via a one-off call.
    double ks = -1.0;
    {
      std::vector<Point> sorted_pts = data;
      std::sort(sorted_pts.begin(), sorted_pts.end(),
                [&key_fn](const Point& a, const Point& b) {
                  return key_fn(a) < key_fn(b);
                });
      const std::function<double(const Point&)> fn = key_fn;
      BuildContext ctx{sorted_pts, keys, fn};
      BuildProcessorConfig probe_cfg = cfg;
      switch (method) {
        case BuildMethodId::kSP: {
          SystematicSampling m(probe_cfg.sp);
          ks = KsDistanceFast(m.ComputeTrainingSet(ctx), keys);
          break;
        }
        case BuildMethodId::kCL: {
          ClusteringMethod m(probe_cfg.cl);
          ks = KsDistanceFast(m.ComputeTrainingSet(ctx), keys);
          break;
        }
        case BuildMethodId::kRS: {
          RepresentativeSet m(probe_cfg.rs);
          ks = KsDistanceFast(m.ComputeTrainingSet(ctx), keys);
          break;
        }
        case BuildMethodId::kRL: {
          ReinforcementMethod m(probe_cfg.rl);
          ks = KsDistanceFast(m.ComputeTrainingSet(ctx), keys);
          break;
        }
        case BuildMethodId::kMR: {
          ModelReuse m(probe_cfg.mr, probe_cfg.model);
          ks = m.BestMatchDistance(keys);
          break;
        }
        case BuildMethodId::kOG:
        default:
          ks = 0.0;
          break;
      }
    }
    std::printf("%-6s %8zu %9.2fs %12.3f %14.0f\n",
                BuildMethodName(method).c_str(), ds, seconds, ks, err);
  }
  std::printf(
      "\nReading the table: smaller |Ds| means faster training; smaller\n"
      "dist(Ds, D) means the model sees a truer CDF; the error bounds show\n"
      "how much scan slack each method's index needs at query time.\n");
  return 0;
}
