// Observability quickstart: watch ELSI work through the elsi::obs layer.
//
// Builds a ZM index on a synthetic OSM-like data set, runs a mixed
// point-query / update workload through the update processor, then dumps
//   obs_metrics.json  — counters, gauges, and histograms (JSON snapshot)
//   obs_metrics.prom  — the same registry in Prometheus text format
//   obs_trace.json    — scoped spans; open in chrome://tracing or
//                       ui.perfetto.dev
// All instrumentation shown here is already wired inside the library —
// this program only adds one application-level span and the export calls.
// Build with -DELSI_OBS=OFF and it still compiles and runs; the files then
// contain empty documents.

#include <cstdio>

#include "core/elsi.h"
#include "core/update_processor.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main() {
  using namespace elsi;

  constexpr size_t kN = 50000;
  constexpr size_t kQueries = 5000;
  constexpr size_t kUpdates = 10000;
  const Dataset all =
      GenerateDataset(DatasetKind::kOsm1, kN + kUpdates, /*seed=*/7);
  const Dataset base(all.begin(), all.begin() + kN);

  // An application-level span: everything below nests under it in the trace
  // alongside the library's own build.* / query.* / update.* spans.
  ELSI_TRACE_SPAN("obs_quickstart");

  // ELSI-driven ZM with the full method pool behind a random selector (no
  // pre-trained scorer needed for a demo; see examples/selector_tour.cpp).
  BuildProcessorConfig config;
  config.model.hidden = {16};
  config.model.epochs = 100;
  config.rs.beta = 500;
  auto processor = MakeElsiProcessor(BaseIndexKind::kZM, config,
                                     std::make_shared<RandomSelector>(7));
  auto index = MakeBaseIndex(BaseIndexKind::kZM, processor);

  UpdateProcessorConfig update_config;
  update_config.f_u = 512;
  UpdateProcessor updater(index.get(), nullptr, update_config);
  updater.Build(base);
  std::printf("built %s (%zu models trained)\n", index->Name().c_str(),
              processor->records().size());

  // Mixed workload: point queries over the built set, then inserts with
  // interleaved deletes. Every library-side step feeds the registry:
  // query.point.scan_len, update.inserts/deletes, rebuild.* and friends.
  const auto queries = SamplePointQueries(base, kQueries, /*seed=*/8);
  size_t found = 0;
  for (const Point& q : queries) {
    if (index->PointQuery(q)) ++found;
  }
  std::printf("queries: %zu/%zu found\n", found, queries.size());

  for (size_t i = 0; i < kUpdates; ++i) {
    updater.Insert(all[kN + i]);
    if (i % 3 == 2) updater.Remove(base[(i * 2654435761u) % kN]);
  }
  std::printf("updates: %zu applied, %zu rebuilds\n", updater.update_count(),
              updater.rebuild_count());

  // Peek at two headline numbers straight from the registry...
  obs::Counter& models = obs::GetCounter("build.models");
  obs::Histogram& scan_len = obs::GetHistogram(
      "query.point.scan_len", obs::HistogramSpec::Count());
  std::printf("registry: build.models=%llu, scan_len p50=%.0f (n=%llu)\n",
              static_cast<unsigned long long>(models.Value()),
              scan_len.Snapshot().ApproxQuantile(0.5),
              static_cast<unsigned long long>(scan_len.TotalCount()));

  // ...then export everything.
  obs::WriteMetricsJson("obs_metrics.json");
  obs::WriteMetricsPrometheus("obs_metrics.prom");
  obs::WriteTraceJson("obs_trace.json");
  std::printf(
      "wrote obs_metrics.json, obs_metrics.prom, obs_trace.json\n"
      "open obs_trace.json in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}
