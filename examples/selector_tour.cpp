// The method selector end to end: measure a small ground-truth campaign
// (build + query costs of every method across cardinalities and skews),
// train the FFN method scorer on it, and show which method ELSI picks for
// different data sets as the build/query preference lambda varies (Eq. 2).

#include <cstdio>

#include "core/elsi.h"
#include "data/synthetic.h"

int main() {
  using namespace elsi;

  std::printf("measuring the scorer's ground truth (a few dozen builds)...\n");
  ScorerTrainerConfig cfg;
  cfg.log10_min = 3.0;
  cfg.log10_max = 4.0;
  cfg.cardinality_levels = 3;
  cfg.dissimilarities = {0.0, 0.3, 0.6, 0.9};
  cfg.queries = 256;
  cfg.processor.model.epochs = 80;
  cfg.processor.rl.max_steps = 120;
  const ScorerTrainingData data = GenerateScorerTrainingData(cfg);
  std::printf("campaign: %zu data sets x %zu methods\n\n", data.groups.size(),
              data.groups.front().costs.size());

  auto scorer = std::make_shared<MethodScorer>();
  scorer->Train(data.samples);

  const std::vector<BuildMethodId> pool(std::begin(kSelectorPool),
                                        std::end(kSelectorPool));
  std::printf("%-22s", "data set (n, dissim)");
  for (double lambda : {0.0, 0.4, 0.8, 1.0}) {
    std::printf("  lambda=%.1f", lambda);
  }
  std::printf("\n");
  for (const ScorerDatasetGroup& group : data.groups) {
    std::printf("n=10^%.1f  d=%.2f      ", group.log10_n,
                group.dissimilarity);
    for (double lambda : {0.0, 0.4, 0.8, 1.0}) {
      ScorerSelector selector(scorer, lambda, /*w_q=*/1.0);
      const BuildMethodId chosen =
          selector.Choose(pool, group.log10_n, group.dissimilarity);
      std::printf("  %-10s", BuildMethodName(chosen).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nlambda weighs build cost vs query cost (Eq. 2): small lambda\n"
      "favours query-optimised methods (RS/RL/OG), large lambda favours\n"
      "build-cheap ones (MR/SP). Accuracy against the measured argmin:\n");
  for (double lambda : {0.2, 0.5, 0.8}) {
    ScorerSelector selector(scorer, lambda, 1.0);
    std::printf("  lambda=%.1f: strict %.2f, within-25%% %.2f\n", lambda,
                SelectorAccuracy(&selector, data, lambda, 1.0),
                SelectorAccuracy(&selector, data, lambda, 1.0, 0.25));
  }
  return 0;
}
