#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/spatial_index.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "traditional/grid_index.h"
#include "traditional/hrr_tree.h"
#include "traditional/kdb_tree.h"
#include "traditional/rstar_tree.h"

namespace elsi {
namespace {

using IndexFactory = std::function<std::unique_ptr<SpatialIndex>()>;

struct IndexCase {
  std::string name;
  IndexFactory make;
};

std::vector<IndexCase> AllTraditional() {
  return {
      {"Grid", [] { return std::make_unique<GridIndex>(16); }},
      {"KDB", [] { return std::make_unique<KdbTree>(16); }},
      {"HRR", [] { return std::make_unique<HrrTree>(16); }},
      {"RRStar", [] { return std::make_unique<RStarTree>(16); }},
  };
}

// Sorts by id for order-insensitive comparison.
std::vector<uint64_t> Ids(const std::vector<Point>& pts) {
  std::vector<uint64_t> ids;
  ids.reserve(pts.size());
  for (const Point& p : pts) ids.push_back(p.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class TraditionalIndexTest
    : public ::testing::TestWithParam<std::tuple<size_t, DatasetKind>> {
 protected:
  Dataset MakeData() const {
    return GenerateDataset(std::get<1>(GetParam()), std::get<0>(GetParam()),
                           99);
  }
};

TEST_P(TraditionalIndexTest, PointQueriesFindEveryIndexedPoint) {
  const Dataset data = MakeData();
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build(data);
    EXPECT_EQ(index->size(), data.size()) << c.name;
    for (size_t i = 0; i < data.size(); i += 7) {
      Point out;
      ASSERT_TRUE(index->PointQuery(data[i], &out))
          << c.name << " missed point " << i;
      EXPECT_EQ(out.x, data[i].x);
      EXPECT_EQ(out.y, data[i].y);
    }
    // A point absent from the data must not be found.
    EXPECT_FALSE(index->PointQuery(Point{-5.0, -5.0, 0}));
  }
}

TEST_P(TraditionalIndexTest, WindowQueriesMatchBruteForce) {
  const Dataset data = MakeData();
  const auto windows = SampleWindowQueries(data, 20, 0.002, 7);
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build(data);
    for (const Rect& w : windows) {
      const auto truth = BruteForceWindow(data, w);
      const auto result = index->WindowQuery(w);
      EXPECT_EQ(Ids(result), Ids(truth)) << c.name;
    }
  }
}

TEST_P(TraditionalIndexTest, KnnMatchesBruteForceDistances) {
  const Dataset data = MakeData();
  const auto queries = SampleKnnQueries(data, 10, 11);
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build(data);
    for (const Point& q : queries) {
      const auto truth = BruteForceKnn(data, q, 25);
      const auto result = index->KnnQuery(q, 25);
      ASSERT_EQ(result.size(), truth.size()) << c.name;
      // Distances must match (ids may differ under exact ties).
      for (size_t i = 0; i < truth.size(); ++i) {
        EXPECT_DOUBLE_EQ(SquaredDistance(result[i], q),
                         SquaredDistance(truth[i], q))
            << c.name << " at rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDistributions, TraditionalIndexTest,
    ::testing::Combine(::testing::Values<size_t>(500, 3000),
                       ::testing::Values(DatasetKind::kUniform,
                                         DatasetKind::kSkewed,
                                         DatasetKind::kNyc,
                                         DatasetKind::kTpch)),
    [](const auto& info) {
      std::string n = DatasetKindName(std::get<1>(info.param));
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) { return !std::isalnum(c); }),
              n.end());
      return n + "_" + std::to_string(std::get<0>(info.param));
    });

TEST(TraditionalIndexUpdateTest, InsertThenQuery) {
  const Dataset base = GenerateDataset(DatasetKind::kOsm1, 1000, 3);
  const Dataset extra = GenerateSkewed(500, 4);
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build(base);
    for (Point p : extra) {
      p.id += 10000;
      index->Insert(p);
    }
    EXPECT_EQ(index->size(), base.size() + extra.size()) << c.name;
    // All inserted points must be findable.
    for (size_t i = 0; i < extra.size(); i += 13) {
      Point p = extra[i];
      p.id += 10000;
      EXPECT_TRUE(index->PointQuery(p)) << c.name;
    }
    // Window query over everything returns base + inserted.
    const auto all = index->WindowQuery(Rect::Of(-1.0, -1.0, 2.0, 2.0));
    EXPECT_EQ(all.size(), base.size() + extra.size()) << c.name;
  }
}

TEST(TraditionalIndexUpdateTest, RemoveDropsPoints) {
  const Dataset data = GenerateUniform(800, 5);
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build(data);
    for (size_t i = 0; i < data.size(); i += 2) {
      EXPECT_TRUE(index->Remove(data[i])) << c.name;
    }
    EXPECT_EQ(index->size(), data.size() / 2) << c.name;
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(index->PointQuery(data[i]), i % 2 == 1) << c.name;
    }
    // Removing twice fails.
    EXPECT_FALSE(index->Remove(data[0])) << c.name;
  }
}

TEST(TraditionalIndexEdgeTest, EmptyBuildAndQueries) {
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build({});
    EXPECT_EQ(index->size(), 0u) << c.name;
    EXPECT_FALSE(index->PointQuery(Point{0.5, 0.5, 0})) << c.name;
    EXPECT_TRUE(index->WindowQuery(Rect::Of(0, 0, 1, 1)).empty()) << c.name;
    EXPECT_TRUE(index->KnnQuery(Point{0.5, 0.5, 0}, 5).empty()) << c.name;
  }
}

TEST(TraditionalIndexEdgeTest, SinglePoint) {
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build({Point{0.5, 0.5, 42}});
    EXPECT_TRUE(index->PointQuery(Point{0.5, 0.5, 0})) << c.name;
    const auto knn = index->KnnQuery(Point{0.1, 0.1, 0}, 3);
    ASSERT_EQ(knn.size(), 1u) << c.name;
    EXPECT_EQ(knn[0].id, 42u) << c.name;
  }
}

TEST(TraditionalIndexEdgeTest, FullyDuplicatedPoints) {
  // Every index must survive a data set of identical coordinates (beyond
  // block capacity) — the degenerate case that breaks naive median splits.
  Dataset data;
  for (size_t i = 0; i < 200; ++i) data.push_back(Point{0.3, 0.7, i});
  for (const IndexCase& c : AllTraditional()) {
    auto index = c.make();
    index->Build(data);
    EXPECT_EQ(index->size(), 200u) << c.name;
    EXPECT_TRUE(index->PointQuery(Point{0.3, 0.7, 0})) << c.name;
    const auto hits = index->WindowQuery(Rect::Of(0.2, 0.6, 0.4, 0.8));
    EXPECT_EQ(hits.size(), 200u) << c.name;
  }
}

TEST(GridIndexTest, SideMatchesSqrtFormula) {
  const Dataset data = GenerateUniform(6400, 1);
  GridIndex grid(16);
  grid.Build(data);
  // sqrt(6400 / 16) = 20.
  EXPECT_EQ(grid.grid_side(), 20);
}

TEST(KdbTreeTest, HeightIsLogarithmic) {
  const Dataset data = GenerateUniform(4096, 2);
  KdbTree tree(16);
  tree.Build(data);
  // 4096 / 16 = 256 leaves -> height about 9; allow slack for uneven splits.
  EXPECT_GE(tree.Height(), 8);
  EXPECT_LE(tree.Height(), 14);
}

TEST(RStarTreeTest, InvariantsHoldAfterInsertions) {
  RStarTree tree(16);
  const Dataset data = GenerateDataset(DatasetKind::kNyc, 3000, 3);
  tree.Build(data);
  EXPECT_TRUE(RTreeCheckInvariants(tree.root(), tree.max_entries()));
  EXPECT_EQ(RTreeCount(tree.root()), data.size());
}

TEST(RStarTreeTest, HeightGrowsSlowly) {
  RStarTree tree(16);
  tree.Build(GenerateUniform(5000, 5));
  EXPECT_LE(tree.Height(), 5);
}

TEST(HrrTreeTest, BulkLoadPacksFullNodes) {
  HrrTree tree(16);
  const Dataset data = GenerateUniform(16 * 16 * 4, 7);
  tree.Build(data);
  EXPECT_TRUE(RTreeCheckInvariants(tree.root(), tree.max_entries()));
  // Packed: exactly ceil(n/16) leaves -> height 3 for 64 leaves @ fanout 16.
  EXPECT_EQ(tree.Height(), 3);
}

TEST(HrrTreeTest, HilbertOrderYieldsCompactLeaves) {
  // A leaf tiling of the unit square always sums to about area 1; what the
  // Hilbert ordering buys is *square-ish* leaves, i.e. small total
  // perimeter, versus the thin full-height strips an x-sorted packing
  // produces. Compare the two orderings directly.
  const Dataset data = GenerateUniform(20000, 9);
  HrrTree tree(64);
  tree.Build(data);
  std::function<double(const RTreeNode*)> leaf_perimeter =
      [&](const RTreeNode* node) -> double {
    if (node->is_leaf) return node->mbr.Perimeter();
    double total = 0;
    for (const auto& c : node->children) total += leaf_perimeter(c.get());
    return total;
  };
  Dataset by_x = data;
  std::sort(by_x.begin(), by_x.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  const auto strip_root = RTreePackLoad(by_x, 64);
  const double hilbert_perim = leaf_perimeter(tree.root());
  const double strip_perim = leaf_perimeter(strip_root.get());
  EXPECT_LT(hilbert_perim, strip_perim / 3.0)
      << "hilbert=" << hilbert_perim << " strips=" << strip_perim;
}

}  // namespace
}  // namespace elsi
