// Randomized differential tests: every index (traditional and learned) is
// driven through random interleavings of inserts, removals, and the three
// query types, and checked against a naive reference model. These sweep
// broader state spaces than the unit tests and pin down update/query
// interaction bugs.

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "core/concurrent_index.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "traditional/grid_index.h"
#include "traditional/hrr_tree.h"
#include "traditional/kdb_tree.h"
#include "traditional/rstar_tree.h"

namespace elsi {
namespace {

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 50;
  cfg.learning_rate = 0.03;
  return cfg;
}

std::unique_ptr<SpatialIndex> MakeAnyIndex(const std::string& name) {
  if (name == "Grid") return std::make_unique<GridIndex>(16);
  if (name == "KDB") return std::make_unique<KdbTree>(16);
  if (name == "HRR") return std::make_unique<HrrTree>(16);
  if (name == "RR*") return std::make_unique<RStarTree>(16);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  BaseIndexScale scale;
  scale.leaf_target = 400;
  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    if (BaseIndexKindName(kind) == name) {
      return MakeBaseIndex(kind, trainer, scale);
    }
  }
  ADD_FAILURE() << "unknown index " << name;
  return nullptr;
}

// A naive reference: flat vector with linear scans.
class ReferenceModel {
 public:
  void Build(const Dataset& data) { pts_ = data; }
  void Insert(const Point& p) { pts_.push_back(p); }
  bool Remove(const Point& p) {
    for (size_t i = 0; i < pts_.size(); ++i) {
      if (pts_[i].id == p.id && pts_[i].x == p.x && pts_[i].y == p.y) {
        pts_.erase(pts_.begin() + i);
        return true;
      }
    }
    return false;
  }
  bool Contains(const Point& q) const {
    for (const Point& p : pts_) {
      if (p.x == q.x && p.y == q.y) return true;
    }
    return false;
  }
  const Dataset& points() const { return pts_; }

 private:
  Dataset pts_;
};

struct FuzzCase {
  std::string index;
  uint64_t seed;
  bool exact_windows;  // ZM/ML/traditional return exact window results.
};

class IndexFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(IndexFuzzTest, RandomMixedWorkloadMatchesReference) {
  const FuzzCase& fuzz = GetParam();
  Rng rng(fuzz.seed);
  const Dataset initial =
      GenerateDataset(DatasetKind::kOsm1, 600, fuzz.seed + 1);
  auto index = MakeAnyIndex(fuzz.index);
  ASSERT_NE(index, nullptr);
  index->Build(initial);
  ReferenceModel reference;
  reference.Build(initial);
  uint64_t next_id = 10000;

  for (int step = 0; step < 400; ++step) {
    const double op = rng.NextDouble();
    if (op < 0.4) {
      // Insert, sometimes into a hot corner, sometimes uniform.
      const bool hot = rng.NextBernoulli(0.5);
      const Point p{hot ? 0.05 * rng.NextDouble() : rng.NextDouble(),
                    hot ? 0.05 * rng.NextDouble() : rng.NextDouble(),
                    next_id++};
      index->Insert(p);
      reference.Insert(p);
    } else if (op < 0.55 && !reference.points().empty()) {
      // Remove an existing point.
      const Point victim =
          reference.points()[rng.NextBelow(reference.points().size())];
      EXPECT_TRUE(index->Remove(victim)) << fuzz.index << " step " << step;
      reference.Remove(victim);
    } else if (op < 0.6) {
      // Remove a non-existent point must fail on both.
      const Point ghost{rng.NextDouble() + 2.0, rng.NextDouble() + 2.0,
                        next_id++};
      EXPECT_FALSE(index->Remove(ghost)) << fuzz.index;
    } else if (op < 0.8 && !reference.points().empty()) {
      // Point query for an existing point.
      const Point probe =
          reference.points()[rng.NextBelow(reference.points().size())];
      EXPECT_TRUE(index->PointQuery(probe))
          << fuzz.index << " step " << step << " id " << probe.id;
    } else if (op < 0.9) {
      // Window query: never a false positive; exact indices match counts.
      const double cx = rng.NextDouble();
      const double cy = rng.NextDouble();
      const double half = 0.02 + 0.05 * rng.NextDouble();
      const Rect w = Rect::Of(cx - half, cy - half, cx + half, cy + half);
      const auto result = index->WindowQuery(w);
      for (const Point& p : result) {
        EXPECT_TRUE(w.Contains(p)) << fuzz.index;
      }
      const auto truth = BruteForceWindow(reference.points(), w);
      if (fuzz.exact_windows) {
        EXPECT_EQ(result.size(), truth.size()) << fuzz.index << " step "
                                               << step;
      } else {
        EXPECT_LE(result.size(), truth.size()) << fuzz.index;
      }
    } else {
      // Size stays in lockstep.
      EXPECT_EQ(index->size(), reference.points().size())
          << fuzz.index << " step " << step;
    }
  }
  EXPECT_EQ(index->size(), reference.points().size()) << fuzz.index;
}

std::vector<FuzzCase> FuzzCases() {
  std::vector<FuzzCase> cases;
  for (const char* name : {"Grid", "KDB", "HRR", "RR*", "ZM", "ML"}) {
    for (uint64_t seed : {1ull, 2ull}) {
      cases.push_back({name, seed, true});
    }
  }
  for (const char* name : {"RSMI", "LISA"}) {
    for (uint64_t seed : {1ull, 2ull}) {
      cases.push_back({name, seed, false});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllIndices, IndexFuzzTest,
                         ::testing::ValuesIn(FuzzCases()),
                         [](const auto& info) {
                           std::string n = info.param.index + "_s" +
                                           std::to_string(info.param.seed);
                           std::replace(n.begin(), n.end(), '*', 'S');
                           return n;
                         });

// kNN differential sweep across the exact indices: distances must match the
// brute-force answer for every k in a range.
class KnnSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(KnnSweepTest, DistancesMatchBruteForceAcrossK) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm2, 1500, 5);
  auto index = MakeAnyIndex(GetParam());
  index->Build(data);
  Rng rng(17);
  for (size_t k : {1u, 2u, 5u, 17u, 64u}) {
    const Point q = data[rng.NextBelow(data.size())];
    const auto truth = BruteForceKnn(data, q, k);
    const auto result = index->KnnQuery(q, k);
    ASSERT_EQ(result.size(), truth.size()) << GetParam() << " k=" << k;
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(SquaredDistance(result[i], q),
                       SquaredDistance(truth[i], q))
          << GetParam() << " k=" << k << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ExactIndices, KnnSweepTest,
                         ::testing::Values("Grid", "KDB", "HRR", "RR*", "ZM",
                                           "ML"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '*', 'S');
                           return n;
                         });

// Window-corner edge cases: windows degenerate to lines/points, windows
// covering everything, and windows fully outside the domain.
class WindowEdgeCaseTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WindowEdgeCaseTest, DegenerateWindows) {
  const Dataset data = GenerateDataset(DatasetKind::kTpch, 1200, 9);
  auto index = MakeAnyIndex(GetParam());
  index->Build(data);

  // Zero-area window exactly on a point: must include it (closed rect).
  const Point& p = data[37];
  const Rect on_point = Rect::Of(p.x, p.y, p.x, p.y);
  const auto hits = index->WindowQuery(on_point);
  bool found = false;
  for (const Point& h : hits) found |= (h.id == p.id);
  EXPECT_TRUE(found) << GetParam();

  // Whole-domain window returns everything (exact indices).
  const auto all = index->WindowQuery(Rect::Of(-1, -1, 2, 2));
  EXPECT_EQ(all.size(), data.size()) << GetParam();

  // Outside window returns nothing.
  EXPECT_TRUE(index->WindowQuery(Rect::Of(5, 5, 6, 6)).empty()) << GetParam();

  // Inverted (empty) rectangle returns nothing.
  Rect inverted;
  EXPECT_TRUE(index->WindowQuery(inverted).empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ExactIndices, WindowEdgeCaseTest,
                         ::testing::Values("Grid", "KDB", "HRR", "RR*", "ZM",
                                           "ML"),
                         [](const auto& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '*', 'S');
                           return n;
                         });

// Per-build-method differential sweep on the worker pool: for every method
// in the default BuildProcessorConfig::enabled set, a ZM index is built
// through the processor while its per-segment training requests run as pool
// tasks, then checked against brute force (exact windows, exact kNN
// distances). A correctness bug in any method's concurrent training path
// surfaces as a wrong query answer here.
class BuildMethodOracleTest : public ::testing::TestWithParam<BuildMethodId> {
};

TEST_P(BuildMethodOracleTest, PooledBuildMatchesBruteForce) {
  const BuildMethodId method = GetParam();
  ThreadPool pool(4);
  for (uint64_t seed : {11ull, 12ull}) {
    const Dataset data = GenerateDataset(
        seed % 2 == 0 ? DatasetKind::kSkewed : DatasetKind::kOsm2, 1200,
        seed);
    BuildProcessorConfig cfg;
    cfg.model = FastModel();
    cfg.seed = seed;
    cfg.enabled = {method};
    cfg.rs.beta = 128;
    cfg.rl.max_steps = 60;  // Keep the RL episode short.
    auto processor = std::make_shared<BuildProcessor>(
        cfg, std::make_shared<FixedSelector>(method));
    BaseIndexScale scale;
    scale.leaf_target = 300;  // Several segments -> several pool tasks.
    scale.pool = &pool;
    auto index = MakeBaseIndex(BaseIndexKind::kZM, processor, scale);
    index->Build(data);
    EXPECT_FALSE(processor->records().empty());

    Rng rng(seed + 1);
    for (int i = 0; i < 25; ++i) {
      const double cx = rng.NextDouble();
      const double cy = rng.NextDouble();
      const double half = 0.01 + 0.08 * rng.NextDouble();
      const Rect w = Rect::Of(cx - half, cy - half, cx + half, cy + half);
      const auto result = index->WindowQuery(w);
      const auto truth = BruteForceWindow(data, w);
      EXPECT_EQ(result.size(), truth.size())
          << BuildMethodName(method) << " window " << i << " seed " << seed;
      for (const Point& p : result) {
        EXPECT_TRUE(w.Contains(p)) << BuildMethodName(method);
      }
    }
    for (size_t k : {1u, 8u, 32u}) {
      const Point q = data[rng.NextBelow(data.size())];
      const auto truth = BruteForceKnn(data, q, k);
      const auto result = index->KnnQuery(q, k);
      ASSERT_EQ(result.size(), truth.size())
          << BuildMethodName(method) << " k=" << k;
      for (size_t i = 0; i < truth.size(); ++i) {
        EXPECT_DOUBLE_EQ(SquaredDistance(result[i], q),
                         SquaredDistance(truth[i], q))
            << BuildMethodName(method) << " k=" << k << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, BuildMethodOracleTest,
    ::testing::ValuesIn(BuildProcessorConfig{}.enabled),
    [](const auto& info) { return BuildMethodName(info.param); });

// Sharded-delta merge oracle: T writer threads run deterministic per-thread
// insert/remove streams against a ConcurrentIndex whose auto-merge folds the
// sharded delta mid-stream at unpredictable points. Each thread owns a
// disjoint id range and only removes its own points, so the final element
// set is independent of the interleaving — and must be element-identical to
// a single-threaded ReferenceModel replay of the same streams.
TEST(ShardedDeltaMergeOracleTest, ConcurrentStreamsPlusMergesMatchOracle) {
  for (uint64_t seed : {3ull, 4ull, 5ull}) {
    const Dataset base = GenerateDataset(DatasetKind::kUniform, 800, seed);
    concurrent::ConcurrentIndexConfig config;
    config.merge_threshold = 300;  // Several merges per run.
    auto base_index = MakeAnyIndex("Grid");
    base_index->Build(base);
    concurrent::ConcurrentIndex index(
        std::move(base_index), [] { return MakeAnyIndex("Grid"); }, config);

    constexpr int kThreads = 4;
    constexpr uint64_t kOpsPerThread = 600;
    auto stream_op = [&](int t, uint64_t i, ReferenceModel* oracle) {
      // Same deterministic op sequence for the live run and the oracle.
      Rng rng(seed * 1000 + static_cast<uint64_t>(t) * 97 + i);
      const uint64_t id =
          1000000 + static_cast<uint64_t>(t) * kOpsPerThread + i;
      const Point p{rng.NextDouble(), rng.NextDouble(), id};
      if (i % 5 == 4) {
        // Remove a point this thread inserted earlier (i - 2 exists and,
        // by induction, was not removed: (i-2) % 5 == 2 and removal
        // targets lag by exactly 2).
        Rng prev(seed * 1000 + static_cast<uint64_t>(t) * 97 + (i - 2));
        const uint64_t prev_id =
            1000000 + static_cast<uint64_t>(t) * kOpsPerThread + (i - 2);
        const Point target{prev.NextDouble(), prev.NextDouble(), prev_id};
        if (oracle != nullptr) {
          EXPECT_TRUE(oracle->Remove(target));
        } else {
          EXPECT_TRUE(index.Remove(target));
        }
      } else {
        if (oracle != nullptr) {
          oracle->Insert(p);
        } else {
          index.Insert(p);
        }
      }
    };

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          stream_op(t, i, nullptr);
        }
      });
    }
    for (auto& th : writers) th.join();

    ReferenceModel oracle;
    oracle.Build(base);
    for (int t = 0; t < kThreads; ++t) {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        stream_op(t, i, &oracle);
      }
    }

    EXPECT_GT(index.merge_count(), 0u) << "seed " << seed;
    index.MergeNow();  // Drain the tail: the merged base IS the state.
    EXPECT_EQ(index.delta_count(), 0u);

    auto got = index.CollectAll();
    auto want = oracle.points();
    auto by_id = [](const Point& a, const Point& b) { return a.id < b.id; };
    std::sort(got.begin(), got.end(), by_id);
    std::sort(want.begin(), want.end(), by_id);
    ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "seed " << seed << " index " << i;
    }
  }
}

}  // namespace
}  // namespace elsi
