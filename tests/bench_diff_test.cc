// Tests for the bench_diff comparison library (tools/bench_diff_lib.h):
// JSON parsing, path flattening with name-keyed arrays, metric
// classification, tolerance edges, and the gate semantics the CI
// bench-regression job relies on — an injected slowdown fails, an
// improvement passes, an exact-metric (checksum) change fails.

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bench_diff_lib.h"

namespace elsi {
namespace benchdiff {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << error;
  return value;
}

TEST(JsonParserTest, ParsesScalarsArraysObjects) {
  const JsonValue v = Parse(
      "{\"a\": 1.5, \"b\": \"text\", \"c\": true, \"d\": null,"
      " \"e\": [1, -2, 3e2], \"f\": {\"nested\": 0}}");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(v.Find("a")->number, 1.5);
  EXPECT_EQ(v.Find("b")->string, "text");
  EXPECT_TRUE(v.Find("c")->boolean);
  EXPECT_EQ(v.Find("d")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v.Find("e")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("e")->array[2].number, 300.0);
  EXPECT_DOUBLE_EQ(v.Find("f")->Find("nested")->number, 0.0);
}

TEST(JsonParserTest, HandlesEscapesAndRejectsGarbage) {
  EXPECT_EQ(Parse("{\"s\": \"a\\n\\\"b\\\"\"}").Find("s")->string,
            "a\n\"b\"");
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\": }", &v, &error));
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &v, &error));
  EXPECT_FALSE(ParseJson("[1, 2", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlattenTest, KeysArraysByNameAndIndex) {
  const JsonValue v = Parse(
      "{\"queries\": [{\"query\": \"point\", \"avg_us\": 2.0},"
      "              {\"query\": \"window\", \"avg_us\": 9.0}],"
      " \"raw\": [10, 20]}");
  std::map<std::string, JsonValue> flat;
  Flatten(v, "", &flat);
  ASSERT_TRUE(flat.count("queries[point].avg_us"));
  EXPECT_DOUBLE_EQ(flat["queries[window].avg_us"].number, 9.0);
  EXPECT_DOUBLE_EQ(flat["raw[0]"].number, 10.0);
  EXPECT_DOUBLE_EQ(flat["raw[1]"].number, 20.0);
}

TEST(FlattenTest, DisambiguatesSweepRowsByBatchAndThreads) {
  const JsonValue v = Parse(
      "{\"rows\": [{\"query\": \"point\", \"batch\": 64, \"avg_us\": 1.0},"
      "            {\"query\": \"point\", \"batch\": 256, \"avg_us\": 2.0}]}");
  std::map<std::string, JsonValue> flat;
  Flatten(v, "", &flat);
  EXPECT_DOUBLE_EQ(flat["rows[point/batch=64].avg_us"].number, 1.0);
  EXPECT_DOUBLE_EQ(flat["rows[point/batch=256].avg_us"].number, 2.0);
}

TEST(ClassifyTest, RoutesMetricFamilies) {
  EXPECT_EQ(ClassifyPath("queries[point].avg_us"),
            MetricClass::kTimeLowerBetter);
  EXPECT_EQ(ClassifyPath("benchmarks[BM_Build].real_time"),
            MetricClass::kTimeLowerBetter);
  EXPECT_EQ(ClassifyPath("queries[window].speedup"),
            MetricClass::kHigherBetter);
  EXPECT_EQ(ClassifyPath("queries[knn].recall"), MetricClass::kHigherBetter);
  EXPECT_EQ(ClassifyPath("checksum"), MetricClass::kExact);
  EXPECT_EQ(ClassifyPath("obs_enabled"), MetricClass::kExact);
  EXPECT_EQ(ClassifyPath("dataset_n"), MetricClass::kContext);
  EXPECT_EQ(ClassifyPath("queries[point].ipc"), MetricClass::kContextInfo);
  EXPECT_EQ(ClassifyPath("mixes[read95].llc_miss_per_op"),
            MetricClass::kContextInfo);
  EXPECT_EQ(ClassifyPath("branch_miss_per_op"), MetricClass::kContextInfo);
  // Observability columns are run-shape data, not performance: reported in
  // the diff but never gated, even though some end in timing-like suffixes.
  EXPECT_EQ(ClassifyPath("trace.spans_total"), MetricClass::kContextInfo);
  EXPECT_EQ(ClassifyPath("slow_queries.captured"), MetricClass::kContextInfo);
  EXPECT_EQ(ClassifyPath("slow_queries.threshold_us"),
            MetricClass::kContextInfo);
  EXPECT_EQ(ClassifyPath("context.num_cpus"), MetricClass::kIgnored);
  EXPECT_EQ(ClassifyPath("date"), MetricClass::kIgnored);
  EXPECT_EQ(ClassifyPath("benchmarks[BM_Build].iterations"),
            MetricClass::kIgnored);
}

constexpr char kBaseline[] =
    "{\"dataset_n\": 1000, \"checksum\": 42,"
    " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
    "                \"speedup\": 4.0}]}";

DiffReport DiffAgainstBaseline(const std::string& fresh,
                               DiffOptions options = {}) {
  return DiffStrings(kBaseline, fresh, options);
}

TEST(DiffTest, IdenticalRunsPass) {
  const DiffReport report = DiffAgainstBaseline(kBaseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failures, 0);
  EXPECT_GT(report.compared, 0);
}

TEST(DiffTest, ObservabilityColumnsNeverGate) {
  // Span totals and slow-query captures swing wildly with machine speed
  // and run shape; arbitrarily large moves must stay informational.
  const DiffReport report = DiffStrings(
      "{\"dataset_n\": 1000,"
      " \"trace\": {\"spans_total\": 10},"
      " \"slow_queries\": {\"captured\": 5, \"threshold_us\": 120.0}}",
      "{\"dataset_n\": 1000,"
      " \"trace\": {\"spans_total\": 90000},"
      " \"slow_queries\": {\"captured\": 0, \"threshold_us\": 9000.0}}",
      {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failures, 0);
}

TEST(DiffTest, InjectedRegressionFails) {
  // 25% slower than baseline, past the default 20% tolerance.
  const DiffReport report = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 12.5,"
      "                \"speedup\": 4.0}]}");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures, 1);
  EXPECT_NE(report.ToText().find("queries[point].avg_us"),
            std::string::npos);
}

TEST(DiffTest, RegressionWithinToleranceAndImprovementsPass) {
  // 15% slower: inside 20%. Speedup doubled: improvements never fail.
  const DiffReport report = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 11.5,"
      "                \"speedup\": 8.0}]}");
  EXPECT_TRUE(report.ok()) << report.ToText();
}

TEST(DiffTest, QualityDropFails) {
  const DiffReport report = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 1.0}]}");
  EXPECT_FALSE(report.ok());
}

TEST(DiffTest, ExactMetricChangeFails) {
  const DiffReport report = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 43,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 4.0}]}");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToText().find("checksum"), std::string::npos);
}

TEST(DiffTest, ContextMismatchFails) {
  const DiffReport report = DiffAgainstBaseline(
      "{\"dataset_n\": 2000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 4.0}]}");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToText().find("not comparable"), std::string::npos);
}

TEST(DiffTest, MissingMetricFails) {
  const DiffReport report = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42, \"queries\": []}");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToText().find("missing"), std::string::npos);
}

TEST(DiffTest, CounterColumnsNeverGate) {
  // Counter rates differ wildly across hosts (and read 0.0 where perf is
  // denied): any movement, even to zero, must pass.
  const char baseline[] =
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 4.0, \"ipc\": 2.5,"
      "                \"llc_miss_per_op\": 12.0}]}";
  const char fresh[] =
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 4.0, \"ipc\": 0.0,"
      "                \"llc_miss_per_op\": 0.0}]}";
  EXPECT_TRUE(DiffStrings(baseline, fresh, {}).ok());
  // And a baseline with counter columns diffs cleanly against a fresh run
  // from a build that predates them (missing-from-fresh is fatal for every
  // other class).
  const char fresh_without[] =
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 4.0}]}";
  const DiffReport report = DiffStrings(baseline, fresh_without, {});
  EXPECT_TRUE(report.ok()) << report.ToText();
}

TEST(DiffTest, AdvisoryTimeDemotesTimeFailuresOnly) {
  DiffOptions options;
  options.advisory_time = true;
  const DiffReport slow = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 50.0,"
      "                \"speedup\": 4.0}]}",
      options);
  EXPECT_TRUE(slow.ok());
  EXPECT_EQ(slow.warnings, 1);
  const DiffReport bad_checksum = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 7,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 10.0,"
      "                \"speedup\": 4.0}]}",
      options);
  EXPECT_FALSE(bad_checksum.ok());
}

TEST(DiffTest, OverridesAreSubstringMatchedLongestWins) {
  DiffOptions options;
  options.overrides["avg_us"] = 0.5;  // loosen point latency to 50%
  const DiffReport loose = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 14.0,"
      "                \"speedup\": 4.0}]}",
      options);
  EXPECT_TRUE(loose.ok()) << loose.ToText();
  options.overrides["queries[point].avg_us"] = 0.1;  // longer match wins
  const DiffReport tight = DiffAgainstBaseline(
      "{\"dataset_n\": 1000, \"checksum\": 42,"
      " \"queries\": [{\"query\": \"point\", \"avg_us\": 14.0,"
      "                \"speedup\": 4.0}]}",
      options);
  EXPECT_FALSE(tight.ok());
}

TEST(DiffTest, ParseErrorSurfacesAsFailure) {
  const DiffReport report = DiffStrings(kBaseline, "{not json", {});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].path, "<fresh>");
}

TEST(DirPairsTest, FreshFileWithoutBaselineIsNewNotAFailure) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "elsi_bench_diff_dirs";
  const std::filesystem::path baselines = root / "baselines";
  const std::filesystem::path fresh = root / "fresh";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(baselines);
  std::filesystem::create_directories(fresh);
  const auto write = [](const std::filesystem::path& p) {
    std::ofstream(p) << "{}";
  };
  write(baselines / "BENCH_old.json");
  write(fresh / "BENCH_old.json");
  write(fresh / "BENCH_added.json");   // new bench, no baseline yet
  write(fresh / "notes.txt");          // non-json: ignored entirely

  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<std::string> new_fresh;
  ASSERT_TRUE(CollectDirPairs(baselines.string(), fresh.string(), &pairs,
                              &new_fresh));
  // Only baseline-backed files become gated pairs; the baseline-less fresh
  // file is listed separately so the driver can report it as NEW without
  // counting a failure.
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, (baselines / "BENCH_old.json").string());
  EXPECT_EQ(pairs[0].second, (fresh / "BENCH_old.json").string());
  ASSERT_EQ(new_fresh.size(), 1u);
  EXPECT_EQ(new_fresh[0], (fresh / "BENCH_added.json").string());

  // An unreadable baseline dir is an error; an empty-but-real one is not.
  EXPECT_FALSE(CollectDirPairs((root / "missing").string(), fresh.string(),
                               &pairs, &new_fresh));
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace benchdiff
}  // namespace elsi
