// SlowQueryStore tests: adaptive-threshold warmup and tracking under a
// shifting latency distribution, capture of complete cross-thread trace
// trees (assembled by trace_id), bounded-ring wrap, orphan accounting, and
// the /debug/slow JSON document shape.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/slow_query.h"
#include "obs/trace.h"

namespace elsi {
namespace obs {
namespace {

/// Synthetic root-span event: the store only reads ids, name, and times.
TraceEvent Root(uint64_t trace_id, uint64_t dur_ns,
                const char* name = "test.query") {
  TraceEvent event;
  event.name = name;
  event.start_ns = trace_id * 1000;
  event.dur_ns = dur_ns;
  event.trace_id = trace_id;
  event.span_id = trace_id;
  event.parent_id = 0;
  return event;
}

#if ELSI_OBS_ENABLED

class SlowQueryStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SlowQueryStore::Get().Clear();
    SlowQueryStore::Get().ForceThresholdNs(0);
    SlowQueryStore::Get().SetQuantile(0.95);
    TraceRegistry::Get().Clear();
  }
  void TearDown() override {
    SlowQueryStore::Get().Clear();
    SlowQueryStore::Get().ForceThresholdNs(0);
  }
};

TEST_F(SlowQueryStoreTest, NoThresholdBeforeWarmup) {
  SlowQueryStore& store = SlowQueryStore::Get();
  for (uint64_t i = 0; i < SlowQueryStore::kWarmupRoots - 1; ++i) {
    store.OnRootSpan(Root(i + 1, 1000));
  }
  EXPECT_EQ(store.threshold_ns(), 0u);
  EXPECT_TRUE(store.Snapshot().empty());  // nothing captures while cold
}

TEST_F(SlowQueryStoreTest, ThresholdTracksTheRollingQuantile) {
  SlowQueryStore& store = SlowQueryStore::Get();
  // 1000ns everywhere: once warmed up, the p95 threshold is 1000.
  uint64_t id = 1;
  for (uint64_t i = 0; i < 128; ++i) store.OnRootSpan(Root(id++, 1000));
  EXPECT_EQ(store.threshold_ns(), 1000u);

  // Distribution shifts 10x: after the window refills and the periodic
  // recompute runs, the threshold follows.
  for (uint64_t i = 0; i < SlowQueryStore::kLatencyWindow + 64; ++i) {
    store.OnRootSpan(Root(id++, 10000));
  }
  EXPECT_EQ(store.threshold_ns(), 10000u);
}

TEST_F(SlowQueryStoreTest, AdaptiveCaptureTakesOnlyTailQueries) {
  SlowQueryStore& store = SlowQueryStore::Get();
  uint64_t id = 1;
  // 90 fast : 10 slow per 100 — the p95 rank lands inside the slow band,
  // so the adaptive threshold settles at the slow latency and fast queries
  // stop capturing. Enough rounds that the handful of fast captures taken
  // while the threshold was still warming up get evicted from the ring.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 90; ++i) store.OnRootSpan(Root(id++, 1000));
    for (int i = 0; i < 10; ++i) store.OnRootSpan(Root(id++, 50000));
  }
  EXPECT_EQ(store.threshold_ns(), 50000u);
  const std::vector<SlowTrace> captured = store.Snapshot();
  ASSERT_EQ(captured.size(), SlowQueryStore::kCapacity);
  for (const SlowTrace& trace : captured) {
    EXPECT_EQ(trace.dur_ns, 50000u) << "captured a fast query";
    EXPECT_GE(trace.dur_ns, trace.threshold_ns);
  }
}

TEST_F(SlowQueryStoreTest, RingWrapsAtCapacityAndCountsDrops) {
  SlowQueryStore& store = SlowQueryStore::Get();
  store.ForceThresholdNs(1);  // capture everything
  const uint64_t dropped_before = GetCounter("slow_queries.dropped").Value();
  const size_t total = SlowQueryStore::kCapacity + 7;
  for (uint64_t i = 0; i < total; ++i) {
    store.OnRootSpan(Root(i + 1, 1000 + i));
  }
  const std::vector<SlowTrace> captured = store.Snapshot();
  ASSERT_EQ(captured.size(), SlowQueryStore::kCapacity);
  // Oldest-first order survives the wrap: the first 7 captures were
  // overwritten, so the ring starts at seq 7.
  EXPECT_EQ(captured.front().seq, 7u);
  EXPECT_EQ(captured.back().seq, total - 1);
  for (size_t i = 1; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].seq, captured[i - 1].seq + 1);
  }
  EXPECT_EQ(GetCounter("slow_queries.dropped").Value() - dropped_before, 7u);
}

TEST_F(SlowQueryStoreTest, CapturesAssembleTheTreeAcrossThreads) {
  SlowQueryStore::Get().ForceThresholdNs(1);
  ThreadPool pool(4);
  {
    ELSI_TRACE_QUERY_SPAN("slow.fanout");
    TaskGroup group(&pool);
    for (int i = 0; i < 6; ++i) {
      group.Run([] { ELSI_TRACE_SPAN("slow.child"); });
    }
    group.Wait();
  }  // root closes here and feeds the store

  const std::vector<SlowTrace> captured = SlowQueryStore::Get().Snapshot();
  ASSERT_EQ(captured.size(), 1u);
  const SlowTrace& trace = captured.front();
  EXPECT_STREQ(trace.root_name, "slow.fanout");
  EXPECT_EQ(trace.spans.size(), 7u);  // root + 6 children
  EXPECT_EQ(trace.orphans, 0u);
  // Root sorts first (earliest start, longest duration).
  EXPECT_STREQ(trace.spans.front().event.name, "slow.fanout");
  for (const SlowTraceSpan& span : trace.spans) {
    EXPECT_EQ(span.event.trace_id, trace.trace_id);
  }
}

TEST_F(SlowQueryStoreTest, NestedQuerySpansDoNotDoubleCapture) {
  SlowQueryStore::Get().ForceThresholdNs(1);
  {
    // A batch entry point that internally reaches another query entry
    // point: only the outermost (the trace root) may capture.
    ELSI_TRACE_QUERY_SPAN("slow.outer_batch");
    { ELSI_TRACE_QUERY_SPAN("slow.inner_query"); }
  }
  const std::vector<SlowTrace> captured = SlowQueryStore::Get().Snapshot();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_STREQ(captured.front().root_name, "slow.outer_batch");
}

TEST_F(SlowQueryStoreTest, JsonReportsThresholdPhasesAndShards) {
  SlowQueryStore::Get().ForceThresholdNs(1);
  {
    ELSI_TRACE_QUERY_SPAN("slow.json_root");
    { ELSI_TRACE_SPAN("shard0"); }
    { ELSI_TRACE_SPAN("shard1"); }
    { ELSI_TRACE_SPAN("slow.merge"); }
  }
  const std::string json = SlowQueriesJson();
  EXPECT_NE(json.find("\"threshold_us\": "), std::string::npos);
  EXPECT_NE(json.find("\"root\": \"slow.json_root\""), std::string::npos);
  EXPECT_NE(json.find("\"span_count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"orphans\": 0"), std::string::npos);
  // Phases cover every span name; the shard block only the shard spans.
  EXPECT_NE(json.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"slow.merge\", \"count\": 1"),
            std::string::npos);
  const size_t shards_pos = json.find("\"shards\": [");
  ASSERT_NE(shards_pos, std::string::npos);
  const size_t spans_pos = json.find("\"spans\": [", shards_pos);
  ASSERT_NE(spans_pos, std::string::npos);
  const std::string shard_block =
      json.substr(shards_pos, spans_pos - shards_pos);
  EXPECT_NE(shard_block.find("{\"name\": \"shard0\", \"count\": 1"),
            std::string::npos);
  EXPECT_NE(shard_block.find("{\"name\": \"shard1\", \"count\": 1"),
            std::string::npos);
  EXPECT_EQ(shard_block.find("slow.merge"), std::string::npos)
      << "non-shard span leaked into the shard block";
}

TEST_F(SlowQueryStoreTest, EmptyStoreStillEmitsValidJson) {
  const std::string json = SlowQueriesJson();
  EXPECT_NE(json.find("\"traces\": []"), std::string::npos);
}

#else  // !ELSI_OBS_ENABLED

// Stub mode: the store accepts roots, captures nothing, and the JSON
// document stays valid so /debug/slow never breaks a scraper.
TEST(SlowQueryStoreStubTest, InertButValidJson) {
  SlowQueryStore& store = SlowQueryStore::Get();
  store.ForceThresholdNs(1);
  store.OnRootSpan(Root(1, 1000));
  EXPECT_TRUE(store.Snapshot().empty());
  EXPECT_EQ(store.threshold_ns(), 0u);
  const std::string json = SlowQueriesJson();
  EXPECT_NE(json.find("\"traces\": []"), std::string::npos);
}

#endif  // ELSI_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace elsi
