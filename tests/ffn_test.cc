#include "ml/ffn.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

// All four inference entry points — Forward, ForwardInto, ForwardBatch, and
// ForwardBatchInto — run the same kernels in the same order, so they must
// agree bit for bit, trained or not, for every architecture and activation.
TEST(FfnTest, InferencePathsAgreeBitExactly) {
  Rng rng(99);
  const std::vector<int> hiddens[] = {{}, {8}, {16, 8}};
  for (const auto& hidden : hiddens) {
    for (const auto act : {OutputActivation::kLinear,
                           OutputActivation::kSigmoid}) {
      Ffn net(2, hidden, 3, 77, act);
      const size_t n = 13;
      std::vector<double> xs(n * 2);
      for (double& v : xs) v = rng.NextDouble() * 2.0 - 1.0;
      Matrix xm(n, 2);
      for (size_t i = 0; i < n * 2; ++i) xm.data()[i] = xs[i];

      const Matrix batch = net.ForwardBatch(xm);
      InferenceScratch scratch;
      std::vector<double> batch_into(n * 3);
      net.ForwardBatchInto(xs.data(), n, &scratch, batch_into.data());
      for (size_t i = 0; i < n; ++i) {
        const auto fwd = net.Forward({xs[2 * i], xs[2 * i + 1]});
        double into[3];
        net.ForwardInto(xs.data() + 2 * i, &scratch, into);
        for (size_t j = 0; j < 3; ++j) {
          ASSERT_EQ(fwd[j], batch.At(i, j)) << "row " << i;
          ASSERT_EQ(fwd[j], into[j]) << "row " << i;
          ASSERT_EQ(fwd[j], batch_into[i * 3 + j]) << "row " << i;
        }
      }
    }
  }
}

// The hot path: PredictScalar on 1-in/1-out networks equals Forward.
TEST(FfnTest, PredictScalarMatchesForwardBitExactly) {
  Ffn net(1, {16}, 1, 5);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.NextDouble();
    ASSERT_EQ(net.PredictScalar(x), net.Forward({x})[0]);
  }
}

// Scratch buffers grow to the widest layer seen and are reusable across
// networks of different widths without perturbing results.
TEST(FfnTest, ScratchIsReusableAcrossNetworks) {
  const Ffn wide(1, {32, 32}, 1, 3);
  const Ffn narrow(1, {4}, 1, 4);
  InferenceScratch scratch;
  const double x = 0.625;
  double out_wide = 0.0, out_narrow = 0.0;
  wide.ForwardInto(&x, &scratch, &out_wide);
  narrow.ForwardInto(&x, &scratch, &out_narrow);
  EXPECT_EQ(out_wide, wide.Forward({x})[0]);
  EXPECT_EQ(out_narrow, narrow.Forward({x})[0]);
  // Using the grown scratch again on the wide net stays exact.
  wide.ForwardInto(&x, &scratch, &out_wide);
  EXPECT_EQ(out_wide, wide.Forward({x})[0]);
}

TEST(FfnTest, OutputShapeMatchesConfiguration) {
  const Ffn net(3, {8, 4}, 2, 1);
  const auto out = net.Forward({0.1, 0.2, 0.3});
  EXPECT_EQ(out.size(), 2u);
}

TEST(FfnTest, DeterministicInitialisation) {
  const Ffn a(2, {16}, 1, 5);
  const Ffn b(2, {16}, 1, 5);
  EXPECT_EQ(a.GetParameters(), b.GetParameters());
}

TEST(FfnTest, ParameterRoundTrip) {
  Ffn a(2, {8}, 1, 1);
  Ffn b(2, {8}, 1, 2);
  EXPECT_NE(a.GetParameters(), b.GetParameters());
  b.SetParameters(a.GetParameters());
  EXPECT_EQ(a.GetParameters(), b.GetParameters());
  EXPECT_EQ(a.Forward({0.3, -0.7}), b.Forward({0.3, -0.7}));
}

TEST(FfnTest, ParameterCountIsExact) {
  const Ffn net(3, {5, 4}, 2, 1);
  // (3*5 + 5) + (5*4 + 4) + (4*2 + 2) = 20 + 24 + 10.
  EXPECT_EQ(net.ParameterCount(), 54u);
  EXPECT_EQ(net.GetParameters().size(), 54u);
}

TEST(FfnTest, LearnsLinearFunction) {
  // y = 2x - 1 on [0, 1]; a linear (no-hidden) model must fit to high
  // precision.
  Rng rng(3);
  const size_t n = 256;
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double xi = rng.NextDouble();
    x.At(i, 0) = xi;
    y.At(i, 0) = 2.0 * xi - 1.0;
  }
  Ffn net(1, {}, 1, 7);
  FfnTrainOptions opts;
  opts.epochs = 800;
  opts.learning_rate = 0.05;
  const double loss = net.Train(x, y, opts);
  EXPECT_LT(loss, 1e-5);
  EXPECT_NEAR(net.Predict1({0.25}), -0.5, 0.02);
}

TEST(FfnTest, LearnsNonlinearCdfShape) {
  // Approximating a power-law CDF (the index-model workload): x in [0,1],
  // y = x^{1/4}. One hidden layer should reach small error.
  Rng rng(5);
  const size_t n = 512;
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i) / (n - 1);
    x.At(i, 0) = xi;
    y.At(i, 0) = std::pow(xi, 0.25);
  }
  Ffn net(1, {32}, 1, 11);
  FfnTrainOptions opts;
  opts.epochs = 4000;
  opts.learning_rate = 0.01;
  net.Train(x, y, opts);
  // The CDF has unbounded slope at 0, so judge by mean absolute error plus
  // a loose cap on the worst point (the error-bound mechanism of the index
  // absorbs the residual in practice).
  double max_err = 0.0;
  double sum_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double e = std::fabs(net.Predict1({x.At(i, 0)}) - y.At(i, 0));
    max_err = std::max(max_err, e);
    sum_err += e;
  }
  EXPECT_LT(sum_err / n, 0.03);
  EXPECT_LT(max_err, 0.35);
}

TEST(FfnTest, TrainingReducesLoss) {
  Rng rng(9);
  const size_t n = 128;
  Matrix x(n, 2), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y.At(i, 0) = std::sin(3 * x.At(i, 0)) * x.At(i, 1);
  }
  Ffn net(2, {16}, 1, 13);
  FfnTrainOptions opts;
  opts.epochs = 1;
  const double first = net.Train(x, y, opts);
  opts.epochs = 400;
  const double last = net.Train(x, y, opts);
  EXPECT_LT(last, first * 0.2);
}

TEST(FfnTest, SigmoidOutputStaysInUnitInterval) {
  Ffn net(2, {8}, 1, 17, OutputActivation::kSigmoid);
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const double v = net.Predict1({rng.NextDouble(-10, 10),
                                   rng.NextDouble(-10, 10)});
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(FfnTest, SigmoidLearnsBinaryClassification) {
  // Separable problem: label 1 iff x0 + x1 > 1.
  Rng rng(21);
  const size_t n = 400;
  Matrix x(n, 2), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y.At(i, 0) = (x.At(i, 0) + x.At(i, 1) > 1.0) ? 1.0 : 0.0;
  }
  Ffn net(2, {8}, 1, 23, OutputActivation::kSigmoid);
  FfnTrainOptions opts;
  opts.epochs = 1200;
  opts.learning_rate = 0.05;
  net.Train(x, y, opts);
  int correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const double p = net.Predict1({x.At(i, 0), x.At(i, 1)});
    if ((p > 0.5) == (y.At(i, 0) > 0.5)) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(n * 0.95));
}

TEST(FfnTest, MiniBatchTrainingConverges) {
  Rng rng(25);
  const size_t n = 300;
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y.At(i, 0) = 0.5 * x.At(i, 0) + 0.1;
  }
  Ffn net(1, {8}, 1, 27);
  FfnTrainOptions opts;
  opts.epochs = 150;
  opts.batch_size = 32;
  const double loss = net.Train(x, y, opts);
  EXPECT_LT(loss, 1e-3);
}

TEST(FfnTest, EarlyStoppingTerminatesBeforeEpochLimit) {
  // With early stopping enabled the epoch cap can be absurdly high and the
  // run must still terminate quickly once the loss plateaus. The assertion
  // is on wall-clock feasibility (the test itself) and on the loss not being
  // worse than a fresh network's.
  Matrix x(16, 1), y(16, 1);
  for (size_t i = 0; i < 16; ++i) {
    x.At(i, 0) = static_cast<double>(i) / 15.0;
    y.At(i, 0) = 0.0;
  }
  Ffn net(1, {4}, 1, 29);
  Ffn fresh(1, {4}, 1, 29);
  FfnTrainOptions opts;
  opts.epochs = 100000;  // Would take visibly long without early stop.
  opts.early_stop_rel_tol = 1e-4;
  opts.patience = 25;
  const double loss = net.Train(x, y, opts);
  const double initial = fresh.TrainStep(x, y, 0.0);
  EXPECT_LT(loss, initial);
}

// Finite-difference gradient check through one TrainStep: after a tiny-lr
// step, the loss on the same batch must not increase (descent direction).
TEST(FfnTest, TrainStepDescendsLoss) {
  Rng rng(31);
  const size_t n = 64;
  Matrix x(n, 2), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y.At(i, 0) = x.At(i, 0) * x.At(i, 1);
  }
  Ffn net(2, {8}, 1, 33);
  double prev = net.TrainStep(x, y, 1e-3);
  for (int step = 0; step < 50; ++step) {
    const double cur = net.TrainStep(x, y, 1e-3);
    prev = cur;
  }
  // After 50 steps the loss must be below the first step's loss.
  Ffn fresh(2, {8}, 1, 33);
  const double initial = fresh.TrainStep(x, y, 1e-3);
  EXPECT_LT(prev, initial);
}

TEST(FfnDeathTest, InvalidDimensionsAbort) {
  EXPECT_DEATH(Ffn(0, {4}, 1, 1), "CHECK failed");
  EXPECT_DEATH(Ffn(2, {0}, 1, 1), "CHECK failed");
}

}  // namespace
}  // namespace elsi
