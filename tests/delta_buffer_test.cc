#include "storage/delta_buffer.h"

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(DeltaBufferTest, InsertedPointsAreScannable) {
  DeltaBuffer buf;
  buf.AddInsert(Point{0.1, 0.1, 1}, 0.1);
  buf.AddInsert(Point{0.5, 0.5, 2}, 0.5);
  buf.AddInsert(Point{0.9, 0.9, 3}, 0.9);
  std::vector<Point> out;
  buf.ScanKeyRange(0.2, 0.95, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_EQ(out[1].id, 3u);
}

TEST(DeltaBufferTest, ScanInRectAppliesSpatialFilter) {
  DeltaBuffer buf;
  buf.AddInsert(Point{0.3, 0.9, 1}, 0.3);
  buf.AddInsert(Point{0.4, 0.1, 2}, 0.4);
  std::vector<Point> out;
  buf.ScanKeyRangeInRect(0.0, 1.0, Rect::Of(0.0, 0.0, 1.0, 0.5), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);
}

TEST(DeltaBufferTest, DeleteOfInsertedPointRemovesIt) {
  DeltaBuffer buf;
  buf.AddInsert(Point{0.5, 0.5, 7}, 0.5);
  EXPECT_TRUE(buf.AddDelete(7, 0.5));
  EXPECT_EQ(buf.inserted_count(), 0u);
  EXPECT_EQ(buf.deleted_count(), 0u);  // Never reached the base index.
  EXPECT_FALSE(buf.IsDeleted(7));
}

TEST(DeltaBufferTest, DeleteOfBasePointIsTracked) {
  DeltaBuffer buf;
  EXPECT_FALSE(buf.AddDelete(42, 0.3));
  EXPECT_TRUE(buf.IsDeleted(42));
  EXPECT_EQ(buf.deleted_count(), 1u);
}

TEST(DeltaBufferTest, DuplicateKeysDistinguishedById) {
  DeltaBuffer buf;
  buf.AddInsert(Point{0.5, 0.1, 1}, 0.5);
  buf.AddInsert(Point{0.5, 0.2, 2}, 0.5);
  EXPECT_TRUE(buf.AddDelete(2, 0.5));
  std::vector<Point> out;
  buf.ScanKeyRange(0.5, 0.5, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
}

TEST(DeltaBufferTest, CollectInsertedGathersAll) {
  DeltaBuffer buf;
  for (uint64_t i = 0; i < 10; ++i) {
    buf.AddInsert(Point{0.1 * i, 0.0, i}, 0.1 * i);
  }
  std::vector<Point> out;
  buf.CollectInserted(&out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(DeltaBufferTest, ClearResetsEverything) {
  DeltaBuffer buf;
  buf.AddInsert(Point{0.5, 0.5, 1}, 0.5);
  buf.AddDelete(9, 0.2);
  buf.Clear();
  EXPECT_EQ(buf.inserted_count(), 0u);
  EXPECT_EQ(buf.deleted_count(), 0u);
  EXPECT_FALSE(buf.IsDeleted(9));
}

}  // namespace
}  // namespace elsi
