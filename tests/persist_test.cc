// Persistence subsystem tests: binary io primitives, snapshot
// corruption-injection (truncation sweep, bit flips), WAL torn-tail
// handling, crash recovery via OpenOrRecover, and the model-cache CSV
// migration. The *Concurrent* test exercises the rebuild-swap under
// concurrent readers (run under TSan by CI).

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/elsi.h"
#include "core/rebuild_predictor.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "persist/elsi.h"
#include "persist/io.h"
#include "persist/model_cache.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace elsi {
namespace persist {
namespace {

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "elsi_persist_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 50;
  cfg.learning_rate = 0.03;
  return cfg;
}

std::unique_ptr<SpatialIndex> BuildZm(const Dataset& data) {
  BaseIndexScale scale;
  scale.leaf_target = 400;
  auto index = MakeBaseIndex(
      BaseIndexKind::kZM, std::make_shared<DirectTrainer>(FastModel()), scale);
  index->Build(data);
  return index;
}

// --- io primitives --------------------------------------------------------

TEST(IoTest, Crc32MatchesReferenceVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(IoTest, WriterReaderRoundTripAllTypes) {
  Writer w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-12345);
  w.I64(-9876543210ll);
  w.F64(3.14159);
  w.Bool(true);
  w.Str("hello");
  w.F64Vec({1.0, -2.5, 1e300});
  w.U64Vec({7, 8, 9});
  PutPoint(w, {0.25, 0.75, 42});
  PutRect(w, {0.1, 0.2, 0.3, 0.4});

  Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I32(), -12345);
  EXPECT_EQ(r.I64(), -9876543210ll);
  EXPECT_EQ(r.F64(), 3.14159);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  std::vector<double> dv;
  EXPECT_TRUE(r.F64Vec(&dv));
  EXPECT_EQ(dv, (std::vector<double>{1.0, -2.5, 1e300}));
  std::vector<uint64_t> uv;
  EXPECT_TRUE(r.U64Vec(&uv));
  EXPECT_EQ(uv, (std::vector<uint64_t>{7, 8, 9}));
  const Point p = GetPoint(r);
  EXPECT_EQ(p.id, 42u);
  const Rect rect = GetRect(r);
  EXPECT_EQ(rect.hi_y, 0.4);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(IoTest, ReaderLatchesFailureOnUnderflow) {
  Writer w;
  w.U32(7);
  Reader r(w.buffer());
  EXPECT_EQ(r.U64(), 0u);  // 4 bytes short.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // Still failed, even though 4 bytes exist.
}

TEST(IoTest, VectorReadsRejectOverlargeCounts) {
  Writer w;
  w.U64(1ull << 60);  // Claims 2^60 doubles.
  Reader r(w.buffer());
  std::vector<double> out;
  EXPECT_FALSE(r.F64Vec(&out));
  EXPECT_TRUE(out.empty());  // No allocation happened.
}

// --- snapshot format ------------------------------------------------------

TEST(SnapshotTest, SaveLoadRoundTrip) {
  const std::string dir = TempDir("snap");
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 500, 7);
  auto index = BuildZm(data);
  const std::string path = SnapshotPath(dir, 1);
  ASSERT_TRUE(Snapshot::Save(*index, path, /*last_lsn=*/123));

  SnapshotMeta meta;
  EXPECT_TRUE(Snapshot::Validate(path, &meta));
  EXPECT_EQ(meta.kind, "ZM");
  EXPECT_EQ(meta.count, 500u);
  EXPECT_EQ(meta.last_lsn, 123u);

  auto restored = Snapshot::Load(path, {}, &meta);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->size(), 500u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotTest, TruncationSweepNeverLoads) {
  const std::string dir = TempDir("trunc");
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 300, 11);
  auto index = BuildZm(data);
  const std::string path = SnapshotPath(dir, 1);
  ASSERT_TRUE(Snapshot::Save(*index, path));
  std::string full;
  ASSERT_TRUE(ReadFile(path, &full));

  // Every proper prefix must be rejected — sample offsets densely at the
  // front (headers) and sparsely through the body.
  std::vector<size_t> cuts;
  for (size_t i = 0; i < std::min<size_t>(64, full.size()); ++i) {
    cuts.push_back(i);
  }
  for (size_t i = 64; i < full.size(); i += full.size() / 97 + 1) {
    cuts.push_back(i);
  }
  const std::string cut_path = dir + "/cut.snap";
  for (const size_t cut : cuts) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(Snapshot::Validate(cut_path)) << "cut at " << cut;
    EXPECT_EQ(Snapshot::Load(cut_path), nullptr) << "cut at " << cut;
  }
  std::filesystem::remove_all(dir);
}

TEST(SnapshotTest, BitFlipSweepNeverLoadsSilently) {
  const std::string dir = TempDir("flip");
  const Dataset data = GenerateDataset(DatasetKind::kSkewed, 300, 13);
  auto index = BuildZm(data);
  const std::string path = SnapshotPath(dir, 1);
  ASSERT_TRUE(Snapshot::Save(*index, path));
  std::string full;
  ASSERT_TRUE(ReadFile(path, &full));
  const Dataset expect_contents = index->CollectAll();

  const std::string flip_path = dir + "/flip.snap";
  for (size_t i = 0; i < full.size(); i += full.size() / 149 + 1) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    // A flipped byte must either fail the load (expected: every payload
    // byte is CRC-covered) — it must never produce a *different* index.
    auto loaded = Snapshot::Load(flip_path);
    EXPECT_EQ(loaded, nullptr) << "flip at " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(SnapshotTest, ListSnapshotsOrdersAndIgnoresForeignFiles) {
  const std::string dir = TempDir("list");
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 100, 3);
  auto index = BuildZm(data);
  ASSERT_TRUE(Snapshot::Save(*index, SnapshotPath(dir, 12)));
  ASSERT_TRUE(Snapshot::Save(*index, SnapshotPath(dir, 3)));
  std::ofstream(dir + "/snapshot-junk.snap") << "x";
  std::ofstream(dir + "/other.txt") << "x";
  const auto found = ListSnapshots(dir);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].first, 3u);
  EXPECT_EQ(found[1].first, 12u);
  std::filesystem::remove_all(dir);
}

// --- WAL ------------------------------------------------------------------

TEST(WalTest, AppendReopenReplay) {
  const std::string dir = TempDir("wal");
  WalWriterOptions opts;
  opts.fsync_every = 4;
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(dir, 1, opts));
    for (uint64_t i = 0; i < 10; ++i) {
      const uint64_t lsn = wal.Append(
          kWalOpInsert, {0.1 * static_cast<double>(i), 0.5, 100 + i});
      EXPECT_EQ(lsn, i + 1);
    }
  }
  std::vector<WalRecord> seen;
  WalReplayStats stats;
  ASSERT_TRUE(WalReplay(
      dir, 0, [&seen](const WalRecord& r) { seen.push_back(r); }, &stats));
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(stats.applied, 10u);
  EXPECT_EQ(stats.last_lsn, 10u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(seen[3].p.id, 103u);

  // Replay floor skips what the snapshot already covers.
  seen.clear();
  ASSERT_TRUE(WalReplay(
      dir, 7, [&seen](const WalRecord& r) { seen.push_back(r); }, &stats));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(stats.skipped, 7u);

  // Reopen continues the LSN sequence after what is on disk.
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(dir, stats.last_lsn + 1, opts));
    EXPECT_EQ(wal.Append(kWalOpDelete, {0.5, 0.5, 999}), 11u);
  }
  seen.clear();
  ASSERT_TRUE(WalReplay(
      dir, 0, [&seen](const WalRecord& r) { seen.push_back(r); }, &stats));
  EXPECT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.back().op, kWalOpDelete);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, RotationSplitsSegmentsAndTruncateThroughPrunes) {
  const std::string dir = TempDir("rot");
  WalWriterOptions opts;
  opts.fsync_every = 0;
  opts.segment_bytes = 256;  // A few records per segment.
  WalWriter wal;
  ASSERT_TRUE(wal.Open(dir, 1, opts));
  for (uint64_t i = 0; i < 50; ++i) {
    wal.Append(kWalOpInsert, {0.5, 0.5, i});
  }
  const auto segments = ListWalSegments(dir);
  ASSERT_GT(segments.size(), 2u);

  WalReplayStats stats;
  ASSERT_TRUE(WalReplay(dir, 0, [](const WalRecord&) {}, &stats));
  EXPECT_EQ(stats.applied, 50u);

  // Trimming through LSN 25 must drop the fully covered leading segments
  // but keep every record past 25 replayable.
  wal.TruncateThrough(25);
  EXPECT_LT(ListWalSegments(dir).size(), segments.size());
  std::vector<uint64_t> lsns;
  ASSERT_TRUE(WalReplay(
      dir, 25, [&lsns](const WalRecord& r) { lsns.push_back(r.lsn); },
      &stats));
  ASSERT_FALSE(lsns.empty());
  EXPECT_EQ(lsns.front(), 26u);
  EXPECT_EQ(lsns.back(), 50u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, TornTailIsDetectedReplayedAndHealedOnReopen) {
  const std::string dir = TempDir("torn");
  WalWriterOptions opts;
  opts.fsync_every = 0;
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(dir, 1, opts));
    for (uint64_t i = 0; i < 8; ++i) {
      wal.Append(kWalOpInsert, {0.5, 0.5, i});
    }
  }
  // Simulate a crash mid-append: cut the last record in half.
  const auto segments = ListWalSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const auto size = std::filesystem::file_size(segments[0].second);
  std::filesystem::resize_file(segments[0].second, size - 17);

  WalReplayStats stats;
  std::vector<WalRecord> seen;
  ASSERT_TRUE(WalReplay(
      dir, 0, [&seen](const WalRecord& r) { seen.push_back(r); }, &stats));
  EXPECT_EQ(stats.applied, 7u);  // The torn 8th record is dropped.
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.last_lsn, 7u);

  // Reopen truncates the torn bytes and appends cleanly after them.
  {
    WalWriter wal;
    ASSERT_TRUE(wal.Open(dir, stats.last_lsn + 1, opts));
    wal.Append(kWalOpInsert, {0.25, 0.25, 777});
  }
  seen.clear();
  ASSERT_TRUE(WalReplay(
      dir, 0, [&seen](const WalRecord& r) { seen.push_back(r); }, &stats));
  ASSERT_EQ(seen.size(), 8u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(seen.back().p.id, 777u);
  EXPECT_EQ(seen.back().lsn, 8u);
  std::filesystem::remove_all(dir);
}

TEST(WalTest, DurableLsnMarksGroupCommitBoundary) {
  const std::string dir = TempDir("durable");
  const std::string crash_dir = TempDir("durable_crash");
  WalWriterOptions opts;
  opts.fsync_every = 4;
  WalWriter wal;
  ASSERT_TRUE(wal.Open(dir, 1, opts));
  EXPECT_EQ(wal.durable_lsn(), 0u);
  const auto segments = ListWalSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  const auto header_bytes = std::filesystem::file_size(segments[0].second);

  // Group commit fsyncs at records 4 and 8; records 9..10 stay framed in
  // the OS but not yet durable.
  for (uint64_t i = 1; i <= 10; ++i) {
    wal.Append(kWalOpInsert, {0.1, 0.5, i});
    EXPECT_EQ(wal.durable_lsn(), i >= 8 ? 8u : (i >= 4 ? 4u : 0u)) << i;
  }

  // Crash-point: clone the segment cut exactly at the durable boundary
  // (what a power cut may leave behind) and replay the clone — exactly the
  // durable prefix must come back, contiguous, with no torn tail.
  const auto total_bytes = std::filesystem::file_size(segments[0].second);
  const auto record_bytes = (total_bytes - header_bytes) / 10;
  const std::string clone = crash_dir + "/" +
                            std::filesystem::path(segments[0].second)
                                .filename()
                                .string();
  std::filesystem::copy_file(segments[0].second, clone);
  std::filesystem::resize_file(
      clone, header_bytes + wal.durable_lsn() * record_bytes);
  WalReplayStats stats;
  std::vector<uint64_t> lsns;
  ASSERT_TRUE(WalReplay(
      crash_dir, 0, [&lsns](const WalRecord& r) { lsns.push_back(r.lsn); },
      &stats));
  EXPECT_EQ(stats.applied, 8u);
  EXPECT_FALSE(stats.torn_tail);
  for (size_t i = 0; i < lsns.size(); ++i) {
    EXPECT_EQ(lsns[i], i + 1);  // No holes in the durable prefix.
  }

  // An explicit Sync closes the window.
  ASSERT_TRUE(wal.Sync());
  EXPECT_EQ(wal.durable_lsn(), 10u);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(crash_dir);
}

// --- crash recovery -------------------------------------------------------

TEST(DurableElsiTest, OpenBuildReopenRecoversExactContents) {
  const std::string dir = TempDir("recover");
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 400, 17);
  DurableElsiOptions opts;
  opts.kind = "ZM";
  opts.trainer = std::make_shared<DirectTrainer>(FastModel());
  opts.wal.fsync_every = 1;

  std::vector<Point> probes;
  size_t size_before = 0;
  {
    auto durable = DurableElsi::OpenOrRecover(dir, opts);
    ASSERT_NE(durable, nullptr);
    EXPECT_EQ(durable->size(), 0u);
    durable->Build(data);
    // Updates past the checkpoint live only in the WAL.
    Rng rng(99);
    for (uint64_t i = 0; i < 150; ++i) {
      durable->Insert({rng.NextDouble(), rng.NextDouble(), 90000 + i});
    }
    for (size_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(durable->Remove(data[i * 7]));
    }
    size_before = durable->size();
    probes = SamplePointQueries(data, 50, 5);
    probes.push_back({0.0, 0.0, 1});  // A removed/absent probe too.
  }  // Destructor = clean process exit; no checkpoint of the tail.

  RecoveryStats stats;
  auto recovered = DurableElsi::OpenOrRecover(dir, opts, &stats);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.wal.applied, 150u + 40u);
  EXPECT_EQ(recovered->size(), size_before);

  // Bit-identical answers: the recovered index must agree with a fresh
  // instance opened from the same directory on every probe.
  auto recovered2 = DurableElsi::OpenOrRecover(dir, opts);
  ASSERT_NE(recovered2, nullptr);
  for (const Point& q : probes) {
    Point a, b;
    const bool ha = recovered->PointQuery(q, &a);
    const bool hb = recovered2->PointQuery(q, &b);
    EXPECT_EQ(ha, hb);
    if (ha && hb) EXPECT_EQ(a.id, b.id);
  }
  const Rect window{0.2, 0.2, 0.6, 0.6};
  const auto wa = recovered->WindowQuery(window);
  const auto wb = recovered2->WindowQuery(window);
  EXPECT_EQ(wa.size(), wb.size());
  std::filesystem::remove_all(dir);
}

TEST(DurableElsiTest, CorruptNewestSnapshotFallsBackToOlderGeneration) {
  const std::string dir = TempDir("fallback");
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 300, 23);
  DurableElsiOptions opts;
  opts.kind = "ZM";
  opts.trainer = std::make_shared<DirectTrainer>(FastModel());
  opts.keep_snapshots = 4;
  size_t size_before = 0;
  uint64_t good_seq = 0;
  {
    auto durable = DurableElsi::OpenOrRecover(dir, opts);
    ASSERT_NE(durable, nullptr);
    durable->Build(data);
    durable->Insert({0.5, 0.5, 70001});
    ASSERT_TRUE(durable->Checkpoint());
    size_before = durable->size();
    good_seq = durable->last_snapshot_seq();
  }
  // Simulate a crash mid-snapshot-write that somehow left a garbage file at
  // the next sequence (e.g. torn by a power cut after rename on a broken
  // filesystem): recovery must discard it and use the older generation.
  std::ofstream(SnapshotPath(dir, good_seq + 1), std::ios::binary)
      << "not a snapshot";

  RecoveryStats stats;
  auto recovered = DurableElsi::OpenOrRecover(dir, opts, &stats);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_seq, good_seq);
  EXPECT_EQ(stats.snapshots_discarded, 1u);
  EXPECT_EQ(recovered->size(), size_before);
  std::filesystem::remove_all(dir);
}

TEST(DurableElsiTest, RecoveryWithNoSnapshotReplaysWholeWal) {
  const std::string dir = TempDir("walonly");
  DurableElsiOptions opts;
  opts.kind = "Grid";
  {
    auto durable = DurableElsi::OpenOrRecover(dir, opts);
    ASSERT_NE(durable, nullptr);
    for (uint64_t i = 0; i < 50; ++i) {
      durable->Insert({0.01 * static_cast<double>(i), 0.5, i});
    }
  }
  // Delete every snapshot, keeping only the WAL.
  for (const auto& [seq, path] : ListSnapshots(dir)) {
    std::filesystem::remove(path);
  }
  RecoveryStats stats;
  auto recovered = DurableElsi::OpenOrRecover(dir, opts, &stats);
  ASSERT_NE(recovered, nullptr);
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.wal.applied, 50u);
  EXPECT_EQ(recovered->size(), 50u);
  EXPECT_EQ(recovered->kind(), "Grid");
  std::filesystem::remove_all(dir);
}

TEST(DurableElsiTest, CrashAtGroupCommitBoundaryLosesOnlyUnsyncedTail) {
  // With fsync_every > 1, an insert becomes visible to readers as soon as
  // its WAL record is framed in the OS — before the group-commit fsync. A
  // power cut inside that window loses at most fsync_every - 1 records.
  // Simulate the cut by cloning the directory with the WAL truncated at the
  // durable boundary and recovering the clone: exactly the durable prefix
  // must come back.
  const std::string dir = TempDir("groupcommit");
  const std::string crash_dir = TempDir("groupcommit_crash");
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 100, 7);
  DurableElsiOptions opts;
  opts.kind = "Grid";
  opts.wal.fsync_every = 4;

  uintmax_t durable_bytes = 0;
  std::string segment_name;
  {
    auto durable = DurableElsi::OpenOrRecover(dir, opts);
    ASSERT_NE(durable, nullptr);
    durable->Build(data);
    for (uint64_t i = 0; i < 7; ++i) {
      durable->Insert(
          {0.001 * static_cast<double>(i + 1), 0.75, 91000 + i});
      if (i == 3) {
        // Records 1..4 just hit the group-commit fsync; 5..7 will sit in
        // the relaxed window. Remember the on-disk durable boundary.
        const auto segments = ListWalSegments(dir);
        ASSERT_EQ(segments.size(), 1u);
        segment_name =
            std::filesystem::path(segments[0].second).filename().string();
        durable_bytes = std::filesystem::file_size(segments[0].second);
      }
    }
    // All 7 are visible to the live instance regardless of durability.
    EXPECT_EQ(durable->size(), data.size() + 7);

    // "Power cut": copy the directory as-is, then cut the copied WAL at the
    // last group-commit boundary. The original keeps running untouched.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      std::filesystem::copy_file(
          entry.path(), crash_dir + "/" + entry.path().filename().string());
    }
    std::filesystem::resize_file(crash_dir + "/" + segment_name,
                                 durable_bytes);
  }

  RecoveryStats stats;
  auto recovered = DurableElsi::OpenOrRecover(crash_dir, opts, &stats);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.wal.applied, 4u);
  EXPECT_FALSE(stats.wal.torn_tail);
  EXPECT_EQ(recovered->size(), data.size() + 4);
  for (uint64_t i = 0; i < 7; ++i) {
    Point out;
    const bool hit = recovered->PointQuery(
        {0.001 * static_cast<double>(i + 1), 0.75, 91000 + i}, &out);
    EXPECT_EQ(hit, i < 4) << i;
    if (hit) {
      EXPECT_EQ(out.id, 91000 + i);
    }
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(crash_dir);
}

/// An always-fire predictor so the rebuild-swap path triggers quickly.
RebuildPredictor MakeEagerPredictor() {
  std::vector<RebuildSample> samples;
  for (double ratio = 0.0; ratio <= 1.0; ratio += 0.1) {
    for (double sim = 0.0; sim <= 1.0; sim += 0.1) {
      RebuildSample s;
      s.features.log10_n = 2.5;
      s.features.update_ratio = ratio;
      s.features.cdf_similarity = sim;
      s.features.dissimilarity = 1.0 - sim;
      s.features.depth = 2.0;
      s.label = 1.0;
      samples.push_back(s);
    }
  }
  RebuildPredictor predictor;
  RebuildPredictorTrainOptions train;
  train.epochs = 200;
  predictor.Train(samples, train);
  return predictor;
}

TEST(DurableElsiTest, ConcurrentQueriesDuringRebuildSwap) {
  const std::string dir = TempDir("swap");
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 400, 31);
  const RebuildPredictor predictor = MakeEagerPredictor();
  ASSERT_TRUE(predictor.trained());

  DurableElsiOptions opts;
  opts.kind = "ZM";
  opts.trainer = std::make_shared<DirectTrainer>(FastModel());
  opts.predictor = &predictor;
  opts.update.f_u = 64;
  opts.update.min_update_ratio = 0.01;
  opts.wal.fsync_every = 0;  // Keep the test I/O-light.
  auto durable = DurableElsi::OpenOrRecover(dir, opts);
  ASSERT_NE(durable, nullptr);
  durable->Build(data);

  // Readers hammer queries while the writer drives enough updates to
  // trigger at least one rebuild-swap.
  std::atomic<bool> stop{false};
  std::atomic<size_t> queries_run{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&durable, &stop, &queries_run, &data, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Point& q = data[rng.NextBelow(data.size())];
        durable->PointQuery(q);
        durable->WindowQuery({q.x - 0.01, q.y - 0.01, q.x + 0.01, q.y + 0.01});
        queries_run.fetch_add(1, std::memory_order_relaxed);
        // Brief pause so spin-reading never starves the writer's exclusive
        // lock (pthread rwlocks prefer readers).
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }
  Rng rng(77);
  for (uint64_t i = 0; i < 200; ++i) {
    durable->Insert({rng.NextDouble(), rng.NextDouble(), 40000 + i});
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_GT(queries_run.load(), 0u);
  EXPECT_GE(durable->rebuild_count(), 1u);
  EXPECT_EQ(durable->size(), data.size() + 200);
  // The swap checkpointed: a reopen starts from the rebuilt snapshot.
  RecoveryStats stats;
  auto reopened = DurableElsi::OpenOrRecover(dir, opts, &stats);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), data.size() + 200);
  std::filesystem::remove_all(dir);
}

// --- model cache ----------------------------------------------------------

TEST(ModelCacheTest, BinaryRoundTrip) {
  const std::string dir = TempDir("cache");
  std::vector<ScorerSample> scorer = {
      {BuildMethodId::kRS, 3.5, 0.25, 0.8, 1.1},
      {BuildMethodId::kOG, 3.5, 0.25, 1.0, 1.0},
  };
  ASSERT_TRUE(SaveScorerSamples(dir, scorer));
  std::vector<ScorerSample> loaded;
  ASSERT_TRUE(LoadScorerSamples(dir, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].method, BuildMethodId::kRS);
  EXPECT_EQ(loaded[0].query_cost, 1.1);

  std::vector<RebuildSample> rebuild(3);
  rebuild[1].features.update_ratio = 0.5;
  rebuild[1].label = 1.0;
  ASSERT_TRUE(SaveRebuildSamples(dir, rebuild));
  std::vector<RebuildSample> rloaded;
  ASSERT_TRUE(LoadRebuildSamples(dir, &rloaded));
  ASSERT_EQ(rloaded.size(), 3u);
  EXPECT_EQ(rloaded[1].features.update_ratio, 0.5);
  EXPECT_EQ(rloaded[1].label, 1.0);
  std::filesystem::remove_all(dir);
}

TEST(ModelCacheTest, LegacyCsvImportsOnceAndConverts) {
  const std::string dir = TempDir("csv");
  std::ofstream(dir + "/elsi_scorer_cache.csv")
      << "3,3.2,0.4,0.9,1.2\n0,3.2,0.4,1,1\n";
  std::vector<ScorerSample> samples;
  ASSERT_TRUE(LoadScorerSamples(dir, &samples));
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].method, static_cast<BuildMethodId>(3));
  EXPECT_EQ(samples[0].dissimilarity, 0.4);
  // The import wrote the binary cache; loading again uses it even after
  // the CSV disappears.
  EXPECT_TRUE(std::filesystem::exists(ScorerCachePath(dir)));
  std::filesystem::remove(dir + "/elsi_scorer_cache.csv");
  samples.clear();
  ASSERT_TRUE(LoadScorerSamples(dir, &samples));
  EXPECT_EQ(samples.size(), 2u);

  std::ofstream(dir + "/elsi_rebuild_cache.csv")
      << "3.1,0.2,2,0.45,0.8,1\n";
  std::vector<RebuildSample> rebuild;
  ASSERT_TRUE(LoadRebuildSamples(dir, &rebuild));
  ASSERT_EQ(rebuild.size(), 1u);
  EXPECT_EQ(rebuild[0].features.cdf_similarity, 0.8);
  EXPECT_EQ(rebuild[0].label, 1.0);
  std::filesystem::remove_all(dir);
}

TEST(ModelCacheTest, CorruptBinaryCacheIsRejected) {
  const std::string dir = TempDir("corruptcache");
  std::vector<ScorerSample> scorer(4);
  ASSERT_TRUE(SaveScorerSamples(dir, scorer));
  std::string bytes;
  ASSERT_TRUE(ReadFile(ScorerCachePath(dir), &bytes));
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream(ScorerCachePath(dir), std::ios::binary | std::ios::trunc)
      << bytes;
  std::vector<ScorerSample> loaded;
  EXPECT_FALSE(LoadScorerSamples(dir, &loaded));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace persist
}  // namespace elsi
