#include "ml/random_forest.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

TEST(RandomForestTest, RegressionBeatsNoise) {
  Rng rng(3);
  const size_t n = 600;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y[i] = 2.0 * x.At(i, 0) - x.At(i, 1) + 0.05 * rng.NextGaussian();
  }
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 20;
  forest.Fit(x, y, RandomForest::Task::kRegression, opts);
  double mse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double e = forest.Predict({x.At(i, 0), x.At(i, 1)}) - y[i];
    mse += e * e;
  }
  EXPECT_LT(mse / n, 0.05);
}

TEST(RandomForestTest, ClassificationMajorityVote) {
  Rng rng(5);
  const size_t n = 500;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y[i] = (x.At(i, 0) + x.At(i, 1) > 1.0) ? 1.0 : 0.0;
  }
  RandomForest forest;
  RandomForestOptions opts;
  opts.num_trees = 15;
  forest.Fit(x, y, RandomForest::Task::kClassification, opts);
  int correct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (forest.Predict({x.At(i, 0), x.At(i, 1)}) == y[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(n * 0.92));
}

TEST(RandomForestTest, ClassificationOutputsAreValidLabels) {
  Rng rng(7);
  Matrix x(90, 1);
  std::vector<double> y(90);
  for (size_t i = 0; i < 90; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y[i] = static_cast<double>(i % 3);
  }
  RandomForest forest;
  forest.Fit(x, y, RandomForest::Task::kClassification);
  for (int i = 0; i < 50; ++i) {
    const double p = forest.Predict({rng.NextDouble()});
    EXPECT_TRUE(p == 0.0 || p == 1.0 || p == 2.0);
  }
}

TEST(RandomForestTest, DeterministicInSeed) {
  Rng rng(9);
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y[i] = x.At(i, 0) * 2.0;
  }
  RandomForest a, b;
  RandomForestOptions opts;
  opts.seed = 11;
  a.Fit(x, y, RandomForest::Task::kRegression, opts);
  b.Fit(x, y, RandomForest::Task::kRegression, opts);
  for (int i = 0; i < 20; ++i) {
    const double xv = static_cast<double>(i) / 19.0;
    EXPECT_DOUBLE_EQ(a.Predict({xv}), b.Predict({xv}));
  }
}

TEST(RandomForestDeathTest, ZeroTreesAborts) {
  RandomForest forest;
  Matrix x(2, 1);
  std::vector<double> y(2);
  RandomForestOptions opts;
  opts.num_trees = 0;
  EXPECT_DEATH(forest.Fit(x, y, RandomForest::Task::kRegression, opts),
               "CHECK failed");
}

}  // namespace
}  // namespace elsi
