// elsi::prof tests. Everything here must pass on perf-denied hosts (CI
// containers, perf_event_paranoid >= 2, VMs without a PMU): counter tests
// assert the degradation contract rather than any particular tier, and the
// sampler tests rely only on the clock-driven SIGPROF path. The whole file
// also compiles and passes with -DELSI_PROF=OFF via the inline stubs.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "prof/counters.h"
#include "prof/proc_stats.h"
#include "prof/sampler.h"
#include "prof/span_costs.h"

namespace elsi {
namespace prof {
namespace {

/// ~`ms` of real work the optimizer cannot elide (samples and counters
/// need actual on-CPU time, not a sleep).
double Busy(double ms) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(static_cast<long>(ms * 1000));
  volatile double x = 1.000001;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) x = x * 1.000001 + 0.5;
  }
  return x;
}

TEST(CounterValuesTest, DeltaClampsBackwardMotion) {
  CounterValues a, b;
  a.cycles = 100;
  a.task_clock_ns = 50;
  b.cycles = 40;  // "later" reading below the start: clamp, don't wrap
  b.task_clock_ns = 80;
  const CounterValues d = b.DeltaSince(a);
  EXPECT_EQ(d.cycles, 0u);
  EXPECT_EQ(d.task_clock_ns, 30u);
}

TEST(CounterValuesTest, DerivedRatesGuardZeroDenominators) {
  CounterValues v;
  EXPECT_EQ(v.Ipc(), 0.0);
  v.instructions = 500;
  EXPECT_EQ(v.Ipc(), 0.0);  // no cycles observed
  v.cycles = 250;
  EXPECT_DOUBLE_EQ(v.Ipc(), 2.0);
  EXPECT_EQ(PerOp(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(PerOp(10, 4), 2.5);
}

TEST(CounterGroupTest, StatusAlwaysExplainsItself) {
  const std::string status = CounterStatus();
  EXPECT_FALSE(status.empty());
#if ELSI_PROF_ENABLED
  const CounterMode mode = ProbeCounterMode();
  EXPECT_NE(status.find(CounterModeName(mode)), std::string::npos)
      << status;
#else
  EXPECT_NE(status.find("compiled out"), std::string::npos) << status;
#endif
}

TEST(CounterGroupTest, OpenMatchesProbeAndCountsForward) {
  const CounterMode mode = ProbeCounterMode();
  auto group = CounterGroup::Open(CounterGroup::Scope::kThisThread);
  if (mode == CounterMode::kUnavailable) {
    EXPECT_EQ(group, nullptr);
    return;
  }
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->mode(), mode);
  CounterValues before, after;
  ASSERT_TRUE(group->Read(&before));
  Busy(20.0);
  ASSERT_TRUE(group->Read(&after));
  const CounterValues d = after.DeltaSince(before);
  if (mode == CounterMode::kHardware) {
    EXPECT_TRUE(d.hardware);
    EXPECT_GT(d.cycles, 0u);
    EXPECT_GT(d.instructions, 0u);
  } else {
    EXPECT_FALSE(d.hardware);
    // Software tier: 20 ms of spinning must show up as task-clock time.
    EXPECT_GT(d.task_clock_ns, 1000000u);
  }
}

TEST(CounterGroupTest, EnvKillSwitchForcesUnavailable) {
  ASSERT_EQ(setenv("ELSI_PROF_DISABLE_PERF", "1", 1), 0);
  EXPECT_EQ(ProbeCounterMode(), CounterMode::kUnavailable);
  EXPECT_EQ(CounterGroup::Open(CounterGroup::Scope::kThisThread), nullptr);
  EXPECT_EQ(CounterGroup::Open(CounterGroup::Scope::kProcessTree), nullptr);
#if ELSI_PROF_ENABLED
  EXPECT_NE(CounterStatus().find("ELSI_PROF_DISABLE_PERF"),
            std::string::npos);
#endif
  ASSERT_EQ(unsetenv("ELSI_PROF_DISABLE_PERF"), 0);
}

TEST(ProcStatsTest, ReportsResidentMemoryAndFaults) {
  const ProcStats stats = ReadProcStats();
#if ELSI_PROF_ENABLED
  ASSERT_TRUE(stats.available);
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GT(stats.vm_bytes, 0u);
  EXPECT_GT(stats.peak_rss_bytes, 0u);
  EXPECT_GT(stats.minor_faults, 0u);
  // Gauge refresh must not crash whether or not obs is compiled in.
  RefreshProcStats();
#else
  EXPECT_FALSE(stats.available);
#endif
}

#if ELSI_PROF_ENABLED

TEST(SamplerTest, CapturesAndRendersCollapsedStacks) {
  ProfilerOptions options;
  options.hz = 397;  // fast, off-round: plenty of samples in 150 ms
  std::string error;
  ASSERT_TRUE(CpuProfiler::Get().Start(options, &error)) << error;
  // A second Start must refuse while running.
  EXPECT_FALSE(CpuProfiler::Get().Start(options, &error));
  EXPECT_FALSE(error.empty());
  // Same for the blocking wrapper.
  EXPECT_EQ(ProfileForSeconds(0.05, options, &error), "");
  EXPECT_FALSE(error.empty());

  std::thread worker([] { Busy(150.0); });
  Busy(150.0);
  worker.join();
  CpuProfiler::Get().Stop();

  const ProfilerStats stats = CpuProfiler::Get().Stats();
  EXPECT_FALSE(stats.running);
  ASSERT_GT(stats.samples, 0u);
  EXPECT_GE(stats.threads_seen, 1u);

  const std::string collapsed = CpuProfiler::Get().CollapsedStacks();
  ASSERT_FALSE(collapsed.empty());
  // "frame;frame count\n" shape: every line has a space before the count
  // and at least the first has a stack separator.
  EXPECT_NE(collapsed.find(';'), std::string::npos);
  EXPECT_NE(collapsed.find(' '), std::string::npos);
  EXPECT_EQ(collapsed.back(), '\n');
}

TEST(SamplerTest, RestartsCleanlyAndWritesProfileFile) {
  ProfilerOptions options;
  options.hz = 397;
  std::string error;
  ASSERT_TRUE(CpuProfiler::Get().Start(options, &error)) << error;
  Busy(100.0);
  CpuProfiler::Get().Stop();
  ASSERT_GT(CpuProfiler::Get().Stats().samples, 0u);

  const std::string path =
      ::testing::TempDir() + "/prof_test_profile.collapsed";
  ASSERT_TRUE(WriteCollapsedProfile(path, &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[8] = {0};
  const size_t got = std::fread(head, 1, sizeof(head) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GT(got, 0u);
}

TEST(SamplerTest, ProfileForSecondsRoundTrip) {
  std::string error;
  std::thread worker([] { Busy(300.0); });
  const std::string collapsed = ProfileForSeconds(0.25, {}, &error);
  worker.join();
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_FALSE(collapsed.empty());
  EXPECT_FALSE(CpuProfiler::Get().Stats().running);
}

#else  // !ELSI_PROF_ENABLED

TEST(SamplerTest, StubsReportCompiledOut) {
  std::string error;
  EXPECT_FALSE(CpuProfiler::Get().Start({}, &error));
  EXPECT_NE(error.find("compiled out"), std::string::npos);
  EXPECT_EQ(CpuProfiler::Get().Stats().samples, 0u);
  EXPECT_EQ(CpuProfiler::Get().CollapsedStacks(), "");
  error.clear();
  EXPECT_EQ(ProfileForSeconds(0.01, {}, &error), "");
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ProbeCounterMode(), CounterMode::kUnavailable);
  EXPECT_FALSE(SpanCostRegistry::Get().Enable());
}

#endif  // ELSI_PROF_ENABLED

#if ELSI_PROF_ENABLED && ELSI_OBS_ENABLED

TEST(SpanCostTest, AttributesCountsAndWallTimeToSpans) {
  SpanCostRegistry& registry = SpanCostRegistry::Get();
  ASSERT_TRUE(registry.Enable());
  EXPECT_TRUE(registry.enabled());
  registry.Clear();

  constexpr int kCalls = 5;
  for (int i = 0; i < kCalls; ++i) {
    ELSI_TRACE_SPAN("prof_test.attributed");
    Busy(4.0);
  }
  {
    ELSI_TRACE_SPAN("prof_test.outer");
    {  // nesting must attribute each level separately
      ELSI_TRACE_SPAN("prof_test.inner");
      Busy(2.0);
    }
  }

  const std::vector<SpanCost> costs = registry.Snapshot();
  registry.Disable();
  EXPECT_FALSE(registry.enabled());

  const SpanCost* attributed = nullptr;
  const SpanCost* outer = nullptr;
  const SpanCost* inner = nullptr;
  for (const SpanCost& c : costs) {
    if (c.name == "prof_test.attributed") attributed = &c;
    if (c.name == "prof_test.outer") outer = &c;
    if (c.name == "prof_test.inner") inner = &c;
  }
  ASSERT_NE(attributed, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(attributed->count, static_cast<uint64_t>(kCalls));
  // 5 x 4 ms of spinning: wall time must land in the right ballpark.
  EXPECT_GT(attributed->wall_ns, 10000000u);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
  EXPECT_GE(outer->wall_ns, inner->wall_ns);
  if (ProbeCounterMode() == CounterMode::kSoftware) {
    EXPECT_GT(attributed->totals.task_clock_ns, 0u);
  } else if (ProbeCounterMode() == CounterMode::kHardware) {
    EXPECT_GT(attributed->totals.cycles, 0u);
    EXPECT_GT(attributed->Ipc(), 0.0);
  }

  const std::string json = SpanCostsJson(costs);
  EXPECT_NE(json.find("\"prof_test.attributed\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":5"), std::string::npos);
}

TEST(SpanCostTest, DisabledSpansCostNothingAndAccumulateNothing) {
  SpanCostRegistry& registry = SpanCostRegistry::Get();
  registry.Disable();
  registry.Clear();
  {
    ELSI_TRACE_SPAN("prof_test.unattributed");
  }
  for (const SpanCost& c : registry.Snapshot()) {
    EXPECT_NE(c.name, "prof_test.unattributed");
  }
}

#endif  // ELSI_PROF_ENABLED && ELSI_OBS_ENABLED

TEST(SpanCostTest, JsonOfEmptyTableIsEmptyArray) {
  EXPECT_EQ(SpanCostsJson({}), "[]");
}

}  // namespace
}  // namespace prof
}  // namespace elsi
