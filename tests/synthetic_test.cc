#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/cdf.h"
#include "curve/zorder.h"

namespace elsi {
namespace {

// Every generator must produce n points inside the unit square with dense,
// unique ids, deterministically in the seed.
class GeneratorContractTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorContractTest, PointsInUnitSquareWithDenseIds) {
  const Dataset data = GenerateDataset(GetParam(), 5000, 42);
  ASSERT_EQ(data.size(), 5000u);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_GE(data[i].x, 0.0);
    EXPECT_LE(data[i].x, 1.0);
    EXPECT_GE(data[i].y, 0.0);
    EXPECT_LE(data[i].y, 1.0);
    EXPECT_EQ(data[i].id, i);
  }
}

TEST_P(GeneratorContractTest, DeterministicInSeed) {
  const Dataset a = GenerateDataset(GetParam(), 1000, 7);
  const Dataset b = GenerateDataset(GetParam(), 1000, 7);
  const Dataset c = GenerateDataset(GetParam(), 1000, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorContractTest,
                         ::testing::ValuesIn(kAllDatasetKinds),
                         [](const auto& info) {
                           std::string n = DatasetKindName(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

// Z-key dissimilarity from uniform orders the families as the paper's
// narrative expects: Uniform lowest; clustered/skewed families clearly higher.
TEST(SyntheticDistributionTest, UniformHasLowestZKeyDissimilarity) {
  const GridQuantizer q(Rect::Of(0.0, 0.0, 1.0, 1.0));
  auto zdissim = [&q](DatasetKind kind) {
    const Dataset data = GenerateDataset(kind, 20000, 3);
    std::vector<double> keys(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      keys[i] = static_cast<double>(q.ZCode(data[i]));
    }
    std::sort(keys.begin(), keys.end());
    return UniformDissimilarity(keys);
  };
  const double uniform = zdissim(DatasetKind::kUniform);
  for (DatasetKind kind :
       {DatasetKind::kSkewed, DatasetKind::kOsm1, DatasetKind::kOsm2,
        DatasetKind::kNyc}) {
    EXPECT_GT(zdissim(kind), uniform + 0.05)
        << DatasetKindName(kind) << " should be more skewed than Uniform";
  }
}

TEST(SyntheticDistributionTest, SkewedMatchesPowerLawConstruction) {
  // Skewed replaces y by y^4 of a uniform draw: its y-values follow
  // P(Y <= t) = t^{1/4}. Check the quartiles.
  const Dataset data = GenerateSkewed(50000, 11);
  std::vector<double> ys(data.size());
  for (size_t i = 0; i < data.size(); ++i) ys[i] = data[i].y;
  std::sort(ys.begin(), ys.end());
  // Median of Y: t with t^{1/4} = 0.5 -> t = 0.0625.
  EXPECT_NEAR(ys[ys.size() / 2], 0.0625, 0.01);
  // x stays uniform: median ~ 0.5.
  std::vector<double> xs(data.size());
  for (size_t i = 0; i < data.size(); ++i) xs[i] = data[i].x;
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 0.5, 0.02);
}

TEST(SyntheticDistributionTest, TpchIsLatticeValued) {
  const Dataset data = GenerateDataset(DatasetKind::kTpch, 10000, 5);
  for (const Point& p : data) {
    // x = q/50 for integer q in [1, 50].
    const double q = p.x * 50.0;
    EXPECT_NEAR(q, std::round(q), 1e-9);
    EXPECT_GE(q, 1.0);
    EXPECT_LE(q, 50.0);
  }
  // Heavy duplication: far fewer distinct x than points.
  std::vector<double> xs;
  for (const Point& p : data) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  EXPECT_LE(xs.size(), 50u);
}

TEST(SyntheticDistributionTest, NycIsMoreConcentratedThanOsm) {
  // NYC's densest 1% of grid cells should hold a larger point share than
  // OSM1's, reflecting the Manhattan effect called out in Sec. VII-F.
  auto top_cell_share = [](DatasetKind kind) {
    const Dataset data = GenerateDataset(kind, 50000, 9);
    constexpr int kGrid = 64;
    std::vector<int> cells(kGrid * kGrid, 0);
    for (const Point& p : data) {
      const int cx = std::min(kGrid - 1, static_cast<int>(p.x * kGrid));
      const int cy = std::min(kGrid - 1, static_cast<int>(p.y * kGrid));
      ++cells[cy * kGrid + cx];
    }
    std::sort(cells.begin(), cells.end(), std::greater<int>());
    const size_t top = cells.size() / 100;
    double share = 0;
    for (size_t i = 0; i < top; ++i) share += cells[i];
    return share / data.size();
  };
  EXPECT_GT(top_cell_share(DatasetKind::kNyc),
            top_cell_share(DatasetKind::kOsm1));
}

TEST(GeneratePowerTest, PowerOneIsUniform) {
  const Dataset a = GeneratePower(1000, 1.0, 1.0, 3);
  const Dataset b = GenerateUniform(1000, 3);
  EXPECT_EQ(a, b);
}

TEST(GeneratePowerTest, HigherPowerIncreasesSkew) {
  auto dissim_y = [](double power) {
    const Dataset data = GeneratePower(30000, 1.0, power, 5);
    std::vector<double> ys(data.size());
    for (size_t i = 0; i < data.size(); ++i) ys[i] = data[i].y;
    std::sort(ys.begin(), ys.end());
    return UniformDissimilarity(ys);
  };
  EXPECT_LT(dissim_y(1.0), 0.02);
  EXPECT_LT(dissim_y(2.0), dissim_y(4.0));
  EXPECT_LT(dissim_y(4.0), dissim_y(8.0));
}

}  // namespace
}  // namespace elsi
