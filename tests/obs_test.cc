// Unit tests for the elsi::obs telemetry layer: metric correctness (also
// under concurrency — run this binary under TSan), span nesting, and golden
// parses of the three export formats. The exporter goldens run in both
// ELSI_OBS modes (they work on hand-built snapshot structs); the
// registry-value tests are gated on ELSI_OBS_ENABLED.

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {
namespace obs {
namespace {

#if ELSI_OBS_ENABLED

TEST(ObsCounterTest, AddAndValue) {
  Counter& c = GetCounter("test.counter.basic");
  const uint64_t before = c.Value();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), before + 42);
}

TEST(ObsCounterTest, SameNameReturnsSameHandle) {
  EXPECT_EQ(&GetCounter("test.counter.same"), &GetCounter("test.counter.same"));
  EXPECT_NE(&GetCounter("test.counter.same"),
            &GetCounter("test.counter.other"));
}

TEST(ObsGaugeTest, SetAndAdd) {
  Gauge& g = GetGauge("test.gauge.basic");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Set(0);
}

TEST(ObsHistogramTest, BucketsFollowLeSemantics) {
  Histogram& h =
      GetHistogram("test.hist.le", HistogramSpec::Linear(1.0, 1.0, 4));
  h.Clear();
  // bounds 1,2,3,4: each is an inclusive upper edge, plus an +Inf bucket.
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.5, 100.0}) h.Observe(v);
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_EQ(snap.counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(snap.counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);  // 3.5
  EXPECT_EQ(snap.counts[4], 1u);  // 100.0 -> +Inf
  EXPECT_EQ(snap.total, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.5 + 100.0);
}

TEST(ObsHistogramTest, SpecOnlyMattersOnFirstRegistration) {
  Histogram& first =
      GetHistogram("test.hist.spec", HistogramSpec::Linear(1.0, 1.0, 4));
  Histogram& again =
      GetHistogram("test.hist.spec", HistogramSpec::Exponential(1.0, 2.0, 24));
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds().size(), 4u);
}

TEST(ObsHistogramTest, ApproxQuantileInterpolates) {
  Histogram& h =
      GetHistogram("test.hist.quantile", HistogramSpec::Linear(10.0, 10.0, 4));
  h.Clear();
  for (int i = 0; i < 100; ++i) h.Observe(5.0);   // bucket [0, 10]
  for (int i = 0; i < 100; ++i) h.Observe(15.0);  // bucket (10, 20]
  const HistogramSnapshot snap = h.Snapshot();
  const double p25 = snap.ApproxQuantile(0.25);
  EXPECT_GE(p25, 0.0);
  EXPECT_LE(p25, 10.0);
  const double p75 = snap.ApproxQuantile(0.75);
  EXPECT_GT(p75, 10.0);
  EXPECT_LE(p75, 20.0);
}

TEST(ObsHistogramTest, ClearKeepsHandleValid) {
  Histogram& h =
      GetHistogram("test.hist.clear", HistogramSpec::Linear(1.0, 1.0, 2));
  h.Observe(1.0);
  EXPECT_GT(h.TotalCount(), 0u);
  h.Clear();
  EXPECT_EQ(h.TotalCount(), 0u);
  h.Observe(1.0);
  EXPECT_EQ(h.TotalCount(), 1u);
}

TEST(ObsRegistryTest, SnapshotIsSortedAndComplete) {
  GetCounter("test.snap.b").Add();
  GetCounter("test.snap.a").Add();
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  bool saw_a = false, saw_b = false;
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.snap.a") saw_a = true;
    if (name == "test.snap.b") saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  for (size_t i = 1; i < snap.histograms.size(); ++i) {
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
  }
}

// The TSan target: concurrent Add/Observe from many threads must be exact
// (counters) and lose nothing (histogram totals), with Snapshot racing.
TEST(ObsConcurrencyTest, ParallelAddsAndObservesAreExact) {
  Counter& counter = GetCounter("test.concurrent.counter");
  Histogram& hist =
      GetHistogram("test.concurrent.hist", HistogramSpec::Linear(1.0, 1.0, 8));
  hist.Clear();
  const uint64_t counter_before = counter.Value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        hist.Observe(static_cast<double>(t % 4));
      }
    });
  }
  // Snapshot while writers run: must be race-free, values may be partial.
  (void)MetricsRegistry::Get().Snapshot();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            counter_before + uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist.TotalCount(), uint64_t{kThreads} * kPerThread);
}

TEST(ObsTraceTest, NestedSpansRecordInnerFirstAndContained) {
  TraceRegistry::Get().Clear();
  {
    ELSI_TRACE_SPAN("outer");
    {
      ELSI_TRACE_SPAN("middle");
      { ELSI_TRACE_SPAN("inner"); }
    }
  }
  const ThreadTrace trace =
      TraceRegistry::Get().CurrentThreadBuffer().Snapshot();
  ASSERT_EQ(trace.events.size(), 3u);
  // Spans complete innermost-first.
  EXPECT_STREQ(trace.events[0].name, "inner");
  EXPECT_STREQ(trace.events[1].name, "middle");
  EXPECT_STREQ(trace.events[2].name, "outer");
  const TraceEvent& inner = trace.events[0];
  const TraceEvent& outer = trace.events[2];
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_GE(outer.start_ns + outer.dur_ns, inner.start_ns + inner.dur_ns);
}

TEST(ObsTraceTest, RingDropsOldestAndCountsThem) {
  TraceBuffer& buffer = TraceRegistry::Get().CurrentThreadBuffer();
  buffer.Clear();
  const size_t pushes = TraceBuffer::kCapacity + 10;
  for (size_t i = 0; i < pushes; ++i) {
    TraceEvent event;
    event.name = "tick";
    event.start_ns = i;
    buffer.Push(event);
  }
  const ThreadTrace trace = buffer.Snapshot();
  EXPECT_EQ(trace.events.size(), TraceBuffer::kCapacity);
  EXPECT_EQ(trace.dropped, 10u);
  // Oldest surviving event is push #10; order is preserved.
  EXPECT_EQ(trace.events.front().start_ns, 10u);
  EXPECT_EQ(trace.events.back().start_ns, pushes - 1);
  buffer.Clear();
}

TEST(ObsTraceTest, SpansFromManyThreadsLandInDistinctBuffers) {
  TraceRegistry::Get().Clear();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { ELSI_TRACE_SPAN("worker"); });
  }
  for (std::thread& t : threads) t.join();
  size_t worker_spans = 0;
  for (const ThreadTrace& trace : TraceRegistry::Get().Snapshot()) {
    for (const TraceEvent& event : trace.events) {
      if (std::string(event.name) == "worker") {
        ++worker_spans;
        EXPECT_NE(trace.tid, 0u);
      }
    }
  }
  EXPECT_EQ(worker_spans, static_cast<size_t>(kThreads));
}

#else  // !ELSI_OBS_ENABLED

TEST(ObsDisabledTest, StubsCompileAndReturnZero) {
  Counter& c = GetCounter("test.disabled.counter");
  c.Add(100);
  EXPECT_EQ(c.Value(), 0u);
  Gauge& g = GetGauge("test.disabled.gauge");
  g.Set(5);
  EXPECT_EQ(g.Value(), 0);
  Histogram& h =
      GetHistogram("test.disabled.hist", HistogramSpec::Linear(1.0, 1.0, 2));
  h.Observe(1.0);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(NowNs(), 0u);
  EXPECT_FALSE(SampleTick());
  { ELSI_TRACE_SPAN("disabled"); }
  EXPECT_TRUE(MetricsRegistry::Get().Snapshot().counters.empty());
  EXPECT_TRUE(TraceRegistry::Get().Snapshot().empty());
}

#endif  // ELSI_OBS_ENABLED

// --- exporter goldens: snapshot structs in, exact text out (both modes) ---

MetricsSnapshot GoldenSnapshot() {
  MetricsSnapshot snap;
  snap.counters = {{"build.models", 3}, {"build.models{method=SP}", 2}};
  snap.gauges = {{"pool.queue_depth", 4}};
  HistogramSnapshot hist;
  hist.name = "query.point.scan_len";
  hist.bounds = {1.0, 2.0};
  hist.counts = {5, 1, 0};
  hist.total = 6;
  hist.sum = 8.5;
  snap.histograms.push_back(hist);
  return snap;
}

TEST(ObsHistogramTest, ApproxQuantileEdgeCases) {
  // Built by hand so the cases hold in both obs modes (the stub histograms
  // never record, but the snapshot math is mode-independent).
  HistogramSnapshot snap;
  snap.bounds = {10.0, 20.0};
  snap.counts = {0, 0, 0};

  // Empty: every quantile is 0, including NaN and out-of-range q.
  EXPECT_EQ(snap.ApproxQuantile(0.5), 0.0);
  EXPECT_EQ(snap.ApproxQuantile(std::nan("")), 0.0);

  // Single sample: all quantiles land in its bucket.
  snap.counts = {0, 1, 0};
  snap.total = 1;
  for (const double q : {0.0, 0.5, 1.0}) {
    const double v = snap.ApproxQuantile(q);
    EXPECT_GE(v, 10.0) << "q=" << q;
    EXPECT_LE(v, 20.0) << "q=" << q;
  }

  // All mass in the +Inf overflow bucket: report its finite lower edge,
  // never Inf or NaN.
  snap.counts = {0, 0, 7};
  snap.total = 7;
  EXPECT_EQ(snap.ApproxQuantile(0.5), 20.0);
  EXPECT_EQ(snap.ApproxQuantile(1.0), 20.0);

  // q = 0 / q = 1 pin to the data extremes; q outside [0, 1] clamps.
  snap.counts = {4, 4, 0};
  snap.total = 8;
  EXPECT_EQ(snap.ApproxQuantile(0.0), 0.0);
  EXPECT_EQ(snap.ApproxQuantile(1.0), 20.0);
  EXPECT_EQ(snap.ApproxQuantile(-3.0), snap.ApproxQuantile(0.0));
  EXPECT_EQ(snap.ApproxQuantile(7.0), snap.ApproxQuantile(1.0));

  // NaN q behaves exactly like q = 0 (no fall-through to the top bound).
  EXPECT_EQ(snap.ApproxQuantile(std::nan("")), snap.ApproxQuantile(0.0));
}

TEST(ObsExportTest, MetricsJsonGolden) {
  const std::string json = MetricsJson(GoldenSnapshot());
  EXPECT_EQ(json,
            "{\n"
            "  \"counters\": {\n"
            "    \"build.models\": 3,\n"
            "    \"build.models{method=SP}\": 2\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"pool.queue_depth\": 4\n"
            "  },\n"
            "  \"histograms\": [\n"
            "    {\"name\": \"query.point.scan_len\", \"total\": 6, "
            "\"sum\": 8.5, \"p50\": 0.59999999999999998, "
            "\"p99\": 1.9399999999999995, "
            "\"bounds\": [1, 2], \"counts\": [5, 1, 0]}\n"
            "  ]\n"
            "}\n");
}

TEST(ObsExportTest, MetricsPrometheusGolden) {
  const std::string text = MetricsPrometheus(GoldenSnapshot());
  EXPECT_EQ(text,
            "# TYPE elsi_build_models counter\n"
            "elsi_build_models 3\n"
            "elsi_build_models{method=\"SP\"} 2\n"
            "# TYPE elsi_pool_queue_depth gauge\n"
            "elsi_pool_queue_depth 4\n"
            "# TYPE elsi_query_point_scan_len histogram\n"
            "elsi_query_point_scan_len_bucket{le=\"1\"} 5\n"
            "elsi_query_point_scan_len_bucket{le=\"2\"} 6\n"
            "elsi_query_point_scan_len_bucket{le=\"+Inf\"} 6\n"
            "elsi_query_point_scan_len_sum 8.5\n"
            "elsi_query_point_scan_len_count 6\n");
}

TEST(ObsExportTest, TraceJsonGolden) {
  std::vector<ThreadTrace> traces(1);
  traces[0].tid = 1;
  // No causal IDs (pre-ID events): metadata still names pid/tid, but no
  // args block and no flow events appear.
  traces[0].events = {{"build.train_model", 1000, 2500},
                      {"build.ds", 1000, 1500}};
  const std::string json = TraceJson(traces);
  EXPECT_EQ(json,
            "{\"traceEvents\": [\n"
            "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"args\": {\"name\": \"elsi\"}},\n"
            "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": 1, \"args\": {\"name\": \"elsi-thread-1\"}},\n"
            // Same start: the longer (outer) span sorts first.
            "  {\"name\": \"build.train_model\", \"ph\": \"X\", "
            "\"ts\": 1.000, \"dur\": 2.500, \"pid\": 1, \"tid\": 1},\n"
            "  {\"name\": \"build.ds\", \"ph\": \"X\", "
            "\"ts\": 1.000, \"dur\": 1.500, \"pid\": 1, \"tid\": 1}\n"
            "], \"displayTimeUnit\": \"ms\"}\n");
}

TEST(ObsExportTest, TraceJsonCausalIdsAndFlows) {
  // A root on thread 1 fanning out to a child on thread 2: the child gets
  // an args block with its IDs plus a ph:"s"/"f" flow pair anchored at the
  // parent's (ts, tid) and the child's (ts, tid). The same-thread child
  // gets args but no flow (nesting renders without an arrow).
  std::vector<ThreadTrace> traces(2);
  traces[0].tid = 1;
  traces[0].events = {{"shard.query.window", 1000, 4000, 7, 7, 0},
                      {"shard0", 2000, 1000, 7, 8, 7}};
  traces[1].tid = 2;
  traces[1].events = {{"shard1", 2500, 1200, 7, 9, 7}};
  const std::string json = TraceJson(traces);
  EXPECT_NE(json.find("\"args\": {\"trace\": 7, \"span\": 7, \"parent\": 0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"trace\": 7, \"span\": 9, \"parent\": 7}"),
            std::string::npos);
  // Flow start rides the parent's coordinates, flow finish the child's.
  EXPECT_NE(json.find("{\"name\": \"fanout\", \"cat\": \"flow\", "
                      "\"ph\": \"s\", \"id\": 9, \"ts\": 1.000, "
                      "\"pid\": 1, \"tid\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"fanout\", \"cat\": \"flow\", "
                      "\"ph\": \"f\", \"bp\": \"e\", \"id\": 9, "
                      "\"ts\": 2.500, \"pid\": 1, \"tid\": 2}"),
            std::string::npos);
  // Same-thread parent link (span 8 under 7): no flow pair for it.
  EXPECT_EQ(json.find("\"id\": 8"), std::string::npos);
}

TEST(ObsExportTest, EmptySnapshotsAreValidDocuments) {
  EXPECT_EQ(MetricsJson({}),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": []\n}\n");
  EXPECT_EQ(TraceJson({}), "{\"traceEvents\": []"
                           ", \"displayTimeUnit\": \"ms\"}\n");
  EXPECT_EQ(MetricsPrometheus({}), "");
}

TEST(ObsExportTest, WritersCreateParseableFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "/obs_test_metrics.json";
  const std::string prom_path = dir + "/obs_test_metrics.prom";
  const std::string trace_path = dir + "/obs_test_trace.json";
  EXPECT_TRUE(WriteMetricsJson(metrics_path));
  EXPECT_TRUE(WriteMetricsPrometheus(prom_path));
  EXPECT_TRUE(WriteTraceJson(trace_path));
  for (const std::string& path : {metrics_path, prom_path, trace_path}) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << path;
    std::fclose(f);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace obs
}  // namespace elsi
