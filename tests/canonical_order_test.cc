// Canonical window-result order: every index returns WindowQuery results in
// ascending (x, y, id) — the contract that lets the sharded scatter-gather
// planner merge per-shard runs and compare them bit-exactly against a
// single-index oracle. Pinned here for all eight paper indices plus Flood,
// for the scalar and the batched path, at several thread counts.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/flood_index.h"
#include "learned/rank_model.h"
#include "persist/snapshot.h"

namespace elsi {
namespace {

std::unique_ptr<SpatialIndex> MakeIndex(const std::string& kind) {
  if (kind == "Flood") {
    return std::make_unique<FloodIndex>(std::make_shared<DirectTrainer>());
  }
  return persist::MakeIndexByName(kind, {});
}

// Window answers of these kinds are exact, so they must equal the
// canonically sorted brute-force truth bit-for-bit. RSMI and LISA are
// approximate by design; for them only the ordering itself is pinned.
bool IsExactWindowKind(const std::string& kind) {
  return kind != "RSMI" && kind != "LISA";
}

class CanonicalOrderTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CanonicalOrderTest, WindowResultsAreCanonicalAndExactKindsMatchTruth) {
  const std::string kind = GetParam();
  const Dataset data = GenerateDataset(DatasetKind::kSkewed, 3000, 7);
  std::unique_ptr<SpatialIndex> index = MakeIndex(kind);
  ASSERT_NE(index, nullptr) << kind;
  index->Build(data);

  const std::vector<Rect> windows = SampleWindowQueries(data, 40, 0.03, 11);
  std::vector<std::vector<Point>> serial(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    serial[i] = index->WindowQuery(windows[i]);
    EXPECT_TRUE(std::is_sorted(serial[i].begin(), serial[i].end(),
                               CanonicalLess))
        << kind << " window " << i << " is not in canonical order";
    if (IsExactWindowKind(kind)) {
      std::vector<Point> truth = BruteForceWindow(data, windows[i]);
      SortCanonical(&truth);
      EXPECT_EQ(serial[i], truth) << kind << " window " << i;
    }
  }

  // The batched path returns the same points in the same order at every
  // thread count (chunk boundaries depend only on `chunk`).
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    BatchQueryOptions opts;
    opts.pool = p;
    opts.chunk = 7;
    std::vector<std::vector<Point>> batch(windows.size());
    index->WindowQueryBatch(windows, batch, opts);
    for (size_t i = 0; i < windows.size(); ++i) {
      EXPECT_EQ(batch[i], serial[i])
          << kind << " batched window " << i << " diverges (pool="
          << (p != nullptr) << ")";
    }
  }
}

TEST_P(CanonicalOrderTest, OrderSurvivesMutations) {
  const std::string kind = GetParam();
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 1500, 13);
  std::unique_ptr<SpatialIndex> index = MakeIndex(kind);
  ASSERT_NE(index, nullptr) << kind;
  index->Build(data);
  for (size_t i = 0; i < 200; ++i) index->Remove(data[i * 3]);
  for (size_t i = 0; i < 200; ++i) {
    index->Insert(Point{0.1 + 0.002 * static_cast<double>(i),
                        0.2 + 0.001 * static_cast<double>(i),
                        1000000 + i});
  }
  const std::vector<Rect> windows = SampleWindowQueries(data, 20, 0.05, 17);
  for (const Rect& w : windows) {
    const std::vector<Point> result = index->WindowQuery(w);
    EXPECT_TRUE(std::is_sorted(result.begin(), result.end(), CanonicalLess))
        << kind << " post-mutation window is not in canonical order";
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, CanonicalOrderTest,
                         ::testing::Values("ZM", "ML", "RSMI", "LISA", "Grid",
                                           "KDB", "HRR", "RR*", "Flood"),
                         [](const auto& info) {
                           std::string name = info.param;
                           if (name == "RR*") name = "RStar";
                           return name;
                         });

}  // namespace
}  // namespace elsi
