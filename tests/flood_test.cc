// Tests for the Flood-style query-aware extension index.

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/build_processor.h"
#include "core/method_selector.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/flood_index.h"

namespace elsi {
namespace {

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 60;
  cfg.learning_rate = 0.03;
  return cfg;
}

std::shared_ptr<ModelTrainer> TestTrainer() {
  return std::make_shared<DirectTrainer>(FastModel());
}

class FloodTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(FloodTest, AllQueryTypesAreExact) {
  const Dataset data = GenerateDataset(GetParam(), 3000, 3);
  FloodIndex index(TestTrainer());
  index.Build(data);
  EXPECT_EQ(index.size(), data.size());

  for (size_t i = 0; i < data.size(); i += 7) {
    EXPECT_TRUE(index.PointQuery(data[i])) << i;
  }
  const auto windows = SampleWindowQueries(data, 15, 0.004, 5);
  for (const Rect& w : windows) {
    const auto truth = BruteForceWindow(data, w);
    const auto result = index.WindowQuery(w);
    EXPECT_EQ(result.size(), truth.size());
    EXPECT_DOUBLE_EQ(Recall(result, truth), 1.0);
  }
  const auto queries = SampleKnnQueries(data, 6, 7);
  for (const Point& q : queries) {
    const auto truth = BruteForceKnn(data, q, 20);
    const auto result = index.KnnQuery(q, 20);
    ASSERT_EQ(result.size(), truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_DOUBLE_EQ(SquaredDistance(result[i], q),
                       SquaredDistance(truth[i], q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, FloodTest,
                         ::testing::Values(DatasetKind::kUniform,
                                           DatasetKind::kNyc,
                                           DatasetKind::kTpch),
                         [](const auto& info) {
                           std::string n = DatasetKindName(info.param);
                           n.erase(std::remove_if(n.begin(), n.end(),
                                                  [](char c) {
                                                    return !std::isalnum(c);
                                                  }),
                                   n.end());
                           return n;
                         });

TEST(FloodIndexTest, ColumnCountFollowsConfig) {
  const Dataset data = GenerateUniform(4000, 9);
  FloodIndex::Config cfg;
  cfg.columns = 13;
  FloodIndex index(TestTrainer(), cfg);
  index.Build(data);
  EXPECT_EQ(index.column_count(), 13u);
}

TEST(FloodIndexTest, InsertRemoveRoundTrip) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 1500, 11);
  FloodIndex index(TestTrainer());
  index.Build(data);
  Rng rng(13);
  std::vector<Point> extra;
  for (int i = 0; i < 300; ++i) {
    extra.push_back(Point{rng.NextDouble(), rng.NextDouble(),
                          static_cast<uint64_t>(50000 + i)});
    index.Insert(extra.back());
  }
  EXPECT_EQ(index.size(), 1800u);
  for (const Point& p : extra) {
    EXPECT_TRUE(index.PointQuery(p));
  }
  // Remove half the base and all the extras.
  for (size_t i = 0; i < data.size(); i += 2) {
    EXPECT_TRUE(index.Remove(data[i]));
  }
  for (const Point& p : extra) {
    EXPECT_TRUE(index.Remove(p));
    EXPECT_FALSE(index.PointQuery(p));
  }
  EXPECT_EQ(index.size(), 750u);
  // Remaining base points are still found even after position shifts.
  for (size_t i = 1; i < data.size(); i += 2) {
    EXPECT_TRUE(index.PointQuery(data[i])) << i;
  }
  EXPECT_EQ(index.CollectAll().size(), 750u);
}

TEST(FloodIndexTest, WindowQueriesStayExactAfterUpdates) {
  const Dataset base = GenerateDataset(DatasetKind::kSkewed, 2000, 15);
  FloodIndex index(TestTrainer());
  index.Build(base);
  Dataset current = base;
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    const Point p{0.3 + 0.1 * rng.NextDouble(), 0.3 + 0.1 * rng.NextDouble(),
                  static_cast<uint64_t>(90000 + i)};
    index.Insert(p);
    current.push_back(p);
  }
  for (size_t i = 0; i < base.size(); i += 3) {
    index.Remove(base[i]);
    current.erase(std::find_if(current.begin(), current.end(),
                               [&](const Point& p) {
                                 return p.id == base[i].id;
                               }));
  }
  const auto windows = SampleWindowQueries(current, 10, 0.01, 19);
  for (const Rect& w : windows) {
    const auto truth = BruteForceWindow(current, w);
    const auto result = index.WindowQuery(w);
    EXPECT_EQ(result.size(), truth.size());
    EXPECT_DOUBLE_EQ(Recall(result, truth), 1.0);
  }
}

TEST(FloodIndexTest, BuildsThroughElsiProcessor) {
  // Per-column models are ordinary training requests, so ELSI's build
  // processor accelerates Flood out of the box — the future-work claim.
  const Dataset data = GenerateDataset(DatasetKind::kOsm2, 4000, 21);
  BuildProcessorConfig cfg;
  cfg.model = FastModel();
  cfg.sp.rho = 0.05;
  cfg.enabled = {BuildMethodId::kSP};
  auto processor = std::make_shared<BuildProcessor>(
      cfg, std::make_shared<FixedSelector>(BuildMethodId::kSP));
  FloodIndex index(processor);
  index.Build(data);
  EXPECT_EQ(processor->records().size(), index.column_count());
  for (size_t i = 0; i < data.size(); i += 17) {
    EXPECT_TRUE(index.PointQuery(data[i]));
  }
}

TEST(FloodIndexTest, TuneColumnCountReturnsReasonableGrid) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 8000, 23);
  // Wide flat windows favour fewer columns; make a workload and check the
  // tuner returns a positive count that actually works.
  const auto workload = SampleWindowQueries(data, 30, 0.002, 25);
  auto trainer = TestTrainer();
  const size_t cols = FloodIndex::TuneColumnCount(data, workload, trainer);
  EXPECT_GE(cols, 1u);
  FloodIndex::Config cfg;
  cfg.columns = cols;
  FloodIndex index(trainer, cfg);
  index.Build(data);
  for (const Rect& w : workload) {
    EXPECT_EQ(index.WindowQuery(w).size(),
              BruteForceWindow(data, w).size());
  }
}

TEST(FloodIndexTest, EmptyBuildIsSafe) {
  FloodIndex index(TestTrainer());
  index.Build({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.PointQuery(Point{0.5, 0.5, 0}));
  EXPECT_TRUE(index.WindowQuery(Rect::Of(0, 0, 1, 1)).empty());
  EXPECT_TRUE(index.KnnQuery(Point{0.5, 0.5, 0}, 3).empty());
  index.Insert(Point{0.5, 0.5, 1});
  EXPECT_TRUE(index.PointQuery(Point{0.5, 0.5, 1}));
}

}  // namespace
}  // namespace elsi
