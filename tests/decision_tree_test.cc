#include "ml/decision_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

TEST(DecisionTreeTest, FitsAxisAlignedStepFunction) {
  // y = 1 when x0 > 0.5 else 0: a depth-1 tree fits exactly.
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x.At(i, 0) = static_cast<double>(i) / 99.0;
    y[i] = x.At(i, 0) > 0.5 ? 1.0 : 0.0;
  }
  DecisionTree tree;
  tree.Fit(x, y, DecisionTree::Task::kRegression);
  EXPECT_NEAR(tree.Predict({0.2}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.9}), 1.0, 1e-9);
}

TEST(DecisionTreeTest, RegressionApproximatesSmoothFunction) {
  Rng rng(3);
  const size_t n = 800;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y[i] = std::sin(4.0 * x.At(i, 0));
  }
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.max_depth = 10;
  tree.Fit(x, y, DecisionTree::Task::kRegression, opts);
  double mse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double e = tree.Predict({x.At(i, 0)}) - y[i];
    mse += e * e;
  }
  EXPECT_LT(mse / n, 0.01);
}

TEST(DecisionTreeTest, ClassificationOnSeparableData) {
  Rng rng(5);
  const size_t n = 500;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.NextDouble();
    x.At(i, 1) = rng.NextDouble();
    y[i] = (x.At(i, 0) > 0.3 && x.At(i, 1) > 0.6) ? 1.0 : 0.0;
  }
  DecisionTree tree;
  tree.Fit(x, y, DecisionTree::Task::kClassification);
  int correct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (tree.Predict({x.At(i, 0), x.At(i, 1)}) == y[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(n * 0.98));
}

TEST(DecisionTreeTest, MultiClassClassification) {
  // Three vertical bands -> three classes.
  Matrix x(300, 1);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) {
    x.At(i, 0) = static_cast<double>(i) / 299.0;
    y[i] = x.At(i, 0) < 0.33 ? 0.0 : (x.At(i, 0) < 0.66 ? 1.0 : 2.0);
  }
  DecisionTree tree;
  tree.Fit(x, y, DecisionTree::Task::kClassification);
  EXPECT_EQ(tree.Predict({0.1}), 0.0);
  EXPECT_EQ(tree.Predict({0.5}), 1.0);
  EXPECT_EQ(tree.Predict({0.9}), 2.0);
}

TEST(DecisionTreeTest, MaxDepthLimitsTreeSize) {
  Rng rng(7);
  Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x.At(i, 0) = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  DecisionTree stump;
  DecisionTreeOptions opts;
  opts.max_depth = 1;
  stump.Fit(x, y, DecisionTree::Task::kRegression, opts);
  EXPECT_LE(stump.node_count(), 3u);  // Root + two leaves.
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  Matrix x(10, 1);
  std::vector<double> y(10, 5.0);  // Constant target.
  for (size_t i = 0; i < 10; ++i) x.At(i, 0) = static_cast<double>(i);
  DecisionTree tree;
  tree.Fit(x, y, DecisionTree::Task::kRegression);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({3.0}), 5.0);
}

TEST(DecisionTreeTest, MinSamplesLeafIsRespected) {
  Matrix x(20, 1);
  std::vector<double> y(20);
  for (size_t i = 0; i < 20; ++i) {
    x.At(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i % 2);
  }
  DecisionTree tree;
  DecisionTreeOptions opts;
  opts.min_samples_leaf = 10;
  opts.max_depth = 10;
  tree.Fit(x, y, DecisionTree::Task::kRegression, opts);
  // Only one split (10/10) is possible.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTreeDeathTest, MismatchedSizesAbort) {
  DecisionTree tree;
  Matrix x(3, 1);
  std::vector<double> y(2);
  EXPECT_DEATH(tree.Fit(x, y, DecisionTree::Task::kRegression),
               "CHECK failed");
}

}  // namespace
}  // namespace elsi
