#include "storage/block_store.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

// Builds n points with key = x, y = 0.5, id = index, sorted by key.
void MakeSorted(size_t n, uint64_t seed, std::vector<Point>* pts,
                std::vector<double>* keys) {
  Rng rng(seed);
  keys->resize(n);
  for (double& k : *keys) k = rng.NextDouble();
  std::sort(keys->begin(), keys->end());
  pts->clear();
  for (size_t i = 0; i < n; ++i) {
    pts->push_back(Point{(*keys)[i], 0.5, i});
  }
}

TEST(PagedListTest, BulkLoadPacksBlocks) {
  std::vector<Point> pts;
  std::vector<double> keys;
  MakeSorted(250, 1, &pts, &keys);
  PagedList list(100);
  list.BulkLoad(pts, keys);
  EXPECT_EQ(list.size(), 250u);
  EXPECT_EQ(list.block_count(), 3u);
  EXPECT_EQ(list.blocks()[0].points.size(), 100u);
  EXPECT_EQ(list.blocks()[2].points.size(), 50u);
}

TEST(PagedListTest, ScanKeyRangeReturnsExactRange) {
  std::vector<Point> pts;
  std::vector<double> keys;
  MakeSorted(500, 2, &pts, &keys);
  PagedList list(64);
  list.BulkLoad(pts, keys);
  std::vector<Point> out;
  list.ScanKeyRange(0.25, 0.75, &out);
  size_t expected = 0;
  for (double k : keys) {
    if (k >= 0.25 && k <= 0.75) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
  for (const Point& p : out) {
    EXPECT_GE(p.x, 0.25);
    EXPECT_LE(p.x, 0.75);
  }
}

TEST(PagedListTest, InsertMaintainsOrderAndSplits) {
  PagedList list(4);
  Rng rng(3);
  std::vector<double> inserted;
  for (int i = 0; i < 100; ++i) {
    const double k = rng.NextDouble();
    list.Insert(Point{k, 0.0, static_cast<uint64_t>(i)}, k);
    inserted.push_back(k);
  }
  EXPECT_EQ(list.size(), 100u);
  // Every block's keys ascending, block boundaries ascending, capacity held.
  double prev = -1.0;
  for (size_t b = 0; b < list.block_count(); ++b) {
    EXPECT_LE(list.blocks()[b].points.size(), 4u);
    for (double k : list.block_keys()[b]) {
      EXPECT_GE(k, prev);
      prev = k;
    }
  }
  // Full scan returns everything in order.
  std::vector<Point> out;
  list.ScanKeyRange(0.0, 1.0, &out);
  std::sort(inserted.begin(), inserted.end());
  ASSERT_EQ(out.size(), inserted.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].x, inserted[i]);
  }
}

TEST(PagedListTest, InsertBelowAllKeysGoesToFirstBlock) {
  std::vector<Point> pts;
  std::vector<double> keys;
  MakeSorted(10, 4, &pts, &keys);
  PagedList list(100);
  list.BulkLoad(pts, keys);
  list.Insert(Point{-1.0, 0.0, 999}, -1.0);
  std::vector<Point> out;
  list.ScanKeyRange(-2.0, -0.5, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 999u);
}

TEST(PagedListTest, EraseRemovesMatchingIdOnly) {
  PagedList list(4);
  // Duplicate keys with distinct ids.
  for (uint64_t i = 0; i < 10; ++i) {
    list.Insert(Point{0.5, 0.0, i}, 0.5);
  }
  EXPECT_TRUE(list.Erase(7, 0.5));
  EXPECT_FALSE(list.Erase(7, 0.5));  // Already gone.
  EXPECT_EQ(list.size(), 9u);
  std::vector<Point> out;
  list.ScanKeyRange(0.5, 0.5, &out);
  for (const Point& p : out) EXPECT_NE(p.id, 7u);
}

TEST(PagedListTest, EraseMissingKeyReturnsFalse) {
  PagedList list(4);
  list.Insert(Point{0.5, 0.0, 1}, 0.5);
  EXPECT_FALSE(list.Erase(1, 0.6));
  EXPECT_FALSE(list.Erase(2, 0.5));
  EXPECT_EQ(list.size(), 1u);
}

TEST(PagedListTest, ScanKeyRangeInRectFiltersByRect) {
  PagedList list(8);
  for (int i = 0; i < 50; ++i) {
    const double k = static_cast<double>(i) / 49.0;
    list.Insert(Point{k, (i % 2 == 0) ? 0.25 : 0.75,
                      static_cast<uint64_t>(i)}, k);
  }
  std::vector<Point> out;
  const Rect w = Rect::Of(0.0, 0.0, 1.0, 0.5);
  list.ScanKeyRangeInRect(0.0, 1.0, w, &out);
  EXPECT_EQ(out.size(), 25u);
  for (const Point& p : out) EXPECT_LE(p.y, 0.5);
}

TEST(PagedListTest, MbrTracksContents) {
  PagedList list(10);
  list.Insert(Point{0.1, 0.9, 0}, 0.1);
  list.Insert(Point{0.4, 0.2, 1}, 0.4);
  const Rect mbr = list.blocks()[0].mbr;
  EXPECT_DOUBLE_EQ(mbr.lo_x, 0.1);
  EXPECT_DOUBLE_EQ(mbr.hi_x, 0.4);
  EXPECT_DOUBLE_EQ(mbr.lo_y, 0.2);
  EXPECT_DOUBLE_EQ(mbr.hi_y, 0.9);
}

TEST(PagedListDeathTest, TinyBlockCapacityAborts) {
  EXPECT_DEATH(PagedList list(1), "CHECK failed");
}

}  // namespace
}  // namespace elsi
