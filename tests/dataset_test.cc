#include "data/dataset.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace elsi {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetIoTest, BinaryRoundTrip) {
  const Dataset data = GenerateUniform(1000, 5);
  const std::string path = TempPath("elsi_ds_test.bin");
  ASSERT_TRUE(SaveBinary(data, path));
  Dataset loaded;
  ASSERT_TRUE(LoadBinary(path, &loaded));
  ASSERT_EQ(loaded.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded[i], data[i]);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvRoundTripPreservesValues) {
  const Dataset data = GenerateUniform(200, 6);
  const std::string path = TempPath("elsi_ds_test.csv");
  ASSERT_TRUE(SaveCsv(data, path));
  Dataset loaded;
  ASSERT_TRUE(LoadCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].x, data[i].x);
    EXPECT_DOUBLE_EQ(loaded[i].y, data[i].y);
    EXPECT_EQ(loaded[i].id, data[i].id);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  Dataset out;
  EXPECT_FALSE(LoadBinary(TempPath("elsi_does_not_exist.bin"), &out));
  EXPECT_FALSE(LoadCsv(TempPath("elsi_does_not_exist.csv"), &out));
  EXPECT_TRUE(out.empty());
}

TEST(DatasetIoTest, TruncatedBinaryFails) {
  const Dataset data = GenerateUniform(100, 7);
  const std::string path = TempPath("elsi_truncated.bin");
  ASSERT_TRUE(SaveBinary(data, path));
  // Truncate the file in the middle of a record.
  std::filesystem::resize_file(path, 100);
  Dataset loaded;
  EXPECT_FALSE(LoadBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  const Dataset data;
  const std::string path = TempPath("elsi_empty.bin");
  ASSERT_TRUE(SaveBinary(data, path));
  Dataset loaded = GenerateUniform(3, 1);  // Must be cleared by Load.
  ASSERT_TRUE(LoadBinary(path, &loaded));
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace elsi
