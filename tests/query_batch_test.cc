// Batched query path tests: the batched entry points on every learned index
// must return exactly what a serial per-query loop returns — same hits, same
// points, same order — for every chunk size and worker count, before and
// after mutations. This is the contract that lets the harness route
// benchmarks through PointQueryBatch/WindowQueryBatch behind a --batch knob
// without changing any measured answer.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/lisa_index.h"
#include "learned/ml_index.h"
#include "learned/rank_model.h"
#include "learned/rsmi_index.h"
#include "learned/zm_index.h"

namespace elsi {
namespace {

RankModelConfig TestModelConfig() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 60;
  cfg.learning_rate = 0.03;
  return cfg;
}

std::unique_ptr<SpatialIndex> MakeIndex(const std::string& name) {
  auto trainer = std::make_shared<DirectTrainer>(TestModelConfig());
  if (name == "ZM") {
    ZmIndex::Config cfg;
    cfg.array.leaf_target = 400;
    return std::make_unique<ZmIndex>(trainer, cfg);
  }
  if (name == "ML") {
    MlIndex::Config cfg;
    cfg.array.leaf_target = 400;
    cfg.num_references = 8;
    return std::make_unique<MlIndex>(trainer, cfg);
  }
  if (name == "RSMI") {
    RsmiIndex::Config cfg;
    cfg.leaf_capacity = 300;
    cfg.fanout = 4;
    return std::make_unique<RsmiIndex>(trainer, cfg);
  }
  LisaIndex::Config cfg;
  cfg.strips = 8;
  cfg.cells_per_strip = 8;
  return std::make_unique<LisaIndex>(trainer, cfg);
}

// Probe set mixing present points with guaranteed misses.
std::vector<Point> MakeProbes(const Dataset& data) {
  std::vector<Point> probes = SamplePointQueries(data, 400, 9);
  for (int i = 0; i < 50; ++i) {
    probes.push_back(Point{-5.0 - i * 0.01, -5.0 - i * 0.02,
                           static_cast<uint64_t>(1u << 30) + i});
  }
  return probes;
}

void ExpectPointBatchMatchesSerial(const SpatialIndex& index,
                                   const std::vector<Point>& probes,
                                   const BatchQueryOptions& opts,
                                   const std::string& label) {
  std::vector<uint8_t> hit(probes.size(), 2);  // Poisoned.
  std::vector<Point> out(probes.size());
  index.PointQueryBatch(probes, hit, out, opts);
  for (size_t i = 0; i < probes.size(); ++i) {
    Point want{};
    const bool found = index.PointQuery(probes[i], &want);
    ASSERT_EQ(hit[i], found ? 1 : 0) << label << " probe " << i;
    if (found) {
      EXPECT_EQ(out[i].id, want.id) << label << " probe " << i;
      EXPECT_EQ(out[i].x, want.x) << label << " probe " << i;
      EXPECT_EQ(out[i].y, want.y) << label << " probe " << i;
    }
  }
}

void ExpectWindowBatchMatchesSerial(const SpatialIndex& index,
                                    const std::vector<Rect>& windows,
                                    const BatchQueryOptions& opts,
                                    const std::string& label) {
  std::vector<std::vector<Point>> results(windows.size());
  index.WindowQueryBatch(windows, results, opts);
  for (size_t i = 0; i < windows.size(); ++i) {
    const auto want = index.WindowQuery(windows[i]);
    ASSERT_EQ(results[i].size(), want.size()) << label << " window " << i;
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(results[i][j].id, want[j].id)
          << label << " window " << i << " pos " << j;
    }
  }
}

void ExpectKnnBatchMatchesSerial(const SpatialIndex& index,
                                 const std::vector<Point>& probes, size_t k,
                                 const BatchQueryOptions& opts,
                                 const std::string& label) {
  std::vector<std::vector<Point>> results(probes.size());
  index.KnnQueryBatch(probes, k, results, opts);
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto want = index.KnnQuery(probes[i], k);
    ASSERT_EQ(results[i].size(), want.size()) << label << " probe " << i;
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(results[i][j].id, want[j].id)
          << label << " probe " << i << " pos " << j;
    }
  }
}

class QueryBatchTest : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryBatchTest, BatchedAnswersEqualSerialAnswers) {
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 2500, 77);
  auto index = MakeIndex(GetParam());
  index->Build(data);
  const auto probes = MakeProbes(data);
  const auto windows = SampleWindowQueries(data, 12, 0.004, 5);

  // Serial fallback (no pool), pooled, and a chunk size that forces many
  // partial chunks must all agree with the per-query loop.
  ThreadPool pool(4);
  const BatchQueryOptions variants[] = {
      {nullptr, 256}, {&pool, 256}, {&pool, 64}, {nullptr, 1}, {&pool, 1000}};
  for (const auto& opts : variants) {
    const std::string label = std::string(GetParam()) + " pool=" +
                              (opts.pool != nullptr ? "y" : "n") + " chunk=" +
                              std::to_string(opts.chunk);
    ExpectPointBatchMatchesSerial(*index, probes, opts, label);
    ExpectWindowBatchMatchesSerial(*index, windows, opts, label);
  }
  BatchQueryOptions knn_opts;
  knn_opts.pool = &pool;
  knn_opts.chunk = 64;
  ExpectKnnBatchMatchesSerial(*index, SamplePointQueries(data, 40, 11), 5,
                              knn_opts, GetParam());
}

TEST_P(QueryBatchTest, ResultsAreThreadCountInvariant) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 2000, 33);
  auto index = MakeIndex(GetParam());
  index->Build(data);
  const auto probes = MakeProbes(data);
  const auto windows = SampleWindowQueries(data, 10, 0.004, 6);

  ThreadPool pool1(1);
  ThreadPool pool8(8);
  BatchQueryOptions one;
  one.pool = &pool1;
  one.chunk = 128;
  BatchQueryOptions eight;
  eight.pool = &pool8;
  eight.chunk = 128;

  std::vector<uint8_t> hit1(probes.size(), 0), hit8(probes.size(), 0);
  std::vector<Point> out1(probes.size()), out8(probes.size());
  index->PointQueryBatch(probes, hit1, out1, one);
  index->PointQueryBatch(probes, hit8, out8, eight);
  ASSERT_EQ(hit1, hit8) << GetParam();
  for (size_t i = 0; i < probes.size(); ++i) {
    if (hit1[i] != 0) {
      EXPECT_EQ(out1[i].id, out8[i].id) << GetParam() << " probe " << i;
    }
  }

  std::vector<std::vector<Point>> win1(windows.size()), win8(windows.size());
  index->WindowQueryBatch(windows, win1, one);
  index->WindowQueryBatch(windows, win8, eight);
  for (size_t i = 0; i < windows.size(); ++i) {
    ASSERT_EQ(win1[i].size(), win8[i].size()) << GetParam() << " win " << i;
    for (size_t j = 0; j < win1[i].size(); ++j) {
      EXPECT_EQ(win1[i][j].id, win8[i][j].id) << GetParam() << " win " << i;
    }
  }
}

// Mutations (overflow inserts + tombstoned removals) must flow through the
// batched path exactly as through the serial one.
TEST_P(QueryBatchTest, BatchedAnswersTrackMutations) {
  const Dataset data = GenerateDataset(DatasetKind::kSkewed, 1500, 21);
  auto index = MakeIndex(GetParam());
  index->Build(data);

  // Remove every 7th point, insert a fresh cluster.
  std::vector<Point> removed;
  for (size_t i = 0; i < data.size(); i += 7) {
    if (index->Remove(data[i])) removed.push_back(data[i]);
  }
  std::vector<Point> added;
  for (int i = 0; i < 60; ++i) {
    Point p{0.31 + 0.001 * i, 0.47 + 0.0005 * i,
            static_cast<uint64_t>(1u << 20) + i};
    index->Insert(p);
    added.push_back(p);
  }

  std::vector<Point> probes = MakeProbes(data);
  probes.insert(probes.end(), removed.begin(), removed.end());
  probes.insert(probes.end(), added.begin(), added.end());

  ThreadPool pool(3);
  BatchQueryOptions opts;
  opts.pool = &pool;
  opts.chunk = 100;
  ExpectPointBatchMatchesSerial(*index, probes, opts, GetParam());
  ExpectWindowBatchMatchesSerial(
      *index, SampleWindowQueries(data, 8, 0.004, 13), opts, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllLearned, QueryBatchTest,
                         ::testing::Values("ZM", "ML", "RSMI", "LISA"));

}  // namespace
}  // namespace elsi
