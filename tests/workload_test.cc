#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace elsi {
namespace {

TEST(WorkloadTest, PointQueriesComeFromData) {
  const Dataset data = GenerateUniform(1000, 1);
  const auto queries = SamplePointQueries(data, 200, 2);
  ASSERT_EQ(queries.size(), 200u);
  for (const Point& q : queries) {
    EXPECT_LT(q.id, data.size());
    EXPECT_EQ(data[q.id], q);
  }
}

TEST(WorkloadTest, WindowQueriesHaveRequestedArea) {
  const Dataset data = GenerateUniform(1000, 3);
  const double frac = 0.0001;  // The paper's default 0.01% of the space.
  const auto windows = SampleWindowQueries(data, 50, frac, 4);
  const double domain_area = BoundingRect(data).Area();
  for (const Rect& w : windows) {
    EXPECT_NEAR(w.Area(), domain_area * frac, domain_area * frac * 1e-9);
  }
}

TEST(WorkloadTest, WindowQueriesFollowDataDistribution) {
  // On Skewed data most windows should sit in the dense lower band.
  const Dataset data = GenerateSkewed(20000, 5);
  const auto windows = SampleWindowQueries(data, 400, 0.0001, 6);
  int low = 0;
  for (const Rect& w : windows) {
    if (w.Center().y < 0.2) ++low;
  }
  EXPECT_GT(low, 200);  // >50% in the band holding ~67% of the mass.
}

TEST(WorkloadTest, DeterministicInSeed) {
  const Dataset data = GenerateUniform(500, 7);
  EXPECT_EQ(SamplePointQueries(data, 10, 1), SamplePointQueries(data, 10, 1));
  const auto w1 = SampleWindowQueries(data, 10, 0.001, 2);
  const auto w2 = SampleWindowQueries(data, 10, 0.001, 2);
  for (size_t i = 0; i < w1.size(); ++i) {
    EXPECT_DOUBLE_EQ(w1[i].lo_x, w2[i].lo_x);
    EXPECT_DOUBLE_EQ(w1[i].hi_y, w2[i].hi_y);
  }
}

TEST(BruteForceTest, WindowReturnsExactlyContainedPoints) {
  const Dataset data = GenerateUniform(5000, 9);
  const Rect w = Rect::Of(0.25, 0.25, 0.5, 0.5);
  const auto result = BruteForceWindow(data, w);
  size_t expected = 0;
  for (const Point& p : data) {
    if (w.Contains(p)) ++expected;
  }
  EXPECT_EQ(result.size(), expected);
  for (const Point& p : result) EXPECT_TRUE(w.Contains(p));
}

TEST(BruteForceTest, KnnReturnsClosestInOrder) {
  const Dataset data = GenerateUniform(2000, 11);
  const Point q{0.5, 0.5, 0};
  const auto knn = BruteForceKnn(data, q, 25);
  ASSERT_EQ(knn.size(), 25u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(SquaredDistance(knn[i - 1], q), SquaredDistance(knn[i], q));
  }
  // No non-member may be closer than the k-th member.
  const double worst = SquaredDistance(knn.back(), q);
  std::vector<uint64_t> ids;
  for (const Point& p : knn) ids.push_back(p.id);
  std::sort(ids.begin(), ids.end());
  for (const Point& p : data) {
    if (std::binary_search(ids.begin(), ids.end(), p.id)) continue;
    EXPECT_GE(SquaredDistance(p, q), worst);
  }
}

TEST(BruteForceTest, KnnClampsToDatasetSize) {
  const Dataset data = GenerateUniform(10, 13);
  EXPECT_EQ(BruteForceKnn(data, Point{0.1, 0.1, 0}, 100).size(), 10u);
}

TEST(RecallTest, ComputesFractionOfTruthFound) {
  const std::vector<Point> truth = {{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}};
  const std::vector<Point> half = {{0, 0, 1}, {0, 0, 3}, {0, 0, 99}};
  EXPECT_DOUBLE_EQ(Recall(half, truth), 0.5);
  EXPECT_DOUBLE_EQ(Recall(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(Recall({}, truth), 0.0);
}

TEST(RecallTest, EmptyTruthIsPerfectRecall) {
  EXPECT_DOUBLE_EQ(Recall({{0, 0, 1}}, {}), 1.0);
}

}  // namespace
}  // namespace elsi
