// Tests for the ELSI core: method scorer/selector, build processor
// (Algorithm 1), rebuild predictor, and update processor.

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/cdf.h"
#include "common/random.h"
#include "core/build_processor.h"
#include "core/elsi.h"
#include "core/method_scorer.h"
#include "core/method_selector.h"
#include "core/rebuild_predictor.h"
#include "core/scorer_trainer.h"
#include "core/update_processor.h"
#include "curve/zorder.h"
#include "data/synthetic.h"
#include "data/workload.h"

namespace elsi {
namespace {

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 60;
  cfg.learning_rate = 0.03;
  return cfg;
}

BuildProcessorConfig FastProcessorConfig() {
  BuildProcessorConfig cfg;
  cfg.model = FastModel();
  cfg.rl.max_steps = 80;
  cfg.mr.synthetic_size = 512;
  return cfg;
}

// Synthetic scorer samples with a known structure: SP cheap to build,
// mediocre query; OG expensive to build, best query; others in between and
// drifting with dissimilarity.
std::vector<ScorerSample> SyntheticScorerSamples() {
  std::vector<ScorerSample> samples;
  for (double log10_n = 3.0; log10_n <= 5.0; log10_n += 0.5) {
    for (double dissim = 0.0; dissim <= 0.9; dissim += 0.1) {
      auto add = [&](BuildMethodId m, double b, double q) {
        samples.push_back({m, log10_n, dissim, b, q});
      };
      add(BuildMethodId::kSP, 0.05, 1.05 + 0.3 * dissim);
      add(BuildMethodId::kCL, 0.9 + 0.2 * dissim, 1.02);
      add(BuildMethodId::kMR, 0.01, 1.10 + 0.5 * dissim);
      add(BuildMethodId::kRS, 0.15, 1.00 + 0.05 * dissim);
      add(BuildMethodId::kRL, 0.20, 1.01);
      add(BuildMethodId::kOG, 1.0, 1.0);
    }
  }
  return samples;
}

TEST(MethodScorerTest, LearnsRelativeCostStructure) {
  MethodScorer scorer;
  scorer.Train(SyntheticScorerSamples());
  // MR must be predicted cheapest to build; OG most expensive.
  const double mr = scorer.PredictBuildCost(BuildMethodId::kMR, 4.0, 0.4);
  const double og = scorer.PredictBuildCost(BuildMethodId::kOG, 4.0, 0.4);
  const double cl = scorer.PredictBuildCost(BuildMethodId::kCL, 4.0, 0.4);
  EXPECT_LT(mr, og);
  EXPECT_LT(mr, cl);
  EXPECT_GT(og, 0.5);
}

TEST(MethodScorerTest, CombinedCostFollowsLambda) {
  MethodScorer scorer;
  scorer.Train(SyntheticScorerSamples());
  // With lambda = 1 only the build cost matters: MR wins. With lambda = 0
  // only query cost matters: OG/RS-style methods win over MR.
  const double mr1 = scorer.CombinedCost(BuildMethodId::kMR, 4.0, 0.5, 1.0, 1.0);
  const double og1 = scorer.CombinedCost(BuildMethodId::kOG, 4.0, 0.5, 1.0, 1.0);
  EXPECT_LT(mr1, og1);
  const double mr0 = scorer.CombinedCost(BuildMethodId::kMR, 4.0, 0.5, 0.0, 1.0);
  const double og0 = scorer.CombinedCost(BuildMethodId::kOG, 4.0, 0.5, 0.0, 1.0);
  EXPECT_LT(og0, mr0);
}

TEST(ScorerSelectorTest, PicksLambdaAppropriateMethods) {
  auto scorer = std::make_shared<MethodScorer>();
  scorer->Train(SyntheticScorerSamples());
  const std::vector<BuildMethodId> pool(std::begin(kSelectorPool),
                                        std::end(kSelectorPool));
  ScorerSelector build_first(scorer, 1.0, 1.0);
  EXPECT_EQ(build_first.Choose(pool, 4.0, 0.5), BuildMethodId::kMR);
  // At lambda = 0 the query-efficient methods (OG 1.00, RS 1.025, RL 1.01
  // in the synthetic samples) are near-ties; any of them is acceptable, but
  // the query-costly MR (1.35) and SP (1.20) must not be chosen.
  ScorerSelector query_first(scorer, 0.0, 1.0);
  const BuildMethodId picked = query_first.Choose(pool, 4.0, 0.5);
  EXPECT_TRUE(picked == BuildMethodId::kOG || picked == BuildMethodId::kRS ||
              picked == BuildMethodId::kRL || picked == BuildMethodId::kCL)
      << BuildMethodName(picked);
}

TEST(SelectorTest, FixedSelectorReturnsItsMethod) {
  FixedSelector fixed(BuildMethodId::kRS);
  const std::vector<BuildMethodId> pool = {BuildMethodId::kSP,
                                           BuildMethodId::kRS};
  EXPECT_EQ(fixed.Choose(pool, 4.0, 0.2), BuildMethodId::kRS);
}

TEST(SelectorDeathTest, FixedSelectorRejectsInapplicableMethod) {
  FixedSelector fixed(BuildMethodId::kCL);
  const std::vector<BuildMethodId> pool = {BuildMethodId::kSP};
  EXPECT_DEATH(fixed.Choose(pool, 4.0, 0.2), "not applicable");
}

TEST(SelectorTest, RandomSelectorCoversCandidates) {
  RandomSelector rand(3);
  const std::vector<BuildMethodId> pool = {BuildMethodId::kSP,
                                           BuildMethodId::kMR,
                                           BuildMethodId::kOG};
  std::map<BuildMethodId, int> counts;
  for (int i = 0; i < 300; ++i) ++counts[rand.Choose(pool, 4.0, 0.2)];
  for (BuildMethodId m : pool) EXPECT_GT(counts[m], 50);
}

TEST(TreeSelectorTest, RegressionAndClassificationAgreeOnEasyCase) {
  const auto samples = SyntheticScorerSamples();
  for (auto model : {TreeSelector::Model::kDecisionTree,
                     TreeSelector::Model::kRandomForest}) {
    for (auto mode : {TreeSelector::Mode::kRegression,
                      TreeSelector::Mode::kClassification}) {
      TreeSelector selector(model, mode, 1.0, 1.0);
      selector.Train(samples);
      const std::vector<BuildMethodId> pool(std::begin(kSelectorPool),
                                            std::end(kSelectorPool));
      // With lambda = 1, MR is the unambiguous argmin everywhere.
      EXPECT_EQ(selector.Choose(pool, 4.0, 0.4), BuildMethodId::kMR)
          << selector.name();
    }
  }
}

TEST(TreeSelectorTest, NamesMatchPaperLabels) {
  EXPECT_EQ(TreeSelector(TreeSelector::Model::kRandomForest,
                         TreeSelector::Mode::kRegression, 0.5, 1.0)
                .name(),
            "RFR");
  EXPECT_EQ(TreeSelector(TreeSelector::Model::kDecisionTree,
                         TreeSelector::Mode::kClassification, 0.5, 1.0)
                .name(),
            "DTC");
}

// Build processor: every enabled method must produce a model whose error
// bounds cover every indexed key (the correctness core of Algorithm 1).
class BuildProcessorMethodTest
    : public ::testing::TestWithParam<BuildMethodId> {};

TEST_P(BuildProcessorMethodTest, ModelsAreExactUnderAllMethods) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 6000, 3);
  const auto quantizer = std::make_shared<GridQuantizer>(BoundingRect(data));
  const std::function<double(const Point&)> key_fn =
      [quantizer](const Point& p) {
        return static_cast<double>(
            MortonEncode(quantizer->QuantizeX(p.x) >> 6,
                         quantizer->QuantizeY(p.y) >> 6));
      };
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = key_fn(data[i]);
  std::vector<Point> pts = data;
  std::sort(pts.begin(), pts.end(), [&key_fn](const Point& a, const Point& b) {
    return key_fn(a) < key_fn(b);
  });
  std::sort(keys.begin(), keys.end());

  BuildProcessorConfig cfg = FastProcessorConfig();
  cfg.enabled = {GetParam()};
  cfg.rs.beta = 200;
  cfg.cl.clusters = 64;
  BuildProcessor processor(cfg,
                           std::make_shared<FixedSelector>(GetParam()));
  const RankModel model = processor.TrainModel(pts, keys, key_fn);
  for (size_t i = 0; i < keys.size(); i += 13) {
    const auto [lo, hi] = model.SearchRange(keys[i], keys.size());
    EXPECT_GE(i, lo) << BuildMethodName(GetParam());
    EXPECT_LE(i, hi) << BuildMethodName(GetParam());
  }
  ASSERT_EQ(processor.records().size(), 1u);
  const BuildCallRecord record = processor.records().front();
  EXPECT_EQ(record.method, GetParam());
  EXPECT_EQ(record.n, keys.size());
  if (GetParam() != BuildMethodId::kOG && GetParam() != BuildMethodId::kMR) {
    EXPECT_LT(record.training_size, record.n);
    EXPECT_GT(record.training_size, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BuildProcessorMethodTest,
                         ::testing::Values(BuildMethodId::kSP,
                                           BuildMethodId::kRSP,
                                           BuildMethodId::kCL,
                                           BuildMethodId::kMR,
                                           BuildMethodId::kRS,
                                           BuildMethodId::kRL,
                                           BuildMethodId::kOG),
                         [](const auto& info) {
                           return BuildMethodName(info.param);
                         });

TEST(BuildProcessorTest, ShrinksTrainingTimeVsOg) {
  const Dataset data = GenerateUniform(30000, 7);
  const std::function<double(const Point&)> key_fn = [](const Point& p) {
    return p.x;
  };
  std::vector<Point> pts = data;
  std::sort(pts.begin(), pts.end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  std::vector<double> keys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) keys[i] = pts[i].x;

  BuildProcessorConfig cfg = FastProcessorConfig();
  cfg.model.epochs = 150;

  cfg.enabled = {BuildMethodId::kSP};
  BuildProcessor sp(cfg, std::make_shared<FixedSelector>(BuildMethodId::kSP));
  sp.TrainModel(pts, keys, key_fn);

  cfg.enabled = {BuildMethodId::kOG};
  BuildProcessor og(cfg, std::make_shared<FixedSelector>(BuildMethodId::kOG));
  og.TrainModel(pts, keys, key_fn);

  EXPECT_LT(sp.records()[0].train_seconds, og.records()[0].train_seconds);
}

TEST(BuildProcessorTest, DefaultEnabledMethodsHonourLisaRestrictions) {
  const auto lisa = DefaultEnabledMethods("LISA");
  EXPECT_EQ(std::count(lisa.begin(), lisa.end(), BuildMethodId::kCL), 0);
  EXPECT_EQ(std::count(lisa.begin(), lisa.end(), BuildMethodId::kRL), 0);
  const auto zm = DefaultEnabledMethods("ZM");
  EXPECT_EQ(std::count(zm.begin(), zm.end(), BuildMethodId::kCL), 1);
  EXPECT_EQ(std::count(zm.begin(), zm.end(), BuildMethodId::kRL), 1);
}

TEST(ElsiIntegrationTest, ElsiBuiltIndexAnswersQueriesLikeOg) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm2, 5000, 9);
  BuildProcessorConfig cfg = FastProcessorConfig();
  cfg.enabled = {BuildMethodId::kRS};
  auto elsi_trainer = std::make_shared<BuildProcessor>(
      cfg, std::make_shared<FixedSelector>(BuildMethodId::kRS));
  BaseIndexScale scale;
  scale.leaf_target = 1000;
  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    // LISA admits RS, so RS works across all four indices.
    auto index = MakeBaseIndex(kind, elsi_trainer, scale);
    index->Build(data);
    EXPECT_EQ(index->size(), data.size()) << BaseIndexKindName(kind);
    for (size_t i = 0; i < data.size(); i += 19) {
      EXPECT_TRUE(index->PointQuery(data[i]))
          << BaseIndexKindName(kind) << " at " << i;
    }
  }
}

TEST(RebuildPredictorTest, LearnsSeparableRule) {
  // Labels depend on update ratio: rebuild iff ratio > 0.3.
  std::vector<RebuildSample> samples;
  for (int i = 0; i < 200; ++i) {
    RebuildSample s;
    s.features.log10_n = 4.0;
    s.features.dissimilarity = 0.3;
    s.features.depth = 2.0;
    s.features.update_ratio = 0.01 * i;
    s.features.cdf_similarity = 1.0 - 0.004 * i;
    s.label = s.features.update_ratio > 0.3 ? 1.0 : 0.0;
    samples.push_back(s);
  }
  RebuildPredictor predictor;
  predictor.Train(samples);
  RebuildFeatures low;
  low.log10_n = 4.0;
  low.dissimilarity = 0.3;
  low.depth = 2.0;
  low.update_ratio = 0.05;
  low.cdf_similarity = 0.98;
  EXPECT_FALSE(predictor.ShouldRebuild(low));
  RebuildFeatures high = low;
  high.update_ratio = 1.2;
  high.cdf_similarity = 0.5;
  EXPECT_TRUE(predictor.ShouldRebuild(high));
}

TEST(RebuildPredictorTest, SimulatedTrainingDataHasBothLabels) {
  RebuildTrainerConfig cfg;
  cfg.base_n = 4000;
  cfg.datasets = 2;
  cfg.checkpoints = 6;
  cfg.queries = 100;
  const auto samples = GenerateRebuildTrainingData(cfg);
  EXPECT_EQ(samples.size(), 24u);  // Aged + freshly-rebuilt sample pairs.
  for (const RebuildSample& s : samples) {
    EXPECT_GE(s.features.update_ratio, 0.0);
    EXPECT_LE(s.features.cdf_similarity, 1.0 + 1e-9);
    EXPECT_TRUE(s.label == 0.0 || s.label == 1.0);
  }
}

TEST(UpdateProcessorTest, TracksSimilarityUnderSkewedInserts) {
  const Dataset base = GenerateUniform(4000, 11);
  RankModelConfig model = FastModel();
  auto trainer = std::make_shared<DirectTrainer>(model);
  ZmIndex::Config zcfg;
  zcfg.array.leaf_target = 1000;
  ZmIndex index(trainer, zcfg);
  UpdateProcessorConfig ucfg;
  ucfg.enable_rebuild = false;
  UpdateProcessor processor(&index, nullptr, ucfg);
  processor.Build(base);
  EXPECT_NEAR(processor.CurrentSimilarity(), 1.0, 1e-9);

  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    processor.Insert(Point{0.02 * rng.NextDouble(), 0.02 * rng.NextDouble(),
                           static_cast<uint64_t>(10000 + i)});
  }
  // Half the data now sits in a tiny corner: similarity must drop a lot.
  EXPECT_LT(processor.CurrentSimilarity(), 0.7);
  EXPECT_GT(processor.CurrentDissimilarity(), 0.3);
  EXPECT_EQ(processor.update_count(), 4000u);
  EXPECT_EQ(processor.rebuild_count(), 0u);
}

TEST(UpdateProcessorTest, RebuildTriggersAndRestoresSimilarity) {
  const Dataset base = GenerateUniform(3000, 15);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  ZmIndex::Config zcfg;
  zcfg.array.leaf_target = 1000;
  ZmIndex index(trainer, zcfg);

  // A predictor that always says rebuild once the update ratio is > 0.5.
  std::vector<RebuildSample> samples;
  for (int i = 0; i < 100; ++i) {
    RebuildSample s;
    s.features.update_ratio = 0.02 * i;
    s.features.log10_n = 3.5;
    s.features.depth = 2.0;
    s.features.dissimilarity = 0.2;
    s.features.cdf_similarity = 1.0 - 0.005 * i;
    s.label = s.features.update_ratio > 0.5 ? 1.0 : 0.0;
    samples.push_back(s);
  }
  RebuildPredictor predictor;
  predictor.Train(samples);

  UpdateProcessorConfig ucfg;
  ucfg.f_u = 256;
  UpdateProcessor processor(&index, &predictor, ucfg);
  processor.Build(base);
  Rng rng(17);
  for (int i = 0; i < 4000; ++i) {
    processor.Insert(Point{0.05 * rng.NextDouble(), 0.05 * rng.NextDouble(),
                           static_cast<uint64_t>(10000 + i)});
  }
  EXPECT_GT(processor.rebuild_count(), 0u);
  EXPECT_EQ(index.size(), 7000u);
  // All points remain queryable after rebuilds.
  EXPECT_TRUE(index.PointQuery(base[123]));
}

TEST(UpdateProcessorTest, RemoveRoutesThroughIndex) {
  const Dataset base = GenerateUniform(1000, 19);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  ZmIndex index(trainer, ZmIndex::Config{});
  UpdateProcessorConfig ucfg;
  ucfg.enable_rebuild = false;
  UpdateProcessor processor(&index, nullptr, ucfg);
  processor.Build(base);
  EXPECT_TRUE(processor.Remove(base[5]));
  EXPECT_FALSE(processor.Remove(base[5]));
  EXPECT_FALSE(index.PointQuery(base[5]));
  EXPECT_EQ(processor.update_count(), 1u);
}

TEST(ScorerTrainerTest, CalibrationHitsTargetDissimilarity) {
  for (double target : {0.0, 0.3, 0.6}) {
    const double power = CalibratePowerForDissimilarity(target, 8000, 3);
    const Dataset data = GeneratePower(8000, power, power, 99);
    const GridQuantizer q(BoundingRect(data));
    std::vector<double> keys(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      keys[i] = static_cast<double>(MortonEncode(q.QuantizeX(data[i].x) >> 6,
                                                 q.QuantizeY(data[i].y) >> 6));
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_NEAR(UniformDissimilarity(keys), target, 0.08) << target;
  }
}

TEST(ScorerTrainerTest, EndToEndSelectorBeatsRandomOnGroundTruth) {
  ScorerTrainerConfig cfg;
  cfg.log10_min = 3.0;
  cfg.log10_max = 3.7;
  cfg.cardinality_levels = 2;
  cfg.dissimilarities = {0.0, 0.3, 0.6};
  cfg.queries = 64;
  cfg.processor = FastProcessorConfig();
  cfg.processor.rs.beta = 100;
  cfg.processor.cl.clusters = 32;
  cfg.processor.rl.max_steps = 60;
  const ScorerTrainingData data = GenerateScorerTrainingData(cfg);
  EXPECT_EQ(data.groups.size(), 6u);
  EXPECT_EQ(data.samples.size(), 6u * cfg.processor.enabled.size());

  // At tiny test scale the cheap methods (SP/MR/RS) tie at microseconds, so
  // exact-argmin accuracy is noise; the stable property is *regret*: at
  // lambda = 1 (pure build cost) the selector must never pick a method
  // whose measured cost is far from the best — i.e. it avoids OG and CL,
  // whose costs are orders of magnitude higher.
  auto scorer = std::make_shared<MethodScorer>();
  scorer->Train(data.samples);
  const double lambda = 1.0;
  ScorerSelector selector(scorer, lambda, 1.0);
  for (const ScorerDatasetGroup& group : data.groups) {
    std::vector<BuildMethodId> candidates;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& [method, cost] : group.costs) {
      candidates.push_back(method);
      best_cost = std::min(best_cost, cost.first);
    }
    const BuildMethodId chosen =
        selector.Choose(candidates, group.log10_n, group.dissimilarity);
    const double chosen_cost = group.costs.at(chosen).first;
    EXPECT_LT(chosen_cost, std::max(10.0 * best_cost, best_cost + 0.2))
        << "selector picked " << BuildMethodName(chosen)
        << " with relative build cost " << chosen_cost << " (best "
        << best_cost << ")";
  }
}

}  // namespace
}  // namespace elsi
