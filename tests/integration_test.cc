// End-to-end integration: ELSI (selector + build processor) driving all
// four base indices, update processing with rebuilds on learned indices,
// and learned-vs-traditional result equivalence.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/timer.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "traditional/rstar_tree.h"

namespace elsi {
namespace {

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 60;
  cfg.learning_rate = 0.03;
  return cfg;
}

BuildProcessorConfig FastProcessorConfig() {
  BuildProcessorConfig cfg;
  cfg.model = FastModel();
  cfg.rl.max_steps = 60;
  cfg.mr.synthetic_size = 512;
  cfg.rs.beta = 200;
  cfg.cl.clusters = 50;
  cfg.sp.rho = 0.02;
  return cfg;
}

// A scorer with the qualitative cost structure the real measurements
// produce, good enough to drive a ScorerSelector in integration tests.
std::shared_ptr<MethodScorer> CannedScorer() {
  std::vector<ScorerSample> samples;
  for (double log10_n = 3.0; log10_n <= 6.0; log10_n += 0.5) {
    for (double dissim = 0.0; dissim <= 0.9; dissim += 0.15) {
      auto add = [&](BuildMethodId m, double b, double q) {
        samples.push_back({m, log10_n, dissim, b, q});
      };
      add(BuildMethodId::kSP, 0.05, 1.04 + 0.2 * dissim);
      add(BuildMethodId::kCL, 0.8, 1.02);
      add(BuildMethodId::kMR, 0.01, 1.08 + 0.4 * dissim);
      add(BuildMethodId::kRS, 0.12, 1.00);
      add(BuildMethodId::kRL, 0.25, 1.01);
      add(BuildMethodId::kOG, 1.0, 1.0);
    }
  }
  auto scorer = std::make_shared<MethodScorer>();
  scorer->Train(samples);
  return scorer;
}

class ElsiEndToEndTest : public ::testing::TestWithParam<BaseIndexKind> {};

TEST_P(ElsiEndToEndTest, SelectorDrivenBuildServesAllQueryTypes) {
  const BaseIndexKind kind = GetParam();
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 4000, 21);

  auto selector = std::make_shared<ScorerSelector>(CannedScorer(), 0.8, 1.0);
  auto processor = MakeElsiProcessor(kind, FastProcessorConfig(), selector);
  BaseIndexScale scale;
  scale.leaf_target = 1000;
  auto index = MakeBaseIndex(kind, processor, scale);
  index->Build(data);

  // The processor actually ran (at least one model-training request) and
  // selected only enabled methods.
  EXPECT_FALSE(processor->records().empty());
  for (const BuildCallRecord& record : processor->records()) {
    EXPECT_TRUE(std::find(processor->enabled().begin(),
                          processor->enabled().end(), record.method) !=
                processor->enabled().end());
  }

  // Point queries are exact.
  for (size_t i = 0; i < data.size(); i += 11) {
    EXPECT_TRUE(index->PointQuery(data[i])) << BaseIndexKindName(kind);
  }
  // Window queries: no false positives and usable recall.
  const auto windows = SampleWindowQueries(data, 10, 0.005, 3);
  double recall_sum = 0.0;
  for (const Rect& w : windows) {
    const auto result = index->WindowQuery(w);
    for (const Point& p : result) EXPECT_TRUE(w.Contains(p));
    recall_sum += Recall(result, BruteForceWindow(data, w));
  }
  EXPECT_GT(recall_sum / windows.size(), 0.85) << BaseIndexKindName(kind);
  // kNN returns k points near the query.
  const auto knn = index->KnnQuery(data[7], 10);
  EXPECT_EQ(knn.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllBaseIndices, ElsiEndToEndTest,
                         ::testing::ValuesIn(kAllBaseIndexKinds),
                         [](const auto& info) {
                           return BaseIndexKindName(info.param);
                         });

TEST(ElsiEndToEndTest, ElsiBuildIsFasterThanOgAtScale) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 60000, 23);
  BaseIndexScale scale;
  scale.leaf_target = 15000;

  BuildProcessorConfig cfg = FastProcessorConfig();
  cfg.model.epochs = 200;
  cfg.sp.rho = 0.01;

  Timer og_timer;
  auto og_index = MakeBaseIndex(
      BaseIndexKind::kZM,
      std::make_shared<DirectTrainer>(cfg.model), scale);
  og_index->Build(data);
  const double og_seconds = og_timer.ElapsedSeconds();

  cfg.enabled = {BuildMethodId::kSP};
  auto processor = std::make_shared<BuildProcessor>(
      cfg, std::make_shared<FixedSelector>(BuildMethodId::kSP));
  Timer elsi_timer;
  auto elsi_index = MakeBaseIndex(BaseIndexKind::kZM, processor, scale);
  elsi_index->Build(data);
  const double elsi_seconds = elsi_timer.ElapsedSeconds();

  EXPECT_LT(elsi_seconds, og_seconds / 2.0)
      << "ELSI " << elsi_seconds << "s vs OG " << og_seconds << "s";

  // And the query behaviour matches.
  for (size_t i = 0; i < data.size(); i += 211) {
    EXPECT_TRUE(elsi_index->PointQuery(data[i]));
  }
}

class UpdateIntegrationTest : public ::testing::TestWithParam<BaseIndexKind> {
};

TEST_P(UpdateIntegrationTest, RebuildKeepsIndexConsistent) {
  const BaseIndexKind kind = GetParam();
  const Dataset base = GenerateDataset(DatasetKind::kOsm1, 2500, 29);

  auto processor = MakeElsiProcessor(
      kind, FastProcessorConfig(),
      std::make_shared<FixedSelector>(BuildMethodId::kSP));
  BaseIndexScale scale;
  scale.leaf_target = 800;
  auto index = MakeBaseIndex(kind, processor, scale);

  // Aggressive always-rebuild predictor exercises the full rebuild path.
  std::vector<RebuildSample> samples;
  for (int i = 0; i < 40; ++i) {
    RebuildSample s;
    s.features.update_ratio = 0.05 * i;
    s.features.log10_n = 3.5;
    s.features.cdf_similarity = 1.0 - 0.01 * i;
    s.label = s.features.update_ratio > 0.2 ? 1.0 : 0.0;
    samples.push_back(s);
  }
  RebuildPredictor predictor;
  predictor.Train(samples);

  UpdateProcessorConfig ucfg;
  ucfg.f_u = 500;
  UpdateProcessor updates(index.get(), &predictor, ucfg);
  updates.Build(base);

  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    updates.Insert(Point{0.1 * rng.NextDouble(), 0.1 * rng.NextDouble(),
                         static_cast<uint64_t>(50000 + i)});
  }
  EXPECT_GT(updates.rebuild_count(), 0u) << BaseIndexKindName(kind);
  EXPECT_EQ(index->size(), 4500u) << BaseIndexKindName(kind);
  // Base and inserted points both remain queryable after rebuilds.
  for (size_t i = 0; i < base.size(); i += 37) {
    EXPECT_TRUE(index->PointQuery(base[i]))
        << BaseIndexKindName(kind) << " base " << i;
  }
  const auto everything = index->CollectAll();
  EXPECT_EQ(everything.size(), 4500u) << BaseIndexKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(AllBaseIndices, UpdateIntegrationTest,
                         ::testing::ValuesIn(kAllBaseIndexKinds),
                         [](const auto& info) {
                           return BaseIndexKindName(info.param);
                         });

TEST(CrossIndexConsistencyTest, LearnedAndTraditionalAgreeOnExactQueries) {
  // ZM/ML (exact learned) must return identical window results to RR*.
  const Dataset data = GenerateDataset(DatasetKind::kOsm2, 3000, 33);
  RStarTree rstar(32);
  rstar.Build(data);

  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  BaseIndexScale scale;
  scale.leaf_target = 800;
  for (BaseIndexKind kind : {BaseIndexKind::kZM, BaseIndexKind::kML}) {
    auto learned = MakeBaseIndex(kind, trainer, scale);
    learned->Build(data);
    const auto windows = SampleWindowQueries(data, 12, 0.003, 35);
    for (const Rect& w : windows) {
      auto a = rstar.WindowQuery(w);
      auto b = learned->WindowQuery(w);
      auto ids = [](std::vector<Point> pts) {
        std::vector<uint64_t> out;
        for (const Point& p : pts) out.push_back(p.id);
        std::sort(out.begin(), out.end());
        return out;
      };
      EXPECT_EQ(ids(a), ids(b)) << BaseIndexKindName(kind);
    }
  }
}

}  // namespace
}  // namespace elsi
