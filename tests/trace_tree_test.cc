// Causal trace-tree tests: span ID allocation and parent linking, context
// propagation across ThreadPool::Submit / TaskGroup::Run / ParallelFor,
// inline-vs-pooled shape identity (traces must not change shape with
// --threads 1), the background-root policy, and the headline acceptance
// case — a sharded window query at 4 planner threads yields one connected
// tree spanning multiple worker threads with deterministic span counts.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "data/dataset.h"
#include "obs/slow_query.h"
#include "obs/trace.h"
#include "shard/sharded_index.h"

namespace elsi {
namespace obs {
namespace {

shard::ShardedIndexConfig ShardTestConfig(size_t shards, ThreadPool* pool) {
  shard::ShardedIndexConfig cfg;
  cfg.partition.shards = shards;
  cfg.shard.kind = BaseIndexKind::kZM;
  cfg.shard.elsi = false;  // DirectTrainer: fast, exact windows.
  cfg.shard.build.model.hidden = {8};
  cfg.shard.build.model.epochs = 40;
  cfg.shard.scale.leaf_target = 400;
  cfg.pool = pool;
  return cfg;
}

#if ELSI_OBS_ENABLED

/// All events of every thread, flattened, after the last Clear().
std::vector<SlowTraceSpan> AllSpans() {
  std::vector<SlowTraceSpan> spans;
  for (const ThreadTrace& thread : TraceRegistry::Get().Snapshot()) {
    for (const TraceEvent& event : thread.events) {
      spans.push_back({event, thread.tid});
    }
  }
  return spans;
}

const TraceEvent* FindByName(const std::vector<SlowTraceSpan>& spans,
                             const std::string& name) {
  for (const SlowTraceSpan& span : spans) {
    if (span.event.name != nullptr && name == span.event.name) {
      return &span.event;
    }
  }
  return nullptr;
}

TEST(TraceTreeTest, NestedSpansLinkParentChain) {
  TraceRegistry::Get().Clear();
  {
    ELSI_TRACE_SPAN("tree.outer");
    {
      ELSI_TRACE_SPAN("tree.middle");
      { ELSI_TRACE_SPAN("tree.inner"); }
    }
  }
  const auto spans = AllSpans();
  const TraceEvent* outer = FindByName(spans, "tree.outer");
  const TraceEvent* middle = FindByName(spans, "tree.middle");
  const TraceEvent* inner = FindByName(spans, "tree.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);

  // The outer span roots the trace: trace_id == its span_id, no parent.
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->trace_id, outer->span_id);
  EXPECT_EQ(middle->parent_id, outer->span_id);
  EXPECT_EQ(inner->parent_id, middle->span_id);
  // One trace_id across the whole chain; span ids are distinct.
  EXPECT_EQ(middle->trace_id, outer->trace_id);
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_NE(outer->span_id, middle->span_id);
  EXPECT_NE(middle->span_id, inner->span_id);
}

TEST(TraceTreeTest, SequentialTopSpansRootSeparateTraces) {
  TraceRegistry::Get().Clear();
  { ELSI_TRACE_SPAN("tree.first"); }
  { ELSI_TRACE_SPAN("tree.second"); }
  const auto spans = AllSpans();
  const TraceEvent* first = FindByName(spans, "tree.first");
  const TraceEvent* second = FindByName(spans, "tree.second");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->parent_id, 0u);
  EXPECT_EQ(second->parent_id, 0u);
  EXPECT_NE(first->trace_id, second->trace_id);
}

TEST(TraceTreeTest, PooledTasksJoinTheSubmittersTrace) {
  TraceRegistry::Get().Clear();
  ThreadPool pool(4);
  uint64_t root_trace = 0;
  {
    ELSI_TRACE_SPAN("tree.fanout_root");
    root_trace = CurrentTraceContext().trace_id;
    TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) {
      group.Run([] { ELSI_TRACE_SPAN("tree.fanout_child"); });
    }
    group.Wait();
  }
  ASSERT_NE(root_trace, 0u);
  const auto spans = AllSpans();
  const TraceEvent* root = FindByName(spans, "tree.fanout_root");
  ASSERT_NE(root, nullptr);
  size_t children = 0;
  for (const SlowTraceSpan& span : spans) {
    if (std::string("tree.fanout_child") != span.event.name) continue;
    ++children;
    EXPECT_EQ(span.event.trace_id, root_trace);
    EXPECT_EQ(span.event.parent_id, root->span_id);
  }
  EXPECT_EQ(children, 8u);
}

TEST(TraceTreeTest, ParallelForBodiesJoinTheCallersTrace) {
  TraceRegistry::Get().Clear();
  ThreadPool pool(4);
  {
    ELSI_TRACE_SPAN("tree.pfor_root");
    pool.ParallelFor(0, 16, [](size_t) { ELSI_TRACE_SPAN("tree.pfor_body"); });
  }
  const auto spans = AllSpans();
  const TraceEvent* root = FindByName(spans, "tree.pfor_root");
  ASSERT_NE(root, nullptr);
  size_t bodies = 0;
  for (const SlowTraceSpan& span : spans) {
    if (std::string("tree.pfor_body") != span.event.name) continue;
    ++bodies;
    EXPECT_EQ(span.event.trace_id, root->trace_id);
    // ParallelFor chunks lanes through TaskGroup lambdas that carry no
    // spans of their own, so bodies parent directly under the caller.
    EXPECT_EQ(span.event.parent_id, root->span_id);
  }
  EXPECT_EQ(bodies, 16u);
}

TEST(TraceTreeTest, BackgroundWorkRootsItsOwnTrace) {
  TraceRegistry::Get().Clear();
  ThreadPool pool(2);
  // Submitted outside any span: the task's context is empty and its span
  // must root a fresh trace (the background-work policy).
  {
    TaskGroup group(&pool);
    group.Run([] { ELSI_TRACE_SPAN("tree.background"); });
    group.Wait();
  }
  const auto spans = AllSpans();
  const TraceEvent* bg = FindByName(spans, "tree.background");
  ASSERT_NE(bg, nullptr);
  EXPECT_EQ(bg->parent_id, 0u);
  EXPECT_EQ(bg->trace_id, bg->span_id);
}

// --- inline vs pooled shape identity --------------------------------------

/// The canonical fan-out: a root span, 3 group tasks each recording an
/// outer+inner pair. Returns the shape as sorted (name, parent-name) edges
/// plus the root-relative trace size.
std::vector<std::pair<std::string, std::string>> RunCanonicalFanout(
    ThreadPool* pool) {
  TraceRegistry::Get().Clear();
  {
    ELSI_TRACE_SPAN("shape.root");
    TaskGroup group(pool);
    for (int i = 0; i < 3; ++i) {
      group.Run([] {
        ELSI_TRACE_SPAN("shape.task");
        { ELSI_TRACE_SPAN("shape.leaf"); }
      });
    }
    group.Wait();
  }
  const auto spans = AllSpans();
  std::map<uint64_t, std::string> names;
  for (const SlowTraceSpan& span : spans) names[span.event.span_id] = span.event.name;
  std::vector<std::pair<std::string, std::string>> edges;
  for (const SlowTraceSpan& span : spans) {
    const auto parent = names.find(span.event.parent_id);
    edges.emplace_back(span.event.name,
                       parent != names.end() ? parent->second : "<root>");
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST(TraceTreeTest, SerialAndPooledExecutionProduceIdenticalShape) {
  // Null pool (TaskGroup runs inline), a 1-thread pool (Submit never used),
  // and a 4-thread pool must all produce the same parent edges — traces
  // must not change shape with --threads 1.
  const auto serial = RunCanonicalFanout(nullptr);
  ThreadPool one(1);
  const auto inline_pool = RunCanonicalFanout(&one);
  ThreadPool four(4);
  const auto pooled = RunCanonicalFanout(&four);

  const std::vector<std::pair<std::string, std::string>> expected = {
      {"shape.leaf", "shape.task"},
      {"shape.leaf", "shape.task"},
      {"shape.leaf", "shape.task"},
      {"shape.root", "<root>"},
      {"shape.task", "shape.root"},
      {"shape.task", "shape.root"},
      {"shape.task", "shape.root"},
  };
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(inline_pool, expected);
  EXPECT_EQ(pooled, expected);
}

// --- sharded window query: the acceptance case ----------------------------

TEST(TraceTreeTest, ShardedWindowQueryYieldsOneConnectedTree) {
  ThreadPool pool(4);
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 4000, 11);
  shard::ShardedIndex index(ShardTestConfig(8, &pool));
  index.Build(data);
  const Rect window{-1.0, -1.0, 2.0, 2.0};  // covers every point and shard

  size_t expected_spans = 0;
  bool saw_multi_thread = false;
  // Which worker picks up which shard task is scheduler-dependent; the
  // tree's shape is not. Repeat until the fan-out lands on >= 2 threads
  // (virtually always the first try with 8 tasks on 4 threads) and assert
  // connectivity and span counts on every attempt.
  for (int attempt = 0; attempt < 20; ++attempt) {
    TraceRegistry::Get().Clear();
    const std::vector<Point> result = index.WindowQuery(window);
    EXPECT_EQ(result.size(), data.size());

    const auto spans = AllSpans();
    const TraceEvent* root = FindByName(spans, "shard.query.window");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent_id, 0u);

    // Exactly one trace: every span belongs to the root's trace_id.
    std::set<uint64_t> ids;
    std::set<uint64_t> tids;
    size_t in_trace = 0;
    for (const SlowTraceSpan& span : spans) {
      EXPECT_EQ(span.event.trace_id, root->trace_id)
          << span.event.name << " rooted a separate trace";
      ids.insert(span.event.span_id);
      tids.insert(span.tid);
      ++in_trace;
    }
    // Connected: every non-root parent link resolves inside the tree.
    for (const SlowTraceSpan& span : spans) {
      if (span.event.span_id == root->span_id) continue;
      EXPECT_TRUE(ids.count(span.event.parent_id) != 0)
          << span.event.name << " is an orphan";
    }
    // Deterministic count: 1 root + one per-shard span per visited shard,
    // identical across runs.
    if (expected_spans == 0) {
      expected_spans = in_trace;
      EXPECT_EQ(expected_spans, 1u + 8u);  // all 8 shards intersect
    } else {
      EXPECT_EQ(in_trace, expected_spans) << "span count varies across runs";
    }
    if (tids.size() >= 2) {
      saw_multi_thread = true;
      break;
    }
  }
  EXPECT_TRUE(saw_multi_thread)
      << "fan-out never landed on a second thread in 20 attempts";
}

TEST(TraceTreeTest, BatchedShardQueryChunksJoinTheBatchTrace) {
  ThreadPool pool(4);
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 2000, 13);
  shard::ShardedIndex index(ShardTestConfig(4, &pool));
  index.Build(data);

  TraceRegistry::Get().Clear();
  std::vector<Rect> windows(8, Rect{0.2, 0.2, 0.8, 0.8});
  std::vector<std::vector<Point>> out(windows.size());
  BatchQueryOptions opts;
  opts.pool = &pool;
  opts.chunk = 2;
  index.WindowQueryBatch(windows, out, opts);

  const auto spans = AllSpans();
  const TraceEvent* root = FindByName(spans, "shard.batch.window");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  // The pooled top-level ForEachQueryChunk emits one chunk span per chunk,
  // parented to the batch root. Each chunk's per-shard sub-batches chunk
  // again (serially, under that shard's span), so nested "query.chunk"
  // spans deeper in the tree are expected — count only the root's direct
  // children here; the trace_id check covers the rest.
  size_t direct_chunks = 0;
  for (const SlowTraceSpan& span : spans) {
    EXPECT_EQ(span.event.trace_id, root->trace_id);
    if (std::string("query.chunk") == span.event.name &&
        span.event.parent_id == root->span_id) {
      ++direct_chunks;
    }
  }
  EXPECT_EQ(direct_chunks, windows.size() / opts.chunk);
}

#else  // !ELSI_OBS_ENABLED

// With obs compiled out the span/context machinery is inline no-op stubs:
// call sites must compile unchanged, queries must stay correct, and the
// registry must stay empty.
TEST(TraceTreeStubTest, TracedPathsStillWorkWithObsOff) {
  {
    ELSI_TRACE_SPAN("tree.outer");
    ELSI_TRACE_QUERY_SPAN("tree.query");
    TraceContextScope scope(CurrentTraceContext());
  }
  ThreadPool pool(2);
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 500, 3);
  shard::ShardedIndex index(ShardTestConfig(4, &pool));
  index.Build(data);
  const Rect window{-1.0, -1.0, 2.0, 2.0};
  EXPECT_EQ(index.WindowQuery(window).size(), data.size());
  EXPECT_TRUE(TraceRegistry::Get().Snapshot().empty());
}

#endif  // ELSI_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace elsi
