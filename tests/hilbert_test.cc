#include "curve/hilbert.h"

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

TEST(HilbertTest, FirstOrderCurve) {
  // Order-1 curve visits (0,0) -> (0,1) -> (1,1) -> (1,0).
  EXPECT_EQ(HilbertEncode(0, 0, 1), 0u);
  EXPECT_EQ(HilbertEncode(0, 1, 1), 1u);
  EXPECT_EQ(HilbertEncode(1, 1, 1), 2u);
  EXPECT_EQ(HilbertEncode(1, 0, 1), 3u);
}

TEST(HilbertTest, EncodeDecodeRoundTripSmallOrders) {
  for (int order = 1; order <= 6; ++order) {
    const uint32_t side = 1u << order;
    for (uint32_t x = 0; x < side; ++x) {
      for (uint32_t y = 0; y < side; ++y) {
        uint32_t rx, ry;
        HilbertDecode(HilbertEncode(x, y, order), &rx, &ry, order);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
      }
    }
  }
}

TEST(HilbertTest, EncodeDecodeRoundTripFullOrder) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextUint64());
    const uint32_t y = static_cast<uint32_t>(rng.NextUint64());
    uint32_t rx, ry;
    HilbertDecode(HilbertEncode(x, y, 32), &rx, &ry, 32);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(HilbertTest, IsABijectionOnSmallGrid) {
  constexpr int kOrder = 5;
  constexpr uint32_t kSide = 1u << kOrder;
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < kSide; ++x) {
    for (uint32_t y = 0; y < kSide; ++y) {
      const uint64_t h = HilbertEncode(x, y, kOrder);
      EXPECT_LT(h, static_cast<uint64_t>(kSide) * kSide);
      EXPECT_TRUE(seen.insert(h).second) << "duplicate index " << h;
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining continuity property of the Hilbert curve: consecutive curve
  // positions differ by exactly one step in exactly one dimension.
  constexpr int kOrder = 6;
  constexpr uint64_t kTotal = 1ULL << (2 * kOrder);
  uint32_t px, py;
  HilbertDecode(0, &px, &py, kOrder);
  for (uint64_t h = 1; h < kTotal; ++h) {
    uint32_t x, y;
    HilbertDecode(h, &x, &y, kOrder);
    const uint32_t dx = x > px ? x - px : px - x;
    const uint32_t dy = y > py ? y - py : py - y;
    EXPECT_EQ(dx + dy, 1u) << "discontinuity at h=" << h;
    px = x;
    py = y;
  }
}

TEST(HilbertDeathTest, RejectsInvalidOrder) {
  EXPECT_DEATH(HilbertEncode(0, 0, 0), "order out of range");
  EXPECT_DEATH(HilbertEncode(0, 0, 33), "order out of range");
}

}  // namespace
}  // namespace elsi
