// Tests for the embedded HTTP exposition server: golden endpoint bodies via
// the socket-free Handle() dispatch, a Prometheus text-format validity
// check, real socket round-trips with port-0 auto-bind, concurrent scrapes
// under query load (run this binary under TSan), and /healthz flipping to
// degraded when drift is injected into the model-health monitor.

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "obs/slow_query.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace elsi {
namespace obs {
namespace {

struct Response {
  int status = 0;
  std::string content_type;
  std::string body;
};

Response Dispatch(const std::string& path) {
  Response r;
  HttpExporter::Handle(path, &r.status, &r.content_type, &r.body);
  return r;
}

#if ELSI_OBS_ENABLED

/// Minimal Prometheus text-format check: every non-comment, non-blank line
/// is `name{labels} value` or `name value` with a parseable float value and
/// a [a-zA-Z_:][a-zA-Z0-9_:]* metric name.
bool ValidPrometheusText(const std::string& text, std::string* bad_line) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t name_end = 0;
    while (name_end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[name_end])) ||
            line[name_end] == '_' || line[name_end] == ':')) {
      ++name_end;
    }
    if (name_end == 0 ||
        std::isdigit(static_cast<unsigned char>(line[0]))) {
      *bad_line = line;
      return false;
    }
    size_t value_start = name_end;
    if (value_start < line.size() && line[value_start] == '{') {
      const size_t close = line.find('}', value_start);
      if (close == std::string::npos) {
        *bad_line = line;
        return false;
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      *bad_line = line;
      return false;
    }
    char* end = nullptr;
    const std::string value = line.substr(value_start + 1);
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() && value != "+Inf" && value != "NaN") {
      *bad_line = line;
      return false;
    }
  }
  return true;
}

TEST(HttpHandleTest, MetricsIsValidPrometheusText) {
  GetCounter("test.http.counter").Add(5);
  GetGauge("test.http.gauge").Set(-2);
  GetHistogram("test.http.hist{index=ZM}", HistogramSpec::LatencyUs())
      .Observe(12.5);
  const Response r = Dispatch("/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/plain; version=0.0.4");
  std::string bad;
  EXPECT_TRUE(ValidPrometheusText(r.body, &bad)) << "bad line: " << bad;
  EXPECT_NE(r.body.find("elsi_test_http_counter 5"), std::string::npos);
  EXPECT_NE(r.body.find("elsi_test_http_hist_bucket{index=\"ZM\""),
            std::string::npos);
}

TEST(HttpHandleTest, MetricsCarriesFlightExemplars) {
  FlightRecorder::Get().SetSampleEvery(1);
  std::thread worker([] {
    QueryScope scope("EXEMPLAR", QueryKind::kPoint);
    scope.AddScan(3, 1.0);
  });
  worker.join();
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
  const Response r = Dispatch("/metrics");
  EXPECT_NE(r.body.find("# exemplar elsi_query_flight_latency_us"),
            std::string::npos);
  EXPECT_NE(r.body.find("trace_id="), std::string::npos);
  // Derived gauge refreshed per scrape: the startup SIMD dispatch level.
  EXPECT_NE(r.body.find("elsi_simd_dispatch"), std::string::npos);
  std::string bad;
  EXPECT_TRUE(ValidPrometheusText(r.body, &bad)) << "bad line: " << bad;
}

TEST(HttpHandleTest, HealthzReportsBuildInfoAndPersistLag) {
  const Response r = Dispatch("/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  EXPECT_NE(r.body.find("\"status\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"git_sha\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"obs_enabled\": 1"), std::string::npos);
  EXPECT_NE(r.body.find("\"sanitizer\": "), std::string::npos);
  // The dispatch level chosen at startup rides in build_info, and its
  // value is whatever the simd layer actually selected.
  const std::string simd_field =
      std::string("\"simd\": \"") + elsi::simd::ActiveLevelName() + "\"";
  EXPECT_NE(r.body.find(simd_field), std::string::npos);
  EXPECT_NE(r.body.find("\"wal_lag\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"snapshot_seq\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"trace\": {\"dropped\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"model_health\": "), std::string::npos);
  // Concurrent-serving block: epoch state and delta depth ride along so an
  // operator can spot a wedged reclamation (limbo growing without bound).
  EXPECT_NE(r.body.find("\"concurrent\": {\"epoch\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"limbo\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"delta_depth\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"merges\": "), std::string::npos);
}

TEST(HttpHandleTest, HealthzCarriesShardBlock) {
  // The shard block is driven purely by the shard.* gauges that
  // ShardedIndex::UpdateShardMetrics publishes, so injecting gauges
  // directly exercises the same path without linking the shard engine.
  GetGauge("shard.count").Set(3);
  GetGauge("shard.points.0").Set(100);
  GetGauge("shard.points.2").Set(50);
  GetGauge("shard.points.10").Set(7);
  GetGauge("shard.skew_permille").Set(1500);
  GetGauge("shard.degraded").Set(1);
  const Response r = Dispatch("/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"shard\": {\"count\": 3"), std::string::npos);
  // Per-shard populations sort numerically by shard id, not by gauge-name
  // string order (shard 10 after shard 2).
  EXPECT_NE(r.body.find("\"points\": [100, 50, 7]"), std::string::npos);
  EXPECT_NE(r.body.find("\"skew_ratio\": 1.500"), std::string::npos);
  EXPECT_NE(r.body.find("\"degraded\": 1"), std::string::npos);
}

TEST(HttpHandleTest, HealthzReflectsInjectedDrift) {
  ModelHealthMonitor& monitor = ModelHealthMonitor::Get();
  monitor.Reset();
  monitor.OnBuild("DRIFTY");
  QueryRecord r;
  r.index = "DRIFTY";
  r.kind = QueryKind::kPoint;
  // Healthy baseline: 64 samples with scan length 10.
  r.scan_len = 10;
  r.pred_error = 2.0;
  for (uint64_t i = 0; i < ModelHealthMonitor::kBaselineWindow; ++i) {
    monitor.OnQuerySample(r);
  }
  EXPECT_NE(Dispatch("/healthz").body.find("\"status\": \"ok\""),
            std::string::npos);
  // Inject drift: scans now 10x the baseline, well past kDegradedRatio.
  r.scan_len = 100;
  r.pred_error = 40.0;
  for (uint64_t i = 0; i < 4 * ModelHealthMonitor::kMinDriftSamples; ++i) {
    monitor.OnQuerySample(r);
  }
  const Response degraded = Dispatch("/healthz");
  EXPECT_NE(degraded.body.find("\"status\": \"degraded\""),
            std::string::npos);
  EXPECT_NE(degraded.body.find("\"index\": \"DRIFTY\""), std::string::npos);
  EXPECT_TRUE(monitor.AnyDegraded());
  // A rebuild resets the baseline and clears the degraded flag.
  monitor.OnBuild("DRIFTY");
  EXPECT_NE(Dispatch("/healthz").body.find("\"status\": \"ok\""),
            std::string::npos);
  monitor.Reset();
}

TEST(HttpHandleTest, VarzEmbedsMetricsJson) {
  const Response r = Dispatch("/varz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"uptime_s\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"build_info\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"flight\": {\"sample_every\": "),
            std::string::npos);
  EXPECT_NE(r.body.find("\"metrics\": {"), std::string::npos);
  // Time-windowed rolling views (10s/1m), populated scrape-over-scrape.
  EXPECT_NE(r.body.find("\"windows\": {"), std::string::npos);
  EXPECT_NE(r.body.find("\"10s\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"60s\": "), std::string::npos);
}

TEST(HttpHandleTest, DebugSlowServesTheSlowQueryStore) {
  SlowQueryStore::Get().Clear();
  SlowQueryStore::Get().ForceThresholdNs(1);
  { ELSI_TRACE_QUERY_SPAN("http.slow_query"); }
  const Response r = Dispatch("/debug/slow");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  EXPECT_NE(r.body.find("\"threshold_us\": "), std::string::npos);
  EXPECT_NE(r.body.find("\"root\": \"http.slow_query\""), std::string::npos);
  EXPECT_NE(r.body.find("\"phases\": ["), std::string::npos);
  EXPECT_NE(r.body.find("\"shards\": ["), std::string::npos);
  SlowQueryStore::Get().ForceThresholdNs(0);
  SlowQueryStore::Get().Clear();
}

TEST(HttpHandleTest, DebugEndpointsAndIndexAnd404) {
  EXPECT_EQ(Dispatch("/debug/trace").status, 200);
  EXPECT_NE(Dispatch("/debug/trace").body.find("\"traceEvents\""),
            std::string::npos);
  EXPECT_NE(Dispatch("/debug/queries").body.find("\"sample_every\""),
            std::string::npos);
  EXPECT_EQ(Dispatch("/").status, 200);
  EXPECT_NE(Dispatch("/").body.find("/healthz"), std::string::npos);
  EXPECT_NE(Dispatch("/").body.find("/debug/profile"), std::string::npos);
  EXPECT_NE(Dispatch("/").body.find("/debug/slow"), std::string::npos);
  EXPECT_EQ(Dispatch("/nope").status, 404);
}

TEST(HttpHandleTest, VarzAndHealthzCarryProfAndProcBlocks) {
  const Response varz = Dispatch("/varz");
  EXPECT_NE(varz.body.find("\"prof\": {"), std::string::npos);
  EXPECT_NE(varz.body.find("\"counters\": "), std::string::npos);
  EXPECT_NE(varz.body.find("\"sampler\": "), std::string::npos);
  EXPECT_NE(varz.body.find("\"proc\": {"), std::string::npos);
  EXPECT_NE(varz.body.find("\"rss_bytes\": "), std::string::npos);
  const Response healthz = Dispatch("/healthz");
  EXPECT_NE(healthz.body.find("\"prof\": {"), std::string::npos);
  EXPECT_NE(healthz.body.find("\"proc\": {"), std::string::npos);
}

// The profiling endpoint's contract is 200-with-explanation on every
// degradation path (perf denied, compiled out, zero samples) — probes and
// dashboards never see a 5xx from it.
TEST(HttpHandleTest, DebugProfileAlwaysAnswers200) {
  std::thread worker([] {
    // Keep a core busy so the sampler has something to catch.
    volatile double x = 1.0;
    for (int i = 0; i < 40000000; ++i) x = x * 1.000001 + 0.5;
  });
  const Response r = Dispatch("/debug/profile?seconds=0.2&hz=397");
  worker.join();
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "text/plain");
  EXPECT_FALSE(r.body.empty());
#if ELSI_PROF_ENABLED
  // Either collapsed stacks ("frame;frame N") or an explanatory comment.
  EXPECT_TRUE(r.body.find(';') != std::string::npos ||
              r.body[0] == '#')
      << r.body;
#else
  EXPECT_EQ(r.body[0], '#') << r.body;
#endif
  // Malformed parameters degrade to the defaults, never to an error.
  EXPECT_EQ(Dispatch("/debug/profile?seconds=abc&hz=-5").status, 200);
}

TEST(HttpExporterTest, PortZeroAutoBindsDistinctPorts) {
  HttpExporter a, b;
  ASSERT_TRUE(a.Start({}));
  ASSERT_TRUE(b.Start({}));
  EXPECT_TRUE(a.running());
  EXPECT_GT(a.port(), 0);
  EXPECT_GT(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
  a.Stop();
  b.Stop();
  EXPECT_FALSE(a.running());
}

TEST(HttpExporterTest, ServesOverARealSocket) {
  HttpExporter server;
  ASSERT_TRUE(server.Start({}));
  int status = 0;
  std::string body;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &status,
                      &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\": "), std::string::npos);
  // Query strings ride through dispatch (most endpoints ignore them).
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics?x=1", &status,
                      &body));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(
      HttpGet("127.0.0.1", server.port(), "/missing", &status, &body));
  EXPECT_EQ(status, 404);
  server.Stop();
  EXPECT_FALSE(HttpGet("127.0.0.1", server.port(), "/healthz", &status,
                       &body));
}

TEST(HttpExporterTest, ConcurrentScrapesUnderQueryLoad) {
  HttpExporter server;
  ASSERT_TRUE(server.Start({}));
  const uint16_t port = server.port();

  // Writers: sampled queries banging the rings and registries while
  // scrapers snapshot them (the TSan-relevant interleaving).
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 400; ++i) {
        QueryScope scope("LOAD", QueryKind::kPoint);
        if (QueryScope* active = QueryScope::ActiveSampled()) {
          active->AddScan(8, 2.0);
        }
      }
    });
  }
  std::vector<std::thread> scrapers;
  std::atomic<int> failures{0};
  const char* paths[] = {"/metrics", "/varz", "/healthz", "/debug/queries"};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([port, &failures, path = paths[t]] {
      for (int i = 0; i < 8; ++i) {
        int status = 0;
        std::string body;
        if (!HttpGet("127.0.0.1", port, path, &status, &body) ||
            status != 200 || body.empty()) {
          ++failures;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  for (auto& s : scrapers) s.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

#else  // !ELSI_OBS_ENABLED

TEST(HttpExporterStubTest, StartFailsAndHandleIs404) {
  HttpExporter server;
  EXPECT_FALSE(server.Start({}));
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  const Response r = Dispatch("/metrics");
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.body, "observability compiled out\n");
}

#endif  // ELSI_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace elsi
