#include <functional>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/spatial_index.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/lisa_index.h"
#include "learned/ml_index.h"
#include "learned/rank_model.h"
#include "learned/rsmi_index.h"
#include "learned/segmented_array.h"
#include "learned/zm_index.h"

namespace elsi {
namespace {

// Small, fast model configuration for tests.
RankModelConfig TestModelConfig() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 80;
  cfg.learning_rate = 0.03;
  return cfg;
}

std::shared_ptr<ModelTrainer> TestTrainer() {
  return std::make_shared<DirectTrainer>(TestModelConfig());
}

std::unique_ptr<SpatialIndex> MakeIndex(const std::string& name) {
  auto trainer = TestTrainer();
  if (name == "ZM") {
    ZmIndex::Config cfg;
    cfg.array.leaf_target = 500;
    return std::make_unique<ZmIndex>(trainer, cfg);
  }
  if (name == "ML") {
    MlIndex::Config cfg;
    cfg.array.leaf_target = 500;
    cfg.num_references = 8;
    return std::make_unique<MlIndex>(trainer, cfg);
  }
  if (name == "RSMI") {
    RsmiIndex::Config cfg;
    cfg.leaf_capacity = 400;
    cfg.fanout = 4;
    return std::make_unique<RsmiIndex>(trainer, cfg);
  }
  LisaIndex::Config cfg;
  cfg.strips = 8;
  cfg.cells_per_strip = 8;
  return std::make_unique<LisaIndex>(trainer, cfg);
}

const char* kAllLearned[] = {"ZM", "ML", "RSMI", "LISA"};

class LearnedIndexTest
    : public ::testing::TestWithParam<std::tuple<const char*, DatasetKind>> {
 protected:
  std::string IndexName() const { return std::get<0>(GetParam()); }
  Dataset MakeData(size_t n) const {
    return GenerateDataset(std::get<1>(GetParam()), n, 77);
  }
};

TEST_P(LearnedIndexTest, PointQueriesAreExact) {
  const Dataset data = MakeData(2000);
  auto index = MakeIndex(IndexName());
  index->Build(data);
  EXPECT_EQ(index->size(), data.size());
  for (size_t i = 0; i < data.size(); i += 3) {
    EXPECT_TRUE(index->PointQuery(data[i])) << IndexName() << " missed " << i;
  }
  EXPECT_FALSE(index->PointQuery(Point{-3.0, -3.0, 0}));
}

TEST_P(LearnedIndexTest, WindowQueriesAreExactOrHighRecallSupersetFree) {
  const Dataset data = MakeData(3000);
  auto index = MakeIndex(IndexName());
  index->Build(data);
  const auto windows = SampleWindowQueries(data, 15, 0.004, 5);
  const bool exact = IndexName() == "ZM" || IndexName() == "ML";
  double recall_sum = 0.0;
  size_t windows_with_truth = 0;
  for (const Rect& w : windows) {
    const auto truth = BruteForceWindow(data, w);
    const auto result = index->WindowQuery(w);
    // No false positives, ever: every reported point is inside the window.
    for (const Point& p : result) {
      EXPECT_TRUE(w.Contains(p)) << IndexName();
    }
    // No duplicates.
    std::vector<uint64_t> ids;
    for (const Point& p : result) ids.push_back(p.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << IndexName() << " returned duplicates";
    const double recall = Recall(result, truth);
    if (exact) {
      EXPECT_DOUBLE_EQ(recall, 1.0) << IndexName();
    }
    if (!truth.empty()) {
      recall_sum += recall;
      ++windows_with_truth;
    }
  }
  if (!exact && windows_with_truth > 0) {
    // RSMI / LISA are approximate but must stay above the paper's ~90%.
    EXPECT_GT(recall_sum / windows_with_truth, 0.85) << IndexName();
  }
}

TEST_P(LearnedIndexTest, KnnFindsNearPoints) {
  const Dataset data = MakeData(3000);
  auto index = MakeIndex(IndexName());
  index->Build(data);
  const auto queries = SampleKnnQueries(data, 8, 3);
  const bool exact = IndexName() == "ZM" || IndexName() == "ML";
  double recall_sum = 0.0;
  for (const Point& q : queries) {
    const auto truth = BruteForceKnn(data, q, 25);
    const auto result = index->KnnQuery(q, 25);
    EXPECT_LE(result.size(), 25u);
    if (exact) {
      ASSERT_EQ(result.size(), truth.size()) << IndexName();
      for (size_t i = 0; i < truth.size(); ++i) {
        EXPECT_DOUBLE_EQ(SquaredDistance(result[i], q),
                         SquaredDistance(truth[i], q))
            << IndexName() << " rank " << i;
      }
    }
    recall_sum += Recall(result, truth);
  }
  EXPECT_GT(recall_sum / queries.size(), exact ? 0.999 : 0.80) << IndexName();
}

TEST_P(LearnedIndexTest, InsertedPointsAreQueryable) {
  const Dataset data = MakeData(1500);
  auto index = MakeIndex(IndexName());
  index->Build(data);
  const Dataset extra = GenerateSkewed(300, 11);
  for (Point p : extra) {
    p.id += 100000;
    index->Insert(p);
  }
  EXPECT_EQ(index->size(), data.size() + extra.size());
  for (size_t i = 0; i < extra.size(); i += 5) {
    Point p = extra[i];
    p.id += 100000;
    EXPECT_TRUE(index->PointQuery(p)) << IndexName();
  }
  // Old points remain queryable.
  for (size_t i = 0; i < data.size(); i += 17) {
    EXPECT_TRUE(index->PointQuery(data[i])) << IndexName();
  }
}

TEST_P(LearnedIndexTest, RemoveDropsPointsExactly) {
  const Dataset data = MakeData(1000);
  auto index = MakeIndex(IndexName());
  index->Build(data);
  for (size_t i = 0; i < data.size(); i += 2) {
    EXPECT_TRUE(index->Remove(data[i])) << IndexName() << " at " << i;
  }
  EXPECT_EQ(index->size(), data.size() / 2);
  // With duplicated coordinates (TPC-H lattice), a removed point's
  // coordinates may legitimately remain findable via a kept twin; only
  // assert absence when no kept point shares the coordinates.
  std::set<std::pair<double, double>> kept_coords;
  for (size_t i = 1; i < data.size(); i += 2) {
    kept_coords.emplace(data[i].x, data[i].y);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    const bool expect_hit =
        i % 2 == 1 || kept_coords.count({data[i].x, data[i].y}) > 0;
    EXPECT_EQ(index->PointQuery(data[i]), expect_hit)
        << IndexName() << " at " << i;
  }
  EXPECT_FALSE(index->Remove(data[0])) << IndexName();
}

TEST_P(LearnedIndexTest, InsertThenRemoveRoundTrip) {
  const Dataset data = MakeData(800);
  auto index = MakeIndex(IndexName());
  index->Build(data);
  Point p{0.31337, 0.8086, 424242};
  index->Insert(p);
  EXPECT_TRUE(index->PointQuery(p)) << IndexName();
  EXPECT_TRUE(index->Remove(p)) << IndexName();
  EXPECT_FALSE(index->PointQuery(p)) << IndexName();
  EXPECT_EQ(index->size(), data.size());
}

TEST_P(LearnedIndexTest, EmptyBuildIsSafe) {
  auto index = MakeIndex(IndexName());
  index->Build({});
  EXPECT_EQ(index->size(), 0u);
  EXPECT_FALSE(index->PointQuery(Point{0.5, 0.5, 0}));
  EXPECT_TRUE(index->WindowQuery(Rect::Of(0, 0, 1, 1)).empty());
  EXPECT_TRUE(index->KnnQuery(Point{0.5, 0.5, 0}, 3).empty());
}

TEST_P(LearnedIndexTest, DuplicateCoordinatesSupported) {
  Dataset data;
  for (size_t i = 0; i < 300; ++i) data.push_back(Point{0.25, 0.75, i});
  for (size_t i = 300; i < 600; ++i) {
    data.push_back(Point{0.5 + 1e-4 * (i - 300), 0.5, i});
  }
  auto index = MakeIndex(IndexName());
  index->Build(data);
  EXPECT_TRUE(index->PointQuery(Point{0.25, 0.75, 0}));
  const auto hits = index->WindowQuery(Rect::Of(0.2, 0.7, 0.3, 0.8));
  EXPECT_EQ(hits.size(), 300u) << IndexName();
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexDistributions, LearnedIndexTest,
    ::testing::Combine(::testing::ValuesIn(kAllLearned),
                       ::testing::Values(DatasetKind::kUniform,
                                         DatasetKind::kSkewed,
                                         DatasetKind::kOsm1,
                                         DatasetKind::kTpch)),
    [](const auto& info) {
      std::string n = std::string(std::get<0>(info.param)) + "_" +
                      DatasetKindName(std::get<1>(info.param));
      n.erase(std::remove_if(n.begin(), n.end(),
                             [](char c) { return !std::isalnum(c) && c != '_'; }),
              n.end());
      return n;
    });

TEST(RankModelTest, ErrorBoundsCoverEveryKey) {
  Dataset data = GenerateSkewed(4000, 5);
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = data[i].y;
  std::sort(keys.begin(), keys.end());
  RankModel model;
  model.Train(keys, keys.front(), keys.back(), TestModelConfig());
  model.ComputeErrorBounds(keys);
  for (size_t i = 0; i < keys.size(); i += 7) {
    const auto [lo, hi] = model.SearchRange(keys[i], keys.size());
    EXPECT_GE(i, lo);
    EXPECT_LE(i, hi);
  }
}

TEST(RankModelTest, TrainingOnSubsetStillBoundsFullSet) {
  // The ELSI premise: error bounds computed over the full set remain valid
  // even when the model was trained on a small subset.
  Dataset data = GenerateDataset(DatasetKind::kOsm1, 6000, 7);
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = data[i].x;
  std::sort(keys.begin(), keys.end());
  std::vector<double> subset;
  for (size_t i = 0; i < keys.size(); i += 20) subset.push_back(keys[i]);
  RankModel model;
  model.Train(subset, keys.front(), keys.back(), TestModelConfig());
  model.ComputeErrorBounds(keys);
  for (size_t i = 0; i < keys.size(); i += 11) {
    const auto [lo, hi] = model.SearchRange(keys[i], keys.size());
    EXPECT_GE(i, lo);
    EXPECT_LE(i, hi);
  }
}

TEST(RankModelTest, PretrainedAdoptionPredicts) {
  RankModelConfig cfg = TestModelConfig();
  std::vector<double> keys(512);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<double>(i) / (keys.size() - 1);
  }
  RankModel original;
  original.Train(keys, 0.0, 1.0, cfg);
  RankModel adopted;
  adopted.AdoptPretrained(original.net(), 0.0, 1.0);
  EXPECT_DOUBLE_EQ(adopted.PredictRank(0.37), original.PredictRank(0.37));
}

TEST(SegmentedArrayTest, SegmentsAreContiguousQuantiles) {
  Dataset data = GenerateUniform(2000, 9);
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = data[i].x;
  SegmentedLearnedArray array;
  SegmentedLearnedArray::Config cfg;
  cfg.leaf_target = 300;
  auto trainer = TestTrainer();
  array.Build(data, keys, [](const Point& p) { return p.x; }, trainer.get(),
              cfg);
  EXPECT_EQ(array.segment_count(), 7u);  // ceil(2000 / 300).
  EXPECT_EQ(array.model_depth(), 2);
  // Base keys are globally sorted.
  const auto& sorted = array.base_keys();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(SegmentedArrayTest, LowerBoundMatchesStdLowerBound) {
  Dataset data = GenerateDataset(DatasetKind::kNyc, 3000, 11);
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = data[i].y;
  SegmentedLearnedArray array;
  SegmentedLearnedArray::Config cfg;
  cfg.leaf_target = 250;
  auto trainer = TestTrainer();
  array.Build(data, keys, [](const Point& p) { return p.y; }, trainer.get(),
              cfg);
  const auto& sorted = array.base_keys();
  for (double probe :
       {0.0, 0.1, 0.25, 0.333, 0.5, 0.75, 0.9, 1.0, -1.0, 2.0}) {
    const size_t expected = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), probe) -
        sorted.begin());
    EXPECT_EQ(array.LowerBound(probe), expected) << "probe " << probe;
  }
  // Every indexed key finds its own first occurrence.
  for (size_t i = 0; i < sorted.size(); i += 13) {
    const size_t lb = array.LowerBound(sorted[i]);
    EXPECT_LE(lb, i);
    EXPECT_DOUBLE_EQ(sorted[lb], sorted[i]);
  }
}

TEST(SegmentedArrayTest, LowerBoundBatchMatchesSerialExactly) {
  Dataset data = GenerateDataset(DatasetKind::kSkewed, 4000, 23);
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = data[i].x;
  SegmentedLearnedArray array;
  SegmentedLearnedArray::Config cfg;
  cfg.leaf_target = 300;
  auto trainer = TestTrainer();
  array.Build(data, keys, [](const Point& p) { return p.x; }, trainer.get(),
              cfg);
  // Probes: every stored key (duplicates included), midpoints between
  // neighbours, and both out-of-range sides — the windowed search's edge
  // corrections all fire somewhere in here.
  const auto& sorted = array.base_keys();
  std::vector<double> probes;
  for (size_t i = 0; i < sorted.size(); i += 3) {
    probes.push_back(sorted[i]);
    if (i + 1 < sorted.size()) {
      probes.push_back((sorted[i] + sorted[i + 1]) / 2.0);
    }
  }
  probes.push_back(sorted.front() - 1.0);
  probes.push_back(sorted.back() + 1.0);
  std::vector<size_t> leaf(probes.size()), lb(probes.size());
  array.LowerBoundBatch(probes.data(), probes.size(), leaf.data(), lb.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(lb[i], array.LowerBound(probes[i])) << "probe " << i;
    const size_t expected = static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), probes[i]) -
        sorted.begin());
    ASSERT_EQ(lb[i], expected) << "probe " << i;
  }
}

TEST(RsmiIndexTest, StructureIsRecursive) {
  RsmiIndex::Config cfg;
  cfg.leaf_capacity = 200;
  cfg.fanout = 4;
  RsmiIndex index(TestTrainer(), cfg);
  index.Build(GenerateDataset(DatasetKind::kOsm1, 3000, 13));
  EXPECT_GE(index.Depth(), 2);
  EXPECT_GT(index.node_count(), 4u);
}

TEST(RsmiIndexTest, OverflowMergeRetrainsLocally) {
  RsmiIndex::Config cfg;
  cfg.leaf_capacity = 500;
  cfg.fanout = 4;
  cfg.block_capacity = 16;
  cfg.merge_fraction = 0.10;
  RsmiIndex index(TestTrainer(), cfg);
  index.Build(GenerateUniform(1000, 15));
  // Skewed inserts into a corner leaf force local merges.
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    index.Insert(Point{0.01 * rng.NextDouble(), 0.01 * rng.NextDouble(),
                       static_cast<uint64_t>(100000 + i)});
  }
  EXPECT_GT(index.leaf_merge_count(), 0u);
  EXPECT_EQ(index.size(), 1400u);
  EXPECT_EQ(index.CollectAll().size(), 1400u);
}

TEST(LisaIndexTest, ShardCountMatchesConfiguration) {
  LisaIndex::Config cfg;
  cfg.shard_size = 50;
  LisaIndex index(TestTrainer(), cfg);
  index.Build(GenerateUniform(1000, 19));
  EXPECT_EQ(index.shard_count(), 20u);
}

TEST(LisaIndexTest, InsertSplitsPagesUnderSkew) {
  LisaIndex::Config cfg;
  cfg.shard_size = 20;
  cfg.strips = 4;
  cfg.cells_per_strip = 4;
  LisaIndex index(TestTrainer(), cfg);
  index.Build(GenerateUniform(400, 21));
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    index.Insert(Point{rng.NextDouble() * 0.05, rng.NextDouble() * 0.05,
                       static_cast<uint64_t>(50000 + i)});
  }
  EXPECT_EQ(index.size(), 900u);
  EXPECT_EQ(index.CollectAll().size(), 900u);
}

TEST(ZmIndexTest, CollectAllRoundTrips) {
  ZmIndex::Config cfg;
  cfg.array.leaf_target = 400;
  ZmIndex index(TestTrainer(), cfg);
  const Dataset data = GenerateDataset(DatasetKind::kOsm2, 1500, 25);
  index.Build(data);
  auto all = index.CollectAll();
  EXPECT_EQ(all.size(), data.size());
}

TEST(MlIndexTest, KeySpacePartitionsAreSeparated) {
  MlIndex::Config cfg;
  cfg.num_references = 4;
  MlIndex index(TestTrainer(), cfg);
  const Dataset data = GenerateUniform(1000, 27);
  index.Build(data);
  // Keys of points in different partitions occupy disjoint bands.
  for (const Point& p : data) {
    const double key = index.KeyOf(p);
    EXPECT_GE(key, 0.0);
    EXPECT_LT(key, 4.0 * 2.0);  // num_refs * separation upper bound.
  }
}

}  // namespace
}  // namespace elsi
