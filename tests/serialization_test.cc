// Serialization round-trips: FFN, method scorer, rebuild predictor, and the
// dataset binary format's legacy-file compatibility.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/method_scorer.h"
#include "core/rebuild_predictor.h"
#include "data/dataset.h"
#include "ml/ffn.h"
#include "persist/io.h"

namespace elsi {
namespace {

// The dataset .bin format predates persist/io.h: it was written with raw
// host-order u64/f64 memcpys. The rewritten LoadBinary must still read
// files laid out that way (identical bytes on little-endian hosts).
TEST(DatasetBinaryCompatTest, ReadsLegacyHostOrderLayout) {
  const std::string path = ::testing::TempDir() + "legacy_dataset.bin";
  const Dataset expect = {{0.25, 0.75, 42}, {-1.5, 3.25, 7}};
  {
    std::ofstream out(path, std::ios::binary);
    const uint64_t n = expect.size();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const Point& p : expect) {
      out.write(reinterpret_cast<const char*>(&p.x), sizeof(p.x));
      out.write(reinterpret_cast<const char*>(&p.y), sizeof(p.y));
      out.write(reinterpret_cast<const char*>(&p.id), sizeof(p.id));
    }
  }
  Dataset loaded;
  ASSERT_TRUE(LoadBinary(path, &loaded));
  ASSERT_EQ(loaded.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(loaded[i].x, expect[i].x);
    EXPECT_EQ(loaded[i].y, expect[i].y);
    EXPECT_EQ(loaded[i].id, expect[i].id);
  }
  // And the rewritten SaveBinary produces those exact bytes back.
  const std::string path2 = ::testing::TempDir() + "legacy_dataset2.bin";
  ASSERT_TRUE(SaveBinary(loaded, path2));
  std::ifstream a(path, std::ios::binary), b(path2, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(FfnSerializationTest, RoundTripPreservesPredictions) {
  Ffn net(3, {8, 4}, 2, 7);
  // Train a little so the parameters are non-trivial.
  Matrix x(32, 3), y(32, 2);
  Rng rng(5);
  for (size_t i = 0; i < 32; ++i) {
    for (size_t c = 0; c < 3; ++c) x.At(i, c) = rng.NextDouble();
    y.At(i, 0) = x.At(i, 0) + x.At(i, 1);
    y.At(i, 1) = x.At(i, 2);
  }
  FfnTrainOptions opts;
  opts.epochs = 50;
  net.Train(x, y, opts);

  std::stringstream stream;
  ASSERT_TRUE(net.Save(stream));
  const auto loaded = Ffn::Load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->input_dim(), 3);
  EXPECT_EQ(loaded->output_dim(), 2);
  EXPECT_EQ(loaded->HiddenDims(), (std::vector<int>{8, 4}));
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> probe = {rng.NextDouble(), rng.NextDouble(),
                                       rng.NextDouble()};
    EXPECT_EQ(net.Forward(probe), loaded->Forward(probe));
  }
}

TEST(FfnSerializationTest, SigmoidFlagSurvives) {
  Ffn net(2, {4}, 1, 3, OutputActivation::kSigmoid);
  std::stringstream stream;
  ASSERT_TRUE(net.Save(stream));
  const auto loaded = Ffn::Load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(net.Predict1({0.3, -0.9}), loaded->Predict1({0.3, -0.9}));
  // Sigmoid output stays bounded after reload.
  EXPECT_GE(loaded->Predict1({100.0, 100.0}), 0.0);
  EXPECT_LE(loaded->Predict1({100.0, 100.0}), 1.0);
}

TEST(FfnSerializationTest, RejectsGarbage) {
  std::stringstream bad("not-a-network 1\n");
  EXPECT_FALSE(Ffn::Load(bad).has_value());
  std::stringstream truncated("elsi-ffn 1\n3 1 0\n1 8\n0.5\n");
  EXPECT_FALSE(Ffn::Load(truncated).has_value());
  std::stringstream wrong_version("elsi-ffn 2\n3 1 0\n0\n");
  EXPECT_FALSE(Ffn::Load(wrong_version).has_value());
}

TEST(MethodScorerSerializationTest, RoundTripPreservesScores) {
  std::vector<ScorerSample> samples;
  for (double d = 0.0; d <= 0.9; d += 0.1) {
    samples.push_back({BuildMethodId::kSP, 4.0, d, 0.05, 1.1});
    samples.push_back({BuildMethodId::kOG, 4.0, d, 1.0, 1.0});
    samples.push_back({BuildMethodId::kMR, 4.0, d, 0.01, 1.2});
  }
  MethodScorer scorer;
  scorer.Train(samples);
  std::stringstream stream;
  ASSERT_TRUE(scorer.Save(stream));
  MethodScorer loaded;
  ASSERT_TRUE(loaded.Load(stream));
  ASSERT_TRUE(loaded.trained());
  for (BuildMethodId m :
       {BuildMethodId::kSP, BuildMethodId::kOG, BuildMethodId::kMR}) {
    EXPECT_EQ(scorer.PredictBuildCost(m, 4.0, 0.4),
              loaded.PredictBuildCost(m, 4.0, 0.4));
    EXPECT_EQ(scorer.PredictQueryCost(m, 4.0, 0.4),
              loaded.PredictQueryCost(m, 4.0, 0.4));
  }
}

TEST(MethodScorerSerializationTest, UntrainedSaveFails) {
  MethodScorer scorer;
  std::stringstream stream;
  EXPECT_FALSE(scorer.Save(stream));
}

TEST(RebuildPredictorSerializationTest, RoundTripPreservesDecisions) {
  std::vector<RebuildSample> samples;
  for (int i = 0; i < 60; ++i) {
    RebuildSample s;
    s.features.update_ratio = 0.03 * i;
    s.features.log10_n = 4.0;
    s.features.cdf_similarity = 1.0 - 0.01 * i;
    s.label = s.features.update_ratio > 0.6 ? 1.0 : 0.0;
    samples.push_back(s);
  }
  RebuildPredictor predictor;
  predictor.Train(samples);
  std::stringstream stream;
  ASSERT_TRUE(predictor.Save(stream));
  RebuildPredictor loaded;
  ASSERT_TRUE(loaded.Load(stream));
  RebuildFeatures f;
  f.log10_n = 4.0;
  f.update_ratio = 1.5;
  f.cdf_similarity = 0.4;
  EXPECT_EQ(predictor.PredictScore(f), loaded.PredictScore(f));
  EXPECT_EQ(predictor.ShouldRebuild(f), loaded.ShouldRebuild(f));
}

TEST(RebuildPredictorSerializationTest, RejectsWrongInputDim) {
  Ffn net(3, {4}, 1, 1);  // Wrong input dim (predictor expects 5).
  std::stringstream stream;
  ASSERT_TRUE(net.Save(stream));
  RebuildPredictor predictor;
  EXPECT_FALSE(predictor.Load(stream));
}

}  // namespace
}  // namespace elsi
