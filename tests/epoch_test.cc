// Epoch-based reclamation unit tests: retire/advance/reclaim ordering (a
// pinned guard blocks the free of anything it could observe), per-thread
// slot reuse after thread exit, orphan hand-off, and a readers-vs-retirer
// hammer whose invariant-carrying nodes catch use-after-free under
// ASan/TSan (CI runs this suite under TSan).

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/epoch.h"

namespace elsi {
namespace concurrent {
namespace {

/// Retire target whose deleter counts frees through a shared counter.
struct Counted {
  explicit Counted(std::atomic<int>* counter) : counter(counter) {}
  ~Counted() { counter->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* counter;
};

void RunInThread(const std::function<void()>& fn) {
  std::thread t(fn);
  t.join();
}

TEST(EpochTest, RetireWithoutReadersFreesAfterDrain) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  mgr.Retire(new Counted(&freed));
  mgr.Retire(new Counted(&freed));
  EXPECT_EQ(mgr.limbo_size(), 2u);
  EXPECT_EQ(mgr.DrainAll(), 2u);
  EXPECT_EQ(freed.load(), 2);
  EXPECT_EQ(mgr.limbo_size(), 0u);
}

TEST(EpochTest, PinnedGuardBlocksReclamationUntilReleased) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochManager::Guard guard(mgr);
    // Another thread unlinks an object this guard may still reference and
    // tries hard to reclaim it: the pin must hold the free back.
    RunInThread([&] {
      mgr.Retire(new Counted(&freed));
      mgr.DrainAll();
    });
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(mgr.limbo_size(), 1u);
  }
  // Guard released (and the retiring thread's garbage was orphaned to the
  // manager): any thread's drain can now free it.
  mgr.DrainAll();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(mgr.limbo_size(), 0u);
}

TEST(EpochTest, NestedGuardKeepsOuterPin) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    EpochManager::Guard outer(mgr);
    {
      EpochManager::Guard inner(mgr);
    }
    // Destroying the inner guard must NOT unpin the slot — the outer
    // critical section is still open, so the retired object stays put.
    RunInThread([&] {
      mgr.Retire(new Counted(&freed));
      mgr.DrainAll();
    });
    EXPECT_EQ(freed.load(), 0);
  }
  mgr.DrainAll();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, EpochAdvancesWhenAllPinnedSlotsCaughtUp) {
  EpochManager mgr;
  const uint64_t before = mgr.global_epoch();
  std::atomic<int> freed{0};
  mgr.Retire(new Counted(&freed));
  mgr.DrainAll();
  EXPECT_GT(mgr.global_epoch(), before);
}

TEST(EpochTest, SlotIsReusedAfterThreadExit) {
  EpochManager mgr;
  size_t first = EpochManager::kMaxSlots;
  size_t second = EpochManager::kMaxSlots;
  RunInThread([&] { first = mgr.SlotIndexForTesting(); });
  RunInThread([&] { second = mgr.SlotIndexForTesting(); });
  EXPECT_LT(first, EpochManager::kMaxSlots);
  EXPECT_EQ(first, second);
  EXPECT_EQ(mgr.active_slots(), 0u);  // Both threads released on exit.
}

TEST(EpochTest, ExitedThreadsGarbageIsOrphanedAndFreed) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  std::vector<std::thread> retirers;
  for (int t = 0; t < 4; ++t) {
    retirers.emplace_back([&] {
      for (int i = 0; i < 10; ++i) mgr.Retire(new Counted(&freed));
    });
  }
  for (auto& t : retirers) t.join();
  // Whatever the exiting threads did not reclaim themselves went to the
  // orphan list; the main thread drains it.
  mgr.DrainAll();
  EXPECT_EQ(freed.load(), 40);
  EXPECT_EQ(mgr.limbo_size(), 0u);
}

// N readers chase an atomic root while one thread keeps swapping and
// retiring it. Every node carries a self-checking invariant (b == ~a), so a
// premature free shows up as a torn read under ASan and as a race under
// TSan. This is the EBR contract in miniature: the serving-root pattern of
// ConcurrentIndex.
TEST(EpochTest, HammerReadersNeverSeeFreedNodes) {
  struct Node {
    uint64_t a;
    uint64_t b;
  };
  EpochManager mgr;
  std::atomic<Node*> root{new Node{0, ~0ull}};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Guard guard(mgr);
        Node* n = root.load(std::memory_order_seq_cst);
        ASSERT_EQ(n->b, ~n->a);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Don't start swapping until every reader has pinned at least once — on a
  // loaded single-core host the swap loop can otherwise finish before the
  // readers are even scheduled, hammering nothing.
  while (reads.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(kReaders)) {
    std::this_thread::yield();
  }

  constexpr uint64_t kSwaps = 20000;
  for (uint64_t i = 1; i <= kSwaps; ++i) {
    Node* fresh = new Node{i, ~i};
    Node* old = root.exchange(fresh, std::memory_order_seq_cst);
    mgr.Retire(old);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  delete root.load();
  // With every reader gone the drain must be able to empty limbo.
  mgr.DrainAll();
  EXPECT_EQ(mgr.limbo_size(), 0u);
}

}  // namespace
}  // namespace concurrent
}  // namespace elsi
