#include "curve/zorder.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextUint64());
    const uint32_t y = static_cast<uint32_t>(rng.NextUint64());
    uint32_t rx, ry;
    MortonDecode(MortonEncode(x, y), &rx, &ry);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
  }
}

TEST(MortonTest, KnownSmallValues) {
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
  EXPECT_EQ(MortonEncode(2, 0), 4u);
  EXPECT_EQ(MortonEncode(2, 3), 14u);
}

TEST(MortonTest, MonotoneInEachCoordinate) {
  // Fixing one coordinate, the Z-code grows with the other. This property
  // justifies the [z(lo), z(hi)] window-scan range used by ZM.
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextUint64()) / 2;
    const uint32_t y = static_cast<uint32_t>(rng.NextUint64()) / 2;
    EXPECT_LT(MortonEncode(x, y), MortonEncode(x + 1, y));
    EXPECT_LT(MortonEncode(x, y), MortonEncode(x, y + 1));
  }
}

TEST(ZCodeInBoxTest, MatchesCoordinateTest) {
  const uint64_t zmin = MortonEncode(2, 3);
  const uint64_t zmax = MortonEncode(10, 12);
  EXPECT_TRUE(ZCodeInBox(MortonEncode(5, 7), zmin, zmax));
  EXPECT_TRUE(ZCodeInBox(MortonEncode(2, 3), zmin, zmax));
  EXPECT_TRUE(ZCodeInBox(MortonEncode(10, 12), zmin, zmax));
  EXPECT_FALSE(ZCodeInBox(MortonEncode(1, 7), zmin, zmax));
  EXPECT_FALSE(ZCodeInBox(MortonEncode(5, 13), zmin, zmax));
}

// BIGMIN correctness against brute force on a small grid: for any query box
// and any z-value inside [zmin, zmax] decoding outside the box, BIGMIN must
// equal the smallest in-box Z-code >= z.
TEST(ZBigminTest, MatchesBruteForceOnSmallGrid) {
  constexpr uint32_t kSide = 16;
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t lx = static_cast<uint32_t>(rng.NextBelow(kSide));
    uint32_t hx = static_cast<uint32_t>(rng.NextBelow(kSide));
    uint32_t ly = static_cast<uint32_t>(rng.NextBelow(kSide));
    uint32_t hy = static_cast<uint32_t>(rng.NextBelow(kSide));
    if (lx > hx) std::swap(lx, hx);
    if (ly > hy) std::swap(ly, hy);
    const uint64_t zmin = MortonEncode(lx, ly);
    const uint64_t zmax = MortonEncode(hx, hy);
    for (uint64_t z = zmin; z <= zmax; ++z) {
      if (ZCodeInBox(z, zmin, zmax)) continue;
      uint64_t expected = zmax + 1;
      for (uint64_t c = z + 1; c <= zmax; ++c) {
        if (ZCodeInBox(c, zmin, zmax)) {
          expected = c;
          break;
        }
      }
      if (expected > zmax) continue;  // No successor in box.
      EXPECT_EQ(ZBigmin(z, zmin, zmax), expected)
          << "z=" << z << " box=(" << lx << "," << ly << ")-(" << hx << ","
          << hy << ")";
    }
  }
}

TEST(GridQuantizerTest, MapsDomainCornersToGridCorners) {
  const GridQuantizer q(Rect::Of(0.0, 0.0, 1.0, 1.0));
  EXPECT_EQ(q.QuantizeX(0.0), 0u);
  EXPECT_EQ(q.QuantizeY(0.0), 0u);
  EXPECT_EQ(q.QuantizeX(1.0), 4294967295u);
  EXPECT_EQ(q.QuantizeY(1.0), 4294967295u);
}

TEST(GridQuantizerTest, ClampsOutOfDomainValues) {
  const GridQuantizer q(Rect::Of(0.0, 0.0, 1.0, 1.0));
  EXPECT_EQ(q.QuantizeX(-5.0), 0u);
  EXPECT_EQ(q.QuantizeX(7.0), 4294967295u);
}

TEST(GridQuantizerTest, PreservesOrder) {
  const GridQuantizer q(Rect::Of(-10.0, 5.0, 10.0, 25.0));
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.NextDouble(-10.0, 10.0);
    const double b = rng.NextDouble(-10.0, 10.0);
    if (a < b) {
      EXPECT_LE(q.QuantizeX(a), q.QuantizeX(b));
    }
  }
}

TEST(GridQuantizerTest, ZCodeConsistentWithManualEncode) {
  const GridQuantizer q(Rect::Of(0.0, 0.0, 1.0, 1.0));
  const Point p{0.25, 0.75, 0};
  EXPECT_EQ(q.ZCode(p), MortonEncode(q.QuantizeX(0.25), q.QuantizeY(0.75)));
}

TEST(GridQuantizerTest, DegenerateExtentCollapsesToZero) {
  const GridQuantizer q(Rect::Of(3.0, 0.0, 3.0, 1.0));
  EXPECT_EQ(q.QuantizeX(3.0), 0u);
  EXPECT_EQ(q.QuantizeX(100.0), 0u);
}

}  // namespace
}  // namespace elsi
