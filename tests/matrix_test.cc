#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
}

TEST(MatrixTest, MatMulKnownValues) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, TransposedMatMulEqualsExplicitTranspose) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});  // 2x3
  const Matrix b = Matrix::FromRows({{1, 0}, {0, 1}});        // 2x2
  const Matrix c = a.TransposedMatMul(b);                     // 3x2 = a^T b
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.At(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.At(2, 1), 6.0);
}

TEST(MatrixTest, MatMulTransposedEqualsExplicitTranspose) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}});       // 1x3
  const Matrix b = Matrix::FromRows({{4, 5, 6}, {1, 1, 1}});  // 2x3
  const Matrix c = a.MatMulTransposed(b);               // 1x2 = a b^T
  EXPECT_DOUBLE_EQ(c.At(0, 0), 32.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 6.0);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.AddRowBroadcast({10, 20});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 24.0);
}

TEST(MatrixTest, ColumnSums) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const auto sums = m.ColumnSums();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 9.0);
  EXPECT_DOUBLE_EQ(sums[1], 12.0);
}

TEST(MatrixDeathTest, MatMulDimensionMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_DEATH(a.MatMul(b), "CHECK failed");
}

}  // namespace
}  // namespace elsi
