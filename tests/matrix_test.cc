#include "ml/matrix.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "simd/simd.h"

namespace elsi {
namespace {

// Reference triple loops with plain ascending-k accumulation — the exact
// sum order the tiled kernels promise to preserve (see ml/matrix.h).
void RefNN(const double* a, const double* b, double* c, size_t m, size_t k,
           size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

void RefTN(const double* a, const double* b, double* c, size_t m, size_t k,
           size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += a[kk * m + i] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

void RefNT(const double* a, const double* b, double* c, size_t m, size_t k,
           size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[j * k + kk];
      c[i * n + j] = acc;
    }
  }
}

std::vector<double> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble() * 2.0 - 1.0;
  return v;
}

// Shapes chosen to hit every dispatch path: full tiles only, edge rows, edge
// columns (each specialised count), degenerate k = 1 / n = 1 / m = 1 fast
// paths, and sizes with no full tile at all.
constexpr size_t kOddShapes[][3] = {
    {1, 1, 1},  {1, 1, 16},  {1, 16, 1},   {1, 16, 16}, {4, 8, 8},
    {5, 3, 9},  {8, 16, 24}, {3, 1, 7},    {7, 2, 1},   {2, 5, 3},
    {13, 7, 5}, {16, 1, 1},  {33, 17, 31}, {6, 4, 2},   {9, 9, 9}};

// Tolerance for comparing FMA kernels against the plain ascending-k sum:
// a fused multiply-add skips one intermediate rounding per step, so each
// output can drift a few ulps from the reference (see DESIGN.md, "SIMD
// kernel layer"). Inputs are in [-1, 1], so an absolute-plus-relative
// bound at 1e-12 is ~4 orders of magnitude above the drift ever observed
// while still catching any indexing or accumulation-order bug.
void AssertNear(double want, double got, const char* what, size_t i) {
  const double tol = 1e-12 * std::max(1.0, std::abs(want));
  ASSERT_LE(std::abs(want - got), tol) << what << " at " << i;
}

// The scalar level is the reference semantics: bit-exact against the plain
// triple loop on every shape, whatever hardware the suite runs on.
TEST(GemmTest, ScalarLevelMatchesReferenceBitExactly) {
  const simd::Kernels* scalar = simd::ForLevel(simd::Level::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (const auto& s : kOddShapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    const auto a = RandomVec(m * k, 101 + m);
    const auto at = RandomVec(k * m, 303 + m);
    const auto b = RandomVec(k * n, 202 + n);
    const auto bt = RandomVec(n * k, 606 + n);
    std::vector<double> want(m * n), got(m * n);
    RefNN(a.data(), b.data(), want.data(), m, k, n);
    scalar->gemm_nn(a.data(), b.data(), got.data(), m, k, n);
    for (size_t i = 0; i < m * n; ++i) ASSERT_EQ(want[i], got[i]) << "NN " << i;
    RefTN(at.data(), b.data(), want.data(), m, k, n);
    scalar->gemm_tn(at.data(), b.data(), got.data(), m, k, n);
    for (size_t i = 0; i < m * n; ++i) ASSERT_EQ(want[i], got[i]) << "TN " << i;
    RefNT(a.data(), bt.data(), want.data(), m, k, n);
    scalar->gemm_nt(a.data(), bt.data(), got.data(), m, k, n);
    for (size_t i = 0; i < m * n; ++i) ASSERT_EQ(want[i], got[i]) << "NT " << i;
  }
}

// Every level reachable on this host stays within the FMA epsilon of the
// reference on every dispatch shape.
TEST(GemmTest, EveryLevelMatchesReferenceWithinEpsilon) {
  for (const simd::Level level : simd::SupportedLevels()) {
    const simd::Kernels* kern = simd::ForLevel(level);
    ASSERT_NE(kern, nullptr);
    for (const auto& s : kOddShapes) {
      const size_t m = s[0], k = s[1], n = s[2];
      const auto a = RandomVec(m * k, 101 + m);
      const auto at = RandomVec(k * m, 303 + m);
      const auto b = RandomVec(k * n, 202 + n);
      const auto bt = RandomVec(n * k, 606 + n);
      std::vector<double> want(m * n), got(m * n);
      RefNN(a.data(), b.data(), want.data(), m, k, n);
      kern->gemm_nn(a.data(), b.data(), got.data(), m, k, n);
      for (size_t i = 0; i < m * n; ++i) AssertNear(want[i], got[i], "NN", i);
      RefTN(at.data(), b.data(), want.data(), m, k, n);
      kern->gemm_tn(at.data(), b.data(), got.data(), m, k, n);
      for (size_t i = 0; i < m * n; ++i) AssertNear(want[i], got[i], "TN", i);
      RefNT(a.data(), bt.data(), want.data(), m, k, n);
      kern->gemm_nt(a.data(), bt.data(), got.data(), m, k, n);
      for (size_t i = 0; i < m * n; ++i) AssertNear(want[i], got[i], "NT", i);
    }
  }
}

// k == 1 products are a single multiply — no accumulation, so no fused
// rounding: bit-exact on every level. This is the first layer of every
// rank model (input_dim = 1), which keeps per-level index predictions
// reproducible end to end for one-layer linear models.
TEST(GemmTest, RankOneProductsBitExactOnEveryLevel) {
  constexpr size_t kRankOneShapes[][2] = {{1, 1}, {1, 16}, {5, 9},
                                          {16, 1}, {33, 31}, {64, 8}};
  for (const simd::Level level : simd::SupportedLevels()) {
    const simd::Kernels* kern = simd::ForLevel(level);
    ASSERT_NE(kern, nullptr);
    for (const auto& s : kRankOneShapes) {
      const size_t m = s[0], n = s[1];
      const auto a = RandomVec(m, 11 + m);
      const auto b = RandomVec(n, 22 + n);
      std::vector<double> want(m * n), got(m * n);
      RefNN(a.data(), b.data(), want.data(), m, 1, n);
      kern->gemm_nn(a.data(), b.data(), got.data(), m, 1, n);
      for (size_t i = 0; i < m * n; ++i) {
        ASSERT_EQ(want[i], got[i])
            << simd::LevelName(level) << " " << m << "x1x" << n << " at " << i;
      }
    }
  }
}

// The property the batched query path relies on: within any one level, row
// i of a batched product equals the product of row i alone, bit for bit,
// because every output element's sum is independent of the tiling.
TEST(GemmTest, BatchedRowsMatchSingleRowProductsBitExactly) {
  const size_t m = 37, k = 16, n = 16;
  const auto a = RandomVec(m * k, 7);
  const auto b = RandomVec(k * n, 8);
  for (const simd::Level level : simd::SupportedLevels()) {
    const simd::Kernels* kern = simd::ForLevel(level);
    ASSERT_NE(kern, nullptr);
    std::vector<double> batched(m * n), single(n);
    kern->gemm_nn(a.data(), b.data(), batched.data(), m, k, n);
    for (size_t i = 0; i < m; ++i) {
      kern->gemm_nn(a.data() + i * k, b.data(), single.data(), 1, k, n);
      for (size_t j = 0; j < n; ++j) {
        ASSERT_EQ(batched[i * n + j], single[j])
            << simd::LevelName(level) << " row " << i << " col " << j;
      }
    }
  }
}

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
}

TEST(MatrixTest, MatMulKnownValues) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, TransposedMatMulEqualsExplicitTranspose) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});  // 2x3
  const Matrix b = Matrix::FromRows({{1, 0}, {0, 1}});        // 2x2
  const Matrix c = a.TransposedMatMul(b);                     // 3x2 = a^T b
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.At(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.At(2, 1), 6.0);
}

TEST(MatrixTest, MatMulTransposedEqualsExplicitTranspose) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}});       // 1x3
  const Matrix b = Matrix::FromRows({{4, 5, 6}, {1, 1, 1}});  // 2x3
  const Matrix c = a.MatMulTransposed(b);               // 1x2 = a b^T
  EXPECT_DOUBLE_EQ(c.At(0, 0), 32.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 6.0);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.AddRowBroadcast({10, 20});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 24.0);
}

TEST(MatrixTest, ColumnSums) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const auto sums = m.ColumnSums();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 9.0);
  EXPECT_DOUBLE_EQ(sums[1], 12.0);
}

TEST(MatrixDeathTest, MatMulDimensionMismatchAborts) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_DEATH(a.MatMul(b), "CHECK failed");
}

}  // namespace
}  // namespace elsi
