#include "ml/scaler.h"

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(MinMaxScalerTest, ScalesColumnsToUnitInterval) {
  Matrix x = Matrix::FromRows({{0, 10}, {5, 20}, {10, 30}});
  MinMaxScaler scaler;
  scaler.Fit(x);
  scaler.Transform(&x);
  EXPECT_DOUBLE_EQ(x.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(x.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(x.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(x.At(2, 1), 1.0);
}

TEST(MinMaxScalerTest, ConstantColumnMapsToZero) {
  Matrix x = Matrix::FromRows({{3, 1}, {3, 2}});
  MinMaxScaler scaler;
  scaler.Fit(x);
  scaler.Transform(&x);
  EXPECT_DOUBLE_EQ(x.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x.At(1, 0), 0.0);
}

TEST(MinMaxScalerTest, VectorTransformMatchesMatrixTransform) {
  Matrix x = Matrix::FromRows({{-1, 0}, {1, 4}});
  MinMaxScaler scaler;
  scaler.Fit(x);
  const auto v = scaler.Transform(std::vector<double>{0.0, 2.0});
  EXPECT_DOUBLE_EQ(v[0], 0.5);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
}

TEST(MinMaxScalerTest, OutOfRangeValuesExtrapolate) {
  Matrix x = Matrix::FromRows({{0.0}, {1.0}});
  MinMaxScaler scaler;
  scaler.Fit(x);
  EXPECT_DOUBLE_EQ(scaler.Transform(std::vector<double>{2.0})[0], 2.0);
  EXPECT_DOUBLE_EQ(scaler.Transform(std::vector<double>{-1.0})[0], -1.0);
}

TEST(MinMaxScalerDeathTest, TransformBeforeFitAborts) {
  MinMaxScaler scaler;
  Matrix x(1, 1);
  EXPECT_DEATH(scaler.Transform(&x), "CHECK failed");
}

}  // namespace
}  // namespace elsi
