// Focused tests for paths the main suites exercise only lightly: the w_Q
// query-frequency knob of Eq. 2, deletion-heavy update tracking, inserts
// escaping the build-time domain, and MR reuse across shifted key ranges.

#include <memory>

#include <gtest/gtest.h>

#include "common/cdf.h"
#include "common/random.h"
#include "core/elsi.h"
#include "curve/zorder.h"
#include "data/synthetic.h"
#include "data/workload.h"

namespace elsi {
namespace {

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 60;
  cfg.learning_rate = 0.03;
  return cfg;
}

TEST(QueryFrequencyTest, LargeWqShiftsSelectionTowardQueryOptimal) {
  // Synthetic costs where MR is build-cheapest but query-poor.
  std::vector<ScorerSample> samples;
  for (double log10_n = 3.0; log10_n <= 5.0; log10_n += 0.5) {
    for (double dissim = 0.0; dissim <= 0.9; dissim += 0.1) {
      samples.push_back({BuildMethodId::kMR, log10_n, dissim, 0.01, 2.0});
      samples.push_back({BuildMethodId::kRS, log10_n, dissim, 0.30, 1.0});
      samples.push_back({BuildMethodId::kOG, log10_n, dissim, 1.00, 1.0});
    }
  }
  auto scorer = std::make_shared<MethodScorer>();
  scorer->Train(samples);
  const std::vector<BuildMethodId> pool = {
      BuildMethodId::kMR, BuildMethodId::kRS, BuildMethodId::kOG};
  // At lambda = 0.9 with w_Q = 1 the build term dominates: MR.
  ScorerSelector build_heavy(scorer, 0.9, 1.0);
  EXPECT_EQ(build_heavy.Choose(pool, 4.0, 0.4), BuildMethodId::kMR);
  // Same lambda but w_Q = 50 (queries vastly outnumber builds): the query
  // term regains weight and RS takes over (Eq. 2).
  ScorerSelector query_heavy(scorer, 0.9, 50.0);
  EXPECT_EQ(query_heavy.Choose(pool, 4.0, 0.4), BuildMethodId::kRS);
}

TEST(UpdateProcessorDeleteTest, DeletionHeavyWorkloadTracksRatioAndSim) {
  const Dataset base = GenerateDataset(DatasetKind::kSkewed, 4000, 3);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  ZmIndex index(trainer, ZmIndex::Config{});
  UpdateProcessorConfig ucfg;
  ucfg.enable_rebuild = false;
  UpdateProcessor processor(&index, nullptr, ucfg);
  processor.Build(base);

  // Delete the dense lower band: the remaining distribution changes a lot.
  size_t deleted = 0;
  for (const Point& p : base) {
    if (p.y < 0.05 && processor.Remove(p)) ++deleted;
  }
  ASSERT_GT(deleted, 1000u);
  EXPECT_EQ(index.size(), base.size() - deleted);
  const RebuildFeatures f = processor.CurrentFeatures();
  EXPECT_NEAR(f.update_ratio, static_cast<double>(deleted) / base.size(),
              1e-9);
  EXPECT_LT(f.cdf_similarity, 0.95);  // The CDF moved.
  // Deleted points are gone; survivors remain.
  for (const Point& p : base) {
    EXPECT_EQ(index.PointQuery(p), p.y >= 0.05);
  }
}

TEST(DomainEscapeTest, InsertsOutsideBuildDomainStayQueryable) {
  const Dataset base = GenerateUniform(1000, 5);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    BaseIndexScale scale;
    scale.leaf_target = 500;
    auto index = MakeBaseIndex(kind, trainer, scale);
    index->Build(base);
    // Points far outside the unit square (the build-time domain).
    const Point far_out{3.5, -2.0, 777777};
    index->Insert(far_out);
    EXPECT_TRUE(index->PointQuery(far_out)) << BaseIndexKindName(kind);
    EXPECT_TRUE(index->Remove(far_out)) << BaseIndexKindName(kind);
    EXPECT_FALSE(index->PointQuery(far_out)) << BaseIndexKindName(kind);
  }
}

TEST(ModelReuseRangeTest, PoolAdaptsToShiftedAndScaledKeyRanges) {
  // The same uniform shape over wildly different key ranges must match the
  // same pool entry (matching is range-normalised).
  RankModelConfig model = FastModel();
  ModelReuseConfig cfg;
  cfg.epsilon = 0.5;
  cfg.synthetic_size = 512;
  ModelReuse mr(cfg, model);
  Rng rng(7);
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0.0, 1.0}, {1e6, 2e6}, {-500.0, -100.0}}) {
    std::vector<double> keys(4000);
    for (double& k : keys) k = rng.NextDouble(lo, hi);
    std::sort(keys.begin(), keys.end());
    EXPECT_LT(mr.BestMatchDistance(keys), 0.1) << lo << ".." << hi;
    std::vector<Point> pts(keys.size());
    const std::function<double(const Point&)> key_fn =
        [](const Point&) { return 0.0; };
    RankModel reused;
    ASSERT_TRUE(mr.TryReuseModel(BuildContext{pts, keys, key_fn}, &reused));
    reused.ComputeErrorBounds(keys);
    for (size_t i = 0; i < keys.size(); i += 131) {
      const auto [rlo, rhi] = reused.SearchRange(keys[i], keys.size());
      EXPECT_GE(i, rlo);
      EXPECT_LE(i, rhi);
    }
  }
}

TEST(UniformDissimilarityFeatureTest, MatchesBetweenScorerAndProcessor) {
  // The feature the selector sees at build time must equal the feature the
  // trainer computed for the same keys — both go through
  // UniformDissimilarity on the sorted mapped keys.
  const Dataset data = GenerateDataset(DatasetKind::kSkewed, 5000, 9);
  const GridQuantizer q(BoundingRect(data));
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    keys[i] = static_cast<double>(MortonEncode(q.QuantizeX(data[i].x) >> 6,
                                               q.QuantizeY(data[i].y) >> 6));
  }
  std::sort(keys.begin(), keys.end());
  const double feature = UniformDissimilarity(keys);
  EXPECT_GT(feature, 0.05);
  EXPECT_LT(feature, 1.0);
  // Deterministic.
  EXPECT_DOUBLE_EQ(feature, UniformDissimilarity(keys));
}

TEST(ZmDomainWindowTest, WindowOutsideDomainFindsClampedInserts) {
  const Dataset base = GenerateUniform(800, 11);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  ZmIndex index(trainer, ZmIndex::Config{});
  index.Build(base);
  index.Insert(Point{5.0, 5.0, 999});
  const auto hits = index.WindowQuery(Rect::Of(4.0, 4.0, 6.0, 6.0));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 999u);
}

}  // namespace
}  // namespace elsi
