#include "simd/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "common/geometry.h"
#include "common/random.h"
#include "ml/ffn.h"
#include "ml/matrix.h"

namespace elsi {
namespace {

using simd::Kernels;
using simd::Level;

// Every parity test below runs once per level reachable on this host,
// comparing the level's kernel against a plain scalar oracle written
// inline. The contract (simd/simd.h): integer/compare kernels and the
// fixed-order float kernels are bit-identical on every level; only the
// FMA GEMMs get an epsilon (covered in matrix_test.cc).

std::vector<double> SortedKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> keys(n);
  double acc = -50.0;
  for (double& k : keys) {
    // Steps of zero are common on purpose: duplicate keys exercise the
    // lower-vs-upper bound distinction.
    acc += rng.NextDouble() < 0.25 ? 0.0 : rng.NextDouble();
    k = acc;
  }
  return keys;
}

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  for (size_t i = 0; i < n; ++i) {
    pts[i] = Point{rng.NextDouble() * 10.0 - 5.0,
                   rng.NextDouble() * 10.0 - 5.0, i};
  }
  return pts;
}

// Sizes straddling every vector width and tail shape (1-, 2-, 4-, 8-lane
// kernels plus scalar tails).
constexpr size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                             31, 33, 63, 64, 65, 100, 255, 256, 257};

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  const std::vector<Level> levels = simd::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  for (const Level level : levels) {
    const Kernels* kern = simd::ForLevel(level);
    ASSERT_NE(kern, nullptr);
    EXPECT_EQ(kern->level, level);
  }
}

TEST(SimdDispatchTest, ForceLevelRoundTrip) {
  const Level before = simd::ActiveLevel();
  for (const Level level : simd::SupportedLevels()) {
    ASSERT_TRUE(simd::ForceLevel(level));
    EXPECT_EQ(simd::ActiveLevel(), level);
    EXPECT_EQ(simd::Active().level, level);
  }
  ASSERT_TRUE(simd::ForceLevel(before));
}

TEST(SimdDispatchTest, UnsupportedLevelRejected) {
  const std::vector<Level> levels = simd::SupportedLevels();
  const Level before = simd::ActiveLevel();
  for (const Level probe :
       {Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (std::find(levels.begin(), levels.end(), probe) != levels.end()) {
      continue;
    }
    EXPECT_EQ(simd::ForLevel(probe), nullptr);
    EXPECT_FALSE(simd::ForceLevel(probe));
    EXPECT_EQ(simd::ActiveLevel(), before);
  }
}

TEST(SimdKernelTest, CountLessMatchesLowerBoundOnEveryLevel) {
  for (const Level level : simd::SupportedLevels()) {
    const Kernels* kern = simd::ForLevel(level);
    for (const size_t n : kSizes) {
      const std::vector<double> keys = SortedKeys(n, 31 + n);
      // Probe below, above, between, and exactly on duplicates.
      std::vector<double> probes = {-1e9, 1e9};
      for (size_t i = 0; i < n; i += 3) {
        probes.push_back(keys[i]);
        probes.push_back(keys[i] + 1e-9);
        probes.push_back(keys[i] - 1e-9);
      }
      for (const double p : probes) {
        const size_t want = static_cast<size_t>(
            std::lower_bound(keys.begin(), keys.end(), p) - keys.begin());
        const size_t want_ub = static_cast<size_t>(
            std::upper_bound(keys.begin(), keys.end(), p) - keys.begin());
        EXPECT_EQ(kern->count_less(keys.data(), n, p), want)
            << simd::LevelName(level) << " n=" << n << " probe=" << p;
        EXPECT_EQ(kern->count_less_equal(keys.data(), n, p), want_ub)
            << simd::LevelName(level) << " n=" << n << " probe=" << p;
      }
    }
  }
}

TEST(SimdKernelTest, LeafDispatchMatchesUpperBoundFenceWalk) {
  for (const Level level : simd::SupportedLevels()) {
    const Kernels* kern = simd::ForLevel(level);
    for (const size_t fence_n : {1u, 2u, 3u, 7u, 64u}) {
      const std::vector<double> fence = SortedKeys(fence_n, 77 + fence_n);
      for (const size_t n : kSizes) {
        std::vector<double> qkeys(n);
        Rng rng(55 + n);
        for (double& k : qkeys) k = -60.0 + rng.NextDouble() * 130.0;
        // Exact fence values too: the boundary is the interesting case.
        for (size_t i = 0; i < n && i < fence_n; ++i) qkeys[i] = fence[i];
        std::vector<size_t> got(n, ~size_t{0});
        kern->leaf_dispatch(fence.data(), fence_n, qkeys.data(), n,
                            got.data());
        for (size_t i = 0; i < n; ++i) {
          const size_t ub = static_cast<size_t>(
              std::upper_bound(fence.begin(), fence.end(), qkeys[i]) -
              fence.begin());
          const size_t want = ub == 0 ? 0 : ub - 1;
          ASSERT_EQ(got[i], want)
              << simd::LevelName(level) << " fence_n=" << fence_n
              << " i=" << i << " key=" << qkeys[i];
        }
      }
    }
  }
}

TEST(SimdKernelTest, ContainsMaskMatchesRectContains) {
  const Rect w = Rect::Of(-1.5, -2.0, 2.5, 1.0);
  for (const Level level : simd::SupportedLevels()) {
    const Kernels* kern = simd::ForLevel(level);
    for (const size_t n : kSizes) {
      std::vector<Point> pts = RandomPoints(n, 91 + n);
      // Pin some points exactly on the boundary (inclusive contract).
      for (size_t i = 0; i + 4 < n; i += 5) {
        pts[i].x = w.lo_x;
        pts[i + 1].y = w.hi_y;
      }
      std::vector<uint8_t> mask(n + 1, 0xAA);
      kern->contains_mask(pts.data(), n, w, mask.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(mask[i], w.Contains(pts[i]) ? 1 : 0)
            << simd::LevelName(level) << " n=" << n << " i=" << i;
      }
      EXPECT_EQ(mask[n], 0xAA) << "wrote past the mask";
    }
  }
}

TEST(SimdKernelTest, SquaredDistancesBitIdenticalToScalar) {
  const Point q{0.25, -0.75, 0};
  for (const Level level : simd::SupportedLevels()) {
    const Kernels* kern = simd::ForLevel(level);
    for (const size_t n : kSizes) {
      const std::vector<Point> pts = RandomPoints(n, 13 + n);
      std::vector<double> d2(n, -1.0);
      kern->squared_distances(pts.data(), n, q.x, q.y, d2.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(d2[i], SquaredDistance(pts[i], q))
            << simd::LevelName(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, BiasAndBiasReluBitIdenticalToScalar) {
  for (const Level level : simd::SupportedLevels()) {
    const Kernels* kern = simd::ForLevel(level);
    for (const size_t cols : {1u, 2u, 3u, 5u, 8u, 9u, 16u, 17u, 33u}) {
      const size_t rows = 5;
      Rng rng(7 + cols);
      std::vector<double> bias(cols);
      for (double& b : bias) b = rng.NextDouble() * 2.0 - 1.0;
      std::vector<double> z(rows * cols);
      for (double& v : z) v = rng.NextDouble() * 2.0 - 1.0;
      // Special values the compare+mask relu must handle exactly like
      // the scalar select: -0.0 stays a positive zero after the add's
      // result is masked, NaN maps to 0.
      if (cols >= 2) {
        z[0] = -bias[0];  // sums to +0.0 or -0.0 depending on sign
        z[1] = std::numeric_limits<double>::quiet_NaN();
      }
      std::vector<double> want = z, got = z;
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) want[r * cols + c] += bias[c];
      }
      kern->bias(got.data(), bias.data(), rows, cols);
      for (size_t i = 0; i < rows * cols; ++i) {
        if (std::isnan(want[i])) {
          ASSERT_TRUE(std::isnan(got[i]));
        } else {
          ASSERT_EQ(want[i], got[i]) << simd::LevelName(level) << " bias " << i;
        }
      }
      want = z;
      got = z;
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
          const double v = want[r * cols + c] + bias[c];
          want[r * cols + c] = v > 0.0 ? v : 0.0;
        }
      }
      kern->bias_relu(got.data(), bias.data(), rows, cols);
      for (size_t i = 0; i < rows * cols; ++i) {
        ASSERT_EQ(want[i], got[i]) << simd::LevelName(level) << " relu " << i;
        if (want[i] == 0.0) {
          // Exactly +0.0, never -0.0 (matches the scalar select).
          ASSERT_FALSE(std::signbit(got[i]))
              << simd::LevelName(level) << " relu sign " << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, BatchedLowerBoundConvergesOnEveryLevel) {
  for (const Level level : simd::SupportedLevels()) {
    const Kernels* kern = simd::ForLevel(level);
    const std::vector<double> base = SortedKeys(1000, 5);
    Rng rng(17);
    std::vector<simd::SearchState> states(64);
    std::vector<size_t> work(states.size());
    for (size_t i = 0; i < states.size(); ++i) {
      states[i] = {0, base.size(), -60.0 + rng.NextDouble() * 130.0};
      work[i] = i;
    }
    kern->batched_lower_bound(base.data(), states.data(), work.data(),
                              work.size());
    for (size_t i = 0; i < states.size(); ++i) {
      const size_t want = static_cast<size_t>(
          std::lower_bound(base.begin(), base.end(), states[i].key) -
          base.begin());
      ASSERT_EQ(states[i].lo, want) << simd::LevelName(level) << " i=" << i;
    }
  }
}

// End-to-end inference parity: a real FFN forward pass through
// ForwardBatchInto must produce identical ranks on every level for
// k == 1 first layers... but deeper layers use FMA, so the guarantee
// there is the epsilon one. Assert bit-identity scalar-vs-scalar (the
// Matrix path and the scratch path share kernels) and epsilon across
// levels.
TEST(SimdKernelTest, FfnForwardBatchAgreesAcrossLevels) {
  const Level before = simd::ActiveLevel();
  Ffn net(1, {8, 8}, 1, /*seed=*/42);
  const size_t n = 33;
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i) / n;

  std::vector<std::vector<double>> outs;
  for (const Level level : simd::SupportedLevels()) {
    ASSERT_TRUE(simd::ForceLevel(level));
    InferenceScratch scratch;
    std::vector<double> out(n);
    net.ForwardBatchInto(x.data(), n, &scratch, out.data());
    // Batched equals one-at-a-time on the same level, bit for bit.
    InferenceScratch single_scratch;
    for (size_t i = 0; i < n; ++i) {
      double yi = 0.0;
      net.ForwardInto(&x[i], &single_scratch, &yi);
      ASSERT_EQ(out[i], yi) << simd::LevelName(level) << " row " << i;
    }
    outs.push_back(std::move(out));
  }
  ASSERT_TRUE(simd::ForceLevel(before));

  for (size_t l = 1; l < outs.size(); ++l) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(outs[0][i], outs[l][i], 1e-12) << "level " << l;
    }
  }
}

TEST(SimdAlignmentTest, MatrixAndScratchAre64ByteAligned) {
  Matrix m(13, 7, 1.0);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data().data()) % 64, 0u);
  simd::AlignedVector v;
  v.resize(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
  v.resize(4097);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
  InferenceScratch scratch;
  scratch.ping.resize(33);
  scratch.pong.resize(65);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(scratch.ping.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(scratch.pong.data()) % 64, 0u);
}

// ELSI_SIMD_LEVEL honoured: the CI scalar-override leg exports it and
// this test confirms the override actually landed. (Every ForceLevel
// test above restores the level it found, which is the env-selected
// one, so asserting on ActiveLevelName here is order-safe.)
TEST(SimdDispatchTest, EnvOverrideRespectedWhenSet) {
  const char* env = std::getenv("ELSI_SIMD_LEVEL");
  if (env == nullptr) GTEST_SKIP() << "ELSI_SIMD_LEVEL not set";
  bool supported = false;
  for (const Level level : simd::SupportedLevels()) {
    if (std::string_view(simd::LevelName(level)) == env) supported = true;
  }
  if (!supported) GTEST_SKIP() << "override clamped (unsupported level)";
  EXPECT_STREQ(simd::ActiveLevelName(), env);
}

}  // namespace
}  // namespace elsi
