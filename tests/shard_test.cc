// elsi::shard tests: partitioner edge cases, scatter-gather equivalence
// against single-index oracles (point / window / kNN and the three
// analytics operators, uniform and clustered data, serial and 4-thread
// planner), kNN shard pruning, persistence round-trips, and shard metrics.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/knn.h"
#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "obs/metrics.h"
#include "persist/io.h"
#include "shard/operators.h"
#include "shard/partition.h"
#include "shard/sharded_index.h"

namespace elsi {
namespace shard {
namespace {

RankModelConfig TestModelConfig() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 60;
  cfg.learning_rate = 0.03;
  return cfg;
}

ShardedIndexConfig TestConfig(size_t shards, ThreadPool* pool = nullptr) {
  ShardedIndexConfig cfg;
  cfg.partition.shards = shards;
  cfg.shard.kind = BaseIndexKind::kZM;
  cfg.shard.elsi = false;  // DirectTrainer: fast, exact windows.
  cfg.shard.build.model = TestModelConfig();
  cfg.shard.scale.leaf_target = 400;
  cfg.pool = pool;
  return cfg;
}

std::unique_ptr<SpatialIndex> MakeOracle() {
  BaseIndexScale scale;
  scale.leaf_target = 400;
  return MakeBaseIndex(BaseIndexKind::kZM,
                       std::make_shared<DirectTrainer>(TestModelConfig()),
                       scale);
}

std::vector<Point> SortedByDistance(const Point& q, std::vector<Point> pts) {
  knn::SelectNearest(q, pts.size(), &pts);
  return pts;
}

// ---------------------------------------------------------------------------
// SpacePartitioner edge cases.

TEST(SpacePartitionerTest, EmptyDataStillRoutesEverything) {
  SpacePartitioner part;
  PartitionConfig cfg;
  cfg.shards = 4;
  part.Plan(cfg, {});
  EXPECT_TRUE(part.planned());
  EXPECT_EQ(part.shard_count(), 4u);
  // Every split collapsed to zero: all keys land in the last range or
  // shard 0 (key 0); either way the result is a valid shard id.
  for (double x : {-3.0, 0.0, 0.5, 7.0}) {
    EXPECT_LT(part.ShardOf(Point{x, x, 0}), 4u);
  }
}

TEST(SpacePartitionerTest, DuplicateKeysNeverStraddleABoundary) {
  // 1000 copies of one coordinate plus a handful of distinct points: the
  // duplicates dominate every quantile, so several splits are equal. All
  // duplicates must still route to one shard.
  std::vector<Point> data;
  for (size_t i = 0; i < 1000; ++i) data.push_back(Point{0.5, 0.5, i});
  for (size_t i = 0; i < 10; ++i) {
    data.push_back(Point{0.1 * static_cast<double>(i), 0.9, 2000 + i});
  }
  SpacePartitioner part;
  PartitionConfig cfg;
  cfg.shards = 8;
  part.Plan(cfg, data);
  const uint32_t owner = part.ShardOf(Point{0.5, 0.5, 123});
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(part.ShardOf(data[i]), owner);
  }
}

TEST(SpacePartitionerTest, MoreShardsThanDistinctKeysLeavesEmptyShards) {
  std::vector<Point> data = {Point{0.1, 0.1, 1}, Point{0.5, 0.5, 2},
                             Point{0.9, 0.9, 3}};
  SpacePartitioner part;
  PartitionConfig cfg;
  cfg.shards = 8;
  part.Plan(cfg, data);
  ASSERT_EQ(part.splits().size(), 7u);
  EXPECT_TRUE(std::is_sorted(part.splits().begin(), part.splits().end()));
  // 3 distinct keys can occupy at most 3 of the 8 shards.
  std::vector<size_t> counts(8, 0);
  for (const Point& p : data) counts[part.ShardOf(p)]++;
  const size_t occupied = static_cast<size_t>(
      std::count_if(counts.begin(), counts.end(),
                    [](size_t c) { return c > 0; }));
  EXPECT_LE(occupied, 3u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), size_t{0}), 3u);
}

TEST(SpacePartitionerTest, SkewedDataGetsBalancedCurveRanges) {
  const Dataset data = GenerateDataset(DatasetKind::kSkewed, 20000, 3);
  SpacePartitioner part;
  PartitionConfig cfg;
  cfg.shards = 8;
  part.Plan(cfg, data);
  std::vector<size_t> counts(8, 0);
  for (const Point& p : data) counts[part.ShardOf(p)]++;
  const size_t peak = *std::max_element(counts.begin(), counts.end());
  // Balanced quantile splits keep the biggest shard well under the pile-up
  // a fixed grid would produce on y^4-skewed data (grid: ~50% in one tile).
  EXPECT_LT(static_cast<double>(peak), 0.35 * static_cast<double>(data.size()));
}

TEST(SpacePartitionerTest, OutOfDomainPointsClampToEdgeShards) {
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 1000, 5);
  SpacePartitioner part;
  part.Plan(PartitionConfig{}, data);
  // Same clamped coordinates route identically, and stay in range.
  EXPECT_LT(part.ShardOf(Point{-100.0, -100.0, 1}), part.shard_count());
  EXPECT_LT(part.ShardOf(Point{100.0, 100.0, 2}), part.shard_count());
}

TEST(SpacePartitionerTest, SaveLoadPreservesRouting) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 5000, 9);
  SpacePartitioner part;
  PartitionConfig cfg;
  cfg.shards = 6;
  cfg.curve = PartitionCurve::kHilbert;
  part.Plan(cfg, data);
  persist::Writer w;
  part.Save(w);
  persist::Reader r(w.buffer());
  SpacePartitioner loaded;
  ASSERT_TRUE(loaded.Load(r));
  EXPECT_EQ(loaded.shard_count(), 6u);
  for (const Point& p : data) {
    ASSERT_EQ(loaded.ShardOf(p), part.ShardOf(p));
  }
}

TEST(SpacePartitionerTest, GridModeTilesTheDomain) {
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 4000, 21);
  SpacePartitioner part;
  PartitionConfig cfg;
  cfg.shards = 9;
  cfg.mode = PartitionMode::kGrid;
  part.Plan(cfg, data);
  std::vector<size_t> counts(9, 0);
  for (const Point& p : data) counts[part.ShardOf(p)]++;
  // Uniform data spreads over every 3x3 tile.
  for (size_t c : counts) EXPECT_GT(c, 0u);
}

// ---------------------------------------------------------------------------
// Scatter-gather equivalence against a single-index oracle.

struct EquivalenceCase {
  DatasetKind dataset;
  size_t planner_threads;  // 0 = serial planner.
};

class ShardEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ShardEquivalenceTest, MatchesSingleIndexOracle) {
  const EquivalenceCase param = GetParam();
  const Dataset data = GenerateDataset(param.dataset, 4000, 7);
  std::unique_ptr<ThreadPool> pool;
  if (param.planner_threads > 0) {
    pool = std::make_unique<ThreadPool>(param.planner_threads);
  }
  ShardedIndex sharded(TestConfig(8, pool.get()));
  sharded.Build(data);
  std::unique_ptr<SpatialIndex> oracle = MakeOracle();
  oracle->Build(data);
  ASSERT_EQ(sharded.size(), oracle->size());

  // Point queries: exactly one shard answers; hit set equals the oracle's.
  const std::vector<Point> probes = SamplePointQueries(data, 200, 31);
  for (const Point& q : probes) {
    Point got{}, want{};
    ASSERT_EQ(sharded.PointQuery(q, &got), oracle->PointQuery(q, &want));
    EXPECT_EQ(got, want);
  }
  EXPECT_FALSE(sharded.PointQuery(Point{-7.0, -7.0, 0}));

  // Window queries: canonical merge is bit-identical to the oracle.
  const std::vector<Rect> windows = SampleWindowQueries(data, 50, 0.04, 33);
  for (const Rect& w : windows) {
    EXPECT_EQ(sharded.WindowQuery(w), oracle->WindowQuery(w));
  }

  // kNN: best-first shard visiting with bound refinement stays exact,
  // including distance ties (both sides order by (d2, id)).
  const std::vector<Point> knn_qs = SampleKnnQueries(data, 50, 35);
  for (const Point& q : knn_qs) {
    const auto got = sharded.KnnQuery(q, 10);
    const auto want = SortedByDistance(q, oracle->KnnQuery(q, 10));
    EXPECT_EQ(got, want);
  }
}

TEST_P(ShardEquivalenceTest, BatchedPathsMatchScalarAndOracle) {
  const EquivalenceCase param = GetParam();
  const Dataset data = GenerateDataset(param.dataset, 3000, 19);
  std::unique_ptr<ThreadPool> pool;
  if (param.planner_threads > 0) {
    pool = std::make_unique<ThreadPool>(param.planner_threads);
  }
  ShardedIndex sharded(TestConfig(8, nullptr));
  sharded.Build(data);
  std::unique_ptr<SpatialIndex> oracle = MakeOracle();
  oracle->Build(data);

  BatchQueryOptions opts;
  opts.pool = pool.get();
  opts.chunk = 13;

  const std::vector<Point> probes = SamplePointQueries(data, 150, 41);
  std::vector<uint8_t> hit(probes.size(), 2);
  std::vector<Point> out(probes.size());
  sharded.PointQueryBatch(probes, hit, out, opts);
  for (size_t i = 0; i < probes.size(); ++i) {
    Point want{};
    ASSERT_EQ(hit[i] != 0, oracle->PointQuery(probes[i], &want)) << i;
    if (hit[i] != 0) {
      EXPECT_EQ(out[i], want) << i;
    }
  }

  const std::vector<Rect> windows = SampleWindowQueries(data, 40, 0.05, 43);
  std::vector<std::vector<Point>> batch(windows.size());
  sharded.WindowQueryBatch(windows, batch, opts);
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(batch[i], sharded.WindowQuery(windows[i])) << i;
    EXPECT_EQ(batch[i], oracle->WindowQuery(windows[i])) << i;
  }

  const std::vector<Point> knn_qs = SampleKnnQueries(data, 30, 45);
  std::vector<std::vector<Point>> knn_out(knn_qs.size());
  sharded.KnnQueryBatch(knn_qs, 5, knn_out, opts);
  for (size_t i = 0; i < knn_qs.size(); ++i) {
    EXPECT_EQ(knn_out[i], sharded.KnnQuery(knn_qs[i], 5)) << i;
  }
}

TEST_P(ShardEquivalenceTest, OperatorsMatchSingleIndexOracle) {
  const EquivalenceCase param = GetParam();
  const Dataset data = GenerateDataset(param.dataset, 3000, 23);
  std::unique_ptr<ThreadPool> pool;
  if (param.planner_threads > 0) {
    pool = std::make_unique<ThreadPool>(param.planner_threads);
  }
  ShardedIndex sharded(TestConfig(8, pool.get()));
  sharded.Build(data);
  std::unique_ptr<SpatialIndex> oracle = MakeOracle();
  oracle->Build(data);

  BatchQueryOptions opts;
  opts.pool = pool.get();
  opts.chunk = 11;

  const std::vector<Rect> regions = SampleWindowQueries(data, 30, 0.05, 51);

  // Containment join: identical (region, point) pair lists.
  const auto got_join = ContainmentJoin(sharded, regions, opts);
  const auto want_join = ContainmentJoin(*oracle, regions, {});
  ASSERT_EQ(got_join.size(), want_join.size());
  for (size_t i = 0; i < got_join.size(); ++i) {
    EXPECT_EQ(got_join[i].region, want_join[i].region) << i;
    EXPECT_EQ(got_join[i].point, want_join[i].point) << i;
  }

  // Distance join: identical pairs and bit-identical distances.
  const std::vector<Point> probes = SamplePointQueries(data, 40, 53);
  const auto got_dj = DistanceJoin(sharded, probes, 0.05, opts);
  const auto want_dj = DistanceJoin(*oracle, probes, 0.05, {});
  ASSERT_EQ(got_dj.size(), want_dj.size());
  for (size_t i = 0; i < got_dj.size(); ++i) {
    EXPECT_EQ(got_dj[i].probe, want_dj[i].probe) << i;
    EXPECT_EQ(got_dj[i].point, want_dj[i].point) << i;
    EXPECT_EQ(got_dj[i].d2, want_dj[i].d2) << i;
  }

  // Aggregation: bit-identical counts, sums (canonical accumulation
  // order), and MBRs.
  const auto got_agg = AggregateByRegion(sharded, regions, opts);
  const auto want_agg = AggregateByRegion(*oracle, regions, {});
  ASSERT_EQ(got_agg.size(), want_agg.size());
  for (size_t i = 0; i < got_agg.size(); ++i) {
    EXPECT_EQ(got_agg[i].count, want_agg[i].count) << i;
    EXPECT_EQ(got_agg[i].sum_x, want_agg[i].sum_x) << i;
    EXPECT_EQ(got_agg[i].sum_y, want_agg[i].sum_y) << i;
    EXPECT_EQ(got_agg[i].mbr.lo_x, want_agg[i].mbr.lo_x) << i;
    EXPECT_EQ(got_agg[i].mbr.hi_x, want_agg[i].mbr.hi_x) << i;
    EXPECT_EQ(got_agg[i].mbr.lo_y, want_agg[i].mbr.lo_y) << i;
    EXPECT_EQ(got_agg[i].mbr.hi_y, want_agg[i].mbr.hi_y) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndThreads, ShardEquivalenceTest,
    ::testing::Values(EquivalenceCase{DatasetKind::kUniform, 0},
                      EquivalenceCase{DatasetKind::kUniform, 4},
                      EquivalenceCase{DatasetKind::kOsm1, 0},
                      EquivalenceCase{DatasetKind::kOsm1, 4}),
    [](const auto& info) {
      return std::string(info.param.dataset == DatasetKind::kUniform
                             ? "Uniform"
                             : "Clustered") +
             (info.param.planner_threads == 0 ? "Serial" : "Threads4");
    });

// ---------------------------------------------------------------------------
// Engine behaviour.

TEST(ShardedIndexTest, EmptyShardsFromTinyDataStillAnswerQueries) {
  // 3 distinct points, 8 shards: at least 5 shards build empty.
  std::vector<Point> data = {Point{0.1, 0.1, 1}, Point{0.5, 0.5, 2},
                             Point{0.9, 0.9, 3}};
  ShardedIndex index(TestConfig(8));
  index.Build(data);
  EXPECT_EQ(index.shard_count(), 8u);
  EXPECT_EQ(index.size(), 3u);
  Point out{};
  ASSERT_TRUE(index.PointQuery(Point{0.5, 0.5, 0}, &out));
  EXPECT_EQ(out.id, 2u);
  EXPECT_EQ(index.WindowQuery(Rect::Of(0.0, 0.0, 1.0, 1.0)).size(), 3u);
  const auto knn = index.KnnQuery(Point{0.5, 0.5, 0}, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].id, 2u);
}

TEST(ShardedIndexTest, InsertRemoveRouteToOwningShard) {
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 2000, 11);
  ShardedIndex index(TestConfig(4));
  index.Build(data);
  const Point extra{0.333, 0.444, 999999};
  index.Insert(extra);
  EXPECT_EQ(index.size(), data.size() + 1);
  Point out{};
  ASSERT_TRUE(index.PointQuery(extra, &out));
  EXPECT_EQ(out.id, extra.id);
  // The new point shows up in windows, in canonical position.
  const Rect w = Rect::Of(0.3, 0.4, 0.4, 0.5);
  const auto win = index.WindowQuery(w);
  EXPECT_TRUE(std::is_sorted(win.begin(), win.end(), CanonicalLess));
  EXPECT_NE(std::find(win.begin(), win.end(), extra), win.end());
  ASSERT_TRUE(index.Remove(extra));
  EXPECT_FALSE(index.PointQuery(extra));
  EXPECT_EQ(index.size(), data.size());
  // Removing a point that was never inserted fails.
  EXPECT_FALSE(index.Remove(Point{0.123, 0.456, 123456789}));
}

TEST(ShardedIndexTest, InsertBeforeBuildWorks) {
  ShardedIndex index(TestConfig(4));
  index.Insert(Point{0.25, 0.75, 42});
  EXPECT_EQ(index.size(), 1u);
  Point out{};
  ASSERT_TRUE(index.PointQuery(Point{0.25, 0.75, 0}, &out));
  EXPECT_EQ(out.id, 42u);
}

TEST(ShardedIndexTest, KnnPlannerPrunesOnClusteredData) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 20000, 13);
  ShardedIndex index(TestConfig(16));
  index.Build(data);
  const std::vector<Point> queries = SampleKnnQueries(data, 100, 61);
  size_t visited_total = 0;
  size_t considered_total = 0;
  for (const Point& q : queries) {
    ShardedIndex::KnnStats stats;
    const auto got = index.KnnQueryCounted(q, 10, &stats);
    EXPECT_EQ(got.size(), 10u);
    visited_total += stats.shards_visited;
    considered_total += stats.shards_considered;
    EXPECT_LE(stats.shards_visited, stats.shards_considered);
  }
  const double mean_visited =
      static_cast<double>(visited_total) / static_cast<double>(queries.size());
  const double mean_considered = static_cast<double>(considered_total) /
                                 static_cast<double>(queries.size());
  // The distance bound must keep the planner from touching most shards:
  // clustered data with 16 curve-range shards needs only a few per query.
  EXPECT_LT(mean_visited, 0.5 * mean_considered)
      << "mean visited " << mean_visited << " of " << mean_considered;
  EXPECT_LT(mean_visited, 6.0);
}

TEST(ShardedIndexTest, SaveLoadRoundTripPreservesEveryAnswer) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm2, 3000, 17);
  ShardedIndex index(TestConfig(4));
  index.Build(data);
  // Leave a delta in one shard so SaveState's fold path runs too.
  index.Insert(Point{0.21, 0.31, 777777});
  persist::Writer w;
  ASSERT_TRUE(index.SaveState(w));
  persist::Reader r(w.buffer());
  ShardedIndex loaded(TestConfig(4));
  ASSERT_TRUE(loaded.LoadState(r));
  EXPECT_EQ(loaded.shard_count(), 4u);
  EXPECT_EQ(loaded.size(), index.size());
  const std::vector<Rect> windows = SampleWindowQueries(data, 25, 0.05, 71);
  for (const Rect& win : windows) {
    EXPECT_EQ(loaded.WindowQuery(win), index.WindowQuery(win));
  }
  const std::vector<Point> probes = SamplePointQueries(data, 100, 73);
  for (const Point& q : probes) {
    EXPECT_EQ(loaded.PointQuery(q), index.PointQuery(q));
  }
  for (const Point& q : SampleKnnQueries(data, 20, 79)) {
    EXPECT_EQ(loaded.KnnQuery(q, 7), index.KnnQuery(q, 7));
  }
}

TEST(ShardedIndexTest, ElsiPipelineShardsMatchOracleWindows) {
  // One pass through the BuildProcessor path (SP method) to pin that the
  // ELSI-trained shards keep the same exactness contract.
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 2000, 29);
  ShardedIndexConfig cfg = TestConfig(4);
  cfg.shard.elsi = true;
  ShardedIndex index(cfg);
  index.Build(data);
  ASSERT_EQ(index.size(), data.size());
  for (const Rect& w : SampleWindowQueries(data, 15, 0.05, 83)) {
    std::vector<Point> truth = BruteForceWindow(data, w);
    SortCanonical(&truth);
    EXPECT_EQ(index.WindowQuery(w), truth);
  }
}

TEST(ShardedIndexTest, MetricsReportShardStateAndSkew) {
  const Dataset data = GenerateDataset(DatasetKind::kUniform, 4000, 37);
  ShardedIndex index(TestConfig(4));
  index.Build(data);
  EXPECT_GE(index.SkewRatio(), 1.0);
  EXPECT_EQ(index.DegradedCount(), 0u);
  index.UpdateShardMetrics();
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get().Snapshot();
  if (snap.gauges.empty()) GTEST_SKIP() << "observability disabled";
  auto gauge = [&](const std::string& name) -> int64_t {
    for (const auto& g : snap.gauges) {
      if (g.first == name) return g.second;
    }
    return -1;
  };
  EXPECT_EQ(gauge("shard.count"), 4);
  EXPECT_GE(gauge("shard.skew_permille"), 1000);
  EXPECT_EQ(gauge("shard.degraded"), 0);
  int64_t points = 0;
  for (size_t i = 0; i < 4; ++i) {
    points += gauge("shard.points." + std::to_string(i));
  }
  EXPECT_EQ(points, static_cast<int64_t>(data.size()));
}

}  // namespace
}  // namespace shard
}  // namespace elsi
