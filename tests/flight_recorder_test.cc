// Tests for the query flight recorder: deterministic per-thread sampling
// (serial vs threaded), ring wraparound accounting, scan attribution via
// QueryScope::ActiveSampled, nesting (outermost-only sampling), and the
// QueriesJson golden. The recorder is process-global, so every sampling
// test runs its workload on fresh threads (each starts with zeroed
// thread-local counters) and filters records by a test-unique index name.

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/model_health.h"

namespace elsi {
namespace obs {
namespace {

TEST(QueriesJsonTest, GoldenShape) {
  FlightSnapshot snap;
  snap.sample_every = 64;
  snap.dropped = 3;
  QueryRecord r;
  r.trace_id = (7ull << 32) | 1;
  r.start_ns = 100;
  r.latency_ns = 2500;
  r.scan_len = 12;
  r.segments = 2;
  r.pred_error = 4.5;
  r.index = "ZM";
  r.kind = QueryKind::kWindow;
  r.tid = 7;
  snap.records.push_back(r);

  const std::string json = QueriesJson(snap);
  EXPECT_NE(json.find("\"sample_every\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"window\""), std::string::npos);
  EXPECT_NE(json.find("\"index\": \"ZM\""), std::string::npos);
  EXPECT_NE(json.find("\"scan_len\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"pred_error\": 4.5"), std::string::npos);
}

TEST(QueriesJsonTest, EmptySnapshotIsValid) {
  const std::string json = QueriesJson(FlightSnapshot{});
  EXPECT_EQ(json, "{\"sample_every\": 0, \"dropped\": 0, \"records\": []}\n");
}

#if ELSI_OBS_ENABLED

size_t CountRecords(const char* index) {
  const FlightSnapshot snap = FlightRecorder::Get().Snapshot();
  size_t count = 0;
  for (const QueryRecord& r : snap.records) {
    if (r.index != nullptr && std::strcmp(r.index, index) == 0) ++count;
  }
  return count;
}

/// Runs `queries` empty QueryScopes tagged `index` on `threads` fresh
/// threads (`queries` split evenly) and returns the records produced.
size_t RunWorkload(const char* index, size_t queries, size_t threads) {
  const size_t before = CountRecords(index);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([index, per_thread = queries / threads] {
      for (size_t i = 0; i < per_thread; ++i) {
        QueryScope scope(index, QueryKind::kPoint);
      }
    });
  }
  for (auto& w : workers) w.join();
  return CountRecords(index) - before;
}

TEST(FlightRecorderTest, SamplingIsDeterministicAcrossThreadCounts) {
  FlightRecorder::Get().SetSampleEvery(8);
  // 256 queries, N=8: serial floor(256/8)=32; 4 threads each
  // floor(64/8)=8, total 32. T*N divides Q, so the counts match exactly.
  EXPECT_EQ(RunWorkload("DET1", 256, 1), 32u);
  EXPECT_EQ(RunWorkload("DET4", 256, 4), 32u);
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

TEST(FlightRecorderTest, SampleEveryZeroDisablesSampling) {
  FlightRecorder::Get().SetSampleEvery(0);
  EXPECT_EQ(RunWorkload("OFF", 512, 1), 0u);
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

TEST(FlightRecorderTest, RingWrapsAndCountsOverwrites) {
  FlightRecorder::Get().SetSampleEvery(1);
  const uint64_t dropped_before = FlightRecorder::Get().Snapshot().dropped;
  const size_t pushes = FlightRing::kCapacity + 100;
  // One fresh thread => one fresh ring; every query sampled.
  const size_t collected = RunWorkload("WRAP", pushes, 1);
  // The ring holds at most kCapacity records (the reader may skip the one
  // slot being overwritten mid-copy, but this writer is done).
  EXPECT_LE(collected, FlightRing::kCapacity);
  EXPECT_GE(collected, FlightRing::kCapacity - 1);
  const uint64_t dropped_after = FlightRecorder::Get().Snapshot().dropped;
  EXPECT_GE(dropped_after - dropped_before, 100u);
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

TEST(QueryScopeTest, AddScanAccumulatesAndKeepsWorstError) {
  FlightRecorder::Get().SetSampleEvery(1);
  std::thread worker([] {
    QueryScope scope("ACC", QueryKind::kWindow);
    ASSERT_EQ(QueryScope::ActiveSampled(), &scope);
    scope.AddScan(10, 3.0);
    scope.AddScan(5, 7.0);
    scope.AddScan(1, 2.0);
  });
  worker.join();
  const FlightSnapshot snap = FlightRecorder::Get().Snapshot();
  const QueryRecord* found = nullptr;
  for (const QueryRecord& r : snap.records) {
    if (r.index != nullptr && std::strcmp(r.index, "ACC") == 0) found = &r;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->scan_len, 16u);
  EXPECT_EQ(found->segments, 3u);
  EXPECT_DOUBLE_EQ(found->pred_error, 7.0);
  EXPECT_EQ(found->kind, QueryKind::kWindow);
  EXPECT_GT(found->latency_ns, 0u);
  EXPECT_EQ(found->trace_id >> 32, found->tid);
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

TEST(QueryScopeTest, OnlyTheOutermostScopeSamples) {
  FlightRecorder::Get().SetSampleEvery(1);
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      QueryScope outer("OUTER", QueryKind::kKnn);
      // A kNN query's internal window probes: never sampled themselves,
      // and their scans attribute to the outer record.
      QueryScope inner("INNER", QueryKind::kWindow);
      EXPECT_FALSE(inner.sampled());
      EXPECT_EQ(QueryScope::ActiveSampled(), &outer);
      QueryScope::ActiveSampled()->AddScan(4, 1.0);
    }
  });
  worker.join();
  EXPECT_EQ(CountRecords("OUTER"), 10u);
  EXPECT_EQ(CountRecords("INNER"), 0u);
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

TEST(FlightRecorderTest, ClearDropsRecordedEvents) {
  FlightRecorder::Get().SetSampleEvery(1);
  ASSERT_GT(RunWorkload("CLEAR", 16, 1), 0u);
  FlightRecorder::Get().Clear();
  EXPECT_EQ(CountRecords("CLEAR"), 0u);
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

TEST(FlightRecorderTest, SnapshotIsSortedByStartTime) {
  FlightRecorder::Get().SetSampleEvery(4);
  RunWorkload("SORT", 64, 4);
  const FlightSnapshot snap = FlightRecorder::Get().Snapshot();
  for (size_t i = 1; i < snap.records.size(); ++i) {
    EXPECT_LE(snap.records[i - 1].start_ns, snap.records[i].start_ns);
  }
  FlightRecorder::Get().SetSampleEvery(FlightRecorder::kDefaultSampleEvery);
}

#else  // !ELSI_OBS_ENABLED

TEST(FlightRecorderStubTest, EverythingIsInert) {
  QueryScope scope("ZM", QueryKind::kPoint);
  EXPECT_FALSE(scope.sampled());
  EXPECT_EQ(QueryScope::ActiveSampled(), nullptr);
  scope.AddScan(10, 1.0);  // compiles, does nothing
  EXPECT_EQ(FlightRecorder::Get().sample_every(), 0u);
  EXPECT_TRUE(FlightRecorder::Get().Snapshot().records.empty());
}

#endif  // ELSI_OBS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace elsi
