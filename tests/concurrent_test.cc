// Mixed-workload correctness for the lock-free serving path: concurrent
// inserts + point/window/kNN queries must see consistent snapshots (every
// result is a pre-insert point or an inserted key — never garbage, never a
// half-written entry), merges must fold without losing or duplicating
// elements, and a looping rebuild-swap must never block readers. CI runs
// this suite under TSan.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/concurrent_index.h"
#include "persist/snapshot.h"

namespace elsi {
namespace concurrent {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kUnderSanitizer = true;
#else
constexpr bool kUnderSanitizer = false;
#endif
#else
constexpr bool kUnderSanitizer = false;
#endif

/// Deterministic coordinates for an id: queries can verify that any point
/// they observe is exactly the one some writer (or the loader) produced.
Point PointForId(uint64_t id) {
  Rng rng(id * 2654435761u + 17);
  return {rng.NextDouble(), rng.NextDouble(), id};
}

std::vector<Point> BasePoints(size_t n) {
  std::vector<Point> pts;
  pts.reserve(n);
  for (uint64_t id = 0; id < n; ++id) pts.push_back(PointForId(id));
  return pts;
}

std::unique_ptr<ConcurrentIndex> MakeGridConcurrent(
    const std::vector<Point>& base_points,
    const ConcurrentIndexConfig& config = {}) {
  persist::SnapshotLoadOptions opts;
  auto base = persist::MakeIndexByName("Grid", opts);
  base->Build(base_points);
  return std::make_unique<ConcurrentIndex>(
      std::move(base),
      [opts]() { return persist::MakeIndexByName("Grid", opts); }, config);
}

// --- single-threaded semantics -------------------------------------------

TEST(ConcurrentIndexTest, DeltaOverlaySemantics) {
  const auto base_points = BasePoints(500);
  auto index = MakeGridConcurrent(base_points);
  EXPECT_EQ(index->size(), 500u);

  // Insert lands in the delta and is immediately visible everywhere.
  const Point extra = PointForId(10000);
  index->Insert(extra);
  EXPECT_EQ(index->size(), 501u);
  Point got;
  ASSERT_TRUE(index->PointQuery({extra.x, extra.y, 0}, &got));
  EXPECT_EQ(got.id, extra.id);
  auto window = index->WindowQuery(
      {extra.x - 1e-9, extra.y - 1e-9, extra.x + 1e-9, extra.y + 1e-9});
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].id, extra.id);
  auto knn = index->KnnQuery({extra.x, extra.y, 0}, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].id, extra.id);

  // Removing the delta insert flags it dead.
  EXPECT_TRUE(index->Remove(extra));
  EXPECT_FALSE(index->PointQuery({extra.x, extra.y, 0}));
  EXPECT_EQ(index->size(), 500u);
  EXPECT_FALSE(index->Remove(extra));  // Already gone.

  // Removing a base point records a tombstone that filters every query.
  const Point victim = base_points[123];
  EXPECT_TRUE(index->Remove(victim));
  EXPECT_FALSE(index->PointQuery({victim.x, victim.y, 0}));
  auto vw = index->WindowQuery(
      {victim.x - 1e-9, victim.y - 1e-9, victim.x + 1e-9, victim.y + 1e-9});
  EXPECT_TRUE(vw.empty());
  for (const Point& p : index->KnnQuery({victim.x, victim.y, 0}, 10)) {
    EXPECT_NE(p.id, victim.id);
  }
  EXPECT_EQ(index->size(), 499u);
  EXPECT_FALSE(index->Remove(victim));  // Tombstoned: second remove misses.

  // A merge folds delta + tombstones into a fresh base and changes nothing
  // observable.
  index->MergeNow();
  EXPECT_EQ(index->merge_count(), 1u);
  EXPECT_EQ(index->delta_count(), 0u);
  EXPECT_EQ(index->size(), 499u);
  EXPECT_FALSE(index->PointQuery({victim.x, victim.y, 0}));
  auto all = index->CollectAll();
  EXPECT_EQ(all.size(), 499u);
}

TEST(ConcurrentIndexTest, CollectAllMatchesOracleAfterMixedOps) {
  const auto base_points = BasePoints(300);
  auto index = MakeGridConcurrent(base_points);
  std::vector<Point> oracle = base_points;
  Rng rng(7);
  for (uint64_t i = 0; i < 200; ++i) {
    const Point p = PointForId(5000 + i);
    index->Insert(p);
    oracle.push_back(p);
    if (i % 3 == 0) {
      const Point& victim = oracle[rng.NextBelow(oracle.size())];
      EXPECT_TRUE(index->Remove(victim));
      oracle.erase(std::find_if(oracle.begin(), oracle.end(),
                                [&](const Point& q) { return q == victim; }));
    }
    if (i == 100) index->MergeNow();  // Mid-stream fold.
  }
  auto got = index->CollectAll();
  auto by_id = [](const Point& a, const Point& b) { return a.id < b.id; };
  std::sort(got.begin(), got.end(), by_id);
  std::sort(oracle.begin(), oracle.end(), by_id);
  ASSERT_EQ(got.size(), oracle.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], oracle[i]);
}

// --- concurrent inserts vs. queries --------------------------------------

// Readers run point/window/kNN against a fixed id universe while writers
// insert; every observed point must be byte-identical to PointForId(id) for
// an id in the universe — i.e. each query sees a consistent snapshot of
// pre-insert ∪ inserted keys, never a torn entry.
TEST(ConcurrentIndexTest, QueriesSeeConsistentSnapshotsUnderInserts) {
  constexpr size_t kBase = 2000;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 2000;
  const auto base_points = BasePoints(kBase);
  auto index = MakeGridConcurrent(base_points);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(900 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Point probe on a known base key: must always hit, exactly.
        const Point q = PointForId(rng.NextBelow(kBase));
        Point got;
        ASSERT_TRUE(index->PointQuery({q.x, q.y, 0}, &got));
        ASSERT_EQ(got, q);
        // Window scan: every result must be a valid id's exact point.
        const double cx = rng.NextDouble();
        const double cy = rng.NextDouble();
        for (const Point& p :
             index->WindowQuery({cx - 0.02, cy - 0.02, cx + 0.02, cy + 0.02})) {
          ASSERT_EQ(p, PointForId(p.id));
        }
        for (const Point& p : index->KnnQuery({cx, cy, 0}, 8)) {
          ASSERT_EQ(p, PointForId(p.id));
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Disjoint id ranges per writer; ids map deterministically to coords.
      const uint64_t lo = 100000 + static_cast<uint64_t>(w) * kPerWriter;
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        index->Insert(PointForId(lo + i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(index->size(), kBase + kWriters * kPerWriter);
  // Everything every writer published is now queryable.
  for (int w = 0; w < kWriters; ++w) {
    const Point probe =
        PointForId(100000 + static_cast<uint64_t>(w) * kPerWriter);
    EXPECT_TRUE(index->PointQuery({probe.x, probe.y, 0}));
  }
}

// Auto-merge fires while writers insert and readers query: no element may
// be lost or duplicated across the seal/fold/publish dance.
TEST(ConcurrentIndexTest, AutoMergeUnderConcurrentWritersLosesNothing) {
  constexpr size_t kBase = 1000;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 1500;
  ConcurrentIndexConfig config;
  config.merge_threshold = 512;
  const auto base_points = BasePoints(kBase);
  auto index = MakeGridConcurrent(base_points, config);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Rng rng(55);
    while (!stop.load(std::memory_order_relaxed)) {
      const Point q = PointForId(rng.NextBelow(kBase));
      Point got;
      ASSERT_TRUE(index->PointQuery({q.x, q.y, 0}, &got));
      ASSERT_EQ(got, q);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const uint64_t lo = 200000 + static_cast<uint64_t>(w) * kPerWriter;
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        index->Insert(PointForId(lo + i));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_GT(index->merge_count(), 0u);
  index->MergeNow();  // Fold the tail so the base alone holds everything.
  EXPECT_EQ(index->delta_count(), 0u);
  auto all = index->CollectAll();
  ASSERT_EQ(all.size(), kBase + kWriters * kPerWriter);
  std::sort(all.begin(), all.end(),
            [](const Point& a, const Point& b) { return a.id < b.id; });
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_NE(all[i - 1].id, all[i].id);  // No duplicates.
  }
  for (const Point& p : all) EXPECT_EQ(p, PointForId(p.id));
}

// --- rebuild-swap under load ---------------------------------------------

// A swap loop replaces the base over and over while readers hammer point
// queries. Readers must never block on a swap: their worst observed
// latency stays far below the time a base build takes, and throughput
// continues throughout. (The wall-clock bound is skipped under sanitizers,
// where timing is meaningless.)
TEST(ConcurrentIndexTest, RebuildSwapUnderLoadNeverStallsReaders) {
  constexpr size_t kBase = 4000;
  const auto base_points = BasePoints(kBase);
  auto index = MakeGridConcurrent(base_points);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::mutex latencies_mu;
  std::vector<uint64_t> latencies_us;
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(300 + t);
      std::vector<uint64_t> local;
      while (!stop.load(std::memory_order_relaxed)) {
        const Point q = PointForId(rng.NextBelow(kBase));
        const auto t0 = std::chrono::steady_clock::now();
        Point got;
        ASSERT_TRUE(index->PointQuery({q.x, q.y, 0}, &got));
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        local.push_back(static_cast<uint64_t>(us));
        queries.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(latencies_mu);
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
    });
  }

  // The swap loop: rebuild the full base from scratch and publish it, over
  // and over for a fixed wall-clock window so the readers overlap many
  // swaps. A reader that blocked on a swap would show up as a build-scale
  // latency spike.
  int swaps = 0;
  persist::SnapshotLoadOptions opts;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  do {
    auto fresh = persist::MakeIndexByName("Grid", opts);
    fresh->Build(base_points);
    index->ReplaceBase(std::move(fresh));
    ++swaps;
  } while (std::chrono::steady_clock::now() < deadline);
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(swaps, 10);
  EXPECT_GT(queries.load(), static_cast<uint64_t>(swaps));
  EXPECT_EQ(index->size(), kBase);
  if (!kUnderSanitizer) {
    // p99 bound, not max: the swap loop saturates the thread pool, so a
    // rare scheduler preemption can hit any single query. A reader that
    // BLOCKED on a swap would push the whole tail to build-scale latency.
    ASSERT_FALSE(latencies_us.empty());
    std::sort(latencies_us.begin(), latencies_us.end());
    const uint64_t p99 = latencies_us[latencies_us.size() * 99 / 100 ==
                                              latencies_us.size()
                                          ? latencies_us.size() - 1
                                          : latencies_us.size() * 99 / 100];
    EXPECT_LT(p99, 10000u) << "readers stalled during rebuild-swaps";
  }
}

}  // namespace
}  // namespace concurrent
}  // namespace elsi
