// Unit tests for the six training-set construction methods (Sec. V).

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/cdf.h"
#include "core/methods/clustering.h"
#include "core/methods/model_reuse.h"
#include "core/methods/reinforcement.h"
#include "core/methods/representative_set.h"
#include "core/methods/sampling.h"
#include "curve/zorder.h"
#include "data/synthetic.h"

namespace elsi {
namespace {

// A ready-to-use build context: OSM1-style points keyed and sorted by
// Z-order value.
struct ContextFixture {
  std::vector<Point> pts;
  std::vector<double> keys;
  std::function<double(const Point&)> key_fn;

  explicit ContextFixture(size_t n, DatasetKind kind = DatasetKind::kOsm1,
                          uint64_t seed = 5) {
    Dataset data = GenerateDataset(kind, n, seed);
    auto quantizer =
        std::make_shared<GridQuantizer>(BoundingRect(data));
    key_fn = [quantizer](const Point& p) {
      return static_cast<double>(
          MortonEncode(quantizer->QuantizeX(p.x) >> 6,
                       quantizer->QuantizeY(p.y) >> 6));
    };
    keys.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) keys[i] = key_fn(data[i]);
    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [this](size_t a, size_t b) { return keys[a] < keys[b]; });
    pts.resize(data.size());
    std::vector<double> sorted(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      pts[i] = data[order[i]];
      sorted[i] = keys[order[i]];
    }
    keys = std::move(sorted);
  }

  BuildContext ctx() const { return BuildContext{pts, keys, key_fn}; }
};

TEST(SystematicSamplingTest, SampleSizeMatchesRate) {
  ContextFixture f(10000);
  SamplingConfig cfg;
  cfg.rho = 0.01;
  SystematicSampling sp(cfg);
  const auto keys = sp.ComputeTrainingSet(f.ctx());
  EXPECT_NEAR(static_cast<double>(keys.size()), 100.0, 10.0);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(SystematicSamplingTest, BoundedRankGap) {
  // The defining property: every point is within floor(1/rho)-1 ranks of a
  // sampled point.
  ContextFixture f(5000);
  SamplingConfig cfg;
  cfg.rho = 0.02;  // stride 50.
  SystematicSampling sp(cfg);
  const auto sample = sp.ComputeTrainingSet(f.ctx());
  // Systematic: sampled ranks are 0, s, 2s, ...; max gap to nearest is s-1.
  const size_t stride = f.keys.size() / sample.size();
  EXPECT_LE(stride, 50u);
}

TEST(SystematicSamplingTest, MinSizeFloorForTinyPartitions) {
  ContextFixture f(200);
  SamplingConfig cfg;
  cfg.rho = 0.0001;  // Would be 0 points.
  cfg.min_size = 64;
  SystematicSampling sp(cfg);
  const auto keys = sp.ComputeTrainingSet(f.ctx());
  EXPECT_GE(keys.size(), 64u);
}

TEST(SamplingComparisonTest, SystematicHasSmallerKsDistanceThanRandom) {
  // The paper's Fig. 7 observation: SP's Ds tracks D's CDF tighter than
  // RSP's at the same rate.
  ContextFixture f(20000, DatasetKind::kSkewed);
  SamplingConfig cfg;
  cfg.rho = 0.005;
  SystematicSampling sp(cfg);
  RandomSampling rsp(cfg, 7);
  const auto sp_keys = sp.ComputeTrainingSet(f.ctx());
  const auto rsp_keys = rsp.ComputeTrainingSet(f.ctx());
  const double d_sp = KsDistanceFast(sp_keys, f.keys);
  const double d_rsp = KsDistanceFast(rsp_keys, f.keys);
  EXPECT_LT(d_sp, d_rsp);
  EXPECT_LT(d_sp, 0.02);
}

TEST(ClusteringMethodTest, ProducesRequestedCentroidCount) {
  ContextFixture f(3000);
  ClusteringConfig cfg;
  cfg.clusters = 50;
  ClusteringMethod cl(cfg);
  const auto keys = cl.ComputeTrainingSet(f.ctx());
  EXPECT_EQ(keys.size(), 50u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ClusteringMethodTest, CentroidKeysApproximateDistribution) {
  ContextFixture f(20000, DatasetKind::kOsm1);
  ClusteringConfig cfg;
  cfg.clusters = 200;
  ClusteringMethod cl(cfg);
  const auto keys = cl.ComputeTrainingSet(f.ctx());
  EXPECT_LT(KsDistanceFast(keys, f.keys), 0.25);
}

TEST(ClusteringMethodTest, SwitchesToMiniBatchOverBudget) {
  ContextFixture f(5000);
  ClusteringConfig cfg;
  cfg.clusters = 100;
  cfg.lloyd_budget = 1000;  // Force mini-batch.
  ClusteringMethod cl(cfg);
  const auto keys = cl.ComputeTrainingSet(f.ctx());
  EXPECT_EQ(keys.size(), 100u);
}

TEST(RepresentativeSetTest, CellSizesRespectBeta) {
  ContextFixture f(8000);
  RepresentativeSetConfig cfg;
  cfg.beta = 500;
  RepresentativeSet rs(cfg);
  const auto keys = rs.ComputeTrainingSet(f.ctx());
  // At least n / beta cells, at most ~4x that (quadtree slack).
  EXPECT_GE(keys.size(), 8000u / 500);
  EXPECT_LE(keys.size(), 4 * (8000u / 500) * 4);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(RepresentativeSetTest, MediansAreRealKeys) {
  ContextFixture f(2000);
  RepresentativeSetConfig cfg;
  cfg.beta = 100;
  RepresentativeSet rs(cfg);
  const auto keys = rs.ComputeTrainingSet(f.ctx());
  for (double k : keys) {
    EXPECT_TRUE(std::binary_search(f.keys.begin(), f.keys.end(), k))
        << "RS produced a key not in D";
  }
}

TEST(RepresentativeSetTest, ApproximatesCdfWell) {
  ContextFixture f(20000, DatasetKind::kNyc);
  RepresentativeSetConfig cfg;
  cfg.beta = 200;
  RepresentativeSet rs(cfg);
  const auto keys = rs.ComputeTrainingSet(f.ctx());
  EXPECT_LT(KsDistanceFast(keys, f.keys), 0.15);
}

TEST(RepresentativeSetTest, SurvivesFullyDuplicatedPoints) {
  std::vector<Point> pts(500, Point{0.5, 0.5, 0});
  for (size_t i = 0; i < pts.size(); ++i) pts[i].id = i;
  std::vector<double> keys(500, 42.0);
  const std::function<double(const Point&)> key_fn =
      [](const Point&) { return 42.0; };
  RepresentativeSetConfig cfg;
  cfg.beta = 50;
  RepresentativeSet rs(cfg);
  const auto out = rs.ComputeTrainingSet(BuildContext{pts, keys, key_fn});
  EXPECT_FALSE(out.empty());  // Depth cap turns the cell into one median.
}

TEST(ModelReuseTest, PoolSizeGrowsAsEpsilonShrinks) {
  RankModelConfig model;
  model.hidden = {8};
  model.epochs = 30;
  ModelReuseConfig coarse;
  coarse.epsilon = 0.5;
  ModelReuseConfig fine;
  fine.epsilon = 0.1;
  ModelReuse mr_coarse(coarse, model);
  ModelReuse mr_fine(fine, model);
  EXPECT_GT(mr_fine.pool_size(), mr_coarse.pool_size());
}

TEST(ModelReuseTest, ReusesModelForMatchingDistribution) {
  // Uniform keys match the pool's a=1 entry at distance ~0.
  ContextFixture f(5000, DatasetKind::kUniform);
  RankModelConfig model;
  model.hidden = {8};
  model.epochs = 60;
  ModelReuseConfig cfg;
  cfg.epsilon = 0.5;
  ModelReuse mr(cfg, model);
  EXPECT_LT(mr.BestMatchDistance(f.keys), 0.1);
  RankModel reused;
  EXPECT_TRUE(mr.TryReuseModel(f.ctx(), &reused));
  EXPECT_TRUE(reused.trained());
  // Error bounds over the real keys make the reused model exact.
  reused.ComputeErrorBounds(f.keys);
  for (size_t i = 0; i < f.keys.size(); i += 97) {
    const auto [lo, hi] = reused.SearchRange(f.keys[i], f.keys.size());
    EXPECT_GE(i, lo);
    EXPECT_LE(i, hi);
  }
}

TEST(ModelReuseTest, RejectsWhenNothingIsCloseEnough) {
  // An extreme two-cluster key distribution is far from every power CDF.
  std::vector<Point> pts;
  std::vector<double> keys;
  for (size_t i = 0; i < 500; ++i) {
    keys.push_back(i < 250 ? 0.0001 * i : 1000.0 + 0.0001 * i);
  }
  pts.resize(keys.size());
  const std::function<double(const Point&)> key_fn =
      [](const Point&) { return 0.0; };
  RankModelConfig model;
  model.hidden = {8};
  model.epochs = 30;
  ModelReuseConfig cfg;
  cfg.epsilon = 0.05;
  ModelReuse mr(cfg, model);
  RankModel reused;
  EXPECT_FALSE(mr.TryReuseModel(BuildContext{pts, keys, key_fn}, &reused));
  // Fallback training set still works.
  const auto fallback =
      mr.ComputeTrainingSet(BuildContext{pts, keys, key_fn});
  EXPECT_FALSE(fallback.empty());
}

TEST(ReinforcementMethodTest, TrainingSetIsBoundedByGrid) {
  ContextFixture f(4000, DatasetKind::kSkewed);
  ReinforcementConfig cfg;
  cfg.eta = 8;
  cfg.max_steps = 120;
  ReinforcementMethod rl(cfg);
  const auto keys = rl.ComputeTrainingSet(f.ctx());
  EXPECT_FALSE(keys.empty());
  EXPECT_LE(keys.size(), 64u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ReinforcementMethodTest, SearchImprovesOverInitialUniformState) {
  // dist(Ds, D) after the search must beat the all-cells-on start state.
  ContextFixture f(6000, DatasetKind::kNyc);
  ReinforcementConfig cfg;
  cfg.eta = 8;
  cfg.max_steps = 250;
  cfg.seed = 11;
  ReinforcementMethod rl(cfg);

  // Distance of the initial (uniform) state.
  const Rect bounds = BoundingRect(f.pts);
  std::vector<double> initial;
  for (int cy = 0; cy < 8; ++cy) {
    for (int cx = 0; cx < 8; ++cx) {
      const Point center{
          bounds.lo_x + (cx + 0.5) * (bounds.hi_x - bounds.lo_x) / 8,
          bounds.lo_y + (cy + 0.5) * (bounds.hi_y - bounds.lo_y) / 8, 0};
      initial.push_back(f.key_fn(center));
    }
  }
  std::sort(initial.begin(), initial.end());
  const double initial_dist = KsDistanceFast(initial, f.keys);

  rl.ComputeTrainingSet(f.ctx());
  EXPECT_LT(rl.last_distance(), initial_dist);
  EXPECT_GT(rl.last_steps(), 0);
}

TEST(ReinforcementMethodTest, EmptyInputYieldsEmptySet) {
  std::vector<Point> pts;
  std::vector<double> keys;
  const std::function<double(const Point&)> key_fn =
      [](const Point&) { return 0.0; };
  ReinforcementMethod rl;
  EXPECT_TRUE(rl.ComputeTrainingSet(BuildContext{pts, keys, key_fn}).empty());
}

// RS trades a little CDF fidelity (one median per cell regardless of cell
// mass) for original-space coverage: every point of D shares a cell with a
// representative. Check both properties: bounded KS distance AND spatial
// coverage that plain SP lacks on skewed data.
TEST(MethodQualityTest, RsCombinesCdfFidelityWithSpatialCoverage) {
  ContextFixture f(30000, DatasetKind::kNyc, 9);
  RepresentativeSetConfig rs_cfg;
  rs_cfg.beta = 300;  // ~100+ cells.
  RepresentativeSet rs(rs_cfg);
  const auto rs_keys = rs.ComputeTrainingSet(f.ctx());
  EXPECT_LT(KsDistanceFast(rs_keys, f.keys), 0.15);

  SamplingConfig sp_cfg;
  sp_cfg.rho = static_cast<double>(rs_keys.size()) / f.keys.size();
  SystematicSampling sp(sp_cfg);
  const auto sp_keys = sp.ComputeTrainingSet(f.ctx());

  // Spatial coverage: the largest key-space gap between consecutive
  // representatives, normalised by the key range. RS's quadtree guarantees
  // a representative near every point; SP can leave sparse regions empty.
  auto max_gap = [&](const std::vector<double>& keys) {
    double gap = 0.0;
    for (size_t i = 1; i < keys.size(); ++i) {
      gap = std::max(gap, keys[i] - keys[i - 1]);
    }
    return gap / (f.keys.back() - f.keys.front());
  };
  EXPECT_LE(max_gap(rs_keys), max_gap(sp_keys) + 1e-12);
}

}  // namespace
}  // namespace elsi
