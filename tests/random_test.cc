#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBelowUnbiasedOverSmallRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextBelow(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.01);
  }
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngDeathTest, NextBelowZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBelow(0), "CHECK failed");
}

}  // namespace
}  // namespace elsi
