// Parallel build pipeline tests: (1) golden determinism — building ZM/ML on
// a worker pool must produce bit-identical models (error bounds) and answers
// (point/window/kNN) to the serial build, for the same seed; (2) a stress
// test hammering concurrent builds of all four base index kinds through one
// shared BuildProcessor on one pool, with nested fan-out inside each build.

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "data/workload.h"

namespace elsi {
namespace {

BuildProcessorConfig TestProcessorConfig(size_t n) {
  BuildProcessorConfig cfg;
  cfg.model.hidden = {8};
  cfg.model.epochs = 30;
  cfg.model.learning_rate = 0.03;
  cfg.seed = 42;
  cfg.sp.rho = 0.005;
  cfg.rs.beta = std::max<size_t>(64, n / 100);
  return cfg;
}

struct BuildOutcome {
  std::vector<BuildCallRecord> records;  // Sorted by content.
  std::vector<bool> point_found;
  std::vector<std::vector<uint64_t>> window_ids;  // Sorted per window.
  std::vector<std::vector<uint64_t>> knn_ids;
};

// Builds `kind` over `data` on a dedicated pool of `threads` and probes it
// with a fixed workload. Everything returned is content only (no timings),
// with order-normalised records, so two outcomes can be compared exactly.
BuildOutcome BuildAndProbe(BaseIndexKind kind, const Dataset& data,
                           size_t threads) {
  ThreadPool pool(threads);
  auto processor = std::make_shared<BuildProcessor>(
      TestProcessorConfig(data.size()),
      std::make_shared<FixedSelector>(BuildMethodId::kSP));
  BaseIndexScale scale;
  scale.leaf_target = 5000;
  scale.pool = &pool;
  auto index = MakeBaseIndex(kind, processor, scale);
  index->Build(data);

  BuildOutcome out;
  out.records = processor->records();
  std::sort(out.records.begin(), out.records.end(),
            [](const BuildCallRecord& a, const BuildCallRecord& b) {
              return std::tie(a.n, a.training_size, a.error_magnitude) <
                     std::tie(b.n, b.training_size, b.error_magnitude);
            });

  const auto probes = SamplePointQueries(data, 300, 7);
  for (const Point& q : probes) out.point_found.push_back(index->PointQuery(q));

  const auto windows = SampleWindowQueries(data, 40, 0.001, 8);
  for (const Rect& w : windows) {
    std::vector<uint64_t> ids;
    for (const Point& p : index->WindowQuery(w)) ids.push_back(p.id);
    std::sort(ids.begin(), ids.end());
    out.window_ids.push_back(std::move(ids));
  }

  const auto knn_probes = SampleKnnQueries(data, 30, 9);
  for (const Point& q : knn_probes) {
    std::vector<uint64_t> ids;
    for (const Point& p : index->KnnQuery(q, 10)) ids.push_back(p.id);
    out.knn_ids.push_back(std::move(ids));
  }
  return out;
}

class ParallelDeterminismTest
    : public ::testing::TestWithParam<BaseIndexKind> {};

TEST_P(ParallelDeterminismTest, EightThreadBuildMatchesSerialExactly) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 100000, 42);
  const BuildOutcome serial = BuildAndProbe(GetParam(), data, 1);
  const BuildOutcome parallel = BuildAndProbe(GetParam(), data, 8);

  // Same trained models: the per-call instrumentation (partition size,
  // |Ds|, error bounds) must agree record-for-record after the
  // content-order sort.
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].method, parallel.records[i].method) << i;
    EXPECT_EQ(serial.records[i].n, parallel.records[i].n) << i;
    EXPECT_EQ(serial.records[i].training_size, parallel.records[i].training_size)
        << i;
    EXPECT_DOUBLE_EQ(serial.records[i].error_magnitude,
                     parallel.records[i].error_magnitude)
        << "record " << i << ": parallel build trained a different model";
  }

  // Same answers, query for query.
  EXPECT_EQ(serial.point_found, parallel.point_found);
  EXPECT_EQ(serial.window_ids, parallel.window_ids);
  EXPECT_EQ(serial.knn_ids, parallel.knn_ids);
}

INSTANTIATE_TEST_SUITE_P(ZmMl, ParallelDeterminismTest,
                         ::testing::Values(BaseIndexKind::kZM,
                                           BaseIndexKind::kML),
                         [](const auto& info) {
                           return BaseIndexKindName(info.param);
                         });

// Concurrent builds of all four kinds on one pool, all funnelled through a
// single shared BuildProcessor (record accumulation, selector calls and the
// MR model pool are hit from many threads at once). Each inner build fans
// out on the same pool, exercising nested TaskGroups.
TEST(ParallelBuildStressTest, ConcurrentBuildsAcrossAllKindsStayCorrect) {
  ThreadPool pool(8);
  const size_t n = 8000;
  auto processor = std::make_shared<BuildProcessor>(
      TestProcessorConfig(n),
      std::make_shared<FixedSelector>(BuildMethodId::kRS));

  struct Job {
    BaseIndexKind kind;
    Dataset data;
    std::unique_ptr<SpatialIndex> index;
  };
  std::vector<Job> jobs;
  uint64_t seed = 100;
  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    for (int rep = 0; rep < 2; ++rep) {
      Job job;
      job.kind = kind;
      job.data = GenerateDataset(DatasetKind::kSkewed, n, seed++);
      BaseIndexScale scale;
      scale.leaf_target = 2000;
      scale.pool = &pool;
      job.index = MakeBaseIndex(kind, processor, scale);
      jobs.push_back(std::move(job));
    }
  }

  TaskGroup group(&pool);
  for (Job& job : jobs) {
    group.Run([&job] { job.index->Build(job.data); });
  }
  group.Wait();

  for (const Job& job : jobs) {
    const std::string label = BaseIndexKindName(job.kind);
    EXPECT_EQ(job.index->size(), job.data.size()) << label;
    // Every built point must be findable, whatever thread built the index.
    for (size_t i = 0; i < job.data.size(); i += 97) {
      EXPECT_TRUE(job.index->PointQuery(job.data[i]))
          << label << " lost point " << job.data[i].id;
    }
    // Window queries never produce false positives.
    const auto windows = SampleWindowQueries(job.data, 10, 0.001, 3);
    for (const Rect& w : windows) {
      for (const Point& p : job.index->WindowQuery(w)) {
        EXPECT_TRUE(w.Contains(p)) << label;
      }
    }
  }

  // The shared processor saw every training request exactly once.
  const auto records = processor->records();
  EXPECT_FALSE(records.empty());
  for (const BuildCallRecord& r : records) {
    EXPECT_GT(r.n, 0u);
    EXPECT_EQ(r.method, BuildMethodId::kRS);
  }
  EXPECT_GT(processor->TotalTrainSeconds(), 0.0);
}

}  // namespace
}  // namespace elsi
