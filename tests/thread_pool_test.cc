// Unit tests for the shared worker pool: basic execution, futures,
// ParallelFor coverage, nested fan-out (the helping-wait guarantee RSMI's
// recursive build relies on), exception propagation and global pool sizing.

#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(ThreadPoolTest, SingleThreadPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  // With no workers, TaskGroup::Run executes inline and in order.
  std::vector<int> order;
  TaskGroup group(&pool);
  for (int i = 0; i < 4; ++i) {
    group.Run([&order, i] { order.push_back(i); });
  }
  group.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAfterCompletion) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  group.Run([&count] { ++count; });
  group.Wait();
  group.Run([&count] { ++count; });
  group.Wait();
  group.Wait();  // Idempotent with nothing pending.
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, SubmitFutureReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.SubmitFuture([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<int> hits(1000, 0);
    pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << "threads = " << threads;
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << ", threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  pool.ParallelFor(0, 2, [&](size_t) { ++atomic_calls; });
  EXPECT_EQ(atomic_calls.load(), 2);
}

// Recursive fan-out on one pool: a task spawns its own TaskGroup. The
// helping Wait() must keep every level making progress even when the
// recursion depth exceeds the worker count.
TEST(ThreadPoolTest, NestedGroupsDoNotDeadlock) {
  ThreadPool pool(2);  // 1 worker: stresses the helping path.
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TaskGroup group(&pool);
    for (int c = 0; c < 3; ++c) {
      group.Run([&recurse, depth] { recurse(depth - 1); });
    }
    group.Wait();
  };
  recurse(5);
  EXPECT_EQ(leaves.load(), 3 * 3 * 3 * 3 * 3);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesFromWait) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([i] {
      if (i == 5) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, NullPoolGroupRunsInline) {
  TaskGroup group(nullptr);
  int runs = 0;
  group.Run([&runs] { ++runs; });
  group.Run([&runs] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 2);
}

TEST(ThreadPoolTest, RunPendingTaskReportsEmptyQueue) {
  ThreadPool pool(1);  // No workers, nothing ever queued by TaskGroup.
  EXPECT_FALSE(pool.RunPendingTask());
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  const size_t original = ThreadPool::Global().thread_count();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().thread_count(), 3u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().thread_count(), 1u);
  ThreadPool::SetGlobalThreads(original);
}

TEST(ThreadPoolTest, DestructorDrainsRawSubmissions) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // Destructor joins the worker and drains any leftovers inline.
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace elsi
