#include "common/geometry.h"

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(PointTest, DistanceIsEuclidean) {
  const Point a{0.0, 0.0, 1};
  const Point b{3.0, 4.0, 2};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
}

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 0.0);
}

TEST(RectTest, ExtendCoversPoints) {
  Rect r;
  r.Extend(Point{1.0, 2.0, 0});
  r.Extend(Point{-1.0, 5.0, 1});
  EXPECT_FALSE(r.empty());
  EXPECT_DOUBLE_EQ(r.lo_x, -1.0);
  EXPECT_DOUBLE_EQ(r.hi_y, 5.0);
  EXPECT_TRUE(r.Contains(Point{0.0, 3.0, 2}));
  EXPECT_FALSE(r.Contains(Point{2.0, 3.0, 3}));
}

TEST(RectTest, ContainsIsClosedOnBoundary) {
  const Rect r = Rect::Of(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(r.Contains(Point{0.0, 0.0, 0}));
  EXPECT_TRUE(r.Contains(Point{1.0, 1.0, 0}));
  EXPECT_TRUE(r.Contains(Point{1.0, 0.5, 0}));
}

TEST(RectTest, IntersectsSymmetric) {
  const Rect a = Rect::Of(0.0, 0.0, 2.0, 2.0);
  const Rect b = Rect::Of(1.0, 1.0, 3.0, 3.0);
  const Rect c = Rect::Of(5.0, 5.0, 6.0, 6.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges count as intersecting (closed rectangles).
  const Rect d = Rect::Of(2.0, 0.0, 3.0, 2.0);
  EXPECT_TRUE(a.Intersects(d));
}

TEST(RectTest, IntersectionArea) {
  const Rect a = Rect::Of(0.0, 0.0, 2.0, 2.0);
  const Rect b = Rect::Of(1.0, 1.0, 3.0, 3.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 1.0);
  const Rect c = Rect::Of(2.0, 2.0, 3.0, 3.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(c), 0.0);  // Touching corner.
}

TEST(RectTest, ContainsRect) {
  const Rect outer = Rect::Of(0.0, 0.0, 10.0, 10.0);
  EXPECT_TRUE(outer.Contains(Rect::Of(1.0, 1.0, 2.0, 2.0)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect::Of(5.0, 5.0, 11.0, 6.0)));
}

TEST(RectTest, MinSquaredDistance) {
  const Rect r = Rect::Of(0.0, 0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{0.5, 0.5, 0}), 0.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{2.0, 0.5, 0}), 1.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{2.0, 2.0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(r.MinSquaredDistance(Point{-3.0, 0.5, 0}), 9.0);
}

TEST(RectTest, BoundingRectOfPoints) {
  const std::vector<Point> pts = {{0.5, 0.5, 0}, {0.1, 0.9, 1}, {0.7, 0.2, 2}};
  const Rect r = BoundingRect(pts);
  EXPECT_DOUBLE_EQ(r.lo_x, 0.1);
  EXPECT_DOUBLE_EQ(r.lo_y, 0.2);
  EXPECT_DOUBLE_EQ(r.hi_x, 0.7);
  EXPECT_DOUBLE_EQ(r.hi_y, 0.9);
  for (const Point& p : pts) EXPECT_TRUE(r.Contains(p));
}

TEST(RectTest, CenterOfRect) {
  const Rect r = Rect::Of(0.0, 2.0, 4.0, 6.0);
  const Point c = r.Center();
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 4.0);
}

}  // namespace
}  // namespace elsi
