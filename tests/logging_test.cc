#include "common/logging.h"

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(LoggingTest, PassingChecksDoNotAbort) {
  ELSI_CHECK(true) << "never shown";
  ELSI_CHECK_EQ(1, 1);
  ELSI_CHECK_NE(1, 2);
  ELSI_CHECK_LT(1, 2);
  ELSI_CHECK_LE(2, 2);
  ELSI_CHECK_GT(3, 2);
  ELSI_CHECK_GE(3, 3);
  ELSI_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ ELSI_CHECK(false) << "boom"; }, "CHECK failed");
}

TEST(LoggingDeathTest, FailingCheckEqPrintsCondition) {
  EXPECT_DEATH({ ELSI_CHECK_EQ(1, 2) << "values differ"; }, "values differ");
}

}  // namespace
}  // namespace elsi
