#include "common/logging.h"

#include <gtest/gtest.h>

namespace elsi {
namespace {

TEST(LoggingTest, PassingChecksDoNotAbort) {
  ELSI_CHECK(true) << "never shown";
  ELSI_CHECK_EQ(1, 1);
  ELSI_CHECK_NE(1, 2);
  ELSI_CHECK_LT(1, 2);
  ELSI_CHECK_LE(2, 2);
  ELSI_CHECK_GT(3, 2);
  ELSI_CHECK_GE(3, 3);
  ELSI_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ ELSI_CHECK(false) << "boom"; }, "CHECK failed");
}

TEST(LoggingDeathTest, FailingCheckEqPrintsCondition) {
  EXPECT_DEATH({ ELSI_CHECK_EQ(1, 2) << "values differ"; }, "values differ");
}

#ifdef NDEBUG
TEST(LoggingTest, DcheckDoesNotEvaluateArgumentsInRelease) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  ELSI_DCHECK(touch());
  ELSI_DCHECK(false) << (evaluations += 100, "never streamed");
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(LoggingDeathTest, DcheckAbortsInDebug) {
  EXPECT_DEATH({ ELSI_DCHECK(false) << "debug only"; }, "CHECK failed");
}
#endif

// RAII guard so the threshold tests cannot leak state into each other.
class ScopedLogThreshold {
 public:
  explicit ScopedLogThreshold(LogSeverity severity)
      : saved_(GetLogThreshold()) {
    SetLogThreshold(severity);
  }
  ~ScopedLogThreshold() { SetLogThreshold(saved_); }

 private:
  LogSeverity saved_;
};

TEST(LoggingTest, LogBelowThresholdIsSuppressedAndNotEvaluated) {
  ScopedLogThreshold guard(LogSeverity::kError);
  int evaluations = 0;
  testing::internal::CaptureStderr();
  ELSI_LOG(INFO) << (evaluations += 1, "info");
  ELSI_LOG(WARN) << (evaluations += 1, "warn");
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured, "");
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, LogAtOrAboveThresholdIsEmittedWithPrefix) {
  ScopedLogThreshold guard(LogSeverity::kInfo);
  testing::internal::CaptureStderr();
  ELSI_LOG(INFO) << "telemetry " << 42;
  ELSI_LOG(ERROR) << "bad state";
  const std::string captured = testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("[INFO]"), std::string::npos);
  EXPECT_NE(captured.find("telemetry 42"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR]"), std::string::npos);
  EXPECT_NE(captured.find("bad state"), std::string::npos);
  EXPECT_NE(captured.find("logging_test"), std::string::npos);  // file:line
}

TEST(LoggingTest, ThresholdRoundTrips) {
  ScopedLogThreshold guard(LogSeverity::kWarn);
  EXPECT_EQ(GetLogThreshold(), LogSeverity::kWarn);
  SetLogThreshold(LogSeverity::kInfo);
  EXPECT_EQ(GetLogThreshold(), LogSeverity::kInfo);
}

}  // namespace
}  // namespace elsi
