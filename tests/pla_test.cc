// Tests for the PGM-style piecewise-linear model backend (the paper's
// named future-work extension): provable error bounds, segment behaviour,
// and end-to-end use as a RankModel backend inside a learned index.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "learned/rank_model.h"
#include "ml/pla.h"

namespace elsi {
namespace {

std::vector<double> SortedKeys(size_t n, uint64_t seed, double power = 1.0) {
  Rng rng(seed);
  std::vector<double> keys(n);
  for (double& k : keys) k = std::pow(rng.NextDouble(), power);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(PlaTest, LinearDataNeedsOneSegment) {
  std::vector<double> keys(1000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = 3.0 * i + 7.0;
  PiecewiseLinearModel pla;
  pla.Fit(keys, 0.5);
  EXPECT_EQ(pla.segment_count(), 1u);
  for (size_t i = 0; i < keys.size(); i += 97) {
    EXPECT_NEAR(pla.PredictPosition(keys[i]), static_cast<double>(i), 0.5);
  }
}

TEST(PlaTest, ErrorBoundHoldsByConstruction) {
  for (double power : {1.0, 4.0, 12.0}) {
    const auto keys = SortedKeys(20000, 3, power);
    for (double eps : {4.0, 32.0, 256.0}) {
      PiecewiseLinearModel pla;
      pla.Fit(keys, eps);
      double max_err = 0.0;
      size_t i = 0;
      while (i < keys.size()) {
        // The bound is stated for the first instance of each distinct key.
        const double err =
            std::fabs(pla.PredictPosition(keys[i]) - static_cast<double>(i));
        max_err = std::max(max_err, err);
        const double key = keys[i];
        while (i < keys.size() && keys[i] == key) ++i;
      }
      EXPECT_LE(max_err, eps + 1e-6)
          << "power " << power << " eps " << eps;
    }
  }
}

TEST(PlaTest, SegmentCountShrinksWithEpsilon) {
  const auto keys = SortedKeys(20000, 5, 8.0);
  PiecewiseLinearModel tight, loose;
  tight.Fit(keys, 4.0);
  loose.Fit(keys, 256.0);
  EXPECT_GT(tight.segment_count(), loose.segment_count());
  EXPECT_GE(loose.segment_count(), 1u);
}

TEST(PlaTest, HandlesMassiveDuplication) {
  // TPC-H-like lattice: 50 distinct values, 400 copies each.
  std::vector<double> keys;
  for (int v = 0; v < 50; ++v) {
    for (int c = 0; c < 400; ++c) keys.push_back(static_cast<double>(v));
  }
  PiecewiseLinearModel pla;
  pla.Fit(keys, 8.0);
  // Predictions for each distinct value stay near its first position.
  for (int v = 0; v < 50; ++v) {
    EXPECT_NEAR(pla.PredictPosition(static_cast<double>(v)), v * 400.0, 8.0);
  }
}

TEST(PlaTest, SinglePointFits) {
  PiecewiseLinearModel pla;
  pla.Fit({5.0}, 1.0);
  EXPECT_EQ(pla.segment_count(), 1u);
  EXPECT_DOUBLE_EQ(pla.PredictPosition(5.0), 0.0);
  EXPECT_DOUBLE_EQ(pla.PredictPosition(100.0), 0.0);  // Clamped.
}

TEST(RankModelPlaTest, BackendTrainsAndBoundsFullSet) {
  const auto keys = SortedKeys(10000, 7, 6.0);
  RankModelConfig cfg;
  cfg.backend = RankModelBackend::kPla;
  cfg.pla_epsilon = 32.0;
  RankModel model;
  model.Train(keys, keys.front(), keys.back(), cfg);
  EXPECT_EQ(model.backend(), RankModelBackend::kPla);
  EXPECT_GE(model.pla_segments(), 1u);
  model.ComputeErrorBounds(keys);
  // Trained on the full set: the measured bounds cannot exceed epsilon by
  // more than rounding.
  EXPECT_LE(model.err_l() + model.err_u(), 2 * 32.0 + 2.0);
  for (size_t i = 0; i < keys.size(); i += 111) {
    const auto [lo, hi] = model.SearchRange(keys[i], keys.size());
    EXPECT_GE(i, lo);
    EXPECT_LE(i, hi);
  }
}

TEST(RankModelPlaTest, SubsetTrainingStillExactViaMeasuredBounds) {
  // The ELSI pattern with the PLA backend: fit on Ds, bound over D.
  const auto keys = SortedKeys(20000, 9, 4.0);
  std::vector<double> subset;
  for (size_t i = 0; i < keys.size(); i += 40) subset.push_back(keys[i]);
  RankModelConfig cfg;
  cfg.backend = RankModelBackend::kPla;
  cfg.pla_epsilon = 8.0;
  RankModel model;
  model.Train(subset, keys.front(), keys.back(), cfg);
  model.ComputeErrorBounds(keys);
  for (size_t i = 0; i < keys.size(); i += 203) {
    const auto [lo, hi] = model.SearchRange(keys[i], keys.size());
    EXPECT_GE(i, lo);
    EXPECT_LE(i, hi);
  }
}

TEST(RankModelPlaTest, WorksAsZmIndexBackendEndToEnd) {
  RankModelConfig cfg;
  cfg.backend = RankModelBackend::kPla;
  cfg.pla_epsilon = 16.0;
  auto trainer = std::make_shared<DirectTrainer>(cfg);
  ZmIndex::Config zcfg;
  zcfg.array.leaf_target = 1500;
  ZmIndex index(trainer, zcfg);
  const Dataset data = GenerateDataset(DatasetKind::kNyc, 5000, 11);
  index.Build(data);
  for (size_t i = 0; i < data.size(); i += 7) {
    EXPECT_TRUE(index.PointQuery(data[i])) << i;
  }
  const Rect w = Rect::Of(0.2, 0.2, 0.4, 0.4);
  const auto hits = index.WindowQuery(w);
  size_t expected = 0;
  for (const Point& p : data) {
    if (w.Contains(p)) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(RankModelPlaTest, PlaWorksThroughElsiBuildProcessor) {
  // PLA backend composed with ELSI's training-set shrinking (RS method).
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 6000, 13);
  BuildProcessorConfig cfg;
  cfg.model.backend = RankModelBackend::kPla;
  cfg.model.pla_epsilon = 8.0;
  cfg.rs.beta = 100;
  cfg.enabled = {BuildMethodId::kRS};
  auto processor = std::make_shared<BuildProcessor>(
      cfg, std::make_shared<FixedSelector>(BuildMethodId::kRS));
  ZmIndex::Config zcfg;
  zcfg.array.leaf_target = 2000;
  ZmIndex index(processor, zcfg);
  index.Build(data);
  for (size_t i = 0; i < data.size(); i += 13) {
    EXPECT_TRUE(index.PointQuery(data[i])) << i;
  }
}

TEST(PlaDeathTest, EmptyInputAborts) {
  PiecewiseLinearModel pla;
  EXPECT_DEATH(pla.Fit({}, 1.0), "CHECK failed");
}

}  // namespace
}  // namespace elsi
