// Save -> load round-trip property test: every index kind (traditional and
// learned) is built, mutated, snapshotted, and restored; the restored index
// must answer point/window/kNN queries bit-identically to the original —
// serially and through the batched path at multiple thread counts.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "core/elsi.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "persist/snapshot.h"
#include "traditional/grid_index.h"
#include "traditional/hrr_tree.h"
#include "traditional/kdb_tree.h"
#include "traditional/rstar_tree.h"

namespace elsi {
namespace {

RankModelConfig FastModel() {
  RankModelConfig cfg;
  cfg.hidden = {8};
  cfg.epochs = 50;
  cfg.learning_rate = 0.03;
  return cfg;
}

std::unique_ptr<SpatialIndex> MakeAnyIndex(const std::string& name) {
  if (name == "Grid") return std::make_unique<GridIndex>(16);
  if (name == "KDB") return std::make_unique<KdbTree>(16);
  if (name == "HRR") return std::make_unique<HrrTree>(16);
  if (name == "RR*") return std::make_unique<RStarTree>(16);
  auto trainer = std::make_shared<DirectTrainer>(FastModel());
  BaseIndexScale scale;
  scale.leaf_target = 400;
  for (BaseIndexKind kind : kAllBaseIndexKinds) {
    if (BaseIndexKindName(kind) == name) {
      return MakeBaseIndex(kind, trainer, scale);
    }
  }
  ADD_FAILURE() << "unknown index " << name;
  return nullptr;
}

std::vector<Point> SortById(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    return a.id < b.id;
  });
  return pts;
}

void ExpectSamePoints(const std::vector<Point>& a, const std::vector<Point>& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << what << " [" << i << "]";
    EXPECT_EQ(a[i].x, b[i].x) << what << " [" << i << "]";
    EXPECT_EQ(a[i].y, b[i].y) << what << " [" << i << "]";
  }
}

/// Every query kind, serial and batched at the given pool width, must give
/// the exact same answers on both indices.
void ExpectQueriesIdentical(const SpatialIndex& original,
                            const SpatialIndex& restored, uint64_t seed,
                            ThreadPool* pool) {
  const Dataset contents = original.CollectAll();
  const auto probes = SamplePointQueries(contents, 64, seed + 1);
  const auto windows = SampleWindowQueries(contents, 24, 0.01, seed + 2);
  const auto knn_probes = SampleKnnQueries(contents, 16, seed + 3);
  BatchQueryOptions opts;
  opts.pool = pool;
  opts.chunk = 16;

  for (const Point& q : probes) {
    Point got_a, got_b;
    const bool hit_a = original.PointQuery(q, &got_a);
    const bool hit_b = restored.PointQuery(q, &got_b);
    EXPECT_EQ(hit_a, hit_b);
    if (hit_a && hit_b) EXPECT_EQ(got_a.id, got_b.id);
  }
  {
    std::vector<uint8_t> hit_a(probes.size()), hit_b(probes.size());
    std::vector<Point> out_a(probes.size()), out_b(probes.size());
    original.PointQueryBatch(probes, hit_a, out_a, opts);
    restored.PointQueryBatch(probes, hit_b, out_b, opts);
    EXPECT_EQ(hit_a, hit_b);
  }

  for (const Rect& w : windows) {
    ExpectSamePoints(SortById(original.WindowQuery(w)),
                     SortById(restored.WindowQuery(w)), "window");
  }
  {
    std::vector<std::vector<Point>> res_a(windows.size()),
        res_b(windows.size());
    original.WindowQueryBatch(windows, res_a, opts);
    restored.WindowQueryBatch(windows, res_b, opts);
    for (size_t i = 0; i < windows.size(); ++i) {
      ExpectSamePoints(res_a[i], res_b[i], "window batch");
    }
  }

  for (const Point& q : knn_probes) {
    ExpectSamePoints(original.KnnQuery(q, 8), restored.KnnQuery(q, 8), "knn");
  }
  {
    std::vector<std::vector<Point>> res_a(knn_probes.size()),
        res_b(knn_probes.size());
    original.KnnQueryBatch(knn_probes, 8, res_a, opts);
    restored.KnnQueryBatch(knn_probes, 8, res_b, opts);
    for (size_t i = 0; i < knn_probes.size(); ++i) {
      ExpectSamePoints(res_a[i], res_b[i], "knn batch");
    }
  }
}

class RoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripTest, SaveLoadPreservesEveryQueryAnswer) {
  const std::string name = GetParam();
  const uint64_t seed = 1234;
  const Dataset initial = GenerateDataset(DatasetKind::kOsm1, 600, seed);
  auto index = MakeAnyIndex(name);
  ASSERT_NE(index, nullptr);
  index->Build(initial);

  // Mutate past the build so delta/overflow state is exercised too.
  Rng rng(seed + 7);
  uint64_t next_id = 50000;
  for (int i = 0; i < 120; ++i) {
    index->Insert({rng.NextDouble(), rng.NextDouble(), next_id++});
    if (i % 3 == 0) index->Remove(initial[rng.NextBelow(initial.size())]);
  }

  const std::string path =
      ::testing::TempDir() + "roundtrip_" + std::to_string(::getpid()) + "_" +
      name + ".snap";
  // "RR*" is not filesystem-safe; SnapshotPath never embeds the kind, only
  // this test does, so sanitize.
  std::string safe_path = path;
  for (char& c : safe_path) {
    if (c == '*') c = '_';
  }
  ASSERT_TRUE(persist::Snapshot::Save(*index, safe_path));

  persist::SnapshotMeta meta;
  auto restored = persist::Snapshot::Load(safe_path, {}, &meta);
  ASSERT_NE(restored, nullptr) << name;
  EXPECT_EQ(meta.kind, name);
  EXPECT_EQ(restored->Name(), name);
  EXPECT_EQ(restored->size(), index->size());
  ExpectSamePoints(SortById(restored->CollectAll()),
                   SortById(index->CollectAll()), "contents");

  ExpectQueriesIdentical(*index, *restored, seed, nullptr);
  ThreadPool pool1(1);
  ExpectQueriesIdentical(*index, *restored, seed, &pool1);
  ThreadPool pool4(4);
  ExpectQueriesIdentical(*index, *restored, seed, &pool4);

  // The restored index must keep working as a live index: more updates and
  // a second round trip.
  for (int i = 0; i < 40; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble(), next_id++};
    index->Insert(p);
    restored->Insert(p);
  }
  EXPECT_EQ(restored->size(), index->size());
  ASSERT_TRUE(persist::Snapshot::Save(*restored, safe_path));
  auto restored2 = persist::Snapshot::Load(safe_path);
  ASSERT_NE(restored2, nullptr);
  EXPECT_EQ(restored2->size(), restored->size());

  std::remove(safe_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllIndexKinds, RoundTripTest,
                         ::testing::Values("Grid", "KDB", "HRR", "RR*", "ZM",
                                           "ML", "RSMI", "LISA"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '*') c = 'S';
                           }
                           return n;
                         });

}  // namespace
}  // namespace elsi
