#include "common/cdf.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

std::vector<double> SortedUniform(size_t n, uint64_t seed, double lo = 0.0,
                                  double hi = 1.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.NextDouble(lo, hi);
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EmpiricalCdfTest, EvaluatesStepFunction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(9.0), 1.0);
}

TEST(EmpiricalCdfTest, LowerRankCountsStrictlySmaller) {
  EmpiricalCdf cdf({1.0, 2.0, 2.0, 3.0});
  EXPECT_EQ(cdf.LowerRank(2.0), 1u);
  EXPECT_EQ(cdf.LowerRank(0.0), 0u);
  EXPECT_EQ(cdf.LowerRank(5.0), 4u);
}

TEST(KsDistanceTest, IdenticalSetsHaveZeroDistance) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KsDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(Similarity(a, a), 1.0);
}

TEST(KsDistanceTest, DisjointSetsHaveDistanceOne) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {10.0, 11.0};
  EXPECT_DOUBLE_EQ(KsDistance(a, b), 1.0);
}

TEST(KsDistanceTest, KnownSmallExample) {
  // F_a jumps at 1, 3; F_b jumps at 2, 4. After value 1: |0.5 - 0| = 0.5.
  const std::vector<double> a = {1.0, 3.0};
  const std::vector<double> b = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(KsDistance(a, b), 0.5);
}

TEST(KsDistanceTest, HandlesTiesWithoutInflation) {
  // Identical multisets with duplicates must still be at distance 0.
  const std::vector<double> a = {1.0, 1.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(KsDistance(a, a), 0.0);
}

TEST(KsDistanceTest, IsSymmetric) {
  const auto a = SortedUniform(100, 1);
  const auto b = SortedUniform(300, 2);
  EXPECT_DOUBLE_EQ(KsDistance(a, b), KsDistance(b, a));
}

TEST(KsDistanceFastTest, MatchesExactWhenSmallSetIsSubsetLike) {
  // The fast scan evaluates gaps at the small set's jump points only. When
  // the small set is a systematic sample of the large one, the supremum of
  // the ECDF gap is attained at (or adjacent to) those jumps, so the two
  // must agree closely.
  const auto large = SortedUniform(2000, 3);
  std::vector<double> small;
  for (size_t i = 0; i < large.size(); i += 20) small.push_back(large[i]);
  const double exact = KsDistance(small, large);
  const double fast = KsDistanceFast(small, large);
  EXPECT_LE(fast, exact + 1e-12);
  EXPECT_NEAR(fast, exact, 0.02);
}

TEST(KsDistanceFastTest, NeverExceedsExact) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto small = SortedUniform(50, seed * 2 + 1);
    const auto large = SortedUniform(5000, seed * 2 + 2, 0.2, 0.8);
    EXPECT_LE(KsDistanceFast(small, large),
              KsDistance(small, large) + 1e-12)
        << "seed " << seed;
  }
}

TEST(KsDistanceFastTest, LowerBoundsWithinSmallSetResolution) {
  // Restricting the supremum to the small set's jumps can miss at most the
  // CDF mass between consecutive small-set jumps, which is 1/ns per side.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto small = SortedUniform(200, seed * 3 + 1);
    const auto large = SortedUniform(4000, seed * 3 + 2, 0.0, 0.5);
    const double exact = KsDistance(small, large);
    const double fast = KsDistanceFast(small, large);
    EXPECT_GE(fast, exact - 1.0 / 200 - 1e-12) << "seed " << seed;
  }
}

TEST(UniformDissimilarityTest, UniformDataIsNearZero) {
  const auto keys = SortedUniform(20000, 7);
  EXPECT_LT(UniformDissimilarity(keys), 0.02);
}

TEST(UniformDissimilarityTest, ConstantAndTinySetsAreZero) {
  EXPECT_DOUBLE_EQ(UniformDissimilarity({}), 0.0);
  EXPECT_DOUBLE_EQ(UniformDissimilarity({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(UniformDissimilarity({5.0, 5.0, 5.0}), 0.0);
}

TEST(UniformDissimilarityTest, GrowsWithSkew) {
  Rng rng(11);
  std::vector<double> mild(20000), heavy(20000);
  for (size_t i = 0; i < mild.size(); ++i) {
    const double u = rng.NextDouble();
    mild[i] = std::pow(u, 2.0);
    heavy[i] = std::pow(u, 8.0);
  }
  std::sort(mild.begin(), mild.end());
  std::sort(heavy.begin(), heavy.end());
  const double d_mild = UniformDissimilarity(mild);
  const double d_heavy = UniformDissimilarity(heavy);
  EXPECT_GT(d_mild, 0.2);
  EXPECT_GT(d_heavy, d_mild);
}

// Analytic check: ECDF of u^2 under the uniform reference on [0,1] has
// supremum gap at x where x^{1/2} - x is maximal, i.e. x = 1/4, gap 1/4.
TEST(UniformDissimilarityTest, MatchesAnalyticPowerLawGap) {
  Rng rng(13);
  std::vector<double> keys(200000);
  for (double& k : keys) k = std::pow(rng.NextDouble(), 2.0);
  std::sort(keys.begin(), keys.end());
  EXPECT_NEAR(UniformDissimilarity(keys), 0.25, 0.02);
}

// Property sweep: KS distance is within [0, 1] and satisfies the triangle
// inequality for arbitrary seeds.
class KsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KsPropertyTest, RangeAndTriangleInequality) {
  const uint64_t seed = GetParam();
  const auto a = SortedUniform(100 + seed * 13 % 400, seed + 1);
  const auto b = SortedUniform(100 + seed * 29 % 400, seed + 2, 0.1, 1.2);
  const auto c = SortedUniform(100 + seed * 7 % 400, seed + 3, -0.5, 0.7);
  const double ab = KsDistance(a, b);
  const double bc = KsDistance(b, c);
  const double ac = KsDistance(a, c);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_LE(ac, ab + bc + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace elsi
