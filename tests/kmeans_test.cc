#include "ml/kmeans.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synthetic.h"

namespace elsi {
namespace {

// Four well-separated blobs; k = 4 must recover one centroid near each.
std::vector<Point> FourBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[4][2] = {{0.2, 0.2}, {0.2, 0.8}, {0.8, 0.2}, {0.8, 0.8}};
  std::vector<Point> pts;
  for (int b = 0; b < 4; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back(Point{centers[b][0] + 0.02 * rng.NextGaussian(),
                          centers[b][1] + 0.02 * rng.NextGaussian(),
                          pts.size()});
    }
  }
  return pts;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const auto pts = FourBlobs(200, 3);
  const KMeansResult result = KMeans(pts, 4, {});
  ASSERT_EQ(result.centroids.size(), 4u);
  const double expected[4][2] = {
      {0.2, 0.2}, {0.2, 0.8}, {0.8, 0.2}, {0.8, 0.8}};
  for (const auto& e : expected) {
    double best = 1e9;
    for (const Point& c : result.centroids) {
      best = std::min(best, std::hypot(c.x - e[0], c.y - e[1]));
    }
    EXPECT_LT(best, 0.05) << "no centroid near (" << e[0] << "," << e[1] << ")";
  }
}

TEST(KMeansTest, AssignmentMapsToNearestCentroid) {
  const auto pts = FourBlobs(50, 5);
  const KMeansResult result = KMeans(pts, 4, {});
  ASSERT_EQ(result.assignment.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    const double assigned =
        SquaredDistance(pts[i], result.centroids[result.assignment[i]]);
    for (const Point& c : result.centroids) {
      EXPECT_LE(assigned, SquaredDistance(pts[i], c) + 1e-12);
    }
  }
}

TEST(KMeansTest, ClampsKToPointCount) {
  const std::vector<Point> pts = {{0.1, 0.1, 0}, {0.9, 0.9, 1}};
  const KMeansResult result = KMeans(pts, 10, {});
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansTest, CentroidIdsAreClusterIndices) {
  const auto pts = FourBlobs(30, 7);
  const KMeansResult result = KMeans(pts, 4, {});
  for (size_t c = 0; c < result.centroids.size(); ++c) {
    EXPECT_EQ(result.centroids[c].id, c);
  }
}

TEST(KMeansTest, MiniBatchApproximatesFullLloyd) {
  const auto pts = FourBlobs(500, 9);
  KMeansOptions mb;
  mb.batch_size = 200;
  mb.max_iterations = 30;
  const KMeansResult result = KMeans(pts, 4, mb);
  ASSERT_EQ(result.centroids.size(), 4u);
  EXPECT_TRUE(result.assignment.empty());  // Not materialised in mini-batch.
  const double expected[4][2] = {
      {0.2, 0.2}, {0.2, 0.8}, {0.8, 0.2}, {0.8, 0.8}};
  for (const auto& e : expected) {
    double best = 1e9;
    for (const Point& c : result.centroids) {
      best = std::min(best, std::hypot(c.x - e[0], c.y - e[1]));
    }
    EXPECT_LT(best, 0.1);
  }
}

TEST(KMeansTest, DeterministicInSeed) {
  const Dataset data = GenerateDataset(DatasetKind::kOsm1, 2000, 1);
  KMeansOptions opts;
  opts.seed = 17;
  const auto a = KMeans(data, 16, opts);
  const auto b = KMeans(data, 16, opts);
  for (size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.centroids[i].x, b.centroids[i].x);
    EXPECT_DOUBLE_EQ(a.centroids[i].y, b.centroids[i].y);
  }
}

TEST(KMeansDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(KMeans({}, 3, {}), "CHECK failed");
}

}  // namespace
}  // namespace elsi
