#include "ml/dqn.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace elsi {
namespace {

DqnConfig SmallConfig() {
  DqnConfig cfg;
  cfg.state_dim = 2;
  cfg.action_count = 2;
  cfg.hidden = {16};
  cfg.learning_rate = 5e-3;
  cfg.seed = 3;
  return cfg;
}

TEST(DqnTest, QValuesHaveActionCountEntries) {
  Dqn dqn(SmallConfig());
  EXPECT_EQ(dqn.QValues({0.0, 1.0}).size(), 2u);
}

TEST(DqnTest, GreedySelectionPicksArgmaxAction) {
  Dqn dqn(SmallConfig());
  const auto q = dqn.QValues({0.5, 0.5});
  const int best = q[0] >= q[1] ? 0 : 1;
  EXPECT_EQ(dqn.BestAction({0.5, 0.5}), best);
  EXPECT_EQ(dqn.SelectAction({0.5, 0.5}, 0.0), best);
}

TEST(DqnTest, FullyRandomEpsilonExploresBothActions) {
  Dqn dqn(SmallConfig());
  int counts[2] = {0, 0};
  for (int i = 0; i < 200; ++i) {
    ++counts[dqn.SelectAction({0.0, 0.0}, 1.0)];
  }
  EXPECT_GT(counts[0], 20);
  EXPECT_GT(counts[1], 20);
}

// A two-state bandit-like MDP: in state (1,0) action 0 yields reward 1,
// action 1 yields 0 (episode ends either way). The DQN must learn to prefer
// action 0.
TEST(DqnTest, LearnsBanditPreference) {
  DqnConfig cfg = SmallConfig();
  cfg.train_every = 1;
  cfg.batch_size = 16;
  Dqn dqn(cfg);
  const std::vector<double> s = {1.0, 0.0};
  const std::vector<double> terminal = {0.0, 0.0};
  for (int step = 0; step < 600; ++step) {
    const int a = dqn.SelectAction(s, 0.3);
    const double reward = a == 0 ? 1.0 : 0.0;
    dqn.Observe(s, a, reward, terminal, true);
  }
  const auto q = dqn.QValues(s);
  EXPECT_GT(q[0], q[1]);
  EXPECT_NEAR(q[0], 1.0, 0.35);
}

// A one-step lookahead chain: s0 -action0-> s1 (reward 0), then s1 gives
// reward 1 for action 0. With gamma = 0.9 the learned Q(s0, 0) should
// approach 0.9.
TEST(DqnTest, PropagatesDiscountedFutureReward) {
  DqnConfig cfg = SmallConfig();
  cfg.train_every = 1;
  cfg.batch_size = 32;
  cfg.gamma = 0.9;
  Dqn dqn(cfg);
  const std::vector<double> s0 = {1.0, 0.0};
  const std::vector<double> s1 = {0.0, 1.0};
  for (int episode = 0; episode < 500; ++episode) {
    dqn.Observe(s0, 0, 0.0, s1, false);
    dqn.Observe(s1, 0, 1.0, s0, true);
    // The other action gives nothing anywhere.
    dqn.Observe(s0, 1, 0.0, s0, true);
    dqn.Observe(s1, 1, 0.0, s0, true);
  }
  const auto q0 = dqn.QValues(s0);
  const auto q1 = dqn.QValues(s1);
  EXPECT_NEAR(q1[0], 1.0, 0.4);
  EXPECT_NEAR(q0[0], 0.9, 0.45);
  EXPECT_GT(q0[0], q0[1]);
  EXPECT_GT(q1[0], q1[1]);
}

TEST(DqnTest, StepCounterTracksObservations) {
  Dqn dqn(SmallConfig());
  for (int i = 0; i < 7; ++i) {
    dqn.Observe({0, 0}, 0, 0.0, {0, 0}, true);
  }
  EXPECT_EQ(dqn.steps(), 7);
}

TEST(DqnDeathTest, InvalidConfigAborts) {
  DqnConfig cfg;
  cfg.state_dim = 0;
  cfg.action_count = 2;
  EXPECT_DEATH(Dqn dqn(cfg), "CHECK failed");
}

}  // namespace
}  // namespace elsi
