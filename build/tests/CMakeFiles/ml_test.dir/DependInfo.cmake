
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/decision_tree_test.cc" "tests/CMakeFiles/ml_test.dir/decision_tree_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/decision_tree_test.cc.o.d"
  "/root/repo/tests/dqn_test.cc" "tests/CMakeFiles/ml_test.dir/dqn_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/dqn_test.cc.o.d"
  "/root/repo/tests/ffn_test.cc" "tests/CMakeFiles/ml_test.dir/ffn_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/ffn_test.cc.o.d"
  "/root/repo/tests/kmeans_test.cc" "tests/CMakeFiles/ml_test.dir/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/kmeans_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/ml_test.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/matrix_test.cc.o.d"
  "/root/repo/tests/pla_test.cc" "tests/CMakeFiles/ml_test.dir/pla_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/pla_test.cc.o.d"
  "/root/repo/tests/random_forest_test.cc" "tests/CMakeFiles/ml_test.dir/random_forest_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/random_forest_test.cc.o.d"
  "/root/repo/tests/scaler_test.cc" "tests/CMakeFiles/ml_test.dir/scaler_test.cc.o" "gcc" "tests/CMakeFiles/ml_test.dir/scaler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_traditional.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
