file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/decision_tree_test.cc.o"
  "CMakeFiles/ml_test.dir/decision_tree_test.cc.o.d"
  "CMakeFiles/ml_test.dir/dqn_test.cc.o"
  "CMakeFiles/ml_test.dir/dqn_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ffn_test.cc.o"
  "CMakeFiles/ml_test.dir/ffn_test.cc.o.d"
  "CMakeFiles/ml_test.dir/kmeans_test.cc.o"
  "CMakeFiles/ml_test.dir/kmeans_test.cc.o.d"
  "CMakeFiles/ml_test.dir/matrix_test.cc.o"
  "CMakeFiles/ml_test.dir/matrix_test.cc.o.d"
  "CMakeFiles/ml_test.dir/pla_test.cc.o"
  "CMakeFiles/ml_test.dir/pla_test.cc.o.d"
  "CMakeFiles/ml_test.dir/random_forest_test.cc.o"
  "CMakeFiles/ml_test.dir/random_forest_test.cc.o.d"
  "CMakeFiles/ml_test.dir/scaler_test.cc.o"
  "CMakeFiles/ml_test.dir/scaler_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
