
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flood_test.cc" "tests/CMakeFiles/learned_test.dir/flood_test.cc.o" "gcc" "tests/CMakeFiles/learned_test.dir/flood_test.cc.o.d"
  "/root/repo/tests/learned_test.cc" "tests/CMakeFiles/learned_test.dir/learned_test.cc.o" "gcc" "tests/CMakeFiles/learned_test.dir/learned_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_traditional.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
