file(REMOVE_RECURSE
  "../bench/bench_fig14_knn"
  "../bench/bench_fig14_knn.pdb"
  "CMakeFiles/bench_fig14_knn.dir/bench_fig14_knn.cc.o"
  "CMakeFiles/bench_fig14_knn.dir/bench_fig14_knn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
