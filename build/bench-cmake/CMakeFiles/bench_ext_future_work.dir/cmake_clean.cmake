file(REMOVE_RECURSE
  "../bench/bench_ext_future_work"
  "../bench/bench_ext_future_work.pdb"
  "CMakeFiles/bench_ext_future_work.dir/bench_ext_future_work.cc.o"
  "CMakeFiles/bench_ext_future_work.dir/bench_ext_future_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
