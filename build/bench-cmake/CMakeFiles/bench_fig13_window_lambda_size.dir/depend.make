# Empty dependencies file for bench_fig13_window_lambda_size.
# This may be replaced when dependencies are built.
