file(REMOVE_RECURSE
  "../bench/bench_fig15_updates"
  "../bench/bench_fig15_updates.pdb"
  "CMakeFiles/bench_fig15_updates.dir/bench_fig15_updates.cc.o"
  "CMakeFiles/bench_fig15_updates.dir/bench_fig15_updates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
