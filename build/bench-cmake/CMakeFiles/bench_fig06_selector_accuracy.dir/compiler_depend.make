# Empty compiler generated dependencies file for bench_fig06_selector_accuracy.
# This may be replaced when dependencies are built.
