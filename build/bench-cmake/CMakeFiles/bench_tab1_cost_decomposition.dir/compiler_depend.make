# Empty compiler generated dependencies file for bench_tab1_cost_decomposition.
# This may be replaced when dependencies are built.
