file(REMOVE_RECURSE
  "../bench/bench_tab1_cost_decomposition"
  "../bench/bench_tab1_cost_decomposition.pdb"
  "CMakeFiles/bench_tab1_cost_decomposition.dir/bench_tab1_cost_decomposition.cc.o"
  "CMakeFiles/bench_tab1_cost_decomposition.dir/bench_tab1_cost_decomposition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_cost_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
