# Empty dependencies file for bench_fig12_window_query.
# This may be replaced when dependencies are built.
