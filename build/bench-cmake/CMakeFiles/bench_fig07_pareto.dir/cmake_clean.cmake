file(REMOVE_RECURSE
  "../bench/bench_fig07_pareto"
  "../bench/bench_fig07_pareto.pdb"
  "CMakeFiles/bench_fig07_pareto.dir/bench_fig07_pareto.cc.o"
  "CMakeFiles/bench_fig07_pareto.dir/bench_fig07_pareto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
