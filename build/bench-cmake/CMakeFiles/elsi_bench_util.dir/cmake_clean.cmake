file(REMOVE_RECURSE
  "CMakeFiles/elsi_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/elsi_bench_util.dir/bench_util.cc.o.d"
  "libelsi_bench_util.a"
  "libelsi_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
