# Empty dependencies file for elsi_bench_util.
# This may be replaced when dependencies are built.
