file(REMOVE_RECURSE
  "libelsi_bench_util.a"
)
