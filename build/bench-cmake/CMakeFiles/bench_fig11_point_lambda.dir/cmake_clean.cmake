file(REMOVE_RECURSE
  "../bench/bench_fig11_point_lambda"
  "../bench/bench_fig11_point_lambda.pdb"
  "CMakeFiles/bench_fig11_point_lambda.dir/bench_fig11_point_lambda.cc.o"
  "CMakeFiles/bench_fig11_point_lambda.dir/bench_fig11_point_lambda.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_point_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
