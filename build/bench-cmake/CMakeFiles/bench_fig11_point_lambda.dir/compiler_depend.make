# Empty compiler generated dependencies file for bench_fig11_point_lambda.
# This may be replaced when dependencies are built.
