file(REMOVE_RECURSE
  "CMakeFiles/elsi_cli.dir/elsi_cli.cc.o"
  "CMakeFiles/elsi_cli.dir/elsi_cli.cc.o.d"
  "elsi_cli"
  "elsi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
