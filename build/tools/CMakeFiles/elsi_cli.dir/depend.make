# Empty dependencies file for elsi_cli.
# This may be replaced when dependencies are built.
