# Empty dependencies file for taxi_updates.
# This may be replaced when dependencies are built.
