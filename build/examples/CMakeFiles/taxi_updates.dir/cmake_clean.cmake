file(REMOVE_RECURSE
  "CMakeFiles/taxi_updates.dir/taxi_updates.cpp.o"
  "CMakeFiles/taxi_updates.dir/taxi_updates.cpp.o.d"
  "taxi_updates"
  "taxi_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
