file(REMOVE_RECURSE
  "CMakeFiles/build_methods_tour.dir/build_methods_tour.cpp.o"
  "CMakeFiles/build_methods_tour.dir/build_methods_tour.cpp.o.d"
  "build_methods_tour"
  "build_methods_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_methods_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
