# Empty compiler generated dependencies file for build_methods_tour.
# This may be replaced when dependencies are built.
