file(REMOVE_RECURSE
  "CMakeFiles/elsi_traditional.dir/traditional/grid_index.cc.o"
  "CMakeFiles/elsi_traditional.dir/traditional/grid_index.cc.o.d"
  "CMakeFiles/elsi_traditional.dir/traditional/hrr_tree.cc.o"
  "CMakeFiles/elsi_traditional.dir/traditional/hrr_tree.cc.o.d"
  "CMakeFiles/elsi_traditional.dir/traditional/kdb_tree.cc.o"
  "CMakeFiles/elsi_traditional.dir/traditional/kdb_tree.cc.o.d"
  "CMakeFiles/elsi_traditional.dir/traditional/rstar_tree.cc.o"
  "CMakeFiles/elsi_traditional.dir/traditional/rstar_tree.cc.o.d"
  "CMakeFiles/elsi_traditional.dir/traditional/rtree_common.cc.o"
  "CMakeFiles/elsi_traditional.dir/traditional/rtree_common.cc.o.d"
  "libelsi_traditional.a"
  "libelsi_traditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
