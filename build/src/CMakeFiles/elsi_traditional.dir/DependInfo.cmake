
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traditional/grid_index.cc" "src/CMakeFiles/elsi_traditional.dir/traditional/grid_index.cc.o" "gcc" "src/CMakeFiles/elsi_traditional.dir/traditional/grid_index.cc.o.d"
  "/root/repo/src/traditional/hrr_tree.cc" "src/CMakeFiles/elsi_traditional.dir/traditional/hrr_tree.cc.o" "gcc" "src/CMakeFiles/elsi_traditional.dir/traditional/hrr_tree.cc.o.d"
  "/root/repo/src/traditional/kdb_tree.cc" "src/CMakeFiles/elsi_traditional.dir/traditional/kdb_tree.cc.o" "gcc" "src/CMakeFiles/elsi_traditional.dir/traditional/kdb_tree.cc.o.d"
  "/root/repo/src/traditional/rstar_tree.cc" "src/CMakeFiles/elsi_traditional.dir/traditional/rstar_tree.cc.o" "gcc" "src/CMakeFiles/elsi_traditional.dir/traditional/rstar_tree.cc.o.d"
  "/root/repo/src/traditional/rtree_common.cc" "src/CMakeFiles/elsi_traditional.dir/traditional/rtree_common.cc.o" "gcc" "src/CMakeFiles/elsi_traditional.dir/traditional/rtree_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elsi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
