file(REMOVE_RECURSE
  "libelsi_traditional.a"
)
