# Empty dependencies file for elsi_traditional.
# This may be replaced when dependencies are built.
