file(REMOVE_RECURSE
  "CMakeFiles/elsi_learned.dir/learned/flood_index.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/flood_index.cc.o.d"
  "CMakeFiles/elsi_learned.dir/learned/lisa_index.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/lisa_index.cc.o.d"
  "CMakeFiles/elsi_learned.dir/learned/ml_index.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/ml_index.cc.o.d"
  "CMakeFiles/elsi_learned.dir/learned/rank_model.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/rank_model.cc.o.d"
  "CMakeFiles/elsi_learned.dir/learned/rsmi_index.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/rsmi_index.cc.o.d"
  "CMakeFiles/elsi_learned.dir/learned/segmented_array.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/segmented_array.cc.o.d"
  "CMakeFiles/elsi_learned.dir/learned/zm_index.cc.o"
  "CMakeFiles/elsi_learned.dir/learned/zm_index.cc.o.d"
  "libelsi_learned.a"
  "libelsi_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
