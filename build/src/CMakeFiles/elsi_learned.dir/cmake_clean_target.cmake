file(REMOVE_RECURSE
  "libelsi_learned.a"
)
