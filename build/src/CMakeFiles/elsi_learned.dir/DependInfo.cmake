
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learned/flood_index.cc" "src/CMakeFiles/elsi_learned.dir/learned/flood_index.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/flood_index.cc.o.d"
  "/root/repo/src/learned/lisa_index.cc" "src/CMakeFiles/elsi_learned.dir/learned/lisa_index.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/lisa_index.cc.o.d"
  "/root/repo/src/learned/ml_index.cc" "src/CMakeFiles/elsi_learned.dir/learned/ml_index.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/ml_index.cc.o.d"
  "/root/repo/src/learned/rank_model.cc" "src/CMakeFiles/elsi_learned.dir/learned/rank_model.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/rank_model.cc.o.d"
  "/root/repo/src/learned/rsmi_index.cc" "src/CMakeFiles/elsi_learned.dir/learned/rsmi_index.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/rsmi_index.cc.o.d"
  "/root/repo/src/learned/segmented_array.cc" "src/CMakeFiles/elsi_learned.dir/learned/segmented_array.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/segmented_array.cc.o.d"
  "/root/repo/src/learned/zm_index.cc" "src/CMakeFiles/elsi_learned.dir/learned/zm_index.cc.o" "gcc" "src/CMakeFiles/elsi_learned.dir/learned/zm_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elsi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
