# Empty compiler generated dependencies file for elsi_learned.
# This may be replaced when dependencies are built.
