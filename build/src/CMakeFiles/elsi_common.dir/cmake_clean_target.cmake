file(REMOVE_RECURSE
  "libelsi_common.a"
)
