# Empty compiler generated dependencies file for elsi_common.
# This may be replaced when dependencies are built.
