
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cdf.cc" "src/CMakeFiles/elsi_common.dir/common/cdf.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/common/cdf.cc.o.d"
  "/root/repo/src/common/geometry.cc" "src/CMakeFiles/elsi_common.dir/common/geometry.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/common/geometry.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/elsi_common.dir/common/random.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/common/random.cc.o.d"
  "/root/repo/src/curve/hilbert.cc" "src/CMakeFiles/elsi_common.dir/curve/hilbert.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/curve/hilbert.cc.o.d"
  "/root/repo/src/curve/zorder.cc" "src/CMakeFiles/elsi_common.dir/curve/zorder.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/curve/zorder.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/elsi_common.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/elsi_common.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/CMakeFiles/elsi_common.dir/data/workload.cc.o" "gcc" "src/CMakeFiles/elsi_common.dir/data/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
