file(REMOVE_RECURSE
  "CMakeFiles/elsi_common.dir/common/cdf.cc.o"
  "CMakeFiles/elsi_common.dir/common/cdf.cc.o.d"
  "CMakeFiles/elsi_common.dir/common/geometry.cc.o"
  "CMakeFiles/elsi_common.dir/common/geometry.cc.o.d"
  "CMakeFiles/elsi_common.dir/common/random.cc.o"
  "CMakeFiles/elsi_common.dir/common/random.cc.o.d"
  "CMakeFiles/elsi_common.dir/curve/hilbert.cc.o"
  "CMakeFiles/elsi_common.dir/curve/hilbert.cc.o.d"
  "CMakeFiles/elsi_common.dir/curve/zorder.cc.o"
  "CMakeFiles/elsi_common.dir/curve/zorder.cc.o.d"
  "CMakeFiles/elsi_common.dir/data/dataset.cc.o"
  "CMakeFiles/elsi_common.dir/data/dataset.cc.o.d"
  "CMakeFiles/elsi_common.dir/data/synthetic.cc.o"
  "CMakeFiles/elsi_common.dir/data/synthetic.cc.o.d"
  "CMakeFiles/elsi_common.dir/data/workload.cc.o"
  "CMakeFiles/elsi_common.dir/data/workload.cc.o.d"
  "libelsi_common.a"
  "libelsi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
