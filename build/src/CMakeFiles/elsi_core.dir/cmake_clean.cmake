file(REMOVE_RECURSE
  "CMakeFiles/elsi_core.dir/core/build_processor.cc.o"
  "CMakeFiles/elsi_core.dir/core/build_processor.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/method_scorer.cc.o"
  "CMakeFiles/elsi_core.dir/core/method_scorer.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/method_selector.cc.o"
  "CMakeFiles/elsi_core.dir/core/method_selector.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/methods/clustering.cc.o"
  "CMakeFiles/elsi_core.dir/core/methods/clustering.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/methods/model_reuse.cc.o"
  "CMakeFiles/elsi_core.dir/core/methods/model_reuse.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/methods/reinforcement.cc.o"
  "CMakeFiles/elsi_core.dir/core/methods/reinforcement.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/methods/representative_set.cc.o"
  "CMakeFiles/elsi_core.dir/core/methods/representative_set.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/methods/sampling.cc.o"
  "CMakeFiles/elsi_core.dir/core/methods/sampling.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/rebuild_predictor.cc.o"
  "CMakeFiles/elsi_core.dir/core/rebuild_predictor.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/scorer_trainer.cc.o"
  "CMakeFiles/elsi_core.dir/core/scorer_trainer.cc.o.d"
  "CMakeFiles/elsi_core.dir/core/update_processor.cc.o"
  "CMakeFiles/elsi_core.dir/core/update_processor.cc.o.d"
  "libelsi_core.a"
  "libelsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
