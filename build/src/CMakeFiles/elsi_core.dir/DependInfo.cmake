
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/build_processor.cc" "src/CMakeFiles/elsi_core.dir/core/build_processor.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/build_processor.cc.o.d"
  "/root/repo/src/core/method_scorer.cc" "src/CMakeFiles/elsi_core.dir/core/method_scorer.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/method_scorer.cc.o.d"
  "/root/repo/src/core/method_selector.cc" "src/CMakeFiles/elsi_core.dir/core/method_selector.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/method_selector.cc.o.d"
  "/root/repo/src/core/methods/clustering.cc" "src/CMakeFiles/elsi_core.dir/core/methods/clustering.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/methods/clustering.cc.o.d"
  "/root/repo/src/core/methods/model_reuse.cc" "src/CMakeFiles/elsi_core.dir/core/methods/model_reuse.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/methods/model_reuse.cc.o.d"
  "/root/repo/src/core/methods/reinforcement.cc" "src/CMakeFiles/elsi_core.dir/core/methods/reinforcement.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/methods/reinforcement.cc.o.d"
  "/root/repo/src/core/methods/representative_set.cc" "src/CMakeFiles/elsi_core.dir/core/methods/representative_set.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/methods/representative_set.cc.o.d"
  "/root/repo/src/core/methods/sampling.cc" "src/CMakeFiles/elsi_core.dir/core/methods/sampling.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/methods/sampling.cc.o.d"
  "/root/repo/src/core/rebuild_predictor.cc" "src/CMakeFiles/elsi_core.dir/core/rebuild_predictor.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/rebuild_predictor.cc.o.d"
  "/root/repo/src/core/scorer_trainer.cc" "src/CMakeFiles/elsi_core.dir/core/scorer_trainer.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/scorer_trainer.cc.o.d"
  "/root/repo/src/core/update_processor.cc" "src/CMakeFiles/elsi_core.dir/core/update_processor.cc.o" "gcc" "src/CMakeFiles/elsi_core.dir/core/update_processor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elsi_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_traditional.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/elsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
