# Empty dependencies file for elsi_core.
# This may be replaced when dependencies are built.
