file(REMOVE_RECURSE
  "libelsi_core.a"
)
