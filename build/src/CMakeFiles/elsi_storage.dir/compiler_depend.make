# Empty compiler generated dependencies file for elsi_storage.
# This may be replaced when dependencies are built.
