file(REMOVE_RECURSE
  "CMakeFiles/elsi_storage.dir/storage/block_store.cc.o"
  "CMakeFiles/elsi_storage.dir/storage/block_store.cc.o.d"
  "CMakeFiles/elsi_storage.dir/storage/delta_buffer.cc.o"
  "CMakeFiles/elsi_storage.dir/storage/delta_buffer.cc.o.d"
  "libelsi_storage.a"
  "libelsi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
