file(REMOVE_RECURSE
  "libelsi_storage.a"
)
