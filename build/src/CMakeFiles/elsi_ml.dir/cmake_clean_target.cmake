file(REMOVE_RECURSE
  "libelsi_ml.a"
)
