
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/elsi_ml.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/dqn.cc" "src/CMakeFiles/elsi_ml.dir/ml/dqn.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/dqn.cc.o.d"
  "/root/repo/src/ml/ffn.cc" "src/CMakeFiles/elsi_ml.dir/ml/ffn.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/ffn.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/elsi_ml.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/CMakeFiles/elsi_ml.dir/ml/matrix.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/matrix.cc.o.d"
  "/root/repo/src/ml/pla.cc" "src/CMakeFiles/elsi_ml.dir/ml/pla.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/pla.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/elsi_ml.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/CMakeFiles/elsi_ml.dir/ml/scaler.cc.o" "gcc" "src/CMakeFiles/elsi_ml.dir/ml/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/elsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
