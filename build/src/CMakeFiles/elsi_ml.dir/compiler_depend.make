# Empty compiler generated dependencies file for elsi_ml.
# This may be replaced when dependencies are built.
