file(REMOVE_RECURSE
  "CMakeFiles/elsi_ml.dir/ml/decision_tree.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/decision_tree.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/dqn.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/dqn.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/ffn.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/ffn.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/kmeans.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/kmeans.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/matrix.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/matrix.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/pla.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/pla.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/random_forest.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/random_forest.cc.o.d"
  "CMakeFiles/elsi_ml.dir/ml/scaler.cc.o"
  "CMakeFiles/elsi_ml.dir/ml/scaler.cc.o.d"
  "libelsi_ml.a"
  "libelsi_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsi_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
