#ifndef ELSI_SHARD_OPERATORS_H_
#define ELSI_SHARD_OPERATORS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/spatial_index.h"

namespace elsi {
namespace shard {

/// Batched spatial analytics operators. They accept any SpatialIndex and
/// ride its batched window path — over a ShardedIndex that is the
/// scatter-gather plan with PR 2 per-shard batch kernels under the hood.
/// Output orders are deterministic, so an operator result over N shards is
/// comparable bit-exactly against the same operator over a single index —
/// the property the equivalence tests pin.

/// One (region, point) match of a containment join.
struct RegionMatch {
  size_t region = 0;  // Index into the `regions` argument.
  Point point;
};

/// Joins `regions` with the indexed points: every (region i, point p) pair
/// with p inside regions[i]. Output order: ascending region index, points
/// in canonical (x, y, id) order within a region.
std::vector<RegionMatch> ContainmentJoin(const SpatialIndex& index,
                                         std::span<const Rect> regions,
                                         const BatchQueryOptions& opts = {});

/// One (probe, point) match of a distance join.
struct DistanceMatch {
  size_t probe = 0;  // Index into the `probes` argument.
  Point point;
  double d2 = 0.0;  // Squared distance probe -> point.
};

/// Joins `probes` with the indexed points: every (probe i, point p) pair
/// with |p - probes[i]| <= radius. Output order: ascending probe index,
/// then ascending (d2, id) within a probe. Distances use the dispatched
/// squared-distance kernel (bit-identical to SquaredDistance).
std::vector<DistanceMatch> DistanceJoin(const SpatialIndex& index,
                                        std::span<const Point> probes,
                                        double radius,
                                        const BatchQueryOptions& opts = {});

/// Per-region aggregate of the points inside it.
struct RegionAggregate {
  size_t count = 0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  Rect mbr;  // Empty when count == 0.
};

/// Aggregates the indexed points per region. out[i] covers regions[i].
/// Sums accumulate over the canonical (x, y, id) point order, so they are
/// bit-identical to an oracle aggregating its own canonical window result —
/// float addition order never diverges between sharded and single-index.
std::vector<RegionAggregate> AggregateByRegion(
    const SpatialIndex& index, std::span<const Rect> regions,
    const BatchQueryOptions& opts = {});

}  // namespace shard
}  // namespace elsi

#endif  // ELSI_SHARD_OPERATORS_H_
