#ifndef ELSI_SHARD_SHARDED_INDEX_H_
#define ELSI_SHARD_SHARDED_INDEX_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "shard/local_shard.h"
#include "shard/partition.h"
#include "shard/shard_client.h"

namespace elsi {
namespace shard {

struct ShardedIndexConfig {
  PartitionConfig partition;
  /// Per-shard ELSI stack (used by the default LocalShard factory).
  LocalShardConfig shard;
  /// Planner pool: shard builds and per-shard fan-out run as tasks on it
  /// (the caller participates). Null = serial.
  ThreadPool* pool = nullptr;
};

/// Creates the shard with the given id. The default makes a LocalShard from
/// ShardedIndexConfig::shard; tests and future transports inject their own.
using ShardFactory = std::function<std::unique_ptr<ShardClient>(size_t)>;

/// The sharded scatter-gather engine (see DESIGN.md, "Sharded
/// scatter-gather"). Build plans a SpacePartitioner over the data, buckets
/// the points, and builds one independent ELSI instance per shard in
/// parallel. Queries are planned against the partitioner and the per-shard
/// extents:
///
///  * PointQuery routes to exactly one shard (the partitioner owns the
///    point's curve key / grid cell).
///  * WindowQuery fans out only to shards whose extent intersects the
///    window, merges the per-shard canonical runs, and re-pins canonical
///    order — bit-identical to a single index over the same data whenever
///    the shard kind is exact.
///  * KnnQuery visits shards best-first by extent distance and stops as
///    soon as the kth-neighbour bound beats every unvisited shard (ties
///    visit, so results stay exact).
///
/// Batched entry points group each chunk's queries per shard and push them
/// through the shards' batched paths; chunk boundaries and per-shard
/// sub-batches depend only on the queries, so answers are identical at
/// every planner thread count.
///
/// Implements SpatialIndex so the CLI, persistence, and benches drive it
/// like any other index.
class ShardedIndex : public SpatialIndex {
 public:
  explicit ShardedIndex(const ShardedIndexConfig& config = {},
                        ShardFactory factory = nullptr);

  std::string Name() const override;
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts = {}) const override;
  void WindowQueryBatch(std::span<const Rect> ws,
                        std::span<std::vector<Point>> out,
                        const BatchQueryOptions& opts = {}) const override;
  void KnnQueryBatch(std::span<const Point> qs, size_t k,
                     std::span<std::vector<Point>> out,
                     const BatchQueryOptions& opts = {}) const override;
  size_t size() const override;
  int Depth() const override;
  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

  /// Per-query planner telemetry for KnnQueryCounted.
  struct KnnStats {
    size_t shards_considered = 0;  // Non-empty shards ranked by the planner.
    size_t shards_visited = 0;     // Shards actually queried.
  };

  /// KnnQuery with the visit counters exposed (bench + pruning tests).
  std::vector<Point> KnnQueryCounted(const Point& q, size_t k,
                                     KnnStats* stats) const;

  size_t shard_count() const { return shards_.size(); }
  const SpacePartitioner& partitioner() const { return partitioner_; }
  const ShardClient& shard(size_t i) const { return *shards_[i]; }
  const ShardedIndexConfig& config() const { return config_; }

  /// max / mean of per-shard point counts (1.0 = perfectly balanced,
  /// 0.0 = no data).
  double SkewRatio() const;

  /// Shards currently reporting model-health degradation.
  size_t DegradedCount() const;

  /// Publishes the shard.* gauges (count, per-shard points, skew permille,
  /// degraded count) consumed by /varz and the /healthz shard block. Called
  /// after Build/LoadState; call again to refresh after updates.
  void UpdateShardMetrics() const;

 private:
  /// Lazily creates the shard set (single shard over a unit domain) so
  /// Insert works before any Build.
  void EnsureShards();

  /// Shards whose extent intersects `w`, ascending ids.
  std::vector<uint32_t> WindowTargets(const Rect& w) const;

  ShardedIndexConfig config_;
  ShardFactory factory_;
  SpacePartitioner partitioner_;
  std::vector<std::unique_ptr<ShardClient>> shards_;
};

}  // namespace shard
}  // namespace elsi

#endif  // ELSI_SHARD_SHARDED_INDEX_H_
