#include "shard/partition.h"

#include <algorithm>
#include <cmath>

#include "curve/hilbert.h"

namespace elsi {
namespace shard {

namespace {

/// Positive-extent domain for the quantizer: the data bounding box, padded
/// on any degenerate axis (single point, collinear data, empty input).
Rect QuantizerDomain(const std::vector<Point>& data) {
  Rect r = BoundingRect(data);
  if (r.empty()) return Rect::Of(0.0, 0.0, 1.0, 1.0);
  if (r.hi_x <= r.lo_x) r.hi_x = r.lo_x + 1.0;
  if (r.hi_y <= r.lo_y) r.hi_y = r.lo_y + 1.0;
  return r;
}

size_t ClampIndex(double v, size_t cells) {
  if (!(v > 0.0)) return 0;  // NaN-safe lower clamp.
  const size_t idx = static_cast<size_t>(v);
  return idx >= cells ? cells - 1 : idx;
}

}  // namespace

const char* PartitionCurveName(PartitionCurve curve) {
  return curve == PartitionCurve::kHilbert ? "hilbert" : "z";
}

const char* PartitionModeName(PartitionMode mode) {
  return mode == PartitionMode::kGrid ? "grid" : "curve";
}

void SpacePartitioner::Plan(const PartitionConfig& config,
                            const std::vector<Point>& data) {
  config_ = config;
  if (config_.shards == 0) config_.shards = 1;
  if (config_.sample_target == 0) config_.sample_target = 1;
  domain_ = QuantizerDomain(data);
  quantizer_.emplace(domain_);
  grid_cols_ = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(config_.shards))));
  grid_rows_ = (config_.shards + grid_cols_ - 1) / grid_cols_;
  splits_.assign(config_.shards - 1, 0);
  if (config_.mode == PartitionMode::kGrid || config_.shards == 1) return;

  // Balanced splits over the sample CDF: systematic sample (every stride-th
  // point), sort by curve key, cut at the i/shards quantiles. Duplicate keys
  // at a cut produce equal consecutive splits, i.e. empty middle shards —
  // never a duplicate key split across two shards, because routing compares
  // keys, not positions.
  std::vector<uint64_t> keys;
  if (!data.empty()) {
    const size_t stride =
        std::max<size_t>(1, data.size() / config_.sample_target);
    keys.reserve(data.size() / stride + 1);
    for (size_t i = 0; i < data.size(); i += stride) keys.push_back(KeyOf(data[i]));
    std::sort(keys.begin(), keys.end());
  }
  if (keys.empty()) return;  // All splits 0: shard 0 owns every key.
  for (size_t i = 1; i < config_.shards; ++i) {
    const size_t at = std::min(keys.size() - 1, i * keys.size() / config_.shards);
    splits_[i - 1] = keys[at];
  }
  // Quantile rounding can produce a decreasing pair when shards > sample
  // size; re-pin monotonicity so the ranges stay well formed.
  for (size_t i = 1; i < splits_.size(); ++i) {
    splits_[i] = std::max(splits_[i], splits_[i - 1]);
  }
}

uint64_t SpacePartitioner::KeyOf(const Point& p) const {
  const uint32_t qx = quantizer_->QuantizeX(p.x);
  const uint32_t qy = quantizer_->QuantizeY(p.y);
  return config_.curve == PartitionCurve::kHilbert ? HilbertEncode(qx, qy, 32)
                                                   : MortonEncode(qx, qy);
}

uint32_t SpacePartitioner::ShardOf(const Point& p) const {
  if (config_.shards == 1) return 0;
  if (config_.mode == PartitionMode::kGrid) {
    const Rect& d = domain_;
    const size_t col = ClampIndex(
        (p.x - d.lo_x) / (d.hi_x - d.lo_x) * static_cast<double>(grid_cols_),
        grid_cols_);
    const size_t row = ClampIndex(
        (p.y - d.lo_y) / (d.hi_y - d.lo_y) * static_cast<double>(grid_rows_),
        grid_rows_);
    const size_t idx = row * grid_cols_ + col;
    return static_cast<uint32_t>(std::min(idx, config_.shards - 1));
  }
  const uint64_t key = KeyOf(p);
  // Shard = count of splits <= key: keys below splits[0] land in shard 0,
  // keys equal to splits[i-1] in shard i (half-open ranges).
  return static_cast<uint32_t>(
      std::upper_bound(splits_.begin(), splits_.end(), key) - splits_.begin());
}

void SpacePartitioner::Save(persist::Writer& w) const {
  w.U64(config_.shards);
  w.U8(static_cast<uint8_t>(config_.mode));
  w.U8(static_cast<uint8_t>(config_.curve));
  w.U64(config_.sample_target);
  persist::PutRect(w, domain_);
  w.U64Vec(splits_);
}

bool SpacePartitioner::Load(persist::Reader& r) {
  config_.shards = r.U64();
  config_.mode = static_cast<PartitionMode>(r.U8());
  config_.curve = static_cast<PartitionCurve>(r.U8());
  config_.sample_target = r.U64();
  domain_ = persist::GetRect(r);
  if (!r.U64Vec(&splits_) || config_.shards == 0 ||
      splits_.size() != config_.shards - 1 || domain_.empty()) {
    return r.Fail();
  }
  quantizer_.emplace(domain_);
  grid_cols_ = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(config_.shards))));
  grid_rows_ = (config_.shards + grid_cols_ - 1) / grid_cols_;
  return r.ok();
}

}  // namespace shard
}  // namespace elsi
