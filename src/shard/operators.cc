#include "shard/operators.h"

#include <algorithm>

#include "common/knn.h"
#include "obs/metrics.h"

namespace elsi {
namespace shard {

std::vector<RegionMatch> ContainmentJoin(const SpatialIndex& index,
                                         std::span<const Rect> regions,
                                         const BatchQueryOptions& opts) {
  obs::GetCounter("shard.op.containment_join").Add(1);
  std::vector<std::vector<Point>> windows(regions.size());
  index.WindowQueryBatch(regions, windows, opts);
  size_t total = 0;
  for (const auto& pts : windows) total += pts.size();
  std::vector<RegionMatch> out;
  out.reserve(total);
  for (size_t i = 0; i < windows.size(); ++i) {
    for (const Point& p : windows[i]) out.push_back({i, p});
  }
  return out;
}

std::vector<DistanceMatch> DistanceJoin(const SpatialIndex& index,
                                        std::span<const Point> probes,
                                        double radius,
                                        const BatchQueryOptions& opts) {
  obs::GetCounter("shard.op.distance_join").Add(1);
  const double r = radius < 0.0 ? 0.0 : radius;
  const double r2 = r * r;
  std::vector<Rect> windows;
  windows.reserve(probes.size());
  for (const Point& p : probes) {
    windows.push_back(Rect::Of(p.x - r, p.y - r, p.x + r, p.y + r));
  }
  std::vector<std::vector<Point>> candidates(probes.size());
  index.WindowQueryBatch(windows, candidates, opts);
  std::vector<DistanceMatch> out;
  for (size_t i = 0; i < probes.size(); ++i) {
    knn::FilterWithinRadius(probes[i], r2, &candidates[i]);
    const size_t start = out.size();
    for (const Point& p : candidates[i]) {
      out.push_back({i, p, SquaredDistance(probes[i], p)});
    }
    std::sort(out.begin() + start, out.end(),
              [](const DistanceMatch& a, const DistanceMatch& b) {
                return a.d2 != b.d2 ? a.d2 < b.d2 : a.point.id < b.point.id;
              });
  }
  return out;
}

std::vector<RegionAggregate> AggregateByRegion(const SpatialIndex& index,
                                               std::span<const Rect> regions,
                                               const BatchQueryOptions& opts) {
  obs::GetCounter("shard.op.aggregate_by_region").Add(1);
  std::vector<std::vector<Point>> windows(regions.size());
  index.WindowQueryBatch(regions, windows, opts);
  std::vector<RegionAggregate> out(regions.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    RegionAggregate& agg = out[i];
    // The window result is canonical, so this accumulation order — and
    // therefore every float sum — is identical for any index over the data.
    for (const Point& p : windows[i]) {
      ++agg.count;
      agg.sum_x += p.x;
      agg.sum_y += p.y;
      agg.mbr.Extend(p);
    }
  }
  return out;
}

}  // namespace shard
}  // namespace elsi
