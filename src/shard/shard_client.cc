#include "shard/shard_client.h"

namespace elsi {
namespace shard {

bool ShardClient::SaveState(persist::Writer&) const { return false; }

bool ShardClient::LoadState(persist::Reader&) { return false; }

}  // namespace shard
}  // namespace elsi
