#include "shard/local_shard.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/model_health.h"
#include "obs/trace.h"
#include "persist/io.h"

namespace elsi {
namespace shard {

const char* ShardHealthName(size_t id) {
  static std::mutex mu;
  // Leaked on purpose: QueryScope keeps the pointer beyond any scope we
  // could tie it to, so the names must live for the process lifetime.
  static std::vector<const std::string*>* names =
      new std::vector<const std::string*>();
  std::lock_guard<std::mutex> lock(mu);
  while (names->size() <= id) {
    names->push_back(new std::string("shard" + std::to_string(names->size())));
  }
  return (*names)[id]->c_str();
}

LocalShard::LocalShard(size_t id, const LocalShardConfig& config)
    : id_(id), config_(config), health_name_(ShardHealthName(id)) {
  if (config_.elsi) {
    trainer_ = MakeElsiProcessor(config_.kind, config_.build, config_.selector);
  } else {
    trainer_ = std::make_shared<DirectTrainer>(config_.build.model);
  }
  concurrent::ConcurrentIndexConfig cc;
  cc.merge_threshold = config_.merge_threshold;
  index_ = std::make_unique<concurrent::ConcurrentIndex>(
      MakeBase(), [this] { return MakeBase(); }, cc);
}

std::unique_ptr<SpatialIndex> LocalShard::MakeBase() const {
  return MakeBaseIndex(config_.kind, trainer_, config_.scale);
}

std::string LocalShard::Name() const {
  return std::string(health_name_) + ":" + index_->Name();
}

size_t LocalShard::PointCount() const { return index_->size(); }

Rect LocalShard::Extent() const {
  std::lock_guard<std::mutex> lock(extent_mu_);
  return extent_;
}

void LocalShard::Build(const std::vector<Point>& data) {
  index_->Build(data);
  {
    std::lock_guard<std::mutex> lock(extent_mu_);
    extent_ = BoundingRect(data);
  }
  obs::ModelHealthMonitor::Get().OnBuild(health_name_);
}

void LocalShard::Insert(const Point& p) {
  index_->Insert(p);
  std::lock_guard<std::mutex> lock(extent_mu_);
  extent_.Extend(p);
}

bool LocalShard::Remove(const Point& p) {
  // The extent stays a superset bound: shrinking it exactly would need a
  // scan, and an over-approximation only costs pruning precision.
  return index_->Remove(p);
}

bool LocalShard::PointQuery(const Point& q, Point* out) const {
  // health_name_ ("shard<i>") has static storage, so it doubles as the
  // span name: the per-shard breakdown in /debug/slow keys off it.
  obs::ScopedSpan span(health_name_);
  obs::QueryScope scope(health_name_, obs::QueryKind::kPoint);
  return index_->PointQuery(q, out);
}

std::vector<Point> LocalShard::WindowQuery(const Rect& w) const {
  obs::ScopedSpan span(health_name_);
  obs::QueryScope scope(health_name_, obs::QueryKind::kWindow);
  return index_->WindowQuery(w);
}

std::vector<Point> LocalShard::KnnQuery(const Point& q, size_t k) const {
  obs::ScopedSpan span(health_name_);
  obs::QueryScope scope(health_name_, obs::QueryKind::kKnn);
  return index_->KnnQuery(q, k);
}

void LocalShard::PointQueryBatch(std::span<const Point> qs,
                                 std::span<uint8_t> hit, std::span<Point> out,
                                 const BatchQueryOptions& opts) const {
  obs::ScopedSpan span(health_name_);
  index_->PointQueryBatch(qs, hit, out, opts);
}

void LocalShard::WindowQueryBatch(std::span<const Rect> ws,
                                  std::span<std::vector<Point>> out,
                                  const BatchQueryOptions& opts) const {
  obs::ScopedSpan span(health_name_);
  index_->WindowQueryBatch(ws, out, opts);
}

bool LocalShard::Degraded() const {
  for (const obs::IndexHealth& h : obs::ModelHealthMonitor::Get().Snapshot()) {
    if (h.index == health_name_) return h.degraded;
  }
  return false;
}

int LocalShard::Depth() const { return index_->Depth(); }

bool LocalShard::SaveState(persist::Writer& w) const {
  // Fold any delta so the base alone is the complete state; the wrapper's
  // unique_ptr lets a const shard run this maintenance on its index.
  if (index_->delta_count() > 0) index_->MergeNow();
  Rect extent;
  {
    std::lock_guard<std::mutex> lock(extent_mu_);
    extent = extent_;
  }
  persist::PutRect(w, extent);
  return index_->UnsafeBase()->SaveState(w);
}

bool LocalShard::LoadState(persist::Reader& r) {
  const Rect extent = persist::GetRect(r);
  std::unique_ptr<SpatialIndex> base = MakeBase();
  if (!base->LoadState(r) || !r.ok()) return false;
  concurrent::ConcurrentIndexConfig cc;
  cc.merge_threshold = config_.merge_threshold;
  index_ = std::make_unique<concurrent::ConcurrentIndex>(
      std::move(base), [this] { return MakeBase(); }, cc);
  {
    std::lock_guard<std::mutex> lock(extent_mu_);
    extent_ = extent;
  }
  obs::ModelHealthMonitor::Get().OnBuild(health_name_);
  return true;
}

}  // namespace shard
}  // namespace elsi
