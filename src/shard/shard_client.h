#ifndef ELSI_SHARD_SHARD_CLIENT_H_
#define ELSI_SHARD_SHARD_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/spatial_index.h"

namespace elsi {
namespace persist {
class Writer;
class Reader;
}  // namespace persist

namespace shard {

/// Transport-agnostic handle to one shard, the only surface the
/// scatter-gather planner talks to. LocalShard (shard-per-thread, this
/// process) is the first implementation; a remote client speaking to the
/// PR 5 HTTP server slots in behind the same interface for the future
/// multi-process mode, which is why nothing here exposes the underlying
/// SpatialIndex object.
///
/// Contracts the planner relies on:
///  * Extent() is a superset bound: it contains every point the shard
///    currently stores (it may over-approximate after removals). An empty
///    Rect means the shard stores nothing.
///  * WindowQuery returns canonical (x, y, id) order — the engine merges
///    per-shard runs without re-checking.
///  * KnnQuery returns (distance, id)-ordered results like any
///    SpatialIndex, and is exact whenever the wrapped index kind is exact.
///  * The batch entry points follow BatchQueryOptions determinism: answers
///    are identical at every thread count.
class ShardClient {
 public:
  virtual ~ShardClient() = default;

  virtual std::string Name() const = 0;

  /// Points currently stored (exact when writers are externally
  /// serialized, like ConcurrentIndex::size()).
  virtual size_t PointCount() const = 0;

  /// Bounding rectangle of the shard's contents (see contract above).
  virtual Rect Extent() const = 0;

  /// Replaces the shard's contents. Called once per shard, in parallel, by
  /// the engine's Build.
  virtual void Build(const std::vector<Point>& data) = 0;

  virtual void Insert(const Point& p) = 0;
  virtual bool Remove(const Point& p) = 0;

  virtual bool PointQuery(const Point& q, Point* out) const = 0;
  virtual std::vector<Point> WindowQuery(const Rect& w) const = 0;
  virtual std::vector<Point> KnnQuery(const Point& q, size_t k) const = 0;

  virtual void PointQueryBatch(std::span<const Point> qs,
                               std::span<uint8_t> hit, std::span<Point> out,
                               const BatchQueryOptions& opts) const = 0;
  virtual void WindowQueryBatch(std::span<const Rect> ws,
                                std::span<std::vector<Point>> out,
                                const BatchQueryOptions& opts) const = 0;

  /// True when the shard's model-health monitor currently reports drift
  /// (always false for transports that do not expose health).
  virtual bool Degraded() const { return false; }

  /// Index depth of the shard (planner telemetry; 1 when unknown).
  virtual int Depth() const { return 1; }

  /// Serializes / restores the shard's complete state. Default: not
  /// supported (e.g. remote shards persist on their own node).
  virtual bool SaveState(persist::Writer& w) const;
  virtual bool LoadState(persist::Reader& r);
};

}  // namespace shard
}  // namespace elsi

#endif  // ELSI_SHARD_SHARD_CLIENT_H_
