#include "shard/sharded_index.h"

#include <algorithm>
#include <utility>

#include "common/knn.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/io.h"

namespace elsi {
namespace shard {

ShardedIndex::ShardedIndex(const ShardedIndexConfig& config,
                           ShardFactory factory)
    : config_(config), factory_(std::move(factory)) {
  if (!factory_) {
    factory_ = [this](size_t id) -> std::unique_ptr<ShardClient> {
      return std::make_unique<LocalShard>(id, config_.shard);
    };
  }
}

std::string ShardedIndex::Name() const {
  const size_t n = shards_.empty() ? config_.partition.shards : shards_.size();
  return "Sharded[" + std::to_string(n) + "x" +
         BaseIndexKindName(config_.shard.kind) +
         (config_.shard.elsi ? "-F" : "") + "]";
}

void ShardedIndex::EnsureShards() {
  if (!shards_.empty()) return;
  if (!partitioner_.planned()) partitioner_.Plan(config_.partition, {});
  shards_.reserve(partitioner_.shard_count());
  for (size_t i = 0; i < partitioner_.shard_count(); ++i) {
    shards_.push_back(factory_(i));
  }
}

void ShardedIndex::Build(const std::vector<Point>& data) {
  partitioner_.Plan(config_.partition, data);
  shards_.clear();
  shards_.reserve(partitioner_.shard_count());
  for (size_t i = 0; i < partitioner_.shard_count(); ++i) {
    shards_.push_back(factory_(i));
  }
  // Stable bucketing: shard-relative data order equals the input order, so
  // shard builds are deterministic in (config, data).
  ELSI_TRACE_SPAN("shard.build");
  std::vector<std::vector<Point>> buckets(shards_.size());
  for (const Point& p : data) buckets[partitioner_.ShardOf(p)].push_back(p);
  TaskGroup group(config_.pool);
  for (size_t i = 0; i < shards_.size(); ++i) {
    group.Run([this, &buckets, i] { shards_[i]->Build(buckets[i]); });
  }
  group.Wait();
  UpdateShardMetrics();
}

void ShardedIndex::Insert(const Point& p) {
  EnsureShards();
  shards_[partitioner_.ShardOf(p)]->Insert(p);
}

bool ShardedIndex::Remove(const Point& p) {
  if (shards_.empty()) return false;
  return shards_[partitioner_.ShardOf(p)]->Remove(p);
}

bool ShardedIndex::PointQuery(const Point& q, Point* out) const {
  if (shards_.empty()) return false;
  ELSI_TRACE_QUERY_SPAN("shard.query.point");
  obs::GetCounter("shard.query.point").Add(1);
  return shards_[partitioner_.ShardOf(q)]->PointQuery(q, out);
}

std::vector<uint32_t> ShardedIndex::WindowTargets(const Rect& w) const {
  std::vector<uint32_t> targets;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Rect extent = shards_[i]->Extent();
    if (!extent.empty() && extent.Intersects(w)) {
      targets.push_back(static_cast<uint32_t>(i));
    }
  }
  return targets;
}

std::vector<Point> ShardedIndex::WindowQuery(const Rect& w) const {
  ELSI_TRACE_QUERY_SPAN("shard.query.window");
  obs::GetCounter("shard.query.window").Add(1);
  const std::vector<uint32_t> targets = WindowTargets(w);
  obs::GetCounter("shard.window.shards_visited").Add(targets.size());
  std::vector<std::vector<Point>> parts(targets.size());
  TaskGroup group(config_.pool);
  for (size_t j = 0; j < targets.size(); ++j) {
    group.Run([this, &parts, &targets, &w, j] {
      parts[j] = shards_[targets[j]]->WindowQuery(w);
    });
  }
  group.Wait();
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<Point> out;
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  // Each shard run is canonical but the runs interleave; one sort re-pins
  // the global canonical order (bit-identical to a single-index answer).
  SortCanonical(&out);
  return out;
}

std::vector<Point> ShardedIndex::KnnQueryCounted(const Point& q, size_t k,
                                                 KnnStats* stats) const {
  struct Ranked {
    double d2;
    uint32_t id;
  };
  std::vector<Ranked> order;
  order.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Rect extent = shards_[i]->Extent();
    if (extent.empty()) continue;
    order.push_back({extent.MinSquaredDistance(q), static_cast<uint32_t>(i)});
  }
  std::sort(order.begin(), order.end(), [](const Ranked& a, const Ranked& b) {
    return a.d2 != b.d2 ? a.d2 < b.d2 : a.id < b.id;
  });
  std::vector<Point> best;
  double bound = std::numeric_limits<double>::infinity();
  size_t visited = 0;
  for (const Ranked& e : order) {
    // Prune only strictly-worse shards: a shard at exactly the bound may
    // hold an equal-distance, lower-id point, and ids break ties.
    if (best.size() >= k && e.d2 > bound) break;
    std::vector<Point> cand = shards_[e.id]->KnnQuery(q, k);
    ++visited;
    best.insert(best.end(), cand.begin(), cand.end());
    bound = knn::SelectNearest(q, k, &best);
  }
  obs::GetCounter("shard.knn.shards_visited").Add(visited);
  if (stats != nullptr) {
    stats->shards_considered = order.size();
    stats->shards_visited = visited;
  }
  return best;
}

std::vector<Point> ShardedIndex::KnnQuery(const Point& q, size_t k) const {
  ELSI_TRACE_QUERY_SPAN("shard.query.knn");
  obs::GetCounter("shard.query.knn").Add(1);
  return KnnQueryCounted(q, k, nullptr);
}

void ShardedIndex::PointQueryBatch(std::span<const Point> qs,
                                   std::span<uint8_t> hit,
                                   std::span<Point> out,
                                   const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  if (shards_.empty()) {
    for (size_t i = 0; i < qs.size(); ++i) hit[i] = 0;
    return;
  }
  ELSI_TRACE_QUERY_SPAN("shard.batch.point");
  obs::GetCounter("shard.query.point").Add(qs.size());
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    // Scatter the chunk per owning shard, push each group through the
    // shard's batched path (serial within the chunk — parallelism comes
    // from chunks), gather into the callers' slots.
    std::vector<std::vector<size_t>> groups(shards_.size());
    for (size_t i = begin; i < end; ++i) {
      hit[i] = 0;
      groups[partitioner_.ShardOf(qs[i])].push_back(i);
    }
    std::vector<Point> sub_q;
    std::vector<uint8_t> sub_hit;
    std::vector<Point> sub_out;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (groups[s].empty()) continue;
      sub_q.clear();
      for (size_t i : groups[s]) sub_q.push_back(qs[i]);
      sub_hit.assign(sub_q.size(), 0);
      sub_out.assign(sub_q.size(), Point{});
      shards_[s]->PointQueryBatch(sub_q, sub_hit, sub_out, {});
      for (size_t j = 0; j < groups[s].size(); ++j) {
        if (sub_hit[j] != 0) {
          hit[groups[s][j]] = 1;
          out[groups[s][j]] = sub_out[j];
        }
      }
    }
  });
}

void ShardedIndex::WindowQueryBatch(std::span<const Rect> ws,
                                    std::span<std::vector<Point>> out,
                                    const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), ws.size());
  ELSI_TRACE_QUERY_SPAN("shard.batch.window");
  obs::GetCounter("shard.query.window").Add(ws.size());
  ForEachQueryChunk(ws.size(), opts, [&](size_t begin, size_t end) {
    std::vector<std::vector<size_t>> groups(shards_.size());
    size_t fanout = 0;
    for (size_t i = begin; i < end; ++i) {
      out[i].clear();
      for (uint32_t s : WindowTargets(ws[i])) groups[s].push_back(i);
    }
    std::vector<Rect> sub_w;
    std::vector<std::vector<Point>> sub_out;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (groups[s].empty()) continue;
      fanout += groups[s].size();
      sub_w.clear();
      for (size_t i : groups[s]) sub_w.push_back(ws[i]);
      sub_out.assign(sub_w.size(), {});
      shards_[s]->WindowQueryBatch(sub_w, sub_out, {});
      // Shards are walked in ascending id order, so the append order into
      // each out[i] is deterministic; the final sort pins canonical order.
      for (size_t j = 0; j < groups[s].size(); ++j) {
        auto& dst = out[groups[s][j]];
        dst.insert(dst.end(), sub_out[j].begin(), sub_out[j].end());
      }
    }
    for (size_t i = begin; i < end; ++i) SortCanonical(&out[i]);
    obs::GetCounter("shard.window.shards_visited").Add(fanout);
  });
}

void ShardedIndex::KnnQueryBatch(std::span<const Point> qs, size_t k,
                                 std::span<std::vector<Point>> out,
                                 const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), qs.size());
  ELSI_TRACE_QUERY_SPAN("shard.batch.knn");
  obs::GetCounter("shard.query.knn").Add(qs.size());
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = KnnQueryCounted(qs[i], k, nullptr);
    }
  });
}

size_t ShardedIndex::size() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->PointCount();
  return total;
}

int ShardedIndex::Depth() const {
  int depth = 0;
  for (const auto& s : shards_) depth = std::max(depth, s->Depth());
  return depth + 1;  // +1 for the routing layer.
}

double ShardedIndex::SkewRatio() const {
  if (shards_.empty()) return 0.0;
  size_t total = 0;
  size_t peak = 0;
  for (const auto& s : shards_) {
    const size_t n = s->PointCount();
    total += n;
    peak = std::max(peak, n);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(shards_.size());
  return static_cast<double>(peak) / mean;
}

size_t ShardedIndex::DegradedCount() const {
  size_t degraded = 0;
  for (const auto& s : shards_) degraded += s->Degraded() ? 1 : 0;
  return degraded;
}

void ShardedIndex::UpdateShardMetrics() const {
  obs::GetGauge("shard.count").Set(static_cast<int64_t>(shards_.size()));
  for (size_t i = 0; i < shards_.size(); ++i) {
    obs::GetGauge(std::string("shard.points.") + std::to_string(i))
        .Set(static_cast<int64_t>(shards_[i]->PointCount()));
  }
  obs::GetGauge("shard.skew_permille")
      .Set(static_cast<int64_t>(SkewRatio() * 1000.0));
  obs::GetGauge("shard.degraded").Set(static_cast<int64_t>(DegradedCount()));
}

bool ShardedIndex::SaveState(persist::Writer& w) const {
  if (shards_.empty()) return false;
  partitioner_.Save(w);
  w.U64(shards_.size());
  for (const auto& s : shards_) {
    if (!s->SaveState(w)) return false;
  }
  return true;
}

bool ShardedIndex::LoadState(persist::Reader& r) {
  if (!partitioner_.Load(r)) return false;
  const size_t n = r.U64();
  if (!r.ok() || n != partitioner_.shard_count()) return r.Fail();
  config_.partition = partitioner_.config();
  shards_.clear();
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(factory_(i));
    if (!shards_.back()->LoadState(r)) return false;
  }
  UpdateShardMetrics();
  return r.ok();
}

}  // namespace shard
}  // namespace elsi
