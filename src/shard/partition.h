#ifndef ELSI_SHARD_PARTITION_H_
#define ELSI_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/geometry.h"
#include "curve/zorder.h"
#include "persist/io.h"

namespace elsi {
namespace shard {

/// Space-filling curve used to linearize points for curve-range partitioning.
enum class PartitionCurve : uint8_t { kZOrder = 0, kHilbert = 1 };

/// How the plane is carved into shards.
///  * kCurveRange: sort the sample by curve key and cut at balanced
///    quantiles of the sample CDF — shard i owns the key range
///    [split[i-1], split[i]). Adapts to skew; shards are curve segments,
///    not rectangles, so window/kNN pruning uses the per-shard data extents
///    maintained by the engine.
///  * kGrid: a fixed rows x cols tiling of the data bounding box. Cheap and
///    rectangular, but skewed data piles into few tiles.
enum class PartitionMode : uint8_t { kCurveRange = 0, kGrid = 1 };

const char* PartitionCurveName(PartitionCurve curve);
const char* PartitionModeName(PartitionMode mode);

struct PartitionConfig {
  size_t shards = 4;
  PartitionMode mode = PartitionMode::kCurveRange;
  PartitionCurve curve = PartitionCurve::kZOrder;
  /// Sample size targeted by the balanced-split planner; the plan reads
  /// every ceil(n / sample_target)-th point, so planning stays O(sample)
  /// regardless of n. Deterministic in the data order.
  size_t sample_target = 1 << 16;
};

/// Plans and answers the point -> shard routing. Planning is deterministic
/// in (config, data): systematic sampling, never RNG. After Plan(), ShardOf
/// routes any point — out-of-domain coordinates are clamped by the
/// quantizer, so inserts outside the build domain route consistently with
/// later queries for the same coordinates.
class SpacePartitioner {
 public:
  SpacePartitioner() = default;

  /// Plans shard boundaries over `data`. Empty data yields a unit-square
  /// domain with every split collapsed to zero (shard 0 owns everything).
  void Plan(const PartitionConfig& config, const std::vector<Point>& data);

  bool planned() const { return quantizer_.has_value(); }
  size_t shard_count() const { return config_.shards; }
  const PartitionConfig& config() const { return config_; }

  /// Bounding box the quantizer was fit to (padded to positive extent).
  const Rect& domain() const { return domain_; }

  /// Ascending split keys, size shards - 1. Shard i owns curve keys in
  /// [splits[i-1], splits[i]) (first/last unbounded below/above). Equal
  /// consecutive splits make the shard between them empty — that is how
  /// N > distinct-key counts degrade.
  const std::vector<uint64_t>& splits() const { return splits_; }

  /// Curve key of `p` under the planned quantizer (kCurveRange mode).
  uint64_t KeyOf(const Point& p) const;

  /// The shard owning `p`. All points with equal coordinates — duplicate
  /// curve keys included — map to the same shard, so duplicates never
  /// straddle a boundary.
  uint32_t ShardOf(const Point& p) const;

  void Save(persist::Writer& w) const;
  bool Load(persist::Reader& r);

 private:
  PartitionConfig config_;
  Rect domain_;
  std::optional<GridQuantizer> quantizer_;
  std::vector<uint64_t> splits_;  // kCurveRange: shards - 1 keys.
  size_t grid_cols_ = 0;          // kGrid tiling.
  size_t grid_rows_ = 0;
};

}  // namespace shard
}  // namespace elsi

#endif  // ELSI_SHARD_PARTITION_H_
