#ifndef ELSI_SHARD_LOCAL_SHARD_H_
#define ELSI_SHARD_LOCAL_SHARD_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/concurrent_index.h"
#include "core/elsi.h"
#include "shard/shard_client.h"

namespace elsi {
namespace shard {

/// Interned per-shard metric name ("shard0", "shard1", ...). The returned
/// pointer has static storage duration, as obs::QueryScope requires.
const char* ShardHealthName(size_t id);

/// How each in-process shard assembles its ELSI stack.
struct LocalShardConfig {
  BaseIndexKind kind = BaseIndexKind::kZM;
  /// true: train through a BuildProcessor (the ELSI "-F" pipeline); false:
  /// the OG DirectTrainer baseline.
  bool elsi = true;
  BaseIndexScale scale;
  BuildProcessorConfig build;
  /// Selector driving the build processor. Null picks the first enabled
  /// method (SP), which keeps shard builds deterministic; shards sharing a
  /// selector is safe (BuildProcessor serializes its calls).
  std::shared_ptr<MethodSelector> selector;
  /// ConcurrentIndex auto-merge threshold (0 = manual merges only).
  size_t merge_threshold = 0;
};

/// One in-process shard: an independent ELSI instance — its own trainer
/// (BuildProcessor or DirectTrainer), its own base index, wrapped in a
/// ConcurrentIndex for lock-free serving — plus the per-shard extent the
/// planner prunes with and per-shard observability (flight-recorder scopes
/// and model-health registration under ShardHealthName(id)).
class LocalShard : public ShardClient {
 public:
  LocalShard(size_t id, const LocalShardConfig& config);

  LocalShard(const LocalShard&) = delete;
  LocalShard& operator=(const LocalShard&) = delete;

  std::string Name() const override;
  size_t PointCount() const override;
  Rect Extent() const override;
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts) const override;
  void WindowQueryBatch(std::span<const Rect> ws,
                        std::span<std::vector<Point>> out,
                        const BatchQueryOptions& opts) const override;
  bool Degraded() const override;
  int Depth() const override;
  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

  size_t id() const { return id_; }

  /// The serving wrapper (test/benchmark access).
  concurrent::ConcurrentIndex* index() { return index_.get(); }

 private:
  std::unique_ptr<SpatialIndex> MakeBase() const;

  size_t id_;
  LocalShardConfig config_;
  const char* health_name_;  // Interned; static storage duration.
  std::shared_ptr<ModelTrainer> trainer_;
  std::unique_ptr<concurrent::ConcurrentIndex> index_;
  mutable std::mutex extent_mu_;
  Rect extent_;  // Superset bound; grows on insert, kept on remove.
};

}  // namespace shard
}  // namespace elsi

#endif  // ELSI_SHARD_LOCAL_SHARD_H_
