#include "persist/model_cache.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "persist/io.h"
#include "persist/snapshot.h"

namespace elsi {
namespace persist {
namespace {

constexpr char kCacheMagic[8] = {'E', 'L', 'S', 'I', 'C', 'C', 'H', '\x01'};
constexpr uint32_t kCacheVersion = 1;

/// Frames a typed payload: magic, version, kind tag, CRC, length, payload.
std::string FrameCache(const std::string& kind, const std::string& payload) {
  Writer w;
  w.Bytes(kCacheMagic, sizeof(kCacheMagic));
  w.U32(kCacheVersion);
  w.Str(kind);
  w.U32(Crc32(payload));
  w.U64(payload.size());
  w.Bytes(payload.data(), payload.size());
  return w.Take();
}

/// Verifies the frame and returns the payload view, or false on any
/// mismatch (wrong magic/version/kind, truncated, CRC failure).
bool UnframeCache(const std::string& file, const std::string& kind,
                  std::string_view* payload) {
  if (file.size() < sizeof(kCacheMagic) ||
      std::memcmp(file.data(), kCacheMagic, sizeof(kCacheMagic)) != 0) {
    return false;
  }
  Reader r(file.data() + sizeof(kCacheMagic),
           file.size() - sizeof(kCacheMagic));
  if (r.U32() != kCacheVersion) return false;
  if (r.Str() != kind) return false;
  const uint32_t crc = r.U32();
  const uint64_t len = r.U64();
  if (!r.ok() || len != r.remaining()) return false;
  std::string_view body(file.data() + file.size() - len, len);
  if (Crc32(body.data(), body.size()) != crc) return false;
  *payload = body;
  return true;
}

bool ParseScorerCsv(const std::string& path, std::vector<ScorerSample>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    int method_id = 0;
    ScorerSample s;
    char c = 0;
    if (!(ss >> method_id >> c >> s.log10_n >> c >> s.dissimilarity >> c >>
          s.build_cost >> c >> s.query_cost)) {
      return false;
    }
    s.method = static_cast<BuildMethodId>(method_id);
    out->push_back(s);
  }
  return !out->empty();
}

bool ParseRebuildCsv(const std::string& path, std::vector<RebuildSample>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    RebuildSample s;
    char c = 0;
    if (!(ss >> s.features.log10_n >> c >> s.features.dissimilarity >> c >>
          s.features.depth >> c >> s.features.update_ratio >> c >>
          s.features.cdf_similarity >> c >> s.label)) {
      return false;
    }
    out->push_back(s);
  }
  return !out->empty();
}

/// Candidate legacy CSV locations: the cache directory, then the CWD (where
/// the pre-binary benches always wrote).
std::vector<std::string> LegacyCandidates(const std::string& dir,
                                          const char* name) {
  std::vector<std::string> paths = {dir + "/" + name};
  if (dir != ".") paths.push_back(std::string(name));
  return paths;
}

}  // namespace

std::string CacheDir() {
  const char* env = std::getenv("ELSI_CACHE_DIR");
  return (env != nullptr && env[0] != '\0') ? std::string(env)
                                            : std::string(".");
}

std::string ScorerCachePath(const std::string& dir) {
  return dir + "/elsi_scorer_cache.bin";
}

std::string RebuildCachePath(const std::string& dir) {
  return dir + "/elsi_rebuild_cache.bin";
}

bool SaveScorerSamples(const std::string& dir,
                       const std::vector<ScorerSample>& samples) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  Writer payload;
  payload.U64(samples.size());
  for (const ScorerSample& s : samples) {
    payload.U8(static_cast<uint8_t>(s.method));
    payload.F64(s.log10_n);
    payload.F64(s.dissimilarity);
    payload.F64(s.build_cost);
    payload.F64(s.query_cost);
  }
  return AtomicWriteFile(ScorerCachePath(dir),
                         FrameCache("scorer", payload.buffer()));
}

bool LoadScorerSamples(const std::string& dir, std::vector<ScorerSample>* out) {
  out->clear();
  std::string file;
  if (ReadFile(ScorerCachePath(dir), &file)) {
    std::string_view payload;
    if (!UnframeCache(file, "scorer", &payload)) return false;
    Reader r(payload);
    const uint64_t n = r.U64();
    if (n > r.remaining() / 33) return false;  // 1 + 4 * 8 bytes per sample.
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      ScorerSample s;
      s.method = static_cast<BuildMethodId>(r.U8());
      s.log10_n = r.F64();
      s.dissimilarity = r.F64();
      s.build_cost = r.F64();
      s.query_cost = r.F64();
      out->push_back(s);
    }
    return r.ok() && r.remaining() == 0 && !out->empty();
  }
  // One-time import of a legacy CSV cache.
  for (const std::string& csv : LegacyCandidates(dir, "elsi_scorer_cache.csv")) {
    if (ParseScorerCsv(csv, out)) {
      SaveScorerSamples(dir, *out);
      return true;
    }
    out->clear();
  }
  return false;
}

bool SaveRebuildSamples(const std::string& dir,
                        const std::vector<RebuildSample>& samples) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  Writer payload;
  payload.U64(samples.size());
  for (const RebuildSample& s : samples) {
    payload.F64(s.features.log10_n);
    payload.F64(s.features.dissimilarity);
    payload.F64(s.features.depth);
    payload.F64(s.features.update_ratio);
    payload.F64(s.features.cdf_similarity);
    payload.F64(s.label);
  }
  return AtomicWriteFile(RebuildCachePath(dir),
                         FrameCache("rebuild", payload.buffer()));
}

bool LoadRebuildSamples(const std::string& dir,
                        std::vector<RebuildSample>* out) {
  out->clear();
  std::string file;
  if (ReadFile(RebuildCachePath(dir), &file)) {
    std::string_view payload;
    if (!UnframeCache(file, "rebuild", &payload)) return false;
    Reader r(payload);
    const uint64_t n = r.U64();
    if (n > r.remaining() / 48) return false;  // 6 * 8 bytes per sample.
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      RebuildSample s;
      s.features.log10_n = r.F64();
      s.features.dissimilarity = r.F64();
      s.features.depth = r.F64();
      s.features.update_ratio = r.F64();
      s.features.cdf_similarity = r.F64();
      s.label = r.F64();
      out->push_back(s);
    }
    return r.ok() && r.remaining() == 0 && !out->empty();
  }
  for (const std::string& csv :
       LegacyCandidates(dir, "elsi_rebuild_cache.csv")) {
    if (ParseRebuildCsv(csv, out)) {
      SaveRebuildSamples(dir, *out);
      return true;
    }
    out->clear();
  }
  return false;
}

}  // namespace persist
}  // namespace elsi
