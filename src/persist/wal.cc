#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/io.h"

namespace elsi {
namespace persist {
namespace {

constexpr char kWalMagic[8] = {'E', 'L', 'S', 'I', 'W', 'A', 'L', '\x01'};
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = sizeof(kWalMagic) + 4 + 8;
// lsn + op + x + y + id.
constexpr size_t kRecordPayloadBytes = 8 + 1 + 8 + 8 + 8;
constexpr uint32_t kMaxRecordBytes = 1 << 16;

obs::Histogram& AppendUsHistogram() {
  static obs::Histogram& h = obs::GetHistogram(
      "persist.wal.append_us", obs::HistogramSpec::LatencyUs());
  return h;
}

obs::Counter& ReplayedCounter() {
  static obs::Counter& c = obs::GetCounter("persist.wal.replayed");
  return c;
}

obs::Counter& TornTailCounter() {
  static obs::Counter& c = obs::GetCounter("persist.wal.torn_tail");
  return c;
}

std::string EncodeRecord(const WalRecord& rec) {
  Writer payload;
  payload.U64(rec.lsn);
  payload.U8(rec.op);
  payload.F64(rec.p.x);
  payload.F64(rec.p.y);
  payload.U64(rec.p.id);
  Writer framed;
  framed.U32(static_cast<uint32_t>(payload.size()));
  framed.U32(Crc32(payload.buffer()));
  framed.Bytes(payload.buffer().data(), payload.size());
  return framed.Take();
}

/// Scans one segment body (after the header), appending intact records to
/// `out`. Returns false when the segment ends in a torn or corrupt record.
bool DecodeSegment(std::string_view body, std::vector<WalRecord>* out) {
  Reader r(body);
  while (r.remaining() > 0) {
    if (r.remaining() < 8) return false;  // Torn frame header.
    const uint32_t len = r.U32();
    const uint32_t crc = r.U32();
    if (len != kRecordPayloadBytes || len > kMaxRecordBytes ||
        len > r.remaining()) {
      return false;
    }
    const char* payload = body.data() + r.position();
    if (Crc32(payload, len) != crc) return false;
    Reader pr(payload, len);
    WalRecord rec;
    rec.lsn = pr.U64();
    rec.op = pr.U8();
    rec.p.x = pr.F64();
    rec.p.y = pr.F64();
    rec.p.id = pr.U64();
    if (!pr.ok() ||
        (rec.op != kWalOpInsert && rec.op != kWalOpDelete)) {
      return false;
    }
    r.Skip(len);
    out->push_back(rec);
  }
  return true;
}

/// Reads one segment file. Returns false on an unreadable or header-corrupt
/// file; `clean` reports whether the record stream ended cleanly.
bool ReadSegment(const std::string& path, uint64_t* start_lsn,
                 std::vector<WalRecord>* records, bool* clean,
                 size_t* valid_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string file = std::move(buf).str();
  if (file.size() < kWalHeaderBytes ||
      std::memcmp(file.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return false;
  }
  Reader header(file.data() + sizeof(kWalMagic), 12);
  if (header.U32() != kWalVersion) return false;
  *start_lsn = header.U64();
  records->clear();
  *clean = DecodeSegment(
      std::string_view(file).substr(kWalHeaderBytes), records);
  if (valid_bytes != nullptr) {
    *valid_bytes =
        kWalHeaderBytes + records->size() * (8 + kRecordPayloadBytes);
  }
  return true;
}

}  // namespace

std::string WalSegmentPath(const std::string& dir, uint64_t start_lsn) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020llu.log",
                static_cast<unsigned long long>(start_lsn));
  return dir + "/" + name;
}

std::vector<std::pair<uint64_t, std::string>> ListWalSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kPrefix = "wal-";
    constexpr std::string_view kSuffix = ".log";
    if (name.size() != kPrefix.size() + 20 + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    uint64_t lsn = 0;
    bool digits = true;
    for (size_t i = kPrefix.size(); i < kPrefix.size() + 20; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      lsn = lsn * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits) found.emplace_back(lsn, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (fd_ >= 0) {
    if (::fsync(fd_) == 0) durable_lsn_ = next_lsn_ - 1;
    ::close(fd_);
    fd_ = -1;
  }
}

bool WalWriter::RotateLocked() {
  if (fd_ >= 0) {
    if (::fsync(fd_) != 0) return false;
    durable_lsn_ = next_lsn_ - 1;
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = WalSegmentPath(dir_, next_lsn_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return false;
  Writer header;
  header.Bytes(kWalMagic, sizeof(kWalMagic));
  header.U32(kWalVersion);
  header.U64(next_lsn_);
  const std::string& bytes = header.buffer();
  if (::write(fd_, bytes.data(), bytes.size()) !=
      static_cast<ssize_t>(bytes.size())) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  segment_written_ = bytes.size();
  since_sync_ = 0;
  return true;
}

bool WalWriter::Open(const std::string& dir, uint64_t next_lsn,
                     const WalWriterOptions& options) {
  Close();
  dir_ = dir;
  options_ = options;
  next_lsn_ = std::max<uint64_t>(1, next_lsn);
  // Everything already on disk was validated by replay before Open.
  durable_lsn_ = next_lsn_ - 1;

  // Truncate a torn tail off the newest segment so the on-disk log ends at
  // a record boundary before we append after it.
  const auto segments = ListWalSegments(dir);
  if (!segments.empty()) {
    const std::string& newest = segments.back().second;
    uint64_t start_lsn = 0;
    std::vector<WalRecord> records;
    bool clean = false;
    size_t valid_bytes = 0;
    if (ReadSegment(newest, &start_lsn, &records, &clean, &valid_bytes)) {
      if (!clean) {
        std::error_code ec;
        std::filesystem::resize_file(newest, valid_bytes, ec);
        if (ec) return false;
      }
    } else {
      // Header-corrupt newest segment: quarantine rather than append to it.
      std::error_code ec;
      std::filesystem::rename(newest, newest + ".corrupt", ec);
    }
  }
  return RotateLocked();
}

uint64_t WalWriter::Append(uint8_t op, const Point& p) {
  ELSI_CHECK(fd_ >= 0) << "WAL not open";
  ScopedTimer timer(&AppendUsHistogram());
  WalRecord rec;
  rec.lsn = next_lsn_++;
  rec.op = op;
  rec.p = p;
  const std::string framed = EncodeRecord(rec);
  size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + written, framed.size() - written);
    ELSI_CHECK(n > 0) << "WAL append failed";
    written += static_cast<size_t>(n);
  }
  segment_written_ += framed.size();
  if (options_.fsync_every > 0 && ++since_sync_ >= options_.fsync_every) {
    ELSI_TRACE_SPAN("wal.group_commit_fsync");
    if (::fsync(fd_) == 0) durable_lsn_ = rec.lsn;
    since_sync_ = 0;
  }
  if (segment_written_ >= options_.segment_bytes) {
    ELSI_CHECK(RotateLocked()) << "WAL rotation failed";
  }
  return rec.lsn;
}

bool WalWriter::Sync() {
  if (fd_ < 0) return false;
  ELSI_TRACE_SPAN("wal.fsync");
  since_sync_ = 0;
  if (::fsync(fd_) != 0) return false;
  durable_lsn_ = next_lsn_ - 1;
  return true;
}

void WalWriter::TruncateThrough(uint64_t through_lsn) {
  const auto segments = ListWalSegments(dir_);
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i holds LSNs [start_i, start_{i+1}); removable when every one
    // of them is at or below the floor.
    if (segments[i + 1].first <= through_lsn + 1) {
      std::error_code ec;
      std::filesystem::remove(segments[i].second, ec);
    }
  }
}

bool WalReplay(const std::string& dir, uint64_t after_lsn,
               const std::function<void(const WalRecord&)>& apply,
               WalReplayStats* stats) {
  WalReplayStats local;
  const auto segments = ListWalSegments(dir);
  for (size_t i = 0; i < segments.size(); ++i) {
    uint64_t start_lsn = 0;
    std::vector<WalRecord> records;
    bool clean = false;
    if (!ReadSegment(segments[i].second, &start_lsn, &records, &clean,
                     nullptr)) {
      // An unreadable segment is tolerable only as the newest file.
      if (i + 1 == segments.size()) {
        local.torn_tail = true;
        break;
      }
      return false;
    }
    if (!clean) {
      local.torn_tail = true;
      if (i + 1 != segments.size()) {
        // A torn record in the middle of the log means later segments were
        // written after a corruption — refuse to replay past it.
        return false;
      }
    }
    for (const WalRecord& rec : records) {
      if (rec.lsn <= after_lsn) {
        ++local.skipped;
        continue;
      }
      apply(rec);
      ++local.applied;
      local.last_lsn = rec.lsn;
    }
  }
  local.last_lsn = std::max(local.last_lsn, after_lsn);
  ReplayedCounter().Add(local.applied);
  if (local.torn_tail) TornTailCounter().Add();
  if (stats != nullptr) *stats = local;
  return true;
}

}  // namespace persist
}  // namespace elsi
