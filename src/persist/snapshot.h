#ifndef ELSI_PERSIST_SNAPSHOT_H_
#define ELSI_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/spatial_index.h"
#include "learned/rank_model.h"

namespace elsi {
namespace persist {

/// Header fields of a snapshot file (the "meta" section).
struct SnapshotMeta {
  /// SpatialIndex::Name() of the saved index ("ZM", "Grid", "RR*", ...).
  std::string kind;
  /// Point count at save time (sanity-checked against the loaded index).
  uint64_t count = 0;
  /// LSN of the last WAL record already reflected in the snapshot; replay
  /// resumes strictly after it.
  uint64_t last_lsn = 0;
};

struct SnapshotLoadOptions {
  /// Trainer wired into re-created learned indices (used by later rebuilds,
  /// not by the load itself). Null falls back to a DirectTrainer.
  std::shared_ptr<ModelTrainer> trainer;
  /// Worker pool handed to re-created indices; null means global.
  ThreadPool* pool = nullptr;
};

/// Versioned, checksummed index snapshots. A snapshot is a sectioned binary
/// file — magic, format version, then (name, length, CRC-32, payload) per
/// section — holding a "meta" section and an "index" section produced by
/// SpatialIndex::SaveState. Every section's CRC is verified before a byte of
/// it is decoded, so truncation and bit flips are detected up front.
class Snapshot {
 public:
  /// Serializes `index` and atomically writes it to `path` (tmp file +
  /// fsync + rename + directory fsync): the file is either the complete new
  /// snapshot or absent, never a torn prefix. Returns false when the index
  /// does not support SaveState or on I/O failure.
  static bool Save(const SpatialIndex& index, const std::string& path,
                   uint64_t last_lsn = 0);

  /// Reads, verifies, and decodes a snapshot, re-creating the index by its
  /// recorded kind. Returns nullptr on any corruption (bad magic, section
  /// CRC mismatch, truncated payload, malformed state) — never a partially
  /// loaded index. Fills `meta` (if non-null) on success.
  static std::unique_ptr<SpatialIndex> Load(const std::string& path,
                                            const SnapshotLoadOptions& opts = {},
                                            SnapshotMeta* meta = nullptr);

  /// Verifies magic, version, and every section CRC without decoding the
  /// index payload. Fills `meta` (if non-null) when valid.
  static bool Validate(const std::string& path, SnapshotMeta* meta = nullptr);
};

/// Snapshot file name for sequence number `seq` ("snapshot-<seq 16-digit>.snap").
std::string SnapshotPath(const std::string& dir, uint64_t seq);

/// All snapshot files in `dir` as (sequence, path), ascending by sequence.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir);

/// Creates an empty index of the given SpatialIndex::Name() kind, ready for
/// LoadState. Returns nullptr for unknown kinds.
std::unique_ptr<SpatialIndex> MakeIndexByName(const std::string& kind,
                                              const SnapshotLoadOptions& opts);

/// Writes `bytes` to `path` atomically: write to path + ".tmp", fsync,
/// rename over `path`, fsync the parent directory. Returns false on any
/// failure (the tmp file is cleaned up).
bool AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Reads a whole file into `out`. Returns false when unreadable.
bool ReadFile(const std::string& path, std::string* out);

}  // namespace persist
}  // namespace elsi

#endif  // ELSI_PERSIST_SNAPSHOT_H_
