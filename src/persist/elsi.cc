#include "persist/elsi.h"

#include <algorithm>
#include <filesystem>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {
namespace persist {
namespace {

obs::Counter& RecoveriesCounter() {
  static obs::Counter& c = obs::GetCounter("persist.recoveries");
  return c;
}

obs::Counter& SnapshotsDiscardedCounter() {
  static obs::Counter& c = obs::GetCounter("persist.snapshots_discarded");
  return c;
}

obs::Histogram& RebuildSwapMsHistogram() {
  static obs::Histogram& h = obs::GetHistogram(
      "persist.rebuild_swap_ms", obs::HistogramSpec::LatencyMs());
  return h;
}

/// WAL records appended since the last durable snapshot — the replay debt a
/// crash would incur. Zeroed by checkpoints/rebuild-swaps; read by /healthz.
obs::Gauge& WalLagGauge() {
  static obs::Gauge& g = obs::GetGauge("persist.wal_lag");
  return g;
}

obs::Gauge& SnapshotSeqGauge() {
  static obs::Gauge& g = obs::GetGauge("persist.snapshot_seq");
  return g;
}

}  // namespace

std::unique_ptr<DurableElsi> DurableElsi::OpenOrRecover(
    const std::string& dir, const DurableElsiOptions& opts,
    RecoveryStats* stats) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return nullptr;

  RecoveryStats local;
  auto elsi = std::unique_ptr<DurableElsi>(new DurableElsi());
  elsi->dir_ = dir;
  elsi->opts_ = opts;
  if (elsi->opts_.keep_snapshots == 0) elsi->opts_.keep_snapshots = 1;

  SnapshotLoadOptions load_opts;
  load_opts.trainer = opts.trainer;
  load_opts.pool = opts.pool;

  // Newest snapshot that validates wins; corrupt generations (e.g. a crash
  // mid-rename or a bit flip) are skipped, not fatal.
  SnapshotMeta meta;
  auto snapshots = ListSnapshots(dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::unique_ptr<SpatialIndex> loaded =
        Snapshot::Load(it->second, load_opts, &meta);
    if (loaded != nullptr) {
      elsi->index_ = std::move(loaded);
      elsi->snapshot_seq_ = it->first;
      local.snapshot_loaded = true;
      local.snapshot_seq = it->first;
      break;
    }
    ELSI_LOG(WARN) << "discarding invalid snapshot " << it->second;
    ++local.snapshots_discarded;
  }
  SnapshotsDiscardedCounter().Add(local.snapshots_discarded);

  uint64_t replay_floor = 0;
  std::string kind = opts.kind;
  if (local.snapshot_loaded) {
    replay_floor = meta.last_lsn;
    kind = meta.kind;
  } else {
    elsi->index_ = MakeIndexByName(kind, load_opts);
    if (elsi->index_ == nullptr) return nullptr;
  }

  elsi->processor_ = std::make_unique<UpdateProcessor>(
      elsi->index_.get(), opts.predictor, opts.update);
  if (local.snapshot_loaded) {
    // Register the restored contents as the processor's base set without
    // rebuilding the freshly loaded structure.
    elsi->processor_->AdoptIndex(elsi->index_.get(), elsi->index_->CollectAll(),
                                 /*count_rebuild=*/false);
  } else {
    elsi->processor_->Build({});
  }

  // Replay the WAL tail through the exact live update path. Replay runs
  // read-only and BEFORE WalWriter::Open, so a torn tail is still
  // observable here; rebuilds stay disabled so recovery reproduces the
  // pre-crash state deterministically.
  elsi->processor_->set_rebuild_enabled(false);
  WalReplayStats replay;
  const bool replay_ok = WalReplay(
      dir, replay_floor,
      [&elsi](const WalRecord& rec) {
        if (rec.op == kWalOpInsert) {
          elsi->processor_->Insert(rec.p);
        } else {
          elsi->processor_->Remove(rec.p);  // Absent target: no-op.
        }
      },
      &replay);
  elsi->processor_->set_rebuild_enabled(opts.update.enable_rebuild);
  if (!replay_ok) {
    ELSI_LOG(WARN) << "WAL replay failed in " << dir;
    return nullptr;
  }
  local.wal = replay;
  if (replay.applied > 0 || replay.torn_tail) RecoveriesCounter().Add();

  if (!elsi->wal_.Open(dir, replay.last_lsn + 1, opts.wal)) return nullptr;
  elsi->sink_ = std::make_unique<WalSink>(&elsi->wal_);
  elsi->processor_->set_log_sink(elsi->sink_.get());
  DurableElsi* raw = elsi.get();
  elsi->processor_->set_rebuild_handler([raw] {
    // Runs inside processor_->Insert/Remove with update_mu_ held; defer the
    // actual rebuild-swap to the caller (Insert/Remove below) so it happens
    // outside the processor's own call stack.
    raw->rebuild_requested_ = true;
  });

  SnapshotSeqGauge().Set(static_cast<int64_t>(elsi->snapshot_seq_));
  WalLagGauge().Set(static_cast<int64_t>(replay.applied));

  if (stats != nullptr) *stats = local;
  return elsi;
}

DurableElsi::~DurableElsi() { wal_.Sync(); }

void DurableElsi::Build(const std::vector<Point>& data) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  {
    std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
    processor_->Build(data);
  }
  ELSI_CHECK(CheckpointLocked()) << "initial checkpoint failed";
}

void DurableElsi::Insert(const Point& p) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  {
    std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
    processor_->Insert(p);
  }
  WalLagGauge().Add(1);
  if (rebuild_requested_) {
    rebuild_requested_ = false;
    RebuildSwapLocked();
  }
}

bool DurableElsi::Remove(const Point& p) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  bool removed = false;
  {
    std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
    removed = processor_->Remove(p);
  }
  // Log-before-apply: the WAL record lands even when the target is absent.
  WalLagGauge().Add(1);
  if (rebuild_requested_) {
    rebuild_requested_ = false;
    RebuildSwapLocked();
  }
  return removed;
}

void DurableElsi::RebuildSwapLocked() {
  ELSI_TRACE_SPAN("persist.rebuild_swap");
  ScopedTimer timer(&RebuildSwapMsHistogram());
  // Collect and rebuild off to the side: update_mu_ keeps writers out, but
  // readers continue on the frozen current index the whole time.
  const std::vector<Point> all = index_->CollectAll();
  SnapshotLoadOptions load_opts;
  load_opts.trainer = opts_.trainer;
  load_opts.pool = opts_.pool;
  std::unique_ptr<SpatialIndex> fresh = MakeIndexByName(index_->Name(),
                                                        load_opts);
  ELSI_CHECK(fresh != nullptr);
  fresh->Build(all);

  // Snapshot the replacement BEFORE it takes traffic: write tmp, fsync,
  // rename. A crash at any point leaves either the old or the new
  // generation fully intact.
  const uint64_t last_lsn = wal_.next_lsn() - 1;
  const uint64_t seq = snapshot_seq_ + 1;
  if (!Snapshot::Save(*fresh, SnapshotPath(dir_, seq), last_lsn)) {
    ELSI_LOG(WARN) << "rebuild snapshot failed; keeping old index";
    return;
  }
  {
    std::unique_lock<std::shared_mutex> swap_lock(swap_mu_);
    index_ = std::move(fresh);
    processor_->AdoptIndex(index_.get(), all, /*count_rebuild=*/true);
  }
  snapshot_seq_ = seq;
  PruneSnapshotsLocked();
  wal_.TruncateThrough(last_lsn);
  SnapshotSeqGauge().Set(static_cast<int64_t>(seq));
  WalLagGauge().Set(0);
}

bool DurableElsi::CheckpointLocked() {
  // Everything appended so far is also applied (log-before-apply under the
  // same lock), so the snapshot covers the full prefix of the WAL.
  wal_.Sync();
  const uint64_t last_lsn = wal_.next_lsn() - 1;
  const uint64_t seq = snapshot_seq_ + 1;
  if (!Snapshot::Save(*index_, SnapshotPath(dir_, seq), last_lsn)) {
    return false;
  }
  snapshot_seq_ = seq;
  PruneSnapshotsLocked();
  wal_.TruncateThrough(last_lsn);
  SnapshotSeqGauge().Set(static_cast<int64_t>(seq));
  WalLagGauge().Set(0);
  return true;
}

bool DurableElsi::Checkpoint() {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  return CheckpointLocked();
}

void DurableElsi::PruneSnapshotsLocked() {
  auto snapshots = ListSnapshots(dir_);
  if (snapshots.size() <= opts_.keep_snapshots) return;
  for (size_t i = 0; i + opts_.keep_snapshots < snapshots.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snapshots[i].second, ec);
  }
}

bool DurableElsi::PointQuery(const Point& q, Point* out) const {
  std::shared_lock<std::shared_mutex> lock(swap_mu_);
  return index_->PointQuery(q, out);
}

std::vector<Point> DurableElsi::WindowQuery(const Rect& w) const {
  std::shared_lock<std::shared_mutex> lock(swap_mu_);
  return index_->WindowQuery(w);
}

std::vector<Point> DurableElsi::KnnQuery(const Point& q, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(swap_mu_);
  return index_->KnnQuery(q, k);
}

size_t DurableElsi::size() const {
  std::shared_lock<std::shared_mutex> lock(swap_mu_);
  return index_->size();
}

std::string DurableElsi::kind() const {
  std::shared_lock<std::shared_mutex> lock(swap_mu_);
  return index_->Name();
}

size_t DurableElsi::rebuild_count() const { return processor_->rebuild_count(); }

}  // namespace persist
}  // namespace elsi
