#include "persist/elsi.h"

#include <algorithm>
#include <filesystem>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {
namespace persist {
namespace {

obs::Counter& RecoveriesCounter() {
  static obs::Counter& c = obs::GetCounter("persist.recoveries");
  return c;
}

obs::Counter& SnapshotsDiscardedCounter() {
  static obs::Counter& c = obs::GetCounter("persist.snapshots_discarded");
  return c;
}

obs::Histogram& RebuildSwapMsHistogram() {
  static obs::Histogram& h = obs::GetHistogram(
      "persist.rebuild_swap_ms", obs::HistogramSpec::LatencyMs());
  return h;
}

/// WAL records appended since the last durable snapshot — the replay debt a
/// crash would incur. Zeroed by checkpoints/rebuild-swaps; read by /healthz.
obs::Gauge& WalLagGauge() {
  static obs::Gauge& g = obs::GetGauge("persist.wal_lag");
  return g;
}

obs::Gauge& SnapshotSeqGauge() {
  static obs::Gauge& g = obs::GetGauge("persist.snapshot_seq");
  return g;
}

}  // namespace

std::unique_ptr<DurableElsi> DurableElsi::OpenOrRecover(
    const std::string& dir, const DurableElsiOptions& opts,
    RecoveryStats* stats) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return nullptr;

  RecoveryStats local;
  auto elsi = std::unique_ptr<DurableElsi>(new DurableElsi());
  elsi->dir_ = dir;
  elsi->opts_ = opts;
  if (elsi->opts_.keep_snapshots == 0) elsi->opts_.keep_snapshots = 1;

  SnapshotLoadOptions load_opts;
  load_opts.trainer = opts.trainer;
  load_opts.pool = opts.pool;

  // Newest snapshot that validates wins; corrupt generations (e.g. a crash
  // mid-rename or a bit flip) are skipped, not fatal.
  SnapshotMeta meta;
  std::unique_ptr<SpatialIndex> base;
  auto snapshots = ListSnapshots(dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::unique_ptr<SpatialIndex> loaded =
        Snapshot::Load(it->second, load_opts, &meta);
    if (loaded != nullptr) {
      base = std::move(loaded);
      elsi->snapshot_seq_ = it->first;
      local.snapshot_loaded = true;
      local.snapshot_seq = it->first;
      break;
    }
    ELSI_LOG(WARN) << "discarding invalid snapshot " << it->second;
    ++local.snapshots_discarded;
  }
  SnapshotsDiscardedCounter().Add(local.snapshots_discarded);

  uint64_t replay_floor = 0;
  std::string kind = opts.kind;
  if (local.snapshot_loaded) {
    replay_floor = meta.last_lsn;
    kind = meta.kind;
  } else {
    base = MakeIndexByName(kind, load_opts);
    if (base == nullptr) return nullptr;
  }

  // Wrap the base behind the lock-free serving layer: queries go through
  // the epoch-protected root while writers (serialized below) append to
  // the sharded delta. Auto-merge stays off — every fold must pair with a
  // snapshot here, or WAL replay would double-apply the folded records —
  // so the delta only drains through the rebuild-swap/checkpoint paths.
  elsi->kind_ = kind;
  elsi->base_lsn_ = replay_floor;
  elsi->index_ = std::make_unique<concurrent::ConcurrentIndex>(
      std::move(base),
      [kind, load_opts]() { return MakeIndexByName(kind, load_opts); });

  elsi->processor_ = std::make_unique<UpdateProcessor>(
      elsi->index_.get(), opts.predictor, opts.update);
  if (local.snapshot_loaded) {
    // Register the restored contents as the processor's base set without
    // rebuilding the freshly loaded structure.
    elsi->processor_->AdoptIndex(elsi->index_.get(), elsi->index_->CollectAll(),
                                 /*count_rebuild=*/false);
  } else {
    elsi->processor_->Build({});
  }

  // Replay the WAL tail through the exact live update path. Replay runs
  // read-only and BEFORE WalWriter::Open, so a torn tail is still
  // observable here; rebuilds stay disabled so recovery reproduces the
  // pre-crash state deterministically.
  elsi->processor_->set_rebuild_enabled(false);
  WalReplayStats replay;
  const bool replay_ok = WalReplay(
      dir, replay_floor,
      [&elsi](const WalRecord& rec) {
        if (rec.op == kWalOpInsert) {
          elsi->processor_->Insert(rec.p);
        } else {
          elsi->processor_->Remove(rec.p);  // Absent target: no-op.
        }
      },
      &replay);
  elsi->processor_->set_rebuild_enabled(opts.update.enable_rebuild);
  if (!replay_ok) {
    ELSI_LOG(WARN) << "WAL replay failed in " << dir;
    return nullptr;
  }
  local.wal = replay;
  if (replay.applied > 0 || replay.torn_tail) RecoveriesCounter().Add();

  if (!elsi->wal_.Open(dir, replay.last_lsn + 1, opts.wal)) return nullptr;
  elsi->sink_ = std::make_unique<WalSink>(&elsi->wal_);
  elsi->processor_->set_log_sink(elsi->sink_.get());
  DurableElsi* raw = elsi.get();
  elsi->processor_->set_rebuild_handler([raw] {
    // Runs inside processor_->Insert/Remove with update_mu_ held; defer the
    // actual rebuild-swap to the caller (Insert/Remove below) so it happens
    // outside the processor's own call stack.
    raw->rebuild_requested_ = true;
  });

  SnapshotSeqGauge().Set(static_cast<int64_t>(elsi->snapshot_seq_));
  WalLagGauge().Set(static_cast<int64_t>(replay.applied));

  if (stats != nullptr) *stats = local;
  return elsi;
}

DurableElsi::~DurableElsi() { wal_.Sync(); }

void DurableElsi::Build(const std::vector<Point>& data) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  // Readers keep serving the old generation until the freshly built base is
  // published by one atomic root swap inside the ConcurrentIndex.
  processor_->Build(data);
  ELSI_CHECK(CheckpointLocked()) << "initial checkpoint failed";
}

void DurableElsi::Insert(const Point& p) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  // Log-before-apply: the processor appends the WAL record, then publishes
  // the point into the delta, where concurrent readers pick it up without
  // locking.
  processor_->Insert(p);
  WalLagGauge().Add(1);
  if (rebuild_requested_) {
    rebuild_requested_ = false;
    RebuildSwapLocked();
  }
}

bool DurableElsi::Remove(const Point& p) {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  // Log-before-apply: the WAL record lands even when the target is absent.
  const bool removed = processor_->Remove(p);
  WalLagGauge().Add(1);
  if (rebuild_requested_) {
    rebuild_requested_ = false;
    RebuildSwapLocked();
  }
  return removed;
}

void DurableElsi::RebuildSwapLocked() {
  ELSI_TRACE_SPAN("persist.rebuild_swap");
  ScopedTimer timer(&RebuildSwapMsHistogram());
  // Collect and rebuild off to the side: update_mu_ keeps writers out (so
  // base + delta is a consistent cut), while readers continue on the
  // current generation the whole time.
  const std::vector<Point> all = index_->CollectAll();
  SnapshotLoadOptions load_opts;
  load_opts.trainer = opts_.trainer;
  load_opts.pool = opts_.pool;
  std::unique_ptr<SpatialIndex> fresh = MakeIndexByName(kind_, load_opts);
  ELSI_CHECK(fresh != nullptr);
  fresh->Build(all);

  // Snapshot the replacement BEFORE it takes traffic: write tmp, fsync,
  // rename. A crash at any point leaves either the old or the new
  // generation fully intact.
  const uint64_t last_lsn = wal_.next_lsn() - 1;
  const uint64_t seq = snapshot_seq_ + 1;
  if (!Snapshot::Save(*fresh, SnapshotPath(dir_, seq), last_lsn)) {
    ELSI_LOG(WARN) << "rebuild snapshot failed; keeping old index";
    return;
  }
  // Wait-free for readers: one atomic root exchange publishes the fresh
  // base + empty delta; the old generation is retired through EBR and
  // freed once every in-flight query has left it.
  index_->ReplaceBase(std::move(fresh));
  processor_->AdoptIndex(index_.get(), all, /*count_rebuild=*/true);
  base_lsn_ = last_lsn;
  snapshot_seq_ = seq;
  PruneSnapshotsLocked();
  wal_.TruncateThrough(last_lsn);
  SnapshotSeqGauge().Set(static_cast<int64_t>(seq));
  WalLagGauge().Set(0);
}

bool DurableElsi::CheckpointLocked() {
  wal_.Sync();
  const uint64_t seq = snapshot_seq_ + 1;
  if (index_->delta_count() == 0) {
    // Clean delta: the base alone is the complete applied state, so the
    // snapshot covers the full WAL prefix and the whole log can go.
    const uint64_t last_lsn = wal_.next_lsn() - 1;
    if (!Snapshot::Save(*index_->UnsafeBase(), SnapshotPath(dir_, seq),
                        last_lsn)) {
      return false;
    }
    base_lsn_ = last_lsn;
    snapshot_seq_ = seq;
    PruneSnapshotsLocked();
    wal_.TruncateThrough(last_lsn);
    SnapshotSeqGauge().Set(static_cast<int64_t>(seq));
    WalLagGauge().Set(0);
    return true;
  }
  // Dirty delta: snapshot the folded prefix only (base @ base_lsn_); the
  // WAL tail past it re-creates the delta on recovery. Folding the delta
  // here would mean a full rebuild — that is the rebuild-swap's job.
  if (!Snapshot::Save(*index_->UnsafeBase(), SnapshotPath(dir_, seq),
                      base_lsn_)) {
    return false;
  }
  snapshot_seq_ = seq;
  PruneSnapshotsLocked();
  wal_.TruncateThrough(base_lsn_);
  SnapshotSeqGauge().Set(static_cast<int64_t>(seq));
  WalLagGauge().Set(static_cast<int64_t>(index_->delta_count()));
  return true;
}

bool DurableElsi::Checkpoint() {
  std::lock_guard<std::mutex> update_lock(update_mu_);
  return CheckpointLocked();
}

void DurableElsi::PruneSnapshotsLocked() {
  auto snapshots = ListSnapshots(dir_);
  if (snapshots.size() <= opts_.keep_snapshots) return;
  for (size_t i = 0; i + opts_.keep_snapshots < snapshots.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(snapshots[i].second, ec);
  }
}

// Queries take no lock: the ConcurrentIndex pins an epoch guard, loads the
// serving root, and reads an immutable generation end to end.

bool DurableElsi::PointQuery(const Point& q, Point* out) const {
  return index_->PointQuery(q, out);
}

std::vector<Point> DurableElsi::WindowQuery(const Rect& w) const {
  return index_->WindowQuery(w);
}

std::vector<Point> DurableElsi::KnnQuery(const Point& q, size_t k) const {
  return index_->KnnQuery(q, k);
}

size_t DurableElsi::size() const { return index_->size(); }

std::string DurableElsi::kind() const { return kind_; }

size_t DurableElsi::rebuild_count() const { return processor_->rebuild_count(); }

}  // namespace persist
}  // namespace elsi
