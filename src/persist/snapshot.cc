#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/timer.h"
#include "core/elsi.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/io.h"
#include "traditional/grid_index.h"
#include "traditional/hrr_tree.h"
#include "traditional/kdb_tree.h"
#include "traditional/rstar_tree.h"

namespace elsi {
namespace persist {
namespace {

constexpr char kSnapshotMagic[8] = {'E', 'L', 'S', 'I', 'S', 'N', 'P', '\x01'};
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kMaxSections = 16;
constexpr uint64_t kMaxSectionBytes = 1ull << 40;

obs::Histogram& SaveMsHistogram() {
  static obs::Histogram& h =
      obs::GetHistogram("persist.snapshot.save_ms", obs::HistogramSpec::LatencyMs());
  return h;
}

obs::Histogram& LoadMsHistogram() {
  static obs::Histogram& h =
      obs::GetHistogram("persist.snapshot.load_ms", obs::HistogramSpec::LatencyMs());
  return h;
}

obs::Gauge& SnapshotBytesGauge() {
  static obs::Gauge& g = obs::GetGauge("persist.snapshot.bytes");
  return g;
}

struct Section {
  std::string name;
  std::string_view payload;
};

/// Splits a verified snapshot body into sections, checking each CRC before
/// exposing its payload. Returns false on any structural or checksum error.
bool ParseSections(std::string_view file, std::vector<Section>* out) {
  if (file.size() < sizeof(kSnapshotMagic) + 8) return false;
  if (std::memcmp(file.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return false;
  }
  Reader r(file.substr(sizeof(kSnapshotMagic)));
  const uint32_t version = r.U32();
  if (version != kSnapshotVersion) return false;
  const uint32_t nsections = r.U32();
  if (nsections == 0 || nsections > kMaxSections) return false;
  out->clear();
  for (uint32_t s = 0; s < nsections; ++s) {
    Section section;
    section.name = r.Str();
    const uint64_t len = r.U64();
    const uint32_t crc = r.U32();
    if (!r.ok() || len > kMaxSectionBytes || len > r.remaining()) return false;
    const char* payload =
        file.data() + sizeof(kSnapshotMagic) + r.position();
    if (Crc32(payload, len) != crc) return false;
    section.payload = std::string_view(payload, static_cast<size_t>(len));
    if (!r.Skip(static_cast<size_t>(len))) return false;
    out->push_back(std::move(section));
  }
  return true;
}

bool ParseMeta(std::string_view payload, SnapshotMeta* meta) {
  Reader r(payload);
  meta->kind = r.Str();
  meta->count = r.U64();
  meta->last_lsn = r.U64();
  return r.ok() && !meta->kind.empty();
}

const Section* FindSection(const std::vector<Section>& sections,
                           std::string_view name) {
  for (const Section& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "snapshot-%016llu.snap",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    // snapshot-<16 digits>.snap
    constexpr std::string_view kPrefix = "snapshot-";
    constexpr std::string_view kSuffix = ".snap";
    if (name.size() != kPrefix.size() + 16 + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    uint64_t seq = 0;
    bool digits = true;
    for (size_t i = kPrefix.size(); i < kPrefix.size() + 16; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::unique_ptr<SpatialIndex> MakeIndexByName(const std::string& kind,
                                              const SnapshotLoadOptions& opts) {
  std::shared_ptr<ModelTrainer> trainer = opts.trainer;
  if (trainer == nullptr) trainer = std::make_shared<DirectTrainer>();
  BaseIndexScale scale;
  scale.pool = opts.pool;
  for (BaseIndexKind k : kAllBaseIndexKinds) {
    if (BaseIndexKindName(k) == kind) {
      return MakeBaseIndex(k, std::move(trainer), scale);
    }
  }
  if (kind == "Grid") return std::make_unique<GridIndex>();
  if (kind == "KDB") return std::make_unique<KdbTree>();
  if (kind == "HRR") return std::make_unique<HrrTree>();
  if (kind == "RR*") return std::make_unique<RStarTree>();
  return nullptr;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = std::move(buf).str();
  return static_cast<bool>(in);
}

bool AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool Snapshot::Save(const SpatialIndex& index, const std::string& path,
                    uint64_t last_lsn) {
  ELSI_TRACE_SPAN("persist.snapshot_write");
  ScopedTimer timer(&SaveMsHistogram());
  Writer index_payload;
  if (!index.SaveState(index_payload)) {
    ELSI_LOG(WARN) << "snapshot save: " << index.Name()
                      << " does not support SaveState";
    return false;
  }
  Writer meta_payload;
  meta_payload.Str(index.Name());
  meta_payload.U64(index.size());
  meta_payload.U64(last_lsn);

  Writer file;
  file.Bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  file.U32(kSnapshotVersion);
  file.U32(2);  // Section count.
  const auto append_section = [&file](std::string_view name,
                                      const std::string& payload) {
    file.Str(name);
    file.U64(payload.size());
    file.U32(Crc32(payload));
    file.Bytes(payload.data(), payload.size());
  };
  append_section("meta", meta_payload.buffer());
  append_section("index", index_payload.buffer());
  const size_t bytes = file.size();
  if (!AtomicWriteFile(path, file.Take())) return false;
  SnapshotBytesGauge().Set(static_cast<int64_t>(bytes));
  return true;
}

bool Snapshot::Validate(const std::string& path, SnapshotMeta* meta) {
  std::string file;
  if (!ReadFile(path, &file)) return false;
  std::vector<Section> sections;
  if (!ParseSections(file, &sections)) return false;
  const Section* meta_section = FindSection(sections, "meta");
  const Section* index_section = FindSection(sections, "index");
  if (meta_section == nullptr || index_section == nullptr) return false;
  SnapshotMeta parsed;
  if (!ParseMeta(meta_section->payload, &parsed)) return false;
  if (meta != nullptr) *meta = parsed;
  return true;
}

std::unique_ptr<SpatialIndex> Snapshot::Load(const std::string& path,
                                             const SnapshotLoadOptions& opts,
                                             SnapshotMeta* meta) {
  ScopedTimer timer(&LoadMsHistogram());
  std::string file;
  if (!ReadFile(path, &file)) return nullptr;
  std::vector<Section> sections;
  if (!ParseSections(file, &sections)) return nullptr;
  const Section* meta_section = FindSection(sections, "meta");
  const Section* index_section = FindSection(sections, "index");
  if (meta_section == nullptr || index_section == nullptr) return nullptr;
  SnapshotMeta parsed;
  if (!ParseMeta(meta_section->payload, &parsed)) return nullptr;
  std::unique_ptr<SpatialIndex> index = MakeIndexByName(parsed.kind, opts);
  if (index == nullptr) {
    ELSI_LOG(WARN) << "snapshot load: unknown index kind '" << parsed.kind
                      << "'";
    return nullptr;
  }
  Reader r(index_section->payload);
  if (!index->LoadState(r) || r.remaining() != 0) return nullptr;
  if (index->size() != parsed.count) return nullptr;
  if (meta != nullptr) *meta = parsed;
  return index;
}

}  // namespace persist
}  // namespace elsi
