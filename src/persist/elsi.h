#ifndef ELSI_PERSIST_ELSI_H_
#define ELSI_PERSIST_ELSI_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/concurrent_index.h"
#include "core/elsi.h"
#include "core/update_processor.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace elsi {
namespace persist {

struct DurableElsiOptions {
  /// Index kind created when the directory has no snapshot yet
  /// (SpatialIndex::Name(): "ZM", "ML", "RSMI", "LISA", "Grid", "KDB",
  /// "HRR", "RR*").
  std::string kind = "ZM";
  /// Trainer for learned kinds; null falls back to a DirectTrainer.
  std::shared_ptr<ModelTrainer> trainer;
  ThreadPool* pool = nullptr;
  UpdateProcessorConfig update;
  /// Rebuild predictor consulted by the update processor (may be null).
  const RebuildPredictor* predictor = nullptr;
  WalWriterOptions wal;
  /// Snapshots retained after a checkpoint or rebuild (>= 1). Keeping the
  /// previous one means a crash *during* a snapshot write still recovers
  /// from the prior generation.
  size_t keep_snapshots = 2;
};

struct RecoveryStats {
  bool snapshot_loaded = false;
  /// Sequence number of the snapshot that loaded.
  uint64_t snapshot_seq = 0;
  /// Newer snapshot files that failed validation and were skipped.
  uint64_t snapshots_discarded = 0;
  WalReplayStats wal;
};

/// A durable spatial index: a SpatialIndex plus ELSI's update processor,
/// wrapped with a write-ahead log, versioned snapshots, and crash recovery.
///
/// Durability contract:
///  * Every Insert/Remove is appended to the WAL before it touches the
///    index (group-committed per WalWriterOptions::fsync_every).
///  * Checkpoint() writes a snapshot atomically and trims the WAL to the
///    records past it.
///  * OpenOrRecover() loads the newest snapshot that validates — falling
///    back to older generations when the newest is corrupt — then replays
///    the WAL tail through the exact same update path live traffic uses, so
///    a recovered index answers queries bit-identically to one that never
///    crashed (modulo group-commit records the OS never made durable).
///
/// Concurrency: queries are wait-free for readers — the serving state lives
/// behind a ConcurrentIndex (immutable base + sharded delta published via
/// one atomic root pointer, reclaimed through EBR), so point/window/kNN
/// queries never take a lock and never block on writers or rebuilds.
/// Writers are serialized by one mutex because the WAL is inherently
/// serial (log-before-apply); each write appends its WAL record, then
/// publishes into the delta. When the rebuild predictor fires, the
/// replacement base is built and snapshotted off to the side while readers
/// keep serving the old generation; the swap is a single atomic root
/// exchange — readers never stall, not even momentarily.
///
/// Visibility vs. durability: a write becomes visible to concurrent
/// readers after its WAL record is fully framed in the OS buffer (program
/// order of the writer), but it is only *durable* once the group commit
/// fsyncs (WalWriterOptions::fsync_every). With fsync_every = 1, visible
/// implies durable; otherwise a crash can lose at most fsync_every - 1
/// visible-but-unsynced records (WalWriter::durable_lsn() marks the
/// boundary, and persist_test's crash-point test pins it down).
class DurableElsi {
 public:
  /// Opens (or creates) the index directory `dir`. Returns nullptr only
  /// when the directory cannot be created or the WAL cannot be opened —
  /// snapshot corruption degrades to older generations or a fresh index.
  static std::unique_ptr<DurableElsi> OpenOrRecover(
      const std::string& dir, const DurableElsiOptions& opts = {},
      RecoveryStats* stats = nullptr);

  ~DurableElsi();

  /// Bulk-(re)builds from `data` and checkpoints. Blocks queries for the
  /// duration (initial loads, not steady state).
  void Build(const std::vector<Point>& data);

  void Insert(const Point& p);
  bool Remove(const Point& p);

  /// Writes a snapshot of the current state and trims the WAL behind it.
  bool Checkpoint();

  bool PointQuery(const Point& q, Point* out = nullptr) const;
  std::vector<Point> WindowQuery(const Rect& w) const;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const;
  size_t size() const;
  std::string kind() const;

  size_t rebuild_count() const;
  uint64_t last_snapshot_seq() const { return snapshot_seq_; }
  const std::string& dir() const { return dir_; }

 private:
  /// WAL adapter handed to the update processor (log-before-apply).
  class WalSink : public UpdateLogSink {
   public:
    explicit WalSink(WalWriter* wal) : wal_(wal) {}
    void LogInsert(const Point& p) override { wal_->Append(kWalOpInsert, p); }
    void LogDelete(const Point& p) override { wal_->Append(kWalOpDelete, p); }

   private:
    WalWriter* wal_;
  };

  DurableElsi() = default;

  /// Rebuild-swap, called with update_mu_ held: collect base + delta ->
  /// build fresh base -> snapshot.tmp/rename -> atomic root swap (readers
  /// never block; the old generation is retired through EBR).
  void RebuildSwapLocked();

  /// Snapshot current state as sequence snapshot_seq_ + 1 and prune old
  /// generations + WAL. With a dirty delta the snapshot covers only the
  /// folded prefix (base @ base_lsn_) and the WAL tail re-creates the
  /// delta on recovery. Caller holds update_mu_.
  bool CheckpointLocked();

  void PruneSnapshotsLocked();

  std::string dir_;
  DurableElsiOptions opts_;
  /// Base index kind ("ZM", "Grid", ...); fixed for the directory lifetime,
  /// so kind() needs no lock.
  std::string kind_;

  /// Serializes writers (Insert/Remove/Build/Checkpoint/rebuild). Queries
  /// take no lock at all — they go through index_'s epoch-protected path.
  std::mutex update_mu_;

  /// Serving state: immutable base + sharded delta behind one atomic root.
  std::unique_ptr<concurrent::ConcurrentIndex> index_;
  std::unique_ptr<UpdateProcessor> processor_;
  WalWriter wal_;
  std::unique_ptr<WalSink> sink_;
  uint64_t snapshot_seq_ = 0;
  /// LSN of the last WAL record folded into the base index. Snapshots of
  /// the base are tagged with it, so recovery replays exactly the records
  /// the delta held. Guarded by update_mu_.
  uint64_t base_lsn_ = 0;
  bool rebuild_requested_ = false;
};

}  // namespace persist
}  // namespace elsi

#endif  // ELSI_PERSIST_ELSI_H_
