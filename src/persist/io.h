#ifndef ELSI_PERSIST_IO_H_
#define ELSI_PERSIST_IO_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/geometry.h"

// Shared binary-encoding primitives for every serializer in the repository:
// the snapshot/WAL subsystem (src/persist/) and the pre-existing stream
// serializers (Ffn, method scorer, rebuild predictor, dataset files). All
// multi-byte fields are explicit fixed-width little-endian, assembled byte
// by byte — never a raw memcpy of size_t or a host-order write — so files
// are portable across platforms and word sizes.
//
// Header-only on purpose: the low-level libraries (elsi_ml, elsi_storage,
// elsi_learned, elsi_traditional) serialize their own state with these
// helpers without linking the elsi_persist library that sits above them.

namespace elsi {
namespace persist {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum of
/// every snapshot section and WAL record. Crc32("123456789") == 0xCBF43926.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Append-only little-endian encoder over a growable byte buffer.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  /// Length-prefixed byte string (u32 length + raw bytes).
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Raw bytes, no length prefix.
  void Bytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    for (double x : v) F64(x);
  }

  void U64Vec(const std::vector<uint64_t>& v) {
    U64(v.size());
    for (uint64_t x : v) U64(x);
  }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a byte view. Any underflow or
/// failed sanity check latches ok() to false and makes every further read
/// return zeros, so callers can decode a whole structure and test ok() once.
class Reader {
 public:
  Reader(const void* data, size_t len)
      : p_(static_cast<const unsigned char*>(data)), len_(len) {}
  explicit Reader(std::string_view data)
      : Reader(data.data(), data.size()) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return p_[pos_++];
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[pos_++]) << (8 * i);
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[pos_++]) << (8 * i);
    return v;
  }

  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  bool Bool() { return U8() != 0; }

  std::string Str() {
    const uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
    pos_ += n;
    return s;
  }

  bool Read(void* dst, size_t n) {
    if (!Need(n)) return false;
    std::memcpy(dst, p_ + pos_, n);
    pos_ += n;
    return true;
  }

  /// Advances past `n` bytes without copying them.
  bool Skip(size_t n) {
    if (!Need(n)) return false;
    pos_ += n;
    return true;
  }

  /// Reads a u64 count followed by that many f64s. Fails (without
  /// allocating) when the count exceeds the remaining bytes.
  bool F64Vec(std::vector<double>* out) {
    const uint64_t n = U64();
    if (n > remaining() / 8) return Fail();
    out->resize(n);
    for (uint64_t i = 0; i < n; ++i) (*out)[i] = F64();
    return ok_;
  }

  bool U64Vec(std::vector<uint64_t>* out) {
    const uint64_t n = U64();
    if (n > remaining() / 8) return Fail();
    out->resize(n);
    for (uint64_t i = 0; i < n; ++i) (*out)[i] = U64();
    return ok_;
  }

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool ok() const { return ok_; }
  /// Latches the failure state (for caller-side sanity checks).
  bool Fail() {
    ok_ = false;
    return false;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || len_ - pos_ < n) return Fail();
    return true;
  }

  const unsigned char* p_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- geometry helpers -----------------------------------------------------

inline void PutPoint(Writer& w, const Point& p) {
  w.F64(p.x);
  w.F64(p.y);
  w.U64(p.id);
}

inline Point GetPoint(Reader& r) {
  Point p;
  p.x = r.F64();
  p.y = r.F64();
  p.id = r.U64();
  return p;
}

inline void PutRect(Writer& w, const Rect& rect) {
  w.F64(rect.lo_x);
  w.F64(rect.lo_y);
  w.F64(rect.hi_x);
  w.F64(rect.hi_y);
}

inline Rect GetRect(Reader& r) {
  Rect rect;
  rect.lo_x = r.F64();
  rect.lo_y = r.F64();
  rect.hi_x = r.F64();
  rect.hi_y = r.F64();
  return rect;
}

inline void PutPoints(Writer& w, const std::vector<Point>& pts) {
  w.U64(pts.size());
  for (const Point& p : pts) PutPoint(w, p);
}

inline bool GetPoints(Reader& r, std::vector<Point>* out) {
  const uint64_t n = r.U64();
  if (n > r.remaining() / 24) return r.Fail();  // 24 bytes per point.
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) (*out)[i] = GetPoint(r);
  return r.ok();
}

// --- stream helpers -------------------------------------------------------
// For the serializers that keep std::ostream/std::istream interfaces (Ffn,
// scorer, rebuild predictor, dataset files).

inline bool WriteExact(std::ostream& out, const void* data, size_t len) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  return static_cast<bool>(out);
}

inline bool ReadExact(std::istream& in, void* data, size_t len) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  return static_cast<bool>(in) &&
         in.gcount() == static_cast<std::streamsize>(len);
}

inline bool PutU64(std::ostream& out, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return WriteExact(out, b, 8);
}

inline bool GetU64(std::istream& in, uint64_t* v) {
  unsigned char b[8];
  if (!ReadExact(in, b, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return true;
}

inline bool PutF64(std::ostream& out, double v) {
  return PutU64(out, std::bit_cast<uint64_t>(v));
}

inline bool GetF64(std::istream& in, double* v) {
  uint64_t bits = 0;
  if (!GetU64(in, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

}  // namespace persist
}  // namespace elsi

#endif  // ELSI_PERSIST_IO_H_
