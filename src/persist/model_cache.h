#ifndef ELSI_PERSIST_MODEL_CACHE_H_
#define ELSI_PERSIST_MODEL_CACHE_H_

#include <string>
#include <vector>

#include "core/method_scorer.h"
#include "core/rebuild_predictor.h"

namespace elsi {
namespace persist {

/// Directory for the bench model caches (scorer / rebuild ground truth).
/// ELSI_CACHE_DIR when set, else the current directory — the historical
/// location of the CWD-relative CSV caches.
std::string CacheDir();

/// File paths inside `dir` for the versioned binary caches.
std::string ScorerCachePath(const std::string& dir);
std::string RebuildCachePath(const std::string& dir);

/// Loads the scorer ground-truth campaign from `dir`. Prefers the versioned
/// binary cache; when absent, falls back to importing a legacy
/// `elsi_scorer_cache.csv` (from `dir`, then the CWD) and converts it to the
/// binary format in place — a one-time migration. Returns false when neither
/// exists or the cache is corrupt (callers then re-measure).
bool LoadScorerSamples(const std::string& dir, std::vector<ScorerSample>* out);

/// Writes the campaign to the versioned binary cache (atomic write).
bool SaveScorerSamples(const std::string& dir,
                       const std::vector<ScorerSample>& samples);

/// Same pair for the rebuild-predictor campaign (legacy
/// `elsi_rebuild_cache.csv`).
bool LoadRebuildSamples(const std::string& dir,
                        std::vector<RebuildSample>* out);
bool SaveRebuildSamples(const std::string& dir,
                        const std::vector<RebuildSample>& samples);

}  // namespace persist
}  // namespace elsi

#endif  // ELSI_PERSIST_MODEL_CACHE_H_
