#ifndef ELSI_PERSIST_WAL_H_
#define ELSI_PERSIST_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/geometry.h"

namespace elsi {
namespace persist {

/// One logical update. `op` is 1 for insert, 2 for delete.
struct WalRecord {
  uint64_t lsn = 0;
  uint8_t op = 0;
  Point p;
};

inline constexpr uint8_t kWalOpInsert = 1;
inline constexpr uint8_t kWalOpDelete = 2;

struct WalWriterOptions {
  /// fsync after this many appended records (group commit). 1 syncs every
  /// record; 0 never syncs (tests only).
  size_t fsync_every = 32;
  /// Start a new segment file once the current one exceeds this size.
  size_t segment_bytes = 4 << 20;
};

/// Append-only write-ahead log over numbered segment files
/// ("wal-<start_lsn>.log"). Each segment starts with a fixed header (magic,
/// format version, first LSN); each record is (u32 length, u32 CRC-32,
/// payload), so a torn tail — a partially written final record after a
/// crash — is detected by length/CRC and cleanly ignored by replay.
///
/// Not internally synchronized: the owner (Elsi) serializes all appends
/// under its update mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the log in `dir` for appending, continuing after the highest
  /// valid LSN already on disk (the caller passes it as `next_lsn`). Any
  /// torn final record in the newest segment is truncated away first.
  bool Open(const std::string& dir, uint64_t next_lsn,
            const WalWriterOptions& options = {});

  /// Appends one record, assigning it the next LSN (returned). The record
  /// is buffered in the OS; durability follows the group-commit policy.
  uint64_t Append(uint8_t op, const Point& p);

  /// Forces everything appended so far to disk.
  bool Sync();

  /// Deletes whole segments that only contain records with LSN <=
  /// `through_lsn` (called after a snapshot makes them redundant). A
  /// segment is removable when the NEXT segment starts at or below
  /// `through_lsn + 1`.
  void TruncateThrough(uint64_t through_lsn);

  void Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t next_lsn() const { return next_lsn_; }

  /// Highest LSN known to have reached disk (advanced by group-commit
  /// fsyncs, Sync(), segment rotation, and Close). Records in
  /// (durable_lsn, next_lsn) are framed in the OS but could be lost by a
  /// power cut — the bounded relaxed window of group commit, at most
  /// fsync_every - 1 records wide. Crash-point tests truncate a copied log
  /// at this boundary to assert recovery of the exact durable prefix.
  uint64_t durable_lsn() const { return durable_lsn_; }

  const std::string& dir() const { return dir_; }

 private:
  bool RotateLocked();

  std::string dir_;
  WalWriterOptions options_;
  int fd_ = -1;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  size_t segment_written_ = 0;
  size_t since_sync_ = 0;
};

struct WalReplayStats {
  uint64_t applied = 0;
  /// Records below the replay floor (already in the snapshot).
  uint64_t skipped = 0;
  /// True when the newest segment ended in a torn (partial/corrupt) record.
  bool torn_tail = false;
  uint64_t last_lsn = 0;
};

/// Reads every record with lsn > `after_lsn` from the segments in `dir`, in
/// LSN order, invoking `apply` for each. Stops at the first torn or corrupt
/// record in the newest segment (earlier segments must be intact). Purely
/// read-only — safe to run before WalWriter::Open truncates the tail.
bool WalReplay(const std::string& dir, uint64_t after_lsn,
               const std::function<void(const WalRecord&)>& apply,
               WalReplayStats* stats);

/// Segment file name for a first LSN ("wal-<lsn 20-digit>.log").
std::string WalSegmentPath(const std::string& dir, uint64_t start_lsn);

/// All WAL segments in `dir` as (start_lsn, path), ascending.
std::vector<std::pair<uint64_t, std::string>> ListWalSegments(
    const std::string& dir);

}  // namespace persist
}  // namespace elsi

#endif  // ELSI_PERSIST_WAL_H_
