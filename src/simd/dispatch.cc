#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstring>

/// Detection and dispatch. The active table is resolved once (first call
/// to Active()/ActiveLevel()) and cached in a process-global atomic;
/// every kernel call site loads that pointer and jumps — no per-call
/// feature checks. ELSI_SIMD_HAVE_AVX / ELSI_SIMD_HAVE_NEON are set by
/// the build alongside the per-ISA TUs; with ELSI_SIMD=OFF neither is
/// defined and only the scalar table exists.

namespace elsi {
namespace simd {
namespace {

bool LevelSupported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(ELSI_SIMD_HAVE_NEON)
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(ELSI_SIMD_HAVE_AVX)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(ELSI_SIMD_HAVE_AVX)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

const Kernels* TableFor(Level level) {
  if (!LevelSupported(level)) return nullptr;
  switch (level) {
    case Level::kScalar:
      return internal::ScalarKernels();
#if defined(ELSI_SIMD_HAVE_NEON)
    case Level::kNeon:
      return internal::NeonKernels();
#endif
#if defined(ELSI_SIMD_HAVE_AVX)
    case Level::kAvx2:
      return internal::Avx2Kernels();
    case Level::kAvx512:
      return internal::Avx512Kernels();
#endif
    default:
      return nullptr;
  }
}

Level BestSupported() {
  static const Level kBest[] = {Level::kAvx512, Level::kAvx2, Level::kNeon};
  for (Level level : kBest) {
    if (LevelSupported(level)) return level;
  }
  return Level::kScalar;
}

bool ParseLevel(const char* s, Level* out) {
  if (std::strcmp(s, "scalar") == 0) *out = Level::kScalar;
  else if (std::strcmp(s, "neon") == 0) *out = Level::kNeon;
  else if (std::strcmp(s, "avx2") == 0) *out = Level::kAvx2;
  else if (std::strcmp(s, "avx512") == 0) *out = Level::kAvx512;
  else return false;
  return true;
}

const Kernels* Detect() {
  Level level = BestSupported();
  if (const char* env = std::getenv("ELSI_SIMD_LEVEL")) {
    Level forced;
    if (!ParseLevel(env, &forced)) {
      std::fprintf(stderr,
                   "elsi: unknown ELSI_SIMD_LEVEL '%s' "
                   "(want scalar|neon|avx2|avx512); using %s\n",
                   env, LevelName(level));
    } else if (!LevelSupported(forced)) {
      std::fprintf(stderr,
                   "elsi: ELSI_SIMD_LEVEL=%s not supported on this "
                   "host/build; using %s\n",
                   env, LevelName(level));
    } else {
      level = forced;
    }
  }
  return TableFor(level);
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

const Kernels& Active() {
  const Kernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Magic static: detection runs exactly once even under races; the
    // compare-exchange then publishes it (losing a race to ForceLevel is
    // fine — any published table is valid).
    static const Kernels* detected = Detect();
    const Kernels* expected = nullptr;
    g_active.compare_exchange_strong(expected, detected,
                                     std::memory_order_acq_rel);
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

Level ActiveLevel() { return Active().level; }

const char* ActiveLevelName() { return LevelName(ActiveLevel()); }

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels;
  for (Level level : {Level::kScalar, Level::kNeon, Level::kAvx2,
                      Level::kAvx512}) {
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

const Kernels* ForLevel(Level level) { return TableFor(level); }

bool ForceLevel(Level level) {
  const Kernels* table = TableFor(level);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

}  // namespace simd
}  // namespace elsi
