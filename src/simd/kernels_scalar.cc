#include "simd/simd.h"

/// Scalar kernel table. The GEMM tiles are the PR 2 register-blocked
/// kernels moved verbatim from ml/matrix.cc — this TU is compiled with
/// the project's baseline flags (no -mfma), so the scalar fallback's
/// codegen and numbers are unchanged. The remaining kernels are the
/// straightforward loop forms the vector variants are tested against.

namespace elsi {
namespace simd {
namespace {

// Register-tile shape. 4x8 keeps the accumulator block plus one B row within
// the 16 SSE2 registers -O2 targets; the dense FFN shapes (hidden width 16,
// batch chunks of hundreds) split into whole tiles almost everywhere.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;

// C tile = A rows x B cols with ascending-k accumulation. The compile-time
// bounds let the compiler keep `acc` in registers and vectorise the j loop.
template <size_t MR, size_t NR>
inline void KernelNN(const double* a, const double* b, double* c, size_t k,
                     size_t lda, size_t ldb, size_t ldc) {
  double acc[MR][NR] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    const double* brow = b + kk * ldb;
    for (size_t r = 0; r < MR; ++r) {
      const double av = a[r * lda + kk];
      for (size_t j = 0; j < NR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Partial tile, compile-time column count: one row of accumulators at a
// time, with the same per-element ascending-k sums as the full kernel. The
// fixed NR keeps the j loop unrolled/vectorised; NR = 1 degenerates to a
// plain dot product, which matters because the FFN output layer is an
// n = 1 product.
template <size_t NR>
inline void EdgeColsNN(const double* a, const double* b, double* c, size_t mr,
                       size_t k, size_t lda, size_t ldb, size_t ldc) {
  for (size_t r = 0; r < mr; ++r) {
    double acc[NR] = {};
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[r * lda + kk];
      const double* brow = b + kk * ldb;
      for (size_t j = 0; j < NR; ++j) acc[j] += av * brow[j];
    }
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[j];
  }
}

// Partial tile (mr <= kMr, nr <= kNr): dispatches nr to a compile-time
// specialisation.
inline void EdgeNN(const double* a, const double* b, double* c, size_t mr,
                   size_t nr, size_t k, size_t lda, size_t ldb, size_t ldc) {
  switch (nr) {
    case 1: return EdgeColsNN<1>(a, b, c, mr, k, lda, ldb, ldc);
    case 2: return EdgeColsNN<2>(a, b, c, mr, k, lda, ldb, ldc);
    case 3: return EdgeColsNN<3>(a, b, c, mr, k, lda, ldb, ldc);
    case 4: return EdgeColsNN<4>(a, b, c, mr, k, lda, ldb, ldc);
    case 5: return EdgeColsNN<5>(a, b, c, mr, k, lda, ldb, ldc);
    case 6: return EdgeColsNN<6>(a, b, c, mr, k, lda, ldb, ldc);
    case 7: return EdgeColsNN<7>(a, b, c, mr, k, lda, ldb, ldc);
    default: return EdgeColsNN<kNr>(a, b, c, mr, k, lda, ldb, ldc);
  }
}

// A^T variant: `a` points at column i0 of the (k x m) matrix, so row kk of
// the tile reads a[kk * lda + r] — contiguous in r.
template <size_t MR, size_t NR>
inline void KernelTN(const double* a, const double* b, double* c, size_t k,
                     size_t lda, size_t ldb, size_t ldc) {
  double acc[MR][NR] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    const double* arow = a + kk * lda;
    const double* brow = b + kk * ldb;
    for (size_t r = 0; r < MR; ++r) {
      const double av = arow[r];
      for (size_t j = 0; j < NR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <size_t NR>
inline void EdgeColsTN(const double* a, const double* b, double* c, size_t mr,
                       size_t k, size_t lda, size_t ldb, size_t ldc) {
  for (size_t r = 0; r < mr; ++r) {
    double acc[NR] = {};
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[kk * lda + r];
      const double* brow = b + kk * ldb;
      for (size_t j = 0; j < NR; ++j) acc[j] += av * brow[j];
    }
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[j];
  }
}

inline void EdgeTN(const double* a, const double* b, double* c, size_t mr,
                   size_t nr, size_t k, size_t lda, size_t ldb, size_t ldc) {
  switch (nr) {
    case 1: return EdgeColsTN<1>(a, b, c, mr, k, lda, ldb, ldc);
    case 2: return EdgeColsTN<2>(a, b, c, mr, k, lda, ldb, ldc);
    case 3: return EdgeColsTN<3>(a, b, c, mr, k, lda, ldb, ldc);
    case 4: return EdgeColsTN<4>(a, b, c, mr, k, lda, ldb, ldc);
    case 5: return EdgeColsTN<5>(a, b, c, mr, k, lda, ldb, ldc);
    case 6: return EdgeColsTN<6>(a, b, c, mr, k, lda, ldb, ldc);
    case 7: return EdgeColsTN<7>(a, b, c, mr, k, lda, ldb, ldc);
    default: return EdgeColsTN<kNr>(a, b, c, mr, k, lda, ldb, ldc);
  }
}

// B^T variant: each output is a dot product of an A row and a B row. The
// 2x4 tile reuses every loaded A value across four B rows.
constexpr size_t kMrNT = 2;
constexpr size_t kNrNT = 4;

template <size_t MR, size_t NR>
inline void KernelNT(const double* a, const double* b, double* c, size_t k,
                     size_t lda, size_t ldb, size_t ldc) {
  double acc[MR][NR] = {};
  for (size_t kk = 0; kk < k; ++kk) {
    for (size_t r = 0; r < MR; ++r) {
      const double av = a[r * lda + kk];
      for (size_t j = 0; j < NR; ++j) acc[r][j] += av * b[j * ldb + kk];
    }
  }
  for (size_t r = 0; r < MR; ++r) {
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

template <size_t NR>
inline void EdgeColsNT(const double* a, const double* b, double* c, size_t mr,
                       size_t k, size_t lda, size_t ldb, size_t ldc) {
  for (size_t r = 0; r < mr; ++r) {
    double acc[NR] = {};
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = a[r * lda + kk];
      for (size_t j = 0; j < NR; ++j) acc[j] += av * b[j * ldb + kk];
    }
    for (size_t j = 0; j < NR; ++j) c[r * ldc + j] = acc[j];
  }
}

inline void EdgeNT(const double* a, const double* b, double* c, size_t mr,
                   size_t nr, size_t k, size_t lda, size_t ldb, size_t ldc) {
  switch (nr) {
    case 1: return EdgeColsNT<1>(a, b, c, mr, k, lda, ldb, ldc);
    case 2: return EdgeColsNT<2>(a, b, c, mr, k, lda, ldb, ldc);
    case 3: return EdgeColsNT<3>(a, b, c, mr, k, lda, ldb, ldc);
    default: return EdgeColsNT<kNrNT>(a, b, c, mr, k, lda, ldb, ldc);
  }
}

void GemmNNScalar(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n) {
  // Shape fast paths for the two inference-critical degenerate products.
  // Both keep every output element a plain ascending-k sum, so the kernel
  // invariant (bit-identity with the reference triple loop) still holds.
  if (k == 1) {
    // Rank-1 outer product: one multiply per element, no accumulation. This
    // is the FFN first layer whenever the input is one-dimensional (every
    // rank model), and the tile machinery is pure overhead for it.
    for (size_t i = 0; i < m; ++i) {
      const double av = a[i];
      double* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] = av * b[j];
    }
    return;
  }
  if (n == 1) {
    // Matrix-vector: interleave four rows so their (independent, ascending)
    // accumulations overlap instead of serialising on one add chain. This is
    // the FFN output layer for scalar-output networks.
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double* ar = a + i * k;
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        const double bv = b[kk];
        acc0 += ar[kk] * bv;
        acc1 += ar[k + kk] * bv;
        acc2 += ar[2 * k + kk] * bv;
        acc3 += ar[3 * k + kk] * bv;
      }
      c[i] = acc0;
      c[i + 1] = acc1;
      c[i + 2] = acc2;
      c[i + 3] = acc3;
    }
    for (; i < m; ++i) {
      const double* ar = a + i * k;
      double acc = 0.0;
      for (size_t kk = 0; kk < k; ++kk) acc += ar[kk] * b[kk];
      c[i] = acc;
    }
    return;
  }
  size_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      KernelNN<kMr, kNr>(a + i * k, b + j, c + i * n + j, k, k, n, n);
    }
    if (j < n) EdgeNN(a + i * k, b + j, c + i * n + j, kMr, n - j, k, k, n, n);
  }
  if (i < m) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      EdgeNN(a + i * k, b + j, c + i * n + j, m - i, kNr, k, k, n, n);
    }
    if (j < n) {
      EdgeNN(a + i * k, b + j, c + i * n + j, m - i, n - j, k, k, n, n);
    }
  }
}

void GemmTNScalar(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n) {
  size_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      KernelTN<kMr, kNr>(a + i, b + j, c + i * n + j, k, m, n, n);
    }
    if (j < n) EdgeTN(a + i, b + j, c + i * n + j, kMr, n - j, k, m, n, n);
  }
  if (i < m) {
    size_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      EdgeTN(a + i, b + j, c + i * n + j, m - i, kNr, k, m, n, n);
    }
    if (j < n) EdgeTN(a + i, b + j, c + i * n + j, m - i, n - j, k, m, n, n);
  }
}

void GemmNTScalar(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n) {
  size_t i = 0;
  for (; i + kMrNT <= m; i += kMrNT) {
    size_t j = 0;
    for (; j + kNrNT <= n; j += kNrNT) {
      KernelNT<kMrNT, kNrNT>(a + i * k, b + j * k, c + i * n + j, k, k, k, n);
    }
    if (j < n) {
      EdgeNT(a + i * k, b + j * k, c + i * n + j, kMrNT, n - j, k, k, k, n);
    }
  }
  if (i < m) {
    size_t j = 0;
    for (; j + kNrNT <= n; j += kNrNT) {
      EdgeNT(a + i * k, b + j * k, c + i * n + j, m - i, kNrNT, k, k, k, n);
    }
    if (j < n) {
      EdgeNT(a + i * k, b + j * k, c + i * n + j, m - i, n - j, k, k, k, n);
    }
  }
}

void BiasScalar(double* z, const double* bias, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    for (size_t j = 0; j < cols; ++j) zr[j] += bias[j];
  }
}

void BiasReluScalar(double* z, const double* bias, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    for (size_t j = 0; j < cols; ++j) {
      const double v = zr[j] + bias[j];
      zr[j] = v > 0.0 ? v : 0.0;
    }
  }
}

void LeafDispatchScalar(const double* fence, size_t fence_n, const double* keys,
                        size_t n, size_t* leaf) {
  // Four dispatches run interleaved: this upper-bound formulation shrinks
  // the range by `half` on BOTH branch outcomes, so every lane shares one
  // deterministic length schedule and the four dependent probe chains
  // overlap their fence-load latencies. Each lane computes the exact
  // upper bound (count of fence entries <= key), same as the scalar tail.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double k0 = keys[i], k1 = keys[i + 1];
    const double k2 = keys[i + 2], k3 = keys[i + 3];
    size_t l0 = 0, l1 = 0, l2 = 0, l3 = 0;
    for (size_t len = fence_n; len > 1;) {
      const size_t half = len / 2;
      len -= half;
      l0 += fence[l0 + half - 1] <= k0 ? half : 0;
      l1 += fence[l1 + half - 1] <= k1 ? half : 0;
      l2 += fence[l2 + half - 1] <= k2 ? half : 0;
      l3 += fence[l3 + half - 1] <= k3 ? half : 0;
    }
    l0 += fence[l0] <= k0 ? 1 : 0;
    l1 += fence[l1] <= k1 ? 1 : 0;
    l2 += fence[l2] <= k2 ? 1 : 0;
    l3 += fence[l3] <= k3 ? 1 : 0;
    leaf[i] = l0 == 0 ? 0 : l0 - 1;
    leaf[i + 1] = l1 == 0 ? 0 : l1 - 1;
    leaf[i + 2] = l2 == 0 ? 0 : l2 - 1;
    leaf[i + 3] = l3 == 0 ? 0 : l3 - 1;
  }
  for (; i < n; ++i) {
    size_t lo = 0;
    for (size_t len = fence_n; len > 1;) {
      const size_t half = len / 2;
      len -= half;
      lo += fence[lo + half - 1] <= keys[i] ? half : 0;
    }
    lo += fence[lo] <= keys[i] ? 1 : 0;
    leaf[i] = lo == 0 ? 0 : lo - 1;
  }
}

size_t CountLessScalar(const double* keys, size_t n, double key) {
  size_t i = 0;
  while (i < n && keys[i] < key) ++i;
  return i;
}

size_t CountLessEqualScalar(const double* keys, size_t n, double bound) {
  size_t i = 0;
  while (i < n && keys[i] <= bound) ++i;
  return i;
}

void ContainsMaskScalar(const Point* pts, size_t n, const Rect& w,
                        uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    mask[i] = w.Contains(pts[i]) ? 1 : 0;
  }
}

void SquaredDistancesScalar(const Point* pts, size_t n, double qx, double qy,
                            double* d2) {
  for (size_t i = 0; i < n; ++i) {
    const double dx = pts[i].x - qx;
    const double dy = pts[i].y - qy;
    d2[i] = dx * dx + dy * dy;
  }
}

// Level-synchronous exact lower_bound over many ranges at once: every
// active search advances one probe per round and prefetches its next
// midpoint, so the cache misses of a whole chunk overlap instead of
// serialising (memory-level parallelism — the reason batched search beats
// a per-query loop whose probes miss one at a time). The range update is
// branchless (cmov), sidestepping the ~50% mispredict a comparison-driven
// binary search pays per probe. `work` holds the indices of the `active`
// still-unfinished searches (caller filters out len == 0 entries and
// chooses the order — leaf-sorted order keeps consecutive searches on
// neighbouring pages). Each search performs the standard lower-bound
// halving independently, so states[i].lo ends at exactly the position
// serial std::lower_bound returns.
void BatchedLowerBoundScalar(const double* keys, SearchState* states,
                             size_t* work, size_t active) {
  for (size_t t = 0; t < active; ++t) {
    const SearchState& s = states[work[t]];
    __builtin_prefetch(&keys[s.lo + s.len / 2]);
  }
  while (active > 0) {
    size_t next = 0;
    for (size_t t = 0; t < active; ++t) {
      SearchState& s = states[work[t]];
      const size_t half = s.len / 2;
      const size_t mid = s.lo + half;
      const bool right = keys[mid] < s.key;
      s.lo = right ? mid + 1 : s.lo;
      s.len = right ? s.len - half - 1 : half;
      if (s.len > 0) {
        work[next++] = work[t];  // In-place compaction: next <= t.
        __builtin_prefetch(&keys[s.lo + s.len / 2]);
      }
    }
    active = next;
  }
}

}  // namespace

namespace internal {

const Kernels* ScalarKernels() {
  static const Kernels table = {
      Level::kScalar,      GemmNNScalar,       GemmTNScalar,
      GemmNTScalar,        BiasScalar,         BiasReluScalar,
      LeafDispatchScalar,  CountLessScalar,    CountLessEqualScalar,
      ContainsMaskScalar,  SquaredDistancesScalar,
      BatchedLowerBoundScalar,
  };
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace elsi
