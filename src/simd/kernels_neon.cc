#include "simd/simd.h"

/// NEON kernel table (aarch64 only; NEON is baseline there, so no extra
/// compile flags). Only the FMA-bearing GEMM paths and the FFN
/// epilogues are vectorized — the search/geometry kernels route to the
/// scalar implementations, which are exact on every level, so nothing
/// is lost but the (small) vector win on those loops. 128-bit lanes
/// mean 2 doubles per op; chains stay ascending-k.

#if defined(__aarch64__)

#include <arm_neon.h>

namespace elsi {
namespace simd {
namespace {

// mr (1..4) rows by up to 8 columns (nv full 2-lane vectors plus an
// optional 1-wide tail kept in lane 0 of a vector register — vfma on a
// zero-padded lane is still per-lane FMA, so no scalar FP expression
// the compiler could re-contract differently).
template <bool TransposedA>
inline void Tile(const double* a, const double* b, double* c, size_t mr,
                 size_t nc, size_t k, size_t lda, size_t ldb, size_t ldc) {
  const size_t nv = nc / 2;
  const bool rem = (nc % 2) != 0;
  float64x2_t acc[4][4];
  for (size_t r = 0; r < 4; ++r) {
    for (size_t v = 0; v < 4; ++v) acc[r][v] = vdupq_n_f64(0.0);
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const double* brow = b + kk * ldb;
    float64x2_t bv[4];
    for (size_t v = 0; v < nv; ++v) bv[v] = vld1q_f64(brow + 2 * v);
    if (rem) bv[nv] = vsetq_lane_f64(brow[2 * nv], vdupq_n_f64(0.0), 0);
    for (size_t r = 0; r < mr; ++r) {
      const float64x2_t av = vdupq_n_f64(TransposedA ? a[kk * lda + r]
                                                     : a[r * lda + kk]);
      for (size_t v = 0; v < nv; ++v) acc[r][v] = vfmaq_f64(acc[r][v], av, bv[v]);
      if (rem) acc[r][nv] = vfmaq_f64(acc[r][nv], av, bv[nv]);
    }
  }
  for (size_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (size_t v = 0; v < nv; ++v) vst1q_f64(crow + 2 * v, acc[r][v]);
    if (rem) crow[2 * nv] = vgetq_lane_f64(acc[r][nv], 0);
  }
}

template <bool TransposedA>
inline void GemmWalk(const double* a, const double* b, double* c, size_t m,
                     size_t k, size_t n, size_t lda) {
  for (size_t i = 0; i < m; i += 4) {
    const size_t mr = m - i < 4 ? m - i : 4;
    const double* ablk = TransposedA ? a + i : a + i * lda;
    for (size_t j = 0; j < n; j += 8) {
      const size_t nc = n - j < 8 ? n - j : 8;
      Tile<TransposedA>(ablk, b + j, c + i * n + j, mr, nc, k, lda, n, n);
    }
  }
}

// Zero-padded-tail dot product; schedule and reduction are functions of k.
inline double Dot(const double* x, const double* y, size_t k) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  size_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(x + kk), vld1q_f64(y + kk));
    acc1 = vfmaq_f64(acc1, vld1q_f64(x + kk + 2), vld1q_f64(y + kk + 2));
  }
  if (kk + 2 <= k) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(x + kk), vld1q_f64(y + kk));
    kk += 2;
  }
  if (kk < k) {
    const float64x2_t xv = vsetq_lane_f64(x[kk], vdupq_n_f64(0.0), 0);
    const float64x2_t yv = vsetq_lane_f64(y[kk], vdupq_n_f64(0.0), 0);
    acc1 = vfmaq_f64(acc1, xv, yv);
  }
  const float64x2_t acc = vaddq_f64(acc0, acc1);
  return vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
}

inline void OuterRow(double av_s, const double* b, double* crow, size_t n) {
  const float64x2_t av = vdupq_n_f64(av_s);
  size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    vst1q_f64(crow + j, vmulq_f64(av, vld1q_f64(b + j)));
  }
  if (j < n) crow[j] = vgetq_lane_f64(vmulq_f64(av, vdupq_n_f64(b[j])), 0);
}

void GemmNNNeon(const double* a, const double* b, double* c, size_t m,
                size_t k, size_t n) {
  if (k == 1) {
    for (size_t i = 0; i < m; ++i) OuterRow(a[i], b, c + i * n, n);
    return;
  }
  if (n == 1) {
    for (size_t i = 0; i < m; ++i) c[i] = Dot(a + i * k, b, k);
    return;
  }
  GemmWalk<false>(a, b, c, m, k, n, k);
}

void GemmTNNeon(const double* a, const double* b, double* c, size_t m,
                size_t k, size_t n) {
  GemmWalk<true>(a, b, c, m, k, n, m);
}

void GemmNTNeon(const double* a, const double* b, double* c, size_t m,
                size_t k, size_t n) {
  if (k == 1) {
    for (size_t i = 0; i < m; ++i) OuterRow(a[i], b, c + i * n, n);
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = Dot(arow, b + j * k, k);
  }
}

void BiasNeon(double* z, const double* bias, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    size_t j = 0;
    for (; j + 2 <= cols; j += 2) {
      vst1q_f64(zr + j, vaddq_f64(vld1q_f64(zr + j), vld1q_f64(bias + j)));
    }
    if (j < cols) {
      const float64x2_t v =
          vaddq_f64(vdupq_n_f64(zr[j]), vdupq_n_f64(bias[j]));
      zr[j] = vgetq_lane_f64(v, 0);
    }
  }
}

void BiasReluNeon(double* z, const double* bias, size_t rows, size_t cols) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    size_t j = 0;
    for (; j + 2 <= cols; j += 2) {
      const float64x2_t v =
          vaddq_f64(vld1q_f64(zr + j), vld1q_f64(bias + j));
      // v > 0 ? v : 0 via compare+and — NaN and -0.0 both land on +0.0.
      const uint64x2_t keep = vcgtq_f64(v, zero);
      vst1q_f64(zr + j, vreinterpretq_f64_u64(vandq_u64(
                            vreinterpretq_u64_f64(v), keep)));
    }
    if (j < cols) {
      const float64x2_t v =
          vaddq_f64(vdupq_n_f64(zr[j]), vdupq_n_f64(bias[j]));
      const uint64x2_t keep = vcgtq_f64(v, zero);
      zr[j] = vgetq_lane_f64(
          vreinterpretq_f64_u64(
              vandq_u64(vreinterpretq_u64_f64(v), keep)),
          0);
    }
  }
}

void LeafDispatchNeon(const double* fence, size_t fence_n, const double* keys,
                      size_t n, size_t* leaf) {
  internal::ScalarKernels()->leaf_dispatch(fence, fence_n, keys, n, leaf);
}

size_t CountLessNeon(const double* keys, size_t n, double key) {
  return internal::ScalarKernels()->count_less(keys, n, key);
}

size_t CountLessEqualNeon(const double* keys, size_t n, double bound) {
  return internal::ScalarKernels()->count_less_equal(keys, n, bound);
}

void ContainsMaskNeon(const Point* pts, size_t n, const Rect& w,
                      uint8_t* mask) {
  internal::ScalarKernels()->contains_mask(pts, n, w, mask);
}

void SquaredDistancesNeon(const Point* pts, size_t n, double qx, double qy,
                          double* d2) {
  internal::ScalarKernels()->squared_distances(pts, n, qx, qy, d2);
}

void BatchedLowerBoundNeon(const double* keys, SearchState* states,
                           size_t* work, size_t active) {
  internal::ScalarKernels()->batched_lower_bound(keys, states, work, active);
}

}  // namespace

namespace internal {

const Kernels* NeonKernels() {
  static const Kernels table = {
      Level::kNeon,      GemmNNNeon,       GemmTNNeon,
      GemmNTNeon,        BiasNeon,         BiasReluNeon,
      LeafDispatchNeon,  CountLessNeon,    CountLessEqualNeon,
      ContainsMaskNeon,  SquaredDistancesNeon,
      BatchedLowerBoundNeon,
  };
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace elsi

#endif  // defined(__aarch64__)
