#include "simd/simd.h"

/// AVX-512 kernel table (compiled with -mavx512f -mavx512dq -mavx512bw
/// -mavx512vl; only added to the build on x86-64). Same conventions as
/// the AVX2 TU — ascending-k FMA chains, every tail handled with
/// predicated loads/stores/gathers instead of scalar FP expressions
/// (which the compiler could contract into FMA in this TU), and
/// compare+mask selects for exact scalar ternary semantics. The native
/// 8-lane masks make the tails cheaper than AVX2's maskload dance.

#include <immintrin.h>

namespace elsi {
namespace simd {
namespace {

inline __mmask8 TailMask8(size_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

// mr (1..4) rows by up to 16 columns (nv full 8-lane vectors plus a
// masked tail). TransposedA only changes the broadcast source.
template <bool TransposedA>
inline void Tile(const double* a, const double* b, double* c, size_t mr,
                 size_t nc, size_t k, size_t lda, size_t ldb, size_t ldc) {
  const size_t nv = nc / 8;
  const size_t rem = nc % 8;
  const __mmask8 mask = TailMask8(rem);
  __m512d acc[4][2];
  for (size_t r = 0; r < 4; ++r) {
    acc[r][0] = _mm512_setzero_pd();
    acc[r][1] = _mm512_setzero_pd();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const double* brow = b + kk * ldb;
    __m512d bv[2];
    for (size_t v = 0; v < nv; ++v) bv[v] = _mm512_loadu_pd(brow + 8 * v);
    if (rem != 0) bv[nv] = _mm512_maskz_loadu_pd(mask, brow + 8 * nv);
    for (size_t r = 0; r < mr; ++r) {
      const __m512d av = _mm512_set1_pd(TransposedA ? a[kk * lda + r]
                                                    : a[r * lda + kk]);
      for (size_t v = 0; v < nv; ++v) {
        acc[r][v] = _mm512_fmadd_pd(av, bv[v], acc[r][v]);
      }
      if (rem != 0) acc[r][nv] = _mm512_fmadd_pd(av, bv[nv], acc[r][nv]);
    }
  }
  for (size_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (size_t v = 0; v < nv; ++v) _mm512_storeu_pd(crow + 8 * v, acc[r][v]);
    if (rem != 0) _mm512_mask_storeu_pd(crow + 8 * nv, mask, acc[r][nv]);
  }
}

template <bool TransposedA>
inline void GemmWalk(const double* a, const double* b, double* c, size_t m,
                     size_t k, size_t n, size_t lda) {
  for (size_t i = 0; i < m; i += 4) {
    const size_t mr = m - i < 4 ? m - i : 4;
    const double* ablk = TransposedA ? a + i : a + i * lda;
    for (size_t j = 0; j < n; j += 16) {
      const size_t nc = n - j < 16 ? n - j : 16;
      Tile<TransposedA>(ablk, b + j, c + i * n + j, mr, nc, k, lda, n, n);
    }
  }
}

// Masked-tail dot product; lane schedule and reduction order are pure
// functions of k (deterministic per shape within this level).
inline double Dot(const double* x, const double* y, size_t k) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + kk), _mm512_loadu_pd(y + kk),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(x + kk + 8),
                           _mm512_loadu_pd(y + kk + 8), acc1);
  }
  if (kk + 8 <= k) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + kk), _mm512_loadu_pd(y + kk),
                           acc0);
    kk += 8;
  }
  if (kk < k) {
    const __mmask8 mask = TailMask8(k - kk);
    acc1 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(mask, x + kk),
                           _mm512_maskz_loadu_pd(mask, y + kk), acc1);
  }
  return _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
}

// Rank-1 outer product row: one multiply per element (no accumulation),
// bit-identical to the scalar level's k == 1 path.
inline void OuterRow(double av_s, const double* b, double* crow, size_t n) {
  const __m512d av = _mm512_set1_pd(av_s);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(crow + j, _mm512_mul_pd(av, _mm512_loadu_pd(b + j)));
  }
  if (j < n) {
    const __mmask8 mask = TailMask8(n - j);
    _mm512_mask_storeu_pd(
        crow + j, mask,
        _mm512_mul_pd(av, _mm512_maskz_loadu_pd(mask, b + j)));
  }
}

void GemmNNAvx512(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n) {
  if (k == 1) {
    for (size_t i = 0; i < m; ++i) OuterRow(a[i], b, c + i * n, n);
    return;
  }
  if (n == 1) {
    for (size_t i = 0; i < m; ++i) c[i] = Dot(a + i * k, b, k);
    return;
  }
  GemmWalk<false>(a, b, c, m, k, n, k);
}

void GemmTNAvx512(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n) {
  GemmWalk<true>(a, b, c, m, k, n, m);
}

void GemmNTAvx512(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n) {
  if (k == 1) {
    for (size_t i = 0; i < m; ++i) OuterRow(a[i], b, c + i * n, n);
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = Dot(arow, b + j * k, k);
  }
}

// ---------------------------------------------------------------------------
// FFN epilogues
// ---------------------------------------------------------------------------

void BiasAvx512(double* z, const double* bias, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm512_storeu_pd(zr + j, _mm512_add_pd(_mm512_loadu_pd(zr + j),
                                             _mm512_loadu_pd(bias + j)));
    }
    if (j < cols) {
      const __mmask8 mask = TailMask8(cols - j);
      _mm512_mask_storeu_pd(
          zr + j, mask,
          _mm512_add_pd(_mm512_maskz_loadu_pd(mask, zr + j),
                        _mm512_maskz_loadu_pd(mask, bias + j)));
    }
  }
}

void BiasReluAvx512(double* z, const double* bias, size_t rows, size_t cols) {
  const __m512d zero = _mm512_setzero_pd();
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      const __m512d v = _mm512_add_pd(_mm512_loadu_pd(zr + j),
                                      _mm512_loadu_pd(bias + j));
      // v > 0 ? v : 0 — maskz_mov zeroes NaN and -0.0 lanes exactly like
      // the scalar ternary.
      const __mmask8 keep = _mm512_cmp_pd_mask(v, zero, _CMP_GT_OQ);
      _mm512_storeu_pd(zr + j, _mm512_maskz_mov_pd(keep, v));
    }
    if (j < cols) {
      const __mmask8 mask = TailMask8(cols - j);
      const __m512d v =
          _mm512_add_pd(_mm512_maskz_loadu_pd(mask, zr + j),
                        _mm512_maskz_loadu_pd(mask, bias + j));
      const __mmask8 keep = _mm512_cmp_pd_mask(v, zero, _CMP_GT_OQ);
      _mm512_mask_storeu_pd(zr + j, mask, _mm512_maskz_mov_pd(keep, v));
    }
  }
}

// ---------------------------------------------------------------------------
// Predict-and-scan search kernels
// ---------------------------------------------------------------------------

void LeafDispatchAvx512(const double* fence, size_t fence_n,
                        const double* keys, size_t n, size_t* leaf) {
  const __m512i one = _mm512_set1_epi64(1);
  for (size_t i = 0; i < n; i += 8) {
    const size_t rem = n - i < 8 ? n - i : 8;
    const __mmask8 lanes = TailMask8(rem == 8 ? 8 : rem);
    const __m512d kv = _mm512_maskz_loadu_pd(lanes, keys + i);
    __m512i lo = _mm512_setzero_si512();
    // Shared halving schedule (identical to the scalar kernel); eight
    // lanes gather their probes from the L1-resident fence at once.
    for (size_t len = fence_n; len > 1;) {
      const size_t half = len / 2;
      len -= half;
      const __m512i idx = _mm512_add_epi64(lo, _mm512_set1_epi64(half - 1));
      const __m512d f =
          _mm512_mask_i64gather_pd(_mm512_setzero_pd(), lanes, idx, fence, 8);
      const __mmask8 le = _mm512_mask_cmp_pd_mask(lanes, f, kv, _CMP_LE_OQ);
      lo = _mm512_mask_add_epi64(lo, le, lo, _mm512_set1_epi64(half));
    }
    const __m512d f =
        _mm512_mask_i64gather_pd(_mm512_setzero_pd(), lanes, lo, fence, 8);
    const __mmask8 le = _mm512_mask_cmp_pd_mask(lanes, f, kv, _CMP_LE_OQ);
    lo = _mm512_mask_add_epi64(lo, le, lo, one);
    // leaf = lo == 0 ? 0 : lo - 1.
    const __mmask8 nonzero =
        _mm512_cmpneq_epi64_mask(lo, _mm512_setzero_si512());
    const __m512i dec =
        _mm512_maskz_sub_epi64(nonzero, lo, one);
    _mm512_mask_storeu_epi64(leaf + i, lanes, dec);
  }
}

size_t CountLessAvx512(const double* keys, size_t n, double key) {
  const __m512d kv = _mm512_set1_pd(key);
  size_t i = 0;
  size_t cnt = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(keys + i), kv, _CMP_LT_OQ);
    // Sorted input: prefix mask, popcount == in-vector lower bound.
    cnt += static_cast<size_t>(__builtin_popcount(m));
    if (m != 0xFF) return cnt;
  }
  if (i < n) {
    const __mmask8 lanes = TailMask8(n - i);
    const __mmask8 m = _mm512_mask_cmp_pd_mask(
        lanes, _mm512_maskz_loadu_pd(lanes, keys + i), kv, _CMP_LT_OQ);
    cnt += static_cast<size_t>(__builtin_popcount(m));
  }
  return cnt;
}

size_t CountLessEqualAvx512(const double* keys, size_t n, double bound) {
  const __m512d kv = _mm512_set1_pd(bound);
  size_t i = 0;
  size_t cnt = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 m =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(keys + i), kv, _CMP_LE_OQ);
    cnt += static_cast<size_t>(__builtin_popcount(m));
    if (m != 0xFF) return cnt;
  }
  if (i < n) {
    const __mmask8 lanes = TailMask8(n - i);
    const __mmask8 m = _mm512_mask_cmp_pd_mask(
        lanes, _mm512_maskz_loadu_pd(lanes, keys + i), kv, _CMP_LE_OQ);
    cnt += static_cast<size_t>(__builtin_popcount(m));
  }
  return cnt;
}

// ---------------------------------------------------------------------------
// Geometry kernels
// ---------------------------------------------------------------------------

// Point is a 24-byte {x, y, id} AoS record; lane t reads doubles 3t (x)
// and 3t + 1 (y) via gather.
inline __m512i XIdxBase() {
  return _mm512_set_epi64(21, 18, 15, 12, 9, 6, 3, 0);
}

void ContainsMaskAvx512(const Point* pts, size_t n, const Rect& w,
                        uint8_t* mask) {
  const double* base = reinterpret_cast<const double*>(pts);
  const __m512d lox = _mm512_set1_pd(w.lo_x), hix = _mm512_set1_pd(w.hi_x);
  const __m512d loy = _mm512_set1_pd(w.lo_y), hiy = _mm512_set1_pd(w.hi_y);
  for (size_t i = 0; i < n; i += 8) {
    const size_t rem = n - i < 8 ? n - i : 8;
    const __mmask8 lanes = TailMask8(rem);
    const __m512i xi = _mm512_add_epi64(XIdxBase(), _mm512_set1_epi64(3 * i));
    const __m512i yi = _mm512_add_epi64(xi, _mm512_set1_epi64(1));
    const __m512d x =
        _mm512_mask_i64gather_pd(_mm512_setzero_pd(), lanes, xi, base, 8);
    const __m512d y =
        _mm512_mask_i64gather_pd(_mm512_setzero_pd(), lanes, yi, base, 8);
    __mmask8 in = _mm512_mask_cmp_pd_mask(lanes, x, lox, _CMP_GE_OQ);
    in = _mm512_mask_cmp_pd_mask(in, x, hix, _CMP_LE_OQ);
    in = _mm512_mask_cmp_pd_mask(in, y, loy, _CMP_GE_OQ);
    in = _mm512_mask_cmp_pd_mask(in, y, hiy, _CMP_LE_OQ);
    // Expand the bit mask to 0/1 bytes and store the low `rem` of them.
    const __m128i bytes =
        _mm_and_si128(_mm_movm_epi8(in), _mm_set1_epi8(1));
    _mm_mask_storeu_epi8(mask + i, static_cast<__mmask16>(lanes), bytes);
  }
}

void SquaredDistancesAvx512(const Point* pts, size_t n, double qx, double qy,
                            double* d2) {
  const double* base = reinterpret_cast<const double*>(pts);
  const __m512d qxv = _mm512_set1_pd(qx);
  const __m512d qyv = _mm512_set1_pd(qy);
  for (size_t i = 0; i < n; i += 8) {
    const size_t rem = n - i < 8 ? n - i : 8;
    const __mmask8 lanes = TailMask8(rem);
    const __m512i xi = _mm512_add_epi64(XIdxBase(), _mm512_set1_epi64(3 * i));
    const __m512i yi = _mm512_add_epi64(xi, _mm512_set1_epi64(1));
    const __m512d dx = _mm512_sub_pd(
        _mm512_mask_i64gather_pd(_mm512_setzero_pd(), lanes, xi, base, 8),
        qxv);
    const __m512d dy = _mm512_sub_pd(
        _mm512_mask_i64gather_pd(_mm512_setzero_pd(), lanes, yi, base, 8),
        qyv);
    // Explicit mul+add (no FMA): bit-identical to scalar SquaredDistance.
    _mm512_mask_storeu_pd(
        d2 + i, lanes,
        _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)));
  }
}

void BatchedLowerBoundAvx512(const double* keys, SearchState* states,
                             size_t* work, size_t active) {
  // Latency-bound on the probe loads, which the scalar software-pipelined
  // loop already overlaps; gathers/scatters over the 24-byte AoS states
  // only add instruction pressure. Route to the scalar implementation.
  internal::ScalarKernels()->batched_lower_bound(keys, states, work, active);
}

}  // namespace

namespace internal {

const Kernels* Avx512Kernels() {
  static const Kernels table = {
      Level::kAvx512,      GemmNNAvx512,       GemmTNAvx512,
      GemmNTAvx512,        BiasAvx512,         BiasReluAvx512,
      LeafDispatchAvx512,  CountLessAvx512,    CountLessEqualAvx512,
      ContainsMaskAvx512,  SquaredDistancesAvx512,
      BatchedLowerBoundAvx512,
  };
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace elsi
