#ifndef ELSI_SIMD_SIMD_H_
#define ELSI_SIMD_SIMD_H_

/// elsi::simd — runtime-dispatched SIMD kernel layer (see DESIGN.md,
/// "SIMD kernel layer").
///
/// The hot inner loops of the query path — GEMM for FFN inference, the
/// fence dispatch and windowed searches of the segmented array's
/// predict-and-scan, window containment and kNN distance evaluation —
/// are implemented once per ISA level (scalar / NEON / AVX2+FMA /
/// AVX-512) and selected once at startup through a function-pointer
/// table. Detection uses `__builtin_cpu_supports` on x86 and the
/// compile-time baseline on aarch64; the chosen table is stored in a
/// process-global atomic and never changes after first use unless a
/// test or bench explicitly forces a level.
///
/// Contract, per kernel (tested in tests/simd_test.cc):
///  - integer/compare kernels (`leaf_dispatch`, `count_less`,
///    `count_less_equal`, `contains_mask`) are bit-identical across all
///    levels — they compute exact lower/upper bounds and predicates, so
///    query *results* never depend on the dispatch level;
///  - `bias`, `bias_relu`, and `squared_distances` are float kernels
///    with a fixed, non-reassociated operation order and are also
///    bit-identical across levels;
///  - the GEMM kernels use FMA on levels that have it, so outputs may
///    differ from scalar in the last ulps. Within a level they remain
///    deterministic and row-batch consistent: row i of a batched
///    product is bit-identical to the product of row i alone.
///
/// Building with -DELSI_SIMD=OFF compiles only the scalar table; the
/// dispatch call sites are unchanged.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/geometry.h"

namespace elsi {
namespace simd {

/// Dispatch levels, ordered from least to most capable. On a given
/// host only a prefix of {scalar, neon} or {scalar, avx2, avx512} is
/// reachable.
enum class Level : int {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Stable lowercase name for a level ("scalar", "neon", "avx2",
/// "avx512") — used by /healthz, the `simd.dispatch` gauge and the
/// per-ISA bench row names.
const char* LevelName(Level level);

/// One in-flight query of a level-synchronous batched binary search
/// (moved here from segmented_array.cc so per-ISA kernels can share
/// it). Converges lo to lower_bound(base, base + initial len, key).
struct SearchState {
  size_t lo;
  size_t len;
  double key;
};

/// The per-ISA kernel table. All pointers are always non-null.
struct Kernels {
  Level level;

  /// C (m x n) = A (m x k) * B (k x n), all row-major, C overwritten.
  /// Every output element is an ascending-k accumulation chain that
  /// depends only on k and the operand rows, never on m or the tile
  /// position, so batched rows match single-row products bit-exactly.
  void (*gemm_nn)(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n);
  /// C (m x n) = A^T * B where A is (k x m) row-major.
  void (*gemm_tn)(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n);
  /// C (m x n) = A * B^T where B is (n x k) row-major.
  void (*gemm_nt)(const double* a, const double* b, double* c, size_t m,
                  size_t k, size_t n);

  /// z[r][j] += bias[j] for every row. Bit-identical across levels
  /// (one IEEE add per element, no reassociation).
  void (*bias)(double* z, const double* bias, size_t rows, size_t cols);
  /// z[r][j] = relu(z[r][j] + bias[j]). The relu is the exact scalar
  /// `v > 0.0 ? v : 0.0` select (NaN and -0.0 both map to +0.0);
  /// vector variants use compare+mask, not max, to preserve that.
  void (*bias_relu)(double* z, const double* bias, size_t rows, size_t cols);

  /// Branchless leaf dispatch over a sorted fence of leaf minimum
  /// keys: leaf[i] = index of the leaf whose [min_key, next_min_key)
  /// range contains keys[i], i.e. upper_bound(fence, keys[i]) - 1
  /// clamped to 0. Exact; bit-identical across levels.
  void (*leaf_dispatch)(const double* fence, size_t fence_n,
                        const double* keys, size_t n, size_t* leaf);

  /// Number of elements < key in the sorted run keys[0..n) — the
  /// lower_bound offset. Early-exits on the first element >= key, so
  /// it reads at most one vector past the answer. Exact.
  size_t (*count_less)(const double* keys, size_t n, double key);
  /// Number of elements <= bound in the sorted run keys[0..n) — the
  /// upper_bound offset. Same early-exit property. Exact.
  size_t (*count_less_equal)(const double* keys, size_t n, double bound);

  /// mask[i] = 1 if w contains pts[i] (Rect::Contains semantics,
  /// boundary-inclusive), else 0. Exact; bit-identical across levels.
  void (*contains_mask)(const Point* pts, size_t n, const Rect& w,
                        uint8_t* mask);

  /// d2[i] = squared Euclidean distance from pts[i] to (qx, qy),
  /// computed as dx*dx + dy*dy with no FMA contraction so the result
  /// is bit-identical to geometry.cc's SquaredDistance on every level.
  void (*squared_distances)(const Point* pts, size_t n, double qx, double qy,
                            double* d2);

  /// Level-synchronous branchless interleaved binary search; resolves
  /// every state in work[0..active) to its lower_bound over `base`.
  /// Kept scalar on all levels (the loop is latency-bound on the
  /// probe loads, which the software pipelining already hides), but
  /// routed through the table so a future gather-based variant can
  /// slot in per ISA.
  void (*batched_lower_bound)(const double* base, SearchState* states,
                              size_t* work, size_t active);
};

/// The table for the active dispatch level. First call performs
/// detection (honouring the ELSI_SIMD_LEVEL env override: "scalar",
/// "neon", "avx2" or "avx512"; unsupported values are clamped to the
/// best supported level with a one-time stderr warning). Thread-safe.
const Kernels& Active();

/// Level of the active table.
Level ActiveLevel();
/// LevelName(ActiveLevel()).
const char* ActiveLevelName();

/// All levels usable on this host/build, ascending (always includes
/// kScalar). Tests and benches iterate this to cover every reachable
/// variant.
std::vector<Level> SupportedLevels();

/// Table for a specific level, or nullptr if that level is not
/// supported by this host/build. Does not change the active table.
const Kernels* ForLevel(Level level);

/// Force the active table to `level` (tests/bench sweeps only).
/// Returns false and leaves the active table unchanged if the level
/// is unsupported.
bool ForceLevel(Level level);

/// Minimal aligned allocator so scratch vectors and Matrix storage
/// start on a 64-byte boundary and vector loads never split cache
/// lines. Value-initialises like std::allocator.
template <typename T, size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two covering alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Alignment));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte-aligned double vector — the storage type for GEMM operands
/// and inference scratch.
using AlignedVector = std::vector<double, AlignedAllocator<double, 64>>;

namespace internal {
/// Per-ISA table constructors (defined in kernels_*.cc). The scalar
/// table always exists; the others are compiled only when the target
/// architecture and ELSI_SIMD allow.
const Kernels* ScalarKernels();
const Kernels* Avx2Kernels();
const Kernels* Avx512Kernels();
const Kernels* NeonKernels();
}  // namespace internal

}  // namespace simd
}  // namespace elsi

#endif  // ELSI_SIMD_SIMD_H_
