#include "simd/simd.h"

/// AVX2+FMA kernel table (compiled with -mavx2 -mfma; only added to the
/// build on x86-64). Conventions shared by every kernel here:
///
///  - GEMM accumulates with vfmadd in the same ascending-k order as the
///    scalar tiles, so results within this level are deterministic and
///    row-batch consistent; they differ from scalar only by the FMA's
///    skipped intermediate roundings (epsilon-tested).
///  - Column tails use maskload/maskstore and k tails use masked
///    gathers/loads rather than scalar C expressions: a scalar
///    `a*b + c` in this TU could itself be contracted to FMA by the
///    compiler (-mfma + default -ffp-contract), which would silently
///    break the "bit-identical to the scalar level" kernels. Integer
///    and compare-only tails stay scalar — nothing to contract.
///  - Compare+mask (not max/min) implements select so NaN and -0.0
///    behave exactly like the scalar ternaries.

#include <immintrin.h>

namespace elsi {
namespace simd {
namespace {

// All-ones in the low `rem` (0..3) lanes — operand for maskload/maskstore.
inline __m256i TailMask4(size_t rem) {
  alignas(32) static const int64_t kBits[8] = {-1, -1, -1, -1, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kBits + 4 - rem));
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

// One accumulator row block: mr (1..4) rows by up to 8 columns (nv full
// 4-lane vectors plus a rem-lane masked tail). Shared by the NN and TN
// walks — TransposedA only changes where the broadcast scalar comes from.
template <bool TransposedA>
inline void TileNN(const double* a, const double* b, double* c, size_t mr,
                   size_t nc, size_t k, size_t lda, size_t ldb, size_t ldc) {
  const size_t nv = nc / 4;
  const size_t rem = nc % 4;
  const __m256i mask = TailMask4(rem);
  __m256d acc[4][2];
  for (size_t r = 0; r < 4; ++r) {
    acc[r][0] = _mm256_setzero_pd();
    acc[r][1] = _mm256_setzero_pd();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const double* brow = b + kk * ldb;
    __m256d bv[2];
    for (size_t v = 0; v < nv; ++v) bv[v] = _mm256_loadu_pd(brow + 4 * v);
    if (rem != 0) bv[nv] = _mm256_maskload_pd(brow + 4 * nv, mask);
    for (size_t r = 0; r < mr; ++r) {
      const __m256d av = _mm256_set1_pd(TransposedA ? a[kk * lda + r]
                                                    : a[r * lda + kk]);
      for (size_t v = 0; v < nv; ++v) {
        acc[r][v] = _mm256_fmadd_pd(av, bv[v], acc[r][v]);
      }
      if (rem != 0) acc[r][nv] = _mm256_fmadd_pd(av, bv[nv], acc[r][nv]);
    }
  }
  for (size_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (size_t v = 0; v < nv; ++v) _mm256_storeu_pd(crow + 4 * v, acc[r][v]);
    if (rem != 0) _mm256_maskstore_pd(crow + 4 * nv, mask, acc[r][nv]);
  }
}

template <bool TransposedA>
inline void GemmWalk(const double* a, const double* b, double* c, size_t m,
                     size_t k, size_t n, size_t lda) {
  for (size_t i = 0; i < m; i += 4) {
    const size_t mr = m - i < 4 ? m - i : 4;
    const double* ablk = TransposedA ? a + i : a + i * lda;
    for (size_t j = 0; j < n; j += 8) {
      const size_t nc = n - j < 8 ? n - j : 8;
      TileNN<TransposedA>(ablk, b + j, c + i * n + j, mr, nc, k, lda, n, n);
    }
  }
}

// Dot product of two length-k runs, entirely in FMA lanes (masked k tail).
// The lane schedule and the final reduction tree are pure functions of k,
// so every call with the same k reduces in the same order.
inline double Dot(const double* x, const double* y, size_t k) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + kk), _mm256_loadu_pd(y + kk),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + kk + 4),
                           _mm256_loadu_pd(y + kk + 4), acc1);
  }
  if (kk + 4 <= k) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + kk), _mm256_loadu_pd(y + kk),
                           acc0);
    kk += 4;
  }
  if (kk < k) {
    const __m256i mask = TailMask4(k - kk);
    acc1 = _mm256_fmadd_pd(_mm256_maskload_pd(x + kk, mask),
                           _mm256_maskload_pd(y + kk, mask), acc1);
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

void GemmNNAvx2(const double* a, const double* b, double* c, size_t m,
                size_t k, size_t n) {
  if (k == 1) {
    // Rank-1 outer product: one multiply per element — no accumulation, so
    // this path stays bit-identical to the scalar level.
    for (size_t i = 0; i < m; ++i) {
      const __m256d av = _mm256_set1_pd(a[i]);
      double* crow = c + i * n;
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        _mm256_storeu_pd(crow + j, _mm256_mul_pd(av, _mm256_loadu_pd(b + j)));
      }
      if (j < n) {
        const __m256i mask = TailMask4(n - j);
        _mm256_maskstore_pd(
            crow + j, mask,
            _mm256_mul_pd(av, _mm256_maskload_pd(b + j, mask)));
      }
    }
    return;
  }
  if (n == 1) {
    for (size_t i = 0; i < m; ++i) c[i] = Dot(a + i * k, b, k);
    return;
  }
  GemmWalk<false>(a, b, c, m, k, n, k);
}

void GemmTNAvx2(const double* a, const double* b, double* c, size_t m,
                size_t k, size_t n) {
  GemmWalk<true>(a, b, c, m, k, n, m);
}

void GemmNTAvx2(const double* a, const double* b, double* c, size_t m,
                size_t k, size_t n) {
  if (k == 1) {
    for (size_t i = 0; i < m; ++i) {
      const __m256d av = _mm256_set1_pd(a[i]);
      double* crow = c + i * n;
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        // B is (n x 1): its rows are the scalars b[j..j+3].
        _mm256_storeu_pd(crow + j, _mm256_mul_pd(av, _mm256_loadu_pd(b + j)));
      }
      if (j < n) {
        const __m256i mask = TailMask4(n - j);
        _mm256_maskstore_pd(
            crow + j, mask,
            _mm256_mul_pd(av, _mm256_maskload_pd(b + j, mask)));
      }
    }
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = Dot(arow, b + j * k, k);
  }
}

// ---------------------------------------------------------------------------
// FFN epilogues
// ---------------------------------------------------------------------------

void BiasAvx2(double* z, const double* bias, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      _mm256_storeu_pd(
          zr + j, _mm256_add_pd(_mm256_loadu_pd(zr + j),
                                _mm256_loadu_pd(bias + j)));
    }
    if (j < cols) {
      const __m256i mask = TailMask4(cols - j);
      _mm256_maskstore_pd(zr + j, mask,
                          _mm256_add_pd(_mm256_maskload_pd(zr + j, mask),
                                        _mm256_maskload_pd(bias + j, mask)));
    }
  }
}

void BiasReluAvx2(double* z, const double* bias, size_t rows, size_t cols) {
  const __m256d zero = _mm256_setzero_pd();
  for (size_t r = 0; r < rows; ++r) {
    double* zr = z + r * cols;
    size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      const __m256d v = _mm256_add_pd(_mm256_loadu_pd(zr + j),
                                      _mm256_loadu_pd(bias + j));
      // v > 0 ? v : 0 via compare+and: NaN and -0.0 both yield +0.0,
      // exactly like the scalar ternary (max_pd would not).
      const __m256d keep = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
      _mm256_storeu_pd(zr + j, _mm256_and_pd(v, keep));
    }
    if (j < cols) {
      const __m256i mask = TailMask4(cols - j);
      const __m256d v =
          _mm256_add_pd(_mm256_maskload_pd(zr + j, mask),
                        _mm256_maskload_pd(bias + j, mask));
      const __m256d keep = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
      _mm256_maskstore_pd(zr + j, mask, _mm256_and_pd(v, keep));
    }
  }
}

// ---------------------------------------------------------------------------
// Predict-and-scan search kernels
// ---------------------------------------------------------------------------

void LeafDispatchAvx2(const double* fence, size_t fence_n, const double* keys,
                      size_t n, size_t* leaf) {
  const __m256i one = _mm256_set1_epi64x(1);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d kv = _mm256_loadu_pd(keys + i);
    __m256i lo = _mm256_setzero_si256();
    // Same shared halving schedule as the scalar kernel: four lanes walk
    // the fence in lockstep, gathering their probe keys in one
    // instruction. The fence is a few KB at most, so the gathers hit L1.
    for (size_t len = fence_n; len > 1;) {
      const size_t half = len / 2;
      len -= half;
      const __m256i idx =
          _mm256_add_epi64(lo, _mm256_set1_epi64x(half - 1));
      const __m256d f = _mm256_i64gather_pd(fence, idx, 8);
      const __m256d le = _mm256_cmp_pd(f, kv, _CMP_LE_OQ);
      lo = _mm256_add_epi64(
          lo, _mm256_and_si256(_mm256_castpd_si256(le),
                               _mm256_set1_epi64x(half)));
    }
    const __m256d f = _mm256_i64gather_pd(fence, lo, 8);
    const __m256d le = _mm256_cmp_pd(f, kv, _CMP_LE_OQ);
    lo = _mm256_add_epi64(lo,
                          _mm256_and_si256(_mm256_castpd_si256(le), one));
    // leaf = lo == 0 ? 0 : lo - 1.
    const __m256i iszero =
        _mm256_cmpeq_epi64(lo, _mm256_setzero_si256());
    const __m256i dec = _mm256_sub_epi64(lo, one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(leaf + i),
                        _mm256_andnot_si256(iszero, dec));
  }
  for (; i < n; ++i) {
    size_t lo = 0;
    for (size_t len = fence_n; len > 1;) {
      const size_t half = len / 2;
      len -= half;
      lo += fence[lo + half - 1] <= keys[i] ? half : 0;
    }
    lo += fence[lo] <= keys[i] ? 1 : 0;
    leaf[i] = lo == 0 ? 0 : lo - 1;
  }
}

size_t CountLessAvx2(const double* keys, size_t n, double key) {
  const __m256d kv = _mm256_set1_pd(key);
  size_t i = 0;
  size_t cnt = 0;
  for (; i + 4 <= n; i += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(keys + i), kv, _CMP_LT_OQ));
    // Sorted input: the compare mask is a prefix mask, so its popcount is
    // the in-vector lower bound; anything short of all-ones ends the run.
    cnt += static_cast<size_t>(__builtin_popcount(m));
    if (m != 0xF) return cnt;
  }
  for (; i < n && keys[i] < key; ++i) ++cnt;
  return cnt;
}

size_t CountLessEqualAvx2(const double* keys, size_t n, double bound) {
  const __m256d kv = _mm256_set1_pd(bound);
  size_t i = 0;
  size_t cnt = 0;
  for (; i + 4 <= n; i += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(keys + i), kv, _CMP_LE_OQ));
    cnt += static_cast<size_t>(__builtin_popcount(m));
    if (m != 0xF) return cnt;
  }
  for (; i < n && keys[i] <= bound; ++i) ++cnt;
  return cnt;
}

// ---------------------------------------------------------------------------
// Geometry kernels
// ---------------------------------------------------------------------------

// Point is a 24-byte {x, y, id} AoS record; lane t of a 4-point group
// reads doubles 3t (x) and 3t + 1 (y) via gather.
inline __m256i XIdxBase() { return _mm256_set_epi64x(9, 6, 3, 0); }

void ContainsMaskAvx2(const Point* pts, size_t n, const Rect& w,
                      uint8_t* mask) {
  const double* base = reinterpret_cast<const double*>(pts);
  const __m256d lox = _mm256_set1_pd(w.lo_x), hix = _mm256_set1_pd(w.hi_x);
  const __m256d loy = _mm256_set1_pd(w.lo_y), hiy = _mm256_set1_pd(w.hi_y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i xi =
        _mm256_add_epi64(XIdxBase(), _mm256_set1_epi64x(3 * i));
    const __m256i yi = _mm256_add_epi64(xi, _mm256_set1_epi64x(1));
    const __m256d x = _mm256_i64gather_pd(base, xi, 8);
    const __m256d y = _mm256_i64gather_pd(base, yi, 8);
    const __m256d inx = _mm256_and_pd(_mm256_cmp_pd(x, lox, _CMP_GE_OQ),
                                      _mm256_cmp_pd(x, hix, _CMP_LE_OQ));
    const __m256d iny = _mm256_and_pd(_mm256_cmp_pd(y, loy, _CMP_GE_OQ),
                                      _mm256_cmp_pd(y, hiy, _CMP_LE_OQ));
    const int bits = _mm256_movemask_pd(_mm256_and_pd(inx, iny));
    mask[i] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    mask[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    mask[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
  }
  for (; i < n; ++i) mask[i] = w.Contains(pts[i]) ? 1 : 0;
}

void SquaredDistancesAvx2(const Point* pts, size_t n, double qx, double qy,
                          double* d2) {
  const double* base = reinterpret_cast<const double*>(pts);
  const __m256d qxv = _mm256_set1_pd(qx);
  const __m256d qyv = _mm256_set1_pd(qy);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i xi =
        _mm256_add_epi64(XIdxBase(), _mm256_set1_epi64x(3 * i));
    const __m256i yi = _mm256_add_epi64(xi, _mm256_set1_epi64x(1));
    const __m256d dx = _mm256_sub_pd(_mm256_i64gather_pd(base, xi, 8), qxv);
    const __m256d dy = _mm256_sub_pd(_mm256_i64gather_pd(base, yi, 8), qyv);
    // Explicit mul+add (no FMA): bit-identical to geometry.cc's scalar
    // dx*dx + dy*dy, which the baseline ISA cannot contract.
    _mm256_storeu_pd(
        d2 + i,
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  }
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_set_pd(pts[i + 1].x, pts[i].x);
    const __m128d y = _mm_set_pd(pts[i + 1].y, pts[i].y);
    const __m128d dx = _mm_sub_pd(x, _mm256_castpd256_pd128(qxv));
    const __m128d dy = _mm_sub_pd(y, _mm256_castpd256_pd128(qyv));
    _mm_storeu_pd(d2 + i,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  if (i < n) {
    const __m128d dx = _mm_sub_sd(_mm_set_sd(pts[i].x), _mm_set_sd(qx));
    const __m128d dy = _mm_sub_sd(_mm_set_sd(pts[i].y), _mm_set_sd(qy));
    _mm_store_sd(d2 + i, _mm_add_sd(_mm_mul_sd(dx, dx), _mm_mul_sd(dy, dy)));
  }
}

void BatchedLowerBoundAvx2(const double* keys, SearchState* states,
                           size_t* work, size_t active) {
  // Latency-bound on the probe loads; the scalar software-pipelined loop
  // already overlaps those misses, so AVX2 (no compress/scatter) has
  // nothing to add. Route to the scalar table's implementation.
  internal::ScalarKernels()->batched_lower_bound(keys, states, work, active);
}

}  // namespace

namespace internal {

const Kernels* Avx2Kernels() {
  static const Kernels table = {
      Level::kAvx2,      GemmNNAvx2,       GemmTNAvx2,
      GemmNTAvx2,        BiasAvx2,         BiasReluAvx2,
      LeafDispatchAvx2,  CountLessAvx2,    CountLessEqualAvx2,
      ContainsMaskAvx2,  SquaredDistancesAvx2,
      BatchedLowerBoundAvx2,
  };
  return &table;
}

}  // namespace internal
}  // namespace simd
}  // namespace elsi
