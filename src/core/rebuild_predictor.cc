#include "core/rebuild_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/cdf.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "data/workload.h"
#include "learned/zm_index.h"

namespace elsi {

std::vector<double> RebuildPredictor::Encode(const RebuildFeatures& f) {
  return {
      f.log10_n / 8.0,
      f.dissimilarity,
      f.depth / 8.0,
      std::min(f.update_ratio, 8.0) / 8.0,
      f.cdf_similarity,
  };
}

void RebuildPredictor::Train(const std::vector<RebuildSample>& samples,
                             const TrainOptions& options) {
  ELSI_CHECK(!samples.empty());
  Matrix x(samples.size(), 5);
  Matrix y(samples.size(), 1);
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto enc = Encode(samples[i].features);
    std::copy(enc.begin(), enc.end(), x.RowPtr(i));
    y.At(i, 0) = samples[i].label;
  }
  net_ = std::make_unique<Ffn>(5, options.hidden, 1, options.seed,
                               OutputActivation::kSigmoid);
  FfnTrainOptions train;
  train.learning_rate = options.learning_rate;
  train.epochs = options.epochs;
  net_->Train(x, y, train);
}

double RebuildPredictor::PredictScore(const RebuildFeatures& f) const {
  ELSI_CHECK(trained());
  return net_->Predict1(Encode(f));
}

bool RebuildPredictor::Save(std::ostream& out) const {
  if (!trained()) return false;
  return net_->Save(out);
}

bool RebuildPredictor::Load(std::istream& in) {
  auto net = Ffn::Load(in);
  if (!net.has_value() || net->input_dim() != 5) return false;
  net_ = std::make_unique<Ffn>(std::move(*net));
  return true;
}

namespace {

// Average point-query latency over `queries` probes.
double MeasureQuerySeconds(const SpatialIndex& index,
                           const std::vector<Point>& probes) {
  Timer timer;
  size_t found = 0;
  for (const Point& q : probes) {
    if (index.PointQuery(q)) ++found;
  }
  (void)found;
  return timer.ElapsedSeconds() / std::max<size_t>(1, probes.size());
}

std::vector<double> SortedZKeys(const Dataset& data) {
  const GridQuantizer quantizer(BoundingRect(data));
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    keys[i] = static_cast<double>(
        MortonEncode(quantizer.QuantizeX(data[i].x) >> 6,
                     quantizer.QuantizeY(data[i].y) >> 6));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

std::vector<RebuildSample> GenerateRebuildTrainingData(
    const RebuildTrainerConfig& cfg) {
  std::vector<RebuildSample> samples;
  RankModelConfig model_cfg;
  model_cfg.hidden = {8};
  model_cfg.epochs = 60;
  model_cfg.learning_rate = 0.03;

  const DatasetKind kinds[] = {DatasetKind::kUniform, DatasetKind::kOsm1,
                               DatasetKind::kSkewed, DatasetKind::kNyc};
  for (int d = 0; d < cfg.datasets; ++d) {
    const DatasetKind kind = kinds[d % std::size(kinds)];
    const uint64_t seed = cfg.seed + d * 1777;
    const Dataset base = GenerateDataset(kind, cfg.base_n, seed);

    ZmIndex::Config zcfg;
    zcfg.array.leaf_target = std::max<size_t>(2000, cfg.base_n / 8);
    auto trainer = std::make_shared<DirectTrainer>(model_cfg);
    ZmIndex live(trainer, zcfg);  // Ages without rebuilds.
    live.Build(base);
    const std::vector<double> built_keys = SortedZKeys(base);

    // Skewed insertions from a small hot region.
    Rng rng(seed ^ 0xbeefULL);
    Dataset current = base;
    size_t next_id = cfg.base_n;
    size_t inserted = 0;
    for (int checkpoint = 0; checkpoint < cfg.checkpoints; ++checkpoint) {
      const size_t target =
          cfg.base_n * (1ULL << checkpoint) / 100;  // 2^i percent of n.
      while (inserted < target) {
        const Point p{0.05 + 0.05 * rng.NextDouble(),
                      0.05 + 0.05 * rng.NextDouble(), next_id++};
        live.Insert(p);
        current.push_back(p);
        ++inserted;
      }
      // Rebuilt twin on the full current data.
      ZmIndex rebuilt(trainer, zcfg);
      rebuilt.Build(current);

      const auto probes = SamplePointQueries(current, cfg.queries,
                                             seed ^ (checkpoint * 31ULL));
      const double t_live = MeasureQuerySeconds(live, probes);
      const double t_rebuilt = MeasureQuerySeconds(rebuilt, probes);

      const std::vector<double> current_keys = SortedZKeys(current);
      RebuildSample sample;
      sample.features.log10_n =
          std::log10(static_cast<double>(current.size()));
      sample.features.dissimilarity = UniformDissimilarity(current_keys);
      sample.features.depth = static_cast<double>(live.Depth());
      sample.features.update_ratio =
          static_cast<double>(inserted) / cfg.base_n;
      sample.features.cdf_similarity =
          1.0 - KsDistance(built_keys, current_keys);
      sample.label = t_live > 1.1 * t_rebuilt ? 1.0 : 0.0;
      samples.push_back(sample);

      // Counterexample from the freshly rebuilt index's perspective: the
      // update ratio is 0 and sim(D', D) is 1 again, and another rebuild
      // would gain nothing — label 0. Without these the predictor keys on
      // the (persistently high) skew feature and re-fires after every
      // rebuild.
      RebuildSample fresh = sample;
      fresh.features.update_ratio = 0.0;
      fresh.features.cdf_similarity = 1.0;
      fresh.label = 0.0;
      samples.push_back(fresh);
    }
  }
  return samples;
}

}  // namespace elsi
