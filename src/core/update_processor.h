#ifndef ELSI_CORE_UPDATE_PROCESSOR_H_
#define ELSI_CORE_UPDATE_PROCESSOR_H_

#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "core/rebuild_predictor.h"
#include "curve/zorder.h"

namespace elsi {

struct UpdateProcessorConfig {
  /// Run the rebuild predictor after every f_u updates (Sec. IV-B2).
  size_t f_u = 512;
  /// Base-CDF sample size stored at build time (the paper stores the full
  /// O(n) CDF vector; a bounded sample bounds memory at the same accuracy).
  size_t cdf_sample = 4096;
  /// Evaluation grid for the mixture-CDF similarity.
  size_t eval_points = 512;
  bool enable_rebuild = true;
  /// The predictor is only consulted once at least this fraction of the
  /// built set has been updated since the last (re)build, preventing
  /// rebuild thrash on persistently skewed data whose dist(Du, D') stays
  /// high right after a rebuild.
  double min_update_ratio = 0.02;
  uint64_t seed = 42;
};

/// ELSI's update processor (Sec. IV-B2): routes updates to the base index,
/// maintains the CDF of the built data set and of the updated set D', and
/// every f_u updates asks the rebuild predictor whether to trigger a full
/// rebuild through the build API. With `enable_rebuild` false (or no
/// predictor) it only tracks statistics — the "-F" variants of Fig. 15.
class UpdateProcessor {
 public:
  /// `index` must outlive the processor. `predictor` may be null.
  UpdateProcessor(SpatialIndex* index, const RebuildPredictor* predictor,
                  const UpdateProcessorConfig& config = {});

  /// Builds the base index on `data` and records its CDF (the build API).
  void Build(const std::vector<Point>& data);

  void Insert(const Point& p);
  bool Remove(const Point& p);

  size_t rebuild_count() const { return rebuilds_; }
  size_t update_count() const { return inserts_ + deletes_; }

  /// sim(D', D) between the updated and the built key distributions.
  double CurrentSimilarity() const;

  /// dist(Du, D') of the updated key distribution.
  double CurrentDissimilarity() const;

  /// The features the predictor last saw (diagnostics).
  RebuildFeatures CurrentFeatures() const;

  const SpatialIndex& index() const { return *index_; }

 private:
  double Key(const Point& p) const;
  void RecordBase(const std::vector<Point>& data);
  void MaybeRebuild();
  /// Mixture ECDF of D' = base + inserts - deletes at x.
  double UpdatedCdf(double x) const;
  std::vector<double> EvalGrid() const;

  SpatialIndex* index_;
  const RebuildPredictor* predictor_;
  UpdateProcessorConfig config_;

  std::unique_ptr<GridQuantizer> quantizer_;
  std::vector<double> base_sample_;  // Sorted key sample of the built set.
  size_t built_n_ = 0;
  mutable std::vector<double> inserted_keys_;  // Sorted lazily.
  mutable bool inserted_sorted_ = true;
  mutable std::vector<double> deleted_keys_;
  mutable bool deleted_sorted_ = true;
  size_t inserts_ = 0;
  size_t deletes_ = 0;
  size_t since_check_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace elsi

#endif  // ELSI_CORE_UPDATE_PROCESSOR_H_
