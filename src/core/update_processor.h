#ifndef ELSI_CORE_UPDATE_PROCESSOR_H_
#define ELSI_CORE_UPDATE_PROCESSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "core/rebuild_predictor.h"
#include "curve/zorder.h"

namespace elsi {

/// Durability hook: the persist layer's WAL implements this. The processor
/// calls Log* BEFORE touching the index, so a crash between the log append
/// and the in-memory mutation replays the operation instead of losing it.
/// Deletes are logged even when the point turns out to be absent — replaying
/// a failed delete is a no-op, while the reverse order would lose updates.
///
/// Visibility vs durability under lock-free serving: because the record is
/// framed before the index mutation, an update is never visible to
/// concurrent readers without its WAL record existing in the OS. With
/// group commit (fsync_every > 1) the record may still be lost by a power
/// cut after it became visible — a bounded window of at most
/// fsync_every - 1 trailing records (WalWriter::durable_lsn marks the
/// boundary; fsync_every = 1 closes the window). Crash-point tests in
/// tests/persist_test.cc pin this contract.
class UpdateLogSink {
 public:
  virtual ~UpdateLogSink() = default;
  virtual void LogInsert(const Point& p) = 0;
  virtual void LogDelete(const Point& p) = 0;
};

struct UpdateProcessorConfig {
  /// Run the rebuild predictor after every f_u updates (Sec. IV-B2).
  size_t f_u = 512;
  /// Base-CDF sample size stored at build time (the paper stores the full
  /// O(n) CDF vector; a bounded sample bounds memory at the same accuracy).
  size_t cdf_sample = 4096;
  /// Evaluation grid for the mixture-CDF similarity.
  size_t eval_points = 512;
  bool enable_rebuild = true;
  /// The predictor is only consulted once at least this fraction of the
  /// built set has been updated since the last (re)build, preventing
  /// rebuild thrash on persistently skewed data whose dist(Du, D') stays
  /// high right after a rebuild.
  double min_update_ratio = 0.02;
  uint64_t seed = 42;
};

/// ELSI's update processor (Sec. IV-B2): routes updates to the base index,
/// maintains the CDF of the built data set and of the updated set D', and
/// every f_u updates asks the rebuild predictor whether to trigger a full
/// rebuild through the build API. With `enable_rebuild` false (or no
/// predictor) it only tracks statistics — the "-F" variants of Fig. 15.
class UpdateProcessor {
 public:
  /// `index` must outlive the processor. `predictor` may be null.
  UpdateProcessor(SpatialIndex* index, const RebuildPredictor* predictor,
                  const UpdateProcessorConfig& config = {});

  /// Builds the base index on `data` and records its CDF (the build API).
  void Build(const std::vector<Point>& data);

  void Insert(const Point& p);
  bool Remove(const Point& p);

  size_t rebuild_count() const { return rebuilds_; }
  size_t update_count() const { return inserts_ + deletes_; }

  /// sim(D', D) between the updated and the built key distributions.
  double CurrentSimilarity() const;

  /// dist(Du, D') of the updated key distribution.
  double CurrentDissimilarity() const;

  /// The features the predictor last saw (diagnostics).
  RebuildFeatures CurrentFeatures() const;

  const SpatialIndex& index() const { return *index_; }

  /// Installs (or clears) the durability sink consulted before every update.
  void set_log_sink(UpdateLogSink* sink) { log_sink_ = sink; }

  /// Overrides the rebuild decision's action: when set, a triggered rebuild
  /// invokes the handler instead of rebuilding in place. The persist layer
  /// uses this to run its atomic rebuild-swap (snapshot + pointer swap)
  /// outside the processor. The handler runs inside Insert/Remove, so it
  /// must not re-enter this processor.
  void set_rebuild_handler(std::function<void()> handler) {
    rebuild_handler_ = std::move(handler);
  }

  /// Toggles the rebuild predictor (WAL replay disables it so recovery
  /// reproduces the live index state before any rebuild policy kicks in).
  void set_rebuild_enabled(bool enabled) { config_.enable_rebuild = enabled; }

  /// Re-points the processor at a freshly built index holding `data` and
  /// records its base CDF without building again. The persist layer calls
  /// this after a rebuild-swap or snapshot load; `count_rebuild` says
  /// whether to account it as a rebuild.
  void AdoptIndex(SpatialIndex* index, const std::vector<Point>& data,
                  bool count_rebuild);

 private:
  double Key(const Point& p) const;
  void RecordBase(const std::vector<Point>& data);
  void MaybeRebuild();
  /// Mixture ECDF of D' = base + inserts - deletes at x.
  double UpdatedCdf(double x) const;
  std::vector<double> EvalGrid() const;

  SpatialIndex* index_;
  const RebuildPredictor* predictor_;
  UpdateProcessorConfig config_;
  UpdateLogSink* log_sink_ = nullptr;
  std::function<void()> rebuild_handler_;

  std::unique_ptr<GridQuantizer> quantizer_;
  std::vector<double> base_sample_;  // Sorted key sample of the built set.
  size_t built_n_ = 0;
  mutable std::vector<double> inserted_keys_;  // Sorted lazily.
  mutable bool inserted_sorted_ = true;
  mutable std::vector<double> deleted_keys_;
  mutable bool deleted_sorted_ = true;
  size_t inserts_ = 0;
  size_t deletes_ = 0;
  size_t since_check_ = 0;
  size_t rebuilds_ = 0;
};

}  // namespace elsi

#endif  // ELSI_CORE_UPDATE_PROCESSOR_H_
