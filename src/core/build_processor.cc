#include "core/build_processor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/cdf.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {

namespace {

obs::Histogram& MethodBuildMsHistogram(BuildMethodId method) {
  return obs::GetHistogram("build.method_ms{method=" + BuildMethodName(method) + "}",
                           obs::HistogramSpec::LatencyMs());
}

}  // namespace

BuildProcessor::BuildProcessor(const BuildProcessorConfig& config,
                               std::shared_ptr<MethodSelector> selector)
    : config_(config), selector_(std::move(selector)) {
  ELSI_CHECK(!config.enabled.empty());
  // Pre-register the build/selector metrics so snapshots always contain
  // them (at zero) even before the first TrainModel call.
  obs::GetCounter("build.models");
  obs::GetCounter("selector.hit");
  obs::GetCounter("selector.miss");
  for (BuildMethodId id : config_.enabled) {
    MethodBuildMsHistogram(id);
    obs::GetCounter("build.models{method=" + BuildMethodName(id) + "}");
  }
  methods_[BuildMethodId::kSP] =
      std::make_unique<SystematicSampling>(config_.sp);
  methods_[BuildMethodId::kRSP] =
      std::make_unique<RandomSampling>(config_.rsp, config_.seed);
  methods_[BuildMethodId::kCL] = std::make_unique<ClusteringMethod>(config_.cl);
  methods_[BuildMethodId::kMR] =
      std::make_unique<ModelReuse>(config_.mr, config_.model);
  methods_[BuildMethodId::kRS] =
      std::make_unique<RepresentativeSet>(config_.rs);
  methods_[BuildMethodId::kRL] =
      std::make_unique<ReinforcementMethod>(config_.rl);
  // Offline preparation for the enabled methods (MR pool pre-training);
  // deliberately outside the per-build instrumentation, as in the paper.
  for (BuildMethodId id : config_.enabled) {
    if (id == BuildMethodId::kOG) continue;  // OG has no method object.
    MethodFor(id)->Prepare();
  }
}

BuildMethod* BuildProcessor::MethodFor(BuildMethodId id) {
  const auto it = methods_.find(id);
  ELSI_CHECK(it != methods_.end()) << "no method " << BuildMethodName(id);
  return it->second.get();
}

uint64_t BuildProcessor::PartitionSeed(
    const std::vector<double>& sorted_keys) const {
  const auto bits = [](double d) {
    uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  SplitMix64 mix(config_.seed ^
                 (sorted_keys.size() * 0x9e3779b97f4a7c15ULL));
  uint64_t h = mix.Next() ^ bits(sorted_keys.front());
  h = SplitMix64(h).Next() ^ bits(sorted_keys.back());
  h = SplitMix64(h).Next() ^ bits(sorted_keys[sorted_keys.size() / 2]);
  return SplitMix64(h).Next();
}

RankModel BuildProcessor::TrainModel(
    const std::vector<Point>& sorted_pts,
    const std::vector<double>& sorted_keys,
    const std::function<double(const Point&)>& key_fn) {
  ELSI_CHECK(!sorted_keys.empty());
  ELSI_CHECK_EQ(sorted_pts.size(), sorted_keys.size());
  ELSI_TRACE_SPAN("build.train_model");
  BuildCallRecord record;
  record.n = sorted_keys.size();

  // Method selection: one scorer invocation over (|D|, dist(Du, D)).
  BuildMethodId method = config_.enabled.front();
  {
    ELSI_TRACE_SPAN("build.select");
    static obs::Histogram& select_us =
        obs::GetHistogram("build.select_us", obs::HistogramSpec::LatencyUs());
    ScopedTimer select_timer(&select_us, &record.select_seconds);
    if (selector_ != nullptr) {
      const double log10_n = std::log10(static_cast<double>(record.n));
      const double dissim = UniformDissimilarity(sorted_keys);
      std::lock_guard<std::mutex> lock(selector_mutex_);
      method = selector_->Choose(config_.enabled, log10_n, dissim);
    }
  }
  record.method = method;

  const BuildContext ctx{sorted_pts, sorted_keys, key_fn};
  RankModel model;
  RankModelConfig model_cfg = config_.model;
  model_cfg.seed = PartitionSeed(sorted_keys);

  bool reused = false;
  std::vector<double> training_keys;
  if (method != BuildMethodId::kOG) {
    // Ds construction (the method-specific "extra" cost of Table I).
    ELSI_TRACE_SPAN("build.ds");
    static obs::Histogram& ds_us =
        obs::GetHistogram("build.ds_us", obs::HistogramSpec::LatencyUs());
    ScopedTimer extra_timer(&ds_us, &record.extra_seconds);
    BuildMethod* impl = MethodFor(method);
    reused = impl->TryReuseModel(ctx, &model);
    if (!reused) {
      training_keys = impl->ComputeTrainingSet(ctx);
      // Top up degenerate training sets with a systematic sample so the
      // model always sees a minimally informative CDF.
      const size_t floor_size = std::min(record.n, config_.min_training_set);
      if (training_keys.size() < floor_size) {
        const size_t stride = std::max<size_t>(1, record.n / floor_size);
        for (size_t i = 0; i < record.n; i += stride) {
          training_keys.push_back(sorted_keys[i]);
        }
        std::sort(training_keys.begin(), training_keys.end());
      }
    }
  }

  {
    ELSI_TRACE_SPAN("build.train");
    static obs::Histogram& train_us =
        obs::GetHistogram("build.train_us", obs::HistogramSpec::LatencyUs());
    ScopedTimer train_timer(&train_us, &record.train_seconds);
    if (!reused) {
      const std::vector<double>& keys =
          method == BuildMethodId::kOG ? sorted_keys : training_keys;
      model.Train(keys, sorted_keys.front(), sorted_keys.back(), model_cfg);
      record.training_size = keys.size();
    }
  }

  // Line 6 of Algorithm 1: error bounds from one prediction pass over D.
  {
    ELSI_TRACE_SPAN("build.bounds");
    static obs::Histogram& bounds_us =
        obs::GetHistogram("build.bounds_us", obs::HistogramSpec::LatencyUs());
    ScopedTimer bounds_timer(&bounds_us, &record.bounds_seconds);
    model.ComputeErrorBounds(sorted_keys);
  }
  record.error_magnitude = model.err_l() + model.err_u();

  RecordObservability(record);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  }
  return model;
}

void BuildProcessor::RecordObservability(const BuildCallRecord& record) {
  static obs::Counter& models = obs::GetCounter("build.models");
  static obs::Histogram& training_size = obs::GetHistogram(
      "build.training_size", obs::HistogramSpec::Count());
  models.Add();
  obs::GetCounter("build.models{method=" + BuildMethodName(record.method) +
                  "}")
      .Add();
  // Observed per-call cost of the chosen method: Ds construction plus
  // training (selection and bounds costs are method-independent).
  const double cost_seconds = record.extra_seconds + record.train_seconds;
  MethodBuildMsHistogram(record.method).Observe(cost_seconds * 1e3);
  if (record.training_size > 0) {
    training_size.Observe(static_cast<double>(record.training_size));
  }

  // Selector hit/miss: with no counterfactual runs available, score the
  // choice against running means of observed per-method costs — a "hit"
  // when the chosen method's mean is the lowest seen so far.
  if (selector_ == nullptr) return;
  bool hit = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MethodCost& cost = method_costs_[record.method];
    cost.total_seconds += cost_seconds;
    ++cost.calls;
    const double chosen_mean = cost.total_seconds /
                               static_cast<double>(cost.calls);
    for (const auto& [id, other] : method_costs_) {
      if (other.calls == 0) continue;
      if (other.total_seconds / static_cast<double>(other.calls) <
          chosen_mean) {
        hit = false;
        break;
      }
    }
  }
  static obs::Counter& hits = obs::GetCounter("selector.hit");
  static obs::Counter& misses = obs::GetCounter("selector.miss");
  (hit ? hits : misses).Add();
}

double BuildProcessor::TotalTrainSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const BuildCallRecord& r : records_) total += r.train_seconds;
  return total;
}

double BuildProcessor::TotalExtraSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const BuildCallRecord& r : records_) {
    total += r.extra_seconds + r.select_seconds;
  }
  return total;
}

std::vector<BuildMethodId> DefaultEnabledMethods(
    const std::string& index_name) {
  if (index_name == "LISA") {
    // CL and RL synthesise points not in D; LISA's grid construction
    // depends on D, so they do not apply (Sec. VII-A).
    return {BuildMethodId::kSP, BuildMethodId::kMR, BuildMethodId::kRS,
            BuildMethodId::kOG};
  }
  return {BuildMethodId::kSP, BuildMethodId::kCL, BuildMethodId::kMR,
          BuildMethodId::kRS, BuildMethodId::kRL, BuildMethodId::kOG};
}

}  // namespace elsi
