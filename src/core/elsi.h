#ifndef ELSI_CORE_ELSI_H_
#define ELSI_CORE_ELSI_H_

#include <memory>
#include <string>

#include "common/spatial_index.h"
#include "core/build_processor.h"
#include "core/method_scorer.h"
#include "core/method_selector.h"
#include "core/rebuild_predictor.h"
#include "core/scorer_trainer.h"
#include "core/update_processor.h"
#include "learned/lisa_index.h"
#include "learned/ml_index.h"
#include "learned/rsmi_index.h"
#include "learned/zm_index.h"

namespace elsi {

/// The four base learned spatial indices ELSI is integrated with
/// (Sec. VII-A).
enum class BaseIndexKind { kZM, kML, kRSMI, kLISA };

inline constexpr BaseIndexKind kAllBaseIndexKinds[] = {
    BaseIndexKind::kZM, BaseIndexKind::kML, BaseIndexKind::kRSMI,
    BaseIndexKind::kLISA};

inline std::string BaseIndexKindName(BaseIndexKind kind) {
  switch (kind) {
    case BaseIndexKind::kZM:
      return "ZM";
    case BaseIndexKind::kML:
      return "ML";
    case BaseIndexKind::kRSMI:
      return "RSMI";
    case BaseIndexKind::kLISA:
      return "LISA";
  }
  return "?";
}

/// Structural scale knobs shared by the factory below. `leaf_target`
/// controls the points per trained model (RSMI leaf capacity, RMI segment
/// size); the paper's GPU-scale value is 10k and benches scale it with n.
struct BaseIndexScale {
  size_t leaf_target = 10000;
  size_t block_capacity = kDefaultBlockCapacity;
  /// Worker pool used by the index's build path; null means
  /// ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

/// Builds a base index wired to `trainer`. Pass a DirectTrainer for the
/// paper's OG baselines and a BuildProcessor for the "-F" (ELSI) variants.
inline std::unique_ptr<SpatialIndex> MakeBaseIndex(
    BaseIndexKind kind, std::shared_ptr<ModelTrainer> trainer,
    const BaseIndexScale& scale = {}) {
  switch (kind) {
    case BaseIndexKind::kZM: {
      ZmIndex::Config cfg;
      cfg.array.leaf_target = scale.leaf_target;
      cfg.array.block_capacity = scale.block_capacity;
      cfg.array.pool = scale.pool;
      return std::make_unique<ZmIndex>(std::move(trainer), cfg);
    }
    case BaseIndexKind::kML: {
      MlIndex::Config cfg;
      cfg.array.leaf_target = scale.leaf_target;
      cfg.array.block_capacity = scale.block_capacity;
      cfg.array.pool = scale.pool;
      return std::make_unique<MlIndex>(std::move(trainer), cfg);
    }
    case BaseIndexKind::kRSMI: {
      RsmiIndex::Config cfg;
      cfg.leaf_capacity = scale.leaf_target;
      cfg.block_capacity = scale.block_capacity;
      cfg.pool = scale.pool;
      return std::make_unique<RsmiIndex>(std::move(trainer), cfg);
    }
    case BaseIndexKind::kLISA: {
      LisaIndex::Config cfg;
      cfg.shard_size = scale.block_capacity;
      cfg.pool = scale.pool;
      return std::make_unique<LisaIndex>(std::move(trainer), cfg);
    }
  }
  return nullptr;
}

/// One-stop ELSI assembly: a build processor restricted to the methods the
/// base index admits, driven by the given selector (null = always the first
/// enabled method).
inline std::shared_ptr<BuildProcessor> MakeElsiProcessor(
    BaseIndexKind kind, BuildProcessorConfig config,
    std::shared_ptr<MethodSelector> selector) {
  config.enabled = DefaultEnabledMethods(BaseIndexKindName(kind));
  return std::make_shared<BuildProcessor>(config, std::move(selector));
}

}  // namespace elsi

#endif  // ELSI_CORE_ELSI_H_
