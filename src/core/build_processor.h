#ifndef ELSI_CORE_BUILD_PROCESSOR_H_
#define ELSI_CORE_BUILD_PROCESSOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/build_method.h"
#include "core/method_selector.h"
#include "core/methods/clustering.h"
#include "core/methods/model_reuse.h"
#include "core/methods/reinforcement.h"
#include "core/methods/representative_set.h"
#include "core/methods/sampling.h"
#include "learned/rank_model.h"

namespace elsi {

struct BuildProcessorConfig {
  RankModelConfig model;
  SamplingConfig sp;
  SamplingConfig rsp;
  ClusteringConfig cl;
  ModelReuseConfig mr;
  RepresentativeSetConfig rs;
  ReinforcementConfig rl;
  /// Methods the base index admits. CL and RL must be dropped for LISA,
  /// whose grid is built from D (Sec. VII-A).
  std::vector<BuildMethodId> enabled = {
      BuildMethodId::kSP, BuildMethodId::kCL, BuildMethodId::kMR,
      BuildMethodId::kRS, BuildMethodId::kRL, BuildMethodId::kOG,
  };
  /// Training sets below this size are topped up by systematic samples so
  /// every model sees a minimally informative CDF.
  size_t min_training_set = 32;
  uint64_t seed = 42;
};

/// Per-call instrumentation backing Table I's cost decomposition.
struct BuildCallRecord {
  BuildMethodId method = BuildMethodId::kOG;
  size_t n = 0;            // Partition size.
  size_t training_size = 0;  // |Ds| (n for OG; 0 for a reused model).
  double select_seconds = 0.0;  // Method scorer invocation + features.
  double extra_seconds = 0.0;   // Ds construction (method-specific).
  double train_seconds = 0.0;   // T(|Ds|).
  double bounds_seconds = 0.0;  // M(n): full-set error-bound pass.
  double error_magnitude = 0.0;  // err_l + err_u.
};

/// ELSI's build processor (Sec. IV-B1, Algorithm 1): for every
/// model-training request of a base index it selects a build method,
/// engineers the reduced training set Ds, trains the model on Ds, and
/// computes error bounds over the full partition. Implements ModelTrainer,
/// so any map-and-sort/predict-and-scan index runs on it unmodified.
///
/// Thread safety: TrainModel may be called concurrently from worker-pool
/// tasks (the parallel build path). Per-model RNG seeds are derived from
/// partition content, never from call order, so concurrent builds produce
/// bit-identical models to the serial path; record accumulation is guarded
/// by a mutex (records() order may vary across runs, totals do not).
class BuildProcessor : public ModelTrainer {
 public:
  /// `selector` may be null: the processor then always picks the first
  /// enabled method (use FixedSelector for the per-method experiments).
  BuildProcessor(const BuildProcessorConfig& config,
                 std::shared_ptr<MethodSelector> selector);

  RankModel TrainModel(
      const std::vector<Point>& sorted_pts,
      const std::vector<double>& sorted_keys,
      const std::function<double(const Point&)>& key_fn) override;

  /// Snapshot of the per-call instrumentation. Records land in completion
  /// order, which is nondeterministic under a multi-thread pool; sort by a
  /// content field before comparing runs.
  std::vector<BuildCallRecord> records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }
  void ClearRecords() {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
  }

  /// Totals across records (Table I rows).
  double TotalTrainSeconds() const;
  double TotalExtraSeconds() const;

  /// Methods this processor may choose.
  const std::vector<BuildMethodId>& enabled() const {
    return config_.enabled;
  }

  const BuildProcessorConfig& config() const { return config_; }

 private:
  BuildMethod* MethodFor(BuildMethodId id);

  /// Order-independent per-partition model seed: a hash of the partition's
  /// cardinality and key extremes mixed with the processor seed, so the
  /// serial and every parallel schedule train bit-identical models.
  uint64_t PartitionSeed(const std::vector<double>& sorted_keys) const;

  /// Updates per-method observed-cost means and the selector.hit/miss
  /// counters; records telemetry for one completed call.
  void RecordObservability(const BuildCallRecord& record);

  BuildProcessorConfig config_;
  std::shared_ptr<MethodSelector> selector_;
  std::map<BuildMethodId, std::unique_ptr<BuildMethod>> methods_;

  /// Running mean of observed per-call cost (Ds construction + training)
  /// for each method, feeding the selector hit/miss telemetry: a choice is
  /// a "hit" when the chosen method's mean is the minimum among methods
  /// with observations so far.
  struct MethodCost {
    double total_seconds = 0.0;
    uint64_t calls = 0;
  };

  mutable std::mutex mutex_;          // Guards records_ and method_costs_.
  std::mutex selector_mutex_;         // Selectors may be stateful (Rand).
  std::vector<BuildCallRecord> records_;
  std::map<BuildMethodId, MethodCost> method_costs_;
};

/// The default enabled-method pool for a base index by name, honouring the
/// paper's applicability restrictions (no CL/RL for LISA).
std::vector<BuildMethodId> DefaultEnabledMethods(const std::string& index_name);

}  // namespace elsi

#endif  // ELSI_CORE_BUILD_PROCESSOR_H_
