#include "core/scorer_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/cdf.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "curve/zorder.h"
#include "data/synthetic.h"

namespace elsi {
namespace {

// The measurement harness keys points by a 26-bit-per-dimension Z-order
// value over the data's bounding box (the same mapping ZM uses).
struct Harness {
  GridQuantizer quantizer;
  static constexpr int kShift = 6;  // 32 - 26 bits.

  explicit Harness(const Rect& domain) : quantizer(domain) {}

  double Key(const Point& p) const {
    return static_cast<double>(
        MortonEncode(quantizer.QuantizeX(p.x) >> kShift,
                     quantizer.QuantizeY(p.y) >> kShift));
  }
};

double ZKeyDissimilarity(const Dataset& data) {
  const Harness harness(BoundingRect(data));
  std::vector<double> keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) keys[i] = harness.Key(data[i]);
  std::sort(keys.begin(), keys.end());
  return UniformDissimilarity(keys);
}

}  // namespace

double CalibratePowerForDissimilarity(double target, size_t sample_n,
                                      uint64_t seed) {
  ELSI_CHECK(target >= 0.0 && target < 1.0);
  if (target <= 1e-9) return 1.0;
  double lo = 1.0;
  double hi = 256.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = std::sqrt(lo * hi);  // Geometric bisection.
    const Dataset data = GeneratePower(sample_n, mid, mid, seed);
    const double d = ZKeyDissimilarity(data);
    if (d < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

BuildMethodId ScorerDatasetGroup::BestMethod(double lambda, double w_q) const {
  BuildMethodId best = BuildMethodId::kOG;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [method, cost] : costs) {
    const double combined =
        lambda * cost.first + (1.0 - lambda) * w_q * cost.second;
    if (combined < best_cost) {
      best_cost = combined;
      best = method;
    }
  }
  return best;
}

ScorerTrainingData GenerateScorerTrainingData(const ScorerTrainerConfig& cfg) {
  ELSI_CHECK_GE(cfg.cardinality_levels, 1);
  ScorerTrainingData out;

  // Calibrate skew exponents once per dissimilarity level.
  std::vector<double> exponents;
  exponents.reserve(cfg.dissimilarities.size());
  for (double d : cfg.dissimilarities) {
    exponents.push_back(CalibratePowerForDissimilarity(d, 20000, cfg.seed));
  }

  // One BuildProcessor per method, shared across data sets so MR's pool is
  // pre-trained once (the paper's offline preparation).
  std::map<BuildMethodId, std::unique_ptr<BuildProcessor>> processors;
  for (BuildMethodId method : cfg.processor.enabled) {
    BuildProcessorConfig pc = cfg.processor;
    pc.enabled = {method};
    processors[method] = std::make_unique<BuildProcessor>(
        pc, std::make_shared<FixedSelector>(method));
  }

  uint64_t dataset_seed = cfg.seed ^ 0xdada5eedULL;
  for (int level = 0; level < cfg.cardinality_levels; ++level) {
    const double log10_n =
        cfg.cardinality_levels == 1
            ? cfg.log10_min
            : cfg.log10_min + (cfg.log10_max - cfg.log10_min) * level /
                                  (cfg.cardinality_levels - 1);
    const size_t n = static_cast<size_t>(std::pow(10.0, log10_n));
    for (size_t di = 0; di < cfg.dissimilarities.size(); ++di) {
      ++dataset_seed;
      const Dataset data =
          GeneratePower(n, exponents[di], exponents[di], dataset_seed);
      const Harness harness(BoundingRect(data));
      const auto key_fn = [&harness](const Point& p) {
        return harness.Key(p);
      };

      // Map-and-sort once per data set.
      std::vector<double> keys(data.size());
      for (size_t i = 0; i < data.size(); ++i) keys[i] = harness.Key(data[i]);
      std::vector<size_t> order(data.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return keys[a] < keys[b];
      });
      std::vector<Point> sorted_pts(data.size());
      std::vector<double> sorted_keys(data.size());
      for (size_t i = 0; i < data.size(); ++i) {
        sorted_pts[i] = data[order[i]];
        sorted_keys[i] = keys[order[i]];
      }
      const double measured_dissim = UniformDissimilarity(sorted_keys);

      // Probe keys for query timing, data-distributed.
      Rng rng(dataset_seed ^ 0x9e37ULL);
      std::vector<double> probes(cfg.queries);
      for (double& p : probes) p = sorted_keys[rng.NextBelow(n)];

      ScorerDatasetGroup group;
      group.log10_n = log10_n;
      group.dissimilarity = measured_dissim;

      std::map<BuildMethodId, std::pair<double, double>> raw;
      const std::function<double(const Point&)> key_fn_std = key_fn;
      for (BuildMethodId method : cfg.processor.enabled) {
        BuildProcessor* proc = processors[method].get();
        Timer build_timer;
        const RankModel model =
            proc->TrainModel(sorted_pts, sorted_keys, key_fn_std);
        const double build_seconds = build_timer.ElapsedSeconds();

        Timer query_timer;
        size_t found = 0;
        for (double probe : probes) {
          const auto [lo, hi] = model.SearchRange(probe, n);
          const auto begin = sorted_keys.begin() + lo;
          const auto end = sorted_keys.begin() + std::min(hi + 1, n);
          const auto it = std::lower_bound(begin, end, probe);
          if (it != end && *it == probe) ++found;
        }
        const double query_seconds =
            query_timer.ElapsedSeconds() / std::max<size_t>(1, cfg.queries);
        ELSI_CHECK_EQ(found, cfg.queries)
            << BuildMethodName(method) << " missed indexed keys";
        raw[method] = {build_seconds, query_seconds};
      }

      // Normalise to OG = 1 on both axes when OG was measured.
      double og_build = 1.0;
      double og_query = 1.0;
      const auto og = raw.find(BuildMethodId::kOG);
      if (og != raw.end()) {
        og_build = std::max(og->second.first, 1e-12);
        og_query = std::max(og->second.second, 1e-12);
      }
      for (const auto& [method, cost] : raw) {
        ScorerSample sample;
        sample.method = method;
        sample.log10_n = log10_n;
        sample.dissimilarity = measured_dissim;
        sample.build_cost = cost.first / og_build;
        sample.query_cost = cost.second / og_query;
        out.samples.push_back(sample);
        group.costs[method] = {sample.build_cost, sample.query_cost};
      }
      out.groups.push_back(std::move(group));
    }
  }
  return out;
}

double SelectorAccuracy(MethodSelector* selector,
                        const ScorerTrainingData& data, double lambda,
                        double w_q, double tolerance) {
  ELSI_CHECK(selector != nullptr);
  if (data.groups.empty()) return 0.0;
  size_t correct = 0;
  for (const ScorerDatasetGroup& group : data.groups) {
    std::vector<BuildMethodId> candidates;
    candidates.reserve(group.costs.size());
    for (const auto& [method, cost] : group.costs) {
      candidates.push_back(method);
    }
    const BuildMethodId chosen =
        selector->Choose(candidates, group.log10_n, group.dissimilarity);
    if (tolerance <= 0.0) {
      if (chosen == group.BestMethod(lambda, w_q)) ++correct;
      continue;
    }
    const auto combined = [&](BuildMethodId m) {
      const auto& cost = group.costs.at(m);
      return lambda * cost.first + (1.0 - lambda) * w_q * cost.second;
    };
    if (combined(chosen) <=
        (1.0 + tolerance) * combined(group.BestMethod(lambda, w_q))) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / data.groups.size();
}

}  // namespace elsi
