#include "core/concurrent_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {
namespace concurrent {

namespace {

obs::Gauge& DeltaDepthGauge() {
  static obs::Gauge& g = obs::GetGauge("concurrent.delta_depth");
  return g;
}

obs::Counter& MergesCounter() {
  static obs::Counter& c = obs::GetCounter("concurrent.merges");
  return c;
}

obs::Histogram& MergeMsHistogram() {
  static obs::Histogram& h =
      obs::GetHistogram("concurrent.merge_ms", obs::HistogramSpec::LatencyMs());
  return h;
}

}  // namespace

ConcurrentIndex::ConcurrentIndex(std::unique_ptr<SpatialIndex> base,
                                 BaseFactory factory,
                                 const ConcurrentIndexConfig& config)
    : epoch_(&EpochManager::Global()),
      config_(config),
      factory_(std::move(factory)) {
  ELSI_CHECK(base != nullptr) << "ConcurrentIndex needs a base index";
  auto* gen = new Generation{
      std::shared_ptr<const SpatialIndex>(std::move(base)), nullptr,
      std::make_shared<ShardedDelta>()};
  root_.store(gen, std::memory_order_seq_cst);
}

ConcurrentIndex::~ConcurrentIndex() {
  // Destruction requires quiescence (no concurrent readers/writers), like
  // any other index here; retired generations may still sit in limbo, so
  // flush them before dropping the root.
  epoch_->DrainAll();
  delete root_.load(std::memory_order_seq_cst);
}

std::string ConcurrentIndex::Name() const {
  EpochManager::Guard guard(*epoch_);
  return "Concurrent(" + Root()->base->Name() + ")";
}

void ConcurrentIndex::Publish(Generation* next) {
  Generation* prev = root_.exchange(next, std::memory_order_seq_cst);
  epoch_->Retire(prev);
}

void ConcurrentIndex::Build(const std::vector<Point>& data) {
  ELSI_CHECK(factory_ != nullptr) << "ConcurrentIndex::Build needs a factory";
  std::lock_guard<std::mutex> lock(merge_mu_);
  std::unique_ptr<SpatialIndex> fresh = factory_();
  fresh->Build(data);
  Publish(new Generation{std::shared_ptr<const SpatialIndex>(std::move(fresh)),
                         nullptr, std::make_shared<ShardedDelta>()});
  epoch_->TryReclaim();
}

void ConcurrentIndex::ReplaceBase(std::unique_ptr<SpatialIndex> fresh) {
  ELSI_TRACE_SPAN("concurrent.replace_base");
  ELSI_CHECK(fresh != nullptr);
  std::lock_guard<std::mutex> lock(merge_mu_);
  Publish(new Generation{std::shared_ptr<const SpatialIndex>(std::move(fresh)),
                         nullptr, std::make_shared<ShardedDelta>()});
  DeltaDepthGauge().Set(0);
  epoch_->TryReclaim();
}

void ConcurrentIndex::Insert(const Point& p) {
  size_t depth = 0;
  {
    EpochManager::Guard guard(*epoch_);
    // A sealed live delta means a merge won the race; the merger published
    // the successor generation BEFORE sealing, so reloading the root always
    // reaches an open delta.
    for (;;) {
      Generation* gen = Root();
      if (gen->live->Insert(p)) {
        depth = gen->live->inserted_count() + gen->live->tombstone_count();
        break;
      }
    }
  }
  DeltaDepthGauge().Set(static_cast<int64_t>(depth));
  if (config_.merge_threshold > 0 && depth >= config_.merge_threshold) {
    // Fold inline on the crossing thread; losers of the try_lock skip — the
    // winner's merge empties the delta for everyone.
    std::unique_lock<std::mutex> lock(merge_mu_, std::try_to_lock);
    if (lock.owns_lock()) MergeLocked();
  }
}

bool ConcurrentIndex::Remove(const Point& p) {
  EpochManager::Guard guard(*epoch_);
  for (;;) {
    Generation* gen = Root();
    // Fast path: the point is an in-delta insert — flag it dead.
    switch (gen->live->RemoveInserted(p)) {
      case ShardedDelta::RemoveResult::kFlagged:
        return true;
      case ShardedDelta::RemoveResult::kSealed:
        continue;  // Merge raced us; retry against the successor.
      case ShardedDelta::RemoveResult::kNotFound:
        break;
    }
    // Slow path: the point lives in the frozen delta or the base; record a
    // tombstone in the live delta. Frozen inserts count as base-resident —
    // the merge folds them into the fresh base, where the tombstone keeps
    // filtering them until the next merge applies it.
    bool exists = gen->frozen != nullptr && gen->frozen->ContainsInserted(p);
    if (!exists) {
      for (const Point& hit :
           gen->base->WindowQuery(Rect::Of(p.x, p.y, p.x, p.y))) {
        if (hit.id == p.id) {
          exists = true;
          break;
        }
      }
    }
    if (!exists || Tombstoned(*gen, p)) return false;
    if (gen->live->AddBaseTombstone(p)) return true;
    // Sealed between the lookup and the append: retry on the successor.
  }
}

bool ConcurrentIndex::Tombstoned(const Generation& gen, const Point& p) {
  if (gen.frozen != nullptr && gen.frozen->IsTombstoned(p)) return true;
  return gen.live->IsTombstoned(p);
}

bool ConcurrentIndex::PointQuery(const Point& q, Point* out) const {
  EpochManager::Guard guard(*epoch_);
  Generation* gen = Root();
  // Delta inserts first: they are the newest state for these coordinates.
  bool hit = false;
  Point found;
  auto probe = [&](const Point& p) {
    if (!hit && p.x == q.x && p.y == q.y) {
      found = p;
      hit = true;
    }
  };
  gen->live->ForEachInserted(probe);
  if (!hit && gen->frozen != nullptr) {
    gen->frozen->ForEachInserted([&](const Point& p) {
      if (!hit && p.x == q.x && p.y == q.y && !gen->live->IsTombstoned(p)) {
        found = p;
        hit = true;
      }
    });
  }
  if (!hit) {
    Point base_hit;
    if (gen->base->PointQuery(q, &base_hit) && !Tombstoned(*gen, base_hit)) {
      found = base_hit;
      hit = true;
    }
  }
  if (hit && out != nullptr) *out = found;
  return hit;
}

void ConcurrentIndex::OverlayWindow(const Generation& gen, const Rect& w,
                                    std::vector<Point>* out) {
  const bool any_tombstones =
      gen.live->tombstone_count() > 0 ||
      (gen.frozen != nullptr && gen.frozen->tombstone_count() > 0);
  if (any_tombstones) {
    out->erase(std::remove_if(out->begin(), out->end(),
                              [&](const Point& p) {
                                return Tombstoned(gen, p);
                              }),
               out->end());
  }
  if (gen.frozen != nullptr) {
    gen.frozen->ForEachInserted([&](const Point& p) {
      if (w.Contains(p) && !gen.live->IsTombstoned(p)) out->push_back(p);
    });
  }
  gen.live->ForEachInserted([&](const Point& p) {
    if (w.Contains(p)) out->push_back(p);
  });
  // Delta overlay breaks the base's canonical order; re-pin it here so the
  // wrapper honours the same (x, y, id) window contract as the base index.
  SortCanonical(out);
}

std::vector<Point> ConcurrentIndex::WindowQuery(const Rect& w) const {
  EpochManager::Guard guard(*epoch_);
  Generation* gen = Root();
  std::vector<Point> out = gen->base->WindowQuery(w);
  OverlayWindow(*gen, w, &out);
  return out;
}

void ConcurrentIndex::WindowQueryBatch(std::span<const Rect> ws,
                                       std::span<std::vector<Point>> out,
                                       const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), ws.size());
  ForEachQueryChunk(ws.size(), opts, [&](size_t begin, size_t end) {
    EpochManager::Guard guard(*epoch_);
    Generation* gen = Root();
    const size_t len = end - begin;
    gen->base->WindowQueryBatch(ws.subspan(begin, len),
                                out.subspan(begin, len), {});
    for (size_t i = begin; i < end; ++i) OverlayWindow(*gen, ws[i], &out[i]);
  });
}

void ConcurrentIndex::PointQueryBatch(std::span<const Point> qs,
                                      std::span<uint8_t> hit,
                                      std::span<Point> out,
                                      const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    EpochManager::Guard guard(*epoch_);
    Generation* gen = Root();
    const size_t len = end - begin;
    gen->base->PointQueryBatch(qs.subspan(begin, len), hit.subspan(begin, len),
                               out.subspan(begin, len), {});
    for (size_t i = begin; i < end; ++i) {
      // Delta inserts are the newest state for these coordinates and win
      // over the base hit, mirroring the scalar probe order exactly.
      bool dhit = false;
      Point found;
      gen->live->ForEachInserted([&](const Point& p) {
        if (!dhit && p.x == qs[i].x && p.y == qs[i].y) {
          found = p;
          dhit = true;
        }
      });
      if (!dhit && gen->frozen != nullptr) {
        gen->frozen->ForEachInserted([&](const Point& p) {
          if (!dhit && p.x == qs[i].x && p.y == qs[i].y &&
              !gen->live->IsTombstoned(p)) {
            found = p;
            dhit = true;
          }
        });
      }
      if (dhit) {
        hit[i] = 1;
        out[i] = found;
      } else if (hit[i] != 0 && Tombstoned(*gen, out[i])) {
        hit[i] = 0;
      }
    }
  });
}

std::vector<Point> ConcurrentIndex::KnnQuery(const Point& q, size_t k) const {
  EpochManager::Guard guard(*epoch_);
  Generation* gen = Root();
  const size_t tombs =
      gen->live->tombstone_count() +
      (gen->frozen != nullptr ? gen->frozen->tombstone_count() : 0);
  const size_t delta_inserts =
      gen->live->inserted_count() +
      (gen->frozen != nullptr ? gen->frozen->inserted_count() : 0);
  if (tombs == 0 && delta_inserts == 0) return gen->base->KnnQuery(q, k);
  // Over-fetch from the base so tombstoned hits can't starve the result,
  // then merge the delta candidates in by distance.
  std::vector<Point> cands = gen->base->KnnQuery(q, k + tombs);
  if (tombs > 0) {
    cands.erase(std::remove_if(cands.begin(), cands.end(),
                               [&](const Point& p) {
                                 return Tombstoned(*gen, p);
                               }),
                cands.end());
  }
  if (gen->frozen != nullptr) {
    gen->frozen->ForEachInserted([&](const Point& p) {
      if (!gen->live->IsTombstoned(p)) cands.push_back(p);
    });
  }
  gen->live->ForEachInserted([&](const Point& p) { cands.push_back(p); });
  std::sort(cands.begin(), cands.end(), [&](const Point& a, const Point& b) {
    return SquaredDistance(a, q) < SquaredDistance(b, q);
  });
  if (cands.size() > k) cands.resize(k);
  return cands;
}

size_t ConcurrentIndex::size() const {
  EpochManager::Guard guard(*epoch_);
  Generation* gen = Root();
  size_t n = gen->base->size() + gen->live->inserted_count() -
             gen->live->dead_count() - gen->live->tombstone_count();
  if (gen->frozen != nullptr) {
    n += gen->frozen->inserted_count() - gen->frozen->dead_count() -
         gen->frozen->tombstone_count();
  }
  return n;
}

std::vector<Point> ConcurrentIndex::CollectAll() const {
  EpochManager::Guard guard(*epoch_);
  Generation* gen = Root();
  std::vector<Point> out = gen->base->CollectAll();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const Point& p) { return Tombstoned(*gen, p); }),
            out.end());
  if (gen->frozen != nullptr) {
    gen->frozen->ForEachInserted([&](const Point& p) {
      if (!gen->live->IsTombstoned(p)) out.push_back(p);
    });
  }
  gen->live->CollectInserted(&out);
  return out;
}

int ConcurrentIndex::Depth() const {
  EpochManager::Guard guard(*epoch_);
  return Root()->base->Depth();
}

size_t ConcurrentIndex::delta_count() const {
  EpochManager::Guard guard(*epoch_);
  Generation* gen = Root();
  size_t n = gen->live->inserted_count() + gen->live->tombstone_count();
  if (gen->frozen != nullptr) {
    n += gen->frozen->inserted_count() + gen->frozen->tombstone_count();
  }
  return n;
}

const SpatialIndex* ConcurrentIndex::UnsafeBase() const {
  return Root()->base.get();
}

std::vector<Point> ConcurrentIndex::CollectMergeInput(const Generation& gen) {
  std::vector<Point> input = gen.base->CollectAll();
  if (gen.frozen != nullptr) {
    if (gen.frozen->tombstone_count() > 0) {
      input.erase(std::remove_if(input.begin(), input.end(),
                                 [&](const Point& p) {
                                   return gen.frozen->IsTombstoned(p);
                                 }),
                  input.end());
    }
    gen.frozen->CollectInserted(&input);
  }
  return input;
}

void ConcurrentIndex::MergeNow() {
  ELSI_CHECK(factory_ != nullptr) << "ConcurrentIndex::MergeNow needs a factory";
  std::lock_guard<std::mutex> lock(merge_mu_);
  MergeLocked();
}

void ConcurrentIndex::MergeLocked() {
  const uint64_t t0 = obs::NowNs();
  Generation* a = Root();
  if (a->live->inserted_count() == 0 && a->live->tombstone_count() == 0) {
    return;  // Nothing to fold.
  }
  // Step 1: publish the intermediate generation FIRST — writers bounced off
  // the sealed delta reload the root and land in the fresh live delta, so
  // they never wait for the fold.
  auto d1 = std::make_shared<ShardedDelta>();
  auto* b = new Generation{a->base, a->live, d1};
  Publish(b);  // Retires a.
  {
    ELSI_TRACE_SPAN("concurrent.seal");
    b->frozen->Seal();
  }
  // Step 2: fold base + frozen delta into a fresh base off to the side.
  // Readers keep serving from generation B the whole time.
  ELSI_TRACE_SPAN("concurrent.fold");
  std::vector<Point> input = CollectMergeInput(*b);
  std::unique_ptr<SpatialIndex> fresh = factory_();
  fresh->Build(input);
  // Step 3: publish the merged generation; B (and the frozen delta) go to
  // limbo until every reader pinned on them has left.
  Publish(new Generation{
      std::shared_ptr<const SpatialIndex>(std::move(fresh)), nullptr, d1});
  merges_.fetch_add(1, std::memory_order_relaxed);
  MergesCounter().Add(1);
  MergeMsHistogram().Observe(static_cast<double>(obs::NowNs() - t0) / 1e6);
  DeltaDepthGauge().Set(
      static_cast<int64_t>(d1->inserted_count() + d1->tombstone_count()));
  epoch_->TryReclaim();
}

}  // namespace concurrent
}  // namespace elsi
