#ifndef ELSI_CORE_METHODS_MODEL_REUSE_H_
#define ELSI_CORE_METHODS_MODEL_REUSE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/build_method.h"
#include "ml/ffn.h"

namespace elsi {

struct ModelReuseConfig {
  /// CDF-space coverage threshold epsilon (paper default 0.5; smaller means
  /// a denser pre-trained pool and better matches).
  double epsilon = 0.5;
  /// Points per synthetic training set.
  size_t synthetic_size = 2048;
  /// Largest power-law exponent covered by the pool's CDF families.
  double max_exponent = 64.0;
};

/// MR (Sec. V-A3): pre-trains index models on synthetic data sets whose
/// CDFs tile the CDF space at resolution epsilon (power-law families x^a
/// and its mirror), then indexes D with the pre-trained model whose
/// synthetic CDF is closest by KS distance — no online training at all.
/// The pool is built lazily once per (epsilon, model config) and reused
/// across build calls, matching the paper's one-off preparation cost.
class ModelReuse : public BuildMethod {
 public:
  ModelReuse(const ModelReuseConfig& config, const RankModelConfig& model);

  BuildMethodId id() const override { return BuildMethodId::kMR; }

  /// Pre-trains the pool (the paper's offline preparation).
  void Prepare() override { EnsurePool(); }

  /// Fallback when no pool entry is within epsilon: a systematic sample
  /// (the paper observes MR may fail to match when epsilon is small).
  std::vector<double> ComputeTrainingSet(const BuildContext& ctx) override;

  bool TryReuseModel(const BuildContext& ctx, RankModel* model) override;

  size_t pool_size();  // Builds the pool on first use.

  /// KS distance between the best pool entry and the normalised keys.
  double BestMatchDistance(const std::vector<double>& sorted_keys);

 private:
  struct PoolEntry {
    std::vector<double> keys;  // Sorted, in [0, 1].
    RankModel model;
  };

  /// Thread-safe lazy pool construction (std::call_once); after it returns
  /// the pool is immutable, so concurrent FindBestEntry reads need no lock.
  void EnsurePool();
  int FindBestEntry(const std::vector<double>& sorted_keys, double* dist);

  ModelReuseConfig config_;
  RankModelConfig model_config_;
  std::once_flag pool_once_;
  std::vector<PoolEntry> pool_;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHODS_MODEL_REUSE_H_
