#include "core/methods/model_reuse.h"

#include <algorithm>
#include <cmath>

#include "common/cdf.h"
#include "common/logging.h"

namespace elsi {

ModelReuse::ModelReuse(const ModelReuseConfig& config,
                       const RankModelConfig& model)
    : config_(config), model_config_(model) {
  ELSI_CHECK(config.epsilon > 0.0 && config.epsilon <= 1.0);
}

void ModelReuse::EnsurePool() {
  std::call_once(pool_once_, [this] {
    // Power-law CDF families F(x) = x^a and its mirror 1 - (1-x)^a. The KS
    // distance between consecutive exponents grows with their ratio, so a
    // geometric exponent grid with ratio ~ (1 + 2 eps) tiles the family at
    // resolution eps. a = 1 (uniform) is shared by both families.
    std::vector<double> exponents;
    const double ratio = 1.0 + 2.0 * config_.epsilon;
    for (double a = 1.0; a <= config_.max_exponent; a *= ratio) {
      exponents.push_back(a);
    }
    const size_t ns = config_.synthetic_size;
    uint64_t seed = 0x90de1ULL;
    auto add_entry = [&](bool mirrored, double a) {
      PoolEntry entry;
      entry.keys.resize(ns);
      for (size_t i = 0; i < ns; ++i) {
        // Inverse-transform points of the synthetic CDF.
        const double u = (static_cast<double>(i) + 0.5) / ns;
        entry.keys[i] = mirrored ? 1.0 - std::pow(1.0 - u, 1.0 / a)
                                 : std::pow(u, 1.0 / a);
      }
      std::sort(entry.keys.begin(), entry.keys.end());
      RankModelConfig cfg = model_config_;
      cfg.seed = seed++;
      entry.model.Train(entry.keys, 0.0, 1.0, cfg);
      pool_.push_back(std::move(entry));
    };
    for (double a : exponents) add_entry(false, a);
    for (double a : exponents) {
      if (a > 1.0) add_entry(true, a);
    }
  });
}

size_t ModelReuse::pool_size() {
  EnsurePool();
  return pool_.size();
}

int ModelReuse::FindBestEntry(const std::vector<double>& sorted_keys,
                              double* dist) {
  EnsurePool();
  if (sorted_keys.empty()) return -1;
  const double lo = sorted_keys.front();
  const double hi = sorted_keys.back();
  const double range = hi > lo ? hi - lo : 1.0;
  int best = -1;
  double best_dist = 2.0;
  std::vector<double> scaled;
  for (size_t e = 0; e < pool_.size(); ++e) {
    // Scale the pool entry into the data's key range rather than
    // normalising the (much larger) data set: O(n_mr * ns * log n) total.
    scaled.resize(pool_[e].keys.size());
    for (size_t i = 0; i < scaled.size(); ++i) {
      scaled[i] = lo + pool_[e].keys[i] * range;
    }
    const double d = KsDistanceFast(scaled, sorted_keys);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(e);
    }
  }
  if (dist != nullptr) *dist = best_dist;
  return best;
}

double ModelReuse::BestMatchDistance(const std::vector<double>& sorted_keys) {
  double dist = 2.0;
  FindBestEntry(sorted_keys, &dist);
  return dist;
}

bool ModelReuse::TryReuseModel(const BuildContext& ctx, RankModel* model) {
  double dist = 2.0;
  const int best = FindBestEntry(ctx.sorted_keys, &dist);
  if (best < 0 || dist > config_.epsilon) return false;
  model->AdoptPretrained(pool_[best].model.net(), ctx.sorted_keys.front(),
                         ctx.sorted_keys.back());
  return true;
}

std::vector<double> ModelReuse::ComputeTrainingSet(const BuildContext& ctx) {
  // No sufficiently close pool entry: fall back to a sparse systematic
  // sample so the caller can still train something cheap.
  const size_t n = ctx.sorted_keys.size();
  if (n == 0) return {};
  const size_t target = std::min<size_t>(n, config_.synthetic_size);
  const size_t stride = std::max<size_t>(1, n / target);
  std::vector<double> keys;
  for (size_t i = 0; i < n; i += stride) keys.push_back(ctx.sorted_keys[i]);
  return keys;
}

}  // namespace elsi
