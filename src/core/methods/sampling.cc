#include "core/methods/sampling.h"

#include <algorithm>

#include "common/random.h"

namespace elsi {

std::vector<double> SystematicSampling::ComputeTrainingSet(
    const BuildContext& ctx) {
  const size_t n = ctx.sorted_keys.size();
  if (n == 0) return {};
  size_t target = static_cast<size_t>(config_.rho * static_cast<double>(n));
  target = std::clamp<size_t>(target, std::min(n, config_.min_size), n);
  const size_t stride = std::max<size_t>(1, n / target);
  std::vector<double> keys;
  keys.reserve(n / stride + 1);
  for (size_t i = 0; i < n; i += stride) keys.push_back(ctx.sorted_keys[i]);
  return keys;  // Already sorted: sampled from a sorted sequence.
}

std::vector<double> RandomSampling::ComputeTrainingSet(
    const BuildContext& ctx) {
  const size_t n = ctx.sorted_keys.size();
  if (n == 0) return {};
  size_t target = static_cast<size_t>(config_.rho * static_cast<double>(n));
  target = std::clamp<size_t>(target, std::min(n, config_.min_size), n);
  Rng rng(seed_ ^ n);
  std::vector<double> keys;
  keys.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    keys.push_back(ctx.sorted_keys[rng.NextBelow(n)]);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace elsi
