#include "core/methods/clustering.h"

#include <algorithm>

#include "ml/kmeans.h"

namespace elsi {

std::vector<double> ClusteringMethod::ComputeTrainingSet(
    const BuildContext& ctx) {
  const size_t n = ctx.sorted_pts.size();
  if (n == 0) return {};
  const size_t k = std::min(config_.clusters, n);
  KMeansOptions opts;
  opts.max_iterations = config_.iterations;
  opts.seed = config_.seed;
  opts.batch_size = config_.batch_size;
  if (opts.batch_size == 0 && k * n > config_.lloyd_budget) {
    opts.batch_size = std::max<size_t>(1024, config_.lloyd_budget / k);
  }
  const KMeansResult result = KMeans(ctx.sorted_pts, k, opts);
  std::vector<double> keys;
  keys.reserve(result.centroids.size());
  for (const Point& c : result.centroids) keys.push_back(ctx.key_fn(c));
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace elsi
