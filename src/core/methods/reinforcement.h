#ifndef ELSI_CORE_METHODS_REINFORCEMENT_H_
#define ELSI_CORE_METHODS_REINFORCEMENT_H_

#include <cstdint>
#include <mutex>

#include "core/build_method.h"

namespace elsi {

struct ReinforcementConfig {
  /// Grid resolution eta: the state has eta^2 cells (paper default 8,
  /// swept to 32 in Fig. 7).
  int eta = 8;
  /// Environment steps (the paper runs 50,000 on GPU; the CPU default is
  /// scaled down and configurable).
  int max_steps = 400;
  /// Stop when the best distance has not improved for this many steps.
  int patience = 120;
  /// Probability of accepting the DQN-chosen flip (paper zeta = 0.8).
  double zeta = 0.8;
  double gamma = 0.9;       // Discount (paper Sec. V-B2).
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  int dqn_hidden = 64;
  size_t replay_capacity = 4096;
  size_t batch_size = 32;
  int train_every = 5;  // The paper trains the DQN every five steps.
  uint64_t seed = 42;
};

/// RL (Sec. V-B2): approximates D with up to eta^2 synthetic points — one
/// candidate per grid cell — by learning which cells to keep. The search
/// over the 2^(eta^2) subsets is an MDP: states are cell-occupancy vectors
/// (ordered by mapped rank), actions flip one cell, the reward is the drop
/// in dist(Ds, D), and a DQN learns the policy.
class ReinforcementMethod : public BuildMethod {
 public:
  explicit ReinforcementMethod(const ReinforcementConfig& config = {})
      : config_(config) {}

  BuildMethodId id() const override { return BuildMethodId::kRL; }
  std::vector<double> ComputeTrainingSet(const BuildContext& ctx) override;

  /// dist(Ds, D) of the last computed training set (diagnostics). Under a
  /// multi-thread build "last" means "most recently completed".
  double last_distance() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_distance_;
  }
  int last_steps() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_steps_;
  }

 private:
  ReinforcementConfig config_;
  mutable std::mutex mutex_;  // Guards the diagnostics below.
  double last_distance_ = 1.0;
  int last_steps_ = 0;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHODS_REINFORCEMENT_H_
