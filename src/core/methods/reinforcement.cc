#include "core/methods/reinforcement.h"

#include <algorithm>
#include <numeric>

#include "common/cdf.h"
#include "common/logging.h"
#include "common/random.h"
#include "ml/dqn.h"

namespace elsi {

std::vector<double> ReinforcementMethod::ComputeTrainingSet(
    const BuildContext& ctx) {
  const size_t n = ctx.sorted_keys.size();
  if (n == 0) return {};
  const int eta = config_.eta;
  const size_t cells = static_cast<size_t>(eta) * eta;

  // One candidate point per grid cell (its centre), keyed by the base
  // index's map() and ordered by mapped rank — the state layout of the MDP.
  const Rect bounds = BoundingRect(ctx.sorted_pts);
  std::vector<double> cell_keys(cells);
  for (int cy = 0; cy < eta; ++cy) {
    for (int cx = 0; cx < eta; ++cx) {
      const Point center{
          bounds.lo_x + (cx + 0.5) * (bounds.hi_x - bounds.lo_x) / eta,
          bounds.lo_y + (cy + 0.5) * (bounds.hi_y - bounds.lo_y) / eta, 0};
      cell_keys[cy * eta + cx] = ctx.key_fn(center);
    }
  }
  std::sort(cell_keys.begin(), cell_keys.end());

  // Initial state: every cell occupied (a uniform Ds).
  std::vector<double> state(cells, 1.0);
  auto active_keys = [&]() {
    std::vector<double> keys;
    keys.reserve(cells);
    for (size_t i = 0; i < cells; ++i) {
      if (state[i] > 0.5) keys.push_back(cell_keys[i]);
    }
    return keys;  // Sorted: cells are in key order.
  };
  auto distance = [&](const std::vector<double>& keys) {
    return keys.empty() ? 1.0 : KsDistanceFast(keys, ctx.sorted_keys);
  };

  double current_dist = distance(active_keys());
  double best_dist = current_dist;
  std::vector<double> best_state = state;

  DqnConfig dqn_cfg;
  dqn_cfg.state_dim = static_cast<int>(cells);
  dqn_cfg.action_count = static_cast<int>(cells);
  dqn_cfg.hidden = {config_.dqn_hidden};
  dqn_cfg.gamma = config_.gamma;
  dqn_cfg.replay_capacity = config_.replay_capacity;
  dqn_cfg.batch_size = config_.batch_size;
  dqn_cfg.train_every = config_.train_every;
  dqn_cfg.seed = config_.seed;
  Dqn dqn(dqn_cfg);
  Rng rng(config_.seed ^ 0x171ULL);

  int stall = 0;
  int step = 0;
  size_t active_count = cells;
  for (; step < config_.max_steps && stall < config_.patience; ++step) {
    const double progress =
        static_cast<double>(step) / std::max(1, config_.max_steps - 1);
    const double epsilon = config_.epsilon_start +
                           (config_.epsilon_end - config_.epsilon_start) *
                               progress;
    const int cell = dqn.SelectAction(state, epsilon);
    double reward = 0.0;
    std::vector<double> next_state = state;
    if (rng.NextBernoulli(config_.zeta)) {
      // Never empty the set entirely.
      const bool removing = state[cell] > 0.5;
      if (!(removing && active_count == 1)) {
        next_state[cell] = 1.0 - state[cell];
        const double swap = current_dist;
        std::swap(state, next_state);
        const double new_dist = distance(active_keys());
        std::swap(state, next_state);
        reward = swap - new_dist;
        active_count += removing ? -1 : 1;
        current_dist = new_dist;
      }
    }
    dqn.Observe(state, cell, reward, next_state, false);
    state = std::move(next_state);
    if (current_dist < best_dist - 1e-9) {
      best_dist = current_dist;
      best_state = state;
      stall = 0;
    } else {
      ++stall;  // Terminate when dist(Ds, D) stops improving (Sec. V-B2).
    }
  }

  state = best_state;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_distance_ = best_dist;
    last_steps_ = step;
  }
  return active_keys();
}

}  // namespace elsi
