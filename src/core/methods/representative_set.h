#ifndef ELSI_CORE_METHODS_REPRESENTATIVE_SET_H_
#define ELSI_CORE_METHODS_REPRESENTATIVE_SET_H_

#include "core/build_method.h"

namespace elsi {

struct RepresentativeSetConfig {
  /// Stop partitioning when a cell has at most beta points (paper default
  /// 10,000 at 1e8-point scale; benches scale it with n).
  size_t beta = 10000;
  /// Hard recursion depth limit (duplicated coordinates cannot be split
  /// spatially past machine precision).
  int max_depth = 40;
};

/// RS (Sec. V-B1, Algorithm 2): recursively quarter the data space until
/// every cell holds at most beta points; the median point (in the mapped
/// 1-D order) of each non-empty cell joins Ds. Approximates D in both the
/// original and the mapped space.
class RepresentativeSet : public BuildMethod {
 public:
  explicit RepresentativeSet(const RepresentativeSetConfig& config = {})
      : config_(config) {}

  BuildMethodId id() const override { return BuildMethodId::kRS; }
  std::vector<double> ComputeTrainingSet(const BuildContext& ctx) override;

 private:
  RepresentativeSetConfig config_;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHODS_REPRESENTATIVE_SET_H_
