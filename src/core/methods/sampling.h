#ifndef ELSI_CORE_METHODS_SAMPLING_H_
#define ELSI_CORE_METHODS_SAMPLING_H_

#include <cstdint>

#include "core/build_method.h"

namespace elsi {

struct SamplingConfig {
  /// Sampling rate rho; |Ds| = rho * n (paper default 1e-4 on 1e8 points).
  double rho = 0.0001;
  /// Lower bound on |Ds| so tiny partitions still train a usable model.
  size_t min_size = 64;
};

/// SP (Sec. V-A1): systematic sampling over the sorted mapped keys — every
/// floor(1/rho)-th point. The pigeonhole argument of the paper makes this
/// the rank-gap-optimal sampling strategy.
class SystematicSampling : public BuildMethod {
 public:
  explicit SystematicSampling(const SamplingConfig& config = {})
      : config_(config) {}

  BuildMethodId id() const override { return BuildMethodId::kSP; }
  std::vector<double> ComputeTrainingSet(const BuildContext& ctx) override;

 private:
  SamplingConfig config_;
};

/// RSP: random sampling at the same rate (the Fig. 7 baseline from Li et
/// al., 2021). Larger CDF gaps than SP at equal cost.
class RandomSampling : public BuildMethod {
 public:
  explicit RandomSampling(const SamplingConfig& config = {},
                          uint64_t seed = 42)
      : config_(config), seed_(seed) {}

  BuildMethodId id() const override { return BuildMethodId::kRSP; }
  std::vector<double> ComputeTrainingSet(const BuildContext& ctx) override;

 private:
  SamplingConfig config_;
  uint64_t seed_;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHODS_SAMPLING_H_
