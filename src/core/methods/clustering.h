#ifndef ELSI_CORE_METHODS_CLUSTERING_H_
#define ELSI_CORE_METHODS_CLUSTERING_H_

#include <cstdint>

#include "core/build_method.h"

namespace elsi {

struct ClusteringConfig {
  /// Number of clusters C (paper default 100).
  size_t clusters = 100;
  int iterations = 8;
  /// Mini-batch size for large k*n products (0 = full Lloyd, the paper's
  /// straightforward implementation).
  size_t batch_size = 0;
  /// Switch to mini-batch when clusters * n exceeds this budget, keeping CL
  /// usable at bench scale while remaining the slowest method.
  size_t lloyd_budget = 50'000'000;
  uint64_t seed = 42;
};

/// CL (Sec. V-A2): k-means cluster centroids in the original space form Ds.
/// Centroids are generally not members of D; their keys come from the base
/// index's map() function. Expensive to build — its defining trade-off.
class ClusteringMethod : public BuildMethod {
 public:
  explicit ClusteringMethod(const ClusteringConfig& config = {})
      : config_(config) {}

  BuildMethodId id() const override { return BuildMethodId::kCL; }
  std::vector<double> ComputeTrainingSet(const BuildContext& ctx) override;

 private:
  ClusteringConfig config_;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHODS_CLUSTERING_H_
