#include "core/methods/representative_set.h"

#include <algorithm>
#include <numeric>

namespace elsi {
namespace {

// Recursive quadrant partitioning (Algorithm 2, d = 2). `indices` hold
// positions into the key-sorted arrays; buckets are filled stably so every
// cell's index list stays sorted by mapped key and the median element is
// the cell's mapped-space median point.
void Recurse(const BuildContext& ctx, std::vector<size_t>& indices,
             const Rect& bounds, size_t beta, int depth, int max_depth,
             std::vector<double>* out) {
  if (indices.empty()) return;
  if (indices.size() <= beta || depth >= max_depth) {
    out->push_back(ctx.sorted_keys[indices[indices.size() / 2]]);
    return;
  }
  const double cx = (bounds.lo_x + bounds.hi_x) / 2.0;
  const double cy = (bounds.lo_y + bounds.hi_y) / 2.0;
  std::vector<size_t> quadrant[4];
  for (size_t idx : indices) {
    const Point& p = ctx.sorted_pts[idx];
    const int q = (p.x >= cx ? 1 : 0) + (p.y >= cy ? 2 : 0);
    quadrant[q].push_back(idx);
  }
  indices.clear();
  indices.shrink_to_fit();
  const Rect cells[4] = {
      Rect::Of(bounds.lo_x, bounds.lo_y, cx, cy),
      Rect::Of(cx, bounds.lo_y, bounds.hi_x, cy),
      Rect::Of(bounds.lo_x, cy, cx, bounds.hi_y),
      Rect::Of(cx, cy, bounds.hi_x, bounds.hi_y),
  };
  for (int q = 0; q < 4; ++q) {
    Recurse(ctx, quadrant[q], cells[q], beta, depth + 1, max_depth, out);
  }
}

}  // namespace

std::vector<double> RepresentativeSet::ComputeTrainingSet(
    const BuildContext& ctx) {
  if (ctx.sorted_pts.empty()) return {};
  std::vector<size_t> indices(ctx.sorted_pts.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<double> keys;
  Recurse(ctx, indices, BoundingRect(ctx.sorted_pts),
          std::max<size_t>(1, config_.beta), 0, config_.max_depth, &keys);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace elsi
