#ifndef ELSI_CORE_REBUILD_PREDICTOR_H_
#define ELSI_CORE_REBUILD_PREDICTOR_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/ffn.h"

namespace elsi {

/// Inputs of the rebuild predictor (Sec. IV-B2): the cardinality and
/// distribution of D, the index depth, the update ratio |D'|/|D| - 1, and
/// the CDF change sim(D', D). Unlike the method scorer there is no method
/// input — the predictor concerns the index itself.
struct RebuildFeatures {
  double log10_n = 0.0;
  double dissimilarity = 0.0;  // dist(Du, D).
  double depth = 1.0;
  double update_ratio = 0.0;
  double cdf_similarity = 1.0;  // sim(D', D).
};

/// One labelled observation for predictor training: rebuild (1) when the
/// no-rebuild query time exceeds the with-rebuild time by 10% (Sec.
/// VII-B2), else keep (0).
struct RebuildSample {
  RebuildFeatures features;
  double label = 0.0;
};

/// The FFN rebuild predictor: same body as the method scorer's FFNs but a
/// sigmoid (binary) output.
struct RebuildPredictorTrainOptions {
  std::vector<int> hidden = {32};
  double learning_rate = 0.02;
  int epochs = 800;
  uint64_t seed = 42;
};

class RebuildPredictor {
 public:
  using TrainOptions = RebuildPredictorTrainOptions;

  RebuildPredictor() = default;

  void Train(const std::vector<RebuildSample>& samples,
             const TrainOptions& options = {});

  bool trained() const { return net_ != nullptr; }

  /// Rebuild probability in [0, 1].
  double PredictScore(const RebuildFeatures& f) const;

  /// Thresholded decision (the to_rebuild API of Fig. 3).
  bool ShouldRebuild(const RebuildFeatures& f) const {
    return PredictScore(f) > 0.5;
  }

  /// Persists the trained network; false on stream failure or untrained.
  bool Save(std::ostream& out) const;

  /// Loads a network written by Save(); false on malformed input.
  bool Load(std::istream& in);

 private:
  static std::vector<double> Encode(const RebuildFeatures& f);

  std::unique_ptr<Ffn> net_;
};

/// Generates labelled samples by simulating skewed insertion workloads on a
/// small learned-array harness: for each checkpoint (after 2^i percent of n
/// updates, Sec. VII-B2) point-query times are measured with and without a
/// rebuild and labelled per the 10% rule.
struct RebuildTrainerConfig {
  size_t base_n = 20000;
  int datasets = 4;
  int checkpoints = 7;  // 1%, 2%, 4%, ..., 64% of n.
  size_t queries = 400;
  uint64_t seed = 42;
};

std::vector<RebuildSample> GenerateRebuildTrainingData(
    const RebuildTrainerConfig& cfg);

}  // namespace elsi

#endif  // ELSI_CORE_REBUILD_PREDICTOR_H_
