#ifndef ELSI_CORE_SCORER_TRAINER_H_
#define ELSI_CORE_SCORER_TRAINER_H_

#include <map>
#include <vector>

#include "core/build_processor.h"
#include "core/method_scorer.h"
#include "core/method_selector.h"

namespace elsi {

/// Configuration of the method-scorer ground-truth generation (Sec.
/// VII-B2): synthetic data sets spanning a cardinality grid 10^l..10^u and
/// dissimilarities 0.0..0.9, each built with every applicable method while
/// build and point-query costs are measured relative to OG.
struct ScorerTrainerConfig {
  /// Cardinality grid (log10). The paper uses l=4, u=8; the defaults here
  /// are scaled for CPU-only runs and swept by the Fig. 6(a) bench.
  double log10_min = 3.0;
  double log10_max = 4.5;
  int cardinality_levels = 4;
  std::vector<double> dissimilarities = {0.0, 0.1, 0.2, 0.3, 0.4,
                                         0.5, 0.6, 0.7, 0.8, 0.9};
  /// Point queries per measurement.
  size_t queries = 256;
  /// Method/model parameters used during measurement.
  BuildProcessorConfig processor;
  uint64_t seed = 42;
};

/// Ground truth for one synthetic data set: measured (build, query) cost
/// pairs per method, relative to OG.
struct ScorerDatasetGroup {
  double log10_n = 0.0;
  double dissimilarity = 0.0;
  std::map<BuildMethodId, std::pair<double, double>> costs;

  /// Eq. 2 argmin over the measured costs.
  BuildMethodId BestMethod(double lambda, double w_q) const;
};

struct ScorerTrainingData {
  std::vector<ScorerSample> samples;
  std::vector<ScorerDatasetGroup> groups;
};

/// Exponent of a power-law data set whose Z-order keys have
/// dist(Du, D) ~ `target`; found by bisection on a calibration sample.
double CalibratePowerForDissimilarity(double target, size_t sample_n = 20000,
                                      uint64_t seed = 42);

/// Runs the full measurement campaign. Expensive (it actually builds models
/// with every method); benches cache its output.
ScorerTrainingData GenerateScorerTrainingData(const ScorerTrainerConfig& cfg);

/// Fraction of ground-truth groups where the selector picks the measured
/// Eq. 2 argmin (the accuracy metric of Fig. 6). `tolerance` widens the
/// notion of "correct" to any method whose measured combined cost is within
/// (1 + tolerance) of the argmin's — at CPU bench scale the cheap methods
/// tie within measurement noise, making the exact-argmin metric ill-posed
/// (tolerance 0 reproduces the paper's strict definition).
double SelectorAccuracy(MethodSelector* selector,
                        const ScorerTrainingData& data, double lambda,
                        double w_q, double tolerance = 0.0);

}  // namespace elsi

#endif  // ELSI_CORE_SCORER_TRAINER_H_
