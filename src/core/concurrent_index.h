#ifndef ELSI_CORE_CONCURRENT_INDEX_H_
#define ELSI_CORE_CONCURRENT_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "common/spatial_index.h"
#include "storage/sharded_delta.h"

namespace elsi {
namespace concurrent {

struct ConcurrentIndexConfig {
  /// Fold the delta into a fresh base once it holds this many updates
  /// (inserts + tombstones). 0 disables auto-merge (DurableElsi disables it
  /// because its rebuild-swap must snapshot every fold — see
  /// persist/elsi.h). The merge runs inline on the inserting thread that
  /// crosses the threshold; other writers keep appending to the successor
  /// delta and readers are never blocked.
  size_t merge_threshold = 0;
};

/// Lock-free concurrent serving wrapper around any SpatialIndex (see
/// DESIGN.md, "Concurrent serving"). The serving state is one atomic root
/// pointer to an immutable Generation:
///
///   Generation = { base index (never mutated after publish),
///                  frozen delta (sealed predecessor, present mid-merge),
///                  live delta (sharded, append-only) }
///
/// Point/window/kNN queries pin an epoch Guard, load the root with
/// acquire/seq_cst semantics, and read base + deltas without ever taking a
/// lock; they cannot block on writers, merges, or base replacement.
/// Inserts/removes append to the live delta under a per-shard spinlock (a
/// few stores). Merges and base swaps build the replacement off to the
/// side, publish a new Generation with one atomic store, and retire the
/// old one through epoch-based reclamation, so readers still traversing it
/// stay safe.
///
/// Memory-ordering contract on the root: the publisher fully constructs a
/// Generation before a seq_cst store of the root; readers load the root
/// seq_cst inside an epoch Guard. Retirement happens only after the root
/// no longer references the Generation, and reclamation waits two epoch
/// advances, each blocked by any guard pinned at or before the retire
/// epoch.
///
/// Writer semantics: Insert/Remove are safe from any number of threads.
/// Build() and ReplaceBase() assume no concurrent writers (callers
/// serialize them; readers may continue). size() and the delta counters
/// are exact when writers are externally serialized, approximate under
/// writer concurrency.
class ConcurrentIndex : public SpatialIndex {
 public:
  using BaseFactory = std::function<std::unique_ptr<SpatialIndex>()>;

  /// Wraps `base` (already built or empty). `factory` creates empty clones
  /// of the base kind for Build()/MergeNow(); without it only ReplaceBase()
  /// can change the base.
  ConcurrentIndex(std::unique_ptr<SpatialIndex> base, BaseFactory factory,
                  const ConcurrentIndexConfig& config = {});
  ~ConcurrentIndex() override;

  std::string Name() const override;
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  /// Batched entry points pin one epoch guard per chunk and push the chunk
  /// through the base index's batched path (the PR 2 GEMM-per-chunk fast
  /// path), then overlay the deltas per query — answers are identical to
  /// the scalar loop at every thread count.
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts = {}) const override;
  void WindowQueryBatch(std::span<const Rect> ws,
                        std::span<std::vector<Point>> out,
                        const BatchQueryOptions& opts = {}) const override;
  size_t size() const override;
  std::vector<Point> CollectAll() const override;
  int Depth() const override;

  /// Publishes `fresh` (already built with the merged contents) as the new
  /// base with an empty delta; the old generation is retired through EBR.
  /// Caller must have serialized writers and folded the delta into `fresh`
  /// (DurableElsi's rebuild-swap does both).
  void ReplaceBase(std::unique_ptr<SpatialIndex> fresh);

  /// Folds base + delta into a freshly built base now. Safe under
  /// concurrent inserts/removes (they proceed into the successor delta)
  /// and concurrent readers. Requires a factory.
  void MergeNow();

  /// Updates recorded in the delta since the base was last (re)placed:
  /// inserted entries (dead ones included) + base tombstones. 0 means the
  /// base alone is the complete state.
  size_t delta_count() const;

  size_t merge_count() const {
    return merges_.load(std::memory_order_relaxed);
  }

  /// The current base, NOT epoch-protected: the pointer is only stable
  /// while the caller keeps Build/ReplaceBase/MergeNow from running
  /// (DurableElsi snapshots under its writer mutex). Queries must go
  /// through the epoch-protected entry points above instead.
  const SpatialIndex* UnsafeBase() const;

 private:
  struct Generation {
    std::shared_ptr<const SpatialIndex> base;
    std::shared_ptr<ShardedDelta> frozen;  // Sealed, only while merging.
    std::shared_ptr<ShardedDelta> live;
  };

  Generation* Root() const {
    return root_.load(std::memory_order_seq_cst);
  }

  /// True when (x, y, id) is tombstoned in either delta of `gen`.
  static bool Tombstoned(const Generation& gen, const Point& p);

  /// Applies `gen`'s deltas to a base window result: drops tombstoned
  /// points, appends in-window delta inserts, re-pins canonical order.
  static void OverlayWindow(const Generation& gen, const Rect& w,
                            std::vector<Point>* out);

  /// base + frozen-delta contents with `gen`'s frozen tombstones applied
  /// (live-delta state is NOT folded — it survives the merge).
  static std::vector<Point> CollectMergeInput(const Generation& gen);

  void Publish(Generation* next);
  void MergeLocked();

  mutable EpochManager* epoch_;  // Global(); cached for terseness.
  std::atomic<Generation*> root_;
  /// Serializes root mutators (merge/build/replace); never taken by
  /// queries or by inserts that don't trigger a merge.
  std::mutex merge_mu_;
  ConcurrentIndexConfig config_;
  BaseFactory factory_;
  std::atomic<size_t> merges_{0};
};

}  // namespace concurrent
}  // namespace elsi

#endif  // ELSI_CORE_CONCURRENT_INDEX_H_
