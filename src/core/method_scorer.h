#ifndef ELSI_CORE_METHOD_SCORER_H_
#define ELSI_CORE_METHOD_SCORER_H_

#include <iosfwd>
#include <vector>

#include "core/build_method.h"
#include "ml/ffn.h"

namespace elsi {

/// One ground-truth measurement for scorer training: a build method applied
/// to a data set of known cardinality and distribution, with its measured
/// build and query costs *relative to OG* (OG = 1.0 on both axes).
struct ScorerSample {
  BuildMethodId method = BuildMethodId::kOG;
  double log10_n = 0.0;
  double dissimilarity = 0.0;  // dist(Du, D) of the mapped keys.
  double build_cost = 1.0;
  double query_cost = 1.0;
};

/// The method scorer (Fig. 4): two FFNs sharing the input encoding — a
/// one-hot method id plus the cardinality and distribution of D — one
/// estimating the index building cost C_B and one the query cost C_Q.
/// Scores combine per Eq. 2:
///   C(P, D) = lambda * C_B(P, D) + (1 - lambda) * w_Q * C_Q(P, D).
struct MethodScorerTrainOptions {
  std::vector<int> hidden = {32};
  double learning_rate = 0.01;
  int epochs = 600;
  uint64_t seed = 42;
};

class MethodScorer {
 public:
  using TrainOptions = MethodScorerTrainOptions;

  MethodScorer() = default;

  /// Fits both cost FFNs on measured samples.
  void Train(const std::vector<ScorerSample>& samples,
             const TrainOptions& options = {});

  bool trained() const { return build_net_ != nullptr; }

  double PredictBuildCost(BuildMethodId method, double log10_n,
                          double dissimilarity) const;
  double PredictQueryCost(BuildMethodId method, double log10_n,
                          double dissimilarity) const;

  /// Eq. 2 combined cost (lower is better).
  double CombinedCost(BuildMethodId method, double log10_n,
                      double dissimilarity, double lambda, double w_q) const;

  /// Persists both cost networks (portable text). Returns false on stream
  /// failure or when untrained.
  bool Save(std::ostream& out) const;

  /// Loads networks written by Save() into this scorer. Returns false and
  /// leaves the scorer untrained on malformed input.
  bool Load(std::istream& in);

  /// The shared input encoding (Component 1 of Fig. 4); exposed so the
  /// RF/DT selector baselines of Fig. 6(b) consume identical features.
  static std::vector<double> EncodeInput(BuildMethodId method, double log10_n,
                                         double dissimilarity);
  static constexpr int kInputDim =
      static_cast<int>(std::size(kSelectorPool)) + 2;

 private:
  std::unique_ptr<Ffn> build_net_;
  std::unique_ptr<Ffn> query_net_;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHOD_SCORER_H_
