#include "core/method_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace elsi {
namespace {

/// Telemetry shared by every selector: total invocations plus a per-method
/// choice counter, and (for cost-model selectors) the predicted cost of the
/// winning method — compare against build.method_ms for predicted-vs-actual.
void RecordChoice(BuildMethodId method) {
  static obs::Counter& invocations = obs::GetCounter("selector.invocations");
  invocations.Add();
  obs::GetCounter("selector.choice{method=" + BuildMethodName(method) + "}")
      .Add();
}

void RecordPredictedCost(double cost) {
  // Wide decade buckets: scorer costs are unitless Eq. 2 combinations.
  static obs::Histogram& predicted = obs::GetHistogram(
      "selector.predicted_cost", obs::HistogramSpec::Exponential(1e-9, 10.0, 18));
  if (std::isfinite(cost)) predicted.Observe(cost);
}

uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int PoolIndex(BuildMethodId id) {
  for (size_t i = 0; i < std::size(kSelectorPool); ++i) {
    if (kSelectorPool[i] == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

ScorerSelector::ScorerSelector(std::shared_ptr<const MethodScorer> scorer,
                               double lambda, double w_q)
    : scorer_(std::move(scorer)), lambda_(lambda), w_q_(w_q) {
  ELSI_CHECK(scorer_ != nullptr && scorer_->trained());
  ELSI_CHECK(lambda >= 0.0 && lambda <= 1.0);
  ELSI_CHECK_GE(w_q, 1.0);
}

BuildMethodId ScorerSelector::Choose(
    const std::vector<BuildMethodId>& candidates, double log10_n,
    double dissimilarity) {
  ELSI_CHECK(!candidates.empty());
  BuildMethodId best = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (BuildMethodId method : candidates) {
    const double cost =
        scorer_->CombinedCost(method, log10_n, dissimilarity, lambda_, w_q_);
    if (cost < best_cost) {
      best_cost = cost;
      best = method;
    }
  }
  RecordChoice(best);
  RecordPredictedCost(best_cost);
  return best;
}

BuildMethodId FixedSelector::Choose(
    const std::vector<BuildMethodId>& candidates, double log10_n,
    double dissimilarity) {
  (void)log10_n;
  (void)dissimilarity;
  ELSI_CHECK(std::find(candidates.begin(), candidates.end(), method_) !=
             candidates.end())
      << BuildMethodName(method_) << " not applicable here";
  RecordChoice(method_);
  return method_;
}

BuildMethodId RandomSelector::Choose(
    const std::vector<BuildMethodId>& candidates, double log10_n,
    double dissimilarity) {
  (void)log10_n;
  (void)dissimilarity;
  ELSI_CHECK(!candidates.empty());
  const BuildMethodId choice =
      candidates[NextRand(&state_) % candidates.size()];
  RecordChoice(choice);
  return choice;
}

TreeSelector::TreeSelector(Model model, Mode mode, double lambda, double w_q)
    : model_(model), mode_(mode), lambda_(lambda), w_q_(w_q) {}

std::string TreeSelector::name() const {
  const bool rf = model_ == Model::kRandomForest;
  const bool reg = mode_ == Mode::kRegression;
  if (rf) return reg ? "RFR" : "RFC";
  return reg ? "DTR" : "DTC";
}

void TreeSelector::Train(const std::vector<ScorerSample>& samples) {
  ELSI_CHECK(!samples.empty());
  if (mode_ == Mode::kRegression) {
    Matrix x(samples.size(), MethodScorer::kInputDim);
    std::vector<double> yb(samples.size()), yq(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      const auto enc = MethodScorer::EncodeInput(
          samples[i].method, samples[i].log10_n, samples[i].dissimilarity);
      std::copy(enc.begin(), enc.end(), x.RowPtr(i));
      yb[i] = samples[i].build_cost;
      yq[i] = samples[i].query_cost;
    }
    if (model_ == Model::kRandomForest) {
      rf_build_.Fit(x, yb, RandomForest::Task::kRegression);
      rf_query_.Fit(x, yq, RandomForest::Task::kRegression);
    } else {
      dt_build_.Fit(x, yb, DecisionTree::Task::kRegression);
      dt_query_.Fit(x, yq, DecisionTree::Task::kRegression);
    }
  } else {
    // Group samples by data set (log10_n, dissim) and label each group with
    // its Eq. 2 argmin under this selector's lambda.
    std::map<std::pair<double, double>, std::pair<double, int>> best;
    for (const ScorerSample& s : samples) {
      const double cost =
          lambda_ * s.build_cost + (1.0 - lambda_) * w_q_ * s.query_cost;
      const auto key = std::make_pair(s.log10_n, s.dissimilarity);
      const auto it = best.find(key);
      if (it == best.end() || cost < it->second.first) {
        best[key] = {cost, PoolIndex(s.method)};
      }
    }
    Matrix x(best.size(), 2);
    std::vector<double> y(best.size());
    size_t i = 0;
    for (const auto& [key, value] : best) {
      x.At(i, 0) = key.first / 8.0;
      x.At(i, 1) = key.second;
      y[i] = static_cast<double>(value.second);
      ++i;
    }
    if (model_ == Model::kRandomForest) {
      rf_class_.Fit(x, y, RandomForest::Task::kClassification);
    } else {
      dt_class_.Fit(x, y, DecisionTree::Task::kClassification);
    }
  }
  trained_ = true;
}

double TreeSelector::PredictCost(BuildMethodId method, double log10_n,
                                 double dissim) const {
  const auto enc = MethodScorer::EncodeInput(method, log10_n, dissim);
  const double build = model_ == Model::kRandomForest
                           ? rf_build_.Predict(enc)
                           : dt_build_.Predict(enc);
  const double query = model_ == Model::kRandomForest
                           ? rf_query_.Predict(enc)
                           : dt_query_.Predict(enc);
  return lambda_ * build + (1.0 - lambda_) * w_q_ * query;
}

BuildMethodId TreeSelector::Choose(
    const std::vector<BuildMethodId>& candidates, double log10_n,
    double dissimilarity) {
  ELSI_CHECK(trained_);
  ELSI_CHECK(!candidates.empty());
  if (mode_ == Mode::kClassification) {
    const std::vector<double> x = {log10_n / 8.0, dissimilarity};
    const double label = model_ == Model::kRandomForest
                             ? rf_class_.Predict(x)
                             : dt_class_.Predict(x);
    const int idx = static_cast<int>(label);
    if (idx >= 0 && idx < static_cast<int>(std::size(kSelectorPool))) {
      const BuildMethodId predicted = kSelectorPool[idx];
      if (std::find(candidates.begin(), candidates.end(), predicted) !=
          candidates.end()) {
        RecordChoice(predicted);
        return predicted;
      }
    }
    RecordChoice(candidates.front());
    return candidates.front();  // Predicted method inapplicable here.
  }
  BuildMethodId best = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  for (BuildMethodId method : candidates) {
    const double cost = PredictCost(method, log10_n, dissimilarity);
    if (cost < best_cost) {
      best_cost = cost;
      best = method;
    }
  }
  RecordChoice(best);
  RecordPredictedCost(best_cost);
  return best;
}

}  // namespace elsi
