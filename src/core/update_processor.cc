#include "core/update_processor.h"

#include <algorithm>
#include <cmath>

#include "common/cdf.h"
#include "common/logging.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "obs/trace.h"

namespace elsi {

namespace {

obs::Gauge& DeltaDepthGauge() {
  static obs::Gauge& gauge = obs::GetGauge("update.delta_buffer.depth");
  return gauge;
}

}  // namespace

UpdateProcessor::UpdateProcessor(SpatialIndex* index,
                                 const RebuildPredictor* predictor,
                                 const UpdateProcessorConfig& config)
    : index_(index), predictor_(predictor), config_(config) {
  ELSI_CHECK(index != nullptr);
  // Pre-register so snapshots show these at zero before any update runs.
  obs::GetCounter("update.inserts");
  obs::GetCounter("update.deletes");
  obs::GetCounter("rebuild.checks");
  obs::GetCounter("rebuild.triggered");
  obs::GetCounter("rebuild.declined");
  DeltaDepthGauge();
}

double UpdateProcessor::Key(const Point& p) const {
  if (quantizer_ == nullptr) return 0.0;
  return static_cast<double>(MortonEncode(quantizer_->QuantizeX(p.x) >> 6,
                                          quantizer_->QuantizeY(p.y) >> 6));
}

void UpdateProcessor::RecordBase(const std::vector<Point>& data) {
  Rect domain = data.empty() ? Rect::Of(0, 0, 1, 1) : BoundingRect(data);
  if (domain.Area() <= 0.0) {
    domain.Extend(Point{domain.lo_x - 0.5, domain.lo_y - 0.5, 0});
    domain.Extend(Point{domain.hi_x + 0.5, domain.hi_y + 0.5, 0});
  }
  quantizer_ = std::make_unique<GridQuantizer>(domain);
  built_n_ = data.size();
  // Systematic key sample as the stored CDF (deterministic in the seed).
  const size_t sample = std::min(config_.cdf_sample, data.size());
  base_sample_.clear();
  if (sample > 0) {
    const size_t stride = std::max<size_t>(1, data.size() / sample);
    Rng rng(config_.seed);
    for (size_t i = 0; i < data.size(); i += stride) {
      base_sample_.push_back(Key(data[i]));
    }
    std::sort(base_sample_.begin(), base_sample_.end());
  }
  inserted_keys_.clear();
  deleted_keys_.clear();
  inserted_sorted_ = true;
  deleted_sorted_ = true;
  inserts_ = 0;
  deletes_ = 0;
  since_check_ = 0;
  DeltaDepthGauge().Set(0);
}

void UpdateProcessor::Build(const std::vector<Point>& data) {
  index_->Build(data);
  RecordBase(data);
}

void UpdateProcessor::AdoptIndex(SpatialIndex* index,
                                 const std::vector<Point>& data,
                                 bool count_rebuild) {
  ELSI_CHECK(index != nullptr);
  index_ = index;
  RecordBase(data);
  if (count_rebuild) ++rebuilds_;
}

void UpdateProcessor::Insert(const Point& p) {
  // Log-before-apply: the WAL record must be durable (or at least buffered
  // for group commit) before the in-memory index changes.
  if (log_sink_ != nullptr) log_sink_->LogInsert(p);
  index_->Insert(p);
  inserted_keys_.push_back(Key(p));
  inserted_sorted_ = false;
  ++inserts_;
  static obs::Counter& inserts = obs::GetCounter("update.inserts");
  inserts.Add();
  DeltaDepthGauge().Set(static_cast<int64_t>(inserts_ + deletes_));
  if (++since_check_ >= config_.f_u) {
    since_check_ = 0;
    MaybeRebuild();
  }
}

bool UpdateProcessor::Remove(const Point& p) {
  if (log_sink_ != nullptr) log_sink_->LogDelete(p);
  if (!index_->Remove(p)) return false;
  deleted_keys_.push_back(Key(p));
  deleted_sorted_ = false;
  ++deletes_;
  static obs::Counter& deletes = obs::GetCounter("update.deletes");
  deletes.Add();
  DeltaDepthGauge().Set(static_cast<int64_t>(inserts_ + deletes_));
  if (++since_check_ >= config_.f_u) {
    since_check_ = 0;
    MaybeRebuild();
  }
  return true;
}

double UpdateProcessor::UpdatedCdf(double x) const {
  if (!inserted_sorted_) {
    std::sort(inserted_keys_.begin(), inserted_keys_.end());
    inserted_sorted_ = true;
  }
  if (!deleted_sorted_) {
    std::sort(deleted_keys_.begin(), deleted_keys_.end());
    deleted_sorted_ = true;
  }
  const double n = static_cast<double>(built_n_);
  const double i = static_cast<double>(inserted_keys_.size());
  const double d = static_cast<double>(deleted_keys_.size());
  const double total = n + i - d;
  if (total <= 0.0) return 0.0;
  auto ecdf = [x](const std::vector<double>& keys) {
    if (keys.empty()) return 0.0;
    const auto it = std::upper_bound(keys.begin(), keys.end(), x);
    return static_cast<double>(it - keys.begin()) / keys.size();
  };
  // F'(x) = (n F(x) + i G(x) - d H(x)) / (n + i - d): the exact ECDF of the
  // updated multiset when deletions are drawn from the base set.
  const double f = ecdf(base_sample_);
  const double g = ecdf(inserted_keys_);
  const double h = ecdf(deleted_keys_);
  return std::clamp((n * f + i * g - d * h) / total, 0.0, 1.0);
}

std::vector<double> UpdateProcessor::EvalGrid() const {
  // Jump points: quantiles of the base sample plus of the inserted keys.
  std::vector<double> grid;
  const size_t per_source = config_.eval_points / 2;
  auto add_quantiles = [&grid, per_source](const std::vector<double>& keys) {
    if (keys.empty()) return;
    const size_t count = std::min(per_source, keys.size());
    for (size_t i = 0; i < count; ++i) {
      grid.push_back(keys[i * keys.size() / count]);
    }
  };
  if (!inserted_sorted_) {
    std::sort(inserted_keys_.begin(), inserted_keys_.end());
    inserted_sorted_ = true;
  }
  add_quantiles(base_sample_);
  add_quantiles(inserted_keys_);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

double UpdateProcessor::CurrentSimilarity() const {
  if (base_sample_.empty()) return 1.0;
  double max_gap = 0.0;
  for (double x : EvalGrid()) {
    const auto it =
        std::upper_bound(base_sample_.begin(), base_sample_.end(), x);
    const double f =
        static_cast<double>(it - base_sample_.begin()) / base_sample_.size();
    max_gap = std::max(max_gap, std::fabs(UpdatedCdf(x) - f));
  }
  return 1.0 - max_gap;
}

double UpdateProcessor::CurrentDissimilarity() const {
  const std::vector<double> grid = EvalGrid();
  if (grid.size() < 2) return 0.0;
  const double lo = grid.front();
  const double hi = grid.back();
  if (hi <= lo) return 0.0;
  double max_gap = 0.0;
  for (double x : grid) {
    const double uniform = (x - lo) / (hi - lo);
    max_gap = std::max(max_gap, std::fabs(UpdatedCdf(x) - uniform));
  }
  return max_gap;
}

RebuildFeatures UpdateProcessor::CurrentFeatures() const {
  RebuildFeatures f;
  const double current_n = static_cast<double>(
      std::max<size_t>(1, built_n_ + inserts_ - deletes_));
  f.log10_n = std::log10(current_n);
  f.dissimilarity = CurrentDissimilarity();
  f.depth = static_cast<double>(index_->Depth());
  f.update_ratio =
      built_n_ > 0
          ? static_cast<double>(inserts_ + deletes_) / built_n_
          : 0.0;
  f.cdf_similarity = CurrentSimilarity();
  return f;
}

void UpdateProcessor::MaybeRebuild() {
  if (!config_.enable_rebuild || predictor_ == nullptr ||
      !predictor_->trained()) {
    return;
  }
  if (built_n_ > 0 &&
      static_cast<double>(inserts_ + deletes_) <
          config_.min_update_ratio * static_cast<double>(built_n_)) {
    return;
  }
  static obs::Counter& checks = obs::GetCounter("rebuild.checks");
  static obs::Counter& triggered = obs::GetCounter("rebuild.triggered");
  static obs::Counter& declined = obs::GetCounter("rebuild.declined");
  static obs::Histogram& score_hist =
      obs::GetHistogram("rebuild.score", obs::HistogramSpec::Unit());
  static obs::Histogram& trigger_error = obs::GetHistogram(
      "rebuild.trigger_error", obs::HistogramSpec::Unit());
  checks.Add();
  const RebuildFeatures features = CurrentFeatures();
  const double score = predictor_->PredictScore(features);
  score_hist.Observe(score);
  if (score <= 0.5) {  // RebuildPredictor::ShouldRebuild threshold.
    declined.Add();
    obs::ModelHealthMonitor::Get().OnRebuildDecision(index_->Name(), score,
                                                     /*triggered=*/false);
    return;
  }
  triggered.Add();
  // Calibration hook: the monitor freezes the pre-rebuild scan EWMA and
  // compares it to the post-rebuild baseline once that refills.
  obs::ModelHealthMonitor::Get().OnRebuildDecision(index_->Name(), score,
                                                   /*triggered=*/true);
  // How far the distribution had drifted when we pulled the trigger.
  trigger_error.Observe(1.0 - features.cdf_similarity);
  ELSI_LOG(INFO) << "rebuild triggered: score=" << score
                 << " update_ratio=" << features.update_ratio
                 << " cdf_similarity=" << features.cdf_similarity;
  ELSI_TRACE_SPAN("update.rebuild");
  if (rebuild_handler_) {
    // The persist layer rebuilds into a fresh index and swaps it in
    // atomically; it re-points this processor via AdoptIndex.
    rebuild_handler_();
    return;
  }
  const std::vector<Point> all = index_->CollectAll();
  index_->Build(all);
  RecordBase(all);
  ++rebuilds_;
}

}  // namespace elsi
