#ifndef ELSI_CORE_METHOD_SELECTOR_H_
#define ELSI_CORE_METHOD_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/method_scorer.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace elsi {

/// Chooses a build method for a model-training request given the request's
/// cardinality and distribution features.
class MethodSelector {
 public:
  virtual ~MethodSelector() = default;

  /// `candidates` is the pool restricted to the base index's applicable
  /// methods (e.g. no CL/RL for LISA); never empty.
  virtual BuildMethodId Choose(const std::vector<BuildMethodId>& candidates,
                               double log10_n, double dissimilarity) = 0;
};

/// The ELSI selector: argmin of the FFN method scorer's Eq. 2 cost.
class ScorerSelector : public MethodSelector {
 public:
  ScorerSelector(std::shared_ptr<const MethodScorer> scorer, double lambda,
                 double w_q);

  BuildMethodId Choose(const std::vector<BuildMethodId>& candidates,
                       double log10_n, double dissimilarity) override;

  double lambda() const { return lambda_; }

 private:
  std::shared_ptr<const MethodScorer> scorer_;
  double lambda_;
  double w_q_;
};

/// Always the same method (OG when asked for the paper's no-ELSI baseline,
/// or a fixed method column of Table II).
class FixedSelector : public MethodSelector {
 public:
  explicit FixedSelector(BuildMethodId method) : method_(method) {}

  BuildMethodId Choose(const std::vector<BuildMethodId>& candidates,
                       double log10_n, double dissimilarity) override;

 private:
  BuildMethodId method_;
};

/// "Rand" of Table II: uniform over the applicable candidates.
class RandomSelector : public MethodSelector {
 public:
  explicit RandomSelector(uint64_t seed = 42) : state_(seed) {}

  BuildMethodId Choose(const std::vector<BuildMethodId>& candidates,
                       double log10_n, double dissimilarity) override;

 private:
  uint64_t state_;
};

/// The Fig. 6(b) baselines: random-forest / decision-tree selectors in both
/// regression (predict the two costs, combine per Eq. 2) and classification
/// (predict the best method directly for a fixed lambda) flavours.
class TreeSelector : public MethodSelector {
 public:
  enum class Model { kDecisionTree, kRandomForest };
  enum class Mode { kRegression, kClassification };

  TreeSelector(Model model, Mode mode, double lambda, double w_q);

  /// Regression mode: fits build/query cost estimators on the samples.
  /// Classification mode: fits a best-method classifier where the label of
  /// each (data set) group is the Eq. 2 argmin under this selector's lambda.
  void Train(const std::vector<ScorerSample>& samples);

  BuildMethodId Choose(const std::vector<BuildMethodId>& candidates,
                       double log10_n, double dissimilarity) override;

  /// Display name: RFR / RFC / DTR / DTC.
  std::string name() const;

 private:
  double PredictCost(BuildMethodId method, double log10_n,
                     double dissim) const;

  Model model_;
  Mode mode_;
  double lambda_;
  double w_q_;
  // Regression estimators.
  DecisionTree dt_build_, dt_query_;
  RandomForest rf_build_, rf_query_;
  // Classification estimator (label = index into kSelectorPool).
  DecisionTree dt_class_;
  RandomForest rf_class_;
  bool trained_ = false;
};

}  // namespace elsi

#endif  // ELSI_CORE_METHOD_SELECTOR_H_
