#include "core/method_scorer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace elsi {
namespace {

int PoolIndex(BuildMethodId id) {
  for (size_t i = 0; i < std::size(kSelectorPool); ++i) {
    if (kSelectorPool[i] == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string BuildMethodName(BuildMethodId id) {
  switch (id) {
    case BuildMethodId::kSP:
      return "SP";
    case BuildMethodId::kCL:
      return "CL";
    case BuildMethodId::kMR:
      return "MR";
    case BuildMethodId::kRS:
      return "RS";
    case BuildMethodId::kRL:
      return "RL";
    case BuildMethodId::kOG:
      return "OG";
    case BuildMethodId::kRSP:
      return "RSP";
  }
  return "?";
}

std::vector<double> MethodScorer::EncodeInput(BuildMethodId method,
                                              double log10_n,
                                              double dissimilarity) {
  std::vector<double> x(kInputDim, 0.0);
  const int idx = PoolIndex(method);
  ELSI_CHECK_GE(idx, 0) << "method " << BuildMethodName(method)
                        << " is not in the selector pool";
  x[idx] = 1.0;
  // Cardinality scaled to roughly [0, 1] over the 10^4..10^8 range the
  // paper trains on (and the scaled-down ranges the benches use).
  x[std::size(kSelectorPool)] = log10_n / 8.0;
  x[std::size(kSelectorPool) + 1] = dissimilarity;
  return x;
}

void MethodScorer::Train(const std::vector<ScorerSample>& samples,
                         const TrainOptions& options) {
  ELSI_CHECK(!samples.empty());
  Matrix x(samples.size(), kInputDim);
  Matrix yb(samples.size(), 1);
  Matrix yq(samples.size(), 1);
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto enc = EncodeInput(samples[i].method, samples[i].log10_n,
                                 samples[i].dissimilarity);
    std::copy(enc.begin(), enc.end(), x.RowPtr(i));
    // Costs span orders of magnitude (MR reuse ~1e-3 of OG); regress in
    // log space so the L2 loss weighs every decade equally. Predictions
    // are exponentiated back, preserving the Eq. 2 argmin semantics.
    yb.At(i, 0) = std::log10(std::max(samples[i].build_cost, 1e-6));
    yq.At(i, 0) = std::log10(std::max(samples[i].query_cost, 1e-6));
  }
  build_net_ = std::make_unique<Ffn>(kInputDim, options.hidden, 1,
                                     options.seed);
  query_net_ = std::make_unique<Ffn>(kInputDim, options.hidden, 1,
                                     options.seed ^ 0x9e37ULL);
  FfnTrainOptions train;
  train.learning_rate = options.learning_rate;
  train.epochs = options.epochs;
  build_net_->Train(x, yb, train);
  query_net_->Train(x, yq, train);
}

bool MethodScorer::Save(std::ostream& out) const {
  if (!trained()) return false;
  return build_net_->Save(out) && query_net_->Save(out);
}

bool MethodScorer::Load(std::istream& in) {
  auto build = Ffn::Load(in);
  auto query = Ffn::Load(in);
  if (!build.has_value() || !query.has_value() ||
      build->input_dim() != kInputDim || query->input_dim() != kInputDim) {
    return false;
  }
  build_net_ = std::make_unique<Ffn>(std::move(*build));
  query_net_ = std::make_unique<Ffn>(std::move(*query));
  return true;
}

double MethodScorer::PredictBuildCost(BuildMethodId method, double log10_n,
                                      double dissimilarity) const {
  ELSI_CHECK(trained());
  return std::pow(
      10.0, build_net_->Predict1(EncodeInput(method, log10_n, dissimilarity)));
}

double MethodScorer::PredictQueryCost(BuildMethodId method, double log10_n,
                                      double dissimilarity) const {
  ELSI_CHECK(trained());
  return std::pow(
      10.0, query_net_->Predict1(EncodeInput(method, log10_n, dissimilarity)));
}

double MethodScorer::CombinedCost(BuildMethodId method, double log10_n,
                                  double dissimilarity, double lambda,
                                  double w_q) const {
  return lambda * PredictBuildCost(method, log10_n, dissimilarity) +
         (1.0 - lambda) * w_q * PredictQueryCost(method, log10_n,
                                                 dissimilarity);
}

}  // namespace elsi
