#ifndef ELSI_CORE_BUILD_METHOD_H_
#define ELSI_CORE_BUILD_METHOD_H_

#include <functional>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "learned/rank_model.h"

namespace elsi {

/// The ELSI method pool (Sec. V). Six methods feed the method selector: five
/// shrink the training set and OG trains on the original data. RSP (random
/// sampling, Li et al. 2021) appears only as the Fig. 7 baseline and is not
/// part of the selector's pool, exactly as in the paper.
enum class BuildMethodId {
  kSP,   // Systematic sampling over the sorted mapped keys.
  kCL,   // k-means cluster centroids.
  kMR,   // Model reuse from a pre-trained synthetic pool.
  kRS,   // Representative set via recursive space partitioning (Alg. 2).
  kRL,   // Reinforcement-learned grid point set (Sec. V-B2).
  kOG,   // Original data (no shrinking).
  kRSP,  // Random sampling baseline (Fig. 7 only).
};

/// Short display name ("SP", "CL", ...).
std::string BuildMethodName(BuildMethodId id);

/// The selector's method pool in the paper's order.
inline constexpr BuildMethodId kSelectorPool[] = {
    BuildMethodId::kSP, BuildMethodId::kCL, BuildMethodId::kMR,
    BuildMethodId::kRS, BuildMethodId::kRL, BuildMethodId::kOG,
};

/// Everything a build method may need to compute Ds: the partition's points
/// sorted by mapped key, the parallel ascending keys, and the base index's
/// map() function for methods that synthesise new points (CL, MR, RL).
struct BuildContext {
  const std::vector<Point>& sorted_pts;
  const std::vector<double>& sorted_keys;
  const std::function<double(const Point&)>& key_fn;
};

/// A training-set construction method. Implementations are stateless across
/// calls except for caches (MR's pre-trained pool).
class BuildMethod {
 public:
  virtual ~BuildMethod() = default;

  virtual BuildMethodId id() const = 0;

  /// Offline preparation (e.g. MR pre-trains its synthetic model pool).
  /// Called once when the method joins a build processor, mirroring the
  /// paper's one-off "system preparation" cost (Sec. VII-B2).
  virtual void Prepare() {}

  /// Computes the sorted keys of the reduced training set Ds.
  virtual std::vector<double> ComputeTrainingSet(const BuildContext& ctx) = 0;

  /// MR path: returns true and fills `model` (sans error bounds) when a
  /// pre-trained model can be reused outright, skipping training.
  virtual bool TryReuseModel(const BuildContext& ctx, RankModel* model) {
    (void)ctx;
    (void)model;
    return false;
  }
};

}  // namespace elsi

#endif  // ELSI_CORE_BUILD_METHOD_H_
