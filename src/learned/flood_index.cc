#include "learned/flood_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/knn.h"
#include "common/logging.h"
#include "common/timer.h"

namespace elsi {

FloodIndex::FloodIndex(std::shared_ptr<ModelTrainer> trainer,
                       const Config& config)
    : trainer_(std::move(trainer)), config_(config) {
  ELSI_CHECK(trainer_ != nullptr);
}

size_t FloodIndex::ColumnOf(double x) const {
  // Last column whose lower boundary is <= x.
  const auto it =
      std::upper_bound(column_x_.begin() + 1, column_x_.end() - 1, x);
  return static_cast<size_t>(it - column_x_.begin()) - 1;
}

void FloodIndex::Build(const std::vector<Point>& data) {
  size_ = data.size();
  domain_ = data.empty() ? Rect::Of(0, 0, 1, 1) : BoundingRect(data);
  size_t cols = config_.columns;
  if (cols == 0) {
    cols = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(
               static_cast<double>(std::max<size_t>(1, data.size())) /
               config_.block_capacity)));
  }

  // Equal-count column boundaries from the x-order; outer boundaries are
  // infinite so later inserts always land somewhere.
  std::vector<double> xs(data.size());
  for (size_t i = 0; i < data.size(); ++i) xs[i] = data[i].x;
  std::sort(xs.begin(), xs.end());
  column_x_.assign(cols + 1, 0.0);
  column_x_.front() = -std::numeric_limits<double>::infinity();
  column_x_.back() = std::numeric_limits<double>::infinity();
  for (size_t c = 1; c < cols; ++c) {
    column_x_[c] = xs.empty() ? static_cast<double>(c) / cols
                              : xs[c * xs.size() / cols];
  }

  columns_.clear();
  columns_.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    columns_.emplace_back(config_.block_capacity);
  }
  for (const Point& p : data) columns_[ColumnOf(p.x)].pts.push_back(p);

  for (Column& column : columns_) {
    std::sort(column.pts.begin(), column.pts.end(),
              [](const Point& a, const Point& b) {
                if (a.y != b.y) return a.y < b.y;
                return a.id < b.id;
              });
    column.ys.resize(column.pts.size());
    for (size_t i = 0; i < column.pts.size(); ++i) {
      column.ys[i] = column.pts[i].y;
    }
    if (!column.ys.empty()) {
      // Per-column model over the y-order — the training request ELSI
      // accelerates.
      column.model = trainer_->TrainModel(
          column.pts, column.ys, [](const Point& p) { return p.y; });
    }
  }
}

void FloodIndex::ScanColumn(const Column& c, double y_lo, double y_hi,
                            const Rect& w, std::vector<Point>* out) const {
  if (!c.ys.empty() && c.model.trained()) {
    // Predict-and-scan with an exact lower-bound fix-up (the same pattern
    // as SegmentedLearnedArray::LowerBound), which also stays correct when
    // removals have shifted positions since the model was trained.
    const size_t n = c.ys.size();
    const auto [lo, hi_pos] = c.model.SearchRange(y_lo, n);
    size_t pos;
    if (lo > 0 && c.ys[lo - 1] >= y_lo) {
      pos = static_cast<size_t>(
          std::lower_bound(c.ys.begin(), c.ys.end(), y_lo) - c.ys.begin());
    } else {
      const size_t window_end = std::min(hi_pos + 1, n);
      pos = static_cast<size_t>(
          std::lower_bound(c.ys.begin() + lo, c.ys.begin() + window_end,
                           y_lo) -
          c.ys.begin());
      if (pos == window_end && window_end < n) {
        pos = static_cast<size_t>(
            std::lower_bound(c.ys.begin() + window_end, c.ys.end(), y_lo) -
            c.ys.begin());
      }
    }
    for (; pos < n && c.ys[pos] <= y_hi; ++pos) {
      if (w.Contains(c.pts[pos])) out->push_back(c.pts[pos]);
    }
  }
  c.overflow.ScanKeyRangeInRect(y_lo, y_hi, w, out);
}

bool FloodIndex::PointQuery(const Point& q, Point* out) const {
  if (columns_.empty()) return false;
  const Column& c = columns_[ColumnOf(q.x)];
  std::vector<Point> hits;
  ScanColumn(c, q.y, q.y, Rect::Of(q.x, q.y, q.x, q.y), &hits);
  if (hits.empty()) return false;
  if (out != nullptr) *out = hits.front();
  return true;
}

std::vector<Point> FloodIndex::WindowQuery(const Rect& w) const {
  std::vector<Point> result;
  if (w.empty() || columns_.empty()) return result;
  const size_t c_lo = ColumnOf(w.lo_x);
  const size_t c_hi = ColumnOf(w.hi_x);
  for (size_t c = c_lo; c <= c_hi && c < columns_.size(); ++c) {
    ScanColumn(columns_[c], w.lo_y, w.hi_y, w, &result);
  }
  SortCanonical(&result);
  return result;
}

std::vector<Point> FloodIndex::KnnQuery(const Point& q, size_t k) const {
  std::vector<Point> result;
  if (columns_.empty() || size_ == 0 || k == 0) return result;
  const double diag = std::hypot(domain_.hi_x - domain_.lo_x,
                                 domain_.hi_y - domain_.lo_y);
  double r = config_.knn_radius_factor * diag *
             std::sqrt(static_cast<double>(k) / std::max<size_t>(1, size_));
  r = std::max(r, diag * 1e-6);
  for (;;) {
    const Rect w = Rect::Of(q.x - r, q.y - r, q.x + r, q.y + r);
    std::vector<Point> candidates = WindowQuery(w);
    if (candidates.size() >= k || r > diag) {
      const double worst = knn::SelectNearest(q, k, &candidates);
      if (r > diag || (candidates.size() == k && worst <= r * r)) {
        return candidates;
      }
    }
    r *= 2.0;
  }
}

void FloodIndex::Insert(const Point& p) {
  if (columns_.empty()) {
    Build({p});
    return;
  }
  Column& c = columns_[ColumnOf(p.x)];
  c.overflow.Insert(p, p.y);
  ++size_;
}

bool FloodIndex::Remove(const Point& p) {
  if (columns_.empty()) return false;
  Column& c = columns_[ColumnOf(p.x)];
  if (c.overflow.Erase(p.id, p.y)) {
    --size_;
    return true;
  }
  const auto range = std::equal_range(c.ys.begin(), c.ys.end(), p.y);
  for (auto it = range.first; it != range.second; ++it) {
    const size_t i = static_cast<size_t>(it - c.ys.begin());
    if (c.pts[i].id == p.id && c.pts[i].x == p.x) {
      c.pts.erase(c.pts.begin() + i);
      c.ys.erase(c.ys.begin() + i);
      --size_;
      // Positions shifted left by one past i; widen nothing — the model's
      // SearchRange may now under-cover by up to the number of removals, so
      // the exact-lower-bound fallback in ScanColumn keeps queries correct.
      return true;
    }
  }
  return false;
}

size_t FloodIndex::size() const { return size_; }

std::vector<Point> FloodIndex::CollectAll() const {
  std::vector<Point> all;
  all.reserve(size_);
  for (const Column& c : columns_) {
    all.insert(all.end(), c.pts.begin(), c.pts.end());
    for (const Block& b : c.overflow.blocks()) {
      all.insert(all.end(), b.points.begin(), b.points.end());
    }
  }
  return all;
}

size_t FloodIndex::TuneColumnCount(const std::vector<Point>& data,
                                   const std::vector<Rect>& workload,
                                   std::shared_ptr<ModelTrainer> trainer,
                                   const Config& config, size_t sample_limit) {
  ELSI_CHECK(!data.empty());
  // Evaluate on a sample so tuning stays cheap relative to the final build.
  std::vector<Point> sample;
  if (data.size() <= sample_limit) {
    sample = data;
  } else {
    const size_t stride = data.size() / sample_limit;
    for (size_t i = 0; i < data.size(); i += stride) sample.push_back(data[i]);
  }
  const size_t heuristic = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(
             static_cast<double>(sample.size()) / config.block_capacity)));
  size_t best_cols = heuristic;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const size_t cols = std::max<size_t>(
        1, static_cast<size_t>(heuristic * factor));
    Config candidate = config;
    candidate.columns = cols;
    FloodIndex index(trainer, candidate);
    index.Build(sample);
    Timer timer;
    size_t sink = 0;
    for (const Rect& w : workload) sink += index.WindowQuery(w).size();
    (void)sink;
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best_cols = cols;
    }
  }
  // Rescale the winning sample grid to the full cardinality.
  const double scale = std::sqrt(static_cast<double>(data.size()) /
                                 static_cast<double>(sample.size()));
  return std::max<size_t>(1, static_cast<size_t>(best_cols * scale));
}

}  // namespace elsi
