#ifndef ELSI_LEARNED_ML_INDEX_H_
#define ELSI_LEARNED_ML_INDEX_H_

#include <memory>

#include "common/spatial_index.h"
#include "learned/segmented_array.h"

namespace elsi {

/// The ML-Index (Davitkova et al., EDBT 2020): iDistance mapping + RMI.
/// Points map to key = j * c + dist(p, o_j), where o_j is the nearest of R
/// reference points (k-means centres) and c exceeds the domain diameter so
/// partitions cannot overlap in key space. The sorted keys are indexed by
/// the shared segmented learned array. Window queries circumscribe the
/// window with a circle and scan one ring per reference partition (exact
/// after filtering); kNN expands rings until the kth candidate is certified.
struct MlIndexConfig {
  size_t num_references = 32;
  SegmentedLearnedArray::Config array;
  uint64_t seed = 42;
  /// Sample size for the reference-point k-means.
  size_t kmeans_sample = 20000;
  int kmeans_iterations = 8;
};

class MlIndex : public SpatialIndex {
 public:
  using Config = MlIndexConfig;

  explicit MlIndex(std::shared_ptr<ModelTrainer> trainer,
                   const Config& config = {});

  std::string Name() const override { return "ML"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return array_.size(); }

  /// Batched point lookup: each chunk's iDistance keys run through the rank
  /// models as single GEMMs; results match the serial loop bit for bit.
  /// (Window/kNN batches use the chunked scalar default — ring scans have
  /// no shared inference to batch.)
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts = {}) const override;

  /// iDistance key (the base index's map() function).
  double KeyOf(const Point& p) const;

  std::vector<Point> CollectAll() const override {
    return array_.CollectAll();
  }
  const SegmentedLearnedArray& array() const { return array_; }
  int Depth() const override { return array_.model_depth(); }
  size_t reference_count() const { return references_.size(); }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  size_t NearestReference(const Point& p, double* dist) const;
  /// Appends all points with distance to `center` in [0, r] that lie inside
  /// `w` (pass an infinite rect for pure ring scans) to `out`.
  void RingScan(const Point& center, double r, const Rect& w,
                std::vector<Point>* out) const;

  std::shared_ptr<ModelTrainer> trainer_;
  Config config_;
  std::vector<Point> references_;
  std::vector<double> partition_radius_;  // Max key distance per reference.
  double separation_ = 1.0;               // The constant c.
  SegmentedLearnedArray array_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_ML_INDEX_H_
