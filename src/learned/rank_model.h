#ifndef ELSI_LEARNED_RANK_MODEL_H_
#define ELSI_LEARNED_RANK_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "ml/ffn.h"
#include "ml/pla.h"

namespace elsi {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Model family backing a RankModel. kFfn is the paper's setup; kPla is the
/// PGM-style piecewise-linear extension the paper's conclusion names as
/// future work — it fits in one pass with a *provable* +-pla_epsilon
/// position bound over its training keys.
enum class RankModelBackend { kFfn, kPla };

/// Hyper-parameters of a single index model. Defaults follow Sec. VII-B1
/// (FFN, ReLU hidden layer, L2 loss, Adam, lr 0.01); the epoch count is the
/// knob the benchmarks scale for CPU-only runs.
struct RankModelConfig {
  RankModelBackend backend = RankModelBackend::kFfn;
  std::vector<int> hidden = {16};
  double learning_rate = 0.01;
  int epochs = 500;
  size_t batch_size = 0;
  /// kPla: maximum position error over the training keys.
  double pla_epsilon = 64.0;
  uint64_t seed = 42;
};

/// An index model M: one FFN mapping a (min-max normalised) 1-D key to a
/// normalised rank in [0, 1], plus the empirical error bounds that make
/// predict-and-scan exact (Sec. III). This is the unit ELSI's build
/// processor trains — on Ds instead of D — for every base index.
class RankModel {
 public:
  RankModel() = default;

  /// Trains on `sorted_train_keys` with implicit targets i/(ns-1). The
  /// normalisation range [key_lo, key_hi] must come from the FULL data set
  /// being indexed (Algorithm 1 trains on Ds but predicts over D).
  void Train(const std::vector<double>& sorted_train_keys, double key_lo,
             double key_hi, const RankModelConfig& config);

  /// Installs a pre-trained network (the MR method's model reuse path).
  void AdoptPretrained(const Ffn& net, double key_lo, double key_hi);

  /// Predicted normalised rank, clamped to [0, 1].
  double PredictRank(double key) const;

  /// Batched PredictRank: fills ranks[i] for keys[i], i in [0, n). The FFN
  /// backend pushes all keys through one ForwardBatch GEMM; ranks[i] is
  /// bit-identical to PredictRank(keys[i]) (kernel invariant, ml/matrix.h).
  void PredictRanks(const double* keys, size_t n, double* ranks) const;

  /// Scans the full key set once, recording err_l = max(pred_pos - i) and
  /// err_u = max(i - pred_pos) in *positions of that set* (Algorithm 1,
  /// line 6). After this, the true position of any indexed key lies in
  /// [pred_pos - err_l, pred_pos + err_u].
  void ComputeErrorBounds(const std::vector<double>& sorted_full_keys);

  /// Position search range [lo, hi] (inclusive) for `key` in a sorted array
  /// of `n` elements, using the stored error bounds.
  std::pair<size_t, size_t> SearchRange(double key, size_t n) const;

  /// SearchRange for a rank already computed (the batched query paths call
  /// PredictRanks once, then this per query).
  std::pair<size_t, size_t> SearchRangeFromRank(double rank, size_t n) const;

  bool trained() const { return net_ != nullptr || pla_ != nullptr; }
  double err_l() const { return err_l_; }
  double err_u() const { return err_u_; }
  double key_lo() const { return key_lo_; }
  double key_hi() const { return key_hi_; }
  /// FFN backend only (MR's model-reuse path); check backend() first.
  const Ffn& net() const { return *net_; }
  RankModelBackend backend() const {
    return pla_ != nullptr ? RankModelBackend::kPla : RankModelBackend::kFfn;
  }
  /// PLA backend only: number of fitted linear segments.
  size_t pla_segments() const { return pla_ ? pla_->segment_count() : 0; }

  /// Serializes the model (backend, normalisation range, error bounds, and
  /// the trained network or PLA) into `w`.
  void SavePersist(persist::Writer& w) const;

  /// Restores a model written by SavePersist. Returns false on malformed
  /// input.
  bool LoadPersist(persist::Reader& r);

 private:
  double Normalize(double key) const;

  std::shared_ptr<const Ffn> net_;
  std::shared_ptr<const PiecewiseLinearModel> pla_;
  double key_lo_ = 0.0;
  double key_hi_ = 1.0;
  double err_l_ = 0.0;  // Positions the prediction can overshoot by.
  double err_u_ = 0.0;  // Positions the prediction can undershoot by.
};

/// The seam between a base index and ELSI (Fig. 3): every model-training
/// request of a base index goes through a ModelTrainer. The OG path is
/// DirectTrainer; ELSI's BuildProcessor implements the same interface but
/// shrinks the training set first (Algorithm 1).
///
/// Thread-safety contract: base indices submit independent partitions as
/// worker-pool tasks, so TrainModel MUST be safe to call concurrently and
/// MUST derive any randomness from the partition's content (or a fixed
/// seed), never from call order or shared mutable counters — that is what
/// makes a parallel build bit-identical to the serial one. DirectTrainer is
/// stateless; BuildProcessor locks its instrumentation internally.
class ModelTrainer {
 public:
  virtual ~ModelTrainer() = default;

  /// Trains an index model for a partition given its points sorted by mapped
  /// key and the parallel ascending keys. `key_fn` maps an arbitrary point
  /// to its key (needed by build methods that synthesise new points, e.g.
  /// CL and RL). Must also compute error bounds over `sorted_keys`.
  virtual RankModel TrainModel(
      const std::vector<Point>& sorted_pts,
      const std::vector<double>& sorted_keys,
      const std::function<double(const Point&)>& key_fn) = 0;
};

/// OG: trains directly on the full partition (no ELSI).
class DirectTrainer : public ModelTrainer {
 public:
  explicit DirectTrainer(const RankModelConfig& config = {})
      : config_(config) {}

  RankModel TrainModel(
      const std::vector<Point>& sorted_pts,
      const std::vector<double>& sorted_keys,
      const std::function<double(const Point&)>& key_fn) override;

  const RankModelConfig& config() const { return config_; }

 private:
  RankModelConfig config_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_RANK_MODEL_H_
