#ifndef ELSI_LEARNED_LISA_INDEX_H_
#define ELSI_LEARNED_LISA_INDEX_H_

#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "learned/rank_model.h"
#include "storage/block_store.h"

namespace elsi {

/// LISA (Li et al., SIGMOD 2020): a grid over the data distribution maps
/// each point to a 1-D value (cell id + Lebesgue-style offset inside the
/// cell); a learned shard-prediction function maps values to shards, which
/// are stored as data pages. Following Sec. VII-B1 the shard predictor here
/// is an FFN rather than LISA's monotone piecewise-linear functions, which
/// breaks monotonicity and makes window queries approximate — the recall
/// behaviour Fig. 12(b) reports. Inserts go to pages by predicted shard id,
/// splitting pages as needed (the skew mechanism of Fig. 15).
struct LisaIndexConfig {
  /// Grid resolution: strips (x) x cells-per-strip (y), both equal-count.
  size_t strips = 32;
  size_t cells_per_strip = 32;
  size_t shard_size = kDefaultBlockCapacity;
  double knn_radius_factor = 2.0;
  /// Worker pool for per-strip boundary fitting, key mapping and shard
  /// loading; null means ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

class LisaIndex : public SpatialIndex {
 public:
  using Config = LisaIndexConfig;

  explicit LisaIndex(std::shared_ptr<ModelTrainer> trainer,
                     const Config& config = {});

  std::string Name() const override { return "LISA"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return size_; }

  /// Batched predict-and-scan: one shard-predictor GEMM per chunk covers
  /// every key (point queries) or strip interval endpoint (window queries).
  /// Shard ranges derived from the batched ranks are bit-identical to the
  /// serial ones, so results match the scalar loop exactly.
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts = {}) const override;
  void WindowQueryBatch(std::span<const Rect> ws,
                        std::span<std::vector<Point>> out,
                        const BatchQueryOptions& opts = {}) const override;

  /// LISA's mapped value (the map() function): cell id + in-cell offset.
  double KeyOf(const Point& p) const;

  std::vector<Point> CollectAll() const override;
  int Depth() const override { return 1; }
  size_t shard_count() const { return shards_.size(); }
  const RankModel& model() const { return model_; }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  size_t StripOf(double x) const;
  size_t CellOf(size_t strip, double y) const;
  /// Mapped value of height y within a given strip.
  double KeyAt(size_t strip, double y) const;
  /// Shard range covering mapped values in [lo, hi] via the model's error
  /// bounds (approximate when the FFN is non-monotone).
  std::pair<size_t, size_t> ShardRange(double lo, double hi) const;
  size_t PredictedShard(double key) const;
  /// The same computations given already-predicted ranks (the batched query
  /// paths run one PredictRanks GEMM, then these per query).
  std::pair<size_t, size_t> ShardRangeFromRanks(double rank_lo,
                                                double rank_hi) const;
  size_t PredictedShardFromRank(double rank) const;

  std::shared_ptr<ModelTrainer> trainer_;
  Config config_;
  Rect domain_;
  size_t size_ = 0;
  size_t built_n_ = 0;
  std::vector<double> strip_x_;              // strips+1 boundaries.
  std::vector<std::vector<double>> cell_y_;  // per strip: cells+1 boundaries.
  RankModel model_;
  std::vector<PagedList> shards_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_LISA_INDEX_H_
