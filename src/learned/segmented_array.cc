#include "learned/segmented_array.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "persist/io.h"
#include "simd/simd.h"

namespace elsi {
namespace {

using simd::SearchState;

/// Width of the predicted search window — the empirical proxy for model
/// prediction error (what Pai et al. call scan length).
obs::Histogram& ScanLenHistogram() {
  static obs::Histogram& histogram =
      obs::GetHistogram("query.point.scan_len", obs::HistogramSpec::Count());
  return histogram;
}

/// Sampled-level windows at most this long are resolved with one vector
/// count (count_less reads the whole run branchlessly) instead of joining
/// the level-synchronous binary-search work list — for a handful of
/// entries the count's couple of cache lines beat the probe chain.
constexpr size_t kCountCutoff = 16;

}  // namespace

void SegmentedLearnedArray::Build(std::vector<Point> pts,
                                  std::vector<double> keys,
                                  std::function<double(const Point&)> key_fn,
                                  ModelTrainer* trainer,
                                  const Config& config) {
  ELSI_CHECK_EQ(pts.size(), keys.size());
  ELSI_CHECK(trainer != nullptr);
  config_ = config;
  key_fn_ = std::move(key_fn);
  tombstones_.clear();
  inserted_ = 0;

  // Map-and-sort: order points by key (ties by id for determinism).
  const size_t n = pts.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return pts[a].id < pts[b].id;
  });
  pts_.resize(n);
  keys_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    pts_[i] = pts[order[i]];
    keys_[i] = keys[order[i]];
  }
  sample_.clear();
  for (size_t i = 0; i < n; i += kSampleStride) sample_.push_back(keys_[i]);

  const size_t leaf_count =
      n == 0 ? 1 : (n + config.leaf_target - 1) / config.leaf_target;
  leaf_start_.assign(leaf_count + 1, 0);
  for (size_t j = 0; j <= leaf_count; ++j) {
    leaf_start_[j] = j * n / leaf_count;
  }
  leaf_min_key_.assign(leaf_count, 0.0);
  for (size_t j = 0; j < leaf_count; ++j) {
    leaf_min_key_[j] = n == 0 ? 0.0 : keys_[leaf_start_[j]];
  }

  leaves_.assign(leaf_count, RankModel());
  overflow_.assign(leaf_count, PagedList(config.block_capacity));
  has_root_ = false;
  if (n == 0) return;

  if (leaf_count > 1) {
    root_ = trainer->TrainModel(pts_, keys_, key_fn_);
    has_root_ = true;
  }
  // Per-segment models are independent training requests; submit them to
  // the pool. Each task writes only its own leaves_ slot and every seed is
  // partition-derived, so any schedule yields the serial result.
  ThreadPool* pool = config.pool != nullptr ? config.pool
                                            : &ThreadPool::Global();
  TaskGroup group(pool);
  for (size_t j = 0; j < leaf_count; ++j) {
    group.Run([this, trainer, j] {
      const auto [s, e] = LeafRange(j);
      const std::vector<Point> seg_pts(pts_.begin() + s, pts_.begin() + e);
      const std::vector<double> seg_keys(keys_.begin() + s,
                                         keys_.begin() + e);
      leaves_[j] = trainer->TrainModel(seg_pts, seg_keys, key_fn_);
    });
  }
  group.Wait();
}

std::pair<size_t, size_t> SegmentedLearnedArray::LeafRange(size_t leaf) const {
  return {leaf_start_[leaf], leaf_start_[leaf + 1]};
}

size_t SegmentedLearnedArray::LeafOf(double key) const {
  if (leaves_.size() <= 1) return 0;
  return LeafFromRootRank(key, root_.PredictRank(key));
}

size_t SegmentedLearnedArray::LeafFromRootRank(double key, double rank) const {
  const size_t leaf_count = leaves_.size();
  if (leaf_count <= 1) return 0;
  // Root model estimates the global position, hence the leaf; a bounded
  // walk over the leaf min-key fence corrects the dispatch, falling back to
  // binary search when the prediction is far off. The initial guess inverts
  // leaf_start_[j] = j * n / leaf_count arithmetically (last j with
  // leaf_start_[j] <= pos) — it is only a starting point; the min-key walk
  // below decides the leaf.
  const double pos = rank * (pts_.size() - 1);
  const size_t p = static_cast<size_t>(pos);
  size_t j = std::min(((p + 1) * leaf_count - 1) / pts_.size(),
                      leaf_count - 1);
  for (int step = 0; step < 4; ++step) {
    if (j > 0 && key < leaf_min_key_[j]) {
      --j;
    } else if (j + 1 < leaf_count && key >= leaf_min_key_[j + 1]) {
      ++j;
    } else {
      return j;
    }
  }
  // Fallback: last leaf whose min key is <= key.
  const auto it = std::upper_bound(leaf_min_key_.begin(),
                                   leaf_min_key_.end(), key);
  if (it == leaf_min_key_.begin()) return 0;
  return static_cast<size_t>(it - leaf_min_key_.begin()) - 1;
}

size_t SegmentedLearnedArray::LowerBound(double key) const {
  const size_t n = pts_.size();
  if (n == 0) return 0;
  if (obs::SampleTick()) {
    // Sampled (1/32) model-inference timing: root dispatch + leaf predict.
    static obs::Histogram& infer_ns = obs::GetHistogram(
        "query.point.infer_ns", obs::HistogramSpec::Count());
    const uint64_t t0 = obs::NowNs();
    const size_t j = LeafOf(key);
    const double rank = leaves_[j].PredictRank(key);
    infer_ns.Observe(static_cast<double>(obs::NowNs() - t0));
    return LowerBoundInLeaf(key, j, rank);
  }
  const size_t j = LeafOf(key);
  return LowerBoundInLeaf(key, j, leaves_[j].PredictRank(key));
}

size_t SegmentedLearnedArray::LowerBoundInLeaf(double key, size_t leaf,
                                               double leaf_rank) const {
  const size_t n = pts_.size();
  const auto [s, e] = LeafRange(leaf);
  const auto [local_lo, local_hi] =
      leaves_[leaf].SearchRangeFromRank(leaf_rank, e - s);
  size_t glo = s + local_lo;
  size_t ghi = std::min(s + local_hi, n - 1);
  // Thread-locally buffered: one atomic merge per 64 queries, not per query.
  static thread_local obs::LocalHistogram scan_len(ScanLenHistogram());
  scan_len.Observe(ghi - glo + 1);
  size_t result;
  if (glo > 0 && keys_[glo - 1] >= key) {
    // Predicted range starts too late; exact global search.
    result = static_cast<size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
  } else {
    const auto it = std::lower_bound(keys_.begin() + glo,
                                     keys_.begin() + ghi + 1, key);
    if (it == keys_.begin() + ghi + 1 && ghi + 1 < n) {
      // Range ended before reaching the key; continue on the suffix.
      result = static_cast<size_t>(
          std::lower_bound(keys_.begin() + ghi + 1, keys_.end(), key) -
          keys_.begin());
    } else {
      result = static_cast<size_t>(it - keys_.begin());
    }
  }
  if (obs::QueryScope* scope = obs::QueryScope::ActiveSampled()) {
    // Flight-recorder sampled queries also record how far the model's point
    // estimate landed from the true lower bound.
    const double span = static_cast<double>(e - s);
    double predicted = static_cast<double>(s) + leaf_rank * span;
    predicted = std::clamp(predicted, static_cast<double>(s),
                           static_cast<double>(e > s ? e - 1 : s));
    scope->AddScan(ghi - glo + 1,
                   std::abs(predicted - static_cast<double>(result)));
  }
  return result;
}

void SegmentedLearnedArray::LowerBoundBatch(const double* keys, size_t n,
                                            size_t* leaf, size_t* lb) const {
  if (n == 0) return;
  if (pts_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      leaf[i] = 0;
      lb[i] = 0;
    }
    return;
  }
  const size_t nb = pts_.size();
  // Leaf dispatch. The serial path asks the root model for a starting guess
  // and corrects it with the min-key fence walk, which always lands on the
  // unique leaf with min_key[j] <= key < min_key[j+1] — i.e. the leaf is an
  // exact function of the key alone. The batch computes that function
  // directly: a branchless upper bound over the min-key fence (a few
  // hundred bytes, L1-resident across the chunk), skipping the root GEMM
  // the guess would cost. Results are identical by construction.
  const size_t leaf_count = leaves_.size();
  const double* fence = leaf_min_key_.data();
  // Group the batch by owning segment (stable counting sort) so each
  // segment model runs one GEMM; the histogram is built in the same pass as
  // the dispatch. Row independence makes the grouping invisible in the
  // results.
  static thread_local std::vector<size_t> offset;
  static thread_local std::vector<size_t> idx;
  offset.assign(leaf_count + 1, 0);
  if (idx.size() < n) idx.resize(n);
  // The dispatched kernel runs 4 (scalar/AVX2) or 8 (AVX-512) fence walks
  // in lockstep on a shared deterministic length schedule; every lane
  // computes the exact upper bound (count of fence entries <= key), so
  // the result is bit-identical on every level.
  const simd::Kernels& kern = simd::Active();
  kern.leaf_dispatch(fence, leaf_count, keys, n, leaf);
  for (size_t i = 0; i < n; ++i) ++offset[leaf[i] + 1];
  for (size_t j = 0; j < leaf_count; ++j) offset[j + 1] += offset[j];
  for (size_t i = 0; i < n; ++i) idx[offset[leaf[i]]++] = i;
  // offset[j] now ends each group: group j occupies [offset[j-1], offset[j]).
  static thread_local std::vector<double> seg_keys;
  static thread_local std::vector<double> seg_ranks;
  static thread_local std::vector<SearchState> states;
  static thread_local std::vector<size_t> wlo_of;
  static thread_local std::vector<size_t> whi_of;
  if (seg_keys.size() < n) seg_keys.resize(n);
  if (seg_ranks.size() < n) seg_ranks.resize(n);
  if (states.size() < n) states.resize(n);
  if (wlo_of.size() < n) wlo_of.resize(n);
  if (whi_of.size() < n) whi_of.resize(n);
  constexpr size_t kS = kSampleStride;
  uint64_t infer_ns_total = 0;
  // Stack-scoped buffer: bucketing is local, one atomic merge per chunk
  // (flushed by the destructor before this call returns).
  obs::LocalHistogram scan_len(ScanLenHistogram());
  for (size_t j = 0, a = 0; j < leaf_count; ++j) {
    const size_t b = offset[j];
    if (a == b) continue;
    for (size_t t = a; t < b; ++t) seg_keys[t - a] = keys[idx[t]];
    const uint64_t infer_t0 = obs::NowNs();
    leaves_[j].PredictRanks(seg_keys.data(), b - a, seg_ranks.data());
    infer_ns_total += obs::NowNs() - infer_t0;
    const auto [s, e] = LeafRange(j);
    for (size_t t = a; t < b; ++t) {
      // Predicted window in global positions, half-open (never empty:
      // llo <= lhi and both lie inside the leaf).
      const auto [llo, lhi] =
          leaves_[j].SearchRangeFromRank(seg_ranks[t - a], e - s);
      const size_t wlo = s + llo;
      const size_t whi = std::min(s + lhi, nb - 1) + 1;
      scan_len.Observe(whi - wlo);
      // First search level: the sampled keys strictly inside the window,
      // sample_[t] = keys_[t * kS] for t in [ta, tb). The model window
      // restricts the sample range (fewer rounds), not correctness.
      const size_t ta = wlo / kS + 1;
      const size_t tb = std::max(ta, (whi - 1) / kS + 1);
      states[idx[t]] = {ta, tb - ta, keys[idx[t]]};
      wlo_of[idx[t]] = wlo;
      whi_of[idx[t]] = whi;
    }
    a = b;
  }
  {
    // One observation per chunk: total GEMM inference time for the batch.
    static obs::Histogram& infer_us = obs::GetHistogram(
        "query.batch.infer_us", obs::HistogramSpec::LatencyUs());
    infer_us.Observe(static_cast<double>(infer_ns_total) / 1000.0);
  }
  // Two software-pipelined passes resolve every search within its predicted
  // window, walking searches in leaf-sorted order so neighbouring searches
  // touch neighbouring pages. Pass 1 searches the sampled level — ~1.5% the
  // base array's size, so a chunk's probes keep it cache-hot — which pins
  // each answer inside one kS-slot stride of the base array. Narrow sample
  // windows (the common case when the models fit well) skip the binary
  // search entirely: a vector count of sampled keys < key IS the lower
  // bound over a sorted run, and both routes are exact, so the cutoff
  // never changes a result. Pass 2 finishes inside the stride (at most
  // kS + 1 sorted keys) with the same count kernel — data-independent
  // compares instead of a probe chain. After pass 2, states[i].lo is
  // exactly the lower bound over [wlo, whi): sample_[t0] >= key bounds the
  // answer above by t0 * kS, and sample_[t0 - 1] < key bounds it below by
  // (t0 - 1) * kS + 1, with the window edges taking over when t0 lands on
  // either end of the sample range. The window is itself only a hint: a
  // result landing on ITS edge is the one case where the true lower bound
  // may lie outside, and the corrections below re-search the prefix/suffix
  // exactly then — the same two escapes the serial LowerBoundInLeaf takes,
  // except the serial path pays two boundary-key probes per query up front
  // while this pays only on the (rare) edge landings.
  static thread_local std::vector<size_t> work;
  if (work.size() < n) work.resize(n);
  size_t active = 0;
  for (size_t t = 0; t < n; ++t) {
    const size_t q = idx[t];
    if (states[q].len == 0) continue;
    if (states[q].len <= kCountCutoff) {
      states[q].lo +=
          kern.count_less(sample_.data() + states[q].lo, states[q].len,
                          states[q].key);
    } else {
      work[active++] = q;
    }
  }
  kern.batched_lower_bound(sample_.data(), states.data(), work.data(),
                           active);
  for (size_t t = 0; t < n; ++t) {
    const size_t q = idx[t];
    const size_t ta = wlo_of[q] / kS + 1;
    const size_t tb = std::max(ta, (whi_of[q] - 1) / kS + 1);
    const size_t t0 = states[q].lo;  // In [ta, tb]; == ta when range empty.
    const size_t lo2 = t0 == ta ? wlo_of[q] : (t0 - 1) * kS + 1;
    const size_t hi2 = t0 == tb ? whi_of[q] : t0 * kS + 1;
    states[q].lo = lo2;
    states[q].len = hi2 - lo2;
    // hi2 == lo2 happens when the last in-window sample already proves the
    // answer is whi (stride boundary): nothing left to search. Prefetch
    // both ends of each stride window so pass 2's counts hit warm lines.
    if (hi2 > lo2) {
      __builtin_prefetch(&keys_[lo2]);
      __builtin_prefetch(&keys_[hi2 - 1]);
    }
  }
  for (size_t t = 0; t < n; ++t) {
    const size_t q = idx[t];
    states[q].lo += kern.count_less(keys_.data() + states[q].lo,
                                    states[q].len, states[q].key);
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = states[i].lo;
    const double key = states[i].key;
    if (pos == wlo_of[i] && pos > 0 && keys_[pos - 1] >= key) {
      // Landed on the lower edge and the key just below it is not smaller:
      // the window started too late, and the answer is the exact prefix
      // lower bound.
      lb[i] = static_cast<size_t>(
          std::lower_bound(keys_.begin(), keys_.begin() + pos, key) -
          keys_.begin());
    } else if (pos == whi_of[i] && pos < nb && keys_[pos] < key) {
      // Landed past the upper edge (every window key is < key) and the next
      // key is still smaller: the window ended too early; continue on the
      // suffix.
      lb[i] = static_cast<size_t>(
          std::lower_bound(keys_.begin() + pos, keys_.end(), key) -
          keys_.begin());
    } else {
      lb[i] = pos;
    }
  }
}

void SegmentedLearnedArray::PointQueryBatch(const Point* qs,
                                            const double* keys, size_t n,
                                            uint8_t* hit, Point* out) const {
  if (n == 0) return;
  const size_t nb = pts_.size();
  static thread_local std::vector<size_t> leaf;
  static thread_local std::vector<size_t> lb;
  if (leaf.size() < n) leaf.resize(n);
  if (lb.size() < n) lb.resize(n);
  LowerBoundBatch(keys, n, leaf.data(), lb.data());
  // Overlap the scan phase's base-array misses across the whole chunk.
  for (size_t i = 0; i < n; ++i) {
    if (lb[i] < nb) {
      __builtin_prefetch(&keys_[lb[i]]);
      __builtin_prefetch(&pts_[lb[i]]);
    }
  }
  std::vector<Point> overflow_hits;
  for (size_t i = 0; i < n; ++i) {
    hit[i] = 0;
    for (size_t pos = lb[i]; pos < nb && keys_[pos] == keys[i]; ++pos) {
      const Point& p = pts_[pos];
      if (p.x == qs[i].x && p.y == qs[i].y && tombstones_.count(p.id) == 0) {
        out[i] = p;
        hit[i] = 1;
        break;
      }
    }
    if (hit[i] == 0 && inserted_ > 0 && !overflow_.empty()) {
      overflow_hits.clear();
      overflow_[leaf[i]].ScanKeyRange(keys[i], keys[i], &overflow_hits);
      for (const Point& p : overflow_hits) {
        if (p.x == qs[i].x && p.y == qs[i].y) {
          out[i] = p;
          hit[i] = 1;
          break;
        }
      }
    }
  }
}

bool SegmentedLearnedArray::PointQuery(const Point& q, double key,
                                       Point* out) const {
  const size_t n = pts_.size();
  for (size_t pos = n == 0 ? 0 : LowerBound(key);
       pos < n && keys_[pos] == key; ++pos) {
    const Point& p = pts_[pos];
    if (p.x == q.x && p.y == q.y && tombstones_.count(p.id) == 0) {
      if (out != nullptr) *out = p;
      return true;
    }
  }
  if (inserted_ > 0 && !overflow_.empty()) {
    std::vector<Point> hits;
    overflow_[LeafOf(key)].ScanKeyRange(key, key, &hits);
    for (const Point& p : hits) {
      if (p.x == q.x && p.y == q.y) {
        if (out != nullptr) *out = p;
        return true;
      }
    }
  }
  return false;
}

void SegmentedLearnedArray::ScanKeyRange(double lo, double hi,
                                         std::vector<Point>* out) const {
  const size_t n = pts_.size();
  if (n > 0) {
    // The run [start, end) is delimited up front by the early-exiting
    // vector count (count of keys <= hi == upper_bound offset in a sorted
    // run), so the copy loop below does no key compares.
    const size_t start = LowerBound(lo);
    const size_t end =
        start + simd::Active().count_less_equal(keys_.data() + start,
                                                n - start, hi);
    for (size_t pos = start; pos < end; ++pos) {
      if (tombstones_.count(pts_[pos].id) == 0) out->push_back(pts_[pos]);
    }
  }
  if (inserted_ > 0) {
    const size_t j_lo = LeafOf(lo);
    const size_t j_hi = LeafOf(hi);
    for (size_t j = j_lo; j <= j_hi && j < overflow_.size(); ++j) {
      overflow_[j].ScanKeyRange(lo, hi, out);
    }
  }
}

void SegmentedLearnedArray::ScanKeyRangeInRect(double lo, double hi,
                                               const Rect& w,
                                               std::vector<Point>* out) const {
  const size_t n = pts_.size();
  if (n > 0) {
    // Run length first (vector count), then block-wise vector containment
    // over the AoS points; the push loop only touches points whose mask
    // bit survived. Mask semantics are exactly Rect::Contains, so results
    // match the scalar loop on every level.
    const simd::Kernels& kern = simd::Active();
    const size_t start = LowerBound(lo);
    const size_t end = start + kern.count_less_equal(keys_.data() + start,
                                                     n - start, hi);
    uint8_t mask[256];
    for (size_t pos = start; pos < end; pos += sizeof(mask)) {
      const size_t len = std::min(sizeof(mask), end - pos);
      kern.contains_mask(pts_.data() + pos, len, w, mask);
      for (size_t i = 0; i < len; ++i) {
        const Point& p = pts_[pos + i];
        if (mask[i] != 0 && tombstones_.count(p.id) == 0) out->push_back(p);
      }
    }
  }
  if (inserted_ > 0) {
    const size_t j_lo = LeafOf(lo);
    const size_t j_hi = LeafOf(hi);
    for (size_t j = j_lo; j <= j_hi && j < overflow_.size(); ++j) {
      overflow_[j].ScanKeyRangeInRect(lo, hi, w, out);
    }
  }
}

void SegmentedLearnedArray::ScanOverflowInRect(double lo, double hi,
                                               const Rect& w,
                                               std::vector<Point>* out) const {
  if (inserted_ == 0) return;
  const size_t j_lo = LeafOf(lo);
  const size_t j_hi = LeafOf(hi);
  for (size_t j = j_lo; j <= j_hi && j < overflow_.size(); ++j) {
    overflow_[j].ScanKeyRangeInRect(lo, hi, w, out);
  }
}

void SegmentedLearnedArray::VisitBaseRange(
    double lo, double hi,
    const std::function<size_t(size_t, const Point&)>& visitor) const {
  if (pts_.empty()) return;
  VisitBaseRangeFrom(LowerBound(lo), hi, visitor);
}

void SegmentedLearnedArray::VisitBaseRangeFrom(
    size_t start, double hi,
    const std::function<size_t(size_t, const Point&)>& visitor) const {
  const size_t n = pts_.size();
  if (n == 0) return;
  size_t pos = start;
  while (pos < n && keys_[pos] <= hi) {
    if (tombstones_.count(pts_[pos].id) > 0) {
      ++pos;
      continue;
    }
    const size_t next = visitor(pos, pts_[pos]);
    ELSI_DCHECK(next > pos);
    pos = next;
  }
}

void SegmentedLearnedArray::Insert(const Point& p, double key) {
  if (overflow_.empty()) overflow_.assign(1, PagedList(config_.block_capacity));
  const size_t j = pts_.empty() ? 0 : LeafOf(key);
  overflow_[j].Insert(p, key);
  ++inserted_;
}

bool SegmentedLearnedArray::Remove(const Point& p, double key) {
  if (inserted_ > 0 && !overflow_.empty()) {
    if (overflow_[pts_.empty() ? 0 : LeafOf(key)].Erase(p.id, key)) {
      --inserted_;
      return true;
    }
  }
  const size_t n = pts_.size();
  for (size_t pos = n == 0 ? 0 : LowerBound(key);
       pos < n && keys_[pos] == key; ++pos) {
    const Point& base = pts_[pos];
    if (base.id == p.id && base.x == p.x && base.y == p.y) {
      return tombstones_.insert(p.id).second;
    }
  }
  return false;
}

std::vector<Point> SegmentedLearnedArray::CollectAll() const {
  std::vector<Point> all;
  all.reserve(size());
  for (const Point& p : pts_) {
    if (tombstones_.count(p.id) == 0) all.push_back(p);
  }
  for (const PagedList& pages : overflow_) {
    for (const Block& b : pages.blocks()) {
      all.insert(all.end(), b.points.begin(), b.points.end());
    }
  }
  return all;
}

void SegmentedLearnedArray::SavePersist(persist::Writer& w) const {
  w.U64(config_.leaf_target);
  w.U64(config_.block_capacity);
  persist::PutPoints(w, pts_);
  w.F64Vec(keys_);
  w.Bool(has_root_);
  if (has_root_) root_.SavePersist(w);
  w.U32(static_cast<uint32_t>(leaves_.size()));
  for (const RankModel& m : leaves_) m.SavePersist(w);
  std::vector<uint64_t> starts(leaf_start_.begin(), leaf_start_.end());
  w.U64Vec(starts);
  w.F64Vec(leaf_min_key_);
  for (const PagedList& pages : overflow_) pages.SavePersist(w);
  w.U64(inserted_);
  w.U64(tombstones_.size());
  // Tombstones are a membership set; order does not affect behaviour, but a
  // sorted encoding keeps snapshots byte-stable across runs.
  std::vector<uint64_t> dead(tombstones_.begin(), tombstones_.end());
  std::sort(dead.begin(), dead.end());
  for (uint64_t id : dead) w.U64(id);
}

bool SegmentedLearnedArray::LoadPersist(
    persist::Reader& r, std::function<double(const Point&)> key_fn,
    ThreadPool* pool) {
  config_.leaf_target = r.U64();
  config_.block_capacity = r.U64();
  config_.pool = pool;
  key_fn_ = std::move(key_fn);
  if (config_.leaf_target == 0 || config_.block_capacity < 2) return r.Fail();
  if (!persist::GetPoints(r, &pts_)) return false;
  if (!r.F64Vec(&keys_)) return false;
  if (keys_.size() != pts_.size() ||
      !std::is_sorted(keys_.begin(), keys_.end())) {
    return r.Fail();
  }
  sample_.clear();
  for (size_t i = 0; i < keys_.size(); i += kSampleStride) {
    sample_.push_back(keys_[i]);
  }
  has_root_ = r.Bool();
  if (has_root_ && !root_.LoadPersist(r)) return false;
  if (!has_root_) root_ = RankModel();
  const uint32_t leaf_count = r.U32();
  if (leaf_count == 0 || leaf_count > r.remaining()) return r.Fail();
  leaves_.assign(leaf_count, RankModel());
  for (RankModel& m : leaves_) {
    if (!m.LoadPersist(r)) return false;
  }
  std::vector<uint64_t> starts;
  if (!r.U64Vec(&starts)) return false;
  if (starts.size() != static_cast<size_t>(leaf_count) + 1 ||
      !std::is_sorted(starts.begin(), starts.end()) ||
      starts.front() != 0 || starts.back() != pts_.size()) {
    return r.Fail();
  }
  leaf_start_.assign(starts.begin(), starts.end());
  if (!r.F64Vec(&leaf_min_key_)) return false;
  if (leaf_min_key_.size() != leaf_count) return r.Fail();
  overflow_.assign(leaf_count, PagedList(config_.block_capacity));
  for (PagedList& pages : overflow_) {
    if (!pages.LoadPersist(r)) return false;
  }
  inserted_ = r.U64();
  const uint64_t ndead = r.U64();
  if (ndead > r.remaining() / 8) return r.Fail();
  tombstones_.clear();
  tombstones_.reserve(ndead);
  for (uint64_t i = 0; i < ndead; ++i) tombstones_.insert(r.U64());
  return r.ok();
}

}  // namespace elsi
