#include "learned/segmented_array.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace elsi {

void SegmentedLearnedArray::Build(std::vector<Point> pts,
                                  std::vector<double> keys,
                                  std::function<double(const Point&)> key_fn,
                                  ModelTrainer* trainer,
                                  const Config& config) {
  ELSI_CHECK_EQ(pts.size(), keys.size());
  ELSI_CHECK(trainer != nullptr);
  config_ = config;
  key_fn_ = std::move(key_fn);
  tombstones_.clear();
  inserted_ = 0;

  // Map-and-sort: order points by key (ties by id for determinism).
  const size_t n = pts.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return pts[a].id < pts[b].id;
  });
  pts_.resize(n);
  keys_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    pts_[i] = pts[order[i]];
    keys_[i] = keys[order[i]];
  }

  const size_t leaf_count =
      n == 0 ? 1 : (n + config.leaf_target - 1) / config.leaf_target;
  leaf_start_.assign(leaf_count + 1, 0);
  for (size_t j = 0; j <= leaf_count; ++j) {
    leaf_start_[j] = j * n / leaf_count;
  }
  leaf_min_key_.assign(leaf_count, 0.0);
  for (size_t j = 0; j < leaf_count; ++j) {
    leaf_min_key_[j] = n == 0 ? 0.0 : keys_[leaf_start_[j]];
  }

  leaves_.assign(leaf_count, RankModel());
  overflow_.assign(leaf_count, PagedList(config.block_capacity));
  has_root_ = false;
  if (n == 0) return;

  if (leaf_count > 1) {
    root_ = trainer->TrainModel(pts_, keys_, key_fn_);
    has_root_ = true;
  }
  // Per-segment models are independent training requests; submit them to
  // the pool. Each task writes only its own leaves_ slot and every seed is
  // partition-derived, so any schedule yields the serial result.
  ThreadPool* pool = config.pool != nullptr ? config.pool
                                            : &ThreadPool::Global();
  TaskGroup group(pool);
  for (size_t j = 0; j < leaf_count; ++j) {
    group.Run([this, trainer, j] {
      const auto [s, e] = LeafRange(j);
      const std::vector<Point> seg_pts(pts_.begin() + s, pts_.begin() + e);
      const std::vector<double> seg_keys(keys_.begin() + s,
                                         keys_.begin() + e);
      leaves_[j] = trainer->TrainModel(seg_pts, seg_keys, key_fn_);
    });
  }
  group.Wait();
}

std::pair<size_t, size_t> SegmentedLearnedArray::LeafRange(size_t leaf) const {
  return {leaf_start_[leaf], leaf_start_[leaf + 1]};
}

size_t SegmentedLearnedArray::LeafOf(double key) const {
  const size_t leaf_count = leaves_.size();
  if (leaf_count <= 1) return 0;
  // Root model estimates the global position, hence the leaf; a bounded
  // walk over the leaf min-key fence corrects the dispatch, falling back to
  // binary search when the prediction is far off.
  const double pos = root_.PredictRank(key) * (pts_.size() - 1);
  size_t j = static_cast<size_t>(
                 std::upper_bound(leaf_start_.begin(), leaf_start_.end(),
                                  static_cast<size_t>(pos)) -
                 leaf_start_.begin());
  j = j == 0 ? 0 : std::min(j - 1, leaf_count - 1);
  for (int step = 0; step < 4; ++step) {
    if (j > 0 && key < leaf_min_key_[j]) {
      --j;
    } else if (j + 1 < leaf_count && key >= leaf_min_key_[j + 1]) {
      ++j;
    } else {
      return j;
    }
  }
  // Fallback: last leaf whose min key is <= key.
  const auto it = std::upper_bound(leaf_min_key_.begin(),
                                   leaf_min_key_.end(), key);
  if (it == leaf_min_key_.begin()) return 0;
  return static_cast<size_t>(it - leaf_min_key_.begin()) - 1;
}

size_t SegmentedLearnedArray::LowerBound(double key) const {
  const size_t n = pts_.size();
  if (n == 0) return 0;
  const size_t j = LeafOf(key);
  const auto [s, e] = LeafRange(j);
  const auto [local_lo, local_hi] = leaves_[j].SearchRange(key, e - s);
  size_t glo = s + local_lo;
  size_t ghi = std::min(s + local_hi, n - 1);
  if (glo > 0 && keys_[glo - 1] >= key) {
    // Predicted range starts too late; exact global search.
    return static_cast<size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
  }
  const auto it = std::lower_bound(keys_.begin() + glo,
                                   keys_.begin() + ghi + 1, key);
  if (it == keys_.begin() + ghi + 1 && ghi + 1 < n) {
    // Range ended before reaching the key; continue on the suffix.
    return static_cast<size_t>(
        std::lower_bound(keys_.begin() + ghi + 1, keys_.end(), key) -
        keys_.begin());
  }
  return static_cast<size_t>(it - keys_.begin());
}

bool SegmentedLearnedArray::PointQuery(const Point& q, double key,
                                       Point* out) const {
  const size_t n = pts_.size();
  for (size_t pos = n == 0 ? 0 : LowerBound(key);
       pos < n && keys_[pos] == key; ++pos) {
    const Point& p = pts_[pos];
    if (p.x == q.x && p.y == q.y && tombstones_.count(p.id) == 0) {
      if (out != nullptr) *out = p;
      return true;
    }
  }
  if (inserted_ > 0 && !overflow_.empty()) {
    std::vector<Point> hits;
    overflow_[LeafOf(key)].ScanKeyRange(key, key, &hits);
    for (const Point& p : hits) {
      if (p.x == q.x && p.y == q.y) {
        if (out != nullptr) *out = p;
        return true;
      }
    }
  }
  return false;
}

void SegmentedLearnedArray::ScanKeyRange(double lo, double hi,
                                         std::vector<Point>* out) const {
  const size_t n = pts_.size();
  if (n > 0) {
    for (size_t pos = LowerBound(lo); pos < n && keys_[pos] <= hi; ++pos) {
      if (tombstones_.count(pts_[pos].id) == 0) out->push_back(pts_[pos]);
    }
  }
  if (inserted_ > 0) {
    const size_t j_lo = LeafOf(lo);
    const size_t j_hi = LeafOf(hi);
    for (size_t j = j_lo; j <= j_hi && j < overflow_.size(); ++j) {
      overflow_[j].ScanKeyRange(lo, hi, out);
    }
  }
}

void SegmentedLearnedArray::ScanKeyRangeInRect(double lo, double hi,
                                               const Rect& w,
                                               std::vector<Point>* out) const {
  const size_t n = pts_.size();
  if (n > 0) {
    for (size_t pos = LowerBound(lo); pos < n && keys_[pos] <= hi; ++pos) {
      const Point& p = pts_[pos];
      if (w.Contains(p) && tombstones_.count(p.id) == 0) out->push_back(p);
    }
  }
  if (inserted_ > 0) {
    const size_t j_lo = LeafOf(lo);
    const size_t j_hi = LeafOf(hi);
    for (size_t j = j_lo; j <= j_hi && j < overflow_.size(); ++j) {
      overflow_[j].ScanKeyRangeInRect(lo, hi, w, out);
    }
  }
}

void SegmentedLearnedArray::ScanOverflowInRect(double lo, double hi,
                                               const Rect& w,
                                               std::vector<Point>* out) const {
  if (inserted_ == 0) return;
  const size_t j_lo = LeafOf(lo);
  const size_t j_hi = LeafOf(hi);
  for (size_t j = j_lo; j <= j_hi && j < overflow_.size(); ++j) {
    overflow_[j].ScanKeyRangeInRect(lo, hi, w, out);
  }
}

void SegmentedLearnedArray::VisitBaseRange(
    double lo, double hi,
    const std::function<size_t(size_t, const Point&)>& visitor) const {
  const size_t n = pts_.size();
  if (n == 0) return;
  size_t pos = LowerBound(lo);
  while (pos < n && keys_[pos] <= hi) {
    if (tombstones_.count(pts_[pos].id) > 0) {
      ++pos;
      continue;
    }
    const size_t next = visitor(pos, pts_[pos]);
    ELSI_DCHECK(next > pos);
    pos = next;
  }
}

void SegmentedLearnedArray::Insert(const Point& p, double key) {
  if (overflow_.empty()) overflow_.assign(1, PagedList(config_.block_capacity));
  const size_t j = pts_.empty() ? 0 : LeafOf(key);
  overflow_[j].Insert(p, key);
  ++inserted_;
}

bool SegmentedLearnedArray::Remove(const Point& p, double key) {
  if (inserted_ > 0 && !overflow_.empty()) {
    if (overflow_[pts_.empty() ? 0 : LeafOf(key)].Erase(p.id, key)) {
      --inserted_;
      return true;
    }
  }
  const size_t n = pts_.size();
  for (size_t pos = n == 0 ? 0 : LowerBound(key);
       pos < n && keys_[pos] == key; ++pos) {
    const Point& base = pts_[pos];
    if (base.id == p.id && base.x == p.x && base.y == p.y) {
      return tombstones_.insert(p.id).second;
    }
  }
  return false;
}

std::vector<Point> SegmentedLearnedArray::CollectAll() const {
  std::vector<Point> all;
  all.reserve(size());
  for (const Point& p : pts_) {
    if (tombstones_.count(p.id) == 0) all.push_back(p);
  }
  for (const PagedList& pages : overflow_) {
    for (const Block& b : pages.blocks()) {
      all.insert(all.end(), b.points.begin(), b.points.end());
    }
  }
  return all;
}

}  // namespace elsi
