#ifndef ELSI_LEARNED_ZM_INDEX_H_
#define ELSI_LEARNED_ZM_INDEX_H_

#include <memory>

#include "common/spatial_index.h"
#include "curve/zorder.h"
#include "learned/segmented_array.h"

namespace elsi {

/// The ZM index (Wang et al., MDM 2019): points are mapped to Z-curve
/// values, sorted, and indexed by a staged RMI of FFN rank models
/// (SegmentedLearnedArray). Point and window queries are exact — windows
/// scan the Z-range [z(lo), z(hi)] with BIGMIN jumps over false-positive
/// runs — and kNN is answered by expanding windows. Inserts land in
/// per-segment overflow pages.
struct ZmIndexConfig {
  SegmentedLearnedArray::Config array;
  /// Bits per dimension of the Z-grid. 26 keeps the 2d-bit code exactly
  /// representable in a double key.
  int bits_per_dim = 26;
  /// kNN initial radius multiplier (times the expected k-point radius).
  double knn_radius_factor = 2.0;
  /// Skip false-positive Z-runs in window scans via BIGMIN jumps. Disabling
  /// falls back to a plain filtered scan of [z(lo), z(hi)] — the ablation
  /// bench_ablation_design measures the difference.
  bool use_bigmin = true;
};

class ZmIndex : public SpatialIndex {
 public:
  using Config = ZmIndexConfig;

  explicit ZmIndex(std::shared_ptr<ModelTrainer> trainer,
                   const Config& config = {});

  std::string Name() const override { return "ZM"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return array_.size(); }

  /// Batched predict-and-scan: each chunk's Z-keys go through the rank
  /// models as single GEMMs (SegmentedLearnedArray::PointQueryBatch /
  /// LowerBoundBatch); answers match the serial loop bit for bit.
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts = {}) const override;
  void WindowQueryBatch(std::span<const Rect> ws,
                        std::span<std::vector<Point>> out,
                        const BatchQueryOptions& opts = {}) const override;

  /// The Z-key of a point under the build-time quantizer (the base index's
  /// map() function in Algorithm 1).
  double KeyOf(const Point& p) const;

  /// The 2b-bit Z-code (integer form) of a point.
  uint64_t CodeOf(const Point& p) const;

  std::vector<Point> CollectAll() const override {
    return array_.CollectAll();
  }
  const SegmentedLearnedArray& array() const { return array_; }
  int Depth() const override { return array_.model_depth(); }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  // Predict-and-scan body of WindowQuery given the window's Z-range and the
  // already-computed start position (LowerBound of zmin).
  std::vector<Point> WindowScanFrom(const Rect& w, uint64_t zmin,
                                    uint64_t zmax, size_t start) const;

  std::shared_ptr<ModelTrainer> trainer_;
  Config config_;
  int shift_ = 6;  // 32 - bits_per_dim.
  std::unique_ptr<GridQuantizer> quantizer_;
  Rect domain_;
  SegmentedLearnedArray array_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_ZM_INDEX_H_
