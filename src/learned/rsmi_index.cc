#include "learned/rsmi_index.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/knn.h"
#include "common/logging.h"
#include "curve/hilbert.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "persist/io.h"

namespace {

/// Predicted search-window width in the RSMI leaf (scan-length proxy).
elsi::obs::Histogram& RsmiScanLenHistogram() {
  static elsi::obs::Histogram& histogram = elsi::obs::GetHistogram(
      "query.point.scan_len", elsi::obs::HistogramSpec::Count());
  return histogram;
}

}  // namespace

namespace elsi {

RsmiIndex::RsmiIndex(std::shared_ptr<ModelTrainer> trainer,
                     const Config& config)
    : trainer_(std::move(trainer)), config_(config) {
  ELSI_CHECK(trainer_ != nullptr);
  ELSI_CHECK_GE(config.fanout, 2u);
  ELSI_CHECK(config.hilbert_order >= 4 && config.hilbert_order <= 16);
  ELSI_CHECK_GT(config.quantiles, 1u);
}

void RsmiIndex::SetUpMapping(Node* node, const std::vector<Point>& pts) const {
  node->bounds = BoundingRect(pts);
  const size_t q = std::min(config_.quantiles, pts.size());
  std::vector<double> xs(pts.size()), ys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    xs[i] = pts[i].x;
    ys[i] = pts[i].y;
  }
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  node->qx.resize(q);
  node->qy.resize(q);
  for (size_t i = 0; i < q; ++i) {
    // Systematic quantile sample of the coordinate distribution: the
    // approximate rank space of RSMI.
    const size_t src = i * pts.size() / q;
    node->qx[i] = xs[src];
    node->qy[i] = ys[src];
  }
}

double RsmiIndex::NodeKey(const Node& node, const Point& p) const {
  if (node.qx.empty()) return 0.0;
  const double q = static_cast<double>(node.qx.size());
  const uint32_t side = (1u << config_.hilbert_order) - 1;
  const auto rank = [side, q](const std::vector<double>& table, double v) {
    const size_t r = static_cast<size_t>(
        std::upper_bound(table.begin(), table.end(), v) - table.begin());
    return static_cast<uint32_t>(static_cast<double>(r) * side / q);
  };
  return static_cast<double>(HilbertEncode(rank(node.qx, p.x),
                                           rank(node.qy, p.y),
                                           config_.hilbert_order));
}

size_t RsmiIndex::RouteChild(const Node& node, double key) const {
  return RouteChildFromRank(
      node, node.model.trained() ? node.model.PredictRank(key) : 0.0);
}

size_t RsmiIndex::RouteChildFromRank(const Node& node, double rank) const {
  const double f = static_cast<double>(node.children.size());
  const double c = std::floor(rank * f);
  if (c <= 0.0) return 0;
  const size_t idx = static_cast<size_t>(c);
  return std::min(idx, node.children.size() - 1);
}

std::unique_ptr<RsmiIndex::Node> RsmiIndex::BuildNode(std::vector<Point> pts,
                                                      int depth) {
  auto node = std::make_unique<Node>(config_.block_capacity);
  SetUpMapping(node.get(), pts);
  std::vector<double> keys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) keys[i] = NodeKey(*node, pts[i]);
  std::vector<size_t> order(pts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return pts[a].id < pts[b].id;
  });
  std::vector<Point> sorted_pts(pts.size());
  std::vector<double> sorted_keys(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    sorted_pts[i] = pts[order[i]];
    sorted_keys[i] = keys[order[i]];
  }

  const auto key_fn = [this, n = node.get()](const Point& p) {
    return NodeKey(*n, p);
  };
  if (pts.size() <= config_.leaf_capacity || depth >= config_.max_depth) {
    node->is_leaf = true;
    node->pts = std::move(sorted_pts);
    node->keys = std::move(sorted_keys);
    if (!node->keys.empty()) {
      node->model = trainer_->TrainModel(node->pts, node->keys, key_fn);
    }
    return node;
  }

  node->is_leaf = false;
  node->model = trainer_->TrainModel(sorted_pts, sorted_keys, key_fn);
  // Route points to children by the model's prediction — the structure is
  // data-dependent, as in the original RSMI.
  std::vector<std::vector<Point>> buckets(config_.fanout);
  node->children.resize(config_.fanout);  // Sized before RouteChild.
  size_t max_bucket = 0;
  for (size_t i = 0; i < sorted_pts.size(); ++i) {
    const size_t c = RouteChild(*node, sorted_keys[i]);
    buckets[c].push_back(sorted_pts[i]);
    max_bucket = std::max(max_bucket, buckets[c].size());
  }
  if (max_bucket == sorted_pts.size()) {
    // Degenerate routing (model collapsed); fall back to rank chunks so the
    // recursion always makes progress.
    for (auto& b : buckets) b.clear();
    const size_t f = config_.fanout;
    for (size_t i = 0; i < sorted_pts.size(); ++i) {
      buckets[i * f / sorted_pts.size()].push_back(sorted_pts[i]);
    }
  }
  // Sibling subtrees are independent: fan them out on the pool. Nested
  // TaskGroups are safe because Wait() helps run queued tasks instead of
  // blocking, and each task writes only its own children slot.
  ThreadPool* pool =
      config_.pool != nullptr ? config_.pool : &ThreadPool::Global();
  TaskGroup group(pool);
  for (size_t c = 0; c < config_.fanout; ++c) {
    group.Run([this, node_ptr = node.get(), &buckets, c, depth] {
      node_ptr->children[c] = BuildNode(std::move(buckets[c]), depth + 1);
    });
  }
  group.Wait();
  return node;
}

void RsmiIndex::Build(const std::vector<Point>& data) {
  size_ = data.size();
  leaf_merges_ = 0;
  domain_ = data.empty() ? Rect::Of(0, 0, 1, 1) : BoundingRect(data);
  root_ = BuildNode(data, 1);
  obs::ModelHealthMonitor::Get().OnBuild("RSMI");
}

RsmiIndex::Node* RsmiIndex::DescendToLeaf(const Point& p) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[RouteChild(*node, NodeKey(*node, p))].get();
  }
  return node;
}

bool RsmiIndex::PointQuery(const Point& q, Point* out) const {
  obs::QueryScope flight("RSMI", obs::QueryKind::kPoint);
  if (root_ == nullptr) return false;
  const Node* leaf = DescendToLeaf(q);
  const double key = NodeKey(*leaf, q);
  if (!leaf->keys.empty() && leaf->model.trained()) {
    const auto [lo, hi] = leaf->model.SearchRange(key, leaf->keys.size());
    RsmiScanLenHistogram().Observe(static_cast<double>(hi - lo + 1));
    if (obs::QueryScope* scope = obs::QueryScope::ActiveSampled()) {
      // The search-range width doubles as the model's error bound here.
      scope->AddScan(hi - lo + 1, static_cast<double>(hi - lo) / 2.0);
    }
    for (size_t i = lo; i <= hi && i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] != key) continue;
      const Point& p = leaf->pts[i];
      if (p.x == q.x && p.y == q.y && leaf->tombstones.count(p.id) == 0) {
        if (out != nullptr) *out = p;
        return true;
      }
    }
  }
  std::vector<Point> hits;
  leaf->overflow.ScanKeyRange(key, key, &hits);
  for (const Point& p : hits) {
    if (p.x == q.x && p.y == q.y) {
      if (out != nullptr) *out = p;
      return true;
    }
  }
  return false;
}

void RsmiIndex::AnswerLeafBatch(const Node& leaf,
                                const std::vector<size_t>& q_idx,
                                const std::vector<double>& keys,
                                std::span<const Point> qs,
                                std::span<uint8_t> hit,
                                std::span<Point> out) const {
  const bool use_model = !leaf.keys.empty() && leaf.model.trained();
  std::vector<double> ranks;
  if (use_model) {
    ranks.resize(keys.size());
    leaf.model.PredictRanks(keys.data(), keys.size(), ranks.data());
  }
  std::vector<Point> overflow_hits;
  for (size_t t = 0; t < q_idx.size(); ++t) {
    const size_t qi = q_idx[t];
    const Point& q = qs[qi];
    hit[qi] = 0;
    if (use_model) {
      const auto [lo, hi] =
          leaf.model.SearchRangeFromRank(ranks[t], leaf.keys.size());
      RsmiScanLenHistogram().Observe(static_cast<double>(hi - lo + 1));
      for (size_t i = lo; i <= hi && i < leaf.keys.size(); ++i) {
        if (leaf.keys[i] != keys[t]) continue;
        const Point& p = leaf.pts[i];
        if (p.x == q.x && p.y == q.y && leaf.tombstones.count(p.id) == 0) {
          out[qi] = p;
          hit[qi] = 1;
          break;
        }
      }
    }
    if (hit[qi] == 0) {
      overflow_hits.clear();
      leaf.overflow.ScanKeyRange(keys[t], keys[t], &overflow_hits);
      for (const Point& p : overflow_hits) {
        if (p.x == q.x && p.y == q.y) {
          out[qi] = p;
          hit[qi] = 1;
          break;
        }
      }
    }
  }
}

void RsmiIndex::PointQueryBatch(std::span<const Point> qs,
                                std::span<uint8_t> hit, std::span<Point> out,
                                const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  if (root_ == nullptr) {
    std::fill(hit.begin(), hit.end(), 0);
    return;
  }
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    // Level-synchronous descent: queries that sit at the same node share
    // one routing GEMM per level, regrouping by routed child each round.
    struct Group {
      const Node* node;
      std::vector<size_t> q;  // Global query indices at this node.
    };
    std::vector<Group> frontier(1);
    frontier[0].node = root_.get();
    frontier[0].q.resize(end - begin);
    std::iota(frontier[0].q.begin(), frontier[0].q.end(), begin);
    std::vector<double> keys;
    std::vector<double> ranks;
    while (!frontier.empty()) {
      std::vector<Group> next;
      std::unordered_map<const Node*, size_t> slot;
      for (const Group& g : frontier) {
        keys.resize(g.q.size());
        for (size_t t = 0; t < g.q.size(); ++t) {
          keys[t] = NodeKey(*g.node, qs[g.q[t]]);
        }
        if (g.node->is_leaf) {
          AnswerLeafBatch(*g.node, g.q, keys, qs, hit, out);
          continue;
        }
        ranks.assign(g.q.size(), 0.0);  // Untrained models route to 0.
        if (g.node->model.trained()) {
          g.node->model.PredictRanks(keys.data(), keys.size(), ranks.data());
        }
        for (size_t t = 0; t < g.q.size(); ++t) {
          const Node* child =
              g.node->children[RouteChildFromRank(*g.node, ranks[t])].get();
          const auto [it, inserted] = slot.try_emplace(child, next.size());
          if (inserted) next.push_back({child, {}});
          next[it->second].q.push_back(g.q[t]);
        }
      }
      frontier = std::move(next);
    }
  });
}

void RsmiIndex::MergeLeafOverflow(Node* leaf) {
  std::vector<Point> merged = leaf->pts;
  if (!leaf->tombstones.empty()) {
    merged.erase(std::remove_if(merged.begin(), merged.end(),
                                [&](const Point& p) {
                                  return leaf->tombstones.count(p.id) > 0;
                                }),
                 merged.end());
    leaf->tombstones.clear();
  }
  for (const Block& b : leaf->overflow.blocks()) {
    merged.insert(merged.end(), b.points.begin(), b.points.end());
  }
  leaf->overflow = PagedList(config_.block_capacity);
  std::vector<double> keys(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    keys[i] = NodeKey(*leaf, merged[i]);
  }
  std::vector<size_t> order(merged.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return merged[a].id < merged[b].id;
  });
  std::vector<Point> sorted_pts(merged.size());
  std::vector<double> sorted_keys(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    sorted_pts[i] = merged[order[i]];
    sorted_keys[i] = keys[order[i]];
  }
  leaf->pts = std::move(sorted_pts);
  leaf->keys = std::move(sorted_keys);
  if (!leaf->keys.empty()) {
    // Local model rebuild — the per-model retraining ELSI accelerates.
    leaf->model = trainer_->TrainModel(
        leaf->pts, leaf->keys,
        [this, leaf](const Point& p) { return NodeKey(*leaf, p); });
  }
  ++leaf_merges_;
}

void RsmiIndex::Insert(const Point& p) {
  if (root_ == nullptr) {
    Build({p});
    return;
  }
  Node* leaf = DescendToLeaf(p);
  leaf->overflow.Insert(p, NodeKey(*leaf, p));
  ++size_;
  const size_t threshold = std::max(
      config_.block_capacity,
      static_cast<size_t>(config_.merge_fraction * leaf->pts.size()));
  if (leaf->overflow.size() > threshold) MergeLeafOverflow(leaf);
}

bool RsmiIndex::Remove(const Point& p) {
  if (root_ == nullptr) return false;
  Node* leaf = DescendToLeaf(p);
  const double key = NodeKey(*leaf, p);
  if (leaf->overflow.Erase(p.id, key)) {
    --size_;
    return true;
  }
  const auto range = std::equal_range(leaf->keys.begin(), leaf->keys.end(),
                                      key);
  for (auto it = range.first; it != range.second; ++it) {
    const size_t i = static_cast<size_t>(it - leaf->keys.begin());
    if (leaf->pts[i].id == p.id && leaf->pts[i].x == p.x &&
        leaf->pts[i].y == p.y && leaf->tombstones.count(p.id) == 0) {
      leaf->tombstones.insert(p.id);
      --size_;
      return true;
    }
  }
  return false;
}

void RsmiIndex::WindowQueryNode(const Node* node, const Rect& w,
                                std::vector<Point>* out) const {
  // Keys of the window's corners under this node's mapping.
  const Point corners[4] = {{w.lo_x, w.lo_y, 0},
                            {w.lo_x, w.hi_y, 0},
                            {w.hi_x, w.lo_y, 0},
                            {w.hi_x, w.hi_y, 0}};
  double klo = std::numeric_limits<double>::infinity();
  double khi = -std::numeric_limits<double>::infinity();
  for (const Point& c : corners) {
    const double k = NodeKey(*node, c);
    klo = std::min(klo, k);
    khi = std::max(khi, k);
  }
  if (node->is_leaf) {
    if (!node->keys.empty() && node->model.trained()) {
      const auto [lo1, hi1] = node->model.SearchRange(klo, node->keys.size());
      const auto [lo2, hi2] = node->model.SearchRange(khi, node->keys.size());
      const size_t lo = std::min(lo1, lo2);
      const size_t hi = std::min(std::max(hi1, hi2), node->keys.size() - 1);
      if (node->tombstones.empty()) {
        // Common case: vector containment over the contiguous leaf run.
        knn::AppendContained(node->pts.data() + lo, hi - lo + 1, w, out);
      } else {
        for (size_t i = lo; i <= hi; ++i) {
          const Point& p = node->pts[i];
          if (w.Contains(p) && node->tombstones.count(p.id) == 0) {
            out->push_back(p);
          }
        }
      }
    }
    // Overflow pages are small; scan them fully for inserted points.
    for (const Block& b : node->overflow.blocks()) {
      if (!b.mbr.Intersects(w)) continue;
      knn::AppendContained(b.points.data(), b.points.size(), w, out);
    }
    return;
  }
  // Route the corner keys and visit the predicted child range with slack.
  size_t cmin = node->children.size() - 1;
  size_t cmax = 0;
  for (const Point& c : corners) {
    const size_t child = RouteChild(*node, NodeKey(*node, c));
    cmin = std::min(cmin, child);
    cmax = std::max(cmax, child);
  }
  const int slack = config_.window_slack;
  const size_t from =
      cmin > static_cast<size_t>(slack) ? cmin - slack : 0;
  const size_t to =
      std::min(node->children.size() - 1, cmax + static_cast<size_t>(slack));
  for (size_t c = from; c <= to; ++c) {
    if (node->children[c] != nullptr) {
      WindowQueryNode(node->children[c].get(), w, out);
    }
  }
}

std::vector<Point> RsmiIndex::WindowQuery(const Rect& w) const {
  obs::QueryScope flight("RSMI", obs::QueryKind::kWindow);
  std::vector<Point> result;
  if (w.empty() || root_ == nullptr || size_ == 0) return result;
  WindowQueryNode(root_.get(), w, &result);
  SortCanonical(&result);
  return result;
}

std::vector<Point> RsmiIndex::KnnQuery(const Point& q, size_t k) const {
  obs::QueryScope flight("RSMI", obs::QueryKind::kKnn);
  std::vector<Point> result;
  if (root_ == nullptr || size_ == 0 || k == 0) return result;
  const double diag = std::hypot(domain_.hi_x - domain_.lo_x,
                                 domain_.hi_y - domain_.lo_y);
  double r = config_.knn_radius_factor * diag *
             std::sqrt(static_cast<double>(k) /
                       std::max<size_t>(1, size_));
  r = std::max(r, diag * 1e-6);
  for (;;) {
    const Rect w = Rect::Of(q.x - r, q.y - r, q.x + r, q.y + r);
    std::vector<Point> candidates = WindowQuery(w);
    if (candidates.size() >= k || r > diag) {
      const double worst = knn::SelectNearest(q, k, &candidates);
      if (r > diag || (candidates.size() == k && worst <= r * r)) {
        return candidates;
      }
    }
    r *= 2.0;
  }
}

void RsmiIndex::CollectNode(const Node* node, std::vector<Point>* out) const {
  if (node == nullptr) return;
  if (node->is_leaf) {
    for (const Point& p : node->pts) {
      if (node->tombstones.count(p.id) == 0) out->push_back(p);
    }
    for (const Block& b : node->overflow.blocks()) {
      out->insert(out->end(), b.points.begin(), b.points.end());
    }
    return;
  }
  for (const auto& c : node->children) CollectNode(c.get(), out);
}

std::vector<Point> RsmiIndex::CollectAll() const {
  std::vector<Point> all;
  all.reserve(size_);
  CollectNode(root_.get(), &all);
  return all;
}

int RsmiIndex::Depth() const {
  std::function<int(const Node*)> rec = [&](const Node* node) -> int {
    if (node == nullptr) return 0;
    if (node->is_leaf) return 1;
    int d = 0;
    for (const auto& c : node->children) d = std::max(d, rec(c.get()));
    return d + 1;
  };
  return rec(root_.get());
}

size_t RsmiIndex::node_count() const {
  std::function<size_t(const Node*)> rec = [&](const Node* node) -> size_t {
    if (node == nullptr) return 0;
    size_t count = 1;
    if (!node->is_leaf) {
      for (const auto& c : node->children) count += rec(c.get());
    }
    return count;
  };
  return rec(root_.get());
}

void RsmiIndex::SaveNode(const Node& node, persist::Writer& w) const {
  w.Bool(node.is_leaf);
  persist::PutRect(w, node.bounds);
  w.F64Vec(node.qx);
  w.F64Vec(node.qy);
  node.model.SavePersist(w);
  if (node.is_leaf) {
    persist::PutPoints(w, node.pts);
    w.F64Vec(node.keys);
    node.overflow.SavePersist(w);
    std::vector<uint64_t> dead(node.tombstones.begin(), node.tombstones.end());
    std::sort(dead.begin(), dead.end());
    w.U64Vec(dead);
    return;
  }
  w.U32(static_cast<uint32_t>(node.children.size()));
  for (const auto& c : node.children) {
    w.Bool(c != nullptr);
    if (c != nullptr) SaveNode(*c, w);
  }
}

std::unique_ptr<RsmiIndex::Node> RsmiIndex::LoadNode(persist::Reader& r,
                                                     int depth) const {
  if (depth > config_.max_depth + 4) {
    r.Fail();
    return nullptr;
  }
  auto node = std::make_unique<Node>(config_.block_capacity);
  node->is_leaf = r.Bool();
  node->bounds = persist::GetRect(r);
  if (!r.F64Vec(&node->qx) || !r.F64Vec(&node->qy)) return nullptr;
  if (!node->model.LoadPersist(r)) return nullptr;
  if (node->is_leaf) {
    if (!persist::GetPoints(r, &node->pts)) return nullptr;
    if (!r.F64Vec(&node->keys)) return nullptr;
    if (node->keys.size() != node->pts.size() ||
        !std::is_sorted(node->keys.begin(), node->keys.end())) {
      r.Fail();
      return nullptr;
    }
    if (!node->overflow.LoadPersist(r)) return nullptr;
    std::vector<uint64_t> dead;
    if (!r.U64Vec(&dead)) return nullptr;
    node->tombstones.insert(dead.begin(), dead.end());
    return node;
  }
  const uint32_t nchildren = r.U32();
  if (nchildren > r.remaining()) {
    r.Fail();
    return nullptr;
  }
  node->children.reserve(nchildren);
  for (uint32_t i = 0; i < nchildren; ++i) {
    if (r.Bool()) {
      std::unique_ptr<Node> child = LoadNode(r, depth + 1);
      if (child == nullptr) return nullptr;
      node->children.push_back(std::move(child));
    } else {
      node->children.push_back(nullptr);
    }
  }
  return r.ok() ? std::move(node) : nullptr;
}

bool RsmiIndex::SaveState(persist::Writer& w) const {
  w.U64(config_.leaf_capacity);
  w.U64(config_.fanout);
  w.U64(config_.quantiles);
  w.I32(config_.hilbert_order);
  w.F64(config_.merge_fraction);
  w.U64(config_.block_capacity);
  w.I32(config_.window_slack);
  w.F64(config_.knn_radius_factor);
  w.I32(config_.max_depth);
  w.U64(size_);
  w.U64(leaf_merges_);
  persist::PutRect(w, domain_);
  w.Bool(root_ != nullptr);
  if (root_ != nullptr) SaveNode(*root_, w);
  return true;
}

bool RsmiIndex::LoadState(persist::Reader& r) {
  config_.leaf_capacity = r.U64();
  config_.fanout = r.U64();
  config_.quantiles = r.U64();
  config_.hilbert_order = r.I32();
  config_.merge_fraction = r.F64();
  config_.block_capacity = r.U64();
  config_.window_slack = r.I32();
  config_.knn_radius_factor = r.F64();
  config_.max_depth = r.I32();
  if (config_.leaf_capacity == 0 || config_.fanout == 0 ||
      config_.block_capacity < 2 || config_.max_depth <= 0 ||
      config_.max_depth > 64) {
    return r.Fail();
  }
  size_ = r.U64();
  leaf_merges_ = r.U64();
  domain_ = persist::GetRect(r);
  const bool has_root = r.Bool();
  if (!r.ok()) return false;
  root_.reset();
  if (has_root) {
    root_ = LoadNode(r, 0);
    if (root_ == nullptr) return false;
  }
  return r.ok();
}

}  // namespace elsi
