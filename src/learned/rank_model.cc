#include "learned/rank_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {

double RankModel::Normalize(double key) const {
  if (key_hi_ <= key_lo_) return 0.0;
  return (key - key_lo_) / (key_hi_ - key_lo_);
}

void RankModel::Train(const std::vector<double>& sorted_train_keys,
                      double key_lo, double key_hi,
                      const RankModelConfig& config) {
  ELSI_CHECK(!sorted_train_keys.empty());
  ELSI_DCHECK(std::is_sorted(sorted_train_keys.begin(),
                             sorted_train_keys.end()));
  key_lo_ = key_lo;
  key_hi_ = key_hi;
  if (config.backend == RankModelBackend::kPla) {
    auto pla = std::make_shared<PiecewiseLinearModel>();
    pla->Fit(sorted_train_keys, config.pla_epsilon);
    pla_ = std::move(pla);
    net_.reset();
    err_l_ = 0.0;
    err_u_ = 0.0;
    return;
  }
  const size_t ns = sorted_train_keys.size();
  Matrix x(ns, 1), y(ns, 1);
  for (size_t i = 0; i < ns; ++i) {
    x.At(i, 0) = Normalize(sorted_train_keys[i]);
    y.At(i, 0) = ns > 1 ? static_cast<double>(i) / (ns - 1) : 0.0;
  }
  auto net = std::make_shared<Ffn>(1, config.hidden, 1, config.seed);
  FfnTrainOptions opts;
  opts.learning_rate = config.learning_rate;
  opts.epochs = config.epochs;
  opts.batch_size = config.batch_size;
  opts.shuffle_seed = config.seed ^ 0x5eedULL;
  net->Train(x, y, opts);
  net_ = std::move(net);
  pla_.reset();
  err_l_ = 0.0;
  err_u_ = 0.0;
}

void RankModel::AdoptPretrained(const Ffn& net, double key_lo, double key_hi) {
  auto copy = std::make_shared<Ffn>(net);
  net_ = std::move(copy);
  pla_.reset();
  key_lo_ = key_lo;
  key_hi_ = key_hi;
  err_l_ = 0.0;
  err_u_ = 0.0;
}

double RankModel::PredictRank(double key) const {
  ELSI_DCHECK(trained());
  if (pla_ != nullptr) {
    const double denom = pla_->n() > 1 ? static_cast<double>(pla_->n() - 1)
                                       : 1.0;
    return std::clamp(pla_->PredictPosition(key) / denom, 0.0, 1.0);
  }
  const double r = net_->PredictScalar(Normalize(key));
  return std::clamp(r, 0.0, 1.0);
}

void RankModel::PredictRanks(const double* keys, size_t n,
                             double* ranks) const {
  ELSI_DCHECK(trained());
  if (n == 0) return;
  if (pla_ != nullptr) {
    for (size_t i = 0; i < n; ++i) ranks[i] = PredictRank(keys[i]);
    return;
  }
  // Allocation-free batched inference: normalised keys go straight through
  // ForwardBatchInto on per-thread scratch. Bit-identical to the Matrix
  // ForwardBatch path (same kernels, same order).
  static thread_local InferenceScratch scratch;
  static thread_local simd::AlignedVector norm;
  static thread_local simd::AlignedVector raw;
  if (norm.size() < n) norm.resize(n);
  if (raw.size() < n) raw.resize(n);
  for (size_t i = 0; i < n; ++i) norm[i] = Normalize(keys[i]);
  net_->ForwardBatchInto(norm.data(), n, &scratch, raw.data());
  for (size_t i = 0; i < n; ++i) {
    ranks[i] = std::clamp(raw[i], 0.0, 1.0);
  }
}

void RankModel::ComputeErrorBounds(
    const std::vector<double>& sorted_full_keys) {
  ELSI_CHECK(trained());
  const size_t n = sorted_full_keys.size();
  if (n == 0) return;
  double max_over = 0.0;   // pred_pos - i
  double max_under = 0.0;  // i - pred_pos
  for (size_t i = 0; i < n; ++i) {
    const double pred_pos = PredictRank(sorted_full_keys[i]) * (n - 1);
    const double diff = pred_pos - static_cast<double>(i);
    max_over = std::max(max_over, diff);
    max_under = std::max(max_under, -diff);
  }
  err_l_ = std::ceil(max_over);
  err_u_ = std::ceil(max_under);
}

std::pair<size_t, size_t> RankModel::SearchRange(double key, size_t n) const {
  if (n == 0) return {0, 0};
  return SearchRangeFromRank(PredictRank(key), n);
}

std::pair<size_t, size_t> RankModel::SearchRangeFromRank(double rank,
                                                         size_t n) const {
  if (n == 0) return {0, 0};
  const double pred_pos = rank * (n - 1);
  const double lo = std::floor(pred_pos - err_l_);
  const double hi = std::ceil(pred_pos + err_u_);
  const size_t lo_idx = lo <= 0.0 ? 0 : static_cast<size_t>(lo);
  const size_t hi_idx =
      hi >= static_cast<double>(n - 1) ? n - 1 : static_cast<size_t>(hi);
  return {std::min(lo_idx, n - 1), hi_idx};
}

void RankModel::SavePersist(persist::Writer& w) const {
  // Backend tag: 0 = untrained, 1 = FFN, 2 = PLA.
  uint8_t tag = 0;
  if (pla_ != nullptr) {
    tag = 2;
  } else if (net_ != nullptr) {
    tag = 1;
  }
  w.U8(tag);
  w.F64(key_lo_);
  w.F64(key_hi_);
  w.F64(err_l_);
  w.F64(err_u_);
  if (tag == 1) {
    std::ostringstream blob;
    ELSI_CHECK(net_->Save(blob));
    w.Str(blob.str());
  } else if (tag == 2) {
    pla_->SavePersist(w);
  }
}

bool RankModel::LoadPersist(persist::Reader& r) {
  const uint8_t tag = r.U8();
  key_lo_ = r.F64();
  key_hi_ = r.F64();
  err_l_ = r.F64();
  err_u_ = r.F64();
  net_.reset();
  pla_.reset();
  if (tag == 1) {
    std::istringstream blob(r.Str());
    if (!r.ok()) return false;
    std::optional<Ffn> net = Ffn::Load(blob);
    if (!net.has_value()) return r.Fail();
    net_ = std::make_shared<const Ffn>(std::move(*net));
  } else if (tag == 2) {
    auto pla = std::make_shared<PiecewiseLinearModel>();
    if (!pla->LoadPersist(r)) return false;
    pla_ = std::move(pla);
  } else if (tag != 0) {
    return r.Fail();
  }
  return r.ok();
}

RankModel DirectTrainer::TrainModel(
    const std::vector<Point>& sorted_pts,
    const std::vector<double>& sorted_keys,
    const std::function<double(const Point&)>& key_fn) {
  (void)sorted_pts;
  (void)key_fn;
  ELSI_CHECK(!sorted_keys.empty());
  RankModel model;
  model.Train(sorted_keys, sorted_keys.front(), sorted_keys.back(), config_);
  model.ComputeErrorBounds(sorted_keys);
  return model;
}

}  // namespace elsi
