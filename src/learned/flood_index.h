#ifndef ELSI_LEARNED_FLOOD_INDEX_H_
#define ELSI_LEARNED_FLOOD_INDEX_H_

#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "learned/rank_model.h"
#include "storage/block_store.h"

namespace elsi {

/// A Flood-style query-aware learned index (Nathan et al., SIGMOD 2020) —
/// the paper's second named future-work target. The 2-D space is cut into
/// equal-count columns over x (the (d-1)-dimensional grid of Flood with
/// d = 2); within each column points are sorted by y and indexed by a rank
/// model. Every per-column model trains through a ModelTrainer, so ELSI
/// accelerates Flood builds exactly as it does the paper's four base
/// indices. Queries are exact.
///
/// The query-aware part: TuneColumnCount() picks the column count by
/// evaluating candidate grids against a sample window workload, trading the
/// number of visited columns (x-overlap) against per-column scan lengths
/// (y-selectivity) — the essence of Flood's workload-driven layout.
struct FloodIndexConfig {
  /// Columns over x. 0 = sqrt(n / block) heuristic at build time.
  size_t columns = 0;
  size_t block_capacity = kDefaultBlockCapacity;
  double knn_radius_factor = 2.0;
};

class FloodIndex : public SpatialIndex {
 public:
  using Config = FloodIndexConfig;

  explicit FloodIndex(std::shared_ptr<ModelTrainer> trainer,
                      const Config& config = {});

  std::string Name() const override { return "Flood"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override;
  std::vector<Point> CollectAll() const override;
  int Depth() const override { return 1; }

  size_t column_count() const { return columns_.size(); }

  /// Workload-driven layout search: builds candidate grids over a sample of
  /// `data` and returns the column count with the lowest measured total
  /// window-query time on `workload`. Candidates are powers of two around
  /// the sqrt(n/B) heuristic.
  static size_t TuneColumnCount(const std::vector<Point>& data,
                                const std::vector<Rect>& workload,
                                std::shared_ptr<ModelTrainer> trainer,
                                const Config& config = {},
                                size_t sample_limit = 20000);

 private:
  struct Column {
    std::vector<Point> pts;   // Sorted by y.
    std::vector<double> ys;   // Parallel, ascending.
    RankModel model;
    PagedList overflow;

    explicit Column(size_t block_capacity) : overflow(block_capacity) {}
  };

  size_t ColumnOf(double x) const;
  /// Appends base+overflow points of column `c` with y in [lo, hi] inside
  /// `w` to `out`.
  void ScanColumn(const Column& c, double y_lo, double y_hi, const Rect& w,
                  std::vector<Point>* out) const;

  std::shared_ptr<ModelTrainer> trainer_;
  Config config_;
  size_t size_ = 0;
  Rect domain_;
  std::vector<double> column_x_;  // columns+1 boundaries (outer infinite).
  std::vector<Column> columns_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_FLOOD_INDEX_H_
