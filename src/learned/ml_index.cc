#include "learned/ml_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/knn.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "ml/kmeans.h"
#include "obs/flight_recorder.h"
#include "obs/model_health.h"
#include "persist/io.h"

namespace elsi {

MlIndex::MlIndex(std::shared_ptr<ModelTrainer> trainer, const Config& config)
    : trainer_(std::move(trainer)), config_(config) {
  ELSI_CHECK(trainer_ != nullptr);
  ELSI_CHECK_GT(config.num_references, 0u);
}

size_t MlIndex::NearestReference(const Point& p, double* dist) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < references_.size(); ++j) {
    const double d = SquaredDistance(p, references_[j]);
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  if (dist != nullptr) *dist = std::sqrt(best_d);
  return best;
}

double MlIndex::KeyOf(const Point& p) const {
  ELSI_DCHECK(!references_.empty());
  double d = 0.0;
  const size_t j = NearestReference(p, &d);
  return static_cast<double>(j) * separation_ + d;
}

void MlIndex::Build(const std::vector<Point>& data) {
  if (data.empty()) {
    references_ = {Point{0.5, 0.5, 0}};
    partition_radius_.assign(1, 0.0);
    separation_ = 4.0;
    array_.Build({}, {}, [this](const Point& p) { return KeyOf(p); },
                 trainer_.get(), config_.array);
    return;
  }
  // Reference points: k-means over a bounded sample of the data.
  std::vector<Point> sample;
  if (data.size() <= config_.kmeans_sample) {
    sample = data;
  } else {
    Rng rng(config_.seed);
    sample.reserve(config_.kmeans_sample);
    for (size_t i = 0; i < config_.kmeans_sample; ++i) {
      sample.push_back(data[rng.NextBelow(data.size())]);
    }
  }
  KMeansOptions km;
  km.max_iterations = config_.kmeans_iterations;
  km.seed = config_.seed;
  references_ = KMeans(sample, config_.num_references, km).centroids;

  const Rect domain = BoundingRect(data);
  separation_ = 1.01 * std::hypot(domain.hi_x - domain.lo_x,
                                  domain.hi_y - domain.lo_y) +
                1e-9;

  // The iDistance mapping is the dominant O(n * R) data-preparation cost;
  // chunk it over the pool with per-lane radius accumulators merged by max
  // afterwards (max is order-independent, so lane count cannot change the
  // result).
  partition_radius_.assign(references_.size(), 0.0);
  std::vector<double> keys(data.size());
  ThreadPool* pool = config_.array.pool != nullptr ? config_.array.pool
                                                   : &ThreadPool::Global();
  const size_t lanes =
      std::max<size_t>(1, std::min(pool->thread_count(), data.size()));
  std::vector<std::vector<double>> lane_radius(
      lanes, std::vector<double>(references_.size(), 0.0));
  {
    TaskGroup group(pool);
    for (size_t lane = 0; lane < lanes; ++lane) {
      const size_t lo = lane * data.size() / lanes;
      const size_t hi = (lane + 1) * data.size() / lanes;
      group.Run([this, &data, &keys, &lane_radius, lane, lo, hi] {
        std::vector<double>& radius = lane_radius[lane];
        for (size_t i = lo; i < hi; ++i) {
          double d = 0.0;
          const size_t j = NearestReference(data[i], &d);
          radius[j] = std::max(radius[j], d);
          keys[i] = static_cast<double>(j) * separation_ + d;
        }
      });
    }
    group.Wait();
  }
  for (const std::vector<double>& radius : lane_radius) {
    for (size_t j = 0; j < radius.size(); ++j) {
      partition_radius_[j] = std::max(partition_radius_[j], radius[j]);
    }
  }
  array_.Build(data, std::move(keys),
               [this](const Point& p) { return KeyOf(p); }, trainer_.get(),
               config_.array);
  obs::ModelHealthMonitor::Get().OnBuild("ML");
}

void MlIndex::Insert(const Point& p) {
  if (references_.empty()) {
    Build({p});
    return;
  }
  double d = 0.0;
  const size_t j = NearestReference(p, &d);
  partition_radius_[j] = std::max(partition_radius_[j], d);
  array_.Insert(p, static_cast<double>(j) * separation_ + d);
}

bool MlIndex::Remove(const Point& p) {
  if (references_.empty()) return false;
  return array_.Remove(p, KeyOf(p));
}

bool MlIndex::PointQuery(const Point& q, Point* out) const {
  obs::QueryScope flight("ML", obs::QueryKind::kPoint);
  if (references_.empty()) return false;
  return array_.PointQuery(q, KeyOf(q), out);
}

void MlIndex::PointQueryBatch(std::span<const Point> qs,
                              std::span<uint8_t> hit, std::span<Point> out,
                              const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  if (references_.empty()) {
    std::fill(hit.begin(), hit.end(), 0);
    return;
  }
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    const size_t len = end - begin;
    std::vector<double> keys(len);
    for (size_t i = 0; i < len; ++i) keys[i] = KeyOf(qs[begin + i]);
    array_.PointQueryBatch(qs.data() + begin, keys.data(), len,
                           hit.data() + begin, out.data() + begin);
  });
}

void MlIndex::RingScan(const Point& center, double r, const Rect& w,
                       std::vector<Point>* out) const {
  // Every point within distance r of `center` satisfies, for its own
  // nearest reference o_j: |dist(p, o_j) - dist(center, o_j)| <= r.
  for (size_t j = 0; j < references_.size(); ++j) {
    const double dc = Distance(center, references_[j]);
    const double lo_d = std::max(0.0, dc - r);
    if (lo_d > partition_radius_[j]) continue;
    const double hi_d = std::min(partition_radius_[j], dc + r);
    const double base = static_cast<double>(j) * separation_;
    std::vector<Point> ring;
    array_.ScanKeyRangeInRect(base + lo_d, base + hi_d, w, &ring);
    knn::FilterWithinRadius(center, r * r, &ring);
    out->insert(out->end(), ring.begin(), ring.end());
  }
}

std::vector<Point> MlIndex::WindowQuery(const Rect& w) const {
  obs::QueryScope flight("ML", obs::QueryKind::kWindow);
  std::vector<Point> result;
  if (w.empty() || references_.empty() || array_.size() == 0) return result;
  // Circumscribe the window; ring-scan each partition and filter exactly.
  const Point center = w.Center();
  const double r = std::hypot(w.hi_x - w.lo_x, w.hi_y - w.lo_y) / 2.0;
  RingScan(center, r, w, &result);
  knn::FilterContained(w, &result);
  SortCanonical(&result);
  return result;
}

std::vector<Point> MlIndex::KnnQuery(const Point& q, size_t k) const {
  obs::QueryScope flight("ML", obs::QueryKind::kKnn);
  std::vector<Point> result;
  if (references_.empty() || array_.size() == 0 || k == 0) return result;
  const double n = static_cast<double>(array_.size());
  double max_radius = 0.0;
  for (size_t j = 0; j < references_.size(); ++j) {
    max_radius = std::max(max_radius,
                          Distance(q, references_[j]) + partition_radius_[j]);
  }
  double r = std::max(1e-9, 2.0 * max_radius *
                                std::sqrt(static_cast<double>(k) / n));
  const Rect everywhere =
      Rect::Of(-std::numeric_limits<double>::infinity(),
               -std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity());
  for (;;) {
    std::vector<Point> candidates;
    RingScan(q, r, everywhere, &candidates);
    if (candidates.size() >= k || r >= max_radius) {
      const double worst = knn::SelectNearest(q, k, &candidates);
      // Candidates within r are certified complete; accept when the kth
      // neighbour is inside the ring or nothing more can exist.
      if (r >= max_radius || (candidates.size() == k && worst <= r * r)) {
        return candidates;
      }
    }
    r *= 2.0;
  }
}

bool MlIndex::SaveState(persist::Writer& w) const {
  w.U64(config_.num_references);
  w.U64(config_.seed);
  w.U64(config_.kmeans_sample);
  w.I32(config_.kmeans_iterations);
  w.U64(config_.array.leaf_target);
  w.U64(config_.array.block_capacity);
  w.Bool(!references_.empty());
  if (references_.empty()) return true;
  persist::PutPoints(w, references_);
  w.F64Vec(partition_radius_);
  w.F64(separation_);
  array_.SavePersist(w);
  return true;
}

bool MlIndex::LoadState(persist::Reader& r) {
  config_.num_references = r.U64();
  config_.seed = r.U64();
  config_.kmeans_sample = r.U64();
  config_.kmeans_iterations = r.I32();
  config_.array.leaf_target = r.U64();
  config_.array.block_capacity = r.U64();
  if (config_.num_references == 0) return r.Fail();
  const bool built = r.Bool();
  if (!r.ok()) return false;
  if (!built) {
    references_.clear();
    partition_radius_.clear();
    return true;
  }
  if (!persist::GetPoints(r, &references_)) return false;
  if (!r.F64Vec(&partition_radius_)) return false;
  if (references_.empty() ||
      partition_radius_.size() != references_.size()) {
    return r.Fail();
  }
  separation_ = r.F64();
  return array_.LoadPersist(
      r, [this](const Point& p) { return KeyOf(p); }, config_.array.pool);
}

}  // namespace elsi
