#include "learned/zm_index.h"

#include <algorithm>
#include <cmath>

#include "common/knn.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/model_health.h"
#include "persist/io.h"

namespace elsi {

ZmIndex::ZmIndex(std::shared_ptr<ModelTrainer> trainer, const Config& config)
    : trainer_(std::move(trainer)), config_(config) {
  ELSI_CHECK(trainer_ != nullptr);
  ELSI_CHECK(config.bits_per_dim >= 8 && config.bits_per_dim <= 26)
      << "bits per dim must keep 2b <= 52 for exact double keys";
  shift_ = 32 - config.bits_per_dim;
}

uint64_t ZmIndex::CodeOf(const Point& p) const {
  ELSI_DCHECK(quantizer_ != nullptr);
  return MortonEncode(quantizer_->QuantizeX(p.x) >> shift_,
                      quantizer_->QuantizeY(p.y) >> shift_);
}

double ZmIndex::KeyOf(const Point& p) const {
  return static_cast<double>(CodeOf(p));
}

void ZmIndex::Build(const std::vector<Point>& data) {
  domain_ = data.empty() ? Rect::Of(0, 0, 1, 1) : BoundingRect(data);
  if (domain_.Area() <= 0.0) {
    // Degenerate domains (collinear points) still need positive extent.
    domain_.Extend(Point{domain_.lo_x - 0.5, domain_.lo_y - 0.5, 0});
    domain_.Extend(Point{domain_.hi_x + 0.5, domain_.hi_y + 0.5, 0});
  }
  quantizer_ = std::make_unique<GridQuantizer>(domain_);
  std::vector<double> keys(data.size());
  // Z-codes are independent per point: map them on the pool (the paper's
  // "data preparation" cost term).
  ThreadPool* pool = config_.array.pool != nullptr ? config_.array.pool
                                                   : &ThreadPool::Global();
  pool->ParallelFor(0, data.size(),
                    [&](size_t i) { keys[i] = KeyOf(data[i]); });
  array_.Build(
      data, std::move(keys), [this](const Point& p) { return KeyOf(p); },
      trainer_.get(), config_.array);
  obs::ModelHealthMonitor::Get().OnBuild("ZM");
}

void ZmIndex::Insert(const Point& p) {
  if (quantizer_ == nullptr) {
    Build({p});
    return;
  }
  array_.Insert(p, KeyOf(p));
}

bool ZmIndex::Remove(const Point& p) {
  if (quantizer_ == nullptr) return false;
  return array_.Remove(p, KeyOf(p));
}

bool ZmIndex::PointQuery(const Point& q, Point* out) const {
  obs::QueryScope flight("ZM", obs::QueryKind::kPoint);
  if (quantizer_ == nullptr) return false;
  return array_.PointQuery(q, KeyOf(q), out);
}

std::vector<Point> ZmIndex::WindowQuery(const Rect& w) const {
  obs::QueryScope flight("ZM", obs::QueryKind::kWindow);
  std::vector<Point> result;
  if (w.empty() || quantizer_ == nullptr) return result;
  const Point lo{std::max(w.lo_x, domain_.lo_x), std::max(w.lo_y, domain_.lo_y),
                 0};
  const Point hi{std::min(w.hi_x, domain_.hi_x), std::min(w.hi_y, domain_.hi_y),
                 0};
  if (lo.x > hi.x || lo.y > hi.y) {
    // Window entirely outside the build domain can still hit clamped
    // overflow inserts; scan the full key range for those.
    array_.ScanKeyRangeInRect(0.0, KeyOf(Point{domain_.hi_x, domain_.hi_y, 0}),
                              w, &result);
    SortCanonical(&result);
    return result;
  }
  const uint64_t zmin = CodeOf(lo);
  const uint64_t zmax = CodeOf(hi);
  return WindowScanFrom(w, zmin, zmax,
                        array_.LowerBound(static_cast<double>(zmin)));
}

std::vector<Point> ZmIndex::WindowScanFrom(const Rect& w, uint64_t zmin,
                                           uint64_t zmax,
                                           size_t start) const {
  std::vector<Point> result;
  // Predict-and-scan over [z(lo), z(hi)] with BIGMIN jumps: out-of-box runs
  // are skipped by predicting the position of the next in-box Z-code.
  array_.VisitBaseRangeFrom(
      start, static_cast<double>(zmax),
      [&](size_t pos, const Point& p) -> size_t {
        const uint64_t code = CodeOf(p);
        if (ZCodeInBox(code, zmin, zmax)) {
          if (w.Contains(p)) result.push_back(p);
          return pos + 1;
        }
        if (!config_.use_bigmin) return pos + 1;
        if (code >= zmax) return pos + array_.base_size();  // Past the box.
        const uint64_t next = ZBigmin(code, zmin, zmax);
        const size_t jump = array_.LowerBound(static_cast<double>(next));
        return jump > pos ? jump : pos + 1;
      });
  // Merge inserted points from the overflow pages covering the Z-range.
  array_.ScanOverflowInRect(static_cast<double>(zmin),
                            static_cast<double>(zmax), w, &result);
  SortCanonical(&result);
  return result;
}

void ZmIndex::PointQueryBatch(std::span<const Point> qs,
                              std::span<uint8_t> hit, std::span<Point> out,
                              const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  if (quantizer_ == nullptr) {
    std::fill(hit.begin(), hit.end(), 0);
    return;
  }
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    const size_t len = end - begin;
    std::vector<double> keys(len);
    for (size_t i = 0; i < len; ++i) keys[i] = KeyOf(qs[begin + i]);
    array_.PointQueryBatch(qs.data() + begin, keys.data(), len,
                           hit.data() + begin, out.data() + begin);
  });
}

void ZmIndex::WindowQueryBatch(std::span<const Rect> ws,
                               std::span<std::vector<Point>> out,
                               const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), ws.size());
  ForEachQueryChunk(ws.size(), opts, [&](size_t begin, size_t end) {
    const size_t len = end - begin;
    // Precompute each window's Z-range; the start positions of every
    // regular window in the chunk come from one LowerBoundBatch (degenerate
    // windows keep the scalar path).
    std::vector<uint64_t> zmin(len), zmax(len);
    std::vector<double> zmin_keys;
    std::vector<size_t> regular;
    zmin_keys.reserve(len);
    regular.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      const Rect& w = ws[begin + i];
      if (w.empty() || quantizer_ == nullptr) {
        out[begin + i] = WindowQuery(w);
        continue;
      }
      const Point lo{std::max(w.lo_x, domain_.lo_x),
                     std::max(w.lo_y, domain_.lo_y), 0};
      const Point hi{std::min(w.hi_x, domain_.hi_x),
                     std::min(w.hi_y, domain_.hi_y), 0};
      if (lo.x > hi.x || lo.y > hi.y) {
        out[begin + i] = WindowQuery(w);
        continue;
      }
      zmin[i] = CodeOf(lo);
      zmax[i] = CodeOf(hi);
      zmin_keys.push_back(static_cast<double>(zmin[i]));
      regular.push_back(i);
    }
    std::vector<size_t> leaf(regular.size());
    std::vector<size_t> start(regular.size());
    array_.LowerBoundBatch(zmin_keys.data(), regular.size(), leaf.data(),
                           start.data());
    for (size_t t = 0; t < regular.size(); ++t) {
      const size_t i = regular[t];
      out[begin + i] =
          WindowScanFrom(ws[begin + i], zmin[i], zmax[i], start[t]);
    }
  });
}

bool ZmIndex::SaveState(persist::Writer& w) const {
  w.I32(config_.bits_per_dim);
  w.F64(config_.knn_radius_factor);
  w.Bool(config_.use_bigmin);
  w.U64(config_.array.leaf_target);
  w.U64(config_.array.block_capacity);
  w.Bool(quantizer_ != nullptr);
  if (quantizer_ == nullptr) return true;
  persist::PutRect(w, domain_);
  array_.SavePersist(w);
  return true;
}

bool ZmIndex::LoadState(persist::Reader& r) {
  const int32_t bits = r.I32();
  if (bits < 8 || bits > 26) return r.Fail();
  config_.bits_per_dim = bits;
  shift_ = 32 - bits;
  config_.knn_radius_factor = r.F64();
  config_.use_bigmin = r.Bool();
  config_.array.leaf_target = r.U64();
  config_.array.block_capacity = r.U64();
  const bool built = r.Bool();
  if (!r.ok()) return false;
  if (!built) {
    quantizer_.reset();
    return true;
  }
  domain_ = persist::GetRect(r);
  quantizer_ = std::make_unique<GridQuantizer>(domain_);
  return array_.LoadPersist(
      r, [this](const Point& p) { return KeyOf(p); }, config_.array.pool);
}

std::vector<Point> ZmIndex::KnnQuery(const Point& q, size_t k) const {
  // Outermost-wins sampling: the internal WindowQuery probes attach their
  // scans to this scope instead of recording their own.
  obs::QueryScope flight("ZM", obs::QueryKind::kKnn);
  std::vector<Point> result;
  if (quantizer_ == nullptr || array_.size() == 0 || k == 0) return result;
  const double diag = std::hypot(domain_.hi_x - domain_.lo_x,
                                 domain_.hi_y - domain_.lo_y);
  const double n = static_cast<double>(array_.size());
  double r = config_.knn_radius_factor * diag *
             std::sqrt(static_cast<double>(k) / std::max(1.0, n));
  r = std::max(r, diag * 1e-6);
  for (;;) {
    const Rect w = Rect::Of(q.x - r, q.y - r, q.x + r, q.y + r);
    std::vector<Point> candidates = WindowQuery(w);
    if (candidates.size() >= k || r > diag) {
      const double worst = knn::SelectNearest(q, k, &candidates);
      // The square window guarantees correctness only for neighbours within
      // r; re-expand if the kth distance exceeds the window radius.
      if (r > diag || (candidates.size() == k && worst <= r * r)) {
        return candidates;
      }
    }
    r *= 2.0;
  }
}

}  // namespace elsi
