#ifndef ELSI_LEARNED_RSMI_INDEX_H_
#define ELSI_LEARNED_RSMI_INDEX_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/spatial_index.h"
#include "common/thread_pool.h"
#include "learned/rank_model.h"
#include "storage/block_store.h"

namespace elsi {

/// RSMI (Qi et al., PVLDB 2020): a recursive spatial model index. Each node
/// maps its points to rank-space Hilbert values (coordinates replaced by
/// approximate ranks from per-node quantile tables) and trains an FFN over
/// the sorted order. Internal nodes route points to children by the model's
/// *prediction* — the structure is data-dependent — and leaves answer
/// predict-and-scan point queries exactly. Window and kNN queries are
/// approximate by design (the Hilbert values of a window's corners do not
/// bound its interior), which is the recall behaviour the paper reports.
/// Inserts go to per-leaf overflow pages; a leaf locally merges and retrains
/// when its overflow grows past a fraction of its base (the "local model
/// rebuild" of Fig. 1/Fig. 16).
struct RsmiIndexConfig {
  /// Partitions with at most this many points become leaves.
  size_t leaf_capacity = 10000;
  /// Children per internal node.
  size_t fanout = 16;
  /// Per-node quantile table resolution (approximate rank space).
  size_t quantiles = 512;
  /// Hilbert order (bits per dimension) for node keys.
  int hilbert_order = 10;
  /// Merge a leaf's overflow into its base (retraining the leaf model)
  /// when overflow exceeds this fraction of the base size.
  double merge_fraction = 0.25;
  size_t block_capacity = kDefaultBlockCapacity;
  /// Children visited around the predicted child range in window queries.
  int window_slack = 1;
  double knn_radius_factor = 2.0;
  /// Hard recursion limit (guards degenerate model routings).
  int max_depth = 12;
  /// Worker pool for sibling-subtree builds; null means
  /// ThreadPool::Global(). The tree is data-dependent but every routing
  /// decision derives from trained models whose seeds are partition-derived,
  /// so the structure is identical for any pool size.
  ThreadPool* pool = nullptr;
};

class RsmiIndex : public SpatialIndex {
 public:
  using Config = RsmiIndexConfig;

  explicit RsmiIndex(std::shared_ptr<ModelTrainer> trainer,
                     const Config& config = {});

  std::string Name() const override { return "RSMI"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return size_; }

  /// Batched point lookup via level-synchronous descent: all queries of a
  /// chunk that sit at the same node run that node's routing model as one
  /// GEMM, and leaf models batch the same way. Identical results to the
  /// serial loop (routing ranks are bit-identical; see ml/matrix.h).
  /// Window/kNN batches use the chunked scalar default — the recursive
  /// corner-key walk has little shared inference to batch.
  void PointQueryBatch(std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out,
                       const BatchQueryOptions& opts = {}) const override;

  std::vector<Point> CollectAll() const override;
  int Depth() const override;  // Levels of models (1 = single leaf).
  size_t node_count() const;
  size_t leaf_merge_count() const { return leaf_merges_; }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  struct Node {
    bool is_leaf = true;
    Rect bounds;
    // Approximate rank space: sorted coordinate quantile tables.
    std::vector<double> qx;
    std::vector<double> qy;
    RankModel model;
    // Internal.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf.
    std::vector<Point> pts;     // Sorted by key.
    std::vector<double> keys;   // Parallel, ascending.
    PagedList overflow;
    std::unordered_set<uint64_t> tombstones;

    explicit Node(size_t block_capacity) : overflow(block_capacity) {}
  };

  double NodeKey(const Node& node, const Point& p) const;
  std::unique_ptr<Node> BuildNode(std::vector<Point> pts, int depth);
  void SetUpMapping(Node* node, const std::vector<Point>& pts) const;
  size_t RouteChild(const Node& node, double key) const;
  /// RouteChild given the routing model's already-computed rank (0.0 when
  /// the model is untrained, matching RouteChild).
  size_t RouteChildFromRank(const Node& node, double rank) const;
  Node* DescendToLeaf(const Point& p) const;
  /// Leaf stage of PointQueryBatch: answers queries q_idx (with their node
  /// keys precomputed) against one leaf, batching the leaf model.
  void AnswerLeafBatch(const Node& leaf, const std::vector<size_t>& q_idx,
                       const std::vector<double>& keys,
                       std::span<const Point> qs, std::span<uint8_t> hit,
                       std::span<Point> out) const;
  void MergeLeafOverflow(Node* leaf);
  void WindowQueryNode(const Node* node, const Rect& w,
                       std::vector<Point>* out) const;
  void CollectNode(const Node* node, std::vector<Point>* out) const;
  void SaveNode(const Node& node, persist::Writer& w) const;
  std::unique_ptr<Node> LoadNode(persist::Reader& r, int depth) const;

  std::shared_ptr<ModelTrainer> trainer_;
  Config config_;
  size_t size_ = 0;
  size_t leaf_merges_ = 0;
  Rect domain_;
  std::unique_ptr<Node> root_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_RSMI_INDEX_H_
