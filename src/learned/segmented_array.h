#ifndef ELSI_LEARNED_SEGMENTED_ARRAY_H_
#define ELSI_LEARNED_SEGMENTED_ARRAY_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/geometry.h"
#include "common/thread_pool.h"
#include "learned/rank_model.h"
#include "storage/block_store.h"

namespace elsi {

/// The map-and-sort backbone shared by ZM and ML-Index: points sorted by a
/// 1-D key, cut into contiguous position-quantile segments, a root model
/// dispatching to segments and one rank model per segment (a two-stage RMI
/// with contiguous leaves). Every model is trained through a ModelTrainer,
/// which is where ELSI plugs in.
///
/// Updates: inserted points go to per-segment overflow pages (the paper's
/// "extra data pages per model" used by ML); deletions tombstone base
/// entries and physically remove overflow entries.
class SegmentedLearnedArray {
 public:
  struct Config {
    /// Target points per segment; the root model is skipped when a single
    /// segment suffices.
    size_t leaf_target = 10000;
    size_t block_capacity = kDefaultBlockCapacity;
    /// Worker pool for per-segment model training; null means
    /// ThreadPool::Global(). Training is bit-identical for any pool size
    /// (see the ModelTrainer thread-safety contract).
    ThreadPool* pool = nullptr;
  };

  SegmentedLearnedArray() = default;

  /// Builds from points and their parallel keys (not necessarily sorted; a
  /// sort is performed here — the paper's map-and-sort data preparation).
  void Build(std::vector<Point> pts, std::vector<double> keys,
             std::function<double(const Point&)> key_fn,
             ModelTrainer* trainer, const Config& config);

  size_t size() const { return pts_.size() + inserted_ - tombstones_.size(); }
  bool empty() const { return size() == 0; }
  size_t base_size() const { return pts_.size(); }
  size_t segment_count() const { return leaves_.size(); }

  const std::vector<Point>& base_points() const { return pts_; }
  const std::vector<double>& base_keys() const { return keys_; }

  /// Exact-coordinate point lookup via predict-and-scan.
  bool PointQuery(const Point& q, double key, Point* out) const;

  /// Appends every base+overflow point with key in [lo, hi] (skipping
  /// tombstones) that lies inside `w` to `out`.
  void ScanKeyRangeInRect(double lo, double hi, const Rect& w,
                          std::vector<Point>* out) const;

  /// As above without the rectangle filter.
  void ScanKeyRange(double lo, double hi, std::vector<Point>* out) const;

  /// Scans overflow pages only (callers that walk the base with
  /// VisitBaseRange use this to merge the inserted points).
  void ScanOverflowInRect(double lo, double hi, const Rect& w,
                          std::vector<Point>* out) const;

  /// Visits base entries with key in [lo, hi] in key order, passing
  /// (position, point). The visitor returns the next position to continue
  /// from (> pos to skip ahead, e.g. BIGMIN); tombstoned entries are not
  /// visited. Overflow entries are NOT visited (callers merge separately).
  void VisitBaseRange(double lo, double hi,
                      const std::function<size_t(size_t, const Point&)>&
                          visitor) const;

  /// VisitBaseRange starting from an already-computed position (the batched
  /// window path precomputes LowerBound(lo) for a whole batch at once).
  void VisitBaseRangeFrom(size_t start, double hi,
                          const std::function<size_t(size_t, const Point&)>&
                              visitor) const;

  /// Exact lower-bound position of `key` among base keys, found through the
  /// learned models with a binary-search fallback.
  size_t LowerBound(double key) const;

  /// Batched LowerBound: fills leaf[i] (owning segment) and lb[i]
  /// (lower-bound position) for each keys[i]. One root-model GEMM covers
  /// the whole batch and one leaf-model GEMM covers each distinct segment,
  /// but every output is bit-identical to the serial LeafOf/LowerBound
  /// (GEMM rows are position-independent; see ml/matrix.h).
  void LowerBoundBatch(const double* keys, size_t n, size_t* leaf,
                       size_t* lb) const;

  /// Batched PointQuery: answers (qs[i], keys[i]) into hit[i]/out[i], with
  /// model inference batched via LowerBoundBatch. Identical results to a
  /// serial PointQuery loop.
  void PointQueryBatch(const Point* qs, const double* keys, size_t n,
                       uint8_t* hit, Point* out) const;

  /// Inserts into the owning segment's overflow pages.
  void Insert(const Point& p, double key);

  /// Tombstones a base entry or physically removes an overflow entry.
  bool Remove(const Point& p, double key);

  /// All live points (base minus tombstones plus overflow) — rebuild input.
  std::vector<Point> CollectAll() const;

  /// Sum of model invocations is proportional to depth: 1 when only leaf
  /// models exist, 2 with a root dispatcher.
  int model_depth() const { return leaves_.size() > 1 ? 2 : 1; }

  /// Overflow volume (drives query degradation between rebuilds).
  size_t overflow_size() const { return inserted_; }

  /// Serializes the full array state — base points/keys, models, segment
  /// fences, overflow pages, tombstones — into `w`. The sampled key level is
  /// recomputed on load rather than stored.
  void SavePersist(persist::Writer& w) const;

  /// Restores an array written by SavePersist. `key_fn` re-binds the key
  /// mapping (std::function does not serialize) and `pool` the training
  /// pool for future rebuilds. Returns false on malformed input.
  bool LoadPersist(persist::Reader& r,
                   std::function<double(const Point&)> key_fn,
                   ThreadPool* pool = nullptr);

 private:
  /// Stride of the sampled key level used by LowerBoundBatch. 64 keeps the
  /// sample at n/64 entries (cache-resident across a chunk) while the final
  /// per-query search spans at most 65 base slots (~2 cold lines).
  static constexpr size_t kSampleStride = 64;

  size_t LeafOf(double key) const;
  /// Fence-walk leaf dispatch given the root model's already-computed rank.
  size_t LeafFromRootRank(double key, double rank) const;
  /// LowerBound given the owning leaf and its model's already-computed rank.
  size_t LowerBoundInLeaf(double key, size_t leaf, double leaf_rank) const;
  std::pair<size_t, size_t> LeafRange(size_t leaf) const;

  std::vector<Point> pts_;
  std::vector<double> keys_;
  /// Every kSampleStride-th key (sample_[t] = keys_[t * kSampleStride]).
  /// The batched search routes through this hot ~1.5%-sized level first and
  /// finishes inside one stride of the base array, so each query pays a
  /// couple of cold cache lines instead of a full binary search's worth.
  /// Read-only after Build (updates land in overflow pages, never keys_).
  std::vector<double> sample_;
  std::function<double(const Point&)> key_fn_;
  Config config_;

  RankModel root_;
  bool has_root_ = false;
  std::vector<RankModel> leaves_;
  std::vector<size_t> leaf_start_;  // leaf i covers [leaf_start_[i], leaf_start_[i+1])
  std::vector<double> leaf_min_key_;

  std::vector<PagedList> overflow_;  // One per segment.
  size_t inserted_ = 0;
  std::unordered_set<uint64_t> tombstones_;
};

}  // namespace elsi

#endif  // ELSI_LEARNED_SEGMENTED_ARRAY_H_
