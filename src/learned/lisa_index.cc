#include "learned/lisa_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/knn.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/model_health.h"
#include "persist/io.h"

namespace elsi {

LisaIndex::LisaIndex(std::shared_ptr<ModelTrainer> trainer,
                     const Config& config)
    : trainer_(std::move(trainer)), config_(config) {
  ELSI_CHECK(trainer_ != nullptr);
  ELSI_CHECK_GT(config.strips, 0u);
  ELSI_CHECK_GT(config.cells_per_strip, 0u);
}

size_t LisaIndex::StripOf(double x) const {
  // Last strip whose lower boundary is <= x (clamped at the ends).
  const auto it = std::upper_bound(strip_x_.begin() + 1, strip_x_.end() - 1, x);
  return static_cast<size_t>(it - strip_x_.begin()) - 1;
}

size_t LisaIndex::CellOf(size_t strip, double y) const {
  const std::vector<double>& ys = cell_y_[strip];
  const auto it = std::upper_bound(ys.begin() + 1, ys.end() - 1, y);
  return static_cast<size_t>(it - ys.begin()) - 1;
}

double LisaIndex::KeyAt(size_t strip, double y) const {
  const size_t j = CellOf(strip, y);
  const double lo = cell_y_[strip][j];
  const double hi = cell_y_[strip][j + 1];
  double offset = hi > lo ? (y - lo) / (hi - lo) : 0.0;
  offset = std::clamp(offset, 0.0, 1.0 - 1e-12);
  return static_cast<double>(strip * config_.cells_per_strip + j) + offset;
}

double LisaIndex::KeyOf(const Point& p) const {
  ELSI_DCHECK(!strip_x_.empty());
  return KeyAt(StripOf(p.x), p.y);
}

void LisaIndex::Build(const std::vector<Point>& data) {
  size_ = data.size();
  built_n_ = data.size();
  domain_ = data.empty() ? Rect::Of(0, 0, 1, 1) : BoundingRect(data);
  const size_t S = config_.strips;
  const size_t C = config_.cells_per_strip;

  // Equal-count strip boundaries from the x-order, then equal-count cell
  // boundaries from each strip's y-order. Outer boundaries are +-infinity so
  // later inserts always map somewhere.
  std::vector<double> xs(data.size());
  for (size_t i = 0; i < data.size(); ++i) xs[i] = data[i].x;
  std::sort(xs.begin(), xs.end());
  strip_x_.assign(S + 1, 0.0);
  strip_x_.front() = -std::numeric_limits<double>::infinity();
  strip_x_.back() = std::numeric_limits<double>::infinity();
  for (size_t s = 1; s < S; ++s) {
    strip_x_[s] = xs.empty() ? static_cast<double>(s) / S
                             : xs[s * xs.size() / S];
  }

  cell_y_.assign(S, {});
  std::vector<std::vector<double>> strip_ys(S);
  for (const Point& p : data) strip_ys[StripOf(p.x)].push_back(p.y);
  // Strips are independent: sort each strip's y-values and fit its cell
  // boundaries on the pool.
  ThreadPool* pool =
      config_.pool != nullptr ? config_.pool : &ThreadPool::Global();
  pool->ParallelFor(0, S, [&](size_t s) {
    std::vector<double>& ys = strip_ys[s];
    std::sort(ys.begin(), ys.end());
    std::vector<double>& bounds = cell_y_[s];
    bounds.assign(C + 1, 0.0);
    bounds.front() = -std::numeric_limits<double>::infinity();
    bounds.back() = std::numeric_limits<double>::infinity();
    for (size_t j = 1; j < C; ++j) {
      bounds[j] = ys.empty() ? static_cast<double>(j) / C
                             : ys[j * ys.size() / C];
    }
    // Interior boundaries must be finite and non-decreasing for the offset
    // computation; replace the infinite outer ones with the strip's data
    // extent when evaluating offsets (handled in KeyOf via clamping).
    if (!ys.empty()) {
      bounds.front() = std::min(ys.front(), bounds[1]) - 1.0;
      bounds.back() = std::max(ys.back(), bounds[C - 1]) + 1.0;
    } else {
      bounds.front() = -1.0;
      bounds.back() = 2.0;
    }
  });

  if (data.empty()) {
    model_ = RankModel();
    shards_.clear();
    obs::ModelHealthMonitor::Get().OnBuild("LISA");
    return;
  }

  // Map-and-sort, then learn the shard prediction function. The mapped
  // value of each point is independent of the others.
  std::vector<double> keys(data.size());
  pool->ParallelFor(0, data.size(),
                    [&](size_t i) { keys[i] = KeyOf(data[i]); });
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return data[a].id < data[b].id;
  });
  std::vector<Point> sorted_pts(data.size());
  std::vector<double> sorted_keys(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    sorted_pts[i] = data[order[i]];
    sorted_keys[i] = keys[order[i]];
  }
  model_ = trainer_->TrainModel(sorted_pts, sorted_keys,
                                [this](const Point& p) { return KeyOf(p); });

  // Shards are consecutive chunks of the sorted order, stored as pages.
  const size_t shard_count =
      (data.size() + config_.shard_size - 1) / config_.shard_size;
  shards_.assign(shard_count, PagedList(config_.shard_size));
  pool->ParallelFor(0, shard_count, [&](size_t sh) {
    const size_t begin = sh * data.size() / shard_count;
    const size_t end = (sh + 1) * data.size() / shard_count;
    const std::vector<Point> chunk(sorted_pts.begin() + begin,
                                   sorted_pts.begin() + end);
    const std::vector<double> chunk_keys(sorted_keys.begin() + begin,
                                         sorted_keys.begin() + end);
    shards_[sh].BulkLoad(chunk, chunk_keys);
  });
  obs::ModelHealthMonitor::Get().OnBuild("LISA");
}

size_t LisaIndex::PredictedShard(double key) const {
  if (shards_.empty()) return 0;
  return PredictedShardFromRank(model_.PredictRank(key));
}

size_t LisaIndex::PredictedShardFromRank(double rank) const {
  if (shards_.empty()) return 0;
  const double pos = rank * (built_n_ - 1);
  const size_t sh = static_cast<size_t>(pos * shards_.size() /
                                        std::max<size_t>(1, built_n_));
  return std::min(sh, shards_.size() - 1);
}

std::pair<size_t, size_t> LisaIndex::ShardRange(double lo, double hi) const {
  if (shards_.empty()) return {0, 0};
  return ShardRangeFromRanks(model_.PredictRank(lo), model_.PredictRank(hi));
}

std::pair<size_t, size_t> LisaIndex::ShardRangeFromRanks(
    double rank_lo, double rank_hi) const {
  if (shards_.empty()) return {0, 0};
  const double n = static_cast<double>(std::max<size_t>(1, built_n_));
  const double pos_lo = rank_lo * (n - 1) - model_.err_l();
  const double pos_hi = rank_hi * (n - 1) + model_.err_u();
  double sh_lo = std::floor(std::max(0.0, pos_lo) * shards_.size() / n);
  double sh_hi = std::floor(std::max(0.0, pos_hi) * shards_.size() / n);
  if (sh_lo > sh_hi) std::swap(sh_lo, sh_hi);
  const size_t a = std::min(static_cast<size_t>(sh_lo), shards_.size() - 1);
  const size_t b = std::min(static_cast<size_t>(sh_hi), shards_.size() - 1);
  return {a, b};
}

void LisaIndex::Insert(const Point& p) {
  if (strip_x_.empty() || shards_.empty()) {
    Build({p});
    return;
  }
  // Points are added to pages by their predicted shard id (Sec. II); pages
  // split as they fill, which skews the structure under skewed insertions.
  const double key = KeyOf(p);
  shards_[PredictedShard(key)].Insert(p, key);
  ++size_;
}

bool LisaIndex::Remove(const Point& p) {
  if (shards_.empty()) return false;
  const double key = KeyOf(p);
  const auto [lo, hi] = ShardRange(key, key);
  const size_t pred = PredictedShard(key);
  // The point is either where the build placed its rank or where an insert
  // predicted it; cover both.
  const size_t a = std::min(lo, pred);
  const size_t b = std::max(hi, pred);
  for (size_t sh = a; sh <= b; ++sh) {
    if (shards_[sh].Erase(p.id, key)) {
      --size_;
      return true;
    }
  }
  return false;
}

bool LisaIndex::PointQuery(const Point& q, Point* out) const {
  obs::QueryScope flight("LISA", obs::QueryKind::kPoint);
  if (shards_.empty()) return false;
  const double key = KeyOf(q);
  const auto [lo, hi] = ShardRange(key, key);
  const size_t pred = PredictedShard(key);
  const size_t a = std::min(lo, pred);
  const size_t b = std::max(hi, pred);
  // Shards visited per point query: LISA's prediction-error proxy.
  static obs::Histogram& scan_shards = obs::GetHistogram(
      "query.lisa.shards", obs::HistogramSpec::Count());
  scan_shards.Observe(static_cast<double>(b - a + 1));
  if (obs::QueryScope* scope = obs::QueryScope::ActiveSampled()) {
    // Error proxy: how far the error-bounded shard range strays from the
    // single predicted shard.
    scope->AddScan(b - a + 1, static_cast<double>(b - a));
  }
  std::vector<Point> hits;
  for (size_t sh = a; sh <= b; ++sh) {
    shards_[sh].ScanKeyRange(key, key, &hits);
  }
  for (const Point& p : hits) {
    if (p.x == q.x && p.y == q.y) {
      if (out != nullptr) *out = p;
      return true;
    }
  }
  return false;
}

std::vector<Point> LisaIndex::WindowQuery(const Rect& w) const {
  obs::QueryScope flight("LISA", obs::QueryKind::kWindow);
  std::vector<Point> result;
  if (w.empty() || shards_.empty()) return result;
  const size_t s_lo = StripOf(w.lo_x);
  const size_t s_hi = StripOf(w.hi_x);
  for (size_t s = s_lo; s <= s_hi; ++s) {
    // Mapped interval covering the window's y-range inside this strip: the
    // mapping is monotone in y within a strip, so the interval endpoints
    // are the mapped values of the window's y-extremes.
    const double key_lo = KeyAt(s, w.lo_y);
    const double key_hi = KeyAt(s, w.hi_y);
    const auto [a, b] = ShardRange(key_lo, key_hi);
    for (size_t sh = a; sh <= b && sh < shards_.size(); ++sh) {
      shards_[sh].ScanKeyRangeInRect(key_lo, key_hi, w, &result);
    }
  }
  SortCanonical(&result);
  return result;
}

void LisaIndex::PointQueryBatch(std::span<const Point> qs,
                                std::span<uint8_t> hit, std::span<Point> out,
                                const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  if (shards_.empty()) {
    std::fill(hit.begin(), hit.end(), 0);
    return;
  }
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    const size_t len = end - begin;
    std::vector<double> keys(len);
    for (size_t i = 0; i < len; ++i) keys[i] = KeyOf(qs[begin + i]);
    // One GEMM gives each key's rank; the serial path evaluates the model
    // three times per query (ShardRange twice + PredictedShard) on the
    // same key, so the ranks — and the shard windows below — are identical.
    std::vector<double> ranks(len);
    model_.PredictRanks(keys.data(), len, ranks.data());
    std::vector<Point> hits;
    static obs::Histogram& shards_histogram = obs::GetHistogram(
        "query.lisa.shards", obs::HistogramSpec::Count());
    // One atomic merge per chunk (destructor flush), not one per query.
    obs::LocalHistogram scan_shards(shards_histogram);
    for (size_t i = 0; i < len; ++i) {
      const auto [lo, hi] = ShardRangeFromRanks(ranks[i], ranks[i]);
      const size_t pred = PredictedShardFromRank(ranks[i]);
      const size_t a = std::min(lo, pred);
      const size_t b = std::max(hi, pred);
      scan_shards.Observe(b - a + 1);
      hits.clear();
      for (size_t sh = a; sh <= b; ++sh) {
        shards_[sh].ScanKeyRange(keys[i], keys[i], &hits);
      }
      hit[begin + i] = 0;
      for (const Point& p : hits) {
        if (p.x == qs[begin + i].x && p.y == qs[begin + i].y) {
          out[begin + i] = p;
          hit[begin + i] = 1;
          break;
        }
      }
    }
  });
}

void LisaIndex::WindowQueryBatch(std::span<const Rect> ws,
                                 std::span<std::vector<Point>> out,
                                 const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), ws.size());
  ForEachQueryChunk(ws.size(), opts, [&](size_t begin, size_t end) {
    // Flatten every (window, strip) interval in the chunk, run one GEMM
    // over all interval endpoints, then scan in the serial order.
    struct Interval {
      size_t w;  // chunk-local window index
      double key_lo, key_hi;
    };
    std::vector<Interval> intervals;
    for (size_t i = begin; i < end; ++i) {
      out[i].clear();
      if (ws[i].empty() || shards_.empty()) continue;
      const size_t s_lo = StripOf(ws[i].lo_x);
      const size_t s_hi = StripOf(ws[i].hi_x);
      for (size_t s = s_lo; s <= s_hi; ++s) {
        intervals.push_back(
            {i - begin, KeyAt(s, ws[i].lo_y), KeyAt(s, ws[i].hi_y)});
      }
    }
    std::vector<double> endpoints(intervals.size() * 2);
    for (size_t t = 0; t < intervals.size(); ++t) {
      endpoints[2 * t] = intervals[t].key_lo;
      endpoints[2 * t + 1] = intervals[t].key_hi;
    }
    std::vector<double> ranks(endpoints.size());
    model_.PredictRanks(endpoints.data(), endpoints.size(), ranks.data());
    for (size_t t = 0; t < intervals.size(); ++t) {
      const Interval& iv = intervals[t];
      const auto [a, b] = ShardRangeFromRanks(ranks[2 * t], ranks[2 * t + 1]);
      for (size_t sh = a; sh <= b && sh < shards_.size(); ++sh) {
        shards_[sh].ScanKeyRangeInRect(iv.key_lo, iv.key_hi,
                                       ws[begin + iv.w], &out[begin + iv.w]);
      }
    }
    for (size_t i = begin; i < end; ++i) SortCanonical(&out[i]);
  });
}

std::vector<Point> LisaIndex::KnnQuery(const Point& q, size_t k) const {
  obs::QueryScope flight("LISA", obs::QueryKind::kKnn);
  std::vector<Point> result;
  if (shards_.empty() || size_ == 0 || k == 0) return result;
  const double diag = std::hypot(domain_.hi_x - domain_.lo_x,
                                 domain_.hi_y - domain_.lo_y);
  double r = config_.knn_radius_factor * diag *
             std::sqrt(static_cast<double>(k) /
                       std::max<size_t>(1, size_));
  r = std::max(r, diag * 1e-6);
  for (;;) {
    const Rect w = Rect::Of(q.x - r, q.y - r, q.x + r, q.y + r);
    std::vector<Point> candidates = WindowQuery(w);
    if (candidates.size() >= k || r > diag) {
      const double worst = knn::SelectNearest(q, k, &candidates);
      if (r > diag || (candidates.size() == k && worst <= r * r)) {
        return candidates;
      }
    }
    r *= 2.0;
  }
}

std::vector<Point> LisaIndex::CollectAll() const {
  std::vector<Point> all;
  all.reserve(size_);
  for (const PagedList& shard : shards_) {
    for (const Block& b : shard.blocks()) {
      all.insert(all.end(), b.points.begin(), b.points.end());
    }
  }
  return all;
}

bool LisaIndex::SaveState(persist::Writer& w) const {
  w.U64(config_.strips);
  w.U64(config_.cells_per_strip);
  w.U64(config_.shard_size);
  w.F64(config_.knn_radius_factor);
  w.Bool(!shards_.empty());
  if (shards_.empty()) return true;
  persist::PutRect(w, domain_);
  w.U64(size_);
  w.U64(built_n_);
  w.F64Vec(strip_x_);
  w.U32(static_cast<uint32_t>(cell_y_.size()));
  for (const std::vector<double>& ys : cell_y_) w.F64Vec(ys);
  model_.SavePersist(w);
  w.U32(static_cast<uint32_t>(shards_.size()));
  for (const PagedList& shard : shards_) shard.SavePersist(w);
  return true;
}

bool LisaIndex::LoadState(persist::Reader& r) {
  config_.strips = r.U64();
  config_.cells_per_strip = r.U64();
  config_.shard_size = r.U64();
  config_.knn_radius_factor = r.F64();
  if (config_.strips == 0 || config_.cells_per_strip == 0) return r.Fail();
  const bool built = r.Bool();
  if (!r.ok()) return false;
  if (!built) {
    shards_.clear();
    strip_x_.clear();
    cell_y_.clear();
    size_ = 0;
    built_n_ = 0;
    return true;
  }
  domain_ = persist::GetRect(r);
  size_ = r.U64();
  built_n_ = r.U64();
  if (!r.F64Vec(&strip_x_)) return false;
  if (strip_x_.size() < 2) return r.Fail();
  const uint32_t nstrips = r.U32();
  if (nstrips != strip_x_.size() - 1 || nstrips > r.remaining()) {
    return r.Fail();
  }
  cell_y_.assign(nstrips, {});
  for (std::vector<double>& ys : cell_y_) {
    if (!r.F64Vec(&ys)) return false;
  }
  if (!model_.LoadPersist(r)) return false;
  const uint32_t nshards = r.U32();
  if (nshards > r.remaining()) return r.Fail();
  shards_.assign(nshards, PagedList(config_.shard_size));
  uint64_t total = 0;
  for (PagedList& shard : shards_) {
    if (!shard.LoadPersist(r)) return false;
    total += shard.size();
  }
  if (total != size_) return r.Fail();
  return r.ok();
}

}  // namespace elsi
