#include "storage/delta_buffer.h"

namespace elsi {

bool DeltaBuffer::AddDelete(uint64_t id, double key) {
  // If the point was inserted through this buffer, drop it physically.
  auto [lo, hi] = inserted_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.id == id) {
      inserted_.erase(it);
      return true;
    }
  }
  deleted_.insert(id);
  return false;
}

void DeltaBuffer::ScanKeyRange(double lo, double hi,
                               std::vector<Point>* out) const {
  for (auto it = inserted_.lower_bound(lo);
       it != inserted_.end() && it->first <= hi; ++it) {
    out->push_back(it->second);
  }
}

void DeltaBuffer::ScanKeyRangeInRect(double lo, double hi, const Rect& w,
                                     std::vector<Point>* out) const {
  for (auto it = inserted_.lower_bound(lo);
       it != inserted_.end() && it->first <= hi; ++it) {
    if (w.Contains(it->second)) out->push_back(it->second);
  }
}

void DeltaBuffer::CollectInserted(std::vector<Point>* out) const {
  for (const auto& [key, p] : inserted_) out->push_back(p);
}

}  // namespace elsi
