#include "storage/delta_buffer.h"

#include "obs/metrics.h"

namespace elsi {

namespace {

/// Pending (inserted + deleted) entries of the most recently mutated delta
/// buffer — the storage-layer view of update pressure. Set (not
/// accumulated) so buffer copies and destruction cannot skew it.
obs::Gauge& PendingGauge() {
  static obs::Gauge& gauge = obs::GetGauge("storage.delta_buffer.depth");
  return gauge;
}

}  // namespace

void DeltaBuffer::AddInsert(const Point& p, double key) {
  inserted_.emplace(key, p);
  PendingGauge().Set(static_cast<int64_t>(inserted_.size() + deleted_.size()));
}

bool DeltaBuffer::AddDelete(uint64_t id, double key) {
  // If the point was inserted through this buffer, drop it physically.
  auto [lo, hi] = inserted_.equal_range(key);
  bool found = false;
  for (auto it = lo; it != hi; ++it) {
    if (it->second.id == id) {
      inserted_.erase(it);
      found = true;
      break;
    }
  }
  if (!found) deleted_.insert(id);
  PendingGauge().Set(static_cast<int64_t>(inserted_.size() + deleted_.size()));
  return found;
}

void DeltaBuffer::Clear() {
  inserted_.clear();
  deleted_.clear();
  PendingGauge().Set(0);
}

void DeltaBuffer::ScanKeyRange(double lo, double hi,
                               std::vector<Point>* out) const {
  for (auto it = inserted_.lower_bound(lo);
       it != inserted_.end() && it->first <= hi; ++it) {
    out->push_back(it->second);
  }
}

void DeltaBuffer::ScanKeyRangeInRect(double lo, double hi, const Rect& w,
                                     std::vector<Point>* out) const {
  for (auto it = inserted_.lower_bound(lo);
       it != inserted_.end() && it->first <= hi; ++it) {
    if (w.Contains(it->second)) out->push_back(it->second);
  }
}

void DeltaBuffer::CollectInserted(std::vector<Point>* out) const {
  for (const auto& [key, p] : inserted_) out->push_back(p);
}

}  // namespace elsi
