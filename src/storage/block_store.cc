#include "storage/block_store.h"

#include <algorithm>

#include "common/logging.h"
#include "persist/io.h"

namespace elsi {

PagedList::PagedList(size_t block_capacity) : block_capacity_(block_capacity) {
  ELSI_CHECK_GE(block_capacity, 2u) << "blocks must hold at least 2 points";
}

void PagedList::BulkLoad(const std::vector<Point>& sorted_points,
                         const std::vector<double>& sorted_keys) {
  ELSI_CHECK_EQ(sorted_points.size(), sorted_keys.size());
  ELSI_DCHECK(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  blocks_.clear();
  block_keys_.clear();
  block_min_key_.clear();
  size_ = sorted_points.size();
  for (size_t start = 0; start < sorted_points.size();
       start += block_capacity_) {
    const size_t end = std::min(start + block_capacity_, sorted_points.size());
    Block b;
    std::vector<double> keys;
    for (size_t i = start; i < end; ++i) {
      b.Add(sorted_points[i]);
      keys.push_back(sorted_keys[i]);
    }
    block_min_key_.push_back(keys.front());
    blocks_.push_back(std::move(b));
    block_keys_.push_back(std::move(keys));
  }
}

size_t PagedList::FindBlock(double key) const {
  if (blocks_.empty()) return 0;
  // Last block whose min key is <= key (first block when key underflows).
  const auto it = std::upper_bound(block_min_key_.begin(),
                                   block_min_key_.end(), key);
  if (it == block_min_key_.begin()) return 0;
  return static_cast<size_t>(it - block_min_key_.begin()) - 1;
}

void PagedList::Insert(const Point& p, double key) {
  if (blocks_.empty()) {
    Block b;
    b.Add(p);
    blocks_.push_back(std::move(b));
    block_keys_.push_back({key});
    block_min_key_.push_back(key);
    size_ = 1;
    return;
  }
  size_t bi = FindBlock(key);
  Block& b = blocks_[bi];
  std::vector<double>& keys = block_keys_[bi];
  const auto pos = std::upper_bound(keys.begin(), keys.end(), key);
  const size_t offset = static_cast<size_t>(pos - keys.begin());
  keys.insert(pos, key);
  b.points.insert(b.points.begin() + offset, p);
  b.mbr.Extend(p);
  block_min_key_[bi] = keys.front();
  ++size_;

  if (b.points.size() > block_capacity_) {
    // Median split: move the upper half into a fresh block after this one.
    const size_t half = b.points.size() / 2;
    Block upper;
    upper.points.assign(b.points.begin() + half, b.points.end());
    upper.RecomputeMbr();
    std::vector<double> upper_keys(keys.begin() + half, keys.end());
    b.points.resize(half);
    keys.resize(half);
    b.RecomputeMbr();
    const double upper_min = upper_keys.front();
    blocks_.insert(blocks_.begin() + bi + 1, std::move(upper));
    block_keys_.insert(block_keys_.begin() + bi + 1, std::move(upper_keys));
    block_min_key_.insert(block_min_key_.begin() + bi + 1, upper_min);
  }
}

bool PagedList::Erase(uint64_t id, double key) {
  if (blocks_.empty()) return false;
  // The key may straddle adjacent blocks when duplicated; scan forward from
  // the owning block while its min key does not exceed `key`.
  for (size_t bi = FindBlock(key); bi < blocks_.size(); ++bi) {
    if (block_min_key_[bi] > key) break;
    std::vector<double>& keys = block_keys_[bi];
    auto lo = std::lower_bound(keys.begin(), keys.end(), key);
    for (; lo != keys.end() && *lo == key; ++lo) {
      const size_t offset = static_cast<size_t>(lo - keys.begin());
      if (blocks_[bi].points[offset].id != id) continue;
      blocks_[bi].points.erase(blocks_[bi].points.begin() + offset);
      keys.erase(lo);
      --size_;
      if (blocks_[bi].points.empty()) {
        blocks_.erase(blocks_.begin() + bi);
        block_keys_.erase(block_keys_.begin() + bi);
        block_min_key_.erase(block_min_key_.begin() + bi);
      } else {
        blocks_[bi].RecomputeMbr();
        block_min_key_[bi] = keys.front();
      }
      return true;
    }
  }
  return false;
}

void PagedList::SavePersist(persist::Writer& w) const {
  w.U64(block_capacity_);
  w.U64(size_);
  w.U32(static_cast<uint32_t>(blocks_.size()));
  for (size_t bi = 0; bi < blocks_.size(); ++bi) {
    const Block& b = blocks_[bi];
    const std::vector<double>& keys = block_keys_[bi];
    w.U32(static_cast<uint32_t>(b.points.size()));
    for (size_t i = 0; i < b.points.size(); ++i) {
      persist::PutPoint(w, b.points[i]);
      w.F64(keys[i]);
    }
  }
}

bool PagedList::LoadPersist(persist::Reader& r) {
  block_capacity_ = r.U64();
  size_ = r.U64();
  const uint32_t nblocks = r.U32();
  if (block_capacity_ < 2 || nblocks > r.remaining() / 4) return r.Fail();
  blocks_.clear();
  block_keys_.clear();
  block_min_key_.clear();
  blocks_.reserve(nblocks);
  block_keys_.reserve(nblocks);
  block_min_key_.reserve(nblocks);
  uint64_t total = 0;
  for (uint32_t bi = 0; bi < nblocks; ++bi) {
    const uint32_t npts = r.U32();
    // 32 bytes per (point, key) pair.
    if (npts == 0 || npts > r.remaining() / 32) return r.Fail();
    Block b;
    std::vector<double> keys;
    b.points.reserve(npts);
    keys.reserve(npts);
    for (uint32_t i = 0; i < npts; ++i) {
      b.Add(persist::GetPoint(r));
      keys.push_back(r.F64());
    }
    if (!r.ok() || !std::is_sorted(keys.begin(), keys.end())) return r.Fail();
    total += npts;
    block_min_key_.push_back(keys.front());
    blocks_.push_back(std::move(b));
    block_keys_.push_back(std::move(keys));
  }
  if (total != size_ ||
      !std::is_sorted(block_min_key_.begin(), block_min_key_.end())) {
    return r.Fail();
  }
  return r.ok();
}

void PagedList::ScanKeyRange(double lo, double hi,
                             std::vector<Point>* out) const {
  for (size_t bi = FindBlock(lo); bi < blocks_.size(); ++bi) {
    if (block_min_key_[bi] > hi) break;
    const std::vector<double>& keys = block_keys_[bi];
    auto it = std::lower_bound(keys.begin(), keys.end(), lo);
    for (; it != keys.end() && *it <= hi; ++it) {
      out->push_back(
          blocks_[bi].points[static_cast<size_t>(it - keys.begin())]);
    }
  }
}

void PagedList::ScanKeyRangeInRect(double lo, double hi, const Rect& w,
                                   std::vector<Point>* out) const {
  for (size_t bi = FindBlock(lo); bi < blocks_.size(); ++bi) {
    if (block_min_key_[bi] > hi) break;
    if (!blocks_[bi].mbr.Intersects(w)) continue;
    const std::vector<double>& keys = block_keys_[bi];
    auto it = std::lower_bound(keys.begin(), keys.end(), lo);
    for (; it != keys.end() && *it <= hi; ++it) {
      const Point& p =
          blocks_[bi].points[static_cast<size_t>(it - keys.begin())];
      if (w.Contains(p)) out->push_back(p);
    }
  }
}

}  // namespace elsi
