#ifndef ELSI_STORAGE_DELTA_BUFFER_H_
#define ELSI_STORAGE_DELTA_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/geometry.h"

namespace elsi {

/// The update processor's side list (Sec. IV-B2): newly inserted points and
/// deleted ids kept outside the learned structure. Inserted points are keyed
/// by the base index's mapped value so point and window queries can range-
/// scan them; deletions are tracked in an ordered id set (the paper's
/// "binary tree on the IDs of the updated points").
class DeltaBuffer {
 public:
  DeltaBuffer() = default;

  void AddInsert(const Point& p, double key);

  /// Marks an id deleted. Inserted-then-deleted points are physically
  /// removed from the side list; returns whether the id was found there.
  bool AddDelete(uint64_t id, double key);

  bool IsDeleted(uint64_t id) const { return deleted_.count(id) > 0; }

  /// Appends inserted points with key in [lo, hi] to `out`.
  void ScanKeyRange(double lo, double hi, std::vector<Point>* out) const;

  /// Appends inserted points with key in [lo, hi] inside `w` to `out`.
  void ScanKeyRangeInRect(double lo, double hi, const Rect& w,
                          std::vector<Point>* out) const;

  /// Appends all inserted points to `out` (used by full rebuilds).
  void CollectInserted(std::vector<Point>* out) const;

  const std::set<uint64_t>& deleted_ids() const { return deleted_; }

  size_t inserted_count() const { return inserted_.size(); }
  size_t deleted_count() const { return deleted_.size(); }

  void Clear();

 private:
  std::multimap<double, Point> inserted_;
  std::set<uint64_t> deleted_;
};

}  // namespace elsi

#endif  // ELSI_STORAGE_DELTA_BUFFER_H_
