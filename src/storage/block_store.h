#ifndef ELSI_STORAGE_BLOCK_STORE_H_
#define ELSI_STORAGE_BLOCK_STORE_H_

#include <cstddef>
#include <vector>

#include "common/geometry.h"

namespace elsi {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Default storage block size used throughout the evaluation (Sec. VII-B1).
inline constexpr size_t kDefaultBlockCapacity = 100;

/// A storage block: up to `capacity` points plus their MBR. Blocks model the
/// paper's data pages; experiments are in-memory but the block granularity is
/// what the traditional indices and LISA's shards operate on.
struct Block {
  std::vector<Point> points;
  Rect mbr;

  void Add(const Point& p) {
    points.push_back(p);
    mbr.Extend(p);
  }

  void RecomputeMbr() {
    mbr = Rect();
    for (const Point& p : points) mbr.Extend(p);
  }
};

/// An ordered sequence of blocks holding points sorted by a 1-D key, with
/// ordered insertion and median page splits. LISA's shards and ML-Index's
/// per-model overflow pages are PagedLists; Grid cells hold one per cell.
class PagedList {
 public:
  explicit PagedList(size_t block_capacity = kDefaultBlockCapacity);

  /// Bulk-loads from points pre-sorted by `keys` (parallel arrays). Packs
  /// blocks to capacity.
  void BulkLoad(const std::vector<Point>& sorted_points,
                const std::vector<double>& sorted_keys);

  /// Inserts keeping key order; splits the target block at the median when
  /// full (creating the page-split cost the update experiments measure).
  void Insert(const Point& p, double key);

  /// Removes the first point with this id and key. Returns false when the
  /// (key, id) pair is absent.
  bool Erase(uint64_t id, double key);

  /// Appends every point with key in [lo, hi] to `out`.
  void ScanKeyRange(double lo, double hi, std::vector<Point>* out) const;

  /// Appends every point inside `w` whose key lies in [lo, hi] to `out`.
  void ScanKeyRangeInRect(double lo, double hi, const Rect& w,
                          std::vector<Point>* out) const;

  size_t size() const { return size_; }
  size_t block_count() const { return blocks_.size(); }
  size_t block_capacity() const { return block_capacity_; }

  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<std::vector<double>>& block_keys() const {
    return block_keys_;
  }

  /// Serializes the list (capacity, blocks, keys) into `w`. Block MBRs and
  /// per-block min keys are recomputed on load rather than stored.
  void SavePersist(persist::Writer& w) const;

  /// Restores a list written by SavePersist. Returns false on malformed
  /// input.
  bool LoadPersist(persist::Reader& r);

 private:
  // Index of the block whose key range should contain `key`.
  size_t FindBlock(double key) const;

  size_t block_capacity_;
  size_t size_ = 0;
  std::vector<Block> blocks_;
  // Keys parallel to blocks_[i].points, each ascending.
  std::vector<std::vector<double>> block_keys_;
  // blocks_[i]'s smallest key; ascending across blocks.
  std::vector<double> block_min_key_;
};

}  // namespace elsi

#endif  // ELSI_STORAGE_BLOCK_STORE_H_
