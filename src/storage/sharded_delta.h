#ifndef ELSI_STORAGE_SHARDED_DELTA_H_
#define ELSI_STORAGE_SHARDED_DELTA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/geometry.h"

namespace elsi {
namespace concurrent {

/// The concurrent serving path's side list (see DESIGN.md, "Concurrent
/// serving"): newly inserted points and tombstones held outside the
/// immutable base index, sharded by writer thread so concurrent inserts
/// never contend on one mutex.
///
/// Concurrency contract:
///  * Writers (Insert / RemoveInserted / AddBaseTombstone) take only their
///    shard's spinlock — a handful of instructions; threads hash to shards
///    round-robin, so disjoint writers don't contend at all.
///  * Readers take NO lock ever: each shard publishes its entry count with
///    a release store into chunked, append-only storage, and scans read the
///    count with acquire and walk only the published prefix. Entries are
///    never moved or freed while the delta is alive (removal of an in-delta
///    insert flags the entry dead instead of erasing it).
///  * Seal() flips every shard to read-only under its spinlock; appends
///    that lose the race return false and the caller retries against the
///    successor delta (published first — see ConcurrentIndex::MergeNow).
class ShardedDelta {
 public:
  static constexpr size_t kShards = 16;
  static constexpr size_t kChunkCap = 128;

  ShardedDelta();
  ~ShardedDelta();
  ShardedDelta(const ShardedDelta&) = delete;
  ShardedDelta& operator=(const ShardedDelta&) = delete;

  /// Appends an inserted point. Returns false when sealed.
  bool Insert(const Point& p);

  enum class RemoveResult { kFlagged, kNotFound, kSealed };

  /// Tombstones an in-delta insert matching (x, y, id) exactly by flagging
  /// its entry dead. kSealed means the delta froze mid-operation and the
  /// caller must retry against the successor.
  RemoveResult RemoveInserted(const Point& p);

  /// Records a tombstone for a point that lives outside this delta (in the
  /// base index or a frozen predecessor). Returns false when sealed.
  bool AddBaseTombstone(const Point& p);

  /// Whether (x, y, id) has a recorded base tombstone. Lock-free.
  bool IsTombstoned(const Point& p) const;

  /// Whether a live (non-dead) inserted entry matches (x, y, id). Lock-free.
  bool ContainsInserted(const Point& p) const;

  /// Invokes `fn` for every live inserted point. Lock-free; sees at least
  /// every append that completed before the call began.
  void ForEachInserted(const std::function<void(const Point&)>& fn) const;

  /// Invokes `fn` for every recorded base tombstone. Lock-free.
  void ForEachTombstone(const std::function<void(const Point&)>& fn) const;

  /// Appends every live inserted point to `out`.
  void CollectInserted(std::vector<Point>* out) const;

  /// Freezes every shard: no append succeeds after this returns. Idempotent.
  void Seal();

  /// Inserted entries, including dead-flagged ones. Lock-free, approximate
  /// under concurrent appends.
  size_t inserted_count() const;

  /// Inserted entries currently flagged dead.
  size_t dead_count() const;

  /// Recorded base tombstones.
  size_t tombstone_count() const;

 private:
  struct Entry {
    Point p;
    std::atomic<uint32_t> dead{0};
  };

  /// Append-only chunked log: entries are written in place, then published
  /// by a release store of the owning shard's count; chunks link forward
  /// and are only freed by the ShardedDelta destructor.
  struct Chunk {
    Entry slots[kChunkCap];
    std::atomic<Chunk*> next{nullptr};
  };

  struct Log {
    std::atomic<Chunk*> head{nullptr};
    Chunk* tail = nullptr;             // Writer-side, guarded by shard lock.
    std::atomic<size_t> count{0};      // Published entries.
  };

  struct alignas(64) Shard {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    bool sealed = false;               // Guarded by lock.
    Log inserts;
    Log tombstones;
    std::atomic<size_t> dead{0};
  };

  class SpinGuard;

  /// Appends under the shard lock; false when the shard is sealed.
  bool Append(Shard* shard, Log* log, const Point& p);
  static void FreeLog(Log* log);

  template <typename Fn>
  void ScanLog(const Log& log, Fn fn) const;

  Shard shards_[kShards];
};

}  // namespace concurrent
}  // namespace elsi

#endif  // ELSI_STORAGE_SHARDED_DELTA_H_
