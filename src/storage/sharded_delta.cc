#include "storage/sharded_delta.h"

#include <thread>

namespace elsi {
namespace concurrent {

namespace {

/// Stable shard assignment: each thread gets the next index round-robin on
/// first use, so writer threads spread across shards without hashing.
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t assigned =
      next.fetch_add(1, std::memory_order_relaxed);
  return assigned % ShardedDelta::kShards;
}

}  // namespace

/// Test-and-test-and-set spinlock over the shard's atomic_flag. Writer
/// critical sections are a few stores, so spinning beats parking.
class ShardedDelta::SpinGuard {
 public:
  explicit SpinGuard(Shard* shard) : shard_(shard) {
    while (shard_->lock.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  ~SpinGuard() { shard_->lock.clear(std::memory_order_release); }

 private:
  Shard* shard_;
};

ShardedDelta::ShardedDelta() = default;

void ShardedDelta::FreeLog(Log* log) {
  Chunk* c = log->head.load(std::memory_order_acquire);
  while (c != nullptr) {
    Chunk* next = c->next.load(std::memory_order_acquire);
    delete c;
    c = next;
  }
}

ShardedDelta::~ShardedDelta() {
  for (Shard& s : shards_) {
    FreeLog(&s.inserts);
    FreeLog(&s.tombstones);
  }
}

bool ShardedDelta::Append(Shard* shard, Log* log, const Point& p) {
  SpinGuard guard(shard);
  if (shard->sealed) return false;
  const size_t n = log->count.load(std::memory_order_relaxed);
  const size_t offset = n % kChunkCap;
  if (offset == 0) {
    // Chunk boundary: link a fresh chunk before publishing any entry in it.
    Chunk* fresh = new Chunk();
    if (n == 0) {
      log->head.store(fresh, std::memory_order_release);
    } else {
      log->tail->next.store(fresh, std::memory_order_release);
    }
    log->tail = fresh;
  }
  log->tail->slots[offset].p = p;
  // Release-publish: a reader that acquires count >= n+1 sees the entry
  // (and, transitively, the chunk link) fully written.
  log->count.store(n + 1, std::memory_order_release);
  return true;
}

bool ShardedDelta::Insert(const Point& p) {
  Shard& s = shards_[ThisThreadShard()];
  return Append(&s, &s.inserts, p);
}

bool ShardedDelta::AddBaseTombstone(const Point& p) {
  Shard& s = shards_[ThisThreadShard()];
  return Append(&s, &s.tombstones, p);
}

ShardedDelta::RemoveResult ShardedDelta::RemoveInserted(const Point& p) {
  // Flagging must be mutually exclusive with Seal(): a collector that
  // sealed this delta reads dead flags while folding, so a flag landing
  // after the seal would be silently lost. Taking each shard's lock for
  // the (rare) remove path closes that window.
  for (Shard& s : shards_) {
    SpinGuard guard(&s);
    if (s.sealed) return RemoveResult::kSealed;
    const size_t n = s.inserts.count.load(std::memory_order_acquire);
    Chunk* c = s.inserts.head.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      if (i != 0 && i % kChunkCap == 0) {
        c = c->next.load(std::memory_order_acquire);
      }
      Entry& e = c->slots[i % kChunkCap];
      if (e.p.id == p.id && e.p.x == p.x && e.p.y == p.y &&
          e.dead.load(std::memory_order_acquire) == 0) {
        e.dead.store(1, std::memory_order_release);
        s.dead.fetch_add(1, std::memory_order_relaxed);
        return RemoveResult::kFlagged;
      }
    }
  }
  return RemoveResult::kNotFound;
}

template <typename Fn>
void ShardedDelta::ScanLog(const Log& log, Fn fn) const {
  const size_t n = log.count.load(std::memory_order_acquire);
  const Chunk* c = log.head.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (i != 0 && i % kChunkCap == 0) {
      c = c->next.load(std::memory_order_acquire);
    }
    fn(c->slots[i % kChunkCap]);
  }
}

bool ShardedDelta::IsTombstoned(const Point& p) const {
  for (const Shard& s : shards_) {
    bool hit = false;
    ScanLog(s.tombstones, [&](const Entry& e) {
      hit = hit || (e.p.id == p.id && e.p.x == p.x && e.p.y == p.y);
    });
    if (hit) return true;
  }
  return false;
}

bool ShardedDelta::ContainsInserted(const Point& p) const {
  for (const Shard& s : shards_) {
    bool hit = false;
    ScanLog(s.inserts, [&](const Entry& e) {
      hit = hit ||
            (e.p.id == p.id && e.p.x == p.x && e.p.y == p.y &&
             e.dead.load(std::memory_order_acquire) == 0);
    });
    if (hit) return true;
  }
  return false;
}

void ShardedDelta::ForEachInserted(
    const std::function<void(const Point&)>& fn) const {
  for (const Shard& s : shards_) {
    ScanLog(s.inserts, [&](const Entry& e) {
      if (e.dead.load(std::memory_order_acquire) == 0) fn(e.p);
    });
  }
}

void ShardedDelta::ForEachTombstone(
    const std::function<void(const Point&)>& fn) const {
  for (const Shard& s : shards_) {
    ScanLog(s.tombstones, [&](const Entry& e) { fn(e.p); });
  }
}

void ShardedDelta::CollectInserted(std::vector<Point>* out) const {
  ForEachInserted([out](const Point& p) { out->push_back(p); });
}

void ShardedDelta::Seal() {
  for (Shard& s : shards_) {
    SpinGuard guard(&s);
    s.sealed = true;
  }
}

size_t ShardedDelta::inserted_count() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    total += s.inserts.count.load(std::memory_order_acquire);
  }
  return total;
}

size_t ShardedDelta::dead_count() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    total += s.dead.load(std::memory_order_relaxed);
  }
  return total;
}

size_t ShardedDelta::tombstone_count() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    total += s.tombstones.count.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace concurrent
}  // namespace elsi
