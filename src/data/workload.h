#ifndef ELSI_DATA_WORKLOAD_H_
#define ELSI_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace elsi {

/// Draws `m` query points from the data set (with replacement), following the
/// data distribution as the paper's query workloads do.
std::vector<Point> SamplePointQueries(const Dataset& data, size_t m,
                                      uint64_t seed);

/// Generates `m` square window queries centred on data-distributed points.
/// `area_fraction` is the window area as a fraction of the data's bounding
/// box area (the paper sweeps 0.0006%..0.16%; 0.01% is the default setting).
std::vector<Rect> SampleWindowQueries(const Dataset& data, size_t m,
                                      double area_fraction, uint64_t seed);

/// kNN query centres, data-distributed.
std::vector<Point> SampleKnnQueries(const Dataset& data, size_t m,
                                    uint64_t seed);

/// Brute-force window query ground truth: every point of `data` inside `w`.
std::vector<Point> BruteForceWindow(const Dataset& data, const Rect& w);

/// Brute-force kNN ground truth: the k points of `data` closest to `q`
/// (ties broken by id for determinism), ordered by ascending distance.
std::vector<Point> BruteForceKnn(const Dataset& data, const Point& q, size_t k);

/// Recall of `result` against ground truth `truth`, matching points by id.
/// Returns 1.0 when truth is empty.
double Recall(const std::vector<Point>& result,
              const std::vector<Point>& truth);

}  // namespace elsi

#endif  // ELSI_DATA_WORKLOAD_H_
