#include "data/dataset.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "persist/io.h"

namespace elsi {

// The on-disk layout (u64 count, then x/y/id per point) predates the
// explicit little-endian encoders and is byte-identical to the old
// host-order writes on little-endian machines, so existing files load
// unchanged.
bool SaveBinary(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  if (!persist::PutU64(out, data.size())) return false;
  for (const Point& p : data) {
    if (!persist::PutF64(out, p.x) || !persist::PutF64(out, p.y) ||
        !persist::PutU64(out, p.id)) {
      return false;
    }
  }
  return static_cast<bool>(out);
}

bool LoadBinary(const std::string& path, Dataset* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t n = 0;
  if (!persist::GetU64(in, &n)) return false;
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Point p;
    if (!persist::GetF64(in, &p.x) || !persist::GetF64(in, &p.y) ||
        !persist::GetU64(in, &p.id)) {
      out->clear();
      return false;
    }
    out->push_back(p);
  }
  return true;
}

bool SaveCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "x,y,id\n";
  char buf[96];
  for (const Point& p : data) {
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%llu\n", p.x, p.y,
                  static_cast<unsigned long long>(p.id));
    out << buf;
  }
  return static_cast<bool>(out);
}

bool LoadCsv(const std::string& path, Dataset* out) {
  out->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("x,", 0) == 0) continue;  // Header.
    std::istringstream ss(line);
    Point p;
    char comma1 = 0;
    char comma2 = 0;
    if (!(ss >> p.x >> comma1 >> p.y >> comma2 >> p.id) || comma1 != ',' ||
        comma2 != ',') {
      out->clear();
      return false;
    }
    out->push_back(p);
  }
  return true;
}

}  // namespace elsi
