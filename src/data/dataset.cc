#include "data/dataset.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace elsi {

bool SaveBinary(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint64_t n = data.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Point& p : data) {
    out.write(reinterpret_cast<const char*>(&p.x), sizeof(p.x));
    out.write(reinterpret_cast<const char*>(&p.y), sizeof(p.y));
    out.write(reinterpret_cast<const char*>(&p.id), sizeof(p.id));
  }
  return static_cast<bool>(out);
}

bool LoadBinary(const std::string& path, Dataset* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) return false;
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Point p;
    in.read(reinterpret_cast<char*>(&p.x), sizeof(p.x));
    in.read(reinterpret_cast<char*>(&p.y), sizeof(p.y));
    in.read(reinterpret_cast<char*>(&p.id), sizeof(p.id));
    if (!in) {
      out->clear();
      return false;
    }
    out->push_back(p);
  }
  return true;
}

bool SaveCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "x,y,id\n";
  char buf[96];
  for (const Point& p : data) {
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%llu\n", p.x, p.y,
                  static_cast<unsigned long long>(p.id));
    out << buf;
  }
  return static_cast<bool>(out);
}

bool LoadCsv(const std::string& path, Dataset* out) {
  out->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("x,", 0) == 0) continue;  // Header.
    std::istringstream ss(line);
    Point p;
    char comma1 = 0;
    char comma2 = 0;
    if (!(ss >> p.x >> comma1 >> p.y >> comma2 >> p.id) || comma1 != ',' ||
        comma2 != ',') {
      out->clear();
      return false;
    }
    out->push_back(p);
  }
  return true;
}

}  // namespace elsi
