#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace elsi {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// Gaussian-mixture generator shared by the OSM-like and NYC-like families.
// `centers` clusters with power-law weights; each cluster is an anisotropic
// Gaussian rotated by a random angle; `background` fraction of points is
// uniform noise covering the whole square (roads/rivers between cities).
Dataset GenerateMixture(size_t n, int centers, double weight_alpha,
                        double sigma_lo, double sigma_hi, double anisotropy,
                        double background, uint64_t seed) {
  Rng rng(seed);
  struct Cluster {
    double cx, cy, sx, sy, cos_t, sin_t, weight;
  };
  std::vector<Cluster> clusters(centers);
  double total_weight = 0.0;
  for (int i = 0; i < centers; ++i) {
    Cluster& c = clusters[i];
    c.cx = rng.NextDouble(0.05, 0.95);
    c.cy = rng.NextDouble(0.05, 0.95);
    const double sigma = rng.NextDouble(sigma_lo, sigma_hi);
    c.sx = sigma;
    c.sy = sigma / rng.NextDouble(1.0, anisotropy);
    const double theta = rng.NextDouble(0.0, M_PI);
    c.cos_t = std::cos(theta);
    c.sin_t = std::sin(theta);
    // Zipf-like weights: a few dominant metropolises, a long tail of towns.
    c.weight = std::pow(static_cast<double>(i + 1), -weight_alpha);
    total_weight += c.weight;
  }
  std::vector<double> cum(centers);
  double acc = 0.0;
  for (int i = 0; i < centers; ++i) {
    acc += clusters[i].weight / total_weight;
    cum[i] = acc;
  }

  Dataset data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p;
    p.id = i;
    if (rng.NextDouble() < background) {
      p.x = rng.NextDouble();
      p.y = rng.NextDouble();
    } else {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cum.begin(), cum.end(), u);
      const Cluster& c = clusters[it - cum.begin()];
      const double gx = rng.NextGaussian() * c.sx;
      const double gy = rng.NextGaussian() * c.sy;
      p.x = Clamp01(c.cx + gx * c.cos_t - gy * c.sin_t);
      p.y = Clamp01(c.cy + gx * c.sin_t + gy * c.cos_t);
    }
    data.push_back(p);
  }
  return data;
}

// TPC-H lineitem's (quantity, shipdate) columns form an integer lattice:
// quantity is uniform over 1..50, shipdate spans ~7 years with light
// seasonality and is heavily duplicated. Coordinates are normalised to the
// unit square but keep their lattice structure (many exact ties).
Dataset GenerateTpchLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  constexpr int kQuantities = 50;
  constexpr int kDays = 2526;  // 1992-01-01 .. 1998-12-01, per the spec.
  Dataset data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int q = 1 + static_cast<int>(rng.NextBelow(kQuantities));
    // Seasonality: order volume swells mid-year; rejection-sample days.
    int day;
    for (;;) {
      day = static_cast<int>(rng.NextBelow(kDays));
      const double season =
          0.75 + 0.25 * std::sin(2.0 * M_PI * (day % 365) / 365.0);
      if (rng.NextDouble() < season) break;
    }
    Point p;
    p.x = static_cast<double>(q) / kQuantities;
    p.y = static_cast<double>(day) / kDays;
    p.id = i;
    data.push_back(p);
  }
  return data;
}

}  // namespace

std::string DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kUniform:
      return "Uniform";
    case DatasetKind::kSkewed:
      return "Skewed";
    case DatasetKind::kOsm1:
      return "OSM1";
    case DatasetKind::kOsm2:
      return "OSM2";
    case DatasetKind::kTpch:
      return "TPC-H";
    case DatasetKind::kNyc:
      return "NYC";
  }
  return "?";
}

Dataset GenerateUniform(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(Point{rng.NextDouble(), rng.NextDouble(), i});
  }
  return data;
}

Dataset GeneratePower(size_t n, double x_power, double y_power, uint64_t seed) {
  ELSI_CHECK_GE(x_power, 1.0);
  ELSI_CHECK_GE(y_power, 1.0);
  Rng rng(seed);
  Dataset data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back(Point{std::pow(rng.NextDouble(), x_power),
                         std::pow(rng.NextDouble(), y_power), i});
  }
  return data;
}

Dataset GenerateSkewed(size_t n, uint64_t seed, double s) {
  return GeneratePower(n, 1.0, s, seed);
}

Dataset GenerateDataset(DatasetKind kind, size_t n, uint64_t seed) {
  switch (kind) {
    case DatasetKind::kUniform:
      return GenerateUniform(n, seed);
    case DatasetKind::kSkewed:
      return GenerateSkewed(n, seed);
    case DatasetKind::kOsm1:
      // Continental extract: many towns, moderate anisotropy, wide spread.
      return GenerateMixture(n, /*centers=*/64, /*weight_alpha=*/1.1,
                             /*sigma_lo=*/0.004, /*sigma_hi=*/0.06,
                             /*anisotropy=*/3.0, /*background=*/0.10,
                             seed ^ 0x05a11ULL);
    case DatasetKind::kOsm2:
      // Denser extract: population concentrated along coasts -> fewer, larger
      // clusters and a thinner background.
      return GenerateMixture(n, /*centers=*/32, /*weight_alpha=*/1.4,
                             /*sigma_lo=*/0.003, /*sigma_hi=*/0.09,
                             /*anisotropy=*/5.0, /*background=*/0.06,
                             seed ^ 0x05a22ULL);
    case DatasetKind::kTpch:
      return GenerateTpchLike(n, seed ^ 0x79c4ULL);
    case DatasetKind::kNyc:
      // Taxi pickups: a handful of extremely dense, strongly elongated
      // clusters (avenues) and almost no background.
      return GenerateMixture(n, /*centers=*/12, /*weight_alpha=*/1.8,
                             /*sigma_lo=*/0.0015, /*sigma_hi=*/0.02,
                             /*anisotropy=*/8.0, /*background=*/0.02,
                             seed ^ 0x0c17cULL);
  }
  ELSI_CHECK(false) << "unknown dataset kind";
  return {};
}

}  // namespace elsi
