#ifndef ELSI_DATA_SYNTHETIC_H_
#define ELSI_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace elsi {

/// The six data-set families of the paper's evaluation (Sec. VII-A). The two
/// OSM extracts, TPC-H columns, and NYC taxi pickups are substituted by
/// synthetic generators that reproduce their distributional character (see
/// DESIGN.md); Uniform and Skewed follow the paper's exact construction.
enum class DatasetKind {
  kUniform,  // Uniform over the unit square.
  kSkewed,   // Uniform with y <- y^4 (HRR's construction).
  kOsm1,     // Clustered Gaussian mixture, continent-like (North America).
  kOsm2,     // Denser, differently-seeded mixture (South America).
  kTpch,     // Integer lattice: quantity x shipdate with seasonality.
  kNyc,      // Few extremely dense anisotropic street-grid clusters.
};

/// Short display name matching the paper's figures ("Uniform", "OSM1", ...).
std::string DatasetKindName(DatasetKind kind);

/// All six kinds in the paper's presentation order.
inline constexpr DatasetKind kAllDatasetKinds[] = {
    DatasetKind::kUniform, DatasetKind::kSkewed, DatasetKind::kOsm1,
    DatasetKind::kOsm2,    DatasetKind::kTpch,   DatasetKind::kNyc,
};

/// Generates `n` points of the given family. Deterministic in `seed`.
/// Ids are assigned 0..n-1 in generation order.
Dataset GenerateDataset(DatasetKind kind, size_t n, uint64_t seed = 42);

/// Uniform over the unit square.
Dataset GenerateUniform(size_t n, uint64_t seed);

/// Uniform with both coordinates raised to `power` >= 1 (power = 1 is
/// uniform; the paper's Skewed uses y-power 4 with x untouched, which is
/// GenerateSkewed). Used by the scorer trainer to dial in a target
/// dissimilarity dist(Du, D).
Dataset GeneratePower(size_t n, double x_power, double y_power, uint64_t seed);

/// The paper's Skewed: uniform with y <- y^4.
Dataset GenerateSkewed(size_t n, uint64_t seed, double s = 4.0);

}  // namespace elsi

#endif  // ELSI_DATA_SYNTHETIC_H_
