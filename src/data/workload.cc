#include "data/workload.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace elsi {

std::vector<Point> SamplePointQueries(const Dataset& data, size_t m,
                                      uint64_t seed) {
  ELSI_CHECK(!data.empty());
  Rng rng(seed);
  std::vector<Point> queries;
  queries.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    queries.push_back(data[rng.NextBelow(data.size())]);
  }
  return queries;
}

std::vector<Rect> SampleWindowQueries(const Dataset& data, size_t m,
                                      double area_fraction, uint64_t seed) {
  ELSI_CHECK(!data.empty());
  ELSI_CHECK_GT(area_fraction, 0.0);
  Rng rng(seed);
  const Rect domain = BoundingRect(data);
  const double side = std::sqrt(domain.Area() * area_fraction);
  std::vector<Rect> queries;
  queries.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const Point& c = data[rng.NextBelow(data.size())];
    queries.push_back(Rect::Of(c.x - side / 2, c.y - side / 2, c.x + side / 2,
                               c.y + side / 2));
  }
  return queries;
}

std::vector<Point> SampleKnnQueries(const Dataset& data, size_t m,
                                    uint64_t seed) {
  return SamplePointQueries(data, m, seed ^ 0x6b6e6eULL);
}

std::vector<Point> BruteForceWindow(const Dataset& data, const Rect& w) {
  std::vector<Point> result;
  for (const Point& p : data) {
    if (w.Contains(p)) result.push_back(p);
  }
  return result;
}

std::vector<Point> BruteForceKnn(const Dataset& data, const Point& q,
                                 size_t k) {
  std::vector<Point> pts = data;
  const size_t kk = std::min(k, pts.size());
  std::partial_sort(pts.begin(), pts.begin() + kk, pts.end(),
                    [&q](const Point& a, const Point& b) {
                      const double da = SquaredDistance(a, q);
                      const double db = SquaredDistance(b, q);
                      if (da != db) return da < db;
                      return a.id < b.id;
                    });
  pts.resize(kk);
  return pts;
}

double Recall(const std::vector<Point>& result,
              const std::vector<Point>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<uint64_t> got;
  got.reserve(result.size());
  for (const Point& p : result) got.insert(p.id);
  size_t hit = 0;
  for (const Point& p : truth) {
    if (got.count(p.id)) ++hit;
  }
  return static_cast<double>(hit) / truth.size();
}

}  // namespace elsi
