#ifndef ELSI_DATA_DATASET_H_
#define ELSI_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/geometry.h"

namespace elsi {

/// A data set is simply an owning vector of points; ids are assigned densely
/// at generation/load time and survive shuffles so deletions can refer to
/// stable identities.
using Dataset = std::vector<Point>;

/// Writes `data` as a little-endian binary file (x, y as float64, id as
/// uint64 per record). Returns false on IO failure.
bool SaveBinary(const Dataset& data, const std::string& path);

/// Reads a file written by SaveBinary. Returns false on IO failure or a
/// malformed (truncated) file; `out` is cleared first.
bool LoadBinary(const std::string& path, Dataset* out);

/// Writes "x,y,id" CSV rows with a header line. Returns false on IO failure.
bool SaveCsv(const Dataset& data, const std::string& path);

/// Reads CSV produced by SaveCsv (header optional). Returns false on IO
/// failure or malformed rows; `out` is cleared first.
bool LoadCsv(const std::string& path, Dataset* out);

}  // namespace elsi

#endif  // ELSI_DATA_DATASET_H_
