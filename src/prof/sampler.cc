#include "prof/sampler.h"

#include <cstdio>

#if ELSI_PROF_ENABLED

#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace elsi {
namespace prof {
namespace {

constexpr int kMaxDepth = 24;
constexpr uint32_t kMaxThreads = 64;
constexpr uint64_t kRingCapacity = 1024;

struct Sample {
  int32_t depth = 0;
  void* frames[kMaxDepth];
};

// Single-writer (the owning thread, in signal context) ring. `total` is
// only advanced after the slot is fully written; readers only run after
// Stop() has drained in-flight handlers, so no per-slot seqlock is needed.
struct SampleRing {
  std::atomic<uint64_t> total{0};
  Sample slots[kRingCapacity];
};

// ---- global sampler state -------------------------------------------------
// Rings are allocated once on first Start and never freed: a thread's claim
// (tls_ring) must stay valid for the thread's lifetime across Start/Stop
// cycles. The claim counter is monotonic for the same reason — resetting it
// could hand a ring already owned by a live thread to a new thread.
SampleRing* g_rings = nullptr;
std::atomic<uint32_t> g_ring_claim{0};
std::atomic<uint64_t> g_pool_exhausted_drops{0};
std::atomic<bool> g_active{false};

// Constant-initialized POD TLS: safe to read in signal context (no lazy
// construction; initial-exec style access, no __tls_get_addr malloc path).
thread_local SampleRing* tls_ring = nullptr;

std::atomic<bool> g_sampler_run{false};
std::thread* g_sampler_thread = nullptr;  // leaked between runs
pid_t g_sampler_tid = 0;
std::mutex g_control_mutex;  // serializes Start/Stop/collect

void SigprofHandler(int, siginfo_t*, void*) {
  // Async-signal-safe: atomics, POD TLS and backtrace() only (backtrace is
  // pre-warmed in Start so its one-time dlopen of libgcc happened already).
  if (!g_active.load(std::memory_order_acquire)) return;
  const int saved_errno = errno;
  SampleRing* ring = tls_ring;
  if (ring == nullptr) {
    const uint32_t idx = g_ring_claim.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxThreads) {
      g_pool_exhausted_drops.fetch_add(1, std::memory_order_relaxed);
      errno = saved_errno;
      return;
    }
    ring = &g_rings[idx];
    tls_ring = ring;
  }
  const uint64_t t = ring->total.load(std::memory_order_relaxed);
  Sample& slot = ring->slots[t % kRingCapacity];
  slot.depth = backtrace(slot.frames, kMaxDepth);
  ring->total.store(t + 1, std::memory_order_release);
  errno = saved_errno;
}

void SamplerLoop(int hz) {
  g_sampler_tid = static_cast<pid_t>(syscall(SYS_gettid));
  const pid_t pid = getpid();
  const long interval_ns = 1000000000L / (hz > 0 ? hz : 99);
  char task_dir[64];
  snprintf(task_dir, sizeof(task_dir), "/proc/%d/task", pid);

  while (g_sampler_run.load(std::memory_order_acquire)) {
    DIR* dir = opendir(task_dir);
    if (dir != nullptr) {
      struct dirent* ent;
      while ((ent = readdir(dir)) != nullptr) {
        if (ent->d_name[0] == '.') continue;
        const pid_t tid = static_cast<pid_t>(atol(ent->d_name));
        if (tid <= 0 || tid == g_sampler_tid) continue;
        syscall(SYS_tgkill, pid, tid, SIGPROF);
      }
      closedir(dir);
    }
    struct timespec ts = {0, interval_ns};
    nanosleep(&ts, nullptr);
  }
}

// Resets ring totals for a fresh run. Caller holds g_control_mutex and the
// handler is inactive (g_active false, signals drained).
void ResetRings() {
  if (g_rings == nullptr) return;
  const uint32_t claimed =
      std::min(g_ring_claim.load(std::memory_order_relaxed), kMaxThreads);
  for (uint32_t i = 0; i < claimed; ++i) {
    g_rings[i].total.store(0, std::memory_order_relaxed);
  }
  g_pool_exhausted_drops.store(0, std::memory_order_relaxed);
}

std::string Symbolize(void* pc, std::unordered_map<void*, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
      // Trim argument lists: flamegraph frames read better as
      // "elsi::ZmIndex::PointQuery" than the full signature, and semicolons
      // inside template args would corrupt the collapsed format anyway.
      const size_t paren = name.find('(');
      if (paren != std::string::npos) name.resize(paren);
    } else {
      name = info.dli_sname;
    }
    free(demangled);
  } else if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    // Static / anonymous-namespace function: module+offset.
    const char* base = strrchr(info.dli_fname, '/');
    char buf[128];
    snprintf(buf, sizeof(buf), "%s+0x%zx",
             base != nullptr ? base + 1 : info.dli_fname,
             reinterpret_cast<size_t>(pc) -
                 reinterpret_cast<size_t>(info.dli_fbase));
    name = buf;
  } else {
    char buf[32];
    snprintf(buf, sizeof(buf), "0x%zx", reinterpret_cast<size_t>(pc));
    name = buf;
  }
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == ' ') c = '_';
  }
  (*cache)[pc] = name;
  return name;
}

// The innermost captured frames belong to the signal machinery: frame 0 is
// the handler itself, then the kernel trampoline (__restore_rt). Cut
// through the trampoline when we can name it, else skip the first two.
int SignalFrameSkip(void* const* frames, int depth,
                    std::unordered_map<void*, std::string>* cache) {
  const int scan = std::min(depth, 5);
  for (int i = 0; i < scan; ++i) {
    if (Symbolize(frames[i], cache) == "__restore_rt") return i + 1;
  }
  return depth > 2 ? 2 : 0;
}

}  // namespace

CpuProfiler& CpuProfiler::Get() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

bool CpuProfiler::Start(const ProfilerOptions& options, std::string* error) {
  std::lock_guard<std::mutex> lock(g_control_mutex);
  if (g_sampler_run.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  if (g_rings == nullptr) {
    g_rings = new SampleRing[kMaxThreads];
  }
  ResetRings();

  // Pre-warm backtrace: its first call may dlopen libgcc_s (malloc, not
  // signal-safe), so take that hit here rather than inside the handler.
  void* warm[4];
  backtrace(warm, 4);

  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &SigprofHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    if (error != nullptr) *error = "sigaction(SIGPROF) failed";
    return false;
  }

  g_active.store(true, std::memory_order_release);
  g_sampler_run.store(true, std::memory_order_release);
  delete g_sampler_thread;
  g_sampler_thread = new std::thread(&SamplerLoop, options.hz);
  return true;
}

void CpuProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_control_mutex);
  if (!g_sampler_run.load(std::memory_order_relaxed)) return;
  g_sampler_run.store(false, std::memory_order_release);
  if (g_sampler_thread != nullptr && g_sampler_thread->joinable()) {
    g_sampler_thread->join();
  }
  // Signals already delivered may still be executing handlers; flip the
  // active flag first, then give stragglers a grace period before callers
  // read the rings.
  g_active.store(false, std::memory_order_release);
  struct timespec ts = {0, 2000000};  // 2 ms
  nanosleep(&ts, nullptr);
}

ProfilerStats CpuProfiler::Stats() const {
  ProfilerStats stats;
  stats.running = g_sampler_run.load(std::memory_order_relaxed);
  stats.dropped = g_pool_exhausted_drops.load(std::memory_order_relaxed);
  if (g_rings == nullptr) return stats;
  const uint32_t claimed =
      std::min(g_ring_claim.load(std::memory_order_relaxed), kMaxThreads);
  for (uint32_t i = 0; i < claimed; ++i) {
    const uint64_t total = g_rings[i].total.load(std::memory_order_acquire);
    if (total == 0) continue;
    ++stats.threads_seen;
    stats.samples += std::min(total, kRingCapacity);
    stats.dropped += total > kRingCapacity ? total - kRingCapacity : 0;
  }
  return stats;
}

std::string CpuProfiler::CollapsedStacks() const {
  std::lock_guard<std::mutex> lock(g_control_mutex);
  if (g_rings == nullptr) return "";

  std::unordered_map<void*, std::string> symbol_cache;
  // Aggregate identical stacks; map keeps output deterministic for a given
  // sample set.
  std::map<std::string, uint64_t> collapsed;
  const uint32_t claimed =
      std::min(g_ring_claim.load(std::memory_order_relaxed), kMaxThreads);
  for (uint32_t i = 0; i < claimed; ++i) {
    const SampleRing& ring = g_rings[i];
    const uint64_t total = ring.total.load(std::memory_order_acquire);
    const uint64_t n = std::min(total, kRingCapacity);
    for (uint64_t s = 0; s < n; ++s) {
      const Sample& sample = ring.slots[s];
      const int depth = std::min(sample.depth, kMaxDepth);
      if (depth <= 0) continue;
      const int skip =
          SignalFrameSkip(sample.frames, depth, &symbol_cache);
      if (depth <= skip) continue;
      // Collapsed format is root-first; backtrace() is leaf-first.
      std::string line;
      for (int f = depth - 1; f >= skip; --f) {
        if (!line.empty()) line += ';';
        line += Symbolize(sample.frames[f], &symbol_cache);
      }
      ++collapsed[line];
    }
  }
  if (collapsed.empty()) return "";

  std::vector<std::pair<uint64_t, const std::string*>> order;
  order.reserve(collapsed.size());
  for (const auto& [stack, count] : collapsed) {
    order.emplace_back(count, &stack);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::string out;
  char buf[32];
  for (const auto& [count, stack] : order) {
    out += *stack;
    snprintf(buf, sizeof(buf), " %llu\n",
             static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_ENABLED

// ---- shared helpers (built in both modes) ---------------------------------

#include <chrono>
#include <thread>

namespace elsi {
namespace prof {

std::string ProfileForSeconds(double seconds, const ProfilerOptions& options,
                              std::string* error) {
  if (error != nullptr) error->clear();
  std::string start_error;
  if (!CpuProfiler::Get().Start(options, &start_error)) {
    if (error != nullptr) *error = start_error;
    return "";
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  CpuProfiler::Get().Stop();
  return CpuProfiler::Get().CollapsedStacks();
}

bool WriteCollapsedProfile(const std::string& path, std::string* error) {
  const std::string content = CpuProfiler::Get().CollapsedStacks();
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp;
    return false;
  }
  const size_t n = fwrite(content.data(), 1, content.size(), f);
  const bool write_ok = n == content.size() && fclose(f) == 0;
  if (!write_ok) {
    if (error != nullptr) *error = "short write to " + tmp;
    remove(tmp.c_str());
    return false;
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename to " + path + " failed";
    remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace prof
}  // namespace elsi
