#include "prof/proc_stats.h"

#if ELSI_PROF_ENABLED

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

#include "obs/metrics.h"

namespace elsi {
namespace prof {

ProcStats ReadProcStats() {
  ProcStats stats;
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.available = true;
    stats.peak_rss_bytes = static_cast<uint64_t>(usage.ru_maxrss) * 1024;
    stats.minor_faults = static_cast<uint64_t>(usage.ru_minflt);
    stats.major_faults = static_cast<uint64_t>(usage.ru_majflt);
    stats.vol_ctx_switches = static_cast<uint64_t>(usage.ru_nvcsw);
    stats.invol_ctx_switches = static_cast<uint64_t>(usage.ru_nivcsw);
  }
  FILE* f = fopen("/proc/self/statm", "r");
  if (f != nullptr) {
    unsigned long long vm_pages = 0, rss_pages = 0;
    if (fscanf(f, "%llu %llu", &vm_pages, &rss_pages) == 2) {
      stats.available = true;
      const uint64_t page = static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
      stats.vm_bytes = vm_pages * page;
      stats.rss_bytes = rss_pages * page;
    }
    fclose(f);
  }
  return stats;
}

void RefreshProcStats() {
  const ProcStats s = ReadProcStats();
  if (!s.available) return;
  obs::GetGauge("proc.rss_bytes").Set(static_cast<int64_t>(s.rss_bytes));
  obs::GetGauge("proc.vm_bytes").Set(static_cast<int64_t>(s.vm_bytes));
  obs::GetGauge("proc.peak_rss_bytes")
      .Set(static_cast<int64_t>(s.peak_rss_bytes));
  obs::GetGauge("proc.minor_faults").Set(static_cast<int64_t>(s.minor_faults));
  obs::GetGauge("proc.major_faults").Set(static_cast<int64_t>(s.major_faults));
  obs::GetGauge("proc.voluntary_ctx_switches")
      .Set(static_cast<int64_t>(s.vol_ctx_switches));
  obs::GetGauge("proc.involuntary_ctx_switches")
      .Set(static_cast<int64_t>(s.invol_ctx_switches));
}

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_ENABLED
