#ifndef ELSI_PROF_SAMPLER_H_
#define ELSI_PROF_SAMPLER_H_

/// Signal-driven sampling wall-clock CPU profiler.
///
/// A sampler thread wakes at the configured rate, enumerates
/// /proc/self/task, and delivers SIGPROF to every thread via tgkill. The
/// async-signal-safe handler writes a backtrace() into the calling thread's
/// pre-claimed slot ring — no locks, no allocation, no TLS construction in
/// signal context (rings come from a pool allocated up front; the
/// thread-local ring pointer is a constant-initialized POD). Symbolization
/// (dladdr + __cxa_demangle) happens at collection time, never in the
/// handler, and renders the standard collapsed-stack format
/// ("main;Query;Scan 42" per line) consumable by flamegraph tooling.
///
/// Needs no perf_event_open, so it works on perf-denied hosts; that is the
/// documented clock-only fallback. With -DELSI_PROF=OFF, Start() returns
/// false with reason "profiling compiled out".

#include <cstdint>
#include <string>

#include "prof/prof.h"

namespace elsi {
namespace prof {

struct ProfilerOptions {
  int hz = 99;  // sampling frequency (off-round to avoid lockstep bias)
};

struct ProfilerStats {
  bool running = false;
  uint64_t samples = 0;      // samples captured in the current/last run
  uint64_t dropped = 0;      // lost to ring overwrite or pool exhaustion
  uint64_t threads_seen = 0; // distinct threads that recorded >= 1 sample
};

#if ELSI_PROF_ENABLED

class CpuProfiler {
 public:
  static CpuProfiler& Get();

  /// Starts sampling. Returns false (with *error set) if already running.
  /// The first Start allocates the sample rings (~13 MB, kept for process
  /// lifetime) and installs the SIGPROF handler.
  bool Start(const ProfilerOptions& options, std::string* error);

  /// Stops the sampler thread and drains in-flight signals. Samples stay
  /// available until the next Start.
  void Stop();

  ProfilerStats Stats() const;

  /// Renders captured samples as collapsed stacks, aggregated across
  /// threads, one "frame;frame;leaf count" line each, most frequent first.
  /// Empty string when no samples were captured. Call while stopped.
  std::string CollapsedStacks() const;

 private:
  CpuProfiler() = default;
};

#else  // !ELSI_PROF_ENABLED

class CpuProfiler {
 public:
  static CpuProfiler& Get() {
    static CpuProfiler profiler;
    return profiler;
  }
  bool Start(const ProfilerOptions&, std::string* error) {
    if (error != nullptr) *error = "profiling compiled out (-DELSI_PROF=OFF)";
    return false;
  }
  void Stop() {}
  ProfilerStats Stats() const { return {}; }
  std::string CollapsedStacks() const { return ""; }
};

#endif  // ELSI_PROF_ENABLED

/// Convenience wrapper for the HTTP endpoint and the CLI: run the profiler
/// for `seconds` (blocking), return collapsed stacks. On failure returns ""
/// and sets *error (already running, compiled out, ...). Zero samples is
/// not an error — the caller distinguishes via *error's emptiness.
std::string ProfileForSeconds(double seconds, const ProfilerOptions& options,
                              std::string* error);

/// Writes CollapsedStacks() of the last run to `path` (tmp+rename). Used by
/// benches (ELSI_BENCH_PROFILE_OUT) and `elsi_cli profile --out`.
bool WriteCollapsedProfile(const std::string& path, std::string* error);

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_SAMPLER_H_
