#include "prof/span_costs.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

#if ELSI_PROF_ENABLED

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace elsi {
namespace prof {
namespace {

constexpr int kMaxNestDepth = 32;

// One span name's accumulators. Lives forever in the leaked table below, so
// per-thread caches may hold raw pointers.
struct Entry {
  std::string name;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> wall_ns{0};
  std::atomic<uint64_t> cycles{0};
  std::atomic<uint64_t> instructions{0};
  std::atomic<uint64_t> llc_misses{0};
  std::atomic<uint64_t> branch_misses{0};
  std::atomic<uint64_t> task_clock_ns{0};
  std::atomic<uint64_t> page_faults{0};
  std::atomic<uint64_t> ctx_switches{0};
  std::atomic<bool> hardware{false};
};

struct Table {
  mutable std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries;
  std::atomic<bool> enabled{false};
};

Table& GetTable() {
  static Table* table = new Table();  // leaked: threads may outlive main
  return *table;
}

Entry* ResolveEntry(const char* name) {
  Table& table = GetTable();
  std::lock_guard<std::mutex> lock(table.mutex);
  std::unique_ptr<Entry>& slot = table.entries[name];
  if (slot == nullptr) {
    slot.reset(new Entry());
    slot->name = name;
  }
  return slot.get();
}

// Per-thread state: a lazily opened counter group, the nesting stack of
// entry snapshots, and a name-pointer keyed entry cache (span names are
// string literals, so the pointer is a stable identity).
struct ThreadState {
  std::unique_ptr<CounterGroup> group;
  bool group_probed = false;
  CounterValues stack[kMaxNestDepth];
  int depth = 0;
  std::unordered_map<const void*, Entry*> cache;
};

// Raw pointer + leaked states, same lifetime pattern as obs::TraceRegistry:
// hooks can fire during late thread teardown, when a destructing
// thread_local would already be gone.
thread_local ThreadState* tls_state = nullptr;

ThreadState* GetThreadState() {
  if (tls_state == nullptr) {
    static std::mutex mutex;
    static std::vector<std::unique_ptr<ThreadState>>* states =
        new std::vector<std::unique_ptr<ThreadState>>();
    auto state = std::make_unique<ThreadState>();
    tls_state = state.get();
    std::lock_guard<std::mutex> lock(mutex);
    states->push_back(std::move(state));
  }
  return tls_state;
}

uint64_t EnterHook(const char* name) {
  (void)name;
  ThreadState* state = GetThreadState();
  if (state->depth >= kMaxNestDepth) return obs::kSpanHookNoToken;
  if (!state->group_probed) {
    state->group_probed = true;
    state->group = CounterGroup::Open(CounterGroup::Scope::kThisThread);
  }
  CounterValues& slot = state->stack[state->depth];
  slot = CounterValues{};
  if (state->group != nullptr) state->group->Read(&slot);
  return static_cast<uint64_t>(state->depth++);
}

void ExitHook(const char* name, uint64_t token, uint64_t dur_ns) {
  ThreadState* state = GetThreadState();
  const int depth = static_cast<int>(token);
  if (depth < 0 || depth >= state->depth) return;  // unbalanced; drop
  state->depth = depth;

  CounterValues delta;
  if (state->group != nullptr) {
    CounterValues now;
    if (state->group->Read(&now)) {
      delta = now.DeltaSince(state->stack[depth]);
    }
  }

  Entry*& cached = state->cache[static_cast<const void*>(name)];
  if (cached == nullptr) cached = ResolveEntry(name);
  Entry& e = *cached;
  e.count.fetch_add(1, std::memory_order_relaxed);
  e.wall_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  if (delta.hardware) {
    e.hardware.store(true, std::memory_order_relaxed);
    e.cycles.fetch_add(delta.cycles, std::memory_order_relaxed);
    e.instructions.fetch_add(delta.instructions, std::memory_order_relaxed);
    e.llc_misses.fetch_add(delta.llc_misses, std::memory_order_relaxed);
    e.branch_misses.fetch_add(delta.branch_misses, std::memory_order_relaxed);
  } else {
    e.task_clock_ns.fetch_add(delta.task_clock_ns, std::memory_order_relaxed);
    e.page_faults.fetch_add(delta.page_faults, std::memory_order_relaxed);
    e.ctx_switches.fetch_add(delta.ctx_switches, std::memory_order_relaxed);
  }
}

}  // namespace

SpanCostRegistry& SpanCostRegistry::Get() {
  static SpanCostRegistry* registry = new SpanCostRegistry();
  return *registry;
}

bool SpanCostRegistry::Enable() {
  Table& table = GetTable();
  if (!table.enabled.exchange(true)) {
    obs::SpanHooks hooks;
    hooks.enter = &EnterHook;
    hooks.exit = &ExitHook;
    obs::SetSpanHooks(hooks);
  }
  return true;
}

void SpanCostRegistry::Disable() {
  Table& table = GetTable();
  if (table.enabled.exchange(false)) {
    obs::SetSpanHooks(obs::SpanHooks{});
  }
}

bool SpanCostRegistry::enabled() const {
  return GetTable().enabled.load(std::memory_order_relaxed);
}

std::vector<SpanCost> SpanCostRegistry::Snapshot() const {
  Table& table = GetTable();
  std::vector<SpanCost> out;
  std::lock_guard<std::mutex> lock(table.mutex);
  out.reserve(table.entries.size());
  for (const auto& [name, entry] : table.entries) {
    SpanCost cost;
    cost.name = name;
    cost.count = entry->count.load(std::memory_order_relaxed);
    cost.wall_ns = entry->wall_ns.load(std::memory_order_relaxed);
    cost.totals.hardware = entry->hardware.load(std::memory_order_relaxed);
    cost.totals.cycles = entry->cycles.load(std::memory_order_relaxed);
    cost.totals.instructions =
        entry->instructions.load(std::memory_order_relaxed);
    cost.totals.llc_misses = entry->llc_misses.load(std::memory_order_relaxed);
    cost.totals.branch_misses =
        entry->branch_misses.load(std::memory_order_relaxed);
    cost.totals.task_clock_ns =
        entry->task_clock_ns.load(std::memory_order_relaxed);
    cost.totals.page_faults =
        entry->page_faults.load(std::memory_order_relaxed);
    cost.totals.ctx_switches =
        entry->ctx_switches.load(std::memory_order_relaxed);
    out.push_back(std::move(cost));
  }
  std::sort(out.begin(), out.end(),
            [](const SpanCost& a, const SpanCost& b) { return a.name < b.name; });
  return out;
}

void SpanCostRegistry::Clear() {
  Table& table = GetTable();
  std::lock_guard<std::mutex> lock(table.mutex);
  for (auto& [name, entry] : table.entries) {
    entry->count.store(0, std::memory_order_relaxed);
    entry->wall_ns.store(0, std::memory_order_relaxed);
    entry->cycles.store(0, std::memory_order_relaxed);
    entry->instructions.store(0, std::memory_order_relaxed);
    entry->llc_misses.store(0, std::memory_order_relaxed);
    entry->branch_misses.store(0, std::memory_order_relaxed);
    entry->task_clock_ns.store(0, std::memory_order_relaxed);
    entry->page_faults.store(0, std::memory_order_relaxed);
    entry->ctx_switches.store(0, std::memory_order_relaxed);
    entry->hardware.store(false, std::memory_order_relaxed);
  }
}

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_ENABLED

namespace elsi {
namespace prof {

std::string SpanCostsJson(const std::vector<SpanCost>& costs) {
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (const SpanCost& c : costs) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + c.name + "\"";
    snprintf(buf, sizeof(buf), ",\"count\":%llu,\"wall_ms\":%.3f",
             static_cast<unsigned long long>(c.count),
             static_cast<double>(c.wall_ns) / 1e6);
    out += buf;
    if (c.totals.hardware) {
      snprintf(buf, sizeof(buf),
               ",\"counters\":\"hardware\",\"ipc\":%.3f"
               ",\"llc_miss_per_call\":%.1f,\"branch_miss_per_call\":%.1f"
               ",\"cycles\":%llu,\"instructions\":%llu",
               c.Ipc(), c.LlcMissPerCall(), c.BranchMissPerCall(),
               static_cast<unsigned long long>(c.totals.cycles),
               static_cast<unsigned long long>(c.totals.instructions));
    } else {
      snprintf(buf, sizeof(buf),
               ",\"counters\":\"software\",\"task_clock_ms\":%.3f"
               ",\"page_faults\":%llu,\"ctx_switches\":%llu",
               static_cast<double>(c.totals.task_clock_ns) / 1e6,
               static_cast<unsigned long long>(c.totals.page_faults),
               static_cast<unsigned long long>(c.totals.ctx_switches));
    }
    out += buf;
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace prof
}  // namespace elsi
