#ifndef ELSI_PROF_PROC_STATS_H_
#define ELSI_PROF_PROC_STATS_H_

/// Process resource telemetry: RSS / peak RSS / page faults / context
/// switches, sourced from getrusage(RUSAGE_SELF) and /proc/self/statm.
/// Refreshed on every metrics scrape (RefreshProcStats is called from the
/// HTTP exporter's derived-gauge hook) and published as proc.* gauges plus
/// a "proc" block in /varz and /healthz.

#include <cstdint>

#include "prof/prof.h"

namespace elsi {
namespace prof {

struct ProcStats {
  uint64_t rss_bytes = 0;       // current resident set (/proc/self/statm)
  uint64_t vm_bytes = 0;        // current virtual size (/proc/self/statm)
  uint64_t peak_rss_bytes = 0;  // ru_maxrss
  uint64_t minor_faults = 0;    // ru_minflt
  uint64_t major_faults = 0;    // ru_majflt
  uint64_t vol_ctx_switches = 0;    // ru_nvcsw
  uint64_t invol_ctx_switches = 0;  // ru_nivcsw
  bool available = false;
};

#if ELSI_PROF_ENABLED

/// Reads current process stats. `available` is false only if both sources
/// failed (never expected on Linux).
ProcStats ReadProcStats();

/// ReadProcStats + publish into the proc.* obs gauges.
void RefreshProcStats();

#else  // !ELSI_PROF_ENABLED

inline ProcStats ReadProcStats() { return {}; }
inline void RefreshProcStats() {}

#endif  // ELSI_PROF_ENABLED

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_PROC_STATS_H_
