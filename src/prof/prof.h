#ifndef ELSI_PROF_PROF_H_
#define ELSI_PROF_PROF_H_

/// elsi::prof — hardware performance counters, a sampling wall-clock CPU
/// profiler with collapsed-stack (flamegraph) export, and per-span cost
/// attribution. See DESIGN.md, "Profiling & hardware counters".
///
/// Two independent degradation axes:
///
///  * Compile time: -DELSI_PROF=OFF defines ELSI_PROF_ENABLED=0 and every
///    API in src/prof/ becomes an inline no-op stub (same contract as
///    ELSI_OBS=OFF). Call sites build unchanged.
///
///  * Runtime: when perf_event_open is denied or absent (EPERM/EACCES under
///    perf_event_paranoid, ENOSYS/ENOENT without a PMU — the common case in
///    containers and VMs), counter APIs stay callable and report
///    CounterMode::kUnavailable with an explanatory reason; the clock-only
///    sampling profiler keeps working because it needs no perf events at
///    all, only setitimer-style signals and backtrace().

#ifndef ELSI_PROF_ENABLED
#define ELSI_PROF_ENABLED 1
#endif

#endif  // ELSI_PROF_PROF_H_
