#ifndef ELSI_PROF_COUNTERS_H_
#define ELSI_PROF_COUNTERS_H_

/// perf_event_open counter groups with a three-tier degradation chain:
///
///   hardware  — cycles / instructions / LLC-misses / branch-misses,
///               opened as one PERF_FORMAT_GROUP so all four are scheduled
///               on the PMU together and a single read() snapshots them
///               coherently (multiplex-scaled via TIME_ENABLED/RUNNING);
///   software  — task-clock / page-faults / context-switches, used when the
///               PMU refuses hardware events (VMs without vPMU); exercises
///               the same group-read path;
///   unavailable — perf_event_open denied outright (EPERM/ENOSYS/ENOENT) or
///               ELSI_PROF_DISABLE_PERF=1; Open() returns nullptr and
///               CounterStatus() carries the reason.
///
/// Scopes: kThisThread counts the calling thread only (grouped read, used
/// for per-span attribution); kProcessTree sets inherit=1 so counts roll up
/// from every thread created *after* the open — inherit is incompatible
/// with PERF_FORMAT_GROUP, so that scope opens independent fds and reads
/// them one by one (used for whole-phase bench columns).
///
/// All events set exclude_kernel/exclude_hv, so unprivileged processes can
/// open them at perf_event_paranoid <= 2.

#include <cstdint>
#include <memory>
#include <string>

#include "prof/prof.h"

namespace elsi {
namespace prof {

enum class CounterMode {
  kUnavailable = 0,
  kSoftware = 1,
  kHardware = 2,
};

inline const char* CounterModeName(CounterMode mode) {
  switch (mode) {
    case CounterMode::kHardware:
      return "hardware";
    case CounterMode::kSoftware:
      return "software";
    case CounterMode::kUnavailable:
      return "unavailable";
  }
  return "unavailable";
}

/// One coherent snapshot of a group's counts, multiplex-scaled to the
/// group's enabled time. Hardware and software fields are mutually
/// exclusive per group; `hardware` says which half is live.
struct CounterValues {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;
  uint64_t page_faults = 0;
  uint64_t ctx_switches = 0;
  bool hardware = false;

  /// this - start, clamped at zero per field (multiplex scaling can make
  /// successive reads non-monotonic by a rounding hair).
  CounterValues DeltaSince(const CounterValues& start) const {
    const auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
    CounterValues d;
    d.hardware = hardware;
    d.cycles = sub(cycles, start.cycles);
    d.instructions = sub(instructions, start.instructions);
    d.llc_misses = sub(llc_misses, start.llc_misses);
    d.branch_misses = sub(branch_misses, start.branch_misses);
    d.task_clock_ns = sub(task_clock_ns, start.task_clock_ns);
    d.page_faults = sub(page_faults, start.page_faults);
    d.ctx_switches = sub(ctx_switches, start.ctx_switches);
    return d;
  }

  /// Instructions per cycle; 0 when cycles is 0 or counters are software.
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

/// Events per op, 0 when ops is 0.
inline double PerOp(uint64_t events, uint64_t ops) {
  return ops == 0 ? 0.0
                  : static_cast<double>(events) / static_cast<double>(ops);
}

#if ELSI_PROF_ENABLED

class CounterGroup {
 public:
  enum class Scope {
    kThisThread,   // calling thread only, grouped single-read()
    kProcessTree,  // inherit=1: this thread + descendants created after Open
  };

  /// Opens the best available tier, already enabled and counting. Returns
  /// nullptr when counters are unavailable (reason via CounterStatus()).
  static std::unique_ptr<CounterGroup> Open(Scope scope);

  ~CounterGroup();
  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  /// Snapshots cumulative counts since Open. Returns false on read error
  /// (out is zeroed).
  bool Read(CounterValues* out) const;

  CounterMode mode() const { return mode_; }

 private:
  CounterGroup() = default;

  static constexpr int kMaxEvents = 4;
  CounterMode mode_ = CounterMode::kUnavailable;
  Scope scope_ = Scope::kThisThread;
  int fds_[kMaxEvents] = {-1, -1, -1, -1};
  int n_events_ = 0;
};

/// Probes the degradation tier by opening (and closing) a this-thread
/// group. Re-probes on every call — cheap, and keeps the
/// ELSI_PROF_DISABLE_PERF override testable within one process.
CounterMode ProbeCounterMode();

/// Human-readable availability line for /varz, /healthz and the CLI, e.g.
/// "hardware", "software (hardware PMU: perf_event_open: ENOENT)" or
/// "unavailable: perf_event_open: EPERM (perf_event_paranoid?)".
std::string CounterStatus();

#else  // !ELSI_PROF_ENABLED

class CounterGroup {
 public:
  enum class Scope { kThisThread, kProcessTree };
  static std::unique_ptr<CounterGroup> Open(Scope) { return nullptr; }
  bool Read(CounterValues* out) const {
    *out = CounterValues{};
    return false;
  }
  CounterMode mode() const { return CounterMode::kUnavailable; }
};

inline CounterMode ProbeCounterMode() { return CounterMode::kUnavailable; }
inline std::string CounterStatus() {
  return "profiling compiled out (-DELSI_PROF=OFF)";
}

#endif  // ELSI_PROF_ENABLED

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_COUNTERS_H_
