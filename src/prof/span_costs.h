#ifndef ELSI_PROF_SPAN_COSTS_H_
#define ELSI_PROF_SPAN_COSTS_H_

/// Per-span cost attribution: when enabled, every ELSI_TRACE_SPAN also
/// reads the calling thread's counter group on entry and exit and
/// accumulates the delta (plus wall time and call count) into a per-name
/// table. Derived rates — IPC, LLC misses per call — come out in /varz,
/// `elsi_cli profile` and SpanCostsJson().
///
/// Attribution is off by default (spans then cost one relaxed pointer load)
/// and is switched on via SpanCostRegistry::Get().Enable(), which installs
/// obs::SpanHooks. With counters unavailable the table still accumulates
/// call counts and wall time (clock-only attribution). Per-thread counter
/// groups are opened lazily on a thread's first span and kept for the
/// thread's lifetime, mirroring the obs trace-buffer registry.

#include <cstdint>
#include <string>
#include <vector>

#include "prof/counters.h"
#include "prof/prof.h"

namespace elsi {
namespace prof {

/// Accumulated cost of one span name across all threads since Clear().
struct SpanCost {
  std::string name;
  uint64_t count = 0;
  uint64_t wall_ns = 0;
  CounterValues totals;  // hardware or software tier, or all-zero

  double Ipc() const { return totals.Ipc(); }
  double LlcMissPerCall() const { return PerOp(totals.llc_misses, count); }
  double BranchMissPerCall() const {
    return PerOp(totals.branch_misses, count);
  }
};

#if ELSI_PROF_ENABLED

class SpanCostRegistry {
 public:
  static SpanCostRegistry& Get();

  /// Installs the obs span hooks. Idempotent. Returns true (attribution is
  /// always possible — worst case clock-only).
  bool Enable();
  void Disable();
  bool enabled() const;

  /// Current table, sorted by name. Totals are monotone between Clear()s.
  std::vector<SpanCost> Snapshot() const;
  void Clear();

 private:
  SpanCostRegistry() = default;
};

#else  // !ELSI_PROF_ENABLED

class SpanCostRegistry {
 public:
  static SpanCostRegistry& Get() {
    static SpanCostRegistry registry;
    return registry;
  }
  bool Enable() { return false; }
  void Disable() {}
  bool enabled() const { return false; }
  std::vector<SpanCost> Snapshot() const { return {}; }
  void Clear() {}
};

#endif  // ELSI_PROF_ENABLED

/// JSON array of span costs with derived rates, e.g.
/// [{"name":"query.chunk","count":12,"wall_ms":3.1,"ipc":1.82,...},...].
std::string SpanCostsJson(const std::vector<SpanCost>& costs);

}  // namespace prof
}  // namespace elsi

#endif  // ELSI_PROF_SPAN_COSTS_H_
