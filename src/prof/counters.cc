#include "prof/counters.h"

#if ELSI_PROF_ENABLED

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace elsi {
namespace prof {
namespace {

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Order matters: it is the field order of CounterValues' hardware and
// software halves respectively.
constexpr EventSpec kHardwareEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},  // LLC misses
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};
constexpr EventSpec kSoftwareEvents[] = {
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},  // reads in ns
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
};
constexpr int kNumHardware = 4;
constexpr int kNumSoftware = 3;

const char* ErrnoName(int err) {
  switch (err) {
    case EPERM:
      return "EPERM (perf_event_paranoid?)";
    case EACCES:
      return "EACCES (perf_event_paranoid?)";
    case ENOSYS:
      return "ENOSYS (kernel without perf_event_open)";
    case ENOENT:
      return "ENOENT (event not supported; no PMU?)";
    case ENODEV:
      return "ENODEV (no PMU)";
    case EOPNOTSUPP:
      return "EOPNOTSUPP (event not supported)";
    default:
      return strerror(err);
  }
}

bool PerfDisabledByEnv() {
  const char* v = std::getenv("ELSI_PROF_DISABLE_PERF");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

int OpenEvent(const EventSpec& spec, int group_fd, bool inherit,
              uint64_t read_format) {
  perf_event_attr attr;
  memset(&attr, 0, sizeof(attr));
  attr.type = spec.type;
  attr.size = sizeof(attr);
  attr.config = spec.config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts disabled
  attr.inherit = inherit ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = read_format;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

// Scales a raw count by enabled/running time to correct for PMU
// multiplexing; running == 0 means the event never got scheduled.
uint64_t Scale(uint64_t value, uint64_t enabled, uint64_t running) {
  if (running == 0 || enabled == running) return value;
  const double ratio =
      static_cast<double>(enabled) / static_cast<double>(running);
  return static_cast<uint64_t>(static_cast<double>(value) * ratio);
}

void StoreTier(CounterValues* out, bool hardware, const uint64_t* vals) {
  out->hardware = hardware;
  if (hardware) {
    out->cycles = vals[0];
    out->instructions = vals[1];
    out->llc_misses = vals[2];
    out->branch_misses = vals[3];
  } else {
    out->task_clock_ns = vals[0];
    out->page_faults = vals[1];
    out->ctx_switches = vals[2];
  }
}

// Last failure reason per tier, for CounterStatus(). Written by Open probes;
// benign race (all writers store the same kind of value).
std::string& HardwareFailReason() {
  static std::string* reason = new std::string();
  return *reason;
}
std::string& SoftwareFailReason() {
  static std::string* reason = new std::string();
  return *reason;
}

}  // namespace

std::unique_ptr<CounterGroup> CounterGroup::Open(Scope scope) {
  if (PerfDisabledByEnv()) {
    HardwareFailReason() = "disabled by ELSI_PROF_DISABLE_PERF";
    SoftwareFailReason() = "disabled by ELSI_PROF_DISABLE_PERF";
    return nullptr;
  }
  const bool inherit = scope == Scope::kProcessTree;
  // inherit=1 cannot be combined with PERF_FORMAT_GROUP (the kernel rejects
  // group reads of inherited events), so process-tree groups are plain
  // per-event fds read individually.
  const uint64_t read_format =
      (inherit ? 0 : PERF_FORMAT_GROUP) | PERF_FORMAT_TOTAL_TIME_ENABLED |
      PERF_FORMAT_TOTAL_TIME_RUNNING;

  struct Tier {
    const EventSpec* events;
    int n;
    CounterMode mode;
    std::string* fail_reason;
  };
  const Tier tiers[] = {
      {kHardwareEvents, kNumHardware, CounterMode::kHardware,
       &HardwareFailReason()},
      {kSoftwareEvents, kNumSoftware, CounterMode::kSoftware,
       &SoftwareFailReason()},
  };

  for (const Tier& tier : tiers) {
    std::unique_ptr<CounterGroup> group(new CounterGroup());
    group->mode_ = tier.mode;
    group->scope_ = scope;
    bool ok = true;
    for (int i = 0; i < tier.n; ++i) {
      const int leader = (inherit || i == 0) ? -1 : group->fds_[0];
      const int fd = OpenEvent(tier.events[i], leader, inherit, read_format);
      if (fd < 0) {
        *tier.fail_reason =
            std::string("perf_event_open: ") + ErrnoName(errno);
        ok = false;
        break;
      }
      group->fds_[group->n_events_++] = fd;
    }
    if (!ok) continue;  // close fds via dtor, try next tier
    tier.fail_reason->clear();
    for (int i = 0; i < group->n_events_; ++i) {
      // Grouped mode: one ENABLE on the leader starts the whole group.
      // Inherit mode: every fd is its own leader and needs its own ENABLE.
      if (!inherit && i > 0) break;
      ioctl(group->fds_[i], PERF_EVENT_IOC_ENABLE,
            inherit ? 0 : PERF_IOC_FLAG_GROUP);
    }
    return group;
  }
  return nullptr;
}

CounterGroup::~CounterGroup() {
  for (int i = 0; i < n_events_; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

bool CounterGroup::Read(CounterValues* out) const {
  *out = CounterValues{};
  if (n_events_ == 0) return false;
  uint64_t scaled[kMaxEvents] = {0, 0, 0, 0};

  if (scope_ == Scope::kThisThread) {
    // PERF_FORMAT_GROUP layout: { nr, time_enabled, time_running, value[nr] }.
    uint64_t buf[3 + kMaxEvents];
    const ssize_t want =
        static_cast<ssize_t>((3 + n_events_) * sizeof(uint64_t));
    if (read(fds_[0], buf, want) != want) return false;
    if (buf[0] != static_cast<uint64_t>(n_events_)) return false;
    for (int i = 0; i < n_events_; ++i) {
      scaled[i] = Scale(buf[3 + i], buf[1], buf[2]);
    }
  } else {
    // Independent inherited fds: { value, time_enabled, time_running } each.
    for (int i = 0; i < n_events_; ++i) {
      uint64_t buf[3];
      if (read(fds_[i], buf, sizeof(buf)) != sizeof(buf)) return false;
      scaled[i] = Scale(buf[0], buf[1], buf[2]);
    }
  }
  StoreTier(out, mode_ == CounterMode::kHardware, scaled);
  return true;
}

CounterMode ProbeCounterMode() {
  std::unique_ptr<CounterGroup> group =
      CounterGroup::Open(CounterGroup::Scope::kThisThread);
  return group == nullptr ? CounterMode::kUnavailable : group->mode();
}

std::string CounterStatus() {
  const CounterMode mode = ProbeCounterMode();
  switch (mode) {
    case CounterMode::kHardware:
      return "hardware";
    case CounterMode::kSoftware:
      return std::string("software (hardware PMU: ") + HardwareFailReason() +
             ")";
    case CounterMode::kUnavailable:
      return std::string("unavailable: ") + SoftwareFailReason();
  }
  return "unavailable";
}

}  // namespace prof
}  // namespace elsi

#else  // !ELSI_PROF_ENABLED

// All APIs are inline stubs in the headers; this TU is intentionally empty.

#endif  // ELSI_PROF_ENABLED
