#ifndef ELSI_COMMON_RANDOM_H_
#define ELSI_COMMON_RANDOM_H_

#include <cstdint>

namespace elsi {

/// SplitMix64: fast, high-quality 64-bit generator used to seed Xoshiro and
/// for lightweight hashing. Reference: Steele, Lea & Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256** — the repository-wide deterministic RNG. All modules take a
/// seed (never an engine reference) so runs are reproducible and components
/// cannot perturb each other's streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace elsi

#endif  // ELSI_COMMON_RANDOM_H_
