#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace elsi {
namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ELSI_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  ELSI_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

}  // namespace elsi
