#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace elsi {

namespace {

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::GetGauge("pool.queue_depth");
  return gauge;
}

// Records one executed task: count + latency histogram.
void RecordTask(uint64_t start_ns) {
  static obs::Counter& tasks = obs::GetCounter("pool.tasks");
  static obs::Histogram& latency =
      obs::GetHistogram("pool.task_us", obs::HistogramSpec::LatencyUs());
  tasks.Add();
  latency.Observe(static_cast<double>(obs::NowNs() - start_ns) / 1000.0);
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  // Pre-register the pool metrics so snapshots show them at zero even when
  // every task runs inline (single-core: TaskGroup never submits).
  QueueDepthGauge().Set(0);
  obs::GetCounter("pool.tasks");
  obs::GetHistogram("pool.task_us", obs::HistogramSpec::LatencyUs());
  if (threads == 0) threads = DefaultThreadCount();
  const size_t workers = threads - 1;  // The caller is the threads-th lane.
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Raw-submitted tasks that no worker picked up still have owners waiting
  // on futures; drain them inline.
  while (RunPendingTask()) {
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Capture the submitter's trace context now and adopt it around the task
  // wherever it eventually runs (worker, helping waiter, or dtor drain), so
  // spans in pooled continuations join the submitting query's trace tree.
  // Tasks submitted outside any span carry an empty context and root their
  // own traces (the background-work policy).
  obs::TraceContext ctx = obs::CurrentTraceContext();
  auto traced = [ctx, inner = std::move(task)] {
    obs::TraceContextScope scope(ctx);
    inner();
  };
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(traced));
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  task_ready_.notify_one();
}

bool ThreadPool::RunPendingTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  const uint64_t start_ns = obs::NowNs();
  task();
  RecordTask(start_ns);
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
    }
    const uint64_t start_ns = obs::NowNs();
    task();
    RecordTask(start_ns);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t lanes = std::min(thread_count(), n);
  if (lanes <= 1) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  TaskGroup group(this);
  for (size_t lane = 0; lane < lanes; ++lane) {
    const size_t lo = begin + lane * n / lanes;
    const size_t hi = begin + (lane + 1) * n / lanes;
    group.Run([&body, lo, hi] {
      for (size_t i = lo; i < hi; ++i) body(i);
    });
  }
  group.Wait();
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("ELSI_THREADS")) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  // Leaked on exit so tasks raw-submitted from static destructors (none
  // today) can never touch a destroyed pool.
  static auto* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::SetGlobalThreads(size_t threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& slot = GlobalPoolSlot();
  slot.reset();  // Join the old pool before the new one exists.
  slot = std::make_unique<ThreadPool>(threads == 0 ? 1 : threads);
}

void TaskGroup::RunTracked(const std::function<void()>& fn) {
  std::exception_ptr error;
  try {
    fn();
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (error != nullptr && first_error_ == nullptr) first_error_ = error;
  if (--pending_ == 0) done_.notify_all();
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->thread_count() <= 1) {
    // Serial mode: run inline, but keep the exception contract of Wait().
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++pending_;
    }
    RunTracked(fn);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  pool_->Submit([this, shared_fn] { RunTracked(*shared_fn); });
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_ == 0) break;
    }
    // Help: run queued tasks (ours or anyone's) instead of blocking. A
    // thread only sleeps when none of its tasks are queued — they are all
    // running on other threads, whose completion does not depend on us.
    if (pool_ != nullptr && pool_->RunPendingTask()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace elsi
