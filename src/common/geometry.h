#ifndef ELSI_COMMON_GEOMETRY_H_
#define ELSI_COMMON_GEOMETRY_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace elsi {

/// A 2-D point with a stable identifier. The evaluation of the paper is
/// entirely 2-dimensional; the library fixes d = 2 (see DESIGN.md).
struct Point {
  double x = 0.0;
  double y = 0.0;
  uint64_t id = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y && a.id == b.id;
  }
};

/// Squared Euclidean distance between two points.
double SquaredDistance(const Point& a, const Point& b);

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// An axis-aligned rectangle [lo_x, hi_x] x [lo_y, hi_y] (closed on all
/// sides). Default-constructed rectangles are *empty* (inverted bounds) so
/// they behave as the identity for Extend().
struct Rect {
  double lo_x = std::numeric_limits<double>::infinity();
  double lo_y = std::numeric_limits<double>::infinity();
  double hi_x = -std::numeric_limits<double>::infinity();
  double hi_y = -std::numeric_limits<double>::infinity();

  static Rect Of(double lx, double ly, double hx, double hy) {
    return Rect{lx, ly, hx, hy};
  }

  bool empty() const { return lo_x > hi_x || lo_y > hi_y; }

  bool Contains(const Point& p) const {
    return p.x >= lo_x && p.x <= hi_x && p.y >= lo_y && p.y <= hi_y;
  }

  bool Contains(const Rect& r) const {
    return r.lo_x >= lo_x && r.hi_x <= hi_x && r.lo_y >= lo_y && r.hi_y <= hi_y;
  }

  bool Intersects(const Rect& r) const {
    return !(r.lo_x > hi_x || r.hi_x < lo_x || r.lo_y > hi_y || r.hi_y < lo_y);
  }

  /// Grows this rectangle to cover `p`.
  void Extend(const Point& p);

  /// Grows this rectangle to cover `r`.
  void Extend(const Rect& r);

  double Area() const { return empty() ? 0.0 : (hi_x - lo_x) * (hi_y - lo_y); }

  double Perimeter() const {
    return empty() ? 0.0 : 2.0 * ((hi_x - lo_x) + (hi_y - lo_y));
  }

  /// Area of the intersection with `r` (0 when disjoint).
  double IntersectionArea(const Rect& r) const;

  /// Squared distance from `p` to the closest location inside the rectangle
  /// (0 when the point is inside). Used for kNN branch-and-bound.
  double MinSquaredDistance(const Point& p) const;

  Point Center() const { return Point{(lo_x + hi_x) / 2, (lo_y + hi_y) / 2, 0}; }
};

/// Minimum bounding rectangle of a point set (empty Rect for no points).
Rect BoundingRect(const std::vector<Point>& points);

/// The canonical window-result order: ascending (x, y, id). A total order
/// on stored points (ids are unique within a dataset), pinned by every
/// WindowQuery/WindowQueryBatch implementation so that any two indices over
/// the same data return bit-identical windows and scatter-gather merges
/// compare against single-index oracles exactly.
inline bool CanonicalLess(const Point& a, const Point& b) {
  if (a.x != b.x) return a.x < b.x;
  if (a.y != b.y) return a.y < b.y;
  return a.id < b.id;
}

/// Sorts `pts` into the canonical result order.
void SortCanonical(std::vector<Point>* pts);

}  // namespace elsi

#endif  // ELSI_COMMON_GEOMETRY_H_
