#ifndef ELSI_COMMON_EPOCH_H_
#define ELSI_COMMON_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace elsi {
namespace concurrent {

/// Epoch-based reclamation (EBR) for the lock-free serving path (see
/// DESIGN.md, "Concurrent serving"). Readers wrap every traversal of an
/// epoch-protected pointer in a Guard; writers unlink an object (e.g. by
/// swapping the serving root) and then Retire() it. A retired object is
/// freed only after the global epoch has advanced twice past its retire
/// epoch, which cannot happen while any guard that might still hold a
/// reference to it is pinned — so readers never take a lock and never see
/// a freed object.
///
/// Protocol:
///  * Each thread lazily claims one of kMaxSlots cache-line-isolated slots
///    on first Guard construction and releases it at thread exit (slots are
///    reused; leftover garbage is handed to a shared orphan list).
///  * Guard pins the slot to the current global epoch E with a seq_cst
///    store, so the pin is visible to any reclaimer before the reader loads
///    the protected pointer.
///  * Retire(p) tags p with the current global epoch and appends it to the
///    retiring thread's local limbo list — no lock on this path either.
///  * TryReclaim() advances the global epoch when every pinned slot has
///    caught up to it (quiescence), then frees the caller's limbo entries
///    (and any orphans) retired at least two epochs ago: a reader pinned at
///    the retire epoch T blocks the advance to T+1, so global >= T+2
///    implies no guard that could have observed the object is still live.
class EpochManager {
 public:
  static constexpr size_t kMaxSlots = 256;

  static EpochManager& Global();

  EpochManager();
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII read-side critical section. Cheap (two seq_cst stores); nestable
  /// (inner guards re-pin the already-pinned slot, harmless).
  class Guard {
   public:
    explicit Guard(EpochManager& mgr = Global());
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
    size_t slot_;
    uint64_t saved_;  // Previous pin state, restored on destruction.
  };

  /// Hands `p` to the reclamation machinery; `deleter(p)` runs once no
  /// reader can still hold it. Never blocks. Every Retire opportunistically
  /// attempts a reclaim pass once the local limbo list grows past a small
  /// threshold.
  void Retire(void* p, void (*deleter)(void*));

  template <typename T>
  void Retire(T* p) {
    Retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// One quiescence check + free pass over the calling thread's limbo list
  /// and the shared orphan list. Returns the number of objects freed.
  size_t TryReclaim();

  /// Frees everything reclaimable right now, advancing the epoch as far as
  /// pinned readers allow (typically called at shutdown or in tests, with
  /// no readers active).
  size_t DrainAll();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Objects retired but not yet freed (this thread's limbo list plus the
  /// shared orphan list). Exported to obs as epoch.limbo.
  size_t limbo_size() const;

  /// Slots currently claimed by live threads (diagnostics/tests).
  size_t active_slots() const;

  /// Index of the calling thread's slot, claiming one if needed. Exposed so
  /// tests can assert slot reuse after thread exit.
  size_t SlotIndexForTesting();

  /// Per-thread state: claimed slot index + local limbo list. Opaque here;
  /// public only so the thread-local registry in epoch.cc can hold it.
  struct ThreadState;

 private:
  struct Retired {
    void* p;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  /// One per-thread epoch slot. `pin` holds kIdle when the thread is not in
  /// a critical section, else the pinned epoch. Padded so concurrent pins
  /// never share a cache line.
  struct alignas(64) Slot {
    static constexpr uint64_t kIdle = ~0ull;
    std::atomic<uint64_t> pin{kIdle};
    std::atomic<bool> claimed{false};
    char padding[64 - sizeof(pin) - sizeof(claimed)];
  };

  friend struct ThreadState;

  ThreadState& LocalState();
  size_t ReclaimFrom(std::vector<Retired>* limbo, uint64_t safe_before);
  bool TryAdvance();

  Slot slots_[kMaxSlots];
  std::atomic<uint64_t> global_epoch_{2};  // Start >= 2 so epoch-0 tags free.

  /// Orphaned limbo entries from exited threads + registry of live
  /// per-thread states; neither is on the read path.
  mutable std::mutex mu_;
  std::vector<Retired> orphans_;
  std::vector<ThreadState*> states_;
};

}  // namespace concurrent
}  // namespace elsi

#endif  // ELSI_COMMON_EPOCH_H_
