#ifndef ELSI_COMMON_LOGGING_H_
#define ELSI_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace elsi {
namespace internal_logging {

/// Accumulates a message and aborts the process when destroyed. Used by the
/// ELSI_CHECK family below; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace elsi

/// Aborts with a message when `condition` is false. Streams extra context:
///   ELSI_CHECK(n > 0) << "dataset must be non-empty, got " << n;
#define ELSI_CHECK(condition)                                               \
  if (!(condition))                                                         \
  ::elsi::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)    \
      .stream()

#define ELSI_CHECK_EQ(a, b) ELSI_CHECK((a) == (b))
#define ELSI_CHECK_NE(a, b) ELSI_CHECK((a) != (b))
#define ELSI_CHECK_LT(a, b) ELSI_CHECK((a) < (b))
#define ELSI_CHECK_LE(a, b) ELSI_CHECK((a) <= (b))
#define ELSI_CHECK_GT(a, b) ELSI_CHECK((a) > (b))
#define ELSI_CHECK_GE(a, b) ELSI_CHECK((a) >= (b))

#ifdef NDEBUG
#define ELSI_DCHECK(condition) ELSI_CHECK(true || (condition))
#else
#define ELSI_DCHECK(condition) ELSI_CHECK(condition)
#endif

#endif  // ELSI_COMMON_LOGGING_H_
