#ifndef ELSI_COMMON_LOGGING_H_
#define ELSI_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace elsi {

/// Severity levels for ELSI_LOG. The active threshold comes from the
/// ELSI_LOG_LEVEL environment variable ("INFO", "WARN", "ERROR", or 0/1/2;
/// default WARN) and can be overridden at runtime with SetLogThreshold.
enum class LogSeverity : int { kInfo = 0, kWarn = 1, kError = 2 };

namespace internal_logging {

inline const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarn:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "?";
}

inline LogSeverity LogThresholdFromEnv() {
  const char* env = std::getenv("ELSI_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogSeverity::kWarn;
  if (std::strcmp(env, "INFO") == 0 || std::strcmp(env, "0") == 0) {
    return LogSeverity::kInfo;
  }
  if (std::strcmp(env, "WARN") == 0 || std::strcmp(env, "1") == 0) {
    return LogSeverity::kWarn;
  }
  if (std::strcmp(env, "ERROR") == 0 || std::strcmp(env, "2") == 0) {
    return LogSeverity::kError;
  }
  return LogSeverity::kWarn;
}

inline std::atomic<int>& LogThresholdStorage() {
  static std::atomic<int> threshold{
      static_cast<int>(LogThresholdFromEnv())};
  return threshold;
}

inline bool LogEnabled(LogSeverity severity) {
  return static_cast<int>(severity) >=
         LogThresholdStorage().load(std::memory_order_relaxed);
}

/// Accumulates a message and writes it to stderr when destroyed. Used by
/// ELSI_LOG below; never instantiate directly.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity) {
    stream_ << "[" << LogSeverityName(severity) << "] " << file << ":" << line
            << ": ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() { std::fprintf(stderr, "%s\n", stream_.str().c_str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Accumulates a message and aborts the process when destroyed. Used by the
/// ELSI_CHECK family below; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Token targets for ELSI_LOG(INFO|WARN|ERROR).
inline constexpr LogSeverity kSeverityINFO = LogSeverity::kInfo;
inline constexpr LogSeverity kSeverityWARN = LogSeverity::kWarn;
inline constexpr LogSeverity kSeverityERROR = LogSeverity::kError;

}  // namespace internal_logging

/// Overrides the ELSI_LOG_LEVEL threshold for the rest of the process
/// (thread-safe; mainly for tests).
inline void SetLogThreshold(LogSeverity severity) {
  internal_logging::LogThresholdStorage().store(static_cast<int>(severity),
                                                std::memory_order_relaxed);
}

inline LogSeverity GetLogThreshold() {
  return static_cast<LogSeverity>(
      internal_logging::LogThresholdStorage().load(std::memory_order_relaxed));
}

}  // namespace elsi

/// Leveled logging with streamed context, filtered by ELSI_LOG_LEVEL:
///   ELSI_LOG(WARN) << "rebuild declined, score=" << score;
/// Streamed arguments are only evaluated when the severity passes the
/// threshold.
#define ELSI_LOG(severity)                                        \
  if (::elsi::internal_logging::LogEnabled(                       \
          ::elsi::internal_logging::kSeverity##severity))         \
  ::elsi::internal_logging::LogMessage(                           \
      __FILE__, __LINE__, ::elsi::internal_logging::kSeverity##severity) \
      .stream()

/// Aborts with a message when `condition` is false. Streams extra context:
///   ELSI_CHECK(n > 0) << "dataset must be non-empty, got " << n;
#define ELSI_CHECK(condition)                                               \
  if (!(condition))                                                         \
  ::elsi::internal_logging::FatalMessage(__FILE__, __LINE__, #condition)    \
      .stream()

#define ELSI_CHECK_EQ(a, b) ELSI_CHECK((a) == (b))
#define ELSI_CHECK_NE(a, b) ELSI_CHECK((a) != (b))
#define ELSI_CHECK_LT(a, b) ELSI_CHECK((a) < (b))
#define ELSI_CHECK_LE(a, b) ELSI_CHECK((a) <= (b))
#define ELSI_CHECK_GT(a, b) ELSI_CHECK((a) > (b))
#define ELSI_CHECK_GE(a, b) ELSI_CHECK((a) >= (b))

#ifdef NDEBUG
// The whole statement — condition AND streamed arguments — must compile
// away in Release. `while (false)` guards the expansion so nothing after it
// is ever evaluated, yet `ELSI_DCHECK(x) << Expensive()` still type-checks.
#define ELSI_DCHECK(condition) \
  while (false) ELSI_CHECK(condition)
#else
#define ELSI_DCHECK(condition) ELSI_CHECK(condition)
#endif

#endif  // ELSI_COMMON_LOGGING_H_
