#include "common/epoch.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace elsi {
namespace concurrent {

namespace {

/// Local limbo entries that trigger an opportunistic reclaim pass.
constexpr size_t kReclaimThreshold = 64;

obs::Gauge& EpochGauge() {
  static obs::Gauge& g = obs::GetGauge("epoch.global");
  return g;
}

obs::Gauge& LimboGauge() {
  static obs::Gauge& g = obs::GetGauge("epoch.limbo");
  return g;
}

obs::Counter& ReclaimedCounter() {
  static obs::Counter& c = obs::GetCounter("epoch.reclaimed");
  return c;
}

}  // namespace

/// Per-thread registration with one manager: the claimed slot plus the
/// thread's limbo list. Owned by thread-local storage; `mgr` flips to null
/// (atomically) when either side — the thread or the manager — tears the
/// registration down first.
struct EpochManager::ThreadState {
  std::atomic<EpochManager*> mgr{nullptr};
  size_t slot = kMaxSlots;
  std::vector<Retired> limbo;
  std::atomic<size_t> limbo_count{0};

  /// Thread-exit half of the teardown: hand leftover garbage to the
  /// manager's orphan list and release the slot for reuse.
  void Finalize() {
    EpochManager* m = mgr.exchange(nullptr, std::memory_order_acq_rel);
    if (m == nullptr) return;
    std::lock_guard<std::mutex> lock(m->mu_);
    for (Retired& r : limbo) m->orphans_.push_back(r);
    limbo.clear();
    limbo_count.store(0, std::memory_order_relaxed);
    m->states_.erase(std::remove(m->states_.begin(), m->states_.end(), this),
                     m->states_.end());
    if (slot < kMaxSlots) {
      m->slots_[slot].pin.store(Slot::kIdle, std::memory_order_release);
      m->slots_[slot].claimed.store(false, std::memory_order_release);
    }
  }
};

namespace {

/// Thread-local registry of (manager, state) pairs. A thread typically
/// talks to exactly one manager (the global one); the vector stays tiny.
struct TlsRegistry {
  std::vector<EpochManager::ThreadState*> states;
  ~TlsRegistry() {
    for (EpochManager::ThreadState* ts : states) {
      ts->Finalize();
      delete ts;
    }
  }
};

thread_local TlsRegistry tls_registry;

}  // namespace

EpochManager& EpochManager::Global() {
  static EpochManager mgr;
  return mgr;
}

EpochManager::EpochManager() {
  EpochGauge();
  LimboGauge();
  ReclaimedCounter();
}

EpochManager::~EpochManager() {
  // No reader may be in a critical section when the manager dies; free
  // everything still in limbo, local lists included.
  std::lock_guard<std::mutex> lock(mu_);
  for (ThreadState* ts : states_) {
    for (Retired& r : ts->limbo) orphans_.push_back(r);
    ts->limbo.clear();
    ts->limbo_count.store(0, std::memory_order_relaxed);
    ts->slot = kMaxSlots;
    ts->mgr.store(nullptr, std::memory_order_release);
  }
  states_.clear();
  for (Retired& r : orphans_) r.deleter(r.p);
  orphans_.clear();
}

EpochManager::ThreadState& EpochManager::LocalState() {
  for (ThreadState* ts : tls_registry.states) {
    if (ts->mgr.load(std::memory_order_acquire) == this) return *ts;
  }
  auto* ts = new ThreadState();
  size_t slot = kMaxSlots;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slot = i;
      break;
    }
  }
  ELSI_CHECK(slot < kMaxSlots) << "epoch: more than " << kMaxSlots
                               << " concurrent threads";
  ts->slot = slot;
  ts->mgr.store(this, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    states_.push_back(ts);
  }
  tls_registry.states.push_back(ts);
  return *ts;
}

size_t EpochManager::SlotIndexForTesting() { return LocalState().slot; }

EpochManager::Guard::Guard(EpochManager& mgr) : mgr_(mgr) {
  ThreadState& ts = mgr.LocalState();
  slot_ = ts.slot;
  Slot& s = mgr.slots_[slot_];
  saved_ = s.pin.load(std::memory_order_relaxed);
  if (saved_ == Slot::kIdle) {
    // Outermost guard: pin to the current epoch. seq_cst (plus the fence)
    // orders the pin before any subsequent load of a protected pointer, so
    // a reclaimer that hasn't seen this pin cannot free what we read.
    s.pin.store(mgr.global_epoch_.load(std::memory_order_seq_cst),
                std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  // Nested guards keep the (older) outer pin — overwriting it with a newer
  // epoch would let reclamation run ahead of the outer critical section.
}

EpochManager::Guard::~Guard() {
  mgr_.slots_[slot_].pin.store(saved_, std::memory_order_seq_cst);
}

void EpochManager::Retire(void* p, void (*deleter)(void*)) {
  ThreadState& ts = LocalState();
  ts.limbo.push_back(
      Retired{p, deleter, global_epoch_.load(std::memory_order_seq_cst)});
  ts.limbo_count.store(ts.limbo.size(), std::memory_order_relaxed);
  if (ts.limbo.size() >= kReclaimThreshold) TryReclaim();
}

bool EpochManager::TryAdvance() {
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (const Slot& s : slots_) {
    if (!s.claimed.load(std::memory_order_acquire)) continue;
    const uint64_t pin = s.pin.load(std::memory_order_seq_cst);
    if (pin != Slot::kIdle && pin != e) return false;  // Reader lags behind.
  }
  uint64_t expected = e;
  if (global_epoch_.compare_exchange_strong(expected, e + 1,
                                            std::memory_order_seq_cst)) {
    EpochGauge().Set(static_cast<int64_t>(e + 1));
    return true;
  }
  return expected > e;  // Someone else advanced; that is progress too.
}

size_t EpochManager::ReclaimFrom(std::vector<Retired>* limbo,
                                 uint64_t global) {
  size_t freed = 0;
  size_t keep = 0;
  for (size_t i = 0; i < limbo->size(); ++i) {
    Retired& r = (*limbo)[i];
    // Safe once two advances have passed the retire epoch: every guard
    // pinned at r.epoch or earlier (the only ones that could still hold
    // the object) has blocked those advances until it unpinned.
    if (r.epoch + 2 <= global) {
      r.deleter(r.p);
      ++freed;
    } else {
      (*limbo)[keep++] = r;
    }
  }
  limbo->resize(keep);
  return freed;
}

size_t EpochManager::TryReclaim() {
  TryAdvance();
  const uint64_t global = global_epoch_.load(std::memory_order_seq_cst);
  ThreadState& ts = LocalState();
  size_t freed = ReclaimFrom(&ts.limbo, global);
  ts.limbo_count.store(ts.limbo.size(), std::memory_order_relaxed);
  // Adopt the shared orphans under the lock, run their deleters outside it.
  std::vector<Retired> adopted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    adopted.swap(orphans_);
  }
  if (!adopted.empty()) {
    freed += ReclaimFrom(&adopted, global);
    if (!adopted.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      for (Retired& r : adopted) orphans_.push_back(r);
    }
  }
  if (freed > 0) ReclaimedCounter().Add(freed);
  LimboGauge().Set(static_cast<int64_t>(limbo_size()));
  return freed;
}

size_t EpochManager::DrainAll() {
  size_t freed = 0;
  // Each pass advances at most one epoch; three passes retire-to-free any
  // object whose readers have all unpinned.
  for (int pass = 0; pass < 3; ++pass) freed += TryReclaim();
  return freed;
}

size_t EpochManager::limbo_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = orphans_.size();
  for (const ThreadState* ts : states_) {
    total += ts->limbo_count.load(std::memory_order_relaxed);
  }
  return total;
}

size_t EpochManager::active_slots() const {
  size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.claimed.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

}  // namespace concurrent
}  // namespace elsi
