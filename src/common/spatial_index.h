#ifndef ELSI_COMMON_SPATIAL_INDEX_H_
#define ELSI_COMMON_SPATIAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace elsi {

class ThreadPool;

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Options for the batched query entry points. Chunk boundaries depend only
/// on `chunk` (never on the pool size), and each chunk writes a disjoint
/// slice of the output spans, so batched results are identical for every
/// worker count — including pool == nullptr (serial).
struct BatchQueryOptions {
  /// Pool to spread chunks over; nullptr runs the batch on the caller.
  ThreadPool* pool = nullptr;
  /// Queries per chunk; one chunk is one model GEMM + one scan pass.
  size_t chunk = 256;
};

/// Runs body(begin, end) for fixed-size chunks of [0, n). Chunk boundaries
/// depend only on opts.chunk (never the pool size); with a pool, chunks run
/// concurrently. Bodies that write only their own [begin, end) output slots
/// therefore produce identical results at every thread count.
void ForEachQueryChunk(size_t n, const BatchQueryOptions& opts,
                       const std::function<void(size_t, size_t)>& body);

/// Common interface implemented by every index in the repository — the four
/// traditional competitors (Grid, KDB, HRR, RR*) and the four learned base
/// indices (ZM, ML, RSMI, LISA) — so the benchmark harness can drive them
/// uniformly.
///
/// Query semantics:
///  * PointQuery finds a stored point with exactly the query's coordinates
///    (the paper's point queries probe indexed points).
///  * WindowQuery returns points inside the closed rectangle, always in the
///    canonical result order (ascending (x, y, id) — see CanonicalLess).
///    The pinned order lets the sharded scatter-gather planner compare
///    merged results against single-index oracles bit-exactly. Learned
///    indices may return approximate results (RSMI by design; LISA when its
///    shard predictor is an FFN) — recall is measured by the harness.
///  * KnnQuery returns the k nearest points by Euclidean distance; learned
///    indices answer it via expanding window queries, so it may also be
///    approximate.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Display name used in benchmark tables ("Grid", "RSMI-F", ...).
  virtual std::string Name() const = 0;

  /// (Re)builds the index over `data`, replacing previous contents.
  virtual void Build(const std::vector<Point>& data) = 0;

  /// Inserts one point.
  virtual void Insert(const Point& p) = 0;

  /// Removes the point with this exact position and id. Returns false when
  /// it is not present.
  virtual bool Remove(const Point& p) = 0;

  /// Finds a stored point with coordinates equal to q's; fills `out` (if
  /// non-null) and returns true on a hit.
  virtual bool PointQuery(const Point& q, Point* out = nullptr) const = 0;

  virtual std::vector<Point> WindowQuery(const Rect& w) const = 0;

  virtual std::vector<Point> KnnQuery(const Point& q, size_t k) const = 0;

  /// Number of points currently indexed.
  virtual size_t size() const = 0;

  /// Batched point lookup: answers qs[i] into hit[i]/out[i]. `hit` and
  /// `out` must match qs.size(); out[i] is untouched when hit[i] == 0.
  /// Answers equal a serial PointQuery loop in the same order at every
  /// thread count. The base implementation chunks the scalar query over
  /// opts.pool; learned indices override it to push each chunk's keys
  /// through one model GEMM before scanning.
  virtual void PointQueryBatch(std::span<const Point> qs,
                               std::span<uint8_t> hit, std::span<Point> out,
                               const BatchQueryOptions& opts = {}) const;

  /// Batched window query: out[i] receives WindowQuery(ws[i]) — same
  /// points, same order, at every thread count.
  virtual void WindowQueryBatch(std::span<const Rect> ws,
                                std::span<std::vector<Point>> out,
                                const BatchQueryOptions& opts = {}) const;

  /// Batched k-NN: out[i] receives KnnQuery(qs[i], k).
  virtual void KnnQueryBatch(std::span<const Point> qs, size_t k,
                             std::span<std::vector<Point>> out,
                             const BatchQueryOptions& opts = {}) const;

  /// Every indexed point (the input to a full rebuild). The default scans
  /// an unbounded window; indices with cheaper enumerations override it.
  virtual std::vector<Point> CollectAll() const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return WindowQuery(Rect::Of(-kInf, -kInf, kInf, kInf));
  }

  /// Model/tree depth — a rebuild-predictor feature (Sec. IV-B2).
  virtual int Depth() const { return 1; }

  /// Serializes the complete index state (configuration, structure, trained
  /// models, storage blocks) into `w` so that LoadState restores an index
  /// whose every query answer is bit-identical to this one's. Returns false
  /// when the index does not support persistence (the default).
  virtual bool SaveState(persist::Writer& w) const;

  /// Restores state written by SaveState on a default-constructed index of
  /// the same type. Returns false on malformed input or when unsupported.
  virtual bool LoadState(persist::Reader& r);
};

}  // namespace elsi

#endif  // ELSI_COMMON_SPATIAL_INDEX_H_
