#ifndef ELSI_COMMON_SPATIAL_INDEX_H_
#define ELSI_COMMON_SPATIAL_INDEX_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace elsi {

/// Common interface implemented by every index in the repository — the four
/// traditional competitors (Grid, KDB, HRR, RR*) and the four learned base
/// indices (ZM, ML, RSMI, LISA) — so the benchmark harness can drive them
/// uniformly.
///
/// Query semantics:
///  * PointQuery finds a stored point with exactly the query's coordinates
///    (the paper's point queries probe indexed points).
///  * WindowQuery returns points inside the closed rectangle. Learned
///    indices may return approximate results (RSMI by design; LISA when its
///    shard predictor is an FFN) — recall is measured by the harness.
///  * KnnQuery returns the k nearest points by Euclidean distance; learned
///    indices answer it via expanding window queries, so it may also be
///    approximate.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Display name used in benchmark tables ("Grid", "RSMI-F", ...).
  virtual std::string Name() const = 0;

  /// (Re)builds the index over `data`, replacing previous contents.
  virtual void Build(const std::vector<Point>& data) = 0;

  /// Inserts one point.
  virtual void Insert(const Point& p) = 0;

  /// Removes the point with this exact position and id. Returns false when
  /// it is not present.
  virtual bool Remove(const Point& p) = 0;

  /// Finds a stored point with coordinates equal to q's; fills `out` (if
  /// non-null) and returns true on a hit.
  virtual bool PointQuery(const Point& q, Point* out = nullptr) const = 0;

  virtual std::vector<Point> WindowQuery(const Rect& w) const = 0;

  virtual std::vector<Point> KnnQuery(const Point& q, size_t k) const = 0;

  /// Number of points currently indexed.
  virtual size_t size() const = 0;

  /// Every indexed point (the input to a full rebuild). The default scans
  /// an unbounded window; indices with cheaper enumerations override it.
  virtual std::vector<Point> CollectAll() const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return WindowQuery(Rect::Of(-kInf, -kInf, kInf, kInf));
  }

  /// Model/tree depth — a rebuild-predictor feature (Sec. IV-B2).
  virtual int Depth() const { return 1; }
};

}  // namespace elsi

#endif  // ELSI_COMMON_SPATIAL_INDEX_H_
