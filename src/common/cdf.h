#ifndef ELSI_COMMON_CDF_H_
#define ELSI_COMMON_CDF_H_

#include <cstddef>
#include <vector>

namespace elsi {

/// Empirical cumulative distribution function over a sorted key set. This is
/// the object a learned index model approximates (Sec. III of the paper).
class EmpiricalCdf {
 public:
  /// `sorted_keys` must be ascending; violations are checked in debug builds.
  explicit EmpiricalCdf(std::vector<double> sorted_keys);

  /// Fraction of keys <= x, in [0, 1].
  double Evaluate(double x) const;

  /// Number of keys < x (the 0-based rank of the first key >= x).
  size_t LowerRank(double x) const;

  size_t size() const { return keys_.size(); }
  const std::vector<double>& keys() const { return keys_; }

 private:
  std::vector<double> keys_;
};

/// Exact two-sample Kolmogorov–Smirnov distance between the ECDFs of two
/// ascending-sorted key sets: sup_x |cdf_a(x) - cdf_b(x)|. O(|a| + |b|) merge
/// scan. This is `dist(a, b)` of Definition 2 (the paper's similarity is
/// 1 - this value).
double KsDistance(const std::vector<double>& sorted_a,
                  const std::vector<double>& sorted_b);

/// The paper's O(ns log n) variant (Sec. III): scans only the small set and
/// binary-searches each element's rank in the large set. We evaluate the gap
/// on both sides of each jump, so the result equals the exact statistic
/// restricted to the jump points of `sorted_small` — an upper-tight
/// approximation of KsDistance that never needs to scan `sorted_large`.
double KsDistanceFast(const std::vector<double>& sorted_small,
                      const std::vector<double>& sorted_large);

/// dist(Du, D): KS distance between the ECDF of `sorted_keys` and the CDF of
/// the uniform distribution over [keys.front(), keys.back()]. This is the
/// "distribution" feature the method scorer and rebuild predictor consume
/// (Sec. IV-B). Uses the analytic uniform CDF (the |Du| -> inf limit), which
/// makes the feature deterministic. Returns 0 for sets with < 2 distinct keys.
double UniformDissimilarity(const std::vector<double>& sorted_keys);

/// sim(a, b) = 1 - dist(a, b) over sorted key sets (Definition 2).
double Similarity(const std::vector<double>& sorted_a,
                  const std::vector<double>& sorted_b);

}  // namespace elsi

#endif  // ELSI_COMMON_CDF_H_
