#ifndef ELSI_COMMON_KNN_H_
#define ELSI_COMMON_KNN_H_

#include <cstddef>
#include <vector>

#include "common/geometry.h"

namespace elsi {
namespace knn {

/// Sorts `*candidates` in place by (squared distance to `q`, id) ascending
/// and truncates to at most `k` entries. Distances come from the dispatched
/// squared-distance kernel, which is bit-identical to SquaredDistance() on
/// every level, so the result matches the per-index
/// `std::sort(..., [(d2, id)])` loops this helper replaced exactly.
/// Returns the squared distance of the last kept candidate (the current
/// kth-neighbour bound), or +infinity when `*candidates` ends up empty.
double SelectNearest(const Point& q, size_t k, std::vector<Point>* candidates);

/// Removes the points of `*pts` that lie outside `w`, preserving order.
/// Containment comes from the dispatched mask kernel (exact Rect::Contains
/// semantics on every level).
void FilterContained(const Rect& w, std::vector<Point>* pts);

/// Removes the points of `*pts` farther than sqrt(r2) from `center`
/// (keeps d2 <= r2), preserving order. Bit-identical to the scalar
/// `SquaredDistance(p, center) <= r2` filter.
void FilterWithinRadius(const Point& center, double r2,
                        std::vector<Point>* pts);

/// Appends the points of [pts, pts + n) that lie inside `w` to `out`, in
/// order, using the dispatched containment kernel over contiguous chunks.
void AppendContained(const Point* pts, size_t n, const Rect& w,
                     std::vector<Point>* out);

}  // namespace knn
}  // namespace elsi

#endif  // ELSI_COMMON_KNN_H_
