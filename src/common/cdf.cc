#include "common/cdf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace elsi {

EmpiricalCdf::EmpiricalCdf(std::vector<double> sorted_keys)
    : keys_(std::move(sorted_keys)) {
  ELSI_DCHECK(std::is_sorted(keys_.begin(), keys_.end()));
}

double EmpiricalCdf::Evaluate(double x) const {
  if (keys_.empty()) return 0.0;
  const auto it = std::upper_bound(keys_.begin(), keys_.end(), x);
  return static_cast<double>(it - keys_.begin()) / keys_.size();
}

size_t EmpiricalCdf::LowerRank(double x) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), x);
  return static_cast<size_t>(it - keys_.begin());
}

double KsDistance(const std::vector<double>& sorted_a,
                  const std::vector<double>& sorted_b) {
  ELSI_CHECK(!sorted_a.empty() && !sorted_b.empty())
      << "KS distance requires non-empty sets";
  ELSI_DCHECK(std::is_sorted(sorted_a.begin(), sorted_a.end()));
  ELSI_DCHECK(std::is_sorted(sorted_b.begin(), sorted_b.end()));
  const double na = static_cast<double>(sorted_a.size());
  const double nb = static_cast<double>(sorted_b.size());
  size_t i = 0;
  size_t j = 0;
  double max_gap = 0.0;
  while (i < sorted_a.size() && j < sorted_b.size()) {
    const double v = std::min(sorted_a[i], sorted_b[j]);
    // Consume every occurrence of the jump value from both sides before
    // evaluating the gap, so ties do not inflate the statistic.
    while (i < sorted_a.size() && sorted_a[i] == v) ++i;
    while (j < sorted_b.size() && sorted_b[j] == v) ++j;
    max_gap = std::max(max_gap, std::fabs(i / na - j / nb));
  }
  // Once one side is exhausted its CDF stays at 1; the other side's remaining
  // jumps only shrink the gap, so no further scan is needed.
  return max_gap;
}

double KsDistanceFast(const std::vector<double>& sorted_small,
                      const std::vector<double>& sorted_large) {
  ELSI_CHECK(!sorted_small.empty() && !sorted_large.empty())
      << "KS distance requires non-empty sets";
  ELSI_DCHECK(std::is_sorted(sorted_small.begin(), sorted_small.end()));
  ELSI_DCHECK(std::is_sorted(sorted_large.begin(), sorted_large.end()));
  const double ns = static_cast<double>(sorted_small.size());
  const double n = static_cast<double>(sorted_large.size());
  double max_gap = 0.0;
  for (size_t i = 0; i < sorted_small.size(); ++i) {
    const double key = sorted_small[i];
    // Rank of the first large element >= key (count of elements < key).
    const auto lo =
        std::lower_bound(sorted_large.begin(), sorted_large.end(), key);
    const auto hi = std::upper_bound(lo, sorted_large.end(), key);
    const double rank_before = static_cast<double>(lo - sorted_large.begin());
    const double rank_after = static_cast<double>(hi - sorted_large.begin());
    // Small-set CDF just before and at this jump point.
    const double cdf_s_before = i / ns;
    const double cdf_s_at = (i + 1) / ns;
    max_gap = std::max(max_gap, std::fabs(cdf_s_before - rank_before / n));
    max_gap = std::max(max_gap, std::fabs(cdf_s_at - rank_after / n));
  }
  return max_gap;
}

double UniformDissimilarity(const std::vector<double>& sorted_keys) {
  ELSI_DCHECK(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  if (sorted_keys.size() < 2) return 0.0;
  const double lo = sorted_keys.front();
  const double hi = sorted_keys.back();
  if (hi <= lo) return 0.0;
  const double n = static_cast<double>(sorted_keys.size());
  double max_gap = 0.0;
  for (size_t i = 0; i < sorted_keys.size(); ++i) {
    const double u = (sorted_keys[i] - lo) / (hi - lo);
    // One-sample KS: the ECDF jumps from i/n to (i+1)/n at sorted_keys[i].
    max_gap = std::max(max_gap, std::fabs((i + 1) / n - u));
    max_gap = std::max(max_gap, std::fabs(u - i / n));
  }
  return max_gap;
}

double Similarity(const std::vector<double>& sorted_a,
                  const std::vector<double>& sorted_b) {
  return 1.0 - KsDistance(sorted_a, sorted_b);
}

}  // namespace elsi
