#include "common/knn.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "simd/simd.h"

namespace elsi {
namespace knn {

namespace {
// Chunk size for the stack-buffered kernels below. Large enough to amortise
// the dispatch-table load, small enough to keep stack use trivial.
constexpr size_t kChunk = 256;
}  // namespace

double SelectNearest(const Point& q, size_t k, std::vector<Point>* candidates) {
  const size_t n = candidates->size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  std::vector<double> d2(n);
  simd::Active().squared_distances(candidates->data(), n, q.x, q.y, d2.data());
  // Sort a permutation instead of the 24-byte points; (d2, id) is a strict
  // weak order equivalent to the comparator the call sites used.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Point* pts = candidates->data();
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (d2[a] != d2[b]) return d2[a] < d2[b];
    return pts[a].id < pts[b].id;
  });
  const size_t keep = std::min(k, n);
  std::vector<Point> nearest;
  nearest.reserve(keep);
  for (size_t i = 0; i < keep; ++i) nearest.push_back(pts[order[i]]);
  candidates->swap(nearest);
  return keep > 0 ? d2[order[keep - 1]]
                  : std::numeric_limits<double>::infinity();
}

void FilterContained(const Rect& w, std::vector<Point>* pts) {
  const size_t n = pts->size();
  uint8_t mask[kChunk];
  size_t kept = 0;
  for (size_t pos = 0; pos < n; pos += kChunk) {
    const size_t len = std::min(kChunk, n - pos);
    simd::Active().contains_mask(pts->data() + pos, len, w, mask);
    for (size_t i = 0; i < len; ++i) {
      if (mask[i] != 0) (*pts)[kept++] = (*pts)[pos + i];
    }
  }
  pts->resize(kept);
}

void FilterWithinRadius(const Point& center, double r2,
                        std::vector<Point>* pts) {
  const size_t n = pts->size();
  double d2[kChunk];
  size_t kept = 0;
  for (size_t pos = 0; pos < n; pos += kChunk) {
    const size_t len = std::min(kChunk, n - pos);
    simd::Active().squared_distances(pts->data() + pos, len, center.x,
                                     center.y, d2);
    for (size_t i = 0; i < len; ++i) {
      if (d2[i] <= r2) (*pts)[kept++] = (*pts)[pos + i];
    }
  }
  pts->resize(kept);
}

void AppendContained(const Point* pts, size_t n, const Rect& w,
                     std::vector<Point>* out) {
  uint8_t mask[kChunk];
  for (size_t pos = 0; pos < n; pos += kChunk) {
    const size_t len = std::min(kChunk, n - pos);
    simd::Active().contains_mask(pts + pos, len, w, mask);
    for (size_t i = 0; i < len; ++i) {
      if (mask[i] != 0) out->push_back(pts[pos + i]);
    }
  }
}

}  // namespace knn
}  // namespace elsi
