#ifndef ELSI_COMMON_THREAD_POOL_H_
#define ELSI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace elsi {

/// Fixed-size worker pool shared by every parallel build path in the
/// repository. A pool of "n threads" spawns n-1 workers: the thread that
/// waits on a TaskGroup (or calls ParallelFor) participates by executing
/// queued tasks itself, so n == 1 means zero workers and fully inline
/// execution — byte-for-byte the old serial path with no queue traffic.
///
/// Waiting helps: TaskGroup::Wait() drains queued tasks while its own are
/// outstanding, so tasks may themselves fan out on the same pool (RSMI's
/// recursive build) without deadlocking — a thread only sleeps when none of
/// its group's tasks are queued, i.e. they are all running on other threads.
///
/// Determinism contract: the pool makes no ordering guarantees, so callers
/// must make every task's result a pure function of its inputs (ELSI build
/// paths derive per-partition RNG seeds from partition content, never from
/// submission order). Under that contract, results are bit-identical for any
/// thread count.
class ThreadPool {
 public:
  /// `threads` is the total concurrency including the caller; 0 picks
  /// DefaultThreadCount(). One thread means no workers (inline execution).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller); >= 1.
  size_t thread_count() const { return workers_.size() + 1; }

  /// Enqueues a task. Prefer TaskGroup/ParallelFor, which add completion
  /// tracking; raw submissions are only joined by the destructor.
  /// The submitter's obs::TraceContext is captured here and adopted around
  /// the task, so spans recorded inside pooled continuations link into the
  /// submitting query's trace tree (TaskGroup, ParallelFor and SubmitFuture
  /// all route through Submit and inherit this).
  void Submit(std::function<void()> task);

  /// Futures-based submission for callers that want a task's value.
  template <typename F>
  auto SubmitFuture(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Submit([task]() { (*task)(); });
    return result;
  }

  /// Runs one queued task on the calling thread if any is pending. Returns
  /// false when the queue was empty. This is the "helping" primitive used by
  /// TaskGroup::Wait.
  bool RunPendingTask();

  /// Calls `body(i)` for every i in [begin, end), distributing contiguous
  /// chunks over the pool and blocking until all complete. The calling
  /// thread participates. Chunking never affects results for bodies that
  /// write only index-i state.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// ELSI_THREADS env var when set, else std::thread::hardware_concurrency.
  static size_t DefaultThreadCount();

  /// The process-wide shared pool. Sized by SetGlobalThreads (or
  /// DefaultThreadCount on first use). Never destroyed before exit.
  static ThreadPool& Global();

  /// Resizes the global pool (drains it first). The benchmark harness's
  /// --threads N knob and tests use this; not safe to call while builds are
  /// in flight on the global pool.
  static void SetGlobalThreads(size_t threads);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Tracks a set of tasks submitted to a pool and joins them. One group per
/// fan-out site; groups nest freely (a task may create its own group on the
/// same pool). The first task exception is captured and rethrown from
/// Wait().
class TaskGroup {
 public:
  /// `pool` may be null: tasks then run inline in Run() (serial mode).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() {
    try {
      Wait();
    } catch (...) {
      // Wait() was not called after the last Run(); the exception has
      // nowhere to go from a destructor.
    }
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `fn`; runs it inline when the pool has no workers.
  void Run(std::function<void()> fn);

  /// Blocks until every submitted task finished, executing queued pool tasks
  /// on this thread while waiting. Rethrows the first captured exception.
  void Wait();

 private:
  void RunTracked(const std::function<void()>& fn);

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace elsi

#endif  // ELSI_COMMON_THREAD_POOL_H_
