#include "common/spatial_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace elsi {

void ForEachQueryChunk(size_t n, const BatchQueryOptions& opts,
                       const std::function<void(size_t, size_t)>& body) {
  const size_t chunk = std::max<size_t>(1, opts.chunk);
  if (opts.pool == nullptr || n <= chunk) {
    for (size_t begin = 0; begin < n; begin += chunk) {
      ELSI_TRACE_SPAN("query.chunk");
      body(begin, std::min(n, begin + chunk));
    }
    return;
  }
  TaskGroup group(opts.pool);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    group.Run([&body, begin, end] {
      ELSI_TRACE_SPAN("query.chunk");
      body(begin, end);
    });
  }
  group.Wait();
}

void SpatialIndex::PointQueryBatch(std::span<const Point> qs,
                                   std::span<uint8_t> hit,
                                   std::span<Point> out,
                                   const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(hit.size(), qs.size());
  ELSI_CHECK_EQ(out.size(), qs.size());
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hit[i] = PointQuery(qs[i], &out[i]) ? 1 : 0;
    }
  });
}

void SpatialIndex::WindowQueryBatch(std::span<const Rect> ws,
                                    std::span<std::vector<Point>> out,
                                    const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), ws.size());
  ForEachQueryChunk(ws.size(), opts, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = WindowQuery(ws[i]);
  });
}

bool SpatialIndex::SaveState(persist::Writer& w) const {
  (void)w;
  return false;
}

bool SpatialIndex::LoadState(persist::Reader& r) {
  (void)r;
  return false;
}

void SpatialIndex::KnnQueryBatch(std::span<const Point> qs, size_t k,
                                 std::span<std::vector<Point>> out,
                                 const BatchQueryOptions& opts) const {
  ELSI_CHECK_EQ(out.size(), qs.size());
  ForEachQueryChunk(qs.size(), opts, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = KnnQuery(qs[i], k);
  });
}

}  // namespace elsi
