#ifndef ELSI_COMMON_TIMER_H_
#define ELSI_COMMON_TIMER_H_

#include <chrono>

namespace elsi {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the build
/// processor's cost instrumentation.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace elsi

#endif  // ELSI_COMMON_TIMER_H_
