#ifndef ELSI_COMMON_TIMER_H_
#define ELSI_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace elsi {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the build
/// processor's cost instrumentation.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Whole nanoseconds since construction or the last Reset().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: on destruction reports the elapsed time into an obs
/// histogram (in microseconds) and/or a plain double (in seconds). Either
/// sink may be null. Replaces hand-rolled ElapsedSeconds() diffs:
///
///   {
///     ScopedTimer t(&obs::GetHistogram("build.train_ms", spec), &seconds);
///     Train(...);
///   }  // histogram and `seconds` both updated here
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram* histogram_us,
                       double* seconds_out = nullptr)
      : histogram_us_(histogram_us), seconds_out_(seconds_out) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const double seconds = timer_.ElapsedSeconds();
    if (histogram_us_ != nullptr) histogram_us_->Observe(seconds * 1e6);
    if (seconds_out_ != nullptr) *seconds_out_ = seconds;
  }

 private:
  Timer timer_;
  obs::Histogram* histogram_us_;
  double* seconds_out_;
};

}  // namespace elsi

#endif  // ELSI_COMMON_TIMER_H_
