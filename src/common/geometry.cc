#include "common/geometry.h"

#include <algorithm>
#include <cmath>

namespace elsi {

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

void Rect::Extend(const Point& p) {
  lo_x = std::min(lo_x, p.x);
  lo_y = std::min(lo_y, p.y);
  hi_x = std::max(hi_x, p.x);
  hi_y = std::max(hi_y, p.y);
}

void Rect::Extend(const Rect& r) {
  if (r.empty()) return;
  lo_x = std::min(lo_x, r.lo_x);
  lo_y = std::min(lo_y, r.lo_y);
  hi_x = std::max(hi_x, r.hi_x);
  hi_y = std::max(hi_y, r.hi_y);
}

double Rect::IntersectionArea(const Rect& r) const {
  const double w = std::min(hi_x, r.hi_x) - std::max(lo_x, r.lo_x);
  const double h = std::min(hi_y, r.hi_y) - std::max(lo_y, r.lo_y);
  if (w <= 0.0 || h <= 0.0) return 0.0;
  return w * h;
}

double Rect::MinSquaredDistance(const Point& p) const {
  const double dx = std::max({lo_x - p.x, 0.0, p.x - hi_x});
  const double dy = std::max({lo_y - p.y, 0.0, p.y - hi_y});
  return dx * dx + dy * dy;
}

Rect BoundingRect(const std::vector<Point>& points) {
  Rect r;
  for (const Point& p : points) r.Extend(p);
  return r;
}

void SortCanonical(std::vector<Point>* pts) {
  std::sort(pts->begin(), pts->end(), CanonicalLess);
}

}  // namespace elsi
