#ifndef ELSI_TRADITIONAL_KDB_TREE_H_
#define ELSI_TRADITIONAL_KDB_TREE_H_

#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "storage/block_store.h"

namespace elsi {

/// The KDB competitor (Sec. VII-A): a kd-tree over block storage. Internal
/// nodes split space at the median of the current axis (alternating x/y);
/// leaves are data blocks of up to B points that split when they overflow.
/// The on-disk KDB-tree packs internal entries into B-tree pages; in memory
/// the binary kd skeleton has the same search behaviour (see DESIGN.md).
class KdbTree : public SpatialIndex {
 public:
  explicit KdbTree(size_t block_capacity = kDefaultBlockCapacity);

  std::string Name() const override { return "KDB"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return size_; }

  /// Height of the tree (1 for a single leaf). Exposed for tests.
  int Height() const;

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  struct Node {
    // Internal state: axis 0 splits on x, 1 on y; left holds <= split.
    int axis = -1;  // -1 marks a leaf.
    double split = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    // Leaf state.
    std::vector<Point> points;
  };

  std::unique_ptr<Node> BuildRecursive(std::vector<Point>& pts, size_t begin,
                                       size_t end, int depth);
  void SplitLeaf(Node* node, int depth);
  void SaveNode(const Node& node, persist::Writer& w) const;
  std::unique_ptr<Node> LoadNode(persist::Reader& r, int depth) const;

  size_t block_capacity_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace elsi

#endif  // ELSI_TRADITIONAL_KDB_TREE_H_
