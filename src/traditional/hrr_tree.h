#ifndef ELSI_TRADITIONAL_HRR_TREE_H_
#define ELSI_TRADITIONAL_HRR_TREE_H_

#include <memory>
#include <vector>

#include "common/spatial_index.h"
#include "storage/block_store.h"
#include "traditional/rtree_common.h"

namespace elsi {

/// The HRR competitor (Sec. VII-A): an R-tree bulk-loaded with the rank
/// space technique and a Hilbert-curve ordering (Qi et al., PVLDB 2018).
/// Build: each coordinate is replaced by its rank, ranks are placed on a
/// 2^16 grid, points are sorted by the Hilbert index of their rank-space
/// cell, and the tree is packed bottom-up with full nodes. Queries use the
/// shared R-tree machinery; post-build inserts use least-enlargement
/// placement with a middle split (HRR is a static bulk-loaded structure; a
/// light insert path is provided for the update experiments).
class HrrTree : public SpatialIndex {
 public:
  explicit HrrTree(size_t max_entries = kDefaultBlockCapacity);

  std::string Name() const override { return "HRR"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return size_; }

  int Height() const { return RTreeHeight(root_.get()); }
  const RTreeNode* root() const { return root_.get(); }
  size_t max_entries() const { return max_entries_; }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  std::unique_ptr<RTreeNode> InsertSimple(RTreeNode* node, const Point& p);

  size_t max_entries_;
  size_t size_ = 0;
  std::unique_ptr<RTreeNode> root_;
};

}  // namespace elsi

#endif  // ELSI_TRADITIONAL_HRR_TREE_H_
