#ifndef ELSI_TRADITIONAL_RTREE_COMMON_H_
#define ELSI_TRADITIONAL_RTREE_COMMON_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/geometry.h"

namespace elsi {

namespace persist {
class Writer;
class Reader;
}  // namespace persist

/// Shared R-tree node used by both R-tree competitors: RR* (insertion-built,
/// R*-style) and HRR (Hilbert rank-space bulk-loaded). A leaf stores points;
/// an internal node stores children. `mbr` always covers the contents.
struct RTreeNode {
  bool is_leaf = true;
  Rect mbr;
  std::vector<Point> points;
  std::vector<std::unique_ptr<RTreeNode>> children;

  void RecomputeMbr();
};

/// Window query over an R-tree rooted at `node`; appends hits to `out`.
void RTreeWindowQuery(const RTreeNode* node, const Rect& w,
                      std::vector<Point>* out);

/// Exact-coordinate point lookup. Returns true and fills `out` on a hit.
bool RTreePointQuery(const RTreeNode* node, const Point& q, Point* out);

/// Best-first k-nearest-neighbour search (Hjaltason & Samet).
std::vector<Point> RTreeKnnQuery(const RTreeNode* root, const Point& q,
                                 size_t k);

/// Removes the exact point (coordinates + id); recomputes ancestor MBRs on
/// the deletion path. Underfull nodes are tolerated (no condense phase);
/// returns true when found.
bool RTreeRemove(RTreeNode* node, const Point& p);

/// Number of points below `node`.
size_t RTreeCount(const RTreeNode* node);

/// Tree height (1 for a single leaf).
int RTreeHeight(const RTreeNode* node);

/// Validates MBR containment invariants recursively (test support).
bool RTreeCheckInvariants(const RTreeNode* node, size_t max_entries);

/// Bulk-loads a packed R-tree over `points` *in their current order*: leaves
/// take `max_entries` consecutive points, upper levels take `max_entries`
/// consecutive children. Used by HRR after Hilbert ordering.
std::unique_ptr<RTreeNode> RTreePackLoad(const std::vector<Point>& points,
                                         size_t max_entries);

/// Serializes the subtree under `node` (structure + points; MBRs are
/// recomputed on load) into `w`.
void RTreeSaveNode(const RTreeNode& node, persist::Writer& w);

/// Restores a subtree written by RTreeSaveNode. Returns nullptr on
/// malformed input (and latches `r`'s failure state).
std::unique_ptr<RTreeNode> RTreeLoadNode(persist::Reader& r, int depth = 0);

}  // namespace elsi

#endif  // ELSI_TRADITIONAL_RTREE_COMMON_H_
