#ifndef ELSI_TRADITIONAL_GRID_INDEX_H_
#define ELSI_TRADITIONAL_GRID_INDEX_H_

#include <vector>

#include "common/spatial_index.h"
#include "storage/block_store.h"

namespace elsi {

/// The grid file competitor (Sec. VII-A): a regular sqrt(n/B) x sqrt(n/B)
/// grid whose cells each hold an array of MBR-tagged data blocks (the
/// two-level structure described in Sec. VII-F). Points are stored
/// cell-wise; inserts go to the cell block whose MBR grows least and split
/// full blocks, which is what makes Grid slow to build on skewed data (NYC).
class GridIndex : public SpatialIndex {
 public:
  explicit GridIndex(size_t block_capacity = kDefaultBlockCapacity);

  std::string Name() const override { return "Grid"; }
  void Build(const std::vector<Point>& data) override;
  void Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool PointQuery(const Point& q, Point* out = nullptr) const override;
  std::vector<Point> WindowQuery(const Rect& w) const override;
  std::vector<Point> KnnQuery(const Point& q, size_t k) const override;
  size_t size() const override { return size_; }

  int grid_side() const { return side_; }

  bool SaveState(persist::Writer& w) const override;
  bool LoadState(persist::Reader& r) override;

 private:
  struct Cell {
    std::vector<Block> blocks;
  };

  int CellX(double x) const;
  int CellY(double y) const;
  const Cell& CellAt(int cx, int cy) const { return cells_[cy * side_ + cx]; }
  Cell& CellAt(int cx, int cy) { return cells_[cy * side_ + cx]; }
  Rect CellRect(int cx, int cy) const;
  void InsertIntoCell(Cell& cell, const Point& p);

  size_t block_capacity_;
  size_t size_ = 0;
  int side_ = 1;
  Rect domain_;
  std::vector<Cell> cells_;
};

}  // namespace elsi

#endif  // ELSI_TRADITIONAL_GRID_INDEX_H_
